# Convenience wrappers around dune.  `make check` is the PR verify: build,
# test, and smoke the multi-core evaluation path (--jobs 2).
.PHONY: all test bench bench-json check fuzz

all:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable benchmark results for the perf trajectory: one
# BENCH_<n>.json per PR (N is the PR number).
N ?= 2
bench-json:
	dune exec bench/main.exe -- --json BENCH_$(N).json

check:
	dune build @check

# Full deterministic mutation-fuzz of the robust analysis path (a bounded
# ~200-mutant smoke of the same engine runs as part of `make check`).
fuzz:
	dune exec bin/cetfuzz.exe -- --count 2000 --seed 2022
