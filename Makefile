# Convenience wrappers around dune.  `make check` is the PR verify: build,
# test, and smoke the multi-core evaluation path (--jobs 2).
.PHONY: all test bench bench-json bench-diff bench-history check fuzz triage

all:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable benchmark results for the perf trajectory: one
# BENCH_<n>.json per PR (N is the PR number).
N ?= 7
bench-json:
	dune exec bench/main.exe -- --json BENCH_$(N).json

# Perf gate between PRs: compare two BENCH_<n>.json files and fail on any
# named test that regressed by more than 20% — or vanished (--require-all).
OLD ?= BENCH_6.json
NEW ?= BENCH_7.json
bench-diff:
	dune exec bin/bench_diff.exe -- --require-all $(OLD) $(NEW)

# The long view: per-row trajectory across every recorded bench file.
RANGE ?= BENCH_2.json..BENCH_$(N).json
bench-history:
	dune exec bin/bench_diff.exe -- --history $(RANGE)

check:
	dune build @check

# Full deterministic mutation-fuzz of the robust analysis path (a bounded
# ~200-mutant smoke of the same engine runs as part of `make check`).
fuzz:
	dune exec bin/cetfuzz.exe -- --count 2000 --seed 2022

# Error forensics: the full tables plus the FP/FN root-cause triage table
# (a smaller seeded smoke of the same path runs as part of `make check`).
triage:
	dune exec bin/evaluate.exe -- all --triage --scale 0.05 --no-timing
