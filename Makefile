# Convenience wrappers around dune.  `make check` is the PR verify: build,
# test, and smoke the multi-core evaluation path (--jobs 2).
.PHONY: all test bench bench-json bench-diff bench-history check fuzz triage chaos obs

all:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable benchmark results for the perf trajectory: one
# BENCH_<n>.json per PR (N is the PR number).
N ?= 8
bench-json:
	dune exec bench/main.exe -- --json BENCH_$(N).json

# Perf gate between PRs: compare two BENCH_<n>.json files and fail on any
# named test that regressed by more than 20% — or vanished (--require-all).
OLD ?= BENCH_7.json
NEW ?= BENCH_8.json
bench-diff:
	dune exec bin/bench_diff.exe -- --require-all $(OLD) $(NEW)

# The long view: per-row trajectory across every recorded bench file.
RANGE ?= BENCH_2.json..BENCH_$(N).json
bench-history:
	dune exec bin/bench_diff.exe -- --history $(RANGE)

check:
	dune build @check

# Full deterministic mutation-fuzz of the robust analysis path (a bounded
# ~200-mutant smoke of the same engine runs as part of `make check`).
fuzz:
	dune exec bin/cetfuzz.exe -- --count 2000 --seed 2022

# Chaos soak: a ~200-binary seeded run with scheduler fault injection
# (worker stalls, item delays, transient dispatch faults) must produce
# tables and per-binary profile rows byte-identical to the calm run — the
# scheduler invariant at soak scale (a smaller smoke of the same diff runs
# as part of `make check`).  The fuzzer soaks under the same chaos seed.
CHAOS_SEED ?= 2022
chaos:
	dune build bin/evaluate.exe bin/cetfuzz.exe
	dune exec --no-build bin/evaluate.exe -- all --scale 0.05 --jobs 2 \
	  --no-timing --profile-out /tmp/cet-chaos-calm.jsonl \
	  > /tmp/cet-chaos-calm.txt
	dune exec --no-build bin/evaluate.exe -- all --scale 0.05 --jobs 4 \
	  --no-timing --chaos $(CHAOS_SEED) \
	  --profile-out /tmp/cet-chaos-stormy.jsonl > /tmp/cet-chaos-stormy.txt
	cmp /tmp/cet-chaos-calm.txt /tmp/cet-chaos-stormy.txt
	cmp /tmp/cet-chaos-calm.jsonl /tmp/cet-chaos-stormy.jsonl
	dune exec --no-build bin/cetfuzz.exe -- --count 200 --seed $(CHAOS_SEED) \
	  > /tmp/cet-chaos-fuzz-calm.txt
	dune exec --no-build bin/cetfuzz.exe -- --count 200 --seed $(CHAOS_SEED) \
	  --jobs 4 --chaos $(CHAOS_SEED) > /tmp/cet-chaos-fuzz-stormy.txt
	cmp /tmp/cet-chaos-fuzz-calm.txt /tmp/cet-chaos-fuzz-stormy.txt
	@echo "chaos soak: tables, profiles and fuzz summary byte-identical"

# Error forensics: the full tables plus the FP/FN root-cause triage table
# (a smaller seeded smoke of the same path runs as part of `make check`).
triage:
	dune exec bin/evaluate.exe -- all --triage --scale 0.05 --no-timing

# Cross-run analysis: two manifested runs under different schedulers, then
# the cetstat report / diff / anomalies suite over them.  The diff must be
# clean — same corpus, same verdicts, joined 100% by content digest — and
# byte-identical whichever scheduler produced either side (a smaller smoke
# of the same invariant runs as part of `make check`).
obs:
	dune build bin/evaluate.exe bin/cetstat.exe
	dune exec --no-build bin/evaluate.exe -- all --scale 0.05 --jobs 2 \
	  --no-timing --manifest-out /tmp/cet-obs-a.manifest.jsonl \
	  --profile-out /tmp/cet-obs-a.prof.jsonl \
	  --trace-out /tmp/cet-obs-a.trace.jsonl > /dev/null
	dune exec --no-build bin/evaluate.exe -- all --scale 0.05 --jobs 4 \
	  --no-timing --chaos $(CHAOS_SEED) \
	  --manifest-out /tmp/cet-obs-b.manifest.jsonl \
	  --profile-out /tmp/cet-obs-b.prof.jsonl > /dev/null
	dune exec --no-build bin/cetstat.exe -- report /tmp/cet-obs-a.manifest.jsonl
	dune exec --no-build bin/cetstat.exe -- diff /tmp/cet-obs-a.manifest.jsonl \
	  /tmp/cet-obs-b.manifest.jsonl
	dune exec --no-build bin/cetstat.exe -- anomalies /tmp/cet-obs-a.manifest.jsonl
