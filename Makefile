# Convenience wrappers around dune.  `make check` is the PR verify: build,
# test, and smoke the multi-core evaluation path (--jobs 2).
.PHONY: all test bench check

all:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

check:
	dune build @check
