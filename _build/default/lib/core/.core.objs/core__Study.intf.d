lib/core/study.mli: Cet_disasm Cet_elf
