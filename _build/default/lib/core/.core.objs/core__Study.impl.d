lib/core/study.ml: Cet_disasm Hashtbl List Parse
