lib/core/parse.ml: Cet_eh Cet_elf List String
