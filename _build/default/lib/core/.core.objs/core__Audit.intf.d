lib/core/audit.mli: Cet_elf
