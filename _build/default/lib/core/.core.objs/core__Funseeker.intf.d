lib/core/funseeker.mli: Cet_disasm Cet_elf
