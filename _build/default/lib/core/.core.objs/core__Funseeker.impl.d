lib/core/funseeker.ml: Array Cet_disasm Cet_elf Hashtbl List Option Parse
