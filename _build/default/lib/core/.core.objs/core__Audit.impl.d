lib/core/audit.ml: Array Cet_disasm Cet_elf Cet_x86 Char Hashtbl List Parse String
