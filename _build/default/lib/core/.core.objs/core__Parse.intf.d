lib/core/parse.mli: Cet_elf
