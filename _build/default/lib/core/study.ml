module Linear = Cet_disasm.Linear

type endbr_location =
  | At_function_entry
  | After_indirect_return_call
  | At_landing_pad
  | Elsewhere

let classify_endbrs ?sweep reader ~truth =
  let sweep = match sweep with Some s -> s | None -> Linear.sweep_text reader in
  let endbrs = Linear.endbr_addrs sweep in
  let truth_set = Hashtbl.create (List.length truth) in
  List.iter (fun a -> Hashtbl.replace truth_set a ()) truth;
  let lp_set = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace lp_set a ()) (Parse.landing_pads reader);
  let plt_map = Parse.plt reader in
  let ir_returns = Hashtbl.create 8 in
  List.iter
    (fun (_site, ret, target) ->
      if Parse.in_plt plt_map target then
        match Parse.plt_name plt_map target with
        | Some name when List.mem name Parse.indirect_return_imports ->
          Hashtbl.replace ir_returns ret ()
        | _ -> ())
    (Linear.call_sites sweep);
  List.map
    (fun e ->
      let loc =
        if Hashtbl.mem truth_set e then At_function_entry
        else if Hashtbl.mem ir_returns e then After_indirect_return_call
        else if Hashtbl.mem lp_set e then At_landing_pad
        else Elsewhere
      in
      (e, loc))
    endbrs

type props = {
  endbr_at_head : bool;
  dir_jmp_target : bool;
  dir_call_target : bool;
}

let function_props ?sweep reader ~truth =
  let sweep = match sweep with Some s -> s | None -> Linear.sweep_text reader in
  let endbr_set = Hashtbl.create 256 in
  List.iter (fun a -> Hashtbl.replace endbr_set a ()) (Linear.endbr_addrs sweep);
  let call_set = Hashtbl.create 256 in
  List.iter (fun a -> Hashtbl.replace call_set a ()) (Linear.call_targets sweep);
  let jmp_set = Hashtbl.create 256 in
  List.iter (fun a -> Hashtbl.replace jmp_set a ()) (Linear.jmp_targets sweep);
  List.map
    (fun entry ->
      ( entry,
        {
          endbr_at_head = Hashtbl.mem endbr_set entry;
          dir_jmp_target = Hashtbl.mem jmp_set entry;
          dir_call_target = Hashtbl.mem call_set entry;
        } ))
    truth

let props_key p =
  match (p.endbr_at_head, p.dir_jmp_target, p.dir_call_target) with
  | true, false, false -> "endbr"
  | true, false, true -> "endbr+call"
  | true, true, false -> "endbr+jmp"
  | true, true, true -> "endbr+jmp+call"
  | false, false, true -> "call"
  | false, true, true -> "jmp+call"
  | false, true, false -> "jmp"
  | false, false, false -> "none"
