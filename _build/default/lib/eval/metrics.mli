(** Precision / recall accounting over function-entry sets. *)

type counts = { tp : int; fp : int; fn : int }

val empty : counts
val add : counts -> counts -> counts

val compare_sets : truth:int list -> found:int list -> counts
(** Both lists are entry addresses (need not be sorted or unique). *)

val precision : counts -> float
(** TP / (TP + FP), as a percentage; 100 when nothing was reported. *)

val recall : counts -> float
(** TP / (TP + FN), as a percentage; 100 when nothing was expected. *)

val f1 : counts -> float

val false_entries : truth:int list -> found:int list -> int list * int list
(** [(false_positives, false_negatives)], sorted. *)
