module Reader = Cet_elf.Reader
module Linear = Cet_disasm.Linear
module Options = Cet_compiler.Options

type options = { seed : int; scale : float; progress : bool }

let default_options = { seed = 2022; scale = 0.25; progress = false }

type results = {
  table1 : Tables.Table1.t;
  fig3 : Tables.Fig3.t;
  table2 : Tables.Table2.t;
  table3 : Tables.Table3.t;
  binaries : int;
  functions : int;
}

let arch_name = function Cet_x86.Arch.X86 -> "x86" | Cet_x86.Arch.X64 -> "x64"

let timed f x =
  let t0 = Unix.gettimeofday () in
  let r = f x in
  (r, Unix.gettimeofday () -. t0)

let run ?profiles ?configs (opts : options) =
  let table1 = Tables.Table1.create () in
  let fig3 = Tables.Fig3.create () in
  let table2 = Tables.Table2.create () in
  let table3 = Tables.Table3.create () in
  let binaries = ref 0 and functions = ref 0 in
  Cet_corpus.Dataset.iter ?profiles ?configs ~seed:opts.seed ~scale:opts.scale
    (fun bin ->
      incr binaries;
      if opts.progress && !binaries mod 100 = 0 then begin
        prerr_char '.';
        flush stderr
      end;
      let reader = Reader.read bin.stripped in
      let truth = List.map snd bin.truth |> List.sort_uniq compare in
      functions := !functions + List.length truth;
      let compiler = Options.compiler_name bin.config.Options.compiler in
      let suite = bin.suite in
      let arch = arch_name bin.config.Options.arch in
      (* One shared sweep for the study and the ablation. *)
      let sweep = Linear.sweep_text reader in
      (* Table I: end-branch location classes. *)
      List.iter
        (fun (_addr, loc) -> Tables.Table1.record table1 ~compiler ~suite loc)
        (Core.Study.classify_endbrs ~sweep reader ~truth);
      (* Figure 3: per-function property classes. *)
      List.iter
        (fun (_addr, props) -> Tables.Fig3.record fig3 props)
        (Core.Study.function_props ~sweep reader ~truth);
      (* Table II: the four FunSeeker configurations. *)
      List.iteri
        (fun i config ->
          let r = Core.Funseeker.analyze_sweep ~config reader sweep in
          Tables.Table2.record table2 ~compiler ~suite ~config:(i + 1)
            (Metrics.compare_sets ~truth ~found:r.Core.Funseeker.functions))
        [
          Core.Funseeker.config1; Core.Funseeker.config2; Core.Funseeker.config3;
          Core.Funseeker.config4;
        ];
      (* Table III: tool comparison with timing for FunSeeker and FETCH.
         Timed runs include each tool's own parsing and disassembly, like
         the paper's end-to-end measurements. *)
      let fs, fs_time = timed (fun r -> (Core.Funseeker.analyze r).Core.Funseeker.functions) reader in
      Tables.Table3.record table3 ~arch ~suite ~tool:"funseeker"
        (Metrics.compare_sets ~truth ~found:fs);
      Tables.Table3.record_time table3 ~arch ~suite ~tool:"funseeker" fs_time;
      let ida = Cet_baselines.Ida_like.analyze reader in
      Tables.Table3.record table3 ~arch ~suite ~tool:"ida"
        (Metrics.compare_sets ~truth ~found:ida);
      let ghidra = Cet_baselines.Ghidra_like.analyze reader in
      Tables.Table3.record table3 ~arch ~suite ~tool:"ghidra"
        (Metrics.compare_sets ~truth ~found:ghidra);
      let fetch, fetch_time = timed Cet_baselines.Fetch.analyze reader in
      Tables.Table3.record table3 ~arch ~suite ~tool:"fetch"
        (Metrics.compare_sets ~truth ~found:fetch);
      Tables.Table3.record_time table3 ~arch ~suite ~tool:"fetch" fetch_time);
  if opts.progress then prerr_newline ();
  { table1; fig3; table2; table3; binaries = !binaries; functions = !functions }

type manual_endbr_report = { full : Metrics.counts; manual : Metrics.counts }

let manual_endbr_ablation (opts : options) =
  let profile = Cet_corpus.Profile.scaled (opts.scale /. 2.0) Cet_corpus.Profile.coreutils in
  let acc_full = ref Metrics.empty and acc_manual = ref Metrics.empty in
  let run_with cf acc =
    let configs =
      List.map
        (fun (c : Options.t) -> { c with Options.cf_protection = cf })
        Options.all_grid
    in
    Cet_corpus.Dataset.iter ~profiles:[ profile ] ~configs ~seed:opts.seed ~scale:1.0
      (fun bin ->
        let reader = Reader.read bin.Cet_corpus.Dataset.stripped in
        let truth = List.map snd bin.truth in
        let r = Core.Funseeker.analyze reader in
        acc := Metrics.add !acc (Metrics.compare_sets ~truth ~found:r.Core.Funseeker.functions))
  in
  run_with Options.Cf_full acc_full;
  run_with Options.Cf_manual acc_manual;
  { full = !acc_full; manual = !acc_manual }

let render_manual_endbr r =
  Printf.sprintf
    "MANUAL-ENDBR ABLATION (SSVI): FunSeeker on -mmanual-endbr binaries\n\
    \  -fcf-protection=full : precision %7.3f%%  recall %7.3f%%\n\
    \  -mmanual-endbr       : precision %7.3f%%  recall %7.3f%%\n\
    \  recall impact: %.3f points (paper predicts a marginal loss, <= ~1.24%%)\n"
    (Metrics.precision r.full) (Metrics.recall r.full) (Metrics.precision r.manual)
    (Metrics.recall r.manual)
    (Metrics.recall r.full -. Metrics.recall r.manual)

type related_work_report = {
  byteweight_in : Metrics.counts;
  byteweight_ood : Metrics.counts;
  nucleus_c : Metrics.counts;
  nucleus_cpp : Metrics.counts;
  funseeker_ref : Metrics.counts;
}

let related_work (opts : options) =
  let profile =
    Cet_corpus.Profile.scaled (opts.scale /. 2.0) Cet_corpus.Profile.coreutils
  in
  let build config index =
    let ir = Cet_corpus.Generator.program ~seed:opts.seed ~profile ~index in
    let res = Cet_compiler.Link.link config ir in
    ( Reader.read (Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image),
      List.sort_uniq compare (List.map snd res.Cet_compiler.Link.truth) )
  in
  let n = max 4 profile.Cet_corpus.Profile.programs in
  let train_n = n / 2 in
  let gcc = Options.default in
  let clang_x86 =
    { Options.default with Options.compiler = Options.Clang; arch = Cet_x86.Arch.X86 }
  in
  let model = Cet_baselines.Byteweight.train (List.init train_n (fun i -> build gcc i)) in
  let score tool configs =
    List.fold_left
      (fun acc (config, index) ->
        let reader, truth = build config index in
        Metrics.add acc (Metrics.compare_sets ~truth ~found:(tool reader)))
      Metrics.empty
      (List.concat_map (fun c -> List.init (n - train_n) (fun i -> (c, train_n + i))) configs)
  in
  let byteweight reader = Cet_baselines.Byteweight.classify model reader in
  let cpp_profile =
    {
      (Cet_corpus.Profile.scaled (opts.scale /. 4.0) Cet_corpus.Profile.spec) with
      Cet_corpus.Profile.lang_cpp_fraction = 1.0;
    }
  in
  let nucleus_on profile lang_label =
    ignore lang_label;
    let acc = ref Metrics.empty in
    for index = 0 to profile.Cet_corpus.Profile.programs - 1 do
      let ir = Cet_corpus.Generator.program ~seed:opts.seed ~profile ~index in
      let res = Cet_compiler.Link.link gcc ir in
      let reader =
        Reader.read (Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image)
      in
      let truth = List.sort_uniq compare (List.map snd res.Cet_compiler.Link.truth) in
      acc :=
        Metrics.add !acc
          (Metrics.compare_sets ~truth ~found:(Cet_baselines.Nucleus_like.analyze reader))
    done;
    !acc
  in
  {
    byteweight_in = score byteweight [ gcc ];
    byteweight_ood = score byteweight [ clang_x86 ];
    nucleus_c = nucleus_on profile "C";
    nucleus_cpp = nucleus_on cpp_profile "C++";
    funseeker_ref =
      score (fun r -> (Core.Funseeker.analyze r).Core.Funseeker.functions) [ gcc; clang_x86 ];
  }

let render_related_work r =
  let line label (c : Metrics.counts) =
    Printf.sprintf "  %-42s precision %7.3f%%  recall %7.3f%%" label
      (Metrics.precision c) (Metrics.recall c)
  in
  String.concat "
"
    [
      "RELATED-WORK COMPARATORS (SSVII-B)";
      line "ByteWeight-like, in-distribution (gcc/x64)" r.byteweight_in;
      line "ByteWeight-like, cross-compiler (clang/x86)" r.byteweight_ood;
      line "Nucleus-like, C binaries" r.nucleus_c;
      line "Nucleus-like, C++ binaries (landing pads)" r.nucleus_cpp;
      line "FunSeeker, same test set (no training)" r.funseeker_ref;
      "";
    ]

type inline_data_report = {
  clean_linear : Metrics.counts;
  clean_anchored : Metrics.counts;
  dirty_linear : Metrics.counts;
  dirty_anchored : Metrics.counts;
  dirty_resyncs : int;
}

let inline_data (opts : options) =
  let profile =
    {
      (Cet_corpus.Profile.scaled (opts.scale /. 2.0) Cet_corpus.Profile.binutils) with
      Cet_corpus.Profile.p_switch = 0.3;
    }
  in
  let run inline =
    let config = { Options.default with Options.jump_tables_in_text = inline } in
    let lin = ref Metrics.empty and anc = ref Metrics.empty and resyncs = ref 0 in
    for index = 0 to profile.Cet_corpus.Profile.programs - 1 do
      let ir = Cet_corpus.Generator.program ~seed:opts.seed ~profile ~index in
      let res = Cet_compiler.Link.link config ir in
      let reader =
        Reader.read (Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image)
      in
      let truth = List.sort_uniq compare (List.map snd res.Cet_compiler.Link.truth) in
      let l = Core.Funseeker.analyze reader in
      let a = Core.Funseeker.analyze ~anchored:true reader in
      resyncs := !resyncs + l.Core.Funseeker.resync_errors;
      lin := Metrics.add !lin (Metrics.compare_sets ~truth ~found:l.Core.Funseeker.functions);
      anc := Metrics.add !anc (Metrics.compare_sets ~truth ~found:a.Core.Funseeker.functions)
    done;
    (!lin, !anc, !resyncs)
  in
  let clean_linear, clean_anchored, _ = run false in
  let dirty_linear, dirty_anchored, dirty_resyncs = run true in
  { clean_linear; clean_anchored; dirty_linear; dirty_anchored; dirty_resyncs }

let render_inline_data r =
  let line label (c : Metrics.counts) =
    Printf.sprintf "  %-40s precision %7.3f%%  recall %7.3f%%" label
      (Metrics.precision c) (Metrics.recall c)
  in
  String.concat "
"
    [
      "INLINE DATA IN .TEXT (SSVI): linear vs end-branch-anchored sweep";
      line "clean binaries, linear sweep" r.clean_linear;
      line "clean binaries, anchored sweep" r.clean_anchored;
      Printf.sprintf "  dirty binaries: %d linear-sweep resynchronisations" r.dirty_resyncs;
      line "dirty binaries, linear sweep" r.dirty_linear;
      line "dirty binaries, anchored sweep" r.dirty_anchored;
      "";
    ]

type arm_report = {
  arm_bti : Metrics.counts;
  arm_legacy : Metrics.counts;
  arm_binaries : int;
}

let arm_bti (opts : options) =
  let acc_bti = ref Metrics.empty and acc_legacy = ref Metrics.empty in
  let n = ref 0 in
  List.iter
    (fun profile ->
      let profile = Cet_corpus.Profile.scaled (opts.scale /. 2.0) profile in
      for index = 0 to profile.Cet_corpus.Profile.programs - 1 do
        let ir = Cet_corpus.Generator.program ~seed:opts.seed ~profile ~index in
        List.iter
          (fun (bti, acc) ->
            let res =
              Cet_arm64.A64_compile.compile { Cet_arm64.A64_compile.bti; tail_calls = true } ir
            in
            let reader =
              Reader.read (Cet_elf.Writer.write ~strip:true res.Cet_arm64.A64_compile.image)
            in
            let truth =
              List.sort_uniq compare (List.map snd res.Cet_arm64.A64_compile.truth)
            in
            incr n;
            let r = Cet_arm64.Bti_seeker.analyze reader in
            acc :=
              Metrics.add !acc
                (Metrics.compare_sets ~truth ~found:r.Cet_arm64.Bti_seeker.functions))
          [ (true, acc_bti); (false, acc_legacy) ]
      done)
    Cet_corpus.Profile.all;
  { arm_bti = !acc_bti; arm_legacy = !acc_legacy; arm_binaries = !n }

let render_arm r =
  String.concat "
"
    [
      Printf.sprintf "ARM BTI EXTENSION (SSVI): %d aarch64 binaries" r.arm_binaries;
      Printf.sprintf "  -mbranch-protection=bti : precision %7.3f%%  recall %7.3f%%"
        (Metrics.precision r.arm_bti) (Metrics.recall r.arm_bti);
      Printf.sprintf "  unprotected (control)   : precision %7.3f%%  recall %7.3f%%"
        (Metrics.precision r.arm_legacy) (Metrics.recall r.arm_legacy);
      "";
    ]

let render_all r =
  String.concat "\n"
    [
      Printf.sprintf "dataset: %d binaries, %d ground-truth functions\n" r.binaries
        r.functions;
      Tables.Table1.render r.table1;
      Tables.Fig3.render r.fig3;
      Tables.Table2.render r.table2;
      Tables.Table3.render r.table3;
    ]
