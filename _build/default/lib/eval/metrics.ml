type counts = { tp : int; fp : int; fn : int }

let empty = { tp = 0; fp = 0; fn = 0 }
let add a b = { tp = a.tp + b.tp; fp = a.fp + b.fp; fn = a.fn + b.fn }

module IntSet = Set.Make (Int)

let compare_sets ~truth ~found =
  let t = IntSet.of_list truth and f = IntSet.of_list found in
  {
    tp = IntSet.cardinal (IntSet.inter t f);
    fp = IntSet.cardinal (IntSet.diff f t);
    fn = IntSet.cardinal (IntSet.diff t f);
  }

let pct num den = if den = 0 then 100.0 else 100.0 *. float_of_int num /. float_of_int den

let precision c = pct c.tp (c.tp + c.fp)
let recall c = pct c.tp (c.tp + c.fn)

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let false_entries ~truth ~found =
  let t = IntSet.of_list truth and f = IntSet.of_list found in
  (IntSet.elements (IntSet.diff f t), IntSet.elements (IntSet.diff t f))
