(** Ground-truth extraction (§V-A1).

    The paper reads function entries from debug symbols and applies two
    corrections: [.cold]/[.part] fragments carry [STT_FUNC] symbols but are
    not functions, and [__x86.get_pc_thunk] sometimes lacks a symbol even
    though it is one.  [from_symbols] implements the symbol side; the
    dataset additionally supplies the compiler's own entry list so the
    thunk correction can be validated. *)

val is_fragment_name : string -> bool
(** [.cold] / [.part.N] suffix test. *)

val from_symbols : Cet_elf.Reader.t -> (string * int) list
(** [STT_FUNC] symbols defined in [.text], fragment symbols excluded.
    Empty for stripped binaries. *)

val from_dwarf : Cet_elf.Reader.t -> (string * int) list
(** The paper's actual source: [DW_TAG_subprogram] DIEs from [.debug_info],
    fragment entries excluded.  Empty for stripped binaries (debug sections
    are removed by stripping). *)

val addresses : (string * int) list -> int list
(** Entry addresses, sorted and deduplicated. *)
