lib/eval/tables.ml: Buffer Core Hashtbl List Metrics Printf String
