lib/eval/ground_truth.ml: Cet_eh Cet_elf Filename List String
