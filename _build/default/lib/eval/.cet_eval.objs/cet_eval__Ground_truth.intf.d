lib/eval/ground_truth.mli: Cet_elf
