lib/eval/harness.ml: Array Atomic Cet_arm64 Cet_baselines Cet_compiler Cet_corpus Cet_disasm Cet_elf Cet_util Cet_x86 Core List Metrics Printf String Tables Unix
