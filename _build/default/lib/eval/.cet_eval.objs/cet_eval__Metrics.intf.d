lib/eval/metrics.mli:
