lib/eval/harness.mli: Cet_compiler Cet_corpus Cet_x86 Metrics Tables
