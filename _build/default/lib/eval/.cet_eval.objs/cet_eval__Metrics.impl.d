lib/eval/metrics.ml: Int Set
