lib/eval/tables.mli: Core Metrics
