lib/baselines/byteweight.mli: Cet_elf
