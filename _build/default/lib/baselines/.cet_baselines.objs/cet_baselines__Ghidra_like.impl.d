lib/baselines/ghidra_like.ml: Cet_disasm Cet_elf Cet_x86 Common List
