lib/baselines/common.ml: Array Cet_disasm Cet_eh Cet_elf Cet_util Cet_x86 Char Hashtbl List Queue String
