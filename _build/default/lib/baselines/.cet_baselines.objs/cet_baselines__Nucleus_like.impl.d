lib/baselines/nucleus_like.ml: Array Cet_disasm Cet_elf Cet_x86 Char Fun Hashtbl List String
