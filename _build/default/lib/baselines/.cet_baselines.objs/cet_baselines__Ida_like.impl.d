lib/baselines/ida_like.ml: Array Cet_disasm Cet_elf Cet_x86 Common List
