lib/baselines/fetch.mli: Cet_elf
