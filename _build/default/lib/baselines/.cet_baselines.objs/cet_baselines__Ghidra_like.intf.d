lib/baselines/ghidra_like.mli: Cet_elf
