lib/baselines/common.mli: Cet_disasm Cet_elf Cet_x86 Hashtbl
