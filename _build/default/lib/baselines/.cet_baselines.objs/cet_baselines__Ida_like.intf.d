lib/baselines/ida_like.mli: Cet_elf
