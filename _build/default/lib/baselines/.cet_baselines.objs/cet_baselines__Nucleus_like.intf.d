lib/baselines/nucleus_like.mli: Cet_elf
