lib/baselines/fetch.ml: Array Cet_disasm Cet_elf Common List
