(** DWARF exception-handling pointer encodings (the [DW_EH_PE] family), the value
    representation used by [.eh_frame] CIEs/FDEs.

    Only the combinations GCC and Clang actually emit for x86/x86-64
    executables are supported: absolute or PC-relative, in sdata4/udata4/
    udata8/uleb formats. *)

val omit : int
(** DW_EH_PE_omit (0xff). *)

val absptr4 : int
(** DW_EH_PE_absptr with 4-byte reads (ELF32 absolute pointers). *)

val absptr8 : int

val pcrel_sdata4 : int
(** DW_EH_PE_pcrel | DW_EH_PE_sdata4 (0x1b) — the common GCC choice. *)

val udata4 : int
val uleb : int

val size : int -> int option
(** Encoded size in bytes, if fixed ([None] for uleb/omit). *)

val write : Cet_util.Bytesio.W.t -> enc:int -> field_addr:int -> value:int -> unit
(** [write w ~enc ~field_addr ~value] appends [value] encoded per [enc];
    [field_addr] is the virtual address where the field will live (needed
    for PC-relative forms).  Raises [Invalid_argument] on unsupported
    encodings. *)

val read : Cet_util.Bytesio.R.t -> enc:int -> field_addr:int -> int
(** Inverse of {!write}; [field_addr] is the virtual address of the field
    being read. *)
