(** Minimal DWARF debugging information: one compile unit with a
    [DW_TAG_subprogram] DIE per function, carrying name / low_pc / high_pc /
    external — the information the paper's ground-truth extraction reads
    ("We obtain the ground truth about function entry addresses by referring
    to the DWARF symbols", §V-A1).

    The encoder produces [.debug_abbrev], [.debug_info] and [.debug_str]
    section contents (DWARF v4, 64-bit addresses for x86-64, 32-bit for
    x86); the decoder parses exactly that shape. *)

type subprogram = {
  sp_name : string;
  sp_low_pc : int;
  sp_high_pc : int;  (** exclusive end address *)
  sp_external : bool;
}

type t = {
  cu_name : string;  (** source file name *)
  producer : string;
  subprograms : subprogram list;
}

val encode : ptr_size:int -> t -> string * string * string
(** [(debug_abbrev, debug_info, debug_str)] section contents. *)

val decode : debug_abbrev:string -> debug_info:string -> debug_str:string -> t
(** Inverse of {!encode}.  Raises [Invalid_argument] on structures outside
    the emitted subset. *)
