lib/eh/lsda.ml: Cet_util List Pointer_enc String
