lib/eh/eh_frame.mli:
