lib/eh/dwarf_info.ml: Cet_util Hashtbl List String
