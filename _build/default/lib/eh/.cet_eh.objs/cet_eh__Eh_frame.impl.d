lib/eh/eh_frame.ml: Buffer Cet_util Char Hashtbl List Pointer_enc Printf String
