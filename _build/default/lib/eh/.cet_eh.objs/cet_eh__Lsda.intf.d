lib/eh/lsda.mli:
