lib/eh/dwarf_info.mli:
