lib/eh/pointer_enc.ml: Cet_util Printf
