lib/eh/eh_frame_hdr.mli:
