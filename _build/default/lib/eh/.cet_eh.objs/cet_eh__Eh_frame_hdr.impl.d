lib/eh/eh_frame_hdr.ml: Cet_util List
