lib/eh/pointer_enc.mli: Cet_util
