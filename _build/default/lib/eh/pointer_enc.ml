module W = Cet_util.Bytesio.W
module R = Cet_util.Bytesio.R

let omit = 0xff
let absptr4 = 0x00
let absptr8 = 0x04 (* DW_EH_PE_udata8: absolute 8-byte *)
let pcrel_sdata4 = 0x1b
let udata4 = 0x03
let uleb = 0x01

let size = function
  | 0x00 -> Some 4 (* we only use absptr on ELF32 *)
  | 0x03 | 0x0b | 0x1b | 0x13 -> Some 4
  | 0x04 | 0x0c -> Some 8
  | _ -> None

let write w ~enc ~field_addr ~value =
  let pcrel = enc land 0x70 = 0x10 in
  let v = if pcrel then value - field_addr else value in
  match enc land 0x0f with
  | 0x00 -> W.u32 w v (* absptr (ELF32) *)
  | 0x03 -> W.u32 w v
  | 0x0b -> W.i32 w v
  | 0x04 -> W.u64 w v
  | 0x01 ->
    if pcrel then invalid_arg "Pointer_enc.write: pcrel uleb unsupported";
    W.uleb w v
  | _ -> invalid_arg (Printf.sprintf "Pointer_enc.write: encoding 0x%02x" enc)

let read r ~enc ~field_addr =
  if enc = omit then invalid_arg "Pointer_enc.read: omit";
  let pcrel = enc land 0x70 = 0x10 in
  let raw =
    match enc land 0x0f with
    | 0x00 -> R.u32 r
    | 0x03 -> R.u32 r
    | 0x0b -> R.i32 r
    | 0x04 -> R.u64 r
    | 0x0c -> R.u64 r
    | 0x01 -> R.uleb r
    | _ -> invalid_arg (Printf.sprintf "Pointer_enc.read: encoding 0x%02x" enc)
  in
  if pcrel then raw + field_addr else raw
