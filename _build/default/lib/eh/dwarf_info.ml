module W = Cet_util.Bytesio.W
module R = Cet_util.Bytesio.R

type subprogram = {
  sp_name : string;
  sp_low_pc : int;
  sp_high_pc : int;
  sp_external : bool;
}

type t = { cu_name : string; producer : string; subprograms : subprogram list }

(* DWARF constants (v4). *)
let dw_tag_compile_unit = 0x11
let dw_tag_subprogram = 0x2e
let dw_at_name = 0x03
let dw_at_producer = 0x25
let dw_at_language = 0x13
let dw_at_low_pc = 0x11
let dw_at_high_pc = 0x12
let dw_at_external = 0x3f
let dw_form_strp = 0x0e
let dw_form_addr = 0x01
let dw_form_data1 = 0x0b
let dw_form_data8 = 0x07
let dw_form_flag = 0x0c
let dw_lang_c99 = 0x0c

(* Abbreviation codes. *)
let abbrev_cu = 1
let abbrev_sp = 2

let encode_abbrev () =
  let w = W.create () in
  (* compile_unit, has children *)
  W.uleb w abbrev_cu;
  W.uleb w dw_tag_compile_unit;
  W.u8 w 1;
  List.iter
    (fun (a, f) ->
      W.uleb w a;
      W.uleb w f)
    [ (dw_at_name, dw_form_strp); (dw_at_producer, dw_form_strp);
      (dw_at_language, dw_form_data1) ];
  W.uleb w 0;
  W.uleb w 0;
  (* subprogram, no children *)
  W.uleb w abbrev_sp;
  W.uleb w dw_tag_subprogram;
  W.u8 w 0;
  List.iter
    (fun (a, f) ->
      W.uleb w a;
      W.uleb w f)
    [ (dw_at_name, dw_form_strp); (dw_at_low_pc, dw_form_addr);
      (dw_at_high_pc, dw_form_data8); (dw_at_external, dw_form_flag) ];
  W.uleb w 0;
  W.uleb w 0;
  (* terminator *)
  W.uleb w 0;
  W.contents w

let encode ~ptr_size t =
  let abbrev = encode_abbrev () in
  (* String table with offsets. *)
  let str = W.create () in
  let offsets = Hashtbl.create 64 in
  let intern s =
    match Hashtbl.find_opt offsets s with
    | Some o -> o
    | None ->
      let o = W.length str in
      Hashtbl.replace offsets s o;
      W.bytes str s;
      W.u8 str 0;
      o
  in
  let body = W.create () in
  let addr v = if ptr_size = 8 then W.u64 body v else W.u32 body v in
  (* CU DIE *)
  W.uleb body abbrev_cu;
  W.u32 body (intern t.cu_name);
  W.u32 body (intern t.producer);
  W.u8 body dw_lang_c99;
  List.iter
    (fun sp ->
      W.uleb body abbrev_sp;
      W.u32 body (intern sp.sp_name);
      addr sp.sp_low_pc;
      W.u64 body sp.sp_high_pc;
      W.u8 body (if sp.sp_external then 1 else 0))
    t.subprograms;
  W.uleb body 0 (* end of children *);
  let info = W.create () in
  (* unit header: length, version, abbrev offset, address size *)
  W.u32 info (7 + W.length body);
  W.u16 info 4;
  W.u32 info 0;
  W.u8 info ptr_size;
  W.bytes info (W.contents body);
  (abbrev, W.contents info, W.contents str)

(* Decode the abbreviation table into (code -> tag, has_children, attrs). *)
let decode_abbrevs data =
  let r = R.of_string data in
  let tbl = Hashtbl.create 4 in
  let rec loop () =
    let code = R.uleb r in
    if code <> 0 then begin
      let tag = R.uleb r in
      let children = R.u8 r = 1 in
      let attrs = ref [] in
      let rec attrs_loop () =
        let a = R.uleb r in
        let f = R.uleb r in
        if a <> 0 || f <> 0 then begin
          attrs := (a, f) :: !attrs;
          attrs_loop ()
        end
      in
      attrs_loop ();
      Hashtbl.replace tbl code (tag, children, List.rev !attrs);
      loop ()
    end
  in
  loop ();
  tbl

let cstring data off =
  match String.index_from_opt data off '\000' with
  | Some stop -> String.sub data off (stop - off)
  | None -> invalid_arg "Dwarf_info: unterminated string"

let decode ~debug_abbrev ~debug_info ~debug_str =
  let abbrevs = decode_abbrevs debug_abbrev in
  let r = R.of_string debug_info in
  let _len = R.u32 r in
  let version = R.u16 r in
  if version <> 4 then invalid_arg "Dwarf_info: version";
  let _abbrev_off = R.u32 r in
  let ptr_size = R.u8 r in
  let read_addr () = if ptr_size = 8 then R.u64 r else R.u32 r in
  let cu_name = ref "" and producer = ref "" in
  let subprograms = ref [] in
  let read_die () =
    let code = R.uleb r in
    if code = 0 then false
    else begin
      let tag, _children, attrs =
        match Hashtbl.find_opt abbrevs code with
        | Some x -> x
        | None -> invalid_arg "Dwarf_info: unknown abbrev"
      in
      let name = ref "" and low = ref 0 and high = ref 0 and ext = ref false in
      List.iter
        (fun (a, f) ->
          let v_str () = cstring debug_str (R.u32 r) in
          if f = dw_form_strp then begin
            let s = v_str () in
            if a = dw_at_name then name := s
            else if a = dw_at_producer then producer := s
          end
          else if f = dw_form_addr then begin
            let v = read_addr () in
            if a = dw_at_low_pc then low := v
          end
          else if f = dw_form_data8 then begin
            let v = R.u64 r in
            if a = dw_at_high_pc then high := v
          end
          else if f = dw_form_data1 then ignore (R.u8 r)
          else if f = dw_form_flag then begin
            let v = R.u8 r in
            if a = dw_at_external then ext := v = 1
          end
          else invalid_arg "Dwarf_info: unsupported form")
        attrs;
      if tag = dw_tag_compile_unit then cu_name := !name
      else if tag = dw_tag_subprogram then
        subprograms :=
          { sp_name = !name; sp_low_pc = !low; sp_high_pc = !high; sp_external = !ext }
          :: !subprograms;
      true
    end
  in
  let rec dies () = if (not (R.eof r)) && read_die () then dies () in
  dies ();
  { cu_name = !cu_name; producer = !producer; subprograms = List.rev !subprograms }
