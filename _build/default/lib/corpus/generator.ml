module Prng = Cet_util.Prng
module Ir = Cet_compiler.Ir

type cls =
  | Endbr_call
  | Endbr_only
  | Endbr_jmp_call
  | Endbr_jmp
  | Call_only
  | Jmp_call
  | Jmp_only
  | Dead

let sample_class g (w : Profile.class_weights) =
  Prng.choose_weighted g
    [
      (Endbr_call, w.w_endbr_call);
      (Endbr_only, w.w_endbr_only);
      (Endbr_jmp_call, w.w_endbr_jmp_call);
      (Endbr_jmp, w.w_endbr_jmp);
      (Call_only, w.w_call_only);
      (Jmp_call, w.w_jmp_call);
      (Jmp_only, w.w_jmp_only);
      (Dead, w.w_dead);
    ]

(* Per-function plan derived from its class. *)
type plan = {
  p_name : string;
  p_cls : cls;
  mutable p_exported : bool;
  mutable p_addr_taken : bool;
  mutable p_no_endbr : bool;
  p_dead : bool;
  p_call_refs : int;  (* direct-call references to wire *)
  p_tail_refs : int;  (* tail-call references to wire *)
  p_addr_refs : int;  (* pointer-taking references to wire *)
}

let make_plan g (profile : Profile.t) name cls =
  let multi_tail () = if Prng.chance g profile.p_multi_tail then 2 else 1 in
  let base =
    {
      p_name = name;
      p_cls = cls;
      p_exported = false;
      p_addr_taken = false;
      p_no_endbr = false;
      p_dead = false;
      p_call_refs = 0;
      p_tail_refs = 0;
      p_addr_refs = 0;
    }
  in
  match cls with
  | Endbr_call ->
    let p = { base with p_call_refs = 1 + Prng.int g 3 } in
    if Prng.chance g 0.9 then p.p_exported <- true else p.p_addr_taken <- true;
    (* Some called exports are also stored in tables of callbacks. *)
    if Prng.chance g 0.15 then p.p_addr_taken <- true;
    p
  | Endbr_only ->
    (* Functions with an end-branch but no direct branch in .text: their
       addresses escape through data (callback tables, vtables) or the
       dynamic symbol table.  All are address-taken — that is why a
       -mmanual-endbr build would still have to mark them (SSVI) — but only
       some take their address in code the sweep can see. *)
    let p = { base with p_addr_refs = (if Prng.chance g 0.3 then 1 else 0) } in
    p.p_addr_taken <- true;
    if Prng.chance g 0.5 then p.p_exported <- true;
    p
  | Endbr_jmp_call ->
    let p = { base with p_call_refs = 1; p_tail_refs = 1 } in
    p.p_exported <- true;
    p
  | Endbr_jmp ->
    let p = { base with p_tail_refs = multi_tail () } in
    p.p_exported <- true;
    p
  | Call_only ->
    let p = { base with p_call_refs = 1 + Prng.int g 3 } in
    (* A sliver of exported no-end-branch intrinsics (paper: 0.15% of
       non-static functions). *)
    if Prng.chance g (profile.p_intrinsic /. 0.10) then begin
      p.p_exported <- true;
      p.p_no_endbr <- true
    end;
    p
  | Jmp_call -> { base with p_call_refs = 1; p_tail_refs = 1 }
  | Jmp_only -> { base with p_tail_refs = multi_tail () }
  | Dead -> { base with p_dead = true }

(* Random structured body. *)
let rec gen_stmts g (profile : Profile.t) ~lang ~depth =
  let n = 2 + Prng.int g 4 in
  List.init n (fun _ -> gen_stmt g profile ~lang ~depth)

and gen_stmt g profile ~lang ~depth =
  let leaf () = Ir.Compute (1 + Prng.int g 6) in
  if depth <= 0 then leaf ()
  else
    match Prng.int g 100 with
    | x when x < 32 -> leaf ()
    | x when x < 62 ->
      (* Two-armed conditionals dominate: each join point is one of the
         spurious direct-jump targets that wreck configuration (3). *)
      Ir.If_else
        ( gen_stmts g profile ~lang ~depth:(depth - 1),
          if Prng.chance g 0.25 then [] else gen_stmts g profile ~lang ~depth:(depth - 1) )
    | x when x < 72 -> Ir.Loop (gen_stmts g profile ~lang ~depth:(depth - 1))
    | x when x < 88 -> Ir.Call (Ir.Import (Prng.choose g profile.imports))
    | _ ->
      if Prng.float g < profile.p_switch *. 3.0 then
        let cases = 4 + Prng.int g 6 in
        Ir.Switch (List.init cases (fun _ -> [ Ir.Compute (1 + Prng.int g 3) ]))
      else leaf ()

let indirect_return_name g =
  Prng.choose_weighted g
    [
      ("setjmp", 0.5); ("vfork", 0.2); ("sigsetjmp", 0.15); ("_setjmp", 0.1);
      ("getcontext", 0.05);
    ]

let gen_body g (profile : Profile.t) ~lang =
  let body = ref (gen_stmts g profile ~lang ~depth:2) in
  if lang = Ir.Cpp then begin
    (* Bernoulli approximation of the suite's try density. *)
    if Prng.chance g profile.tries_per_func then begin
      let handlers = 1 + Prng.int g 3 in
      let t =
        Ir.Try_catch
          ( gen_stmts g profile ~lang ~depth:1,
            List.init handlers (fun _ -> [ Ir.Compute (1 + Prng.int g 2) ]) )
      in
      body := t :: !body
    end
  end;
  if Prng.chance g profile.p_setjmp then
    body := Ir.Indirect_return_call (indirect_return_name g) :: !body;
  !body

let program ~seed ~(profile : Profile.t) ~index =
  let g = Prng.create (Hashtbl.hash (seed, profile.suite, index)) in
  (* The language split is stratified by index, not sampled: a scaled-down
     suite keeps exactly the profile's C/C++ proportion, which Table I's
     exception share is sensitive to. *)
  let lang =
    let f = profile.lang_cpp_fraction in
    let crossed =
      int_of_float (float_of_int (index + 1) *. f) > int_of_float (float_of_int index *. f)
    in
    if crossed then Ir.Cpp else Ir.C
  in
  let n = Prng.in_range g profile.funcs_lo profile.funcs_hi in
  let plans =
    Array.init n (fun i ->
        if i = 0 then begin
          let p = make_plan g profile "main" Endbr_call in
          p.p_exported <- true;
          p
        end
        else make_plan g profile (Printf.sprintf "fn%04d" i) (sample_class g profile.classes))
  in
  (* Bodies first. *)
  let bodies = Array.map (fun _ -> ref []) plans in
  Array.iteri (fun i _ -> bodies.(i) := gen_body g profile ~lang) plans;
  (* Split fates, drawn before wiring so shared parts can pick a sibling. *)
  let fates = Array.make n Ir.Keep_whole in
  let shared_part_owners = ref [] in
  Array.iteri
    (fun i (p : plan) ->
      if i > 0 && not p.p_dead then begin
        if Prng.chance g profile.p_split_cold then
          fates.(i) <- Ir.Split_cold (gen_stmts g profile ~lang ~depth:1)
        else if Prng.chance g profile.p_split_part then begin
          let shared = Prng.chance g profile.p_part_shared in
          fates.(i) <-
            Ir.Split_part { shared_jump = shared; part_body = gen_stmts g profile ~lang ~depth:1 };
          if shared then shared_part_owners := i :: !shared_part_owners
        end
      end)
    plans;
  (* Wire references.  Callers are non-dead functions other than the
     target.  Direct-branch callers are biased toward code already
     reachable from [main], giving the call graph the main-rooted shape of
     real programs (what recursive-descent tools such as IDA exploit);
     pointer-taking references are wired from anywhere, since data-flow
     reachability is exactly what those tools cannot see. *)
  let caller_pool =
    Array.of_list
      (List.filter_map
         (fun i -> if plans.(i).p_dead then None else Some i)
         (List.init n (fun i -> i)))
  in
  let reachable = Hashtbl.create n in
  Hashtbl.replace reachable 0 ();
  let reachable_pool = ref [ 0 ] in
  let pick_any target chosen =
    let attempts = ref 0 in
    let result = ref None in
    while !result = None && !attempts < 20 do
      incr attempts;
      let c = caller_pool.(Prng.int g (Array.length caller_pool)) in
      if c <> target && not (List.mem c chosen) then result := Some c
    done;
    !result
  in
  let pick_reachable target chosen =
    let pool = Array.of_list !reachable_pool in
    let attempts = ref 0 in
    let result = ref None in
    while !result = None && !attempts < 20 do
      incr attempts;
      let c = pool.(Prng.int g (Array.length pool)) in
      if c <> target && not (List.mem c chosen) && not plans.(c).p_dead then
        result := Some c
    done;
    !result
  in
  let pick_callers ?(rooted = false) target k =
    let chosen = ref [] in
    for _ = 1 to k do
      let pick =
        if rooted && Prng.chance g 0.97 then
          match pick_reachable target !chosen with
          | Some c -> Some c
          | None -> pick_any target !chosen
        else pick_any target !chosen
      in
      match pick with
      | Some c ->
        chosen := c :: !chosen;
        if rooted && Hashtbl.mem reachable c && not (Hashtbl.mem reachable target)
        then begin
          Hashtbl.replace reachable target ();
          reachable_pool := target :: !reachable_pool
        end
      | None -> ()
    done;
    !chosen
  in
  let add_stmt i s =
    if Prng.bool g then bodies.(i) := s :: !(bodies.(i))
    else bodies.(i) := !(bodies.(i)) @ [ s ]
  in
  Array.iteri
    (fun i (p : plan) ->
      List.iter
        (fun c -> add_stmt c (Ir.Call (Ir.Local p.p_name)))
        (pick_callers ~rooted:true i p.p_call_refs);
      List.iter
        (fun c -> add_stmt c (Ir.Tail_call_site p.p_name))
        (pick_callers ~rooted:true i p.p_tail_refs);
      List.iter
        (fun c ->
          let s =
            if Prng.bool g then Ir.Call_via_pointer p.p_name
            else Ir.Store_fn_pointer p.p_name
          in
          add_stmt c s)
        (pick_callers i p.p_addr_refs))
    plans;
  (* Shared parts: one sibling jumps into the part fragment. *)
  List.iter
    (fun owner ->
      match pick_callers owner 1 with
      | [ sibling ] -> add_stmt sibling (Ir.Jump_to_part plans.(owner).p_name)
      | _ -> ())
    !shared_part_owners;
  let funcs =
    Array.to_list
      (Array.mapi
         (fun i (p : plan) ->
           {
             Ir.name = p.p_name;
             linkage = (if p.p_exported then Ir.Exported else Ir.Static);
             address_taken = p.p_addr_taken;
             no_endbr = p.p_no_endbr;
             dead = p.p_dead;
             fate = fates.(i);
             body = !(bodies.(i));
           })
         plans)
  in
  let prog =
    {
      Ir.prog_name = Printf.sprintf "%s_%03d" profile.suite index;
      lang;
      funcs;
      extra_imports = [];
    }
  in
  (match Ir.validate prog with
  | Ok () -> ()
  | Error e -> invalid_arg ("Generator.program produced invalid IR: " ^ e));
  prog
