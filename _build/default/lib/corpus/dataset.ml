module Options = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module Link = Cet_compiler.Link

type binary = {
  suite : string;
  program : string;
  config : Options.t;
  lang : Ir.lang;
  stripped : string;
  unstripped : string;
  truth : (string * int) list;
}

let iter ?(profiles = Profile.all) ?(configs = Options.all_grid) ~seed ~scale f =
  List.iter
    (fun profile ->
      let profile = Profile.scaled scale profile in
      for index = 0 to profile.Profile.programs - 1 do
        let ir = Generator.program ~seed ~profile ~index in
        List.iter
          (fun config ->
            let res = Link.link config ir in
            let unstripped = Cet_elf.Writer.write res.image in
            let stripped = Cet_elf.Writer.write ~strip:true res.image in
            f
              {
                suite = profile.Profile.suite;
                program = ir.Ir.prog_name;
                config;
                lang = ir.Ir.lang;
                stripped;
                unstripped;
                truth = res.truth;
              })
          configs
      done)
    profiles

let count ?(profiles = Profile.all) ?(configs = Options.all_grid) ~scale () =
  List.fold_left
    (fun acc p -> acc + (Profile.scaled scale p).Profile.programs * List.length configs)
    0 profiles
