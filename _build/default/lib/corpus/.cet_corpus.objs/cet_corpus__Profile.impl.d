lib/corpus/profile.ml: Array
