lib/corpus/dataset.mli: Cet_compiler Profile
