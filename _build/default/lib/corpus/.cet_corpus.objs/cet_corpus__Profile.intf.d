lib/corpus/profile.mli:
