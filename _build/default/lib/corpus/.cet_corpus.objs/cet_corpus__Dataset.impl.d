lib/corpus/dataset.ml: Array Cet_compiler Cet_elf Generator List Profile
