lib/corpus/dataset.ml: Cet_compiler Cet_elf Generator List Profile
