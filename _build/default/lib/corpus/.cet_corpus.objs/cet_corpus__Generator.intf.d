lib/corpus/generator.mli: Cet_compiler Profile
