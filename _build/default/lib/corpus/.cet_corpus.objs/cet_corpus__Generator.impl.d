lib/corpus/generator.ml: Array Cet_compiler Cet_util Hashtbl List Printf Profile
