(** Seeded program sampler: draws an {!Ir.program} whose function population
    matches a suite {!Profile.t}.

    Every function is assigned one of Figure 3's property classes (end-branch
    at head / direct-jump target / direct-call target / dead) and the
    generator then wires exactly the references that make the class hold:
    direct calls for call targets, tail-call sites for jump targets,
    pointer-taking for address-taken functions, nothing for dead ones.  All
    sampling is deterministic in [seed], [profile] and [index]. *)

val program : seed:int -> profile:Profile.t -> index:int -> Cet_compiler.Ir.program
(** Generate the [index]-th program of a suite.  The result always passes
    {!Cet_compiler.Ir.validate}. *)
