(** Dataset builder: the 24-configuration grid over the three suites
    (§III-A), streamed binary by binary so evaluation never holds the whole
    corpus in memory.

    Each program's IR is generated once (the "source code") and compiled
    under every configuration, exactly as the paper builds its 8,136
    binaries.  Binaries are handed to the callback as stripped ELF bytes
    plus the ground-truth entry list the unstripped counterpart would
    yield. *)

type binary = {
  suite : string;
  program : string;
  config : Cet_compiler.Options.t;
  lang : Cet_compiler.Ir.lang;
  stripped : string;  (** stripped ELF bytes — what the tools see *)
  unstripped : string;  (** symbol-bearing ELF bytes — ground-truth source *)
  truth : (string * int) list;  (** function entries, paper's corrections applied *)
}

val iter :
  ?profiles:Profile.t list ->
  ?configs:Cet_compiler.Options.t list ->
  seed:int ->
  scale:float ->
  (binary -> unit) ->
  unit
(** Stream the dataset.  Defaults: all three suites, the full 24-point
    grid.  [scale] shrinks program and function counts for quick runs
    (1.0 = paper-sized suites). *)

val count : ?profiles:Profile.t list -> ?configs:Cet_compiler.Options.t list ->
  scale:float -> unit -> int
(** Number of binaries [iter] will produce. *)
