type class_weights = {
  w_endbr_call : float;
  w_endbr_only : float;
  w_endbr_jmp_call : float;
  w_endbr_jmp : float;
  w_call_only : float;
  w_jmp_call : float;
  w_jmp_only : float;
  w_dead : float;
}

type t = {
  suite : string;
  programs : int;
  lang_cpp_fraction : float;
  funcs_lo : int;
  funcs_hi : int;
  classes : class_weights;
  p_intrinsic : float;
  p_setjmp : float;
  tries_per_func : float;
  p_switch : float;
  p_split_cold : float;
  p_split_part : float;
  p_part_shared : float;
  p_multi_tail : float;
  imports : string array;
}

(* Figure 3 of the paper, with the dead share nudged to keep dead functions
   the dominant false-negative class (§V-C). *)
let fig3_weights =
  {
    w_endbr_call = 48.85;
    w_endbr_only = 37.79;
    w_endbr_jmp_call = 1.44;
    w_endbr_jmp = 1.23;
    w_call_only = 10.01;
    w_jmp_call = 0.44;
    w_jmp_only = 0.23;
    w_dead = 0.05;
  }

let c_imports =
  [|
    "printf"; "fprintf"; "malloc"; "free"; "memcpy"; "memset"; "strlen"; "strcmp";
    "exit"; "fwrite"; "fread"; "open"; "close"; "read"; "write"; "getenv";
  |]

let cpp_imports =
  Array.append c_imports [| "_Znwm"; "_ZdlPv"; "__cxa_throw"; "__cxa_allocate_exception" |]

let coreutils =
  {
    suite = "coreutils";
    programs = 108;
    lang_cpp_fraction = 0.0;
    funcs_lo = 40;
    funcs_hi = 160;
    classes = fig3_weights;
    p_intrinsic = 0.0013;
    p_setjmp = 0.00006;
    tries_per_func = 0.0;
    p_switch = 0.10;
    p_split_cold = 0.02;
    p_split_part = 0.015;
    p_part_shared = 0.4;
    p_multi_tail = 0.6;
    imports = c_imports;
  }

let binutils =
  {
    coreutils with
    suite = "binutils";
    programs = 15;
    funcs_lo = 200;
    funcs_hi = 520;
    p_setjmp = 0.00004;
    p_switch = 0.12;
  }

let spec =
  {
    coreutils with
    suite = "spec";
    programs = 47;
    lang_cpp_fraction = 0.5;
    funcs_lo = 280;
    funcs_hi = 900;
    p_setjmp = 0.00004;
    tries_per_func = 0.46;
    p_switch = 0.10;
    imports = cpp_imports;
  }

let all = [ coreutils; binutils; spec ]

let scaled factor t =
  (* Scaling shrinks the number of programs, not their size: per-binary
     population statistics (Fig. 3, Table I) must stay representative. *)
  let scale n = max 1 (int_of_float (float_of_int n *. factor)) in
  { t with programs = scale t.programs }
