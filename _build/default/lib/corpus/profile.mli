(** Suite descriptors: the population statistics that stand in for
    Coreutils 9.0, Binutils 2.37 and SPEC CPU 2017 (§III-A).

    The class weights encode Figure 3's partition of all functions over the
    three syntactic properties; the densities encode the end-branch location
    distribution of Table I (exception share, indirect-return share). *)

type class_weights = {
  w_endbr_call : float;  (** exported/addr-taken and direct-called *)
  w_endbr_only : float;  (** exported/addr-taken, never direct-branched *)
  w_endbr_jmp_call : float;
  w_endbr_jmp : float;
  w_call_only : float;  (** static, direct-called only *)
  w_jmp_call : float;
  w_jmp_only : float;  (** static, tail-called only *)
  w_dead : float;  (** unreferenced *)
}

type t = {
  suite : string;
  programs : int;
  lang_cpp_fraction : float;  (** fraction of C++ programs in the suite *)
  funcs_lo : int;
  funcs_hi : int;
  classes : class_weights;
  p_intrinsic : float;
      (** exported functions compiled without an end-branch (paper: 0.15%
          of non-static functions), carved out of the call-only class *)
  p_setjmp : float;  (** per-function probability of an indirect-return call *)
  tries_per_func : float;  (** mean try/catch blocks per function (C++) *)
  p_switch : float;  (** per-function probability of a dense switch *)
  p_split_cold : float;
  p_split_part : float;
  p_part_shared : float;  (** fraction of parts additionally jump-shared *)
  p_multi_tail : float;  (** tail targets referenced from two callers *)
  imports : string array;  (** libc-style import pool *)
}

val fig3_weights : class_weights
(** The paper's Figure 3 proportions. *)

val coreutils : t
val binutils : t
val spec : t

val all : t list

val scaled : float -> t -> t
(** Scale the suite size (program count) by a factor; per-binary function
    counts are preserved so population statistics stay representative. *)
