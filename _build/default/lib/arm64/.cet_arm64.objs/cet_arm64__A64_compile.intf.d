lib/arm64/a64_compile.mli: Cet_compiler Cet_elf
