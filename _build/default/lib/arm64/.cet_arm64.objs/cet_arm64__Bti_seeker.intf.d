lib/arm64/bti_seeker.mli: Cet_elf
