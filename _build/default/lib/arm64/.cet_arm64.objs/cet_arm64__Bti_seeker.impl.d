lib/arm64/bti_seeker.ml: A64 Cet_elf Core List
