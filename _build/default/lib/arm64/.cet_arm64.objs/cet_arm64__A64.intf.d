lib/arm64/a64.mli:
