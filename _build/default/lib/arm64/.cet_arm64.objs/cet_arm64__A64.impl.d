lib/arm64/a64.ml: Bytes Char Int32 List String
