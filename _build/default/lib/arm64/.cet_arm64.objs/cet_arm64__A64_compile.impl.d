lib/arm64/a64_compile.ml: A64 Buffer Cet_compiler Cet_eh Cet_elf Cet_util Cet_x86 Hashtbl List Option Printf String
