type bti_kind = Bti_c | Bti_j | Bti_jc

type t =
  | Bti of bti_kind
  | Bl of int
  | B of int
  | Cbnz of int * int
  | Ret
  | Br of int
  | Blr of int
  | Adrp of int * int
  | Add_imm of int * int * int
  | Movz of int * int
  | Sub_sp of int
  | Add_sp of int
  | Stp_fp_lr of int
  | Ldp_fp_lr of int
  | Nop
  | Udf

let check_reg r = if r < 0 || r > 30 then invalid_arg "A64: bad register"

let imm26 disp =
  if disp land 3 <> 0 then invalid_arg "A64: unaligned branch displacement";
  let words = disp asr 2 in
  if words < -0x2000000 || words > 0x1FFFFFF then invalid_arg "A64: branch out of range";
  words land 0x3FFFFFF

let imm19 disp =
  if disp land 3 <> 0 then invalid_arg "A64: unaligned branch displacement";
  let words = disp asr 2 in
  if words < -0x40000 || words > 0x3FFFF then invalid_arg "A64: cond branch out of range";
  words land 0x7FFFF

let encode = function
  | Bti Bti_c -> 0xD503245Fl
  | Bti Bti_j -> 0xD503249Fl
  | Bti Bti_jc -> 0xD50324DFl
  | Bl disp -> Int32.of_int (0x94000000 lor imm26 disp)
  | B disp -> Int32.of_int (0x14000000 lor imm26 disp)
  | Cbnz (r, disp) ->
    check_reg r;
    Int32.of_int (0xB5000000 lor (imm19 disp lsl 5) lor r)
  | Ret -> 0xD65F03C0l
  | Br r ->
    check_reg r;
    Int32.of_int (0xD61F0000 lor (r lsl 5))
  | Blr r ->
    check_reg r;
    Int32.of_int (0xD63F0000 lor (r lsl 5))
  | Adrp (r, disp) ->
    check_reg r;
    if disp land 0xFFF <> 0 then invalid_arg "A64: adrp needs page displacement";
    let pages = disp asr 12 in
    if pages < -0x100000 || pages > 0xFFFFF then invalid_arg "A64: adrp out of range";
    let lo = pages land 3 and hi = (pages asr 2) land 0x7FFFF in
    Int32.of_int (0x90000000 lor (lo lsl 29) lor (hi lsl 5) lor r)
  | Add_imm (rd, rn, imm) ->
    check_reg rd;
    if rn < 0 || rn > 31 then invalid_arg "A64: bad register";
    if imm < 0 || imm > 0xFFF then invalid_arg "A64: add imm12";
    Int32.of_int (0x91000000 lor (imm lsl 10) lor (rn lsl 5) lor rd)
  | Movz (rd, imm) ->
    check_reg rd;
    if imm < 0 || imm > 0xFFFF then invalid_arg "A64: movz imm16";
    Int32.of_int (0xD2800000 lor (imm lsl 5) lor rd)
  | Sub_sp imm ->
    if imm < 0 || imm > 0xFFF then invalid_arg "A64: sub sp imm";
    Int32.of_int (0xD10003FF lor (imm lsl 10))
  | Add_sp imm ->
    if imm < 0 || imm > 0xFFF then invalid_arg "A64: add sp imm";
    Int32.of_int (0x910003FF lor (imm lsl 10))
  | Stp_fp_lr imm ->
    (* stp x29, x30, [sp, #-imm]! — imm in bytes, multiple of 8, <= 512 *)
    if imm <= 0 || imm > 512 || imm land 7 <> 0 then invalid_arg "A64: stp offset";
    let imm7 = -imm asr 3 land 0x7F in
    Int32.of_int (0xA9807BFD lor (imm7 lsl 15))
  | Ldp_fp_lr imm ->
    if imm <= 0 || imm > 504 || imm land 7 <> 0 then invalid_arg "A64: ldp offset";
    let imm7 = imm asr 3 land 0x7F in
    Int32.of_int (0xA8C07BFD lor (imm7 lsl 15))
  | Nop -> 0xD503201Fl
  | Udf -> 0x00000000l

let encode_bytes t =
  let w = Int32.to_int (encode t) land 0xFFFFFFFF in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (w land 0xff));
  Bytes.set b 1 (Char.chr ((w lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((w lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((w lsr 24) land 0xff));
  Bytes.to_string b

type kind =
  | K_bti of bti_kind
  | K_call of int
  | K_jmp of int
  | K_cond of int
  | K_ret
  | K_indirect_jmp
  | K_indirect_call
  | K_adrp of int
  | K_other

type ins = { addr : int; kind : kind }

let sign_extend v bits = if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let decode code ~base ~off =
  if off land 3 <> 0 then invalid_arg "A64.decode: unaligned offset";
  if off < 0 || off + 4 > String.length code then invalid_arg "A64.decode: out of bounds";
  let byte i = Char.code code.[off + i] in
  let w = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
  let addr = base + off in
  let kind =
    if w = 0xD503245F then K_bti Bti_c
    else if w = 0xD503249F then K_bti Bti_j
    else if w = 0xD50324DF then K_bti Bti_jc
    else if w land 0xFC000000 = 0x94000000 then
      K_call (addr + (sign_extend (w land 0x3FFFFFF) 26 * 4))
    else if w land 0xFC000000 = 0x14000000 then
      K_jmp (addr + (sign_extend (w land 0x3FFFFFF) 26 * 4))
    else if w land 0x7F000000 = 0x35000000 || w land 0x7F000000 = 0x34000000 then
      (* cbnz / cbz *)
      K_cond (addr + (sign_extend ((w lsr 5) land 0x7FFFF) 19 * 4))
    else if w land 0xFF000010 = 0x54000000 then
      (* b.cond *)
      K_cond (addr + (sign_extend ((w lsr 5) land 0x7FFFF) 19 * 4))
    else if w = 0xD65F03C0 then K_ret
    else if w land 0xFFFFFC1F = 0xD61F0000 then K_indirect_jmp
    else if w land 0xFFFFFC1F = 0xD63F0000 then K_indirect_call
    else if w land 0x9F000000 = 0x90000000 then begin
      let lo = (w lsr 29) land 3 and hi = (w lsr 5) land 0x7FFFF in
      let pages = sign_extend ((hi lsl 2) lor lo) 21 in
      K_adrp ((addr land lnot 0xFFF) + (pages * 4096))
    end
    else K_other
  in
  { addr; kind }

let sweep code ~base =
  let n = String.length code / 4 in
  List.init n (fun i -> decode code ~base ~off:(i * 4))
