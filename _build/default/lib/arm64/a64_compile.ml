module Ir = Cet_compiler.Ir
module Image = Cet_elf.Image
module Consts = Cet_elf.Consts
module Symbol = Cet_elf.Symbol
module W = Cet_util.Bytesio.W

type opts = { bti : bool; tail_calls : bool }

let default_opts = { bti = true; tail_calls = true }

type result = { image : Image.t; truth : (string * int) list }

(* ------------------------------------------------------------------ *)
(* Tiny fixed-width assembler                                         *)
(* ------------------------------------------------------------------ *)

type item =
  | Label of string
  | I of A64.t
  | Bl_lbl of string
  | B_lbl of string
  | Cbnz_lbl of int * string
  | Adrp_add of int * string  (** materialise a label address: adrp + add *)
  | Align16

let item_size ~addr = function
  | Label _ -> 0
  | I _ | Bl_lbl _ | B_lbl _ | Cbnz_lbl _ -> 4
  | Adrp_add _ -> 8
  | Align16 -> (16 - (addr land 15)) land 15

let measure ~base items =
  let addr = ref base in
  let labels = Hashtbl.create 256 in
  List.iter
    (fun item ->
      (match item with Label l -> Hashtbl.replace labels l !addr | _ -> ());
      addr := !addr + item_size ~addr:!addr item)
    items;
  (!addr - base, labels)

let assemble ~base ~resolve items =
  let _, labels = measure ~base items in
  let find l =
    match Hashtbl.find_opt labels l with Some a -> a | None -> resolve l
  in
  let buf = Buffer.create 4096 in
  let addr () = base + Buffer.length buf in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | I ins -> Buffer.add_string buf (A64.encode_bytes ins)
      | Bl_lbl l -> Buffer.add_string buf (A64.encode_bytes (A64.Bl (find l - addr ())))
      | B_lbl l -> Buffer.add_string buf (A64.encode_bytes (A64.B (find l - addr ())))
      | Cbnz_lbl (r, l) ->
        Buffer.add_string buf (A64.encode_bytes (A64.Cbnz (r, find l - addr ())))
      | Adrp_add (r, l) ->
        let target = find l in
        let page_disp = (target land lnot 0xFFF) - (addr () land lnot 0xFFF) in
        Buffer.add_string buf (A64.encode_bytes (A64.Adrp (r, page_disp)));
        Buffer.add_string buf (A64.encode_bytes (A64.Add_imm (r, r, target land 0xFFF)))
      | Align16 ->
        while addr () land 15 <> 0 do
          Buffer.add_string buf (A64.encode_bytes A64.Nop)
        done)
    items;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Lowering                                                           *)
(* ------------------------------------------------------------------ *)

let plt_label n = "plt$" ^ n

type fctx = {
  opts : opts;
  fname : string;
  mutable counter : int;
  mutable rolling : int;
  mutable rev_items : item list;
  mutable rev_tail : item list;
  mutable sites : (string * string * string) list;  (* try_start, try_end, lp *)
  mutable tables : (string * string list) list;
}

let fresh ctx tag =
  let n = ctx.counter in
  ctx.counter <- n + 1;
  Printf.sprintf "%s$%s%d" ctx.fname tag n

let roll ctx bound =
  ctx.rolling <- (ctx.rolling * 1103515245) + 12345 land 0x3FFFFFFF;
  (ctx.rolling lsr 7) mod bound

let emit ctx i = ctx.rev_items <- i :: ctx.rev_items
let emit_tail ctx i = ctx.rev_tail <- i :: ctx.rev_tail

let filler ctx n =
  for _ = 1 to n do
    emit ctx
      (I
         (match roll ctx 3 with
         | 0 -> A64.Movz (roll ctx 8, roll ctx 4096)
         | 1 -> A64.Add_imm (roll ctx 8, roll ctx 8, roll ctx 256)
         | _ -> A64.Nop))
  done

let rec lower_stmt ctx (epilogue : item list) stmt =
  match stmt with
  | Ir.Compute n -> filler ctx n
  | Ir.Call (Ir.Local f) -> emit ctx (Bl_lbl f)
  | Ir.Call (Ir.Import i) -> emit ctx (Bl_lbl (plt_label i))
  | Ir.Call_via_pointer f ->
    emit ctx (Adrp_add (16, f));
    emit ctx (I (A64.Blr 16))
  | Ir.Store_fn_pointer f -> emit ctx (Adrp_add (0, f))
  | Ir.Indirect_return_call s ->
    (* AArch64 setjmp returns through ret under pointer authentication: no
       jump marker is required after the call site. *)
    emit ctx (Bl_lbl (plt_label s))
  | Ir.If_else (a, b) ->
    if b = [] then begin
      let join = fresh ctx "j" in
      emit ctx (Cbnz_lbl (0, join));
      lower_stmts ctx epilogue a;
      emit ctx (Label join)
    end
    else begin
      let lelse = fresh ctx "e" and join = fresh ctx "j" in
      emit ctx (Cbnz_lbl (0, lelse));
      lower_stmts ctx epilogue a;
      emit ctx (B_lbl join);
      emit ctx (Label lelse);
      lower_stmts ctx epilogue b;
      emit ctx (Label join)
    end
  | Ir.Loop body ->
    let lb = fresh ctx "lb" in
    emit ctx (I (A64.Movz (1, 1 + roll ctx 64)));
    emit ctx (Label lb);
    lower_stmts ctx epilogue body;
    emit ctx (Cbnz_lbl (1, lb))
  | Ir.Switch cases ->
    let jt = fresh ctx "jt" in
    let ldef = fresh ctx "sd" and lend = fresh ctx "sw" in
    let case_labels = List.mapi (fun i _ -> Printf.sprintf "%s$c%d" jt i) cases in
    emit ctx (Cbnz_lbl (0, ldef));
    emit ctx (Adrp_add (17, jt));
    emit ctx (I (A64.Br 17));
    List.iter2
      (fun l case ->
        emit ctx (Label l);
        (* br is tracked on AArch64: every case label carries bti j. *)
        if ctx.opts.bti then emit ctx (I (A64.Bti A64.Bti_j));
        lower_stmts ctx epilogue case;
        emit ctx (B_lbl lend))
      case_labels cases;
    emit ctx (Label ldef);
    filler ctx 1;
    emit ctx (Label lend);
    ctx.tables <- (jt, case_labels) :: ctx.tables
  | Ir.Try_catch (body, handlers) ->
    let ts = fresh ctx "ts" and te = fresh ctx "te" in
    let cont = fresh ctx "tc" and lp = fresh ctx "lp" in
    emit ctx (Label ts);
    lower_stmts ctx epilogue body;
    emit ctx (Label te);
    emit ctx (Label cont);
    emit_tail ctx (Label lp);
    (* The unwinder enters through br: landing pads are bti j, not c. *)
    if ctx.opts.bti then emit_tail ctx (I (A64.Bti A64.Bti_j));
    emit_tail ctx (Bl_lbl (plt_label "__cxa_begin_catch"));
    List.iter
      (fun h ->
        let saved = ctx.rev_items in
        ctx.rev_items <- [];
        lower_stmts ctx epilogue h;
        let items = List.rev ctx.rev_items in
        ctx.rev_items <- saved;
        List.iter (emit_tail ctx) items)
      (match handlers with [] -> [] | h :: _ -> [ h ]);
    emit_tail ctx (Bl_lbl (plt_label "__cxa_end_catch"));
    emit_tail ctx (B_lbl cont);
    ctx.sites <- (ts, te, lp) :: ctx.sites
  | Ir.Tail_call_site f ->
    if ctx.opts.tail_calls then begin
      let skip = fresh ctx "nt" in
      emit ctx (Cbnz_lbl (0, skip));
      List.iter (emit ctx) epilogue;
      emit ctx (B_lbl f);
      emit ctx (Label skip)
    end
    else emit ctx (Bl_lbl f)
  | Ir.Jump_to_part f ->
    (* No hot/cold splitting in the ARM backend. *)
    emit ctx (Bl_lbl f)

and lower_stmts ctx epilogue stmts = List.iter (lower_stmt ctx epilogue) stmts

let wants_bti opts (f : Ir.func) =
  opts.bti && (not f.no_endbr)
  && (f.linkage = Ir.Exported || f.address_taken || f.name = "main")

let rec has_calls stmts =
  List.exists
    (fun s ->
      match s with
      | Ir.Call _ | Ir.Call_via_pointer _ | Ir.Indirect_return_call _
      | Ir.Tail_call_site _ | Ir.Jump_to_part _ | Ir.Try_catch _ ->
        true
      | Ir.Compute _ | Ir.Store_fn_pointer _ -> false
      | Ir.If_else (a, b) -> has_calls a || has_calls b
      | Ir.Loop b -> has_calls b
      | Ir.Switch cs -> List.exists has_calls cs)
    stmts

let lower_function opts (f : Ir.func) =
  let ctx =
    {
      opts;
      fname = f.name;
      counter = 0;
      rolling = Hashtbl.hash f.name land 0xFFFFFF;
      rev_items = [];
      rev_tail = [];
      sites = [];
      tables = [];
    }
  in
  let framed = has_calls (Ir.func_stmts f) in
  let epilogue = if framed then [ I (A64.Ldp_fp_lr 16) ] else [] in
  emit ctx Align16;
  emit ctx (Label f.name);
  if wants_bti opts f then emit ctx (I (A64.Bti A64.Bti_c));
  if framed then emit ctx (I (A64.Stp_fp_lr 16));
  lower_stmts ctx epilogue (Ir.func_stmts f);
  List.iter (emit ctx) epilogue;
  emit ctx (I A64.Ret);
  List.iter (emit ctx) (List.rev ctx.rev_tail);
  emit ctx (Label (f.name ^ "$end"));
  (List.rev ctx.rev_items, List.rev ctx.sites, List.rev ctx.tables)

let compile opts (p : Ir.program) =
  (match Ir.validate p with
  | Ok () -> ()
  | Error e -> invalid_arg ("A64_compile.compile: " ^ e));
  let imports = "__libc_start_main" :: Ir.collect_imports p in
  let base = 0x10000 in
  let plt_vaddr = base in
  let plt_entry = 16 in
  let plt_size = plt_entry * (List.length imports + 1) in
  let text_vaddr = plt_vaddr + plt_size in
  (* _start *)
  let start_items =
    [ Align16; Label "_start" ]
    @ (if opts.bti then [ I (A64.Bti A64.Bti_c) ] else [])
    @ [
        Adrp_add (0, "main");
        Bl_lbl (plt_label "__libc_start_main");
        I A64.Udf;
        Label "_start$end";
      ]
  in
  let lowered = List.map (lower_function opts) p.funcs in
  let all_items = start_items @ List.concat_map (fun (i, _, _) -> i) lowered in
  let text_size, labels = measure ~base:text_vaddr all_items in
  let addr_of l =
    match Hashtbl.find_opt labels l with
    | Some a -> a
    | None -> invalid_arg ("A64_compile: undefined label " ^ l)
  in
  let plt_entries =
    List.mapi (fun i n -> (n, plt_vaddr + ((i + 1) * plt_entry))) imports
  in
  (* Jump tables (.rodata): absolute 8-byte entries. *)
  let tables = List.concat_map (fun (_, _, t) -> t) lowered in
  let rodata_vaddr = (text_vaddr + text_size + 15) / 16 * 16 in
  let rodata = W.create () in
  let table_addrs =
    List.map
      (fun (label, cases) ->
        let off = W.length rodata in
        List.iter (fun c -> W.u64 rodata (addr_of c)) cases;
        (label, rodata_vaddr + off))
      tables
  in
  (* LSDAs + FDEs, same DWARF formats as the x86 pipeline. *)
  let func_extents =
    List.map (fun (f : Ir.func) -> (f.name, addr_of f.name, addr_of (f.name ^ "$end"))) p.funcs
  in
  let lsda_specs =
    List.concat
      (List.map2
         (fun (f : Ir.func) (_, sites, _) ->
           if sites = [] then []
           else
             let fstart = addr_of f.name in
             [ ( f.name,
                 {
                   Cet_eh.Lsda.call_sites =
                     List.map
                       (fun (ts, te, lp) ->
                         {
                           Cet_eh.Lsda.cs_start = addr_of ts - fstart;
                           cs_len = addr_of te - addr_of ts;
                           cs_landing_pad = addr_of lp - fstart;
                           cs_action = 1;
                         })
                       sites;
                   type_count = 1;
                 } ) ])
         p.funcs lowered)
  in
  let except_table, lsda_offsets = Cet_eh.Lsda.build_table (List.map snd lsda_specs) in
  let eh_frame_vaddr = (rodata_vaddr + W.length rodata + 7) / 8 * 8 in
  let lsda_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i (name, _) -> Hashtbl.replace tbl name (List.nth lsda_offsets i)) lsda_specs;
    fun name gev -> Option.map (fun off -> gev + off) (Hashtbl.find_opt tbl name)
  in
  let frames_for gev =
    ( "_start", addr_of "_start", addr_of "_start$end" )
    :: func_extents
    |> List.map (fun (name, lo, hi) ->
           { Cet_eh.Eh_frame.pc_begin = lo; pc_range = hi - lo; lsda = lsda_of name gev })
  in
  let personality =
    match List.assoc_opt "__gxx_personality_v0" plt_entries with Some a -> a | None -> 0
  in
  let probe = Cet_eh.Eh_frame.encode ~vaddr:eh_frame_vaddr ~personality (frames_for 0) in
  let gev = (eh_frame_vaddr + String.length probe + 3) / 4 * 4 in
  let eh_frame = Cet_eh.Eh_frame.encode ~vaddr:eh_frame_vaddr ~personality (frames_for gev) in
  (* Text assembly. *)
  let resolve l =
    if String.length l > 4 && String.sub l 0 4 = "plt$" then
      match List.assoc_opt (String.sub l 4 (String.length l - 4)) plt_entries with
      | Some a -> a
      | None -> invalid_arg ("A64_compile: unknown import " ^ l)
    else
      match List.assoc_opt l table_addrs with
      | Some a -> a
      | None -> invalid_arg ("A64_compile: unresolved " ^ l)
  in
  let text = assemble ~base:text_vaddr ~resolve all_items in
  (* PLT: bti c + indirect jump per entry. *)
  let plt = W.create () in
  for _ = 0 to List.length imports do
    if opts.bti then W.bytes plt (A64.encode_bytes (A64.Bti A64.Bti_c))
    else W.bytes plt (A64.encode_bytes A64.Nop);
    W.bytes plt (A64.encode_bytes A64.Nop);
    W.bytes plt (A64.encode_bytes (A64.Br 16));
    W.bytes plt (A64.encode_bytes A64.Nop)
  done;
  let got_vaddr = (gev + String.length except_table + 7) / 8 * 8 in
  let exec = Consts.shf_alloc lor Consts.shf_execinstr in
  let rw = Consts.shf_alloc lor Consts.shf_write in
  let sections =
    [
      Image.section ~name:".plt" ~vaddr:plt_vaddr ~flags:exec ~addralign:16 (W.contents plt);
      Image.section ~name:".text" ~vaddr:text_vaddr ~flags:exec ~addralign:16 text;
    ]
    @ (if W.length rodata = 0 then []
       else [ Image.section ~name:".rodata" ~vaddr:rodata_vaddr ~addralign:16 (W.contents rodata) ])
    @ [ Image.section ~name:".eh_frame" ~vaddr:eh_frame_vaddr ~addralign:8 eh_frame ]
    @ (if except_table = "" then []
       else [ Image.section ~name:".gcc_except_table" ~vaddr:gev ~addralign:4 except_table ])
    @ [
        Image.section ~name:".got.plt" ~vaddr:got_vaddr ~flags:rw ~addralign:8
          (String.make ((3 + List.length imports) * 8) '\x00');
      ]
  in
  let truth =
    ("_start", addr_of "_start")
    :: List.map (fun (f : Ir.func) -> (f.name, addr_of f.name)) p.funcs
  in
  let symbols =
    List.map
      (fun (name, a) ->
        {
          Symbol.name;
          value = a;
          size = 0;
          kind = Symbol.Func;
          bind = Symbol.Global;
          section = Some ".text";
        })
      truth
  in
  let image =
    {
      Image.arch = Cet_x86.Arch.X64;
      machine = Some Consts.em_aarch64;
      pie = true;
      cet_note = false;
      entry = addr_of "_start";
      sections;
      symbols;
      dynsyms = List.map Symbol.undef_func imports;
      plt_relocs = List.mapi (fun i n -> (got_vaddr + ((3 + i) * 8), n)) imports;
    }
  in
  { image; truth }
