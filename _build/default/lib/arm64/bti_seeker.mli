(** FunSeeker for BTI-enabled AArch64 binaries — the §VI extension.

    The algorithm is the x86 one with the architecture doing part of the
    filtering: [bti c] marks call targets while jump-table cases and
    exception landing pads carry [bti j], so FILTERENDBR's landing-pad pass
    is unnecessary, and AArch64's [setjmp] needs no return marker at all.
    What remains is exactly E(c) ∪ C ∪ J′ with the same SELECTTAILCALL. *)

type result = {
  functions : int list;  (** identified entry addresses, sorted *)
  bti_c_total : int;
  bti_j_total : int;  (** jump markers observed (cases, landing pads) *)
  call_target_count : int;
  tail_calls_selected : int;
}

val analyze : Cet_elf.Reader.t -> result
(** Raises [Invalid_argument] when the image has no [.text]. *)

val analyze_bytes : string -> result
