(** Mini AArch64 backend for the §VI extension: lowers the same {!Ir}
    programs the x86 compiler consumes into BTI-enabled ARM64 ELF images.

    BTI placement follows GCC's [-mbranch-protection=bti]:

    - [bti c] at the entry of every exported or address-taken function
      (valid [blr]/call target) — the analogue of the end-branch rule;
    - [bti j] at jump-table case labels (AArch64 has no NOTRACK: [br] is
      always tracked) and at exception landing pads.

    The [c]/[j] distinction does architecturally what FILTERENDBR does by
    analysis on x86: catch blocks and switch cases are marked as *jump*
    targets, never as call targets, so harvesting [bti c] alone yields no
    landing-pad false positives.

    Scope notes (documented substitutions): no hot/cold splitting (GCC
    aarch64 splits too, but the paper's FP analysis is x86-specific), no
    indirect-return markers ([setjmp] returns via [ret] under PAC), and a
    single ILP64 code model. *)

type opts = {
  bti : bool;  (** [-mbranch-protection=bti] (standard); [false] = legacy *)
  tail_calls : bool;
}

val default_opts : opts

type result = {
  image : Cet_elf.Image.t;
  truth : (string * int) list;  (** function entries *)
}

val compile : opts -> Cet_compiler.Ir.program -> result
(** Raises [Invalid_argument] if {!Cet_compiler.Ir.validate} rejects the
    program. *)
