(** AArch64 instruction subset for the paper's §VI extension: Branch Target
    Identification (BTI) behaves like Intel's end-branch markers, so the
    FunSeeker algorithm ports almost verbatim.

    Instructions are fixed 4-byte words, which makes both encoding and
    linear-sweep disassembly far simpler than on x86. *)

type bti_kind =
  | Bti_c  (** valid [blr] target — function entries *)
  | Bti_j  (** valid [br] target — jump-table cases, landing pads *)
  | Bti_jc

type t =
  | Bti of bti_kind
  | Bl of int  (** word-aligned byte displacement from the instruction *)
  | B of int
  | Cbnz of int * int  (** register, byte displacement *)
  | Ret
  | Br of int  (** register *)
  | Blr of int
  | Adrp of int * int  (** register, page displacement in bytes (±4KiB units) *)
  | Add_imm of int * int * int  (** rd, rn, imm12 *)
  | Movz of int * int  (** rd, imm16 *)
  | Sub_sp of int  (** sub sp, sp, #imm *)
  | Add_sp of int
  | Stp_fp_lr of int  (** stp x29, x30, \[sp, #-imm\]! *)
  | Ldp_fp_lr of int  (** ldp x29, x30, \[sp\], #imm *)
  | Nop
  | Udf

val encode : t -> int32
(** The instruction word.  Raises [Invalid_argument] on out-of-range
    displacements or registers. *)

val encode_bytes : t -> string
(** Little-endian 4-byte encoding. *)

type kind =
  | K_bti of bti_kind
  | K_call of int  (** absolute target *)
  | K_jmp of int
  | K_cond of int
  | K_ret
  | K_indirect_jmp
  | K_indirect_call
  | K_adrp of int  (** absolute page address *)
  | K_other

type ins = { addr : int; kind : kind }

val decode : string -> base:int -> off:int -> ins
(** Decode the word at byte offset [off] (must be word-aligned and in
    bounds, else [Invalid_argument]).  Unrecognised words classify as
    [K_other] — on a fixed-width ISA there is nothing to resynchronise. *)

val sweep : string -> base:int -> ins list
(** Linear sweep: every word of the blob, in order. *)
