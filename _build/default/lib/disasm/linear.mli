(** Linear-sweep disassembly (§IV-B of the paper).

    The sweep decodes from the start of a code region to its end; on a
    decode failure it advances one byte and resumes, exactly as FunSeeker's
    DISASSEMBLE does.  The result keeps the full instruction stream (used by
    the baselines' analyses) plus the index structures FunSeeker needs. *)

type t = {
  arch : Cet_x86.Arch.t;
  base : int;  (** virtual address of the first byte *)
  size : int;
  code : string;  (** the swept bytes (byte signatures need them) *)
  insns : Cet_x86.Decoder.ins array;  (** in address order *)
  resync_errors : int;
      (** desynchronisation events: maximal runs of undecodable (or, for
          the anchored sweep, untrusted) bytes the sweep recovered from —
          one per run, however many bytes it spanned *)
}

val sweep : Cet_x86.Arch.t -> ?base:int -> string -> t
(** Disassemble a whole code blob (default [base] 0). *)

val sweep_text : Cet_elf.Reader.t -> t
(** Sweep the [.text] section of an ELF image.
    Raises [Invalid_argument] when the image has no [.text]. *)

val sweep_anchored : Cet_x86.Arch.t -> ?base:int -> string -> t
(** CET-aware sweep (the §VI superset-disassembly direction): end-branch
    byte patterns are unambiguous 4-byte markers, so every occurrence is
    forced to be an instruction boundary.  When a decoded instruction
    would straddle an anchor — which happens when inline data (e.g. a
    jump table in [.text]) desynchronised the sweep — the sweep discards
    it and restarts at the anchor.  On binaries without inline data the
    result equals {!sweep}. *)

val sweep_text_anchored : Cet_elf.Reader.t -> t

val in_range : t -> int -> bool
(** Is the address inside the swept region? *)

val endbr_addrs : t -> int list
(** Addresses of end-branch markers matching the architecture
    ([endbr64] on x86-64, [endbr32] on x86), in address order. *)

val call_targets : t -> int list
(** Distinct direct-call targets that land inside the swept region,
    sorted. *)

val jmp_targets : t -> int list
(** Distinct targets of unconditional direct jumps landing inside the
    region, sorted.  Conditional branches are excluded: only unconditional
    jumps can be tail calls. *)

val call_sites : t -> (int * int * int) list
(** Direct call sites as [(site_addr, return_addr, target)] — including
    calls leaving the region (PLT calls), which FILTERENDBR inspects. *)

val jmp_refs : t -> (int * int) list
(** Unconditional direct jumps as [(site_addr, target)], targets inside the
    region only. *)

val insn_at : t -> int -> Cet_x86.Decoder.ins option
(** The instruction starting exactly at the given address, if any. *)
