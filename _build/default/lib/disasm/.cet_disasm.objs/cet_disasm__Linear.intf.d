lib/disasm/linear.mli: Cet_elf Cet_x86
