lib/disasm/linear.ml: Array Cet_elf Cet_x86 Hashtbl List String
