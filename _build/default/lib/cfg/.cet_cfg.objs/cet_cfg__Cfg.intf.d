lib/cfg/cfg.mli: Cet_elf
