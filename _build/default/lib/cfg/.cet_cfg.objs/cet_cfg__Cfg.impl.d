lib/cfg/cfg.ml: Array Buffer Cet_disasm Cet_x86 Core Hashtbl List Option Printf
