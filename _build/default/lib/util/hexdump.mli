(** Human-readable hex rendering for debugging and the [inspect] tool. *)

val of_string : ?base:int -> string -> string
(** [of_string ~base s] renders [s] in the classic 16-bytes-per-line format,
    addresses starting at [base] (default 0). *)

val bytes_inline : string -> string
(** Space-separated hex bytes on one line, e.g. ["f3 0f 1e fa"]. *)
