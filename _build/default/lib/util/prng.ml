type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = { state = next64 g }

let int g n =
  assert (n > 0);
  (* Use the top bits: SplitMix64's low bits are fine, but masking to 62 bits
     keeps the value a non-negative OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 g) 2) in
  v mod n

let in_range g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g =
  let v = Int64.to_int (Int64.shift_right_logical (next64 g) 11) in
  float_of_int v /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (next64 g) 1L = 1L
let chance g p = float g < p

let choose g arr =
  assert (Array.length arr > 0);
  arr.(int g (Array.length arr))

let choose_weighted g items =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  assert (total > 0.0);
  let target = float g *. total in
  let rec pick acc = function
    | [] -> invalid_arg "choose_weighted: empty"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
      let acc = acc +. w in
      if target < acc then x else pick acc rest
  in
  pick 0.0 items

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
