let printable c = if Char.code c >= 0x20 && Char.code c < 0x7f then c else '.'

let of_string ?(base = 0) s =
  let buf = Buffer.create (String.length s * 4) in
  let len = String.length s in
  let line_start = ref 0 in
  while !line_start < len do
    let n = min 16 (len - !line_start) in
    Buffer.add_string buf (Printf.sprintf "%08x  " (base + !line_start));
    for i = 0 to 15 do
      if i < n then
        Buffer.add_string buf (Printf.sprintf "%02x " (Char.code s.[!line_start + i]))
      else Buffer.add_string buf "   ";
      if i = 7 then Buffer.add_char buf ' '
    done;
    Buffer.add_string buf " |";
    for i = 0 to n - 1 do
      Buffer.add_char buf (printable s.[!line_start + i])
    done;
    Buffer.add_string buf "|\n";
    line_start := !line_start + 16
  done;
  Buffer.contents buf

let bytes_inline s =
  String.concat " "
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))
