lib/util/bytesio.ml: Buffer Char Leb128 String
