lib/util/hexdump.ml: Buffer Char List Printf String
