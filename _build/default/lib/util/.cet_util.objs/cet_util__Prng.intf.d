lib/util/prng.mli:
