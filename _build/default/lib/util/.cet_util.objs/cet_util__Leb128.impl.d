lib/util/leb128.ml: Buffer Char String
