lib/util/itable.mli:
