lib/util/domain_pool.ml: Array Atomic Domain Printexc
