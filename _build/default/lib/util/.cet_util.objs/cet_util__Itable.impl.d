lib/util/itable.ml: Array List
