lib/util/domain_pool.mli:
