lib/util/leb128.mli: Buffer
