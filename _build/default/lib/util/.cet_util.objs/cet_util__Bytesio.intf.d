lib/util/bytesio.mli:
