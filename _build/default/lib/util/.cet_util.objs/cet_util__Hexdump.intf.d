lib/util/hexdump.mli:
