let write_u buf v =
  assert (v >= 0);
  let rec go v =
    let byte = v land 0x7f in
    let rest = v lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go v

let write_s buf v =
  let rec go v =
    let byte = v land 0x7f in
    let rest = v asr 7 in
    let sign_clear = byte land 0x40 = 0 in
    let done_ = (rest = 0 && sign_clear) || (rest = -1 && not sign_clear) in
    if done_ then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      go rest
    end
  in
  go v

let byte s pos =
  if pos >= String.length s then invalid_arg "Leb128: truncated input"
  else Char.code s.[pos]

let read_u s pos =
  let rec go acc shift pos =
    let b = byte s pos in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

let read_s s pos =
  let rec go acc shift pos =
    let b = byte s pos in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    let shift = shift + 7 in
    if b land 0x80 = 0 then
      let acc = if b land 0x40 <> 0 && shift < 63 then acc lor (-1 lsl shift) else acc in
      (acc, pos + 1)
    else go acc shift (pos + 1)
  in
  go 0 0 pos

let size_u v =
  let buf = Buffer.create 8 in
  write_u buf v;
  Buffer.length buf
