(** Deterministic pseudo-random number generation.

    All randomness in the corpus generator flows through this module so that
    the whole dataset is reproducible from a single integer seed.  The
    implementation is SplitMix64 (Steele et al., OOPSLA 2014), which has a
    trivially splittable state — convenient for generating independent
    sub-streams per program, per function, and per configuration. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g]. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in \[0, n). Requires [n > 0]. *)

val in_range : t -> int -> int -> int
(** [in_range g lo hi] is uniform in \[lo, hi\] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float
(** Uniform in \[0, 1). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val choose_weighted : t -> ('a * float) list -> 'a
(** [choose_weighted g items] picks proportionally to the (positive)
    weights. Requires a non-empty list with positive total weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
