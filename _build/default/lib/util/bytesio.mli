(** Little-endian byte-level readers and writers used by the ELF, EH and
    instruction codecs.  Everything is little-endian because the paper's
    targets (x86, x86-64) are. *)

module W : sig
  (** Append-only little-endian writer on top of [Buffer.t]. *)

  type t

  val create : ?size:int -> unit -> t
  val length : t -> int
  val contents : t -> string
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val i8 : t -> int -> unit
  val i32 : t -> int -> unit
  val bytes : t -> string -> unit
  val zeros : t -> int -> unit
  val pad_to : t -> int -> unit
  (** [pad_to w n] appends zero bytes until [length w >= n]. *)

  val align : t -> int -> unit
  (** [align w a] pads with zeros to the next multiple of [a]. *)

  val uleb : t -> int -> unit
  val sleb : t -> int -> unit
end

module R : sig
  (** Positioned little-endian reader over an immutable string. *)

  type t

  exception Out_of_bounds of string

  val of_string : string -> t
  val sub : string -> pos:int -> len:int -> t
  (** Reader over a slice; reads past the slice raise {!Out_of_bounds}. *)

  val pos : t -> int
  val seek : t -> int -> unit
  val remaining : t -> int
  val eof : t -> bool
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  (** Values above [max_int] raise {!Out_of_bounds}; all images here are
      far smaller than 2^62. *)

  val i8 : t -> int
  val i32 : t -> int
  val bytes : t -> int -> string
  val uleb : t -> int
  val sleb : t -> int
end
