module W = struct
  type t = Buffer.t

  let create ?(size = 1024) () = Buffer.create size
  let length = Buffer.length
  let contents = Buffer.contents
  let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

  let u16 w v =
    u8 w v;
    u8 w (v lsr 8)

  let u32 w v =
    u16 w v;
    u16 w (v lsr 16)

  let u64 w v =
    u32 w v;
    u32 w (v lsr 32)

  let i8 w v = u8 w (v land 0xff)
  let i32 w v = u32 w (v land 0xFFFFFFFF)
  let bytes w s = Buffer.add_string w s
  let zeros w n = for _ = 1 to n do Buffer.add_char w '\000' done

  let pad_to w n =
    let len = length w in
    if len < n then zeros w (n - len)

  let align w a =
    let len = length w in
    let rem = len mod a in
    if rem <> 0 then zeros w (a - rem)

  let uleb = Leb128.write_u
  let sleb = Leb128.write_s
end

module R = struct
  type t = { data : string; base : int; limit : int; mutable cur : int }

  exception Out_of_bounds of string

  let of_string s = { data = s; base = 0; limit = String.length s; cur = 0 }

  let sub s ~pos ~len =
    if pos < 0 || len < 0 || pos + len > String.length s then
      raise (Out_of_bounds "sub");
    { data = s; base = pos; limit = pos + len; cur = pos }

  let pos r = r.cur - r.base

  let seek r p =
    let abs = r.base + p in
    if abs < r.base || abs > r.limit then raise (Out_of_bounds "seek");
    r.cur <- abs

  let remaining r = r.limit - r.cur
  let eof r = r.cur >= r.limit

  let u8 r =
    if r.cur >= r.limit then raise (Out_of_bounds "u8");
    let v = Char.code r.data.[r.cur] in
    r.cur <- r.cur + 1;
    v

  let u16 r =
    let a = u8 r in
    let b = u8 r in
    a lor (b lsl 8)

  let u32 r =
    let a = u16 r in
    let b = u16 r in
    a lor (b lsl 16)

  let u64 r =
    let a = u32 r in
    let b = u32 r in
    if b lsr 30 <> 0 then raise (Out_of_bounds "u64: value exceeds int range");
    a lor (b lsl 32)

  let i8 r =
    let v = u8 r in
    if v >= 0x80 then v - 0x100 else v

  let i32 r =
    let v = u32 r in
    if v >= 0x80000000 then v - 0x100000000 else v

  let bytes r n =
    if n < 0 || r.cur + n > r.limit then raise (Out_of_bounds "bytes");
    let s = String.sub r.data r.cur n in
    r.cur <- r.cur + n;
    s

  let uleb r =
    let v, next = Leb128.read_u r.data r.cur in
    if next > r.limit then raise (Out_of_bounds "uleb");
    r.cur <- next;
    v

  let sleb r =
    let v, next = Leb128.read_s r.data r.cur in
    if next > r.limit then raise (Out_of_bounds "sleb");
    r.cur <- next;
    v
end
