type error = { index : int; exn : exn; bt : Printexc.raw_backtrace }

let sequential n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n (f 0) in
    for k = 1 to n - 1 do
      results.(k) <- f k
    done;
    results
  end

let map ?jobs n f =
  let jobs =
    match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
  in
  if n < 0 then invalid_arg "Domain_pool.map: negative size";
  (* The runtime refuses to run more than ~128 domains at once; stay well
     under it so a generous --jobs never aborts the evaluation. *)
  let jobs = max 1 (min (min jobs n) 120) in
  if jobs <= 1 then sequential n f
  else begin
    (* Work stealing over a shared index counter: each slot is written by
       exactly one worker, and [Domain.join] publishes those writes to the
       spawning domain, so no further synchronisation is needed for
       [results].  The first failure (lowest index a worker observed) wins
       and drains the queue. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let record_failure k exn bt =
      let rec loop () =
        match Atomic.get failure with
        | Some { index; _ } when index <= k -> ()
        | cur ->
          if not (Atomic.compare_and_set failure cur (Some { index = k; exn; bt }))
          then loop ()
      in
      loop ()
    in
    let rec worker () =
      let k = Atomic.fetch_and_add next 1 in
      if k < n && Atomic.get failure = None then begin
        (match f k with
        | v -> results.(k) <- Some v
        | exception exn -> record_failure k exn (Printexc.get_raw_backtrace ()));
        worker ()
      end
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

let fold ?jobs ~merge init n f =
  Array.fold_left merge init (map ?jobs n f)
