(** ELF format constants (subset used by this project). *)

val elfclass32 : int
val elfclass64 : int
val elfdata2lsb : int
val ev_current : int

val et_exec : int
val et_dyn : int

val em_386 : int
val em_x86_64 : int
val em_aarch64 : int

(* Section types *)
val sht_null : int
val sht_progbits : int
val sht_symtab : int
val sht_strtab : int
val sht_rela : int
val sht_rel : int
val sht_nobits : int
val sht_dynsym : int
val sht_note : int

(* Section flags *)
val shf_write : int
val shf_alloc : int
val shf_execinstr : int

(* Symbol binding / type *)
val stb_local : int
val stb_global : int
val stb_weak : int
val stt_notype : int
val stt_object : int
val stt_func : int
val stt_section : int
val stt_file : int

val shn_undef : int
val shn_abs : int

(* Program header *)
val pt_load : int
val pt_gnu_property : int

val pf_x : int
val pf_w : int
val pf_r : int

(* Relocations *)
val r_386_jmp_slot : int
val r_x86_64_jump_slot : int

(* GNU property note (CET marking) *)
val nt_gnu_property_type_0 : int
val gnu_property_x86_feature_1_and : int
val gnu_property_x86_feature_1_ibt : int
val gnu_property_x86_feature_1_shstk : int
