(** Symbol stripping, mirroring [strip(1)]: drops [.symtab]/[.strtab] while
    keeping everything the loader (and FunSeeker) needs — notably
    [.gcc_except_table], which the paper stresses cannot be stripped. *)

val strip : string -> string
(** [strip bytes] parses an ELF file and re-serialises it without its static
    symbol table. *)
