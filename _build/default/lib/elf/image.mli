(** In-memory model of an ELF executable: what the link stage produces and
    the writer serialises.

    Virtual addresses are chosen by the producer (the synthetic compiler's
    link stage); the writer only assigns file offsets and emits the derived
    sections ([.symtab]/[.strtab], [.dynsym]/[.dynstr], [.rel(a).plt],
    [.note.gnu.property], [.shstrtab]). *)

type section = {
  name : string;
  sh_type : int;
  flags : int;
  vaddr : int;
  addralign : int;
  entsize : int;
  data : string;
}

type t = {
  arch : Cet_x86.Arch.t;
      (** drives the ELF class and layout conventions; for non-x86 machines
          (the ARM BTI extension) use [X64] with a [machine] override *)
  machine : int option;  (** [e_machine] override (e.g. EM_AARCH64); [None] = from [arch] *)
  pie : bool;  (** [true] → [ET_DYN], [false] → [ET_EXEC] *)
  cet_note : bool;  (** emit the IBT+SHSTK [.note.gnu.property] *)
  entry : int;
  sections : section list;  (** content sections, in layout order *)
  symbols : Symbol.t list;  (** serialised to [.symtab] unless stripped *)
  dynsyms : Symbol.t list;  (** serialised to [.dynsym]; index 0 implicit *)
  plt_relocs : (int * string) list;
      (** (GOT slot vaddr, imported name) in PLT order; serialised to
          [.rel.plt] (x86) or [.rela.plt] (x86-64) *)
}

val section : ?flags:int -> ?addralign:int -> ?entsize:int -> ?sh_type:int ->
  name:string -> vaddr:int -> string -> section
(** Convenience constructor; defaults: PROGBITS, ALLOC, align 1, entsize 0. *)

val find_section : t -> string -> section option
