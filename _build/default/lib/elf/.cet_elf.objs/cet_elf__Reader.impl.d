lib/elf/reader.ml: Array Cet_util Cet_x86 Char Consts Image List Printf String Symbol
