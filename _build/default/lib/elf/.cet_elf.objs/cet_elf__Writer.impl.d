lib/elf/writer.ml: Buffer Cet_util Cet_x86 Consts Hashtbl Image List String Symbol
