lib/elf/symbol.mli:
