lib/elf/strip.mli:
