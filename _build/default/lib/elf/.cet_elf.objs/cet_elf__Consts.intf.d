lib/elf/consts.mli:
