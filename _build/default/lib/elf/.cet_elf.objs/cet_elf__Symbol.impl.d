lib/elf/symbol.ml: Consts
