lib/elf/consts.ml:
