lib/elf/image.ml: Cet_x86 Consts List Symbol
