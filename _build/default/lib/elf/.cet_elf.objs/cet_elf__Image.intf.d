lib/elf/image.mli: Cet_x86 Symbol
