lib/elf/strip.ml: Reader Writer
