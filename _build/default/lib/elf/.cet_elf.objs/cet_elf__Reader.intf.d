lib/elf/reader.mli: Cet_x86 Image Symbol
