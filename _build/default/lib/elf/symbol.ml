type kind = Func | Object | Notype | Section | File

type bind = Local | Global | Weak

type t = {
  name : string;
  value : int;
  size : int;
  kind : kind;
  bind : bind;
  section : string option;
}

let func ?(bind = Global) ?(size = 0) name value =
  { name; value; size; kind = Func; bind; section = Some ".text" }

let undef_func name =
  { name; value = 0; size = 0; kind = Func; bind = Global; section = None }

let kind_code = function
  | Notype -> Consts.stt_notype
  | Object -> Consts.stt_object
  | Func -> Consts.stt_func
  | Section -> Consts.stt_section
  | File -> Consts.stt_file

let bind_code = function
  | Local -> Consts.stb_local
  | Global -> Consts.stb_global
  | Weak -> Consts.stb_weak

let kind_of_code c =
  if c = Consts.stt_notype then Some Notype
  else if c = Consts.stt_object then Some Object
  else if c = Consts.stt_func then Some Func
  else if c = Consts.stt_section then Some Section
  else if c = Consts.stt_file then Some File
  else None

let bind_of_code c =
  if c = Consts.stb_local then Some Local
  else if c = Consts.stb_global then Some Global
  else if c = Consts.stb_weak then Some Weak
  else None
