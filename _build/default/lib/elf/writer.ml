module W = Cet_util.Bytesio.W
module Arch = Cet_x86.Arch

type finished_section = {
  f_name : string;
  f_type : int;
  f_flags : int;
  f_vaddr : int;
  f_link : string;  (* section name or "" *)
  f_info : int;
  f_align : int;
  f_entsize : int;
  f_data : string;
}

let of_image_section (s : Image.section) =
  {
    f_name = s.name;
    f_type = s.sh_type;
    f_flags = s.flags;
    f_vaddr = s.vaddr;
    f_link = "";
    f_info = 0;
    f_align = s.addralign;
    f_entsize = s.entsize;
    f_data = s.data;
  }

(* String table with classic layout: leading NUL, then each string. *)
let build_strtab names =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '\000';
  let offsets = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if not (Hashtbl.mem offsets n) then begin
        Hashtbl.replace offsets n (Buffer.length buf);
        Buffer.add_string buf n;
        Buffer.add_char buf '\000'
      end)
    names;
  (Buffer.contents buf, fun n -> if n = "" then 0 else Hashtbl.find offsets n)

let note_gnu_property arch =
  let w = W.create () in
  let word_align = match arch with Arch.X64 -> 8 | Arch.X86 -> 4 in
  W.u32 w 4 (* namesz: "GNU\0" *);
  (* descsz: pr_type + pr_datasz + data(4) padded to word size *)
  let desc_size = 8 + ((4 + word_align - 1) / word_align * word_align) in
  W.u32 w desc_size;
  W.u32 w Consts.nt_gnu_property_type_0;
  W.bytes w "GNU\000";
  W.u32 w Consts.gnu_property_x86_feature_1_and;
  W.u32 w 4 (* pr_datasz *);
  W.u32 w (Consts.gnu_property_x86_feature_1_ibt lor Consts.gnu_property_x86_feature_1_shstk);
  W.align w word_align;
  W.contents w

let sym_entry arch ~nameoff ~shndx (s : Symbol.t) =
  let w = W.create ~size:24 () in
  let info = (Symbol.bind_code s.bind lsl 4) lor Symbol.kind_code s.kind in
  (match arch with
  | Arch.X86 ->
    W.u32 w nameoff;
    W.u32 w s.value;
    W.u32 w s.size;
    W.u8 w info;
    W.u8 w 0;
    W.u16 w shndx
  | Arch.X64 ->
    W.u32 w nameoff;
    W.u8 w info;
    W.u8 w 0;
    W.u16 w shndx;
    W.u64 w s.value;
    W.u64 w s.size);
  W.contents w

(* Sort locals first (required: sh_info is the first non-local index). *)
let sort_symbols syms =
  let locals, globals = List.partition (fun (s : Symbol.t) -> s.bind = Symbol.Local) syms in
  (locals @ globals, List.length locals)

let build_symtab arch syms ~shndx_of =
  let syms, nlocals = sort_symbols syms in
  let strtab, stroff = build_strtab (List.map (fun (s : Symbol.t) -> s.name) syms) in
  let w = W.create () in
  (* Index 0: the null symbol. *)
  W.bytes w
    (sym_entry arch ~nameoff:0 ~shndx:0
       {
         Symbol.name = "";
         value = 0;
         size = 0;
         kind = Symbol.Notype;
         bind = Symbol.Local;
         section = None;
       });
  List.iter
    (fun (s : Symbol.t) ->
      let shndx =
        match s.section with None -> Consts.shn_undef | Some sec -> shndx_of sec
      in
      W.bytes w (sym_entry arch ~nameoff:(stroff s.name) ~shndx s))
    syms;
  (W.contents w, strtab, nlocals + 1, syms)

let build_plt_relocs arch relocs ~sym_index =
  let w = W.create () in
  List.iter
    (fun (slot, name) ->
      let sym = sym_index name in
      match arch with
      | Arch.X86 ->
        W.u32 w slot;
        W.u32 w ((sym lsl 8) lor Consts.r_386_jmp_slot)
      | Arch.X64 ->
        W.u64 w slot;
        W.u64 w ((sym lsl 32) lor Consts.r_x86_64_jump_slot);
        W.u64 w 0)
    relocs;
  W.contents w

let write ?(strip = false) (img : Image.t) =
  let arch = img.arch in
  let is64 = arch = Arch.X64 in
  let ehdr_size = if is64 then 64 else 52 in
  let phent = if is64 then 56 else 32 in
  let shent = if is64 then 64 else 40 in
  let is_debug name =
    String.length name >= 7 && String.sub name 0 7 = ".debug_"
  in
  let content_sections =
    if strip then List.filter (fun (s : Image.section) -> not (is_debug s.name)) img.sections
    else img.sections
  in
  let content = List.map of_image_section content_sections in
  let note_sections =
    if not img.cet_note then []
    else
      [
        {
          f_name = ".note.gnu.property";
          f_type = Consts.sht_note;
          f_flags = Consts.shf_alloc;
          f_vaddr = 0;
          f_link = "";
          f_info = 0;
          f_align = (if is64 then 8 else 4);
          f_entsize = 0;
          f_data = note_gnu_property arch;
        };
      ]
  in
  (* Final section-name order decides header indices; compute it up front so
     symbol st_shndx values can be resolved. *)
  let dyn_sections_names =
    if img.dynsyms = [] then []
    else [ ".dynsym"; ".dynstr" ] @ if img.plt_relocs = [] then [] else
      [ (if is64 then ".rela.plt" else ".rel.plt") ]
  in
  let symtab_names = if strip then [] else [ ".symtab"; ".strtab" ] in
  let all_names =
    [ "" ]
    @ List.map (fun s -> s.f_name) content
    @ List.map (fun s -> s.f_name) note_sections
    @ dyn_sections_names @ symtab_names @ [ ".shstrtab" ]
  in
  let shndx_of name =
    let rec find i = function
      | [] -> invalid_arg ("Writer: unknown section " ^ name)
      | n :: rest -> if n = name then i else find (i + 1) rest
    in
    find 0 all_names
  in
  (* Dynamic symbols + PLT relocations. *)
  let dyn_sections =
    if img.dynsyms = [] then []
    else begin
      let dynsym_data, dynstr_data, dnlocals, sorted =
        build_symtab arch img.dynsyms ~shndx_of
      in
      let sym_index name =
        let rec find i = function
          | [] -> invalid_arg ("Writer: plt reloc for unknown dynsym " ^ name)
          | (s : Symbol.t) :: rest -> if s.name = name then i else find (i + 1) rest
        in
        find 1 sorted
      in
      let dynsym =
        {
          f_name = ".dynsym";
          f_type = Consts.sht_dynsym;
          f_flags = Consts.shf_alloc;
          f_vaddr = 0;
          f_link = ".dynstr";
          f_info = dnlocals;
          f_align = (if is64 then 8 else 4);
          f_entsize = (if is64 then 24 else 16);
          f_data = dynsym_data;
        }
      and dynstr =
        {
          f_name = ".dynstr";
          f_type = Consts.sht_strtab;
          f_flags = Consts.shf_alloc;
          f_vaddr = 0;
          f_link = "";
          f_info = 0;
          f_align = 1;
          f_entsize = 0;
          f_data = dynstr_data;
        }
      in
      let relplt =
        if img.plt_relocs = [] then []
        else
          [
            {
              f_name = (if is64 then ".rela.plt" else ".rel.plt");
              f_type = (if is64 then Consts.sht_rela else Consts.sht_rel);
              f_flags = Consts.shf_alloc;
              f_vaddr = 0;
              f_link = ".dynsym";
              f_info = 0;
              f_align = (if is64 then 8 else 4);
              f_entsize = (if is64 then 24 else 8);
              f_data = build_plt_relocs arch img.plt_relocs ~sym_index;
            };
          ]
      in
      [ dynsym; dynstr ] @ relplt
    end
  in
  let symtab_sections =
    if strip then []
    else begin
      let symtab_data, strtab_data, nlocals, _ = build_symtab arch img.symbols ~shndx_of in
      [
        {
          f_name = ".symtab";
          f_type = Consts.sht_symtab;
          f_flags = 0;
          f_vaddr = 0;
          f_link = ".strtab";
          f_info = nlocals;
          f_align = (if is64 then 8 else 4);
          f_entsize = (if is64 then 24 else 16);
          f_data = symtab_data;
        };
        {
          f_name = ".strtab";
          f_type = Consts.sht_strtab;
          f_flags = 0;
          f_vaddr = 0;
          f_link = "";
          f_info = 0;
          f_align = 1;
          f_entsize = 0;
          f_data = strtab_data;
        };
      ]
    end
  in
  let shstrtab_data, shstroff =
    build_strtab (List.filter (fun n -> n <> "") all_names)
  in
  let shstrtab =
    {
      f_name = ".shstrtab";
      f_type = Consts.sht_strtab;
      f_flags = 0;
      f_vaddr = 0;
      f_link = "";
      f_info = 0;
      f_align = 1;
      f_entsize = 0;
      f_data = shstrtab_data;
    }
  in
  let sections = content @ note_sections @ dyn_sections @ symtab_sections @ [ shstrtab ] in
  assert (List.length sections + 1 = List.length all_names);
  (* Program headers: one PT_LOAD per allocatable content section. *)
  let loadable = List.filter (fun s -> s.f_flags land Consts.shf_alloc <> 0 && s.f_vaddr <> 0) sections in
  let phnum = List.length loadable in
  (* Assign file offsets. *)
  let off = ref (ehdr_size + (phnum * phent)) in
  let offsets =
    List.map
      (fun s ->
        let align = max 1 s.f_align in
        let rem = !off mod align in
        if rem <> 0 then off := !off + (align - rem);
        let o = !off in
        off := !off + String.length s.f_data;
        (s, o))
      sections
  in
  let shoff =
    let o = !off in
    let align = if is64 then 8 else 4 in
    o + ((align - (o mod align)) mod align)
  in
  let w = W.create ~size:65536 () in
  (* ELF header *)
  W.bytes w "\x7fELF";
  W.u8 w (if is64 then Consts.elfclass64 else Consts.elfclass32);
  W.u8 w Consts.elfdata2lsb;
  W.u8 w Consts.ev_current;
  W.zeros w 9;
  W.u16 w (if img.pie then Consts.et_dyn else Consts.et_exec);
  let machine =
    match img.machine with
    | Some m -> m
    | None -> if is64 then Consts.em_x86_64 else Consts.em_386
  in
  W.u16 w machine;
  W.u32 w Consts.ev_current;
  let addr v = if is64 then W.u64 w v else W.u32 w v in
  addr img.entry;
  addr (ehdr_size (* e_phoff *));
  addr shoff;
  W.u32 w 0 (* e_flags *);
  W.u16 w ehdr_size;
  W.u16 w phent;
  W.u16 w phnum;
  W.u16 w shent;
  W.u16 w (List.length sections + 1);
  W.u16 w (shndx_of ".shstrtab");
  assert (W.length w = ehdr_size);
  (* Program headers *)
  List.iter
    (fun s ->
      let o = List.assq s offsets in
      let flags =
        Consts.pf_r
        lor (if s.f_flags land Consts.shf_execinstr <> 0 then Consts.pf_x else 0)
        lor if s.f_flags land Consts.shf_write <> 0 then Consts.pf_w else 0
      in
      let size = String.length s.f_data in
      if is64 then begin
        W.u32 w Consts.pt_load;
        W.u32 w flags;
        W.u64 w o;
        W.u64 w s.f_vaddr;
        W.u64 w s.f_vaddr;
        W.u64 w size;
        W.u64 w size;
        W.u64 w (max 1 s.f_align)
      end
      else begin
        W.u32 w Consts.pt_load;
        W.u32 w o;
        W.u32 w s.f_vaddr;
        W.u32 w s.f_vaddr;
        W.u32 w size;
        W.u32 w size;
        W.u32 w flags;
        W.u32 w (max 1 s.f_align)
      end)
    loadable;
  (* Section contents *)
  List.iter
    (fun (s, o) ->
      W.pad_to w o;
      W.bytes w s.f_data)
    offsets;
  (* Section headers *)
  W.pad_to w shoff;
  let shdr s o =
    W.u32 w (shstroff s.f_name);
    W.u32 w s.f_type;
    addr s.f_flags;
    addr s.f_vaddr;
    addr o;
    addr (String.length s.f_data);
    W.u32 w (if s.f_link = "" then 0 else shndx_of s.f_link);
    W.u32 w s.f_info;
    addr (max 1 s.f_align);
    addr s.f_entsize
  in
  (* Null section header *)
  for _ = 1 to shent / 4 do
    W.u32 w 0
  done;
  List.iter (fun (s, o) -> shdr s o) offsets;
  W.contents w
