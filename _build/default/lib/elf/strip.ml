let strip bytes =
  let img = Reader.to_image (Reader.read bytes) in
  Writer.write ~strip:true img
