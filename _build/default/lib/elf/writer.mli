(** Serialisation of {!Image.t} into ELF32 / ELF64 executable bytes.

    In addition to the image's content sections, the writer derives and
    appends: [.note.gnu.property] (marking the binary IBT+SHSTK enabled, as
    CET-aware toolchains do), [.dynsym]/[.dynstr] and [.rel.plt] (x86) or
    [.rela.plt] (x86-64) when the image imports functions, [.symtab]/[.strtab]
    unless [strip] is set, and [.shstrtab].  One [PT_LOAD] program header is
    emitted per allocatable section. *)

val write : ?strip:bool -> Image.t -> string
(** [write ~strip img] returns the ELF file bytes.  [strip] (default false)
    omits [.symtab]/[.strtab] and every [.debug_*] section, exactly like
    [strip(1)] — the evaluation runs all identification tools on stripped
    images. *)
