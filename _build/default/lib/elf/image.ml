type section = {
  name : string;
  sh_type : int;
  flags : int;
  vaddr : int;
  addralign : int;
  entsize : int;
  data : string;
}

type t = {
  arch : Cet_x86.Arch.t;
  machine : int option;
  pie : bool;
  cet_note : bool;
  entry : int;
  sections : section list;
  symbols : Symbol.t list;
  dynsyms : Symbol.t list;
  plt_relocs : (int * string) list;
}

let section ?(flags = Consts.shf_alloc) ?(addralign = 1) ?(entsize = 0)
    ?(sh_type = Consts.sht_progbits) ~name ~vaddr data =
  { name; sh_type; flags; vaddr; addralign; entsize; data }

let find_section t name = List.find_opt (fun s -> s.name = name) t.sections
