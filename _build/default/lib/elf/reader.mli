(** ELF executable parser: the front half of PARSE in the FunSeeker
    algorithm, also used by the baseline tools and the ground-truth
    extractor. *)

type section = {
  name : string;
  sh_type : int;
  flags : int;
  vaddr : int;
  size : int;
  entsize : int;
  addralign : int;
  data : string;
}

type t

exception Malformed of string

val read : string -> t
(** Parse ELF bytes. Raises {!Malformed} on anything structurally broken. *)

val arch : t -> Cet_x86.Arch.t

val machine : t -> int
(** Raw [e_machine] (EM_386, EM_X86_64, or EM_AARCH64 for the BTI
    extension). *)

val pie : t -> bool
val entry : t -> int
val sections : t -> section list
val find_section : t -> string -> section option
val symbols : t -> Symbol.t list
(** [.symtab] contents (empty for stripped binaries). *)

val dyn_symbols : t -> Symbol.t array
(** [.dynsym] contents including the null entry at index 0. *)

val plt_relocs : t -> (int * string) list
(** [(got_slot_vaddr, import_name)] pairs from [.rel(a).plt], in table
    order — the order PLT stubs are laid out in. *)

val cet_enabled : t -> bool
(** True iff [.note.gnu.property] carries the IBT feature bit. *)

val to_image : t -> Image.t
(** Reconstruct a writable image (used by {!Strip}).  Derived sections
    ([.symtab], [.dynsym], notes, string tables…) are not duplicated into
    [Image.sections]; they are regenerated on write. *)
