(** Symbol-table entries, used for both [.symtab] (ground truth) and
    [.dynsym] (PLT name resolution). *)

type kind = Func | Object | Notype | Section | File

type bind = Local | Global | Weak

type t = {
  name : string;
  value : int;  (** virtual address *)
  size : int;
  kind : kind;
  bind : bind;
  section : string option;  (** defining section name; [None] = undefined *)
}

val func : ?bind:bind -> ?size:int -> string -> int -> t
(** [func name addr] builds a defined [STT_FUNC] symbol in [.text]. *)

val undef_func : string -> t
(** Undefined function symbol (an import, for [.dynsym]). *)

val kind_code : kind -> int
val bind_code : bind -> int
val kind_of_code : int -> kind option
val bind_of_code : int -> bind option
