lib/compiler/ir.mli:
