lib/compiler/link.mli: Cet_elf Ir Options
