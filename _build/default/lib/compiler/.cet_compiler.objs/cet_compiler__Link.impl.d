lib/compiler/link.ml: Cet_eh Cet_elf Cet_util Cet_x86 Codegen Hashtbl Ir List Option Options String
