lib/compiler/codegen.ml: Cet_x86 Filename Hashtbl Ir List Options Printf
