lib/compiler/options.mli: Cet_x86
