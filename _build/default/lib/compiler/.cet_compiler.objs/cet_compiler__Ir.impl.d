lib/compiler/ir.ml: Hashtbl List Printf
