lib/compiler/codegen.mli: Cet_x86 Ir Options
