lib/compiler/options.ml: Cet_x86 List Printf
