module Arch = Cet_x86.Arch
module Insn = Cet_x86.Insn
module Asm = Cet_x86.Asm
module Reg = Cet_x86.Register

type lsda_site = { try_start : string; try_end : string; landing : string option }

type fragment = {
  frag_name : string;
  parent : string option;
  is_function : bool;
  has_symbol : bool;
  global : bool;
  items : Asm.item list;
  lsda_sites : lsda_site list;
  handler_count : int;
  tables : (string * string list) list;
}

type output = { fragments : fragment list; imports : string list }

let plt_label name = "plt$" ^ name
let frag_end_label name = name ^ "$end"
let thunk_bx = "__x86.get_pc_thunk.bx"
let thunk_ax = "__x86.get_pc_thunk.ax"

(* Per-fragment lowering context.  [rolling] is a cheap deterministic LCG
   used to vary instruction selection the way different source bodies
   would, keyed off the function name. *)
type fctx = {
  opts : Options.t;
  fname : string;
  mutable counter : int;
  mutable rolling : int;
  mutable rev_items : Asm.item list;  (* body, reversed *)
  mutable rev_tail : Asm.item list;  (* landing pads after the epilogue *)
  mutable sites : lsda_site list;
  mutable handlers : int;
  mutable tables : (string * string list) list;
  epilogue : Asm.item list;  (* for tail-call sites *)
}

let roll ctx bound =
  ctx.rolling <- (ctx.rolling * 1103515245) + 12345 land 0x3FFFFFFF;
  (ctx.rolling lsr 7) mod bound

let fresh ctx tag =
  let n = ctx.counter in
  ctx.counter <- n + 1;
  Printf.sprintf "%s$%s%d" ctx.fname tag n

let emit ctx item = ctx.rev_items <- item :: ctx.rev_items
let emit_ins ctx i = emit ctx (Asm.Ins i)
let emit_tail ctx item = ctx.rev_tail <- item :: ctx.rev_tail

let x86 ctx = ctx.opts.Options.arch = Arch.X86

(* ALU filler: straight-line work that never touches control flow.  The
   mix approximates compiler output: moves and adds dominate, with the
   occasional shift, extension, flag materialisation or cmov. *)
let filler ctx n =
  for _ = 1 to n do
    let i =
      match roll ctx 18 with
      | 0 -> Insn.Mov_ri (Reg.RAX, 0x100 + roll ctx 4096)
      | 1 -> Insn.Add_rr (Reg.RAX, Reg.RCX)
      | 2 -> Insn.Xor_rr (Reg.RDX, Reg.RDX)
      | 3 -> Insn.Add_ri (Reg.RAX, 1 + roll ctx 126)
      | 4 -> Insn.Mov_rr (Reg.RCX, Reg.RAX)
      | 5 -> Insn.Sub_ri (Reg.RCX, 1 + roll ctx 126)
      | 6 -> Insn.Test_rr (Reg.RAX, Reg.RAX)
      | 7 -> Insn.Mov_rm (Reg.RAX, Insn.mem_base Reg.RSP 8)
      | 8 -> Insn.Mov_mr (Insn.mem_base Reg.RSP 16, Reg.RAX)
      | 9 -> Insn.And_ri (Reg.RAX, (1 lsl (1 + roll ctx 7)) - 1)
      | 10 -> Insn.Or_rr (Reg.RDX, Reg.RAX)
      | 11 -> Insn.Inc Reg.RAX
      | 12 -> Insn.Dec Reg.RCX
      | 13 -> Insn.Shl_ri (Reg.RAX, 1 + roll ctx 4)
      | 14 -> Insn.Sar_ri (Reg.RDX, 1 + roll ctx 4)
      | 15 -> Insn.Imul_rr (Reg.RAX, Reg.RCX)
      | 16 -> Insn.Movzx_b (Reg.RDX, Reg.RAX)
      | _ -> Insn.Cmov (Insn.NE, Reg.RAX, Reg.RDX)
    in
    emit_ins ctx i
  done

(* Materialise a code address into [reg]: RIP-relative lea on x86-64,
   absolute mov on x86. *)
let addr_of ctx reg target = emit ctx (Asm.Lea_lbl (reg, target))

let call_cleanup ctx pushed =
  if x86 ctx && pushed then emit_ins ctx (Insn.Add_ri (Reg.RSP, 4))

let emit_call ctx target =
  let with_arg = roll ctx 3 = 0 in
  let pushed =
    if with_arg then
      if x86 ctx then begin
        emit_ins ctx (Insn.Push_imm (roll ctx 1000));
        true
      end
      else begin
        emit_ins ctx (Insn.Mov_ri (Reg.RDI, roll ctx 1000));
        false
      end
    else false
  in
  emit ctx (Asm.Call_lbl target);
  call_cleanup ctx pushed

let rec lower_stmt ctx stmt =
  match stmt with
  | Ir.Compute n -> filler ctx n
  | Ir.Call (Ir.Local f) -> emit_call ctx f
  | Ir.Call (Ir.Import i) -> emit_call ctx (plt_label i)
  | Ir.Call_via_pointer f ->
    addr_of ctx Reg.RAX f;
    emit_ins ctx (Insn.Call_reg Reg.RAX)
  | Ir.Store_fn_pointer f ->
    if x86 ctx then emit ctx (Asm.Mov_mi_lbl (Insn.mem_base Reg.RSP 4, f))
    else begin
      addr_of ctx Reg.RAX f;
      emit_ins ctx (Insn.Mov_mr (Insn.mem_base Reg.RSP 8, Reg.RAX))
    end
  | Ir.Indirect_return_call s ->
    (* Fig. 2a: the end-branch lands immediately after the call so the
       indirect return of longjmp has a valid target. *)
    if x86 ctx then emit_ins ctx (Insn.Push_imm (0x404000 + roll ctx 256))
    else emit_ins ctx (Insn.Mov_ri (Reg.RDI, 0x404000 + roll ctx 256));
    emit ctx (Asm.Call_lbl (plt_label s));
    if ctx.opts.Options.cf_protection <> Options.Cf_none then emit_ins ctx Insn.Endbr;
    call_cleanup ctx (x86 ctx);
    emit_ins ctx (Insn.Test_rr (Reg.RAX, Reg.RAX));
    let l = fresh ctx "sj" in
    emit ctx (Asm.Jcc_lbl (Insn.NE, l));
    filler ctx 1;
    emit ctx (Asm.Label l)
  | Ir.If_else (a, b) ->
    if roll ctx 5 = 0 then begin
      (* Bool materialisation before the branch, as compilers emit for
         compound conditions. *)
      emit_ins ctx (Insn.Cmp_rr (Reg.RAX, Reg.RDX));
      emit_ins ctx (Insn.Setcc (Insn.L, Reg.RCX));
      emit_ins ctx (Insn.Movzx_b (Reg.RCX, Reg.RCX))
    end;
    emit_ins ctx (Insn.Cmp_ri (Reg.RAX, roll ctx 64));
    if b = [] then begin
      let join = fresh ctx "j" in
      emit ctx (Asm.Jcc_lbl (Insn.E, join));
      lower_stmts ctx a;
      emit ctx (Asm.Label join)
    end
    else begin
      let lelse = fresh ctx "e" and join = fresh ctx "j" in
      emit ctx (Asm.Jcc_lbl (Insn.E, lelse));
      lower_stmts ctx a;
      emit ctx (Asm.Jmp_lbl join);
      emit ctx (Asm.Label lelse);
      lower_stmts ctx b;
      emit ctx (Asm.Label join)
    end
  | Ir.Loop body ->
    if ctx.opts.Options.opt = Options.O0 then begin
      (* Unrotated loop: forward jump to the condition, backward
         conditional edge. *)
      let lcond = fresh ctx "lc" and lbody = fresh ctx "lb" in
      emit ctx (Asm.Jmp_lbl lcond);
      emit ctx (Asm.Label lbody);
      lower_stmts ctx body;
      emit ctx (Asm.Label lcond);
      emit_ins ctx (Insn.Cmp_ri (Reg.RAX, roll ctx 64));
      emit ctx (Asm.Jcc_lbl (Insn.NE, lbody))
    end
    else begin
      (* Rotated loop: no unconditional jump. *)
      let lbody = fresh ctx "lb" in
      emit_ins ctx (Insn.Mov_ri (Reg.RCX, 1 + roll ctx 100));
      emit ctx (Asm.Label lbody);
      lower_stmts ctx body;
      emit_ins ctx (Insn.Sub_ri (Reg.RCX, 1));
      emit ctx (Asm.Jcc_lbl (Insn.NE, lbody))
    end
  | Ir.Switch cases ->
    let n = List.length cases in
    assert (n > 0);
    let jt = fresh ctx "jt" in
    let lend = fresh ctx "sw" and ldef = fresh ctx "sd" in
    let case_labels = List.mapi (fun i _ -> Printf.sprintf "%s$c%d" jt i) cases in
    emit_ins ctx (Insn.Cmp_ri (Reg.RAX, n - 1));
    emit ctx (Asm.Jcc_lbl (Insn.A, ldef));
    (if x86 ctx then
       emit ctx (Asm.Jmp_table_lbl { table = jt; index = Reg.RAX; scale = 4; notrack = true })
     else begin
       emit_ins ctx (Insn.Mov_rr (Reg.RCX, Reg.RAX));
       emit ctx (Asm.Lea_lbl (Reg.RDX, jt));
       emit_ins ctx
         (Insn.Mov_rm (Reg.RAX, Insn.mem_index ~base:Reg.RDX ~index:Reg.RCX ~scale:8 ~disp:0));
       emit_ins ctx (Insn.Jmp_reg { reg = Reg.RAX; notrack = true })
     end);
    (* Hand-written-assembly style (§VI): the jump table itself sits in
       .text, right behind the dispatch — the data-in-code case that breaks
       plain linear sweep. *)
    if ctx.opts.Options.jump_tables_in_text then begin
      emit ctx (Asm.Label jt);
      emit ctx
        (Asm.Table
           {
             entries = case_labels;
             entry_size = Arch.ptr_size ctx.opts.Options.arch;
           })
    end
    else ctx.tables <- (jt, case_labels) :: ctx.tables;
    List.iteri
      (fun i case ->
        emit ctx (Asm.Label (List.nth case_labels i));
        lower_stmts ctx case;
        emit ctx (Asm.Jmp_lbl lend))
      cases;
    emit ctx (Asm.Label ldef);
    filler ctx 1;
    emit ctx (Asm.Label lend)
  | Ir.Try_catch (body, handlers) ->
    let try_start = fresh ctx "ts" and try_end = fresh ctx "te" in
    let cont = fresh ctx "tc" and lp = fresh ctx "lp" in
    emit ctx (Asm.Label try_start);
    lower_stmts ctx body;
    emit ctx (Asm.Label try_end);
    emit ctx (Asm.Label cont);
    (* The landing pad lives past the epilogue, Fig. 2b style: an
       end-branch headed catch block reached only by the unwinder's
       indirect jump. *)
    emit_tail ctx (Asm.Label lp);
    if ctx.opts.Options.cf_protection <> Options.Cf_none then
      emit_tail ctx (Asm.Ins Insn.Endbr);
    emit_tail ctx (Asm.Ins (Insn.Mov_rr (Reg.RBX, Reg.RAX)));
    emit_tail ctx (Asm.Call_lbl (plt_label "__cxa_begin_catch"));
    (match handlers with
    | [] -> ()
    | first :: rest ->
      let rest_labels = List.map (fun _ -> fresh ctx "h") rest in
      (* Dispatch on the exception filter for secondary catch clauses. *)
      List.iteri
        (fun i l ->
          emit_tail ctx (Asm.Ins (Insn.Cmp_ri (Reg.RDX, i + 2)));
          emit_tail ctx (Asm.Jcc_lbl (Insn.E, l)))
        rest_labels;
      let saved = ctx.rev_items in
      ctx.rev_items <- [];
      lower_stmts ctx first;
      let first_items = List.rev ctx.rev_items in
      ctx.rev_items <- saved;
      List.iter (emit_tail ctx) first_items;
      emit_tail ctx (Asm.Call_lbl (plt_label "__cxa_end_catch"));
      emit_tail ctx (Asm.Jmp_lbl cont);
      List.iter2
        (fun l h ->
          emit_tail ctx (Asm.Label l);
          let saved = ctx.rev_items in
          ctx.rev_items <- [];
          lower_stmts ctx h;
          let items = List.rev ctx.rev_items in
          ctx.rev_items <- saved;
          List.iter (emit_tail ctx) items;
          emit_tail ctx (Asm.Call_lbl (plt_label "__cxa_end_catch"));
          emit_tail ctx (Asm.Jmp_lbl cont))
        rest_labels rest);
    ctx.sites <- { try_start; try_end; landing = Some lp } :: ctx.sites;
    ctx.handlers <- ctx.handlers + List.length handlers;
    (* Clang's inliner clones landing pads more readily than GCC, which is
       why its exception share of end-branch locations is higher in
       Table I.  Model: every other try block gets an inlined duplicate of
       its guarded region with its own landing pad. *)
    if ctx.opts.Options.compiler = Options.Clang
       && ctx.opts.Options.opt <> Options.O0 && roll ctx 2 = 0
    then begin
      let ts2 = fresh ctx "ts" and te2 = fresh ctx "te" and lp2 = fresh ctx "lp" in
      emit ctx (Asm.Label ts2);
      filler ctx 2;
      emit ctx (Asm.Label te2);
      emit_tail ctx (Asm.Label lp2);
      if ctx.opts.Options.cf_protection <> Options.Cf_none then
        emit_tail ctx (Asm.Ins Insn.Endbr);
      emit_tail ctx (Asm.Ins (Insn.Mov_rr (Reg.RBX, Reg.RAX)));
      emit_tail ctx (Asm.Call_lbl (plt_label "__cxa_end_catch"));
      emit_tail ctx (Asm.Jmp_lbl cont);
      ctx.sites <- { try_start = ts2; try_end = te2; landing = Some lp2 } :: ctx.sites
    end
  | Ir.Tail_call_site f ->
    if Options.tail_calls_enabled ctx.opts then begin
      let skip = fresh ctx "nt" in
      emit_ins ctx (Insn.Test_rr (Reg.RAX, Reg.RAX));
      emit ctx (Asm.Jcc_lbl (Insn.E, skip));
      List.iter (emit ctx) ctx.epilogue;
      emit ctx (Asm.Jmp_lbl f);
      emit ctx (Asm.Label skip)
    end
    else emit_call ctx f
  | Ir.Jump_to_part f ->
    if Options.cold_splitting_enabled ctx.opts then begin
      let skip = fresh ctx "np" in
      emit_ins ctx (Insn.Test_rr (Reg.RAX, Reg.RAX));
      emit ctx (Asm.Jcc_lbl (Insn.E, skip));
      List.iter (emit ctx) ctx.epilogue;
      emit ctx (Asm.Jmp_lbl (f ^ ".part.0"));
      emit ctx (Asm.Label skip)
    end
    else emit_call ctx f

and lower_stmts ctx stmts = List.iter (lower_stmt ctx) stmts

(* Prologue/epilogue pair for a function body under the current options.
   O0 keeps the frame pointer; higher levels drop it and, for leaves, may
   use no stack adjustment at all. *)
let frame_shape opts ~leaf ~seed =
  let open Options in
  match opts.opt with
  | O0 ->
    let n = 0x20 + (seed mod 4 * 8) in
    ( [ Asm.Ins (Insn.Push Reg.RBP);
        Asm.Ins (Insn.Mov_rr (Reg.RBP, Reg.RSP));
        Asm.Ins (Insn.Sub_ri (Reg.RSP, n)) ],
      [ Asm.Ins Insn.Leave ] )
  | O1 | O2 | O3 | Os | Ofast ->
    if leaf && seed mod 3 = 0 then ([], [])
    else if seed mod 2 = 0 then
      let n = 0x18 + (seed mod 3 * 8) in
      ( [ Asm.Ins (Insn.Sub_ri (Reg.RSP, n)) ],
        [ Asm.Ins (Insn.Add_ri (Reg.RSP, n)) ] )
    else
      let n = 0x10 + (seed mod 3 * 8) in
      ( [ Asm.Ins (Insn.Push Reg.RBX); Asm.Ins (Insn.Sub_ri (Reg.RSP, n)) ],
        [ Asm.Ins (Insn.Add_ri (Reg.RSP, n)); Asm.Ins (Insn.Pop Reg.RBX) ] )

let rec stmts_have_calls stmts =
  List.exists
    (fun s ->
      match s with
      | Ir.Call _ | Ir.Call_via_pointer _ | Ir.Indirect_return_call _
      | Ir.Tail_call_site _ | Ir.Jump_to_part _ | Ir.Try_catch _ ->
        true
      | Ir.Compute _ | Ir.Store_fn_pointer _ -> false
      | Ir.If_else (a, b) -> stmts_have_calls a || stmts_have_calls b
      | Ir.Loop b -> stmts_have_calls b
      | Ir.Switch cs -> List.exists stmts_have_calls cs)
    stmts

let rec stmts_use_pic stmts =
  List.exists
    (fun s ->
      match s with
      | Ir.Store_fn_pointer _ | Ir.Call_via_pointer _ | Ir.Switch _
      | Ir.Indirect_return_call _ ->
        true
      | Ir.Call _ | Ir.Compute _ | Ir.Tail_call_site _ | Ir.Jump_to_part _ -> false
      | Ir.If_else (a, b) -> stmts_use_pic a || stmts_use_pic b
      | Ir.Loop b -> stmts_use_pic b
      | Ir.Try_catch (b, hs) -> stmts_use_pic b || List.exists stmts_use_pic hs)
    stmts

let new_ctx opts fname epilogue =
  {
    opts;
    fname;
    counter = 0;
    rolling = Hashtbl.hash fname land 0xFFFFFF;
    rev_items = [];
    rev_tail = [];
    sites = [];
    handlers = 0;
    tables = [];
    epilogue;
  }

let wants_endbr opts (f : Ir.func) =
  (not f.no_endbr)
  &&
  match opts.Options.cf_protection with
  | Options.Cf_none -> false
  | Options.Cf_full -> f.linkage = Ir.Exported || f.address_taken || f.name = "main"
  | Options.Cf_manual ->
    (* -mmanual-endbr: only genuine indirect-branch targets are marked
       (the programmer knows which addresses escape). *)
    f.address_taken || f.name = "main"

(* Lower one IR function into its main fragment plus any split fragments. *)
let lower_function opts (f : Ir.func) ~pic_thunk_used =
  let align = Options.function_alignment opts in
  let seed = Hashtbl.hash f.name land 0xFFFF in
  let split = Options.cold_splitting_enabled opts in
  let leaf = not (stmts_have_calls (Ir.func_stmts f)) in
  let prologue, epilogue_core = frame_shape opts ~leaf ~seed in
  (* The context's epilogue excludes [ret]: tail-call sites splice it in
     front of their [jmp]. *)
  let ctx = new_ctx opts f.name epilogue_core in
  emit ctx (Asm.Align { boundary = align; fill = Asm.Fill_nop });
  emit ctx (Asm.Label f.name);
  if wants_endbr opts f then emit_ins ctx Insn.Endbr;
  List.iter (emit ctx) prologue;
  if x86 ctx && ctx.opts.Options.pie && stmts_use_pic f.body then begin
    pic_thunk_used := true;
    emit ctx (Asm.Call_lbl thunk_bx);
    emit_ins ctx (Insn.Add_ri (Reg.RBX, 0x2000 + (seed land 0xFFF)))
  end;
  lower_stmts ctx f.body;
  (* Split fates. *)
  let extra_fragments = ref [] in
  (match f.fate with
  | Ir.Keep_whole -> ()
  | Ir.Split_cold cold_body ->
    if split then begin
      let cold_name = f.name ^ ".cold" in
      let back = fresh ctx "cb" in
      emit_ins ctx (Insn.Cmp_ri (Reg.RDX, 1));
      emit ctx (Asm.Jcc_lbl (Insn.E, cold_name));
      emit ctx (Asm.Label back);
      let cctx = new_ctx opts cold_name [] in
      emit cctx (Asm.Label cold_name);
      lower_stmts cctx cold_body;
      emit cctx (Asm.Jmp_lbl back);
      emit cctx (Asm.Label (frag_end_label cold_name));
      extra_fragments :=
        {
          frag_name = cold_name;
          parent = Some f.name;
          is_function = false;
          has_symbol = true;
          global = false;
          items = List.rev cctx.rev_items;
          lsda_sites = [];
          handler_count = 0;
          tables = List.rev cctx.tables;
        }
        :: !extra_fragments
    end
    else begin
      let skip = fresh ctx "cs" in
      emit_ins ctx (Insn.Cmp_ri (Reg.RDX, 1));
      emit ctx (Asm.Jcc_lbl (Insn.NE, skip));
      lower_stmts ctx cold_body;
      emit ctx (Asm.Label skip)
    end
  | Ir.Split_part { part_body; _ } ->
    if split then begin
      let part_name = f.name ^ ".part.0" in
      emit ctx (Asm.Call_lbl part_name);
      let p_pro, p_epi = frame_shape opts ~leaf:false ~seed:(seed + 1) in
      let pctx = new_ctx opts part_name p_epi in
      emit pctx (Asm.Label part_name);
      List.iter (emit pctx) p_pro;
      lower_stmts pctx part_body;
      List.iter (emit pctx) p_epi;
      emit pctx (Asm.Ins Insn.Ret);
      emit pctx (Asm.Label (frag_end_label part_name));
      extra_fragments :=
        {
          frag_name = part_name;
          parent = Some f.name;
          is_function = false;
          has_symbol = true;
          global = false;
          items = List.rev pctx.rev_items;
          lsda_sites = [];
          handler_count = 0;
          tables = List.rev pctx.tables;
        }
        :: !extra_fragments
    end
    else lower_stmts ctx part_body);
  List.iter (emit ctx) (epilogue_core @ [ Asm.Ins Insn.Ret ]);
  (* Landing pads and other post-return blocks. *)
  List.iter (emit ctx) (List.rev ctx.rev_tail);
  emit ctx (Asm.Label (frag_end_label f.name));
  let main_frag =
    {
      frag_name = f.name;
      parent = None;
      is_function = true;
      has_symbol = true;
      global = (f.linkage = Ir.Exported);
      items = List.rev ctx.rev_items;
      lsda_sites = List.rev ctx.sites;
      handler_count = ctx.handlers;
      tables = List.rev ctx.tables;
    }
  in
  (main_frag, List.rev !extra_fragments)

let start_fragment opts ~use_thunk_ax =
  let items = ref [] in
  let add i = items := i :: !items in
  add (Asm.Align { boundary = 16; fill = Asm.Fill_nop });
  add (Asm.Label "_start");
  if opts.Options.cf_protection <> Options.Cf_none then add (Asm.Ins Insn.Endbr);
  if use_thunk_ax then add (Asm.Call_lbl thunk_ax);
  add (Asm.Ins (Insn.Xor_rr (Reg.RBP, Reg.RBP)));
  if opts.Options.arch = Arch.X86 then add (Asm.Push_lbl "main")
  else add (Asm.Lea_lbl (Reg.RDI, "main"));
  add (Asm.Call_lbl (plt_label "__libc_start_main"));
  add (Asm.Ins Insn.Hlt);
  add (Asm.Label (frag_end_label "_start"));
  {
    frag_name = "_start";
    parent = None;
    is_function = true;
    has_symbol = true;
    global = true;
    items = List.rev !items;
    lsda_sites = [];
    handler_count = 0;
    tables = [];
  }

let thunk_fragment name ~has_symbol =
  {
    frag_name = name;
    parent = None;
    is_function = true;
    has_symbol;
    global = false;
    items =
      [
        Asm.Align { boundary = 16; fill = Asm.Fill_nop };
        Asm.Label name;
        Asm.Ins (Insn.Mov_rm (Reg.RBX, Insn.mem_base Reg.RSP 0));
        Asm.Ins Insn.Ret;
        Asm.Label (frag_end_label name);
      ];
    lsda_sites = [];
    handler_count = 0;
    tables = [];
  }

let lower opts (p : Ir.program) =
  (match Ir.validate p with
  | Ok () -> ()
  | Error e -> invalid_arg ("Codegen.lower: " ^ e));
  let x86_pie = opts.Options.arch = Arch.X86 && opts.Options.pie in
  let pic_thunk_used = ref false in
  let lowered = List.map (lower_function opts ~pic_thunk_used) p.funcs in
  let mains = List.concat_map (fun (m, extras) -> m :: List.filter (fun fr -> fr.parent <> None && Filename.check_suffix fr.frag_name ".part.0") extras) lowered in
  let colds =
    List.concat_map
      (fun (_, extras) ->
        List.filter (fun fr -> Filename.check_suffix fr.frag_name ".cold") extras)
      lowered
  in
  let thunks =
    if x86_pie then
      [ thunk_fragment thunk_ax ~has_symbol:false ]
      @ if !pic_thunk_used then [ thunk_fragment thunk_bx ~has_symbol:true ] else []
    else []
  in
  let fragments = (start_fragment opts ~use_thunk_ax:x86_pie :: thunks) @ mains @ colds in
  let imports = "__libc_start_main" :: Ir.collect_imports p in
  { fragments; imports }
