module Arch = Cet_x86.Arch

type compiler = Gcc | Clang

type opt_level = O0 | O1 | O2 | O3 | Os | Ofast

type cf_protection = Cf_full | Cf_manual | Cf_none

type t = {
  compiler : compiler;
  arch : Arch.t;
  pie : bool;
  opt : opt_level;
  cf_protection : cf_protection;
  jump_tables_in_text : bool;
}

let default =
  {
    compiler = Gcc;
    arch = Arch.X64;
    pie = true;
    opt = O2;
    cf_protection = Cf_full;
    jump_tables_in_text = false;
  }

let opt_levels = [ O0; O1; O2; O3; Os; Ofast ]

let all_grid =
  List.concat_map
    (fun compiler ->
      List.concat_map
        (fun arch ->
          List.concat_map
            (fun pie ->
              List.map
                (fun opt ->
                  {
                    compiler;
                    arch;
                    pie;
                    opt;
                    cf_protection = Cf_full;
                    jump_tables_in_text = false;
                  })
                opt_levels)
            [ false; true ])
        [ Arch.X86; Arch.X64 ])
    [ Gcc; Clang ]

let tail_calls_enabled t =
  match t.opt with O2 | O3 | Os | Ofast -> true | O0 | O1 -> false

let cold_splitting_enabled t =
  t.compiler = Gcc && match t.opt with O2 | O3 | Ofast -> true | O0 | O1 | Os -> false

let function_alignment t = match t.opt with Os -> 4 | _ -> 16

let emits_fdes t ~lang_cpp =
  lang_cpp || t.compiler = Gcc || t.arch = Arch.X64

let compiler_name = function Gcc -> "gcc" | Clang -> "clang"

let opt_name = function
  | O0 -> "O0"
  | O1 -> "O1"
  | O2 -> "O2"
  | O3 -> "O3"
  | Os -> "Os"
  | Ofast -> "Ofast"

let to_string t =
  Printf.sprintf "%s-%s-%s-%s" (compiler_name t.compiler)
    (match t.arch with Arch.X86 -> "x86" | Arch.X64 -> "x64")
    (if t.pie then "pie" else "nopie")
    (opt_name t.opt)
