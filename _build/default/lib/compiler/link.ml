module Arch = Cet_x86.Arch
module Insn = Cet_x86.Insn
module Asm = Cet_x86.Asm
module Reg = Cet_x86.Register
module Encoder = Cet_x86.Encoder
module Image = Cet_elf.Image
module Symbol = Cet_elf.Symbol
module Consts = Cet_elf.Consts
module W = Cet_util.Bytesio.W

type result = {
  image : Image.t;
  truth : (string * int) list;
  fragment_extents : (string * int * int) list;
  plt_entries : (string * int) list;
}

let base_address (opts : Options.t) =
  match (opts.arch, opts.pie) with
  | Arch.X86, false -> 0x8049000
  | Arch.X64, false -> 0x401000
  | _, true -> 0x1000

let plt_entry_size = 16

let align_up v a = (v + a - 1) / a * a

(* IBT-style PLT: every entry starts with an end-branch and jumps through
   its GOT slot; entry 0 is the resolver stub.  Legacy (-fcf-protection=none)
   links use the unmarked layout. *)
let build_plt arch ~cet ~plt_vaddr ~got_vaddr ~nimports =
  let ptr = Arch.ptr_size arch in
  let w = W.create () in
  let entry ~index ~slot =
    let start = plt_vaddr + (index * plt_entry_size) in
    let endbr = if cet then Encoder.encode arch Insn.Endbr else "" in
    W.bytes w endbr;
    let jmp_vaddr = start + String.length endbr in
    (* jmp [slot]: absolute on x86, RIP-relative on x86-64. *)
    let disp =
      match arch with
      | Arch.X86 -> slot
      | Arch.X64 -> slot - (jmp_vaddr + 6)
    in
    W.bytes w (Encoder.encode arch (Insn.Jmp_mem { mem = Insn.mem_abs disp; notrack = false }));
    (* Re-adjust: the encoder re-encodes the displacement verbatim; for x64
       we precomputed the rip-relative value above. *)
    let used = W.length w - (index * plt_entry_size) in
    W.bytes w (String.make (plt_entry_size - used) '\xCC')
  in
  (* PLT0 jumps through the reserved second GOT slot. *)
  entry ~index:0 ~slot:(got_vaddr + (2 * ptr));
  for i = 0 to nimports - 1 do
    entry ~index:(i + 1) ~slot:(got_vaddr + ((3 + i) * ptr))
  done;
  W.contents w

let jump_table_bytes arch ~resolve tables =
  let ptr = Arch.ptr_size arch in
  let w = W.create () in
  let offsets =
    List.map
      (fun (label, cases) ->
        let off = W.length w in
        List.iter
          (fun case ->
            let a = resolve case in
            if ptr = 8 then W.u64 w a else W.u32 w a)
          cases;
        (label, off))
      tables
  in
  (W.contents w, offsets)

let link (opts : Options.t) (p : Ir.program) =
  let arch = opts.arch in
  let ptr = Arch.ptr_size arch in
  let out = Codegen.lower opts p in
  let nimports = List.length out.imports in
  let base = base_address opts in
  let plt_vaddr = base in
  let plt_size = plt_entry_size * (nimports + 1) in
  let text_vaddr = align_up (plt_vaddr + plt_size) 16 in
  let all_items = List.concat_map (fun f -> f.Codegen.items) out.fragments in
  let text_size, labels = Asm.measure ~arch ~base:text_vaddr all_items in
  let label_tbl = Hashtbl.create 1024 in
  List.iter (fun (l, a) -> Hashtbl.replace label_tbl l a) labels;
  let addr_of l =
    match Hashtbl.find_opt label_tbl l with
    | Some a -> a
    | None -> invalid_arg ("Link: undefined label " ^ l)
  in
  (* PLT entry addresses for plt$… labels. *)
  let plt_entries =
    List.mapi (fun i name -> (name, plt_vaddr + ((i + 1) * plt_entry_size))) out.imports
  in
  let plt_addr name =
    match List.assoc_opt name plt_entries with
    | Some a -> a
    | None -> invalid_arg ("Link: unknown import " ^ name)
  in
  (* Jump tables into .rodata. *)
  let tables = List.concat_map (fun f -> f.Codegen.tables) out.fragments in
  let rodata_vaddr = align_up (text_vaddr + text_size) 16 in
  let rodata, table_offsets = jump_table_bytes arch ~resolve:addr_of tables in
  let table_addr =
    List.map (fun (l, off) -> (l, rodata_vaddr + off)) table_offsets
  in
  (* Fragment extents. *)
  let fragment_extents =
    List.map
      (fun f ->
        let name = f.Codegen.frag_name in
        (name, addr_of name, addr_of (Codegen.frag_end_label name)))
      out.fragments
  in
  (* LSDAs. *)
  let lsda_frags =
    List.filter (fun f -> f.Codegen.lsda_sites <> []) out.fragments
  in
  let lsdas =
    List.map
      (fun f ->
        let fstart = addr_of f.Codegen.frag_name in
        let sites =
          List.map
            (fun (s : Codegen.lsda_site) ->
              {
                Cet_eh.Lsda.cs_start = addr_of s.try_start - fstart;
                cs_len = addr_of s.try_end - addr_of s.try_start;
                cs_landing_pad =
                  (match s.landing with None -> 0 | Some l -> addr_of l - fstart);
                cs_action = 1;
              })
            f.Codegen.lsda_sites
        in
        { Cet_eh.Lsda.call_sites = sites; type_count = max 1 f.Codegen.handler_count })
      lsda_frags
  in
  let except_table, lsda_offsets = Cet_eh.Lsda.build_table lsdas in
  let eh_frame_vaddr = align_up (rodata_vaddr + String.length rodata) 8 in
  (* FDE population per the compiler persona (§V-C):
     - GCC: an FDE for every fragment, including .cold/.part;
     - Clang on x86-64: an FDE for every fragment;
     - Clang on x86: FDEs only for C++ code. *)
  let lang_cpp = p.lang = Ir.Cpp in
  let emits_fdes = Options.emits_fdes opts ~lang_cpp in
  let lsda_addr_of_frag =
    let tbl = Hashtbl.create 16 in
    List.iter2
      (fun f off -> Hashtbl.replace tbl f.Codegen.frag_name off)
      lsda_frags lsda_offsets;
    fun name gcc_except_vaddr ->
      Option.map (fun off -> gcc_except_vaddr + off) (Hashtbl.find_opt tbl name)
  in
  (* The .gcc_except_table address depends on .eh_frame's size, which is
     value-independent: measure with a placeholder first. *)
  let frames_for gcc_except_vaddr =
    List.filter_map
      (fun (name, start, stop) ->
        if emits_fdes then
          Some
            {
              Cet_eh.Eh_frame.pc_begin = start;
              pc_range = stop - start;
              lsda = lsda_addr_of_frag name gcc_except_vaddr;
            }
        else
          match lsda_addr_of_frag name gcc_except_vaddr with
          | Some l ->
            Some { Cet_eh.Eh_frame.pc_begin = start; pc_range = stop - start; lsda = Some l }
          | None -> None)
      fragment_extents
  in
  let personality =
    match List.assoc_opt "__gxx_personality_v0" plt_entries with
    | Some a -> a
    | None -> 0
  in
  (* .eh_frame_hdr precedes .eh_frame (GNU layout); its size depends only
     on the FDE count, so the chain of addresses resolves in one pass. *)
  let probe_frames = frames_for 0 in
  let hdr_vaddr = eh_frame_vaddr in
  let hdr_size = Cet_eh.Eh_frame_hdr.size (List.length probe_frames) in
  let eh_frame_vaddr = align_up (hdr_vaddr + hdr_size) 8 in
  let eh_probe = Cet_eh.Eh_frame.encode ~vaddr:eh_frame_vaddr ~personality probe_frames in
  let gcc_except_vaddr = align_up (eh_frame_vaddr + String.length eh_probe) 4 in
  let eh_frame, fde_offsets =
    Cet_eh.Eh_frame.encode_with_offsets ~vaddr:eh_frame_vaddr ~personality
      (frames_for gcc_except_vaddr)
  in
  assert (String.length eh_frame = String.length eh_probe);
  let eh_frame_hdr =
    Cet_eh.Eh_frame_hdr.encode ~vaddr:hdr_vaddr ~eh_frame_vaddr
      (List.map
         (fun (pc, off) ->
           { Cet_eh.Eh_frame_hdr.initial_loc = pc; fde_addr = eh_frame_vaddr + off })
         fde_offsets)
  in
  let got_vaddr = align_up (gcc_except_vaddr + String.length except_table) ptr in
  let got_size = (3 + nimports) * ptr in
  let data_vaddr = align_up (got_vaddr + got_size) 16 in
  let data = String.make 32 '\x00' in
  (* Final text assembly. *)
  let resolve l =
    match String.index_opt l '$' with
    | Some 3 when String.length l > 4 && String.sub l 0 4 = "plt$" ->
      plt_addr (String.sub l 4 (String.length l - 4))
    | _ -> (
      match List.assoc_opt l table_addr with
      | Some a -> a
      | None -> invalid_arg ("Link: unresolved symbol " ^ l))
  in
  let text = Asm.assemble ~arch ~base:text_vaddr ~resolve all_items in
  assert (String.length text = text_size);
  let plt =
    build_plt arch
      ~cet:(opts.cf_protection <> Options.Cf_none)
      ~plt_vaddr ~got_vaddr ~nimports
  in
  (* Symbols. *)
  let file_symbol =
    {
      Symbol.name = p.prog_name ^ (if lang_cpp then ".cpp" else ".c");
      value = 0;
      size = 0;
      kind = Symbol.File;
      bind = Symbol.Local;
      section = None;
    }
  in
  let func_symbols =
    List.filter_map
      (fun f ->
        if not f.Codegen.has_symbol then None
        else begin
          let name = f.Codegen.frag_name in
          let start = addr_of name and stop = addr_of (Codegen.frag_end_label name) in
          Some
            {
              Symbol.name;
              value = start;
              size = stop - start;
              kind = Symbol.Func;
              bind = (if f.Codegen.global then Symbol.Global else Symbol.Local);
              section = Some ".text";
            }
        end)
      out.fragments
  in
  let dynsyms = List.map Symbol.undef_func out.imports in
  let plt_relocs =
    List.mapi (fun i name -> (got_vaddr + ((3 + i) * ptr), name)) out.imports
  in
  (* Debug info (-g, as the paper's dataset is built): subprogram DIEs for
     every symbol-carrying fragment, including .cold/.part — the ground
     truth then applies the paper's corrections on top. *)
  let dwarf_abbrev, dwarf_info, dwarf_str =
    Cet_eh.Dwarf_info.encode ~ptr_size:ptr
      {
        Cet_eh.Dwarf_info.cu_name = p.prog_name ^ (if lang_cpp then ".cpp" else ".c");
        producer = Options.compiler_name opts.compiler ^ " (synthetic)";
        subprograms =
          List.filter_map
            (fun f ->
              if not f.Codegen.has_symbol then None
              else
                let name = f.Codegen.frag_name in
                Some
                  {
                    Cet_eh.Dwarf_info.sp_name = name;
                    sp_low_pc = addr_of name;
                    sp_high_pc = addr_of (Codegen.frag_end_label name);
                    sp_external = f.Codegen.global;
                  })
            out.fragments;
      }
  in
  let exec = Consts.shf_alloc lor Consts.shf_execinstr in
  let rw = Consts.shf_alloc lor Consts.shf_write in
  let sections =
    [
      Image.section ~name:".plt" ~vaddr:plt_vaddr ~flags:exec ~addralign:16 plt;
      Image.section ~name:".text" ~vaddr:text_vaddr ~flags:exec ~addralign:16 text;
    ]
    @ (if rodata = "" then []
       else [ Image.section ~name:".rodata" ~vaddr:rodata_vaddr ~addralign:16 rodata ])
    @ [
        Image.section ~name:".eh_frame_hdr" ~vaddr:hdr_vaddr ~addralign:4 eh_frame_hdr;
        Image.section ~name:".eh_frame" ~vaddr:eh_frame_vaddr ~addralign:8 eh_frame;
      ]
    @ (if except_table = "" then []
       else
         [
           Image.section ~name:".gcc_except_table" ~vaddr:gcc_except_vaddr ~addralign:4
             except_table;
         ])
    @ [
        Image.section ~name:".got.plt" ~vaddr:got_vaddr ~flags:rw ~addralign:ptr
          ~entsize:ptr
          (String.make got_size '\x00');
        Image.section ~name:".data" ~vaddr:data_vaddr ~flags:rw data;
        Image.section ~name:".debug_abbrev" ~vaddr:0 ~flags:0 dwarf_abbrev;
        Image.section ~name:".debug_info" ~vaddr:0 ~flags:0 dwarf_info;
        Image.section ~name:".debug_str" ~vaddr:0 ~flags:0 dwarf_str;
      ]
  in
  let image =
    {
      Image.arch;
      machine = None;
      pie = opts.pie;
      cet_note = opts.cf_protection <> Options.Cf_none;
      entry = addr_of "_start";
      sections;
      symbols = file_symbol :: func_symbols;
      dynsyms;
      plt_relocs;
    }
  in
  let truth =
    List.filter_map
      (fun f ->
        if f.Codegen.is_function then Some (f.Codegen.frag_name, addr_of f.Codegen.frag_name)
        else None)
      out.fragments
  in
  { image; truth; fragment_extents; plt_entries }

let compile ?(strip = false) opts p = Cet_elf.Writer.write ~strip (link opts p).image
