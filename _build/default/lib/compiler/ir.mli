(** Function-level intermediate representation consumed by the code
    generator.

    The IR captures exactly the source-level properties the paper's study
    tracks: linkage (static functions get no end-branch unless their address
    is taken), address-taking, calls to the predefined indirect-return
    functions, C++ try/catch regions (landing pads), switch statements
    (NOTRACK jump tables), tail calls, and hot/cold splitting fate. *)

type callee =
  | Local of string  (** direct call to a function in this program *)
  | Import of string  (** call through the PLT *)

type stmt =
  | Compute of int  (** [n] units of straight-line ALU work *)
  | Call of callee
  | Call_via_pointer of string
      (** materialise the named local function's address and call it
          indirectly (requires that function to be [address_taken]) *)
  | Store_fn_pointer of string
      (** take the named local function's address and store it to a stack
          slot (address-taking without an immediate call) *)
  | Indirect_return_call of string
      (** call an indirect-return import ([setjmp], [vfork], …): the code
          generator places an end-branch right after the call site *)
  | If_else of stmt list * stmt list
  | Loop of stmt list
  | Switch of stmt list list  (** dense switch lowered through a jump table *)
  | Try_catch of stmt list * stmt list list
      (** C++ [try] body and one handler block per [catch] clause; each
          handler becomes an end-branch-headed landing pad *)
  | Tail_call_site of string
      (** direct tail call: [jmp] to the named local function when sibling
          call optimisation is enabled, else a plain call+ret *)
  | Jump_to_part of string
      (** jump into the named function's [.part.0] fragment (outlined code
          shared across functions); degrades to a direct call of the whole
          function when splitting is disabled *)

type linkage = Exported | Static

type fragment_fate =
  | Keep_whole
  | Split_cold of stmt list
      (** the unlikely-path body, extracted into a [.cold] fragment at O2+
          (GCC); inlined behind a branch otherwise *)
  | Split_part of { shared_jump : bool; part_body : stmt list }
      (** partial inlining: [part_body] becomes a [.part.0] fragment reached
          by direct call; with [shared_jump] some other function additionally
          jump-references the fragment (via {!Jump_to_part}), the pattern
          behind FunSeeker's residual tail-call false positives *)

type func = {
  name : string;
  linkage : linkage;
  address_taken : bool;
  no_endbr : bool;
      (** intrinsic-like functions ([nocf_check]): entered only by direct
          call, no end-branch even when exported (the paper's 0.15%) *)
  dead : bool;  (** never referenced: present in the image, unreachable *)
  fate : fragment_fate;
  body : stmt list;
}

type lang = C | Cpp

type program = {
  prog_name : string;
  lang : lang;
  funcs : func list;  (** [main] must be among them *)
  extra_imports : string list;  (** imports beyond those found in bodies *)
}

val indirect_return_functions : string list
(** GCC's predefined list used by FILTERENDBR: [setjmp], [_setjmp],
    [sigsetjmp], [savectx], [vfork], [getcontext]. *)

val is_indirect_return : string -> bool

val func :
  ?linkage:linkage ->
  ?address_taken:bool ->
  ?no_endbr:bool ->
  ?dead:bool ->
  ?fate:fragment_fate ->
  string ->
  stmt list ->
  func

val validate : program -> (unit, string) result
(** Check referential integrity: every [Local]/pointer target names a
    function of the program, [main] exists, address-taken targets are
    flagged [address_taken], and [Try_catch] only appears in C++. *)

val fate_stmts : fragment_fate -> stmt list
(** The statements carried by a split fate ([] for [Keep_whole]). *)

val func_stmts : func -> stmt list
(** Body plus any split-off statements. *)

val collect_imports : program -> string list
(** All import names referenced by bodies plus [extra_imports], deduplicated
    in first-use order. *)
