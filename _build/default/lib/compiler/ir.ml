type callee = Local of string | Import of string

type stmt =
  | Compute of int
  | Call of callee
  | Call_via_pointer of string
  | Store_fn_pointer of string
  | Indirect_return_call of string
  | If_else of stmt list * stmt list
  | Loop of stmt list
  | Switch of stmt list list
  | Try_catch of stmt list * stmt list list
  | Tail_call_site of string
  | Jump_to_part of string

type linkage = Exported | Static

type fragment_fate =
  | Keep_whole
  | Split_cold of stmt list
  | Split_part of { shared_jump : bool; part_body : stmt list }

type func = {
  name : string;
  linkage : linkage;
  address_taken : bool;
  no_endbr : bool;
  dead : bool;
  fate : fragment_fate;
  body : stmt list;
}

type lang = C | Cpp

type program = {
  prog_name : string;
  lang : lang;
  funcs : func list;
  extra_imports : string list;
}

let indirect_return_functions =
  [ "setjmp"; "_setjmp"; "sigsetjmp"; "savectx"; "vfork"; "getcontext" ]

let is_indirect_return name = List.mem name indirect_return_functions

let func ?(linkage = Exported) ?(address_taken = false) ?(no_endbr = false)
    ?(dead = false) ?(fate = Keep_whole) name body =
  { name; linkage; address_taken; no_endbr; dead; fate; body }

let rec stmt_imports acc = function
  | Compute _ | Store_fn_pointer _ | Call_via_pointer _ | Call (Local _)
  | Tail_call_site _ | Jump_to_part _ ->
    acc
  | Call (Import i) -> i :: acc
  | Indirect_return_call i -> i :: acc
  | If_else (a, b) -> stmts_imports (stmts_imports acc a) b
  | Loop b -> stmts_imports acc b
  | Switch cases -> List.fold_left stmts_imports acc cases
  | Try_catch (body, handlers) ->
    let acc = stmts_imports acc body in
    (* Handlers call the C++ ABI runtime. *)
    let acc = "__cxa_begin_catch" :: "__cxa_end_catch" :: acc in
    List.fold_left stmts_imports acc handlers

and stmts_imports acc stmts = List.fold_left stmt_imports acc stmts

let fate_stmts = function
  | Keep_whole -> []
  | Split_cold stmts -> stmts
  | Split_part { part_body; _ } -> part_body

let func_stmts f = f.body @ fate_stmts f.fate

let dedup_keep_order names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.replace seen n ();
        true
      end)
    names

let collect_imports p =
  let body_imports =
    List.concat_map (fun f -> List.rev (stmts_imports [] (func_stmts f))) p.funcs
  in
  let cpp = if p.lang = Cpp then [ "__gxx_personality_v0"; "_Unwind_Resume" ] else [] in
  dedup_keep_order (body_imports @ cpp @ p.extra_imports)

let rec stmt_refs acc = function
  | Compute _ | Call (Import _) | Indirect_return_call _ -> acc
  | Call (Local n) -> (`Call, n) :: acc
  | Tail_call_site n -> (`Tail, n) :: acc
  | Jump_to_part n -> (`Part, n) :: acc
  | Call_via_pointer n | Store_fn_pointer n -> (`Addr, n) :: acc
  | If_else (a, b) -> stmts_refs (stmts_refs acc a) b
  | Loop b -> stmts_refs acc b
  | Switch cases -> List.fold_left stmts_refs acc cases
  | Try_catch (body, handlers) -> List.fold_left stmts_refs (stmts_refs acc body) handlers

and stmts_refs acc stmts = List.fold_left stmt_refs acc stmts

let validate p =
  let tbl = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace tbl f.name f) p.funcs;
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  if not (Hashtbl.mem tbl "main") then fail "no main function";
  let dups = Hashtbl.create 64 in
  List.iter
    (fun f ->
      if Hashtbl.mem dups f.name then fail "duplicate function %s" f.name
      else Hashtbl.replace dups f.name ())
    p.funcs;
  List.iter
    (fun f ->
      let refs = List.rev (stmts_refs [] (func_stmts f)) in
      List.iter
        (fun (kind, n) ->
          match Hashtbl.find_opt tbl n with
          | None -> fail "%s references unknown function %s" f.name n
          | Some callee -> (
            match kind with
            | `Addr when not callee.address_taken ->
              fail "%s takes address of %s, which is not address_taken" f.name n
            | `Part when (match callee.fate with Split_part _ -> false | _ -> true) ->
              fail "%s jumps into %s, which has no part fragment" f.name n
            | _ -> ()))
        refs;
      let rec check_stmts stmts =
        List.iter
          (fun s ->
            match s with
            | Try_catch (b, hs) ->
              if p.lang <> Cpp then fail "try/catch in C program (%s)" f.name;
              check_stmts b;
              List.iter check_stmts hs
            | If_else (a, b) ->
              check_stmts a;
              check_stmts b
            | Loop b -> check_stmts b
            | Switch cs -> List.iter check_stmts cs
            | Compute _ | Call _ | Call_via_pointer _ | Store_fn_pointer _
            | Indirect_return_call _ | Tail_call_site _ | Jump_to_part _ ->
              ())
          stmts
      in
      check_stmts (func_stmts f);
      match f.linkage, f.no_endbr with
      | Static, true -> fail "%s: no_endbr only applies to exported functions" f.name
      | _ -> ())
    p.funcs;
  match !err with None -> Ok () | Some e -> Error e
