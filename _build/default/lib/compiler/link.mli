(** Layout and image production: the "assembler + linker" back half of the
    synthetic toolchain.

    Section order: [.plt], [.text], [.rodata] (jump tables), [.eh_frame],
    [.gcc_except_table] (C++ only), [.got.plt], [.data].  PLT entries are
    16 bytes, IBT-style (end-branch + indirect jump through the GOT slot),
    and the matching [.rel(a).plt] relocations give analysis tools the
    import-name mapping FunSeeker's FILTERENDBR relies on. *)

type result = {
  image : Cet_elf.Image.t;
  truth : (string * int) list;
      (** real function entries (name, vaddr), including symbol-less corner
          cases, excluding [.cold]/[.part] fragments — the paper's notion of
          ground truth *)
  fragment_extents : (string * int * int) list;
      (** every laid-out fragment as (name, start, end) *)
  plt_entries : (string * int) list;  (** import name → PLT entry vaddr *)
}

val base_address : Options.t -> int
(** Link base: 0x8049000 (x86 non-PIE), 0x401000 (x86-64 non-PIE), 0x1000
    (PIE). *)

val plt_entry_size : int

val link : Options.t -> Ir.program -> result
(** Lower, lay out, assemble, and package a program. *)

val compile : ?strip:bool -> Options.t -> Ir.program -> string
(** [link] followed by ELF serialisation. *)
