(** Lowering from {!Ir} to assembly fragments.

    The code generator implements the end-branch insertion rules the paper
    measures (§II, §III-B):

    - an end-branch at the entry of every exported or address-taken function
      (unless flagged [no_endbr], modelling intrinsics), when
      [-fcf-protection=full];
    - an end-branch immediately after every call to one of GCC's predefined
      indirect-return functions ([setjmp] and friends);
    - an end-branch at the head of every C++ exception landing pad, placed
      after the function epilogue as GCC does;
    - [notrack]-prefixed indirect jumps for switch jump tables (no
      end-branches at case labels);
    - hot/cold splitting ([.cold]) and partial inlining ([.part.0])
      fragments at O2+ under the GCC persona;
    - tail calls ([jmp] in place of [call]+[ret]) when sibling-call
      optimisation is active;
    - the [__x86.get_pc_thunk] helpers on x86 PIE, including the variant the
      compiler emits without a symbol when only [_start] references it. *)

type lsda_site = {
  try_start : string;  (** label opening the guarded region *)
  try_end : string;  (** label closing it *)
  landing : string option;  (** landing-pad label *)
}

type fragment = {
  frag_name : string;  (** symbol name: ["foo"], ["foo.cold"], ["foo.part.0"] *)
  parent : string option;  (** owning function for [.cold]/[.part] fragments *)
  is_function : bool;  (** [true] for genuine functions (ground truth) *)
  has_symbol : bool;  (** [false] for the omitted-thunk corner case *)
  global : bool;  (** symbol binding: STB_GLOBAL vs STB_LOCAL *)
  items : Cet_x86.Asm.item list;
      (** starts with [Label frag_name], ends with [Label (frag_name ^ "$end")] *)
  lsda_sites : lsda_site list;
  handler_count : int;
  tables : (string * string list) list;
      (** jump tables: table label → case labels (absolute entries) *)
}

type output = {
  fragments : fragment list;  (** in final [.text] layout order *)
  imports : string list;  (** PLT entries, in order *)
}

val plt_label : string -> string
(** Label under which the link stage exposes an import's PLT entry. *)

val frag_end_label : string -> string

val lower : Options.t -> Ir.program -> output
(** Lower a validated program.  Raises [Invalid_argument] when
    {!Ir.validate} would reject it. *)
