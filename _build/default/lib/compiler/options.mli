(** Compilation configurations: the 24-point grid of the paper's dataset
    (2 compilers × 2 architectures × PIE/non-PIE × 6 optimisation levels). *)

type compiler = Gcc | Clang

type opt_level = O0 | O1 | O2 | O3 | Os | Ofast

type cf_protection = Cf_full | Cf_manual | Cf_none
(** [-fcf-protection] level.  [Cf_full] is the compiler default the paper
    studies.  [Cf_manual] models [-mmanual-endbr] (§VI): end-branches are
    emitted only where strictly required — address-taken functions — not at
    every exported entry.  [Cf_none] produces legacy binaries. *)

type t = {
  compiler : compiler;
  arch : Cet_x86.Arch.t;
  pie : bool;
  opt : opt_level;
  cf_protection : cf_protection;
  jump_tables_in_text : bool;
      (** place switch jump tables inline in [.text] instead of [.rodata] —
          the hand-written-assembly idiom (§VI) that breaks linear sweep *)
}

val default : t
(** GCC, x86-64, PIE, -O2, full protection. *)

val all_grid : t list
(** The full dataset grid: the paper's 24 configurations per compiler
    (2 architectures x PIE/non-PIE x 6 levels), for both compilers — 48
    points overall. *)

val opt_levels : opt_level list

val tail_calls_enabled : t -> bool
(** [-foptimize-sibling-calls]: active at O2, O3, Os, Ofast. *)

val cold_splitting_enabled : t -> bool
(** Hot/cold partitioning and partial inlining ([.cold]/[.part] fragments):
    GCC at O2 and above. *)

val function_alignment : t -> int
(** Entry alignment: 16 at most levels, 4 under -Os. *)

val emits_fdes : t -> lang_cpp:bool -> bool
(** Whether this configuration records frame-description entries for plain C
    functions: GCC always; Clang omits them on x86 for pure-C code (the
    behaviour FETCH and Ghidra trip over).  C++ frames always get FDEs. *)

val compiler_name : compiler -> string
val opt_name : opt_level -> string
val to_string : t -> string
(** e.g. ["gcc-x64-pie-O2"]. *)
