type kind =
  | Endbr64
  | Endbr32
  | Call_direct of int
  | Jmp_direct of int
  | Jcc_direct of int
  | Call_indirect of { goto : int option }
  | Jmp_indirect of { notrack : bool; goto : int option }
  | Ret
  | Halt
  | Addr_ref of int
  | Other

type ins = { addr : int; len : int; kind : kind }

exception Bad of string

type cursor = { code : string; limit : int; mutable p : int }

let u8 c =
  if c.p >= c.limit then raise (Bad "truncated");
  let v = Char.code c.code.[c.p] in
  c.p <- c.p + 1;
  v

let peek c = if c.p >= c.limit then raise (Bad "truncated") else Char.code c.code.[c.p]

let skip c n =
  if c.p + n > c.limit then raise (Bad "truncated");
  c.p <- c.p + n

let i32 c =
  let a = u8 c in
  let b = u8 c in
  let d = u8 c in
  let e = u8 c in
  let v = a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24) in
  if v >= 0x80000000 then v - 0x100000000 else v

let i8 c =
  let v = u8 c in
  if v >= 0x80 then v - 0x100 else v

type prefixes = {
  opsize : bool;  (* 0x66 *)
  addrsize : bool;  (* 0x67 *)
  rep : bool;  (* 0xF3 *)
  repn : bool;  (* 0xF2 *)
  notrack : bool;  (* 0x3E (DS segment override reused by CET) *)
  rex_w : bool;
}

(* Memory-operand summary extracted from ModRM/SIB: the reg/extension field
   and, for the bare disp32 form, the displacement (for GOT-slot targets). *)
type modrm_info = { reg_field : int; is_mem : bool; bare_disp : int option }

let parse_modrm c =
  let m = u8 c in
  let md = m lsr 6 in
  let reg_field = (m lsr 3) land 7 in
  let rm = m land 7 in
  if md = 3 then { reg_field; is_mem = false; bare_disp = None }
  else begin
    let bare = ref None in
    (if rm = 4 then begin
       let sib = u8 c in
       let sib_base = sib land 7 in
       if md = 0 && sib_base = 5 then skip c 4 (* disp32, indexed: not bare *)
     end
     else if md = 0 && rm = 5 then bare := Some (i32 c));
    (match md with
    | 1 -> skip c 1
    | 2 -> skip c 4
    | _ -> ());
    { reg_field; is_mem = true; bare_disp = !bare }
  end

(* Skip an immediate whose size follows the 'z' rule (2 with 0x66, else 4). *)
let skip_imm_z c pfx = skip c (if pfx.opsize then 2 else 4)

let decode_two_byte arch c pfx =
  let op = u8 c in
  match op with
  | 0x05 when arch = Arch.X64 -> Other (* syscall *)
  | 0x0B -> Other (* ud2 *)
  | 0x1E ->
    (* F3 0F 1E FA/FB are ENDBR64/ENDBR32; other forms are reserved NOPs. *)
    if pfx.rep && peek c = 0xFA then begin
      skip c 1;
      Endbr64
    end
    else if pfx.rep && peek c = 0xFB then begin
      skip c 1;
      Endbr32
    end
    else begin
      ignore (parse_modrm c);
      Other
    end
  | 0x1F ->
    ignore (parse_modrm c);
    Other (* multi-byte NOP *)
  | _ when op >= 0x40 && op <= 0x4F ->
    ignore (parse_modrm c);
    Other (* cmovcc *)
  | _ when op >= 0x80 && op <= 0x8F ->
    (* jcc rel32 *)
    if pfx.opsize then raise (Bad "jcc rel16");
    let rel = i32 c in
    Jcc_direct rel
  | _ when op >= 0x90 && op <= 0x9F ->
    ignore (parse_modrm c);
    Other (* setcc *)
  | 0xA2 -> Other (* cpuid *)
  | 0xAF ->
    ignore (parse_modrm c);
    Other (* imul *)
  | 0xB6 | 0xB7 | 0xBE | 0xBF ->
    ignore (parse_modrm c);
    Other (* movzx / movsx *)
  | 0xC8 | 0xC9 | 0xCA | 0xCB | 0xCC | 0xCD | 0xCE | 0xCF -> Other (* bswap *)
  | _ -> raise (Bad (Printf.sprintf "two-byte opcode 0f %02x" op))

let decode_one_byte arch c pfx =
  let x86 = arch = Arch.X86 in
  let op = u8 c in
  let modrm_only () =
    ignore (parse_modrm c);
    Other
  in
  match op with
  | _ when op < 0x40 && op land 7 <= 5 && op <> 0x0F ->
    (* add/or/adc/sbb/and/sub/xor/cmp families *)
    (match op land 7 with
    | 0 | 1 | 2 | 3 -> modrm_only ()
    | 4 ->
      skip c 1;
      Other
    | 5 ->
      skip_imm_z c pfx;
      Other
    | _ -> assert false)
  | 0x06 | 0x07 | 0x0E | 0x16 | 0x17 | 0x1E | 0x1F ->
    if x86 then Other (* push/pop segment *) else raise (Bad "seg push in 64-bit")
  | 0x27 | 0x2F | 0x37 | 0x3F ->
    if x86 then Other (* daa/das/aaa/aas *) else raise (Bad "bcd op in 64-bit")
  | _ when op >= 0x40 && op <= 0x4F ->
    if x86 then Other (* inc/dec reg *) else raise (Bad "stray rex")
  | _ when op >= 0x50 && op <= 0x5F -> Other (* push/pop reg *)
  | 0x60 | 0x61 -> if x86 then Other else raise (Bad "pusha in 64-bit")
  | 0x62 -> if x86 then modrm_only () else raise (Bad "bound/evex")
  | 0x63 -> modrm_only () (* arpl (x86) / movsxd (x64) *)
  | 0x68 ->
    if pfx.opsize then begin
      skip c 2;
      Other
    end
    else begin
      let v = i32 c in
      if x86 then Addr_ref (v land 0xFFFFFFFF) else Other
    end
  | 0x69 ->
    ignore (parse_modrm c);
    skip_imm_z c pfx;
    Other
  | 0x6A ->
    skip c 1;
    Other
  | 0x6B ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0x6C | 0x6D | 0x6E | 0x6F -> Other (* ins/outs *)
  | _ when op >= 0x70 && op <= 0x7F ->
    let rel = i8 c in
    Jcc_direct rel
  | 0x80 ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0x81 ->
    ignore (parse_modrm c);
    skip_imm_z c pfx;
    Other
  | 0x82 ->
    if x86 then begin
      ignore (parse_modrm c);
      skip c 1;
      Other
    end
    else raise (Bad "op 82 in 64-bit")
  | 0x83 ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0x84 | 0x85 | 0x86 | 0x87 | 0x88 | 0x89 | 0x8A | 0x8B | 0x8C | 0x8E ->
    modrm_only ()
  | 0x8D ->
    (* lea: a bare-disp operand materialises a code/data address
       (RIP-relative on x86-64, absolute on x86). *)
    let m = parse_modrm c in
    (match m.bare_disp with Some d -> Addr_ref d | None -> Other)
  | 0x8F -> modrm_only () (* pop r/m *)
  | _ when op >= 0x90 && op <= 0x97 -> Other (* nop / xchg *)
  | 0x98 | 0x99 -> Other
  | 0x9A ->
    if x86 then begin
      skip c 6;
      Other (* callf ptr16:32 *)
    end
    else raise (Bad "callf in 64-bit")
  | 0x9B | 0x9C | 0x9D | 0x9E | 0x9F -> Other
  | 0xA0 | 0xA1 | 0xA2 | 0xA3 ->
    skip c (if x86 then 4 else 8);
    Other (* mov moffs *)
  | 0xA4 | 0xA5 | 0xA6 | 0xA7 -> Other
  | 0xA8 ->
    skip c 1;
    Other
  | 0xA9 ->
    skip_imm_z c pfx;
    Other
  | _ when op >= 0xAA && op <= 0xAF -> Other (* stos/lods/scas *)
  | _ when op >= 0xB0 && op <= 0xB7 ->
    skip c 1;
    Other
  | _ when op >= 0xB8 && op <= 0xBF ->
    if pfx.rex_w || pfx.opsize then begin
      skip c (if pfx.rex_w then 8 else 2);
      Other
    end
    else begin
      let v = i32 c in
      if x86 then Addr_ref (v land 0xFFFFFFFF) else Other
    end
  | 0xC0 | 0xC1 ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0xC2 ->
    skip c 2;
    Ret
  | 0xC3 -> Ret
  | 0xC4 | 0xC5 -> if x86 then modrm_only () else raise (Bad "vex prefix")
  | 0xC6 ->
    ignore (parse_modrm c);
    skip c 1;
    Other
  | 0xC7 ->
    ignore (parse_modrm c);
    skip_imm_z c pfx;
    Other
  | 0xC8 ->
    skip c 3;
    Other (* enter *)
  | 0xC9 -> Other (* leave *)
  | 0xCA ->
    skip c 2;
    Ret
  | 0xCB -> Ret
  | 0xCC -> Other (* int3 *)
  | 0xCD ->
    skip c 1;
    Other
  | 0xCE -> if x86 then Other else raise (Bad "into in 64-bit")
  | 0xCF -> Other (* iret *)
  | 0xD0 | 0xD1 | 0xD2 | 0xD3 -> modrm_only ()
  | 0xD4 | 0xD5 ->
    if x86 then begin
      skip c 1;
      Other
    end
    else raise (Bad "aam/aad in 64-bit")
  | 0xD7 -> Other
  | _ when op >= 0xD8 && op <= 0xDF -> modrm_only () (* x87 *)
  | 0xE0 | 0xE1 | 0xE2 | 0xE3 ->
    let rel = i8 c in
    Jcc_direct rel (* loopcc / jcxz *)
  | 0xE4 | 0xE5 | 0xE6 | 0xE7 ->
    skip c 1;
    Other (* in/out imm8 *)
  | 0xE8 ->
    if pfx.opsize then raise (Bad "call rel16");
    let rel = i32 c in
    Call_direct rel
  | 0xE9 ->
    if pfx.opsize then raise (Bad "jmp rel16");
    let rel = i32 c in
    Jmp_direct rel
  | 0xEA ->
    if x86 then begin
      skip c 6;
      Other
    end
    else raise (Bad "jmpf in 64-bit")
  | 0xEB ->
    let rel = i8 c in
    Jmp_direct rel
  | 0xEC | 0xED | 0xEE | 0xEF -> Other (* in/out *)
  | 0xF1 -> Other (* int1 *)
  | 0xF4 -> Halt
  | 0xF5 -> Other (* cmc *)
  | 0xF6 ->
    let m = parse_modrm c in
    if m.reg_field <= 1 then skip c 1;
    Other
  | 0xF7 ->
    let m = parse_modrm c in
    if m.reg_field <= 1 then skip_imm_z c pfx;
    Other
  | _ when op >= 0xF8 && op <= 0xFD -> Other (* clc..std *)
  | 0xFE ->
    let m = parse_modrm c in
    if m.reg_field > 1 then raise (Bad "fe group");
    Other
  | 0xFF ->
    let m = parse_modrm c in
    (* For the bare-disp32 memory form, [m.bare_disp] carries the raw
       displacement: absolute slot on x86, RIP-relative on x64.  The caller
       resolves it once the instruction length is known. *)
    (match m.reg_field with
    | 0 | 1 -> Other (* inc/dec r/m *)
    | 2 -> Call_indirect { goto = m.bare_disp }
    | 3 -> if x86 then Other else raise (Bad "callf m in 64-bit")
    | 4 -> Jmp_indirect { notrack = pfx.notrack; goto = m.bare_disp }
    | 5 -> if x86 then Other else raise (Bad "jmpf m in 64-bit")
    | 6 -> Other (* push r/m *)
    | _ -> raise (Bad "ff /7"))
  | 0x0F | 0x26 | 0x2E | 0x36 | 0x3E | 0x64 | 0x65 | 0x66 | 0x67 | 0xF0 | 0xF2 | 0xF3 ->
    (* Normally consumed before dispatch; reachable only when a legacy
       prefix follows REX (hardware would ignore the REX).  Reject. *)
    raise (Bad "legacy prefix after REX")
  | _ -> raise (Bad (Printf.sprintf "opcode %02x" op))

let decode arch code ~base ~off =
  let limit = String.length code in
  if off < 0 || off >= limit then Error "offset out of range"
  else begin
    let c = { code; limit; p = off } in
    let vaddr = base + off in
    try
      let opsize = ref false
      and addrsize = ref false
      and rep = ref false
      and repn = ref false
      and notrack = ref false
      and rex_w = ref false in
      let rec prefixes n =
        if n > 14 then raise (Bad "prefix overflow");
        match peek c with
        | 0x66 ->
          skip c 1;
          opsize := true;
          prefixes (n + 1)
        | 0x67 ->
          skip c 1;
          addrsize := true;
          prefixes (n + 1)
        | 0xF3 ->
          skip c 1;
          rep := true;
          prefixes (n + 1)
        | 0xF2 ->
          skip c 1;
          repn := true;
          prefixes (n + 1)
        | 0xF0 ->
          skip c 1;
          prefixes (n + 1)
        | 0x3E ->
          skip c 1;
          notrack := true;
          prefixes (n + 1)
        | 0x26 | 0x2E | 0x36 | 0x64 | 0x65 ->
          skip c 1;
          prefixes (n + 1)
        | b when arch = Arch.X64 && b >= 0x40 && b <= 0x4F ->
          skip c 1;
          rex_w := b land 8 <> 0;
          (* REX must be last before the opcode. *)
          ()
        | _ -> ()
      in
      prefixes 0;
      let pfx =
        {
          opsize = !opsize;
          addrsize = !addrsize;
          rep = !rep;
          repn = !repn;
          notrack = !notrack;
          rex_w = !rex_w;
        }
      in
      if pfx.addrsize then raise (Bad "address-size prefix unsupported");
      let raw_kind =
        if peek c = 0x0F then begin
          skip c 1;
          decode_two_byte arch c pfx
        end
        else decode_one_byte arch c pfx
      in
      let len = c.p - off in
      let next = vaddr + len in
      let resolve_slot d = match arch with Arch.X86 -> d | Arch.X64 -> next + d in
      let kind =
        match raw_kind with
        | Call_direct rel -> Call_direct (next + rel)
        | Jmp_direct rel -> Jmp_direct (next + rel)
        | Jcc_direct rel -> Jcc_direct (next + rel)
        | Call_indirect { goto = Some d } -> Call_indirect { goto = Some (resolve_slot d) }
        | Jmp_indirect { notrack; goto = Some d } ->
          Jmp_indirect { notrack; goto = Some (resolve_slot d) }
        | Addr_ref d ->
          (* On x86-64 the only Addr_ref producer is RIP-relative lea;
             on x86 all producers carry absolute operands. *)
          Addr_ref (resolve_slot d)
        | k -> k
      in
      Ok { addr = vaddr; len; kind }
    with
    | Bad msg -> Error msg
  end

let kind_to_string = function
  | Endbr64 -> "endbr64"
  | Endbr32 -> "endbr32"
  | Call_direct t -> Printf.sprintf "call 0x%x" t
  | Jmp_direct t -> Printf.sprintf "jmp 0x%x" t
  | Jcc_direct t -> Printf.sprintf "jcc 0x%x" t
  | Call_indirect { goto = Some g } -> Printf.sprintf "call [0x%x]" g
  | Call_indirect { goto = None } -> "call <ind>"
  | Jmp_indirect { notrack; goto = Some g } ->
    Printf.sprintf "%sjmp [0x%x]" (if notrack then "notrack " else "") g
  | Jmp_indirect { notrack; goto = None } ->
    Printf.sprintf "%sjmp <ind>" (if notrack then "notrack " else "")
  | Ret -> "ret"
  | Halt -> "hlt"
  | Addr_ref a -> Printf.sprintf "addr-ref 0x%x" a
  | Other -> "other"
