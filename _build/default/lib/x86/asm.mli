(** Two-pass assembler: resolves symbolic labels into the rel32/abs32 fields
    of {!Insn.t} and produces section bytes.

    Item sizes never depend on label values (all emitted branches use rel32
    forms), so a first pass can measure section layout without any symbol
    environment; the second pass encodes against a resolver. *)

type fill = Fill_nop | Fill_int3 | Fill_zero

type item =
  | Label of string
  | Ins of Insn.t
  | Call_lbl of string
  | Jmp_lbl of string
  | Jcc_lbl of Insn.cond * string
  | Lea_lbl of Register.t * string
      (** Address-of: [lea r, \[rip+sym\]] on x86-64; [mov r, sym] (abs32) on
          x86 — the two forms compilers use to materialise code pointers. *)
  | Push_lbl of string  (** [push imm32] of a symbol address (x86 call args). *)
  | Mov_mi_lbl of Insn.mem * string
      (** Store a symbol address to memory ([mov dword \[m\], sym]); x86 only
          (x86-64 stores go through a register). *)
  | Jmp_table_lbl of { table : string; index : Register.t; scale : int; notrack : bool }
      (** [notrack jmp \[table + index*scale\]] — the x86 non-PIE switch idiom. *)
  | Mov_rm_table of { dst : Register.t; table : string; index : Register.t; scale : int }
      (** [mov dst, \[table + index*scale\]] with absolute table base (x86). *)
  | Bytes_raw of string
  | Table of { entries : string list; entry_size : int }
      (** label addresses laid out as little-endian data words — the
          inline-jump-table idiom of hand-written assembly (data in [.text]) *)
  | Align of { boundary : int; fill : fill }

val measure : arch:Arch.t -> base:int -> item list -> int * (string * int) list
(** [measure ~arch ~base items] returns the section size in bytes and the
    virtual address of every [Label], without resolving references. *)

val assemble :
  arch:Arch.t ->
  base:int ->
  resolve:(string -> int) ->
  item list ->
  string
(** Second pass.  [resolve] must return the virtual address of every symbol
    referenced but not defined by a local [Label]; local labels shadow it.
    Raises [Invalid_argument] if a rel32 overflows (images here never do). *)
