type fill = Fill_nop | Fill_int3 | Fill_zero

type item =
  | Label of string
  | Ins of Insn.t
  | Call_lbl of string
  | Jmp_lbl of string
  | Jcc_lbl of Insn.cond * string
  | Lea_lbl of Register.t * string
  | Push_lbl of string
  | Mov_mi_lbl of Insn.mem * string
  | Jmp_table_lbl of { table : string; index : Register.t; scale : int; notrack : bool }
  | Mov_rm_table of { dst : Register.t; table : string; index : Register.t; scale : int }
  | Bytes_raw of string
  | Table of { entries : string list; entry_size : int }
  | Align of { boundary : int; fill : fill }

let pad_amount addr boundary =
  let rem = addr mod boundary in
  if rem = 0 then 0 else boundary - rem

(* Representative encodings used only for size computation: all label-taking
   items encode with a fixed-size placeholder displacement. *)
let item_size ~arch ~addr = function
  | Label _ -> 0
  | Ins i -> Encoder.length arch i
  | Call_lbl _ -> Encoder.length arch (Insn.Call_rel 0)
  | Jmp_lbl _ -> Encoder.length arch (Insn.Jmp_rel 0)
  | Jcc_lbl (c, _) -> Encoder.length arch (Insn.Jcc_rel (c, 0))
  | Lea_lbl (r, _) ->
    (match arch with
    | Arch.X64 -> Encoder.length arch (Insn.Lea (r, Insn.mem_abs 0))
    | Arch.X86 -> Encoder.length arch (Insn.Mov_ri (r, 0)))
  | Push_lbl _ -> Encoder.length arch (Insn.Push_imm 0x7fffffff)
  | Mov_mi_lbl (m, _) -> Encoder.length arch (Insn.Mov_mi (m, 0))
  | Jmp_table_lbl { index; scale; notrack; _ } ->
    Encoder.length arch
      (Insn.Jmp_mem
         { mem = { base = None; index = Some (index, scale); disp = 0 }; notrack })
  | Mov_rm_table { dst; index; scale; _ } ->
    Encoder.length arch
      (Insn.Mov_rm (dst, { base = None; index = Some (index, scale); disp = 0 }))
  | Bytes_raw s -> String.length s
  | Table { entries; entry_size } -> List.length entries * entry_size
  | Align { boundary; _ } -> pad_amount addr boundary

let measure ~arch ~base items =
  let addr = ref base in
  let labels = ref [] in
  List.iter
    (fun item ->
      (match item with Label l -> labels := (l, !addr) :: !labels | _ -> ());
      addr := !addr + item_size ~arch ~addr:!addr item)
    items;
  (!addr - base, List.rev !labels)

let nop_fill n =
  let buf = Buffer.create n in
  let rec go n =
    if n = 1 then Buffer.add_string buf (Encoder.encode Arch.X64 Insn.Nop)
    else if n >= 2 then begin
      let chunk = min n 9 in
      (* Avoid leaving a 1-byte tail that Nopl cannot represent. *)
      let chunk = if n - chunk = 1 then chunk - 1 else chunk in
      if chunk = 1 then Buffer.add_string buf (Encoder.encode Arch.X64 Insn.Nop)
      else Buffer.add_string buf (Encoder.encode Arch.X64 (Insn.Nopl chunk));
      go (n - chunk)
    end
  in
  go n;
  Buffer.contents buf

let fill_bytes fill n =
  match fill with
  | Fill_nop -> nop_fill n
  | Fill_int3 -> String.make n '\xCC'
  | Fill_zero -> String.make n '\x00'

let assemble ~arch ~base ~resolve items =
  let _, local = measure ~arch ~base items in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (l, a) -> Hashtbl.replace tbl l a) local;
  let find l = match Hashtbl.find_opt tbl l with Some a -> a | None -> resolve l in
  let buf = Buffer.create 4096 in
  let addr () = base + Buffer.length buf in
  let check_rel32 v =
    if v < -0x80000000 || v > 0x7fffffff then invalid_arg "Asm: rel32 overflow"
  in
  let emit i = Buffer.add_string buf (Encoder.encode arch i) in
  let rel32 target size =
    let v = target - (addr () + size) in
    check_rel32 v;
    v
  in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | Ins i -> emit i
      | Call_lbl l ->
        let size = Encoder.length arch (Insn.Call_rel 0) in
        emit (Insn.Call_rel (rel32 (find l) size))
      | Jmp_lbl l ->
        let size = Encoder.length arch (Insn.Jmp_rel 0) in
        emit (Insn.Jmp_rel (rel32 (find l) size))
      | Jcc_lbl (c, l) ->
        let size = Encoder.length arch (Insn.Jcc_rel (c, 0)) in
        emit (Insn.Jcc_rel (c, rel32 (find l) size))
      | Lea_lbl (r, l) ->
        (match arch with
        | Arch.X64 ->
          let size = Encoder.length arch (Insn.Lea (r, Insn.mem_abs 0)) in
          emit (Insn.Lea (r, Insn.mem_abs (rel32 (find l) size)))
        | Arch.X86 -> emit (Insn.Mov_ri (r, find l)))
      | Push_lbl l ->
        let target = find l in
        (* Sizes were measured with the imm32 form; section bases guarantee
           code addresses never fit in imm8. *)
        assert (target >= 128);
        emit (Insn.Push_imm target)
      | Mov_mi_lbl (m, l) -> emit (Insn.Mov_mi (m, find l))
      | Jmp_table_lbl { table; index; scale; notrack } ->
        emit
          (Insn.Jmp_mem
             {
               mem = { base = None; index = Some (index, scale); disp = find table };
               notrack;
             })
      | Mov_rm_table { dst; table; index; scale } ->
        emit
          (Insn.Mov_rm
             (dst, { base = None; index = Some (index, scale); disp = find table }))
      | Bytes_raw s -> Buffer.add_string buf s
      | Table { entries; entry_size } ->
        List.iter
          (fun l ->
            let v = find l in
            for i = 0 to entry_size - 1 do
              Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
            done)
          entries
      | Align { boundary; fill } ->
        Buffer.add_string buf (fill_bytes fill (pad_amount (addr ()) boundary)))
    items;
  Buffer.contents buf
