(* Exact inverse of Encoder over the modelled subset.  The parse mirrors
   Encoder's emission choices; anything else returns None and the caller
   falls back to the coarse Decoder. *)

type cursor = { code : string; limit : int; mutable p : int }

exception Out_of_subset

let u8 c =
  if c.p >= c.limit then raise Out_of_subset;
  let v = Char.code c.code.[c.p] in
  c.p <- c.p + 1;
  v

let peek c = if c.p >= c.limit then raise Out_of_subset else Char.code c.code.[c.p]

let i8 c =
  let v = u8 c in
  if v >= 0x80 then v - 0x100 else v

let u16 c =
  let a = u8 c in
  a lor (u8 c lsl 8)

let i32 c =
  let a = u8 c in
  let b = u8 c in
  let d = u8 c in
  let e = u8 c in
  let v = a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24) in
  if v >= 0x80000000 then v - 0x100000000 else v

type rex = { w : bool; r : bool; x : bool; b : bool }

let no_rex = { w = false; r = false; x = false; b = false }

let reg_of ~hi idx = Register.of_index (idx lor if hi then 8 else 0)

(* Parse a ModRM byte (plus SIB/displacement) into either a register or a
   memory operand, returning the reg-field as well. *)
type rm = R of Register.t | M of Insn.mem

let parse_modrm c rex =
  let m = u8 c in
  let md = m lsr 6 and reg = (m lsr 3) land 7 and rm = m land 7 in
  let reg = reg_of ~hi:rex.r reg in
  if md = 3 then (reg, R (reg_of ~hi:rex.b rm))
  else begin
    let mem =
      if rm = 4 then begin
        (* SIB *)
        let sib = u8 c in
        let ss = sib lsr 6 and idx = (sib lsr 3) land 7 and base = sib land 7 in
        let index =
          if idx = 4 && not rex.x then None
          else Some (reg_of ~hi:rex.x idx, 1 lsl ss)
        in
        if md = 0 && base = 5 then
          let disp = i32 c in
          { Insn.base = None; index; disp }
        else begin
          let base_reg = Some (reg_of ~hi:rex.b base) in
          let disp = match md with 1 -> i8 c | 2 -> i32 c | _ -> 0 in
          { Insn.base = base_reg; index; disp }
        end
      end
      else if md = 0 && rm = 5 then { Insn.base = None; index = None; disp = i32 c }
      else begin
        let disp = match md with 1 -> i8 c | 2 -> i32 c | _ -> 0 in
        { Insn.base = Some (reg_of ~hi:rex.b rm); index = None; disp }
      end
    in
    (reg, M mem)
  end

let nopl_bytes =
  (* Canonical multi-byte NOPs, length 2-9 (see Encoder). *)
  [
    (2, "\x66\x90");
    (3, "\x0f\x1f\x00");
    (4, "\x0f\x1f\x40\x00");
    (5, "\x0f\x1f\x44\x00\x00");
    (6, "\x66\x0f\x1f\x44\x00\x00");
    (7, "\x0f\x1f\x80\x00\x00\x00\x00");
    (8, "\x0f\x1f\x84\x00\x00\x00\x00\x00");
    (9, "\x66\x0f\x1f\x84\x00\x00\x00\x00\x00");
  ]

let starts_with code off s =
  off + String.length s <= String.length code && String.sub code off (String.length s) = s

let decode arch code ~off =
  if off < 0 || off >= String.length code then None
  else begin
    (* Multi-byte NOPs first: they overlap the 0x66-prefix space. *)
    match
      List.find_opt (fun (_, bytes) -> starts_with code off bytes) (List.rev nopl_bytes)
    with
    | Some (n, bytes) -> Some (Insn.Nopl n, String.length bytes)
    | None -> (
      let c = { code; limit = String.length code; p = off } in
      try
        let notrack = ref false in
        let rep = ref false in
        let rec prefixes () =
          match peek c with
          | 0x3E ->
            ignore (u8 c);
            notrack := true;
            prefixes ()
          | 0xF3 ->
            ignore (u8 c);
            rep := true;
            prefixes ()
          | _ -> ()
        in
        prefixes ();
        let rex =
          if arch = Arch.X64 && peek c >= 0x40 && peek c <= 0x4F then begin
            let b = u8 c in
            { w = b land 8 <> 0; r = b land 4 <> 0; x = b land 2 <> 0; b = b land 1 <> 0 }
          end
          else no_rex
        in
        let finish insn = Some (insn, c.p - off) in
        let opc = u8 c in
        match opc with
        | 0xF3 -> None (* handled as prefix *)
        | _ when !rep && opc = 0x0F ->
          (* F3 0F 1E FA/FB *)
          if u8 c = 0x1E then begin
            match u8 c with
            | 0xFA when arch = Arch.X64 -> finish Insn.Endbr
            | 0xFB when arch = Arch.X86 -> finish Insn.Endbr
            | _ -> None
          end
          else None
        | 0x0F -> (
          match u8 c with
          | 0x0B -> finish Insn.Ud2
          | op when op land 0xF0 = 0x80 -> (
            match Insn.cond_of_code (op land 0xF) with
            | Some cond -> finish (Insn.Jcc_rel (cond, i32 c))
            | None -> None)
          | 0xAF -> (
            match parse_modrm c rex with
            | reg, R rm -> finish (Insn.Imul_rr (reg, rm))
            | _ -> None)
          | 0xB6 -> (
            match parse_modrm c rex with
            | reg, R rm -> finish (Insn.Movzx_b (reg, rm))
            | _ -> None)
          | 0xBE -> (
            match parse_modrm c rex with
            | reg, R rm -> finish (Insn.Movsx_b (reg, rm))
            | _ -> None)
          | op when op land 0xF0 = 0x90 -> (
            match (Insn.cond_of_code (op land 0xF), parse_modrm c rex) with
            | Some cond, (_, R rm) -> finish (Insn.Setcc (cond, rm))
            | _ -> None)
          | op when op land 0xF0 = 0x40 -> (
            match (Insn.cond_of_code (op land 0xF), parse_modrm c rex) with
            | Some cond, (reg, R rm) -> finish (Insn.Cmov (cond, reg, rm))
            | _ -> None)
          | _ -> None)
        | 0xE8 -> finish (Insn.Call_rel (i32 c))
        | 0xE9 -> finish (Insn.Jmp_rel (i32 c))
        | 0xEB -> finish (Insn.Jmp_rel8 (i8 c))
        | op when op land 0xF0 = 0x70 -> (
          match Insn.cond_of_code (op land 0xF) with
          | Some cond -> finish (Insn.Jcc_rel8 (cond, i8 c))
          | None -> None)
        | 0xFF -> (
          let m = u8 c in
          c.p <- c.p - 1;
          let ext = (m lsr 3) land 7 in
          let _, rm = parse_modrm c rex in
          match (ext, rm) with
          | 0, R r when rex.w -> finish (Insn.Inc r)
          | 1, R r when rex.w -> finish (Insn.Dec r)
          | 2, R r -> finish (Insn.Call_reg r)
          | 2, M mem -> finish (Insn.Call_mem mem)
          | 4, R r -> finish (Insn.Jmp_reg { reg = r; notrack = !notrack })
          | 4, M mem -> finish (Insn.Jmp_mem { mem; notrack = !notrack })
          | _ -> None)
        | 0xC3 -> finish Insn.Ret
        | 0xC2 -> finish (Insn.Ret_imm (u16 c))
        | op when op land 0xF8 = 0x50 -> finish (Insn.Push (reg_of ~hi:rex.b (op land 7)))
        | op when op land 0xF8 = 0x58 -> finish (Insn.Pop (reg_of ~hi:rex.b (op land 7)))
        | 0x6A -> finish (Insn.Push_imm (i8 c))
        | 0x68 -> finish (Insn.Push_imm (i32 c))
        | 0x89 -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.Mov_rr (rm, reg))
          | reg, M mem -> finish (Insn.Mov_mr (mem, reg)))
        | 0x8B -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.Mov_rr (reg, rm))
          | reg, M mem -> finish (Insn.Mov_rm (reg, mem)))
        | op when op land 0xF8 = 0xB8 ->
          if rex.w then None
          else finish (Insn.Mov_ri (reg_of ~hi:rex.b (op land 7), i32 c land 0xFFFFFFFF))
        | 0xC7 ->
          let ext = (peek c lsr 3) land 7 in
          if ext <> 0 then None
          else (
            match parse_modrm c rex with
            | _, M mem -> finish (Insn.Mov_mi (mem, i32 c))
            | _, R r -> finish (Insn.Mov_ri (r, i32 c)))
        | 0x8D -> (
          match parse_modrm c rex with
          | reg, M mem -> finish (Insn.Lea (reg, mem))
          | _ -> None)
        | 0x83 | 0x81 -> (
          let m = peek c in
          let ext = (m lsr 3) land 7 in
          match parse_modrm c rex with
          | _, R r -> (
            let imm = if opc = 0x83 then i8 c else i32 c in
            match ext with
            | 0 -> finish (Insn.Add_ri (r, imm))
            | 1 -> finish (Insn.Or_ri (r, imm))
            | 4 -> finish (Insn.And_ri (r, imm))
            | 5 -> finish (Insn.Sub_ri (r, imm))
            | 7 -> finish (Insn.Cmp_ri (r, imm))
            | _ -> None)
          | _ -> None)
        | 0x01 -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.Add_rr (rm, reg))
          | _ -> None)
        | 0x29 -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.Sub_rr (rm, reg))
          | _ -> None)
        | 0x39 -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.Cmp_rr (rm, reg))
          | _ -> None)
        | 0x85 -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.Test_rr (rm, reg))
          | _ -> None)
        | 0x31 -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.Xor_rr (rm, reg))
          | _ -> None)
        | 0x21 -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.And_rr (rm, reg))
          | _ -> None)
        | 0x09 -> (
          match parse_modrm c rex with
          | reg, R rm -> finish (Insn.Or_rr (rm, reg))
          | _ -> None)
        | op when arch = Arch.X86 && op land 0xF8 = 0x40 ->
          finish (Insn.Inc (reg_of ~hi:false (op land 7)))
        | op when arch = Arch.X86 && op land 0xF8 = 0x48 ->
          finish (Insn.Dec (reg_of ~hi:false (op land 7)))
        | 0xF7 -> (
          let m = peek c in
          let ext = (m lsr 3) land 7 in
          match parse_modrm c rex with
          | _, R r -> (
            match ext with
            | 2 -> finish (Insn.Not r)
            | 3 -> finish (Insn.Neg r)
            | _ -> None)
          | _ -> None)
        | 0xC1 -> (
          let m = peek c in
          let ext = (m lsr 3) land 7 in
          match parse_modrm c rex with
          | _, R r -> (
            let n = u8 c in
            match ext with
            | 4 -> finish (Insn.Shl_ri (r, n))
            | 5 -> finish (Insn.Shr_ri (r, n))
            | 7 -> finish (Insn.Sar_ri (r, n))
            | _ -> None)
          | _ -> None)
        | 0x99 -> finish Insn.Cdq
        | 0xC9 -> finish Insn.Leave
        | 0x90 when not !rep -> finish Insn.Nop
        | 0xCC -> finish Insn.Int3
        | 0xF4 -> finish Insn.Hlt
        | _ -> None
      with Out_of_subset -> None)
  end

let disassemble arch code ~base ~off =
  match decode arch code ~off with
  | Some (insn, len) -> Ok (Format.asprintf "%a" (Insn.pp ~arch) insn, len)
  | None -> (
    match Decoder.decode arch code ~base ~off with
    | Ok i -> Ok (Decoder.kind_to_string i.kind, i.len)
    | Error e -> Error e)

let disassemble_all arch code ~base =
  let out = ref [] in
  let off = ref 0 in
  while !off < String.length code do
    match disassemble arch code ~base ~off:!off with
    | Ok (text, len) ->
      out := (base + !off, text) :: !out;
      off := !off + len
    | Error _ ->
      out := (base + !off, "(bad)") :: !out;
      incr off
  done;
  List.rev !out
