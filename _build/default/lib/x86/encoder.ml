module W = Cet_util.Bytesio.W

let fits8 v = v >= -128 && v <= 127

(* REX prefix for x64: w = 64-bit operand, r = ModRM.reg extension,
   x = SIB.index extension, b = ModRM.rm / SIB.base extension. *)
let rex ~w ~r ~x ~b =
  0x40 lor ((if w then 8 else 0) lor (if r then 4 else 0) lor (if x then 2 else 0)
           lor if b then 1 else 0)

let check_reg arch r =
  if arch = Arch.X86 && Register.needs_rex r then
    invalid_arg "Encoder: extended register in 32-bit mode"

(* Emit REX if needed (x64) for an instruction with operand-size [w],
   ModRM.reg register [reg] and rm/base register [rm_reg] plus optional SIB
   index. In x86 mode this asserts no extended registers are used. *)
let emit_rex w' arch ~w ~reg ~rm ~idx =
  match arch with
  | Arch.X86 ->
    Option.iter (check_reg arch) reg;
    Option.iter (check_reg arch) rm;
    Option.iter (check_reg arch) idx
  | Arch.X64 ->
    let hi = function Some r -> Register.needs_rex r | None -> false in
    let r = hi reg and b = hi rm and x = hi idx in
    if w || r || x || b then W.u8 w' (rex ~w ~r ~x ~b)

(* ModRM + SIB + displacement for a register rm operand. *)
let modrm_reg w' ~ext ~rm = W.u8 w' (0xC0 lor (ext lsl 3) lor (Register.index rm land 7))

(* ModRM + SIB + displacement for a memory operand.  [ext] is the ModRM.reg
   field (either a register index or an opcode extension). *)
let modrm_mem w' (m : Insn.mem) ~ext =
  let ext = ext land 7 in
  match (m.base, m.index) with
  | None, None ->
    (* disp32: absolute on x86, RIP-relative on x64. *)
    W.u8 w' ((ext lsl 3) lor 0x05);
    W.i32 w' m.disp
  | Some base, None ->
    let bi = Register.index base land 7 in
    let needs_sib = bi = 4 (* rsp/r12 *) in
    let force_disp = bi = 5 (* rbp/r13 need mod>=1 *) in
    let emit_modrm md =
      if needs_sib then begin
        W.u8 w' ((md lsl 6) lor (ext lsl 3) lor 0x04);
        W.u8 w' (0x24 lor (bi land 7)) (* scale=1 index=100(none) base *)
      end
      else W.u8 w' ((md lsl 6) lor (ext lsl 3) lor bi)
    in
    if m.disp = 0 && not force_disp then emit_modrm 0
    else if fits8 m.disp then begin
      emit_modrm 1;
      W.i8 w' m.disp
    end
    else begin
      emit_modrm 2;
      W.i32 w' m.disp
    end
  | base, Some (index, scale) ->
    if Register.index index land 15 = 4 && not (Register.needs_rex index) then
      invalid_arg "Encoder: rsp cannot be an index register";
    let ss =
      match scale with
      | 1 -> 0
      | 2 -> 1
      | 4 -> 2
      | 8 -> 3
      | _ -> invalid_arg "Encoder: bad scale"
    in
    let ii = Register.index index land 7 in
    (match base with
    | None ->
      (* mod=00, rm=100, SIB base=101: disp32 + scaled index. *)
      W.u8 w' ((ext lsl 3) lor 0x04);
      W.u8 w' ((ss lsl 6) lor (ii lsl 3) lor 0x05);
      W.i32 w' m.disp
    | Some b ->
      let bi = Register.index b land 7 in
      let force_disp = bi = 5 in
      let emit md =
        W.u8 w' ((md lsl 6) lor (ext lsl 3) lor 0x04);
        W.u8 w' ((ss lsl 6) lor (ii lsl 3) lor bi)
      in
      if m.disp = 0 && not force_disp then emit 0
      else if fits8 m.disp then begin
        emit 1;
        W.i8 w' m.disp
      end
      else begin
        emit 2;
        W.i32 w' m.disp
      end)

let mem_regs (m : Insn.mem) = (m.base, Option.map fst m.index)

let encode arch insn =
  let w' = W.create ~size:16 () in
  let reg_op ~w ~opc ~ext rm =
    emit_rex w' arch ~w ~reg:None ~rm:(Some rm) ~idx:None;
    W.u8 w' opc;
    modrm_reg w' ~ext ~rm
  in
  let rr ~opc a b =
    (* opc r/m, r form: a is rm, b is reg *)
    emit_rex w' arch ~w:(arch = Arch.X64) ~reg:(Some b) ~rm:(Some a) ~idx:None;
    W.u8 w' opc;
    modrm_reg w' ~ext:(Register.index b land 7) ~rm:a
  in
  let rm_mem ~w ~opc reg m =
    let base, idx = mem_regs m in
    emit_rex w' arch ~w ~reg:(Some reg) ~rm:base ~idx;
    W.u8 w' opc;
    modrm_mem w' m ~ext:(Register.index reg land 7)
  in
  let grp_mem ~w ~opc ~ext m =
    let base, idx = mem_regs m in
    emit_rex w' arch ~w ~reg:None ~rm:base ~idx;
    W.u8 w' opc;
    modrm_mem w' m ~ext
  in
  let alu_ri ~ext r imm =
    (* 83 /ext imm8 or 81 /ext imm32 *)
    if fits8 imm then begin
      reg_op ~w:(arch = Arch.X64) ~opc:0x83 ~ext r;
      W.i8 w' imm
    end
    else begin
      reg_op ~w:(arch = Arch.X64) ~opc:0x81 ~ext r;
      W.i32 w' imm
    end
  in
  (match insn with
  | Insn.Endbr ->
    W.u8 w' 0xF3;
    W.u8 w' 0x0F;
    W.u8 w' 0x1E;
    W.u8 w' (match arch with Arch.X64 -> 0xFA | Arch.X86 -> 0xFB)
  | Insn.Call_rel d ->
    W.u8 w' 0xE8;
    W.i32 w' d
  | Insn.Jmp_rel d ->
    W.u8 w' 0xE9;
    W.i32 w' d
  | Insn.Jmp_rel8 d ->
    if not (fits8 d) then invalid_arg "Encoder: jmp rel8 out of range";
    W.u8 w' 0xEB;
    W.i8 w' d
  | Insn.Jcc_rel (c, d) ->
    W.u8 w' 0x0F;
    W.u8 w' (0x80 lor Insn.cond_code c);
    W.i32 w' d
  | Insn.Jcc_rel8 (c, d) ->
    if not (fits8 d) then invalid_arg "Encoder: jcc rel8 out of range";
    W.u8 w' (0x70 lor Insn.cond_code c);
    W.i8 w' d
  | Insn.Call_reg r -> reg_op ~w:false ~opc:0xFF ~ext:2 r
  | Insn.Call_mem m -> grp_mem ~w:false ~opc:0xFF ~ext:2 m
  | Insn.Jmp_reg { reg; notrack } ->
    if notrack then W.u8 w' 0x3E;
    reg_op ~w:false ~opc:0xFF ~ext:4 reg
  | Insn.Jmp_mem { mem; notrack } ->
    if notrack then W.u8 w' 0x3E;
    grp_mem ~w:false ~opc:0xFF ~ext:4 mem
  | Insn.Ret -> W.u8 w' 0xC3
  | Insn.Ret_imm n ->
    W.u8 w' 0xC2;
    W.u16 w' n
  | Insn.Push r ->
    emit_rex w' arch ~w:false ~reg:None ~rm:(Some r) ~idx:None;
    W.u8 w' (0x50 lor (Register.index r land 7))
  | Insn.Pop r ->
    emit_rex w' arch ~w:false ~reg:None ~rm:(Some r) ~idx:None;
    W.u8 w' (0x58 lor (Register.index r land 7))
  | Insn.Push_imm n ->
    if fits8 n then begin
      W.u8 w' 0x6A;
      W.i8 w' n
    end
    else begin
      W.u8 w' 0x68;
      W.i32 w' n
    end
  | Insn.Mov_rr (a, b) -> rr ~opc:0x89 a b
  | Insn.Mov_ri (r, imm) ->
    (* B8+r imm32 (zero-extending on x64, enough for our addresses). *)
    emit_rex w' arch ~w:false ~reg:None ~rm:(Some r) ~idx:None;
    W.u8 w' (0xB8 lor (Register.index r land 7));
    W.i32 w' imm
  | Insn.Mov_rm (r, m) -> rm_mem ~w:(arch = Arch.X64) ~opc:0x8B r m
  | Insn.Mov_mr (m, r) -> rm_mem ~w:(arch = Arch.X64) ~opc:0x89 r m
  | Insn.Mov_mi (m, imm) ->
    grp_mem ~w:(arch = Arch.X64) ~opc:0xC7 ~ext:0 m;
    W.i32 w' imm
  | Insn.Lea (r, m) ->
    if m.base = None && m.index = None && arch = Arch.X86 then begin
      (* lea r, [disp32] is legal but GCC uses mov r, imm32 instead; keep the
         lea form available for PIC sequences. *)
      rm_mem ~w:false ~opc:0x8D r m
    end
    else rm_mem ~w:(arch = Arch.X64) ~opc:0x8D r m
  | Insn.Add_ri (r, imm) -> alu_ri ~ext:0 r imm
  | Insn.Sub_ri (r, imm) -> alu_ri ~ext:5 r imm
  | Insn.Add_rr (a, b) -> rr ~opc:0x01 a b
  | Insn.Sub_rr (a, b) -> rr ~opc:0x29 a b
  | Insn.Cmp_ri (r, imm) -> alu_ri ~ext:7 r imm
  | Insn.Cmp_rr (a, b) -> rr ~opc:0x39 a b
  | Insn.Test_rr (a, b) -> rr ~opc:0x85 a b
  | Insn.Xor_rr (a, b) -> rr ~opc:0x31 a b
  | Insn.And_ri (r, imm) -> alu_ri ~ext:4 r imm
  | Insn.And_rr (a, b) -> rr ~opc:0x21 a b
  | Insn.Or_ri (r, imm) -> alu_ri ~ext:1 r imm
  | Insn.Or_rr (a, b) -> rr ~opc:0x09 a b
  | Insn.Inc r -> (
    match arch with
    | Arch.X86 ->
      check_reg arch r;
      W.u8 w' (0x40 lor (Register.index r land 7))
    | Arch.X64 -> reg_op ~w:true ~opc:0xFF ~ext:0 r)
  | Insn.Dec r -> (
    match arch with
    | Arch.X86 ->
      check_reg arch r;
      W.u8 w' (0x48 lor (Register.index r land 7))
    | Arch.X64 -> reg_op ~w:true ~opc:0xFF ~ext:1 r)
  | Insn.Neg r -> reg_op ~w:(arch = Arch.X64) ~opc:0xF7 ~ext:3 r
  | Insn.Not r -> reg_op ~w:(arch = Arch.X64) ~opc:0xF7 ~ext:2 r
  | Insn.Shl_ri (r, n) ->
    if n < 1 || n > 63 then invalid_arg "Encoder: shift amount";
    reg_op ~w:(arch = Arch.X64) ~opc:0xC1 ~ext:4 r;
    W.u8 w' n
  | Insn.Shr_ri (r, n) ->
    if n < 1 || n > 63 then invalid_arg "Encoder: shift amount";
    reg_op ~w:(arch = Arch.X64) ~opc:0xC1 ~ext:5 r;
    W.u8 w' n
  | Insn.Sar_ri (r, n) ->
    if n < 1 || n > 63 then invalid_arg "Encoder: shift amount";
    reg_op ~w:(arch = Arch.X64) ~opc:0xC1 ~ext:7 r;
    W.u8 w' n
  | Insn.Imul_rr (dst, src) ->
    emit_rex w' arch ~w:(arch = Arch.X64) ~reg:(Some dst) ~rm:(Some src) ~idx:None;
    W.u8 w' 0x0F;
    W.u8 w' 0xAF;
    modrm_reg w' ~ext:(Register.index dst land 7) ~rm:src
  | Insn.Movzx_b (dst, src) ->
    emit_rex w' arch ~w:(arch = Arch.X64) ~reg:(Some dst) ~rm:(Some src) ~idx:None;
    W.u8 w' 0x0F;
    W.u8 w' 0xB6;
    modrm_reg w' ~ext:(Register.index dst land 7) ~rm:src
  | Insn.Movsx_b (dst, src) ->
    emit_rex w' arch ~w:(arch = Arch.X64) ~reg:(Some dst) ~rm:(Some src) ~idx:None;
    W.u8 w' 0x0F;
    W.u8 w' 0xBE;
    modrm_reg w' ~ext:(Register.index dst land 7) ~rm:src
  | Insn.Setcc (c, r) ->
    emit_rex w' arch ~w:false ~reg:None ~rm:(Some r) ~idx:None;
    W.u8 w' 0x0F;
    W.u8 w' (0x90 lor Insn.cond_code c);
    modrm_reg w' ~ext:0 ~rm:r
  | Insn.Cmov (c, dst, src) ->
    emit_rex w' arch ~w:(arch = Arch.X64) ~reg:(Some dst) ~rm:(Some src) ~idx:None;
    W.u8 w' 0x0F;
    W.u8 w' (0x40 lor Insn.cond_code c);
    modrm_reg w' ~ext:(Register.index dst land 7) ~rm:src
  | Insn.Cdq -> W.u8 w' 0x99
  | Insn.Leave -> W.u8 w' 0xC9
  | Insn.Nop -> W.u8 w' 0x90
  | Insn.Nopl n ->
    (* Canonical GAS multi-byte NOPs (2–9 bytes). *)
    let bytes =
      match n with
      | 2 -> "\x66\x90"
      | 3 -> "\x0f\x1f\x00"
      | 4 -> "\x0f\x1f\x40\x00"
      | 5 -> "\x0f\x1f\x44\x00\x00"
      | 6 -> "\x66\x0f\x1f\x44\x00\x00"
      | 7 -> "\x0f\x1f\x80\x00\x00\x00\x00"
      | 8 -> "\x0f\x1f\x84\x00\x00\x00\x00\x00"
      | 9 -> "\x66\x0f\x1f\x84\x00\x00\x00\x00\x00"
      | _ -> invalid_arg "Encoder: Nopl length must be 2-9"
    in
    W.bytes w' bytes
  | Insn.Int3 -> W.u8 w' 0xCC
  | Insn.Hlt -> W.u8 w' 0xF4
  | Insn.Ud2 ->
    W.u8 w' 0x0F;
    W.u8 w' 0x0B);
  W.contents w'

let length arch insn = String.length (encode arch insn)
