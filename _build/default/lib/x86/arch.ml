type t = X86 | X64

let bits = function X86 -> 32 | X64 -> 64
let ptr_size = function X86 -> 4 | X64 -> 8
let to_string = function X86 -> "x86" | X64 -> "x86-64"
let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
