type cond =
  | E
  | NE
  | L
  | LE
  | G
  | GE
  | A
  | AE
  | B
  | BE
  | S
  | NS

type mem = {
  base : Register.t option;
  index : (Register.t * int) option;
  disp : int;
}

type t =
  | Endbr
  | Call_rel of int
  | Jmp_rel of int
  | Jmp_rel8 of int
  | Jcc_rel of cond * int
  | Jcc_rel8 of cond * int
  | Call_reg of Register.t
  | Call_mem of mem
  | Jmp_reg of { reg : Register.t; notrack : bool }
  | Jmp_mem of { mem : mem; notrack : bool }
  | Ret
  | Ret_imm of int
  | Push of Register.t
  | Pop of Register.t
  | Push_imm of int
  | Mov_rr of Register.t * Register.t
  | Mov_ri of Register.t * int
  | Mov_rm of Register.t * mem
  | Mov_mr of mem * Register.t
  | Mov_mi of mem * int
  | Lea of Register.t * mem
  | Add_ri of Register.t * int
  | Sub_ri of Register.t * int
  | Add_rr of Register.t * Register.t
  | Sub_rr of Register.t * Register.t
  | Cmp_ri of Register.t * int
  | Cmp_rr of Register.t * Register.t
  | Test_rr of Register.t * Register.t
  | Xor_rr of Register.t * Register.t
  | And_ri of Register.t * int
  | And_rr of Register.t * Register.t
  | Or_ri of Register.t * int
  | Or_rr of Register.t * Register.t
  | Inc of Register.t
  | Dec of Register.t
  | Neg of Register.t
  | Not of Register.t
  | Shl_ri of Register.t * int
  | Shr_ri of Register.t * int
  | Sar_ri of Register.t * int
  | Imul_rr of Register.t * Register.t
  | Movzx_b of Register.t * Register.t
  | Movsx_b of Register.t * Register.t
  | Setcc of cond * Register.t
  | Cmov of cond * Register.t * Register.t
  | Cdq
  | Leave
  | Nop
  | Nopl of int
  | Int3
  | Hlt
  | Ud2

let mem_abs disp = { base = None; index = None; disp }
let mem_base r disp = { base = Some r; index = None; disp }

let mem_index ~base ~index ~scale ~disp =
  assert (scale = 1 || scale = 2 || scale = 4 || scale = 8);
  { base = Some base; index = Some (index, scale); disp }

(* Condition encodings follow the Intel tttn scheme used in 0F 8x / 7x. *)
let cond_code = function
  | E -> 0x4
  | NE -> 0x5
  | L -> 0xC
  | LE -> 0xE
  | G -> 0xF
  | GE -> 0xD
  | A -> 0x7
  | AE -> 0x3
  | B -> 0x2
  | BE -> 0x6
  | S -> 0x8
  | NS -> 0x9

let cond_of_code = function
  | 0x4 -> Some E
  | 0x5 -> Some NE
  | 0xC -> Some L
  | 0xE -> Some LE
  | 0xF -> Some G
  | 0xD -> Some GE
  | 0x7 -> Some A
  | 0x3 -> Some AE
  | 0x2 -> Some B
  | 0x6 -> Some BE
  | 0x8 -> Some S
  | 0x9 -> Some NS
  | _ -> None

let cond_name = function
  | E -> "e"
  | NE -> "ne"
  | L -> "l"
  | LE -> "le"
  | G -> "g"
  | GE -> "ge"
  | A -> "a"
  | AE -> "ae"
  | B -> "b"
  | BE -> "be"
  | S -> "s"
  | NS -> "ns"

let pp ~arch fmt t =
  let reg r =
    match arch with Arch.X64 -> Register.name64 r | Arch.X86 -> Register.name32 r
  in
  let mem m =
    let parts = ref [] in
    (match m.index with
    | Some (r, s) -> parts := Printf.sprintf "%s*%d" (reg r) s :: !parts
    | None -> ());
    (match m.base with Some r -> parts := reg r :: !parts | None -> ());
    let inner = String.concat "+" !parts in
    if inner = "" then Printf.sprintf "[0x%x]" m.disp
    else if m.disp = 0 then Printf.sprintf "[%s]" inner
    else Printf.sprintf "[%s%+d]" inner m.disp
  in
  let s =
    match t with
    | Endbr -> (match arch with Arch.X64 -> "endbr64" | Arch.X86 -> "endbr32")
    | Call_rel d -> Printf.sprintf "call rel(%+d)" d
    | Jmp_rel d -> Printf.sprintf "jmp rel(%+d)" d
    | Jmp_rel8 d -> Printf.sprintf "jmp short rel(%+d)" d
    | Jcc_rel (c, d) -> Printf.sprintf "j%s rel(%+d)" (cond_name c) d
    | Jcc_rel8 (c, d) -> Printf.sprintf "j%s short rel(%+d)" (cond_name c) d
    | Call_reg r -> Printf.sprintf "call %s" (reg r)
    | Call_mem m -> Printf.sprintf "call %s" (mem m)
    | Jmp_reg { reg = r; notrack } ->
      Printf.sprintf "%sjmp %s" (if notrack then "notrack " else "") (reg r)
    | Jmp_mem { mem = m; notrack } ->
      Printf.sprintf "%sjmp %s" (if notrack then "notrack " else "") (mem m)
    | Ret -> "ret"
    | Ret_imm n -> Printf.sprintf "ret %d" n
    | Push r -> Printf.sprintf "push %s" (reg r)
    | Pop r -> Printf.sprintf "pop %s" (reg r)
    | Push_imm n -> Printf.sprintf "push %d" n
    | Mov_rr (a, b) -> Printf.sprintf "mov %s, %s" (reg a) (reg b)
    | Mov_ri (a, n) -> Printf.sprintf "mov %s, %d" (reg a) n
    | Mov_rm (a, m) -> Printf.sprintf "mov %s, %s" (reg a) (mem m)
    | Mov_mr (m, a) -> Printf.sprintf "mov %s, %s" (mem m) (reg a)
    | Mov_mi (m, n) -> Printf.sprintf "mov %s, %d" (mem m) n
    | Lea (a, m) -> Printf.sprintf "lea %s, %s" (reg a) (mem m)
    | Add_ri (a, n) -> Printf.sprintf "add %s, %d" (reg a) n
    | Sub_ri (a, n) -> Printf.sprintf "sub %s, %d" (reg a) n
    | Add_rr (a, b) -> Printf.sprintf "add %s, %s" (reg a) (reg b)
    | Sub_rr (a, b) -> Printf.sprintf "sub %s, %s" (reg a) (reg b)
    | Cmp_ri (a, n) -> Printf.sprintf "cmp %s, %d" (reg a) n
    | Cmp_rr (a, b) -> Printf.sprintf "cmp %s, %s" (reg a) (reg b)
    | Test_rr (a, b) -> Printf.sprintf "test %s, %s" (reg a) (reg b)
    | Xor_rr (a, b) -> Printf.sprintf "xor %s, %s" (reg a) (reg b)
    | And_ri (a, n) -> Printf.sprintf "and %s, %d" (reg a) n
    | And_rr (a, b) -> Printf.sprintf "and %s, %s" (reg a) (reg b)
    | Or_ri (a, n) -> Printf.sprintf "or %s, %d" (reg a) n
    | Or_rr (a, b) -> Printf.sprintf "or %s, %s" (reg a) (reg b)
    | Inc a -> Printf.sprintf "inc %s" (reg a)
    | Dec a -> Printf.sprintf "dec %s" (reg a)
    | Neg a -> Printf.sprintf "neg %s" (reg a)
    | Not a -> Printf.sprintf "not %s" (reg a)
    | Shl_ri (a, n) -> Printf.sprintf "shl %s, %d" (reg a) n
    | Shr_ri (a, n) -> Printf.sprintf "shr %s, %d" (reg a) n
    | Sar_ri (a, n) -> Printf.sprintf "sar %s, %d" (reg a) n
    | Imul_rr (a, b) -> Printf.sprintf "imul %s, %s" (reg a) (reg b)
    | Movzx_b (a, b) -> Printf.sprintf "movzx %s, %s(8)" (reg a) (reg b)
    | Movsx_b (a, b) -> Printf.sprintf "movsx %s, %s(8)" (reg a) (reg b)
    | Setcc (c, a) -> Printf.sprintf "set%s %s" (cond_name c) (reg a)
    | Cmov (c, a, b) -> Printf.sprintf "cmov%s %s, %s" (cond_name c) (reg a) (reg b)
    | Cdq -> "cdq"
    | Leave -> "leave"
    | Nop -> "nop"
    | Nopl n -> Printf.sprintf "nop(%d)" n
    | Int3 -> "int3"
    | Hlt -> "hlt"
    | Ud2 -> "ud2"
  in
  Format.pp_print_string fmt s
