(** Target architecture selector shared by the whole pipeline. *)

type t = X86 | X64

val bits : t -> int
(** 32 or 64. *)

val ptr_size : t -> int
(** Pointer width in bytes: 4 or 8. *)

val to_string : t -> string
(** ["x86"] or ["x86-64"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
