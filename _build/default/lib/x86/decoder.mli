(** Table-driven x86 / x86-64 instruction length decoder and classifier.

    This is the disassembler front-end used by the linear sweep (§IV-B of the
    paper).  It decodes legacy prefixes, REX (x86-64), one- and two-byte
    opcode maps, ModRM/SIB and displacement/immediate fields — enough to
    measure every instruction the synthetic compiler emits plus the common
    encodings around them — and classifies each instruction into the
    categories the FunSeeker algorithm cares about. *)

type kind =
  | Endbr64
  | Endbr32
  | Call_direct of int  (** absolute target virtual address *)
  | Jmp_direct of int
  | Jcc_direct of int
  | Call_indirect of { goto : int option }
      (** [goto] is the absolute slot address for the bare-disp32 memory form
          (GOT slot of a PLT stub); [None] otherwise. *)
  | Jmp_indirect of { notrack : bool; goto : int option }
  | Ret
  | Halt
  | Addr_ref of int
      (** a code-address materialisation: [lea r, \[rip+d\]] (x86-64) or a
          32-bit immediate load/push (x86) whose operand the caller may
          treat as a potential code pointer *)
  | Other

type ins = { addr : int; len : int; kind : kind }

val decode :
  Arch.t -> string -> base:int -> off:int -> (ins, string) result
(** [decode arch code ~base ~off] decodes the instruction at byte offset
    [off] of section contents [code], whose first byte lives at virtual
    address [base].  Absolute targets of direct branches are computed from
    the instruction address.  Returns [Error _] on bytes outside the decoded
    subset or on truncation; the linear sweep then resynchronises at
    [off + 1] exactly as the paper prescribes. *)

val kind_to_string : kind -> string
