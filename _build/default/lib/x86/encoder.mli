(** Machine-code emission for {!Insn.t}.

    The encoder produces the byte sequences GCC/Clang-style code generators
    use on x86 and x86-64.  On x86-64, register-width operations use the
    64-bit operand size (REX.W), matching pointer-heavy compiler output. *)

val encode : Arch.t -> Insn.t -> string
(** [encode arch insn] returns the encoding.  Raises [Invalid_argument] for
    encodings impossible on [arch] (extended registers or [notrack] RIP-bare
    jumps on x86, 16-byte NOPs, etc.). *)

val length : Arch.t -> Insn.t -> int
(** [length arch insn = String.length (encode arch insn)].  Lengths depend
    only on the constructor and operand shapes, never on label distances,
    which keeps assembly single-pass-sizable. *)
