(** General-purpose integer registers of x86 / x86-64.

    In 32-bit mode only the first eight registers exist and they are read as
    their E-prefixed names; encodings (0–7) coincide, so a single type covers
    both architectures. *)

type t =
  | RAX
  | RCX
  | RDX
  | RBX
  | RSP
  | RBP
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

val index : t -> int
(** 4-bit encoding (0–15); the top bit goes into REX when needed. *)

val needs_rex : t -> bool
(** True for [R8]–[R15]. *)

val name64 : t -> string
(** e.g. ["rax"], ["r11"]. *)

val name32 : t -> string
(** e.g. ["eax"], ["r11d"]. *)

val of_index : int -> t
(** Inverse of {!index}. Raises [Invalid_argument] outside 0–15. *)

val all : t array
