type t =
  | RAX
  | RCX
  | RDX
  | RBX
  | RSP
  | RBP
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all =
  [| RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 |]

let index = function
  | RAX -> 0
  | RCX -> 1
  | RDX -> 2
  | RBX -> 3
  | RSP -> 4
  | RBP -> 5
  | RSI -> 6
  | RDI -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let needs_rex r = index r >= 8

let name64 = function
  | RAX -> "rax"
  | RCX -> "rcx"
  | RDX -> "rdx"
  | RBX -> "rbx"
  | RSP -> "rsp"
  | RBP -> "rbp"
  | RSI -> "rsi"
  | RDI -> "rdi"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let name32 r =
  if needs_rex r then name64 r ^ "d"
  else
    match r with
    | RAX -> "eax"
    | RCX -> "ecx"
    | RDX -> "edx"
    | RBX -> "ebx"
    | RSP -> "esp"
    | RBP -> "ebp"
    | RSI -> "esi"
    | RDI -> "edi"
    | _ -> assert false

let of_index i =
  if i < 0 || i > 15 then invalid_arg "Register.of_index" else all.(i)
