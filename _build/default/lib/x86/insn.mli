(** Abstract syntax of the x86 / x86-64 instruction subset emitted by the
    synthetic compiler.

    Relative branch displacements in this AST are already resolved rel values
    (offset from the end of the instruction); the {!Asm} module resolves
    symbolic labels into them.  The subset covers everything GCC/Clang-style
    code generation needs for the paper's patterns: CET end-branch markers,
    direct and indirect calls and jumps (including [notrack]-prefixed jumps
    for switch tables), prologue/epilogue material, and common ALU traffic. *)

type cond =
  | E
  | NE
  | L
  | LE
  | G
  | GE
  | A
  | AE
  | B
  | BE
  | S
  | NS

type mem = {
  base : Register.t option;
  index : (Register.t * int) option;  (** register and scale (1, 2, 4, 8) *)
  disp : int;
}
(** Memory operand.  When both [base] and [index] are [None], the operand is
    a bare [disp32]: absolute on x86, RIP-relative on x86-64 (matching the
    hardware's reinterpretation of the mod=00/rm=101 encoding). *)

type t =
  | Endbr  (** [endbr64] on x86-64, [endbr32] on x86 *)
  | Call_rel of int
  | Jmp_rel of int
  | Jmp_rel8 of int
  | Jcc_rel of cond * int
  | Jcc_rel8 of cond * int
  | Call_reg of Register.t
  | Call_mem of mem
  | Jmp_reg of { reg : Register.t; notrack : bool }
  | Jmp_mem of { mem : mem; notrack : bool }
  | Ret
  | Ret_imm of int
  | Push of Register.t
  | Pop of Register.t
  | Push_imm of int
  | Mov_rr of Register.t * Register.t
  | Mov_ri of Register.t * int
  | Mov_rm of Register.t * mem
  | Mov_mr of mem * Register.t
  | Mov_mi of mem * int
  | Lea of Register.t * mem
  | Add_ri of Register.t * int
  | Sub_ri of Register.t * int
  | Add_rr of Register.t * Register.t
  | Sub_rr of Register.t * Register.t
  | Cmp_ri of Register.t * int
  | Cmp_rr of Register.t * Register.t
  | Test_rr of Register.t * Register.t
  | Xor_rr of Register.t * Register.t
  | And_ri of Register.t * int
  | And_rr of Register.t * Register.t
  | Or_ri of Register.t * int
  | Or_rr of Register.t * Register.t
  | Inc of Register.t
  | Dec of Register.t
  | Neg of Register.t
  | Not of Register.t
  | Shl_ri of Register.t * int  (** shift left by imm8 (1–63) *)
  | Shr_ri of Register.t * int
  | Sar_ri of Register.t * int
  | Imul_rr of Register.t * Register.t  (** dst, src *)
  | Movzx_b of Register.t * Register.t  (** zero-extend low byte of src *)
  | Movsx_b of Register.t * Register.t
  | Setcc of cond * Register.t  (** set low byte on condition *)
  | Cmov of cond * Register.t * Register.t  (** dst, src *)
  | Cdq
  | Leave
  | Nop
  | Nopl of int  (** multi-byte NOP of the given total length (2–9 bytes) *)
  | Int3
  | Hlt
  | Ud2

val mem_abs : int -> mem
(** Bare displacement operand (absolute on x86, RIP-relative on x86-64). *)

val mem_base : Register.t -> int -> mem
(** [mem_base r d] is [\[r + d\]]. *)

val mem_index : base:Register.t -> index:Register.t -> scale:int -> disp:int -> mem

val cond_code : cond -> int
(** Low nibble of the condition encoding (e.g. [E] is 4, [NE] is 5). *)

val cond_of_code : int -> cond option

val pp : arch:Arch.t -> Format.formatter -> t -> unit
(** AT&T-ish rendering for dumps; rel targets shown as raw displacements. *)
