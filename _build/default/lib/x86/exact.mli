(** Exact decoding back into the {!Insn.t} AST — the inverse of {!Encoder}
    over the instruction subset the synthetic compiler emits.

    Where {!Decoder} recovers only lengths and branch classifications (all a
    linear sweep needs), this module reconstructs full operands, so tools
    can print real assembly listings.  Encodings outside the modelled
    subset return [None]; callers fall back to {!Decoder}'s classification.

    Invariant (tested property): for every [i : Insn.t] valid on [arch],
    [decode arch (Encoder.encode arch i) ~off:0 = Some (i, length)]. *)

val decode : Arch.t -> string -> off:int -> (Insn.t * int) option
(** [decode arch code ~off] parses one instruction at byte offset [off],
    returning the AST and its length. *)

val disassemble :
  Arch.t -> string -> base:int -> off:int -> (string * int, string) result
(** Render one instruction as text (via {!Insn.pp}) with its length,
    falling back to {!Decoder}'s coarse classification for encodings
    outside the subset; [Error] only when even that fails. *)

val disassemble_all : Arch.t -> string -> base:int -> (int * string) list
(** Full listing of a code blob: [(address, text)] per instruction, with
    [+1] resynchronisation like the linear sweep. *)
