lib/x86/asm.mli: Arch Insn Register
