lib/x86/register.ml: Array
