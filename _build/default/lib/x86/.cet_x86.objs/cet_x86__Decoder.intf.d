lib/x86/decoder.mli: Arch
