lib/x86/exact.mli: Arch Insn
