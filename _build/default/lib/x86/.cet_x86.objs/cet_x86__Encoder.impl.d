lib/x86/encoder.ml: Arch Cet_util Insn Option Register String
