lib/x86/exact.ml: Arch Char Decoder Format Insn List Register String
