lib/x86/asm.ml: Arch Buffer Char Encoder Hashtbl Insn List Register String
