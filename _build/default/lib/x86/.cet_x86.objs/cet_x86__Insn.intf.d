lib/x86/insn.mli: Arch Format Register
