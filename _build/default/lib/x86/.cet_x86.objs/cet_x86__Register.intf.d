lib/x86/register.mli:
