lib/x86/decoder.ml: Arch Char Printf String
