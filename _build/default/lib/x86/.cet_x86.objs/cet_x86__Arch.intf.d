lib/x86/arch.mli: Format
