lib/x86/arch.ml: Format
