lib/x86/encoder.mli: Arch Insn
