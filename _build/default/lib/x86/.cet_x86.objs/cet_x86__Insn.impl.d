lib/x86/insn.ml: Arch Format Printf Register String
