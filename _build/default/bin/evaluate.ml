(* evaluate — regenerate every table and figure of the paper.

   Usage:
     evaluate all                 # all tables + figure
     evaluate table1|fig3|table2|table3
     evaluate --scale 0.25 --seed 2022 --jobs 4 all *)

open Cmdliner

let run_eval what seed scale progress jobs no_timing =
  let opts = { Cet_eval.Harness.seed; scale; progress; timing = not no_timing } in
  let out =
    match what with
    | "manual-endbr" ->
      Cet_eval.Harness.render_manual_endbr
        (Cet_eval.Harness.manual_endbr_ablation ~jobs opts)
    | "extras" ->
      Cet_eval.Harness.render_related_work (Cet_eval.Harness.related_work ~jobs opts)
    | "inline-data" ->
      Cet_eval.Harness.render_inline_data (Cet_eval.Harness.inline_data ~jobs opts)
    | "arm" -> Cet_eval.Harness.render_arm (Cet_eval.Harness.arm_bti ~jobs opts)
    | _ ->
      let results = Cet_eval.Harness.run ~jobs opts in
      (match what with
      | "all" -> Cet_eval.Harness.render_all results
      | "table1" -> Cet_eval.Tables.Table1.render results.table1
      | "fig3" -> Cet_eval.Tables.Fig3.render results.fig3
      | "table2" -> Cet_eval.Tables.Table2.render results.table2
      | "table3" -> Cet_eval.Tables.Table3.render results.table3
      | other ->
        Printf.sprintf
          "unknown experiment %S (try all|table1|fig3|table2|table3|manual-endbr|extras|inline-data|arm)\n" other)
  in
  print_string out

let what =
  let doc = "Which experiment to regenerate: all, table1, fig3, table2, table3, manual-endbr, extras, inline-data, arm." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let seed =
  let doc = "Dataset seed (the paper-equivalent corpus is deterministic in it)." in
  Arg.(value & opt int 2022 & info [ "seed" ] ~doc)

let scale =
  let doc = "Corpus scale factor: 1.0 reproduces the paper's suite sizes." in
  Arg.(value & opt float 0.25 & info [ "scale" ] ~doc)

let progress =
  let doc = "Print a progress dot per 100 binaries to stderr." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let jobs =
  let doc =
    "Worker domains for the evaluation (default: the hardware's recommended \
     domain count).  Results are byte-identical to --jobs 1."
  in
  Arg.(value & opt int (Domain.recommended_domain_count ()) & info [ "j"; "jobs" ] ~doc)

let no_timing =
  let doc =
    "Skip the wall-clock measurements behind Table III's Time(ms) columns \
     (they become 0.000), making the output fully deterministic in --seed."
  in
  Arg.(value & flag & info [ "no-timing" ] ~doc)

let cmd =
  let doc = "regenerate the FunSeeker paper's tables and figures" in
  Cmd.v
    (Cmd.info "evaluate" ~doc)
    Term.(const run_eval $ what $ seed $ scale $ progress $ jobs $ no_timing)

let () = exit (Cmd.eval cmd)
