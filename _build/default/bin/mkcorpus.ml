(* mkcorpus — materialise the synthetic benchmark on disk, the counterpart
   of the paper's published dataset: for every program × configuration, a
   stripped ELF (what the tools see), its unstripped twin (ground-truth
   source) and a .truth file with the function entry list.

   Usage: mkcorpus --out corpus/ --scale 0.05 --seed 2022 *)

open Cmdliner
module O = Cet_compiler.Options

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let mkdir_p path =
  let rec go p =
    if p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      Sys.mkdir p 0o755
    end
  in
  go path

let run out seed scale suites =
  let profiles =
    match suites with
    | [] -> Cet_corpus.Profile.all
    | names ->
      List.map
        (function
          | "coreutils" -> Cet_corpus.Profile.coreutils
          | "binutils" -> Cet_corpus.Profile.binutils
          | "spec" -> Cet_corpus.Profile.spec
          | s -> failwith ("unknown suite " ^ s))
        names
  in
  let count = ref 0 and bytes = ref 0 in
  let manifest = Buffer.create 4096 in
  Buffer.add_string manifest
    (Printf.sprintf "# synthetic CET corpus  seed=%d scale=%g\n# suite program config stripped unstripped truth\n"
       seed scale);
  Cet_corpus.Dataset.iter ~profiles ~seed ~scale (fun b ->
      let dir = Filename.concat (Filename.concat out b.Cet_corpus.Dataset.suite) b.program in
      mkdir_p dir;
      let cfg = O.to_string b.config in
      let stripped_path = Filename.concat dir (cfg ^ ".elf") in
      let unstripped_path = Filename.concat dir (cfg ^ ".unstripped.elf") in
      let truth_path = Filename.concat dir (cfg ^ ".truth") in
      write_file stripped_path b.stripped;
      write_file unstripped_path b.unstripped;
      let tr = Buffer.create 256 in
      List.iter
        (fun (name, addr) -> Buffer.add_string tr (Printf.sprintf "0x%x %s\n" addr name))
        b.truth;
      write_file truth_path (Buffer.contents tr);
      incr count;
      bytes := !bytes + String.length b.stripped + String.length b.unstripped;
      Buffer.add_string manifest
        (Printf.sprintf "%s %s %s %s %s %s\n" b.suite b.program cfg stripped_path
           unstripped_path truth_path));
  mkdir_p out;
  write_file (Filename.concat out "MANIFEST") (Buffer.contents manifest);
  Printf.printf "wrote %d binaries (%.1f MiB) under %s\n" (2 * !count)
    (float_of_int !bytes /. 1048576.0)
    out

let out = Arg.(value & opt string "corpus" & info [ "out"; "o" ] ~doc:"Output directory.")
let seed = Arg.(value & opt int 2022 & info [ "seed" ] ~doc:"Corpus seed.")
let scale = Arg.(value & opt float 0.05 & info [ "scale" ] ~doc:"Suite scale factor.")

let suites =
  Arg.(value & opt_all string [] & info [ "suite" ] ~doc:"Restrict to a suite (repeatable).")

let cmd =
  let doc = "materialise the synthetic CET benchmark on disk" in
  Cmd.v (Cmd.info "mkcorpus" ~doc) Term.(const run $ out $ seed $ scale $ suites)

let () = exit (Cmd.eval cmd)
