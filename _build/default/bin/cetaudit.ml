(* cetaudit — verify IBT coverage of a CET-enabled binary: every statically
   visible indirect-branch target must begin with an end-branch.

   Usage: cetaudit [--quiet] FILE            exit code 1 on violations *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run file quiet =
  let reader = Cet_elf.Reader.read (read_file file) in
  if not (Cet_elf.Reader.cet_enabled reader) then
    Printf.printf "note: %s does not advertise IBT in .note.gnu.property\n" file;
  let r = Core.Audit.audit reader in
  if not quiet then begin
    Printf.printf "%s: %d indirect-branch targets checked, %d marked, %d violations\n"
      file r.Core.Audit.checked r.marked
      (List.length r.violations);
    Printf.printf "superfluous end-branches (conservative over-marking): %d\n" r.superfluous;
    List.iter
      (fun (v : Core.Audit.violation) ->
        Printf.printf "  VIOLATION 0x%x: %s without end-branch\n" v.v_target
          (Core.Audit.reason_to_string v.v_reason))
      r.violations
  end;
  if r.violations <> [] then exit 1

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Only set the exit code.")

let cmd =
  let doc = "audit IBT (end-branch) coverage of a binary" in
  Cmd.v (Cmd.info "cetaudit" ~doc) Term.(const run $ file $ quiet)

let () = exit (Cmd.eval cmd)
