(* synthcc — compile a synthetic corpus program into a CET-enabled ELF.

   Usage:
     synthcc --suite coreutils --index 3 --compiler gcc --arch x64 \
             --opt O2 --pie -o prog.elf *)

open Cmdliner
module Options = Cet_compiler.Options

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let run suite index seed compiler arch opt pie strip out =
  let profile =
    match suite with
    | "coreutils" -> Cet_corpus.Profile.coreutils
    | "binutils" -> Cet_corpus.Profile.binutils
    | "spec" -> Cet_corpus.Profile.spec
    | s -> failwith ("unknown suite " ^ s)
  in
  if arch = "arm64" || arch = "aarch64" then begin
    (* SSVI extension path: BTI-enabled AArch64. *)
    let ir = Cet_corpus.Generator.program ~seed ~profile ~index in
    let res = Cet_arm64.A64_compile.compile Cet_arm64.A64_compile.default_opts ir in
    let bytes = Cet_elf.Writer.write ~strip res.Cet_arm64.A64_compile.image in
    write_file out bytes;
    Printf.printf "%s: %d bytes, %d functions, entry 0x%x (aarch64-bti)\n" out
      (String.length bytes)
      (List.length res.Cet_arm64.A64_compile.truth)
      res.Cet_arm64.A64_compile.image.Cet_elf.Image.entry;
    exit 0
  end;
  let compiler =
    match compiler with
    | "gcc" -> Options.Gcc
    | "clang" -> Options.Clang
    | c -> failwith ("unknown compiler " ^ c)
  in
  let arch =
    match arch with
    | "x86" -> Cet_x86.Arch.X86
    | "x64" | "x86-64" -> Cet_x86.Arch.X64
    | a -> failwith ("unknown arch " ^ a)
  in
  let opt =
    match opt with
    | "O0" -> Options.O0
    | "O1" -> Options.O1
    | "O2" -> Options.O2
    | "O3" -> Options.O3
    | "Os" -> Options.Os
    | "Ofast" -> Options.Ofast
    | o -> failwith ("unknown optimisation level " ^ o)
  in
  let opts =
    {
      Options.compiler;
      arch;
      pie;
      opt;
      cf_protection = Options.Cf_full;
      jump_tables_in_text = false;
    }
  in
  let ir = Cet_corpus.Generator.program ~seed ~profile ~index in
  let res = Cet_compiler.Link.link opts ir in
  let bytes = Cet_elf.Writer.write ~strip res.image in
  write_file out bytes;
  Printf.printf "%s: %d bytes, %d functions, entry 0x%x (%s)\n" out
    (String.length bytes) (List.length res.truth)
    res.image.Cet_elf.Image.entry (Options.to_string opts)

let suite = Arg.(value & opt string "coreutils" & info [ "suite" ] ~doc:"coreutils|binutils|spec")
let index = Arg.(value & opt int 0 & info [ "index" ] ~doc:"Program index within the suite.")
let seed = Arg.(value & opt int 2022 & info [ "seed" ] ~doc:"Corpus seed.")
let compiler = Arg.(value & opt string "gcc" & info [ "compiler" ] ~doc:"gcc|clang")
let arch = Arg.(value & opt string "x64" & info [ "arch" ] ~doc:"x86|x64|arm64")
let opt_level = Arg.(value & opt string "O2" & info [ "opt" ] ~doc:"O0|O1|O2|O3|Os|Ofast")
let pie = Arg.(value & flag & info [ "pie" ] ~doc:"Produce a position-independent executable.")
let strip = Arg.(value & flag & info [ "strip" ] ~doc:"Strip the symbol table.")
let out = Arg.(value & opt string "a.out" & info [ "o"; "output" ] ~doc:"Output path.")

let cmd =
  let doc = "synthetic CET-enabled compiler driver" in
  Cmd.v (Cmd.info "synthcc" ~doc)
    Term.(
      const run $ suite $ index $ seed $ compiler $ arch $ opt_level $ pie $ strip $ out)

let () = exit (Cmd.eval cmd)
