(* CFG recovery on top of FunSeeker — the downstream consumer the paper
   motivates (§VII-B: "CFG recovery techniques often rely on the assumption
   that function entries are known").

     dune exec examples/cfg_recovery.exe *)

module O = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module Cfg = Cet_cfg.Cfg

let () =
  (* A binutils-like program, stripped. *)
  let profile =
    { Cet_corpus.Profile.binutils with Cet_corpus.Profile.programs = 1 }
  in
  let ir = Cet_corpus.Generator.program ~seed:11 ~profile ~index:0 in
  let res = Cet_compiler.Link.link O.default ir in
  let reader = Cet_elf.Reader.read (Cet_elf.Writer.write ~strip:true res.image) in
  (* Function entries come from FunSeeker; the CFG layer does the rest. *)
  let funcs = Cfg.recover reader in
  let blocks = List.fold_left (fun acc f -> acc + Cfg.block_count f) 0 funcs in
  let edges = List.fold_left (fun acc f -> acc + Cfg.edge_count f) 0 funcs in
  Printf.printf "recovered %d function CFGs: %d basic blocks, %d intra edges\n\n"
    (List.length funcs) blocks edges;
  (* Top functions by block count. *)
  let by_size =
    List.sort (fun a b -> compare (Cfg.block_count b) (Cfg.block_count a)) funcs
  in
  let name_of addr =
    match List.find_opt (fun (_, a) -> a = addr) res.Cet_compiler.Link.truth with
    | Some (n, _) -> n
    | None -> "?"
  in
  Printf.printf "%-12s %8s %8s %8s %8s\n" "function" "blocks" "edges" "calls" "bytes";
  List.iteri
    (fun i f ->
      if i < 8 then
        Printf.printf "%-12s %8d %8d %8d %8d\n" (name_of f.Cfg.f_entry)
          (Cfg.block_count f) (Cfg.edge_count f)
          (List.length f.Cfg.f_calls)
          (f.Cfg.f_stop - f.Cfg.f_entry))
    by_size;
  (* Call-graph reachability from main. *)
  let main = List.assoc "main" res.Cet_compiler.Link.truth in
  let reach = Cfg.reachable_from funcs main in
  Printf.printf "\ncall graph: %d of %d functions reachable from main\n"
    (List.length reach) (List.length funcs);
  (* DOT output for the largest function. *)
  match by_size with
  | biggest :: _ ->
    let dot = Cfg.to_dot biggest in
    let path = Filename.concat (Filename.get_temp_dir_name ()) "funseeker_cfg.dot" in
    let oc = open_out path in
    output_string oc dot;
    close_out oc;
    Printf.printf "largest CFG (%s) written to %s (%d bytes of DOT)\n"
      (name_of biggest.Cfg.f_entry) path (String.length dot)
  | [] -> ()
