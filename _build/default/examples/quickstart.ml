(* Quickstart: build a tiny CET-enabled binary with the synthetic compiler
   and identify its functions with FunSeeker.

     dune exec examples/quickstart.exe *)

module Ir = Cet_compiler.Ir
module O = Cet_compiler.Options

let () =
  (* 1. A small "C program": main calls a helper through a function
     pointer, a static helper directly, and setjmp. *)
  let program =
    {
      Ir.prog_name = "quickstart";
      lang = Ir.C;
      funcs =
        [
          Ir.func "main"
            [
              Ir.Compute 3;
              Ir.Call (Ir.Local "helper");
              Ir.Call_via_pointer "callback";
              Ir.Indirect_return_call "setjmp";
              Ir.Call (Ir.Import "printf");
            ];
          Ir.func ~linkage:Ir.Static "helper" [ Ir.Compute 4 ];
          Ir.func ~linkage:Ir.Static ~address_taken:true "callback" [ Ir.Compute 2 ];
        ];
      extra_imports = [];
    }
  in
  (* 2. Compile it the way GCC 10 would at -O2 for x86-64 PIE, then strip
     it, exactly like the paper's dataset. *)
  let result = Cet_compiler.Link.link O.default program in
  let stripped = Cet_elf.Writer.write ~strip:true result.image in
  Printf.printf "compiled %s: %d bytes, %d real functions\n\n" program.Ir.prog_name
    (String.length stripped) (List.length result.truth);
  (* 3. Run FunSeeker on the stripped bytes. *)
  let found = Core.Funseeker.analyze_bytes stripped in
  Printf.printf "FunSeeker found %d function entries:\n" (List.length found.functions);
  List.iter
    (fun addr ->
      let name =
        match List.find_opt (fun (_, a) -> a = addr) result.truth with
        | Some (n, _) -> n
        | None -> "??"
      in
      Printf.printf "  0x%-6x %s\n" addr name)
    found.functions;
  (* 4. Score against ground truth. *)
  let truth = List.map snd result.truth in
  let m = Cet_eval.Metrics.compare_sets ~truth ~found:found.functions in
  Printf.printf "\nprecision %.1f%%  recall %.1f%%\n" (Cet_eval.Metrics.precision m)
    (Cet_eval.Metrics.recall m);
  Printf.printf
    "(the end-branch after the setjmp call site was filtered: %d indirect-return site)\n"
    found.filtered_indirect_return
