(* C++ exceptions: why naive end-branch harvesting misfires on C++
   binaries, reproducing the paper's Fig. 2b observation and the Table II
   config-1 precision collapse.

     dune exec examples/cxx_exceptions.exe *)

module Ir = Cet_compiler.Ir
module O = Cet_compiler.Options
module FS = Core.Funseeker

let () =
  (* A Molecule-constructor-like function with catch blocks (508.namd). *)
  let program =
    {
      Ir.prog_name = "namd_like";
      lang = Ir.Cpp;
      funcs =
        [
          Ir.func "main" [ Ir.Call (Ir.Local "_ZN8MoleculeC2Ev") ];
          Ir.func "_ZN8MoleculeC2Ev"
            [
              Ir.Compute 3;
              Ir.Try_catch
                ( [ Ir.Call (Ir.Import "_Znwm"); Ir.Compute 2 ],
                  [ [ Ir.Compute 1 ]; [ Ir.Compute 2 ] ] );
              Ir.Try_catch ([ Ir.Call (Ir.Import "printf") ], [ [ Ir.Compute 1 ] ]);
            ];
        ];
      extra_imports = [];
    }
  in
  let result = Cet_compiler.Link.link O.default program in
  let bytes = Cet_elf.Writer.write ~strip:true result.image in
  let reader = Cet_elf.Reader.read bytes in
  (* Show the Fig. 2b pattern: an end-branch right after the function's
     ret, heading a catch block. *)
  let lps = Core.Parse.landing_pads reader in
  Printf.printf "landing pads recovered from .gcc_except_table: %d\n"
    (List.length lps);
  let sweep = Cet_disasm.Linear.sweep_text reader in
  let lp = List.hd lps in
  Printf.printf "\ndisassembly around the first catch block (0x%x):\n" lp;
  Array.iter
    (fun (i : Cet_x86.Decoder.ins) ->
      if i.addr >= lp - 6 && i.addr <= lp + 12 then
        Printf.printf "  0x%-6x %s%s\n" i.addr
          (Cet_x86.Decoder.kind_to_string i.kind)
          (if i.addr = lp then "   <-- catch block starts here" else ""))
    sweep.insns;
  (* Naive harvesting (config 1) counts every catch block as a function. *)
  let truth = List.map snd result.truth in
  let score config =
    let r = FS.analyze ~config reader in
    let m = Cet_eval.Metrics.compare_sets ~truth ~found:r.FS.functions in
    (r, m)
  in
  let r1, m1 = score FS.config1 in
  let r2, m2 = score FS.config2 in
  Printf.printf "\nconfig 1 (E u C, no filtering): precision %.1f%%  recall %.1f%%\n"
    (Cet_eval.Metrics.precision m1) (Cet_eval.Metrics.recall m1);
  Printf.printf "  -> %d end-branches harvested, %d of them catch blocks\n"
    r1.FS.endbr_total (List.length lps);
  Printf.printf "config 2 (E' u C, FILTERENDBR):  precision %.1f%%  recall %.1f%%\n"
    (Cet_eval.Metrics.precision m2) (Cet_eval.Metrics.recall m2);
  Printf.printf "  -> filtered %d landing pads via .gcc_except_table LSDAs\n"
    r2.FS.filtered_landing_pads;
  print_newline ();
  print_endline
    "This is the Table II story: SPEC C++ binaries lose ~20-30 points of";
  print_endline
    "precision without FILTERENDBR because every catch clause starts with";
  print_endline "an end-branch (paper SSIII-B, Fig. 2b)."
