(* Coreutils scenario: generate a slice of the Coreutils-like suite under
   several compiler configurations and compare all four identification
   tools, the way Table III does.

     dune exec examples/coreutils_scenario.exe *)

module O = Cet_compiler.Options
module Metrics = Cet_eval.Metrics

let tools =
  [
    ("FunSeeker", fun r -> (Core.Funseeker.analyze r).Core.Funseeker.functions);
    ("IDA-like", Cet_baselines.Ida_like.analyze);
    ("Ghidra-like", Cet_baselines.Ghidra_like.analyze);
    ("FETCH-like", Cet_baselines.Fetch.analyze ~passes:3);
  ]

let () =
  let profile = Cet_corpus.Profile.scaled 0.05 Cet_corpus.Profile.coreutils in
  let configs =
    [
      O.default;
      { O.default with opt = O.O0; pie = false };
      { O.default with compiler = O.Clang; arch = Cet_x86.Arch.X86 };
    ]
  in
  Printf.printf "coreutils-like suite: %d programs x %d configurations\n\n"
    profile.Cet_corpus.Profile.programs (List.length configs);
  let totals = Hashtbl.create 4 in
  Cet_corpus.Dataset.iter ~profiles:[ profile ] ~configs ~seed:42 ~scale:1.0 (fun bin ->
      let reader = Cet_elf.Reader.read bin.Cet_corpus.Dataset.stripped in
      let truth = List.map snd bin.truth in
      List.iter
        (fun (name, run) ->
          let m = Metrics.compare_sets ~truth ~found:(run reader) in
          let cur =
            Option.value ~default:Metrics.empty (Hashtbl.find_opt totals name)
          in
          Hashtbl.replace totals name (Metrics.add cur m))
        tools);
  Printf.printf "%-12s %10s %10s %8s %8s %8s\n" "tool" "precision" "recall" "tp" "fp" "fn";
  List.iter
    (fun (name, _) ->
      let m = Hashtbl.find totals name in
      Printf.printf "%-12s %9.3f%% %9.3f%% %8d %8d %8d\n" name (Metrics.precision m)
        (Metrics.recall m) m.Metrics.tp m.Metrics.fp m.Metrics.fn)
    tools;
  print_newline ();
  print_endline
    "FunSeeker keeps both precision and recall high; the IDA model misses";
  print_endline
    "indirect-only targets, and FETCH/Ghidra suffer where Clang-x86 C code";
  print_endline "carries no frame-description entries (see Table III)."
