examples/coreutils_scenario.mli:
