examples/quickstart.mli:
