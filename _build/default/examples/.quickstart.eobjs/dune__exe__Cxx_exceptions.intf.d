examples/cxx_exceptions.mli:
