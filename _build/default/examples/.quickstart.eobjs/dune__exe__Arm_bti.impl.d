examples/arm_bti.ml: Cet_arm64 Cet_compiler Cet_corpus Cet_elf Cet_eval List Printf
