examples/coreutils_scenario.ml: Cet_baselines Cet_compiler Cet_corpus Cet_elf Cet_eval Cet_x86 Core Hashtbl List Option Printf
