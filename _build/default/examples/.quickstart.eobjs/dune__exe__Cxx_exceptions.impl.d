examples/cxx_exceptions.ml: Array Cet_compiler Cet_disasm Cet_elf Cet_eval Cet_x86 Core List Printf
