examples/arm_bti.mli:
