examples/stripped_analysis.mli:
