examples/cfg_recovery.mli:
