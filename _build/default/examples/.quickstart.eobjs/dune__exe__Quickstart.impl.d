examples/quickstart.ml: Cet_compiler Cet_elf Cet_eval Core List Printf String
