examples/cfg_recovery.ml: Cet_cfg Cet_compiler Cet_corpus Cet_elf Filename List Printf String
