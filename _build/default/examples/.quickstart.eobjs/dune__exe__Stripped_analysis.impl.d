examples/stripped_analysis.ml: Cet_compiler Cet_corpus Cet_elf Cet_eval Core List Printf String
