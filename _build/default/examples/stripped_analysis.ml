(* Stripped-binary analysis: ground truth from the unstripped twin, the
   tail-call ablation, and what survives stripping.

     dune exec examples/stripped_analysis.exe *)

module O = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module FS = Core.Funseeker
module GT = Cet_eval.Ground_truth

let () =
  (* A binutils-like program with tail calls and GCC hot/cold splitting. *)
  let profile =
    {
      Cet_corpus.Profile.binutils with
      Cet_corpus.Profile.programs = 1;
      funcs_lo = 120;
      funcs_hi = 140;
    }
  in
  let ir = Cet_corpus.Generator.program ~seed:1234 ~profile ~index:0 in
  let opts = { O.default with opt = O.O2 } in
  let res = Cet_compiler.Link.link opts ir in
  let unstripped = Cet_elf.Writer.write res.image in
  let stripped = Cet_elf.Writer.write ~strip:true res.image in
  Printf.printf "binary: %d bytes unstripped, %d stripped\n" (String.length unstripped)
    (String.length stripped);

  (* Ground truth comes from the unstripped twin's symbols, with the
     paper's corrections (.cold/.part excluded). *)
  let ur = Cet_elf.Reader.read unstripped in
  let sr = Cet_elf.Reader.read stripped in
  let all_func_syms =
    List.filter (fun (s : Cet_elf.Symbol.t) -> s.kind = Cet_elf.Symbol.Func)
      (Cet_elf.Reader.symbols ur)
  in
  let fragments =
    List.filter (fun (s : Cet_elf.Symbol.t) -> GT.is_fragment_name s.name) all_func_syms
  in
  Printf.printf "symbols: %d STT_FUNC, of which %d are .cold/.part fragments (excluded)\n"
    (List.length all_func_syms) (List.length fragments);
  let truth = GT.addresses (GT.from_symbols ur) in
  Printf.printf "ground truth: %d function entries\n\n" (List.length truth);
  Printf.printf "stripped binary still carries: .text=%b .eh_frame=%b .gcc_except_table=%b symtab=%b\n\n"
    (Cet_elf.Reader.find_section sr ".text" <> None)
    (Cet_elf.Reader.find_section sr ".eh_frame" <> None)
    (Cet_elf.Reader.find_section sr ".gcc_except_table" <> None)
    (Cet_elf.Reader.symbols sr <> []);

  (* The tail-call ablation on the stripped binary. *)
  Printf.printf "%-34s %10s %10s %6s %6s\n" "configuration" "precision" "recall" "fp" "fn";
  List.iter
    (fun (name, config) ->
      let r = FS.analyze ~config sr in
      let m = Cet_eval.Metrics.compare_sets ~truth ~found:r.FS.functions in
      Printf.printf "%-34s %9.3f%% %9.3f%% %6d %6d\n" name (Cet_eval.Metrics.precision m)
        (Cet_eval.Metrics.recall m) m.Cet_eval.Metrics.fp m.Cet_eval.Metrics.fn)
    [
      ("(1) E u C", FS.config1);
      ("(2) E' u C", FS.config2);
      ("(3) E' u C u J (all jumps)", FS.config3);
      ("(4) E' u C u J' (SELECTTAILCALL)", FS.config4);
    ];
  print_newline ();
  (* Show what the remaining false negatives are. *)
  let r4 = FS.analyze ~config:FS.config4 sr in
  let _, fns = Cet_eval.Metrics.false_entries ~truth ~found:r4.FS.functions in
  let name_of a =
    match List.find_opt (fun (_, v) -> v = a) res.Cet_compiler.Link.truth with
    | Some (n, _) -> n
    | None -> "?"
  in
  let described =
    List.map
      (fun a ->
        let n = name_of a in
        let f = List.find_opt (fun (f : Ir.func) -> f.name = n) ir.Ir.funcs in
        let why =
          match f with
          | Some f when f.dead -> "dead code"
          | Some _ -> "single-reference tail-call target"
          | None -> "?"
        in
        Printf.sprintf "  0x%x %s (%s)" a n why)
      fns
  in
  Printf.printf "remaining false negatives (%d):\n%s\n" (List.length fns)
    (String.concat "\n" described);
  print_endline
    "\nAs in SSV-C: the residual misses are dead functions and tail targets";
  print_endline "referenced by a single function (condition 2 of SELECTTAILCALL)."
