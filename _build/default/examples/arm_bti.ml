(* ARM BTI extension (paper §VI): the same corpus programs compiled for
   AArch64 with -mbranch-protection=bti, identified by the ported seeker.

     dune exec examples/arm_bti.exe *)

module AC = Cet_arm64.A64_compile
module Seeker = Cet_arm64.Bti_seeker
module Metrics = Cet_eval.Metrics

let () =
  let profile =
    { Cet_corpus.Profile.spec with Cet_corpus.Profile.programs = 4; lang_cpp_fraction = 0.5 }
  in
  Printf.printf "%-10s %6s %7s %7s %10s %10s\n" "program" "funcs" "bti-c" "bti-j"
    "precision" "recall";
  let total = ref Metrics.empty in
  for index = 0 to 3 do
    let ir = Cet_corpus.Generator.program ~seed:2022 ~profile ~index in
    let res = AC.compile AC.default_opts ir in
    let reader = Cet_elf.Reader.read (Cet_elf.Writer.write ~strip:true res.image) in
    let truth = List.sort_uniq compare (List.map snd res.AC.truth) in
    let r = Seeker.analyze reader in
    let m = Metrics.compare_sets ~truth ~found:r.Seeker.functions in
    total := Metrics.add !total m;
    Printf.printf "%-10s %6d %7d %7d %9.3f%% %9.3f%%\n" ir.Cet_compiler.Ir.prog_name
      (List.length truth) r.Seeker.bti_c_total r.Seeker.bti_j_total
      (Metrics.precision m) (Metrics.recall m)
  done;
  Printf.printf "%-10s %23s %9.3f%% %9.3f%%\n" "total" "" (Metrics.precision !total)
    (Metrics.recall !total);
  print_newline ();
  print_endline "AArch64 splits the marker by edge kind: function entries get bti c,";
  print_endline "jump-table cases and exception landing pads get bti j. The hardware";
  print_endline "therefore performs FILTERENDBR's job: harvesting bti c alone yields";
  print_endline "no catch-block false positives, confirming the paper's conjecture";
  print_endline "that FunSeeker ports naturally to BTI-enabled ARM binaries."
