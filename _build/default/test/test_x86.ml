(* Tests for cet_x86: registers, encoder golden bytes, decoder, the
   encode→decode roundtrip property, and the assembler. *)

module Arch = Cet_x86.Arch
module Reg = Cet_x86.Register
module Insn = Cet_x86.Insn
module Enc = Cet_x86.Encoder
module Dec = Cet_x86.Decoder
module Asm = Cet_x86.Asm

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t
let hex s = Cet_util.Hexdump.bytes_inline s
let check_bytes name expected insn arch = check Alcotest.string name expected (hex (Enc.encode arch insn))

(* ------------------------------------------------------------------ *)
(* Registers                                                          *)
(* ------------------------------------------------------------------ *)

let test_register_roundtrip () =
  Array.iter
    (fun r -> check Alcotest.bool "of_index . index" true (Reg.of_index (Reg.index r) = r))
    Reg.all

let test_register_names () =
  check Alcotest.string "rax" "rax" (Reg.name64 Reg.RAX);
  check Alcotest.string "eax" "eax" (Reg.name32 Reg.RAX);
  check Alcotest.string "r11d" "r11d" (Reg.name32 Reg.R11);
  check Alcotest.bool "rex" true (Reg.needs_rex Reg.R8);
  check Alcotest.bool "no rex" false (Reg.needs_rex Reg.RDI)

(* ------------------------------------------------------------------ *)
(* Encoder golden bytes (checked against GNU as output)               *)
(* ------------------------------------------------------------------ *)

let test_encode_endbr () =
  check_bytes "endbr64" "f3 0f 1e fa" Insn.Endbr Arch.X64;
  check_bytes "endbr32" "f3 0f 1e fb" Insn.Endbr Arch.X86

let test_encode_branches () =
  check_bytes "call rel32" "e8 10 00 00 00" (Insn.Call_rel 0x10) Arch.X64;
  check_bytes "jmp rel32" "e9 fc ff ff ff" (Insn.Jmp_rel (-4)) Arch.X64;
  check_bytes "jmp rel8" "eb 05" (Insn.Jmp_rel8 5) Arch.X64;
  check_bytes "je rel32" "0f 84 00 01 00 00" (Insn.Jcc_rel (Insn.E, 0x100)) Arch.X64;
  check_bytes "jne rel8" "75 f0" (Insn.Jcc_rel8 (Insn.NE, -16)) Arch.X86

let test_encode_ret_stack () =
  check_bytes "ret" "c3" Insn.Ret Arch.X64;
  check_bytes "ret imm16" "c2 08 00" (Insn.Ret_imm 8) Arch.X86;
  check_bytes "push rbp" "55" (Insn.Push Reg.RBP) Arch.X64;
  check_bytes "push r12" "41 54" (Insn.Push Reg.R12) Arch.X64;
  check_bytes "pop rbx" "5b" (Insn.Pop Reg.RBX) Arch.X64;
  check_bytes "leave" "c9" Insn.Leave Arch.X86;
  check_bytes "push imm8" "6a 2a" (Insn.Push_imm 42) Arch.X86;
  check_bytes "push imm32" "68 00 10 00 00" (Insn.Push_imm 0x1000) Arch.X86

let test_encode_mov_alu () =
  check_bytes "mov rbp,rsp" "48 89 e5" (Insn.Mov_rr (Reg.RBP, Reg.RSP)) Arch.X64;
  check_bytes "mov ebp,esp" "89 e5" (Insn.Mov_rr (Reg.RBP, Reg.RSP)) Arch.X86;
  check_bytes "mov eax,imm" "b8 39 05 00 00" (Insn.Mov_ri (Reg.RAX, 1337)) Arch.X64;
  check_bytes "sub rsp,imm8" "48 83 ec 20" (Insn.Sub_ri (Reg.RSP, 0x20)) Arch.X64;
  check_bytes "sub esp,imm8" "83 ec 20" (Insn.Sub_ri (Reg.RSP, 0x20)) Arch.X86;
  check_bytes "add rsp,imm32" "48 81 c4 00 02 00 00" (Insn.Add_ri (Reg.RSP, 0x200)) Arch.X64;
  check_bytes "xor edx,edx" "31 d2" (Insn.Xor_rr (Reg.RDX, Reg.RDX)) Arch.X86;
  check_bytes "test rax,rax" "48 85 c0" (Insn.Test_rr (Reg.RAX, Reg.RAX)) Arch.X64

let test_encode_mem_forms () =
  (* mov rax, [rsp+8]: rsp base forces a SIB byte *)
  check_bytes "mov rax,[rsp+8]" "48 8b 44 24 08"
    (Insn.Mov_rm (Reg.RAX, Insn.mem_base Reg.RSP 8)) Arch.X64;
  (* rbp base with zero displacement still needs mod=01 *)
  check_bytes "mov rax,[rbp]" "48 8b 45 00"
    (Insn.Mov_rm (Reg.RAX, Insn.mem_base Reg.RBP 0)) Arch.X64;
  check_bytes "lea rdi,[rip+0x100]" "48 8d 3d 00 01 00 00"
    (Insn.Lea (Reg.RDI, Insn.mem_abs 0x100)) Arch.X64;
  check_bytes "mov eax,[table+eax*4]" "8b 04 85 00 00 40 00"
    (Insn.Mov_rm
       (Reg.RAX, { Insn.base = None; index = Some (Reg.RAX, 4); disp = 0x400000 }))
    Arch.X86

let test_encode_indirect () =
  check_bytes "call rax" "ff d0" (Insn.Call_reg Reg.RAX) Arch.X64;
  check_bytes "jmp rax" "ff e0" (Insn.Jmp_reg { reg = Reg.RAX; notrack = false }) Arch.X64;
  check_bytes "notrack jmp rax" "3e ff e0"
    (Insn.Jmp_reg { reg = Reg.RAX; notrack = true }) Arch.X64;
  check_bytes "notrack jmp [tbl+eax*4]" "3e ff 24 85 00 40 80 00"
    (Insn.Jmp_mem
       { mem = { base = None; index = Some (Reg.RAX, 4); disp = 0x804000 }; notrack = true })
    Arch.X86

let test_encode_wave2 () =
  check_bytes "and ecx, 15" "83 e1 0f" (Insn.And_ri (Reg.RCX, 15)) Arch.X86;
  check_bytes "or rax, rdx" "48 09 d0" (Insn.Or_rr (Reg.RAX, Reg.RDX)) Arch.X64;
  check_bytes "inc eax (x86)" "40" (Insn.Inc Reg.RAX) Arch.X86;
  check_bytes "inc rax (x64)" "48 ff c0" (Insn.Inc Reg.RAX) Arch.X64;
  check_bytes "dec ecx (x86)" "49" (Insn.Dec Reg.RCX) Arch.X86;
  check_bytes "neg rax" "48 f7 d8" (Insn.Neg Reg.RAX) Arch.X64;
  check_bytes "not edx" "f7 d2" (Insn.Not Reg.RDX) Arch.X86;
  check_bytes "shl rax, 4" "48 c1 e0 04" (Insn.Shl_ri (Reg.RAX, 4)) Arch.X64;
  check_bytes "sar edx, 2" "c1 fa 02" (Insn.Sar_ri (Reg.RDX, 2)) Arch.X86;
  check_bytes "imul rax, rcx" "48 0f af c1" (Insn.Imul_rr (Reg.RAX, Reg.RCX)) Arch.X64;
  check_bytes "movzx eax, cl" "0f b6 c1" (Insn.Movzx_b (Reg.RAX, Reg.RCX)) Arch.X86;
  check_bytes "sete al" "0f 94 c0" (Insn.Setcc (Insn.E, Reg.RAX)) Arch.X86;
  check_bytes "cmove rax, rcx" "48 0f 44 c1" (Insn.Cmov (Insn.E, Reg.RAX, Reg.RCX)) Arch.X64;
  check_bytes "cdq" "99" Insn.Cdq Arch.X86

let test_encode_nops () =
  check_bytes "nop" "90" Insn.Nop Arch.X64;
  check_bytes "nopl 3" "0f 1f 00" (Insn.Nopl 3) Arch.X64;
  check_bytes "nopw 9" "66 0f 1f 84 00 00 00 00 00" (Insn.Nopl 9) Arch.X64;
  check_bytes "int3" "cc" Insn.Int3 Arch.X86;
  check_bytes "hlt" "f4" Insn.Hlt Arch.X64;
  check_bytes "ud2" "0f 0b" Insn.Ud2 Arch.X86

let test_encode_rejects () =
  Alcotest.check_raises "r8 in x86"
    (Invalid_argument "Encoder: extended register in 32-bit mode") (fun () ->
      ignore (Enc.encode Arch.X86 (Insn.Push Reg.R8)));
  Alcotest.check_raises "rel8 overflow" (Invalid_argument "Encoder: jmp rel8 out of range")
    (fun () -> ignore (Enc.encode Arch.X64 (Insn.Jmp_rel8 1000)));
  Alcotest.check_raises "bad nop" (Invalid_argument "Encoder: Nopl length must be 2-9")
    (fun () -> ignore (Enc.encode Arch.X64 (Insn.Nopl 17)))

(* ------------------------------------------------------------------ *)
(* Decoder                                                            *)
(* ------------------------------------------------------------------ *)

let decode_one arch bytes =
  match Dec.decode arch bytes ~base:0x1000 ~off:0 with
  | Ok i -> i
  | Error m -> Alcotest.failf "decode error: %s" m

let test_decode_endbr () =
  let i = decode_one Arch.X64 "\xf3\x0f\x1e\xfa" in
  check Alcotest.bool "endbr64" true (i.kind = Dec.Endbr64);
  check Alcotest.int "len" 4 i.len;
  let i = decode_one Arch.X86 "\xf3\x0f\x1e\xfb" in
  check Alcotest.bool "endbr32" true (i.kind = Dec.Endbr32)

let test_decode_call_target () =
  (* call +0x10 at 0x1000: target = 0x1000 + 5 + 0x10 *)
  let i = decode_one Arch.X64 "\xe8\x10\x00\x00\x00" in
  check Alcotest.bool "call target" true (i.kind = Dec.Call_direct 0x1015)

let test_decode_jmp_backwards () =
  let i = decode_one Arch.X64 "\xe9\xfb\xff\xff\xff" in
  check Alcotest.bool "jmp target" true (i.kind = Dec.Jmp_direct 0x1000)

let test_decode_jcc8 () =
  let i = decode_one Arch.X86 "\x75\x10" in
  check Alcotest.bool "jne rel8" true (i.kind = Dec.Jcc_direct 0x1012)

let test_decode_notrack () =
  let i = decode_one Arch.X64 "\x3e\xff\xe0" in
  (match i.kind with
  | Dec.Jmp_indirect { notrack = true; _ } -> ()
  | k -> Alcotest.failf "expected notrack jmp, got %s" (Dec.kind_to_string k));
  let i = decode_one Arch.X64 "\xff\xe0" in
  match i.kind with
  | Dec.Jmp_indirect { notrack = false; _ } -> ()
  | k -> Alcotest.failf "expected jmp, got %s" (Dec.kind_to_string k)

let test_decode_plt_slot () =
  (* jmp [rip+0x2000] at 0x1000, len 6: slot = 0x1006 + 0x2000 *)
  let i = decode_one Arch.X64 "\xff\x25\x00\x20\x00\x00" in
  (match i.kind with
  | Dec.Jmp_indirect { goto = Some s; _ } -> check Alcotest.int "x64 slot" 0x3006 s
  | k -> Alcotest.failf "expected slot, got %s" (Dec.kind_to_string k));
  (* x86: absolute *)
  let i = decode_one Arch.X86 "\xff\x25\x00\x20\x00\x00" in
  match i.kind with
  | Dec.Jmp_indirect { goto = Some s; _ } -> check Alcotest.int "x86 slot" 0x2000 s
  | k -> Alcotest.failf "expected slot, got %s" (Dec.kind_to_string k)

let test_decode_lea_addr_ref () =
  (* lea rdi, [rip+0x100] at 0x1000, len 7 -> 0x1107 *)
  let i = decode_one Arch.X64 "\x48\x8d\x3d\x00\x01\x00\x00" in
  check Alcotest.bool "lea addr ref" true (i.kind = Dec.Addr_ref 0x1107);
  (* x86: mov eax, imm32 *)
  let i = decode_one Arch.X86 "\xb8\x00\x90\x04\x08" in
  check Alcotest.bool "mov addr ref" true (i.kind = Dec.Addr_ref 0x8049000);
  (* x86: push imm32 *)
  let i = decode_one Arch.X86 "\x68\x34\x12\x00\x00" in
  check Alcotest.bool "push addr ref" true (i.kind = Dec.Addr_ref 0x1234)

let test_decode_ret_halt () =
  check Alcotest.bool "ret" true ((decode_one Arch.X64 "\xc3").kind = Dec.Ret);
  check Alcotest.bool "ret imm" true ((decode_one Arch.X86 "\xc2\x08\x00").kind = Dec.Ret);
  check Alcotest.bool "hlt" true ((decode_one Arch.X64 "\xf4").kind = Dec.Halt)

let test_decode_errors () =
  (match Dec.decode Arch.X64 "\x0f\xff" ~base:0 ~off:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for bad two-byte opcode");
  (match Dec.decode Arch.X64 "\x60" ~base:0 ~off:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pusha invalid in 64-bit");
  (match Dec.decode Arch.X86 "\x60" ~base:0 ~off:0 with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "pusha valid in 32-bit: %s" m);
  (match Dec.decode Arch.X64 "\xe8\x00" ~base:0 ~off:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated call must fail");
  match Dec.decode Arch.X64 "" ~base:0 ~off:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input must fail"

let test_decode_x86_legacy_ops () =
  (* inc eax (0x40) is a legacy opcode on x86 but a REX prefix on x86-64. *)
  let i = decode_one Arch.X86 "\x40" in
  check Alcotest.int "inc len" 1 i.len;
  (* REX.W + mov *)
  let i = decode_one Arch.X64 "\x48\x89\xe5" in
  check Alcotest.int "rex mov len" 3 i.len

(* ------------------------------------------------------------------ *)
(* Roundtrip property                                                 *)
(* ------------------------------------------------------------------ *)

let gen_reg ~arch =
  let open QCheck.Gen in
  let bound = match arch with Arch.X86 -> 8 | Arch.X64 -> 16 in
  map (fun i -> Reg.of_index i) (int_bound (bound - 1))

let gen_mem ~arch =
  let open QCheck.Gen in
  let base_reg = map Option.some (gen_reg ~arch) in
  let disp = int_range (-1024) 1024 in
  let index =
    oneof
      [
        return None;
        map2
          (fun r s -> Some (r, s))
          (map
             (fun i ->
               (* rsp cannot index *)
               let r = Reg.of_index i in
               if r = Reg.RSP then Reg.RAX else r)
             (int_bound (match arch with Arch.X86 -> 7 | Arch.X64 -> 15)))
          (oneofl [ 1; 2; 4; 8 ]);
      ]
  in
  oneof
    [
      map (fun d -> Insn.mem_abs d) disp;
      map2 (fun b d -> { Insn.base = b; index = None; disp = d }) base_reg disp;
      map3 (fun b i d -> { Insn.base = b; index = i; disp = d }) base_reg index disp;
    ]

let gen_insn ~arch =
  let open QCheck.Gen in
  let reg = gen_reg ~arch and mem = gen_mem ~arch in
  let imm = int_range (-100000) 100000 in
  let imm8 = int_range (-128) 127 in
  let cond = oneofl [ Insn.E; Insn.NE; Insn.L; Insn.G; Insn.A; Insn.B; Insn.S ] in
  oneof
    [
      return Insn.Endbr;
      map (fun d -> Insn.Call_rel d) imm;
      map (fun d -> Insn.Jmp_rel d) imm;
      map (fun d -> Insn.Jmp_rel8 d) imm8;
      map2 (fun c d -> Insn.Jcc_rel (c, d)) cond imm;
      map2 (fun c d -> Insn.Jcc_rel8 (c, d)) cond imm8;
      map (fun r -> Insn.Call_reg r) reg;
      map (fun m -> Insn.Call_mem m) mem;
      map2 (fun r n -> Insn.Jmp_reg { reg = r; notrack = n }) reg bool;
      map2 (fun m n -> Insn.Jmp_mem { mem = m; notrack = n }) mem bool;
      return Insn.Ret;
      map (fun n -> Insn.Ret_imm (abs n land 0xffff)) imm;
      map (fun r -> Insn.Push r) reg;
      map (fun r -> Insn.Pop r) reg;
      map (fun i -> Insn.Push_imm i) imm;
      map2 (fun a b -> Insn.Mov_rr (a, b)) reg reg;
      map2 (fun r i -> Insn.Mov_ri (r, abs i)) reg imm;
      map2 (fun r m -> Insn.Mov_rm (r, m)) reg mem;
      map2 (fun m r -> Insn.Mov_mr (m, r)) mem reg;
      map2 (fun m i -> Insn.Mov_mi (m, i)) mem imm;
      map2 (fun r m -> Insn.Lea (r, m)) reg mem;
      map2 (fun r i -> Insn.Add_ri (r, i)) reg imm;
      map2 (fun r i -> Insn.Sub_ri (r, i)) reg imm;
      map2 (fun a b -> Insn.Add_rr (a, b)) reg reg;
      map2 (fun a b -> Insn.Sub_rr (a, b)) reg reg;
      map2 (fun r i -> Insn.Cmp_ri (r, i)) reg imm;
      map2 (fun a b -> Insn.Cmp_rr (a, b)) reg reg;
      map2 (fun a b -> Insn.Test_rr (a, b)) reg reg;
      map2 (fun a b -> Insn.Xor_rr (a, b)) reg reg;
      map2 (fun r i -> Insn.And_ri (r, i)) reg imm;
      map2 (fun a b -> Insn.And_rr (a, b)) reg reg;
      map2 (fun r i -> Insn.Or_ri (r, i)) reg imm;
      map2 (fun a b -> Insn.Or_rr (a, b)) reg reg;
      map (fun r -> Insn.Inc r) reg;
      map (fun r -> Insn.Dec r) reg;
      map (fun r -> Insn.Neg r) reg;
      map (fun r -> Insn.Not r) reg;
      map2 (fun r n -> Insn.Shl_ri (r, 1 + (abs n mod 31))) reg imm;
      map2 (fun r n -> Insn.Shr_ri (r, 1 + (abs n mod 31))) reg imm;
      map2 (fun r n -> Insn.Sar_ri (r, 1 + (abs n mod 31))) reg imm;
      map2 (fun a b -> Insn.Imul_rr (a, b)) reg reg;
      map2 (fun a b -> Insn.Movzx_b (a, b)) reg reg;
      map2 (fun a b -> Insn.Movsx_b (a, b)) reg reg;
      map2 (fun c r -> Insn.Setcc (c, r)) cond reg;
      map3 (fun c a b -> Insn.Cmov (c, a, b)) cond reg reg;
      return Insn.Cdq;
      return Insn.Leave;
      return Insn.Nop;
      map (fun n -> Insn.Nopl (2 + (abs n mod 8))) imm;
      return Insn.Int3;
      return Insn.Hlt;
      return Insn.Ud2;
    ]

let expected_kind arch insn : Dec.kind option =
  (* The kind the decoder must report for an instruction encoded at
     [base=0x4000]; None = any non-branch classification acceptable. *)
  let base = 0x4000 in
  let len = Enc.length arch insn in
  match insn with
  | Insn.Endbr -> Some (match arch with Arch.X64 -> Dec.Endbr64 | Arch.X86 -> Dec.Endbr32)
  | Insn.Call_rel d -> Some (Dec.Call_direct (base + len + d))
  | Insn.Jmp_rel d | Insn.Jmp_rel8 d -> Some (Dec.Jmp_direct (base + len + d))
  | Insn.Jcc_rel (_, d) | Insn.Jcc_rel8 (_, d) -> Some (Dec.Jcc_direct (base + len + d))
  | Insn.Ret | Insn.Ret_imm _ -> Some Dec.Ret
  | Insn.Hlt -> Some Dec.Halt
  | _ -> None

let roundtrip_prop arch insn =
  let bytes = Enc.encode arch insn in
  match Dec.decode arch bytes ~base:0x4000 ~off:0 with
  | Error m ->
    QCheck.Test.fail_reportf "decode failed on %s: %s" (Cet_util.Hexdump.bytes_inline bytes) m
  | Ok i ->
    if i.len <> String.length bytes then
      QCheck.Test.fail_reportf "length mismatch on %s: %d vs %d"
        (Cet_util.Hexdump.bytes_inline bytes) i.len (String.length bytes)
    else (
      match expected_kind arch insn with
      | Some k when k <> i.kind ->
        QCheck.Test.fail_reportf "kind mismatch on %s: got %s"
          (Cet_util.Hexdump.bytes_inline bytes) (Dec.kind_to_string i.kind)
      | _ -> true)

let qcheck_roundtrip_x64 =
  QCheck.Test.make ~name:"encode/decode roundtrip (x86-64)" ~count:2000
    (QCheck.make (gen_insn ~arch:Arch.X64))
    (roundtrip_prop Arch.X64)

let qcheck_roundtrip_x86 =
  QCheck.Test.make ~name:"encode/decode roundtrip (x86)" ~count:2000
    (QCheck.make (gen_insn ~arch:Arch.X86))
    (roundtrip_prop Arch.X86)

let exact_roundtrip_prop arch insn =
  let bytes = Enc.encode arch insn in
  match Cet_x86.Exact.decode arch bytes ~off:0 with
  | None ->
    QCheck.Test.fail_reportf "exact decode fell out of subset on %s"
      (Cet_util.Hexdump.bytes_inline bytes)
  | Some (decoded, len) ->
    if len <> String.length bytes then
      QCheck.Test.fail_reportf "exact length mismatch on %s"
        (Cet_util.Hexdump.bytes_inline bytes)
    else if decoded <> insn then
      QCheck.Test.fail_reportf "exact AST mismatch on %s: %s vs %s"
        (Cet_util.Hexdump.bytes_inline bytes)
        (Format.asprintf "%a" (Insn.pp ~arch) decoded)
        (Format.asprintf "%a" (Insn.pp ~arch) insn)
    else true

let qcheck_exact_x64 =
  QCheck.Test.make ~name:"exact decode inverts encode (x86-64)" ~count:2000
    (QCheck.make (gen_insn ~arch:Arch.X64))
    (exact_roundtrip_prop Arch.X64)

let qcheck_exact_x86 =
  QCheck.Test.make ~name:"exact decode inverts encode (x86)" ~count:2000
    (QCheck.make (gen_insn ~arch:Arch.X86))
    (exact_roundtrip_prop Arch.X86)

let test_exact_disassemble_text () =
  let blob =
    String.concat ""
      [
        Enc.encode Arch.X64 Insn.Endbr;
        Enc.encode Arch.X64 (Insn.Push Reg.RBP);
        Enc.encode Arch.X64 (Insn.Mov_rr (Reg.RBP, Reg.RSP));
        Enc.encode Arch.X64 (Insn.Call_rel 0x10);
        Enc.encode Arch.X64 Insn.Ret;
      ]
  in
  let listing = Cet_x86.Exact.disassemble_all Arch.X64 blob ~base:0x1000 in
  check Alcotest.int "count" 5 (List.length listing);
  check Alcotest.string "endbr" "endbr64" (List.assoc 0x1000 listing);
  check Alcotest.string "push" "push rbp" (List.assoc 0x1004 listing);
  check Alcotest.string "mov" "mov rbp, rsp" (List.assoc 0x1005 listing);
  check Alcotest.string "ret" "ret" (List.assoc 0x100d listing)

let test_exact_fallback () =
  (* cpuid (0F A2) is outside the exact subset but inside the coarse
     decoder: the listing falls back rather than failing. *)
  match Cet_x86.Exact.disassemble Arch.X64 "\x0f\xa2" ~base:0 ~off:0 with
  | Ok (text, 2) -> check Alcotest.string "fallback" "other" text
  | Ok (_, n) -> Alcotest.failf "bad length %d" n
  | Error e -> Alcotest.failf "unexpected error %s" e

let test_exact_full_coverage_of_compiled_binary () =
  (* The exact decoder must reconstruct EVERY instruction of a compiled
     binary — compilers emit nothing outside the modelled subset. *)
  let profile =
    { Cet_corpus.Profile.coreutils with Cet_corpus.Profile.programs = 1; funcs_lo = 40; funcs_hi = 60 }
  in
  let ir = Cet_corpus.Generator.program ~seed:13 ~profile ~index:0 in
  List.iter
    (fun (opts : Cet_compiler.Options.t) ->
      let res = Cet_compiler.Link.link opts ir in
      let reader = Cet_elf.Reader.read (Cet_elf.Writer.write ~strip:true res.image) in
      let text = Option.get (Cet_elf.Reader.find_section reader ".text") in
      let arch = Cet_elf.Reader.arch reader in
      let off = ref 0 in
      while !off < String.length text.data do
        match Cet_x86.Exact.decode arch text.data ~off:!off with
        | Some (_, len) -> off := !off + len
        | None ->
          Alcotest.failf "%s: exact decode failed at +0x%x"
            (Cet_compiler.Options.to_string opts) !off
      done)
    [
      Cet_compiler.Options.default;
      { Cet_compiler.Options.default with
        arch = Arch.X86; pie = false; opt = Cet_compiler.Options.O0 };
      { Cet_compiler.Options.default with
        compiler = Cet_compiler.Options.Clang; arch = Arch.X86;
        opt = Cet_compiler.Options.Os };
    ]

let qcheck_stream_roundtrip =
  (* A whole stream of instructions decodes back with the same boundaries. *)
  QCheck.Test.make ~name:"instruction stream boundaries" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) (gen_insn ~arch:Arch.X64)))
    (fun insns ->
      let encoded = List.map (Enc.encode Arch.X64) insns in
      let blob = String.concat "" encoded in
      let rec walk off = function
        | [] -> off = String.length blob
        | e :: rest -> (
          match Dec.decode Arch.X64 blob ~base:0 ~off with
          | Error _ -> false
          | Ok i -> i.len = String.length e && walk (off + i.len) rest)
      in
      walk 0 encoded)

(* ------------------------------------------------------------------ *)
(* Assembler                                                          *)
(* ------------------------------------------------------------------ *)

let no_extern l = invalid_arg ("unexpected extern " ^ l)

let test_asm_forward_backward () =
  let items =
    [
      Asm.Label "a";
      Asm.Ins Insn.Nop;
      Asm.Jmp_lbl "b";
      Asm.Label "b";
      Asm.Jmp_lbl "a";
    ]
  in
  let bytes = Asm.assemble ~arch:Arch.X64 ~base:0x1000 ~resolve:no_extern items in
  (* nop(1) + jmp(5) + jmp(5) *)
  check Alcotest.int "size" 11 (String.length bytes);
  (* forward jmp to b: rel = 0 *)
  check Alcotest.string "forward" "e9 00 00 00 00" (hex (String.sub bytes 1 5));
  (* backward jmp to a: target 0x1000, insn at 0x1006 len 5 -> rel = -11 *)
  check Alcotest.string "backward" "e9 f5 ff ff ff" (hex (String.sub bytes 6 5))

let test_asm_measure_matches () =
  let items =
    [
      Asm.Align { boundary = 16; fill = Asm.Fill_nop };
      Asm.Label "f";
      Asm.Ins Insn.Endbr;
      Asm.Call_lbl "g";
      Asm.Align { boundary = 16; fill = Asm.Fill_int3 };
      Asm.Label "g";
      Asm.Ins Insn.Ret;
      Asm.Label "end";
    ]
  in
  let size, labels = Asm.measure ~arch:Arch.X64 ~base:0x2000 items in
  let bytes = Asm.assemble ~arch:Arch.X64 ~base:0x2000 ~resolve:no_extern items in
  check Alcotest.int "measured size" (String.length bytes) size;
  check Alcotest.int "g aligned" 0 (List.assoc "g" labels mod 16);
  check Alcotest.int "end" (0x2000 + size) (List.assoc "end" labels)

let test_asm_extern_resolution () =
  let items = [ Asm.Label "f"; Asm.Call_lbl "printf@plt" ] in
  let bytes =
    Asm.assemble ~arch:Arch.X64 ~base:0x1000
      ~resolve:(fun l ->
        check Alcotest.string "extern name" "printf@plt" l;
        0x500)
      items
  in
  (* call at 0x1000, len 5, target 0x500 -> rel = 0x500 - 0x1005 *)
  check Alcotest.string "extern call" "e8 fb f4 ff ff" (hex bytes)

let test_asm_lea_lbl_by_arch () =
  let items = [ Asm.Label "f"; Asm.Lea_lbl (Reg.RDI, "g") ] in
  let x64 = Asm.assemble ~arch:Arch.X64 ~base:0x1000 ~resolve:(fun _ -> 0x3000) items in
  (* lea rdi,[rip+d], len 7: d = 0x3000 - 0x1007 = 0x1ff9 *)
  check Alcotest.string "x64 lea" "48 8d 3d f9 1f 00 00" (hex x64);
  let x86 = Asm.assemble ~arch:Arch.X86 ~base:0x1000 ~resolve:(fun _ -> 0x3000) items in
  check Alcotest.string "x86 mov" "bf 00 30 00 00" (hex x86)

let test_asm_nop_fill_decodes () =
  (* Alignment padding must be decodable NOPs of exactly the gap size. *)
  let items =
    [ Asm.Ins Insn.Ret; Asm.Align { boundary = 16; fill = Asm.Fill_nop }; Asm.Label "f" ]
  in
  let bytes = Asm.assemble ~arch:Arch.X64 ~base:0 ~resolve:no_extern items in
  check Alcotest.int "padded to 16" 16 (String.length bytes);
  let off = ref 1 in
  while !off < 16 do
    match Dec.decode Arch.X64 bytes ~base:0 ~off:!off with
    | Ok i -> off := !off + i.len
    | Error m -> Alcotest.failf "pad byte not decodable at %d: %s" !off m
  done

let test_asm_jmp_table_item () =
  let items =
    [
      Asm.Label "f";
      Asm.Jmp_table_lbl { table = "jt"; index = Reg.RAX; scale = 4; notrack = true };
    ]
  in
  let bytes = Asm.assemble ~arch:Arch.X86 ~base:0 ~resolve:(fun _ -> 0x804000) items in
  check Alcotest.string "notrack jmp table" "3e ff 24 85 00 40 80 00" (hex bytes)

let suite =
  [
    ( "x86.register",
      [
        Alcotest.test_case "index roundtrip" `Quick test_register_roundtrip;
        Alcotest.test_case "names" `Quick test_register_names;
      ] );
    ( "x86.encoder",
      [
        Alcotest.test_case "endbr" `Quick test_encode_endbr;
        Alcotest.test_case "branches" `Quick test_encode_branches;
        Alcotest.test_case "ret/stack" `Quick test_encode_ret_stack;
        Alcotest.test_case "mov/alu" `Quick test_encode_mov_alu;
        Alcotest.test_case "memory forms" `Quick test_encode_mem_forms;
        Alcotest.test_case "indirect + notrack" `Quick test_encode_indirect;
        Alcotest.test_case "wave-2 alu/flags" `Quick test_encode_wave2;
        Alcotest.test_case "nops" `Quick test_encode_nops;
        Alcotest.test_case "invalid forms rejected" `Quick test_encode_rejects;
      ] );
    ( "x86.decoder",
      [
        Alcotest.test_case "endbr" `Quick test_decode_endbr;
        Alcotest.test_case "call target" `Quick test_decode_call_target;
        Alcotest.test_case "jmp backwards" `Quick test_decode_jmp_backwards;
        Alcotest.test_case "jcc rel8" `Quick test_decode_jcc8;
        Alcotest.test_case "notrack prefix" `Quick test_decode_notrack;
        Alcotest.test_case "PLT slot resolution" `Quick test_decode_plt_slot;
        Alcotest.test_case "address materialisation" `Quick test_decode_lea_addr_ref;
        Alcotest.test_case "ret/hlt" `Quick test_decode_ret_halt;
        Alcotest.test_case "error cases" `Quick test_decode_errors;
        Alcotest.test_case "arch-specific opcodes" `Quick test_decode_x86_legacy_ops;
        qcheck qcheck_roundtrip_x64;
        qcheck qcheck_roundtrip_x86;
        qcheck qcheck_stream_roundtrip;
      ] );
    ( "x86.exact",
      [
        qcheck qcheck_exact_x64;
        qcheck qcheck_exact_x86;
        Alcotest.test_case "full coverage of compiled binaries" `Quick
          test_exact_full_coverage_of_compiled_binary;
        Alcotest.test_case "disassembly text" `Quick test_exact_disassemble_text;
        Alcotest.test_case "fallback" `Quick test_exact_fallback;
      ] );
    ( "x86.asm",
      [
        Alcotest.test_case "forward/backward labels" `Quick test_asm_forward_backward;
        Alcotest.test_case "measure = assemble" `Quick test_asm_measure_matches;
        Alcotest.test_case "extern resolution" `Quick test_asm_extern_resolution;
        Alcotest.test_case "lea label by arch" `Quick test_asm_lea_lbl_by_arch;
        Alcotest.test_case "nop fill decodes" `Quick test_asm_nop_fill_decodes;
        Alcotest.test_case "jump table item" `Quick test_asm_jmp_table_item;
      ] );
  ]
