(* Tests for cet_elf: writer/reader roundtrips, symbols, PLT relocations,
   the CET property note, and stripping. *)

module Arch = Cet_x86.Arch
module Image = Cet_elf.Image
module Writer = Cet_elf.Writer
module Reader = Cet_elf.Reader
module Symbol = Cet_elf.Symbol
module Consts = Cet_elf.Consts

let check = Alcotest.check

let sample_image ?(arch = Arch.X64) ?(pie = true) () =
  let text = String.make 64 '\x90' in
  let rodata = "tables" in
  {
    Image.arch;
    machine = None;
    pie;
    cet_note = true;
    entry = 0x1010;
    sections =
      [
        Image.section ~name:".text"
          ~flags:(Consts.shf_alloc lor Consts.shf_execinstr)
          ~addralign:16 ~vaddr:0x1000 text;
        Image.section ~name:".rodata" ~vaddr:0x2000 rodata;
      ];
    symbols =
      [
        Symbol.func "main" 0x1010 ~size:16;
        Symbol.func ~bind:Symbol.Local "helper" 0x1020 ~size:8;
        Symbol.func ~bind:Symbol.Local "helper.cold" 0x1030;
      ];
    dynsyms = [ Symbol.undef_func "printf"; Symbol.undef_func "malloc" ];
    plt_relocs = [ (0x3018, "printf"); (0x3020, "malloc") ];
  }

let roundtrip ?arch ?pie () = Reader.read (Writer.write (sample_image ?arch ?pie ()))

let test_header_roundtrip () =
  let t = roundtrip () in
  check Alcotest.bool "arch" true (Reader.arch t = Arch.X64);
  check Alcotest.bool "pie" true (Reader.pie t);
  check Alcotest.int "entry" 0x1010 (Reader.entry t)

let test_header_x86_exec () =
  let t = roundtrip ~arch:Arch.X86 ~pie:false () in
  check Alcotest.bool "arch" true (Reader.arch t = Arch.X86);
  check Alcotest.bool "not pie" false (Reader.pie t)

let test_sections_roundtrip () =
  let t = roundtrip () in
  let text = Option.get (Reader.find_section t ".text") in
  check Alcotest.int "text vaddr" 0x1000 text.vaddr;
  check Alcotest.int "text size" 64 text.size;
  check Alcotest.string "text data" (String.make 64 '\x90') text.data;
  let ro = Option.get (Reader.find_section t ".rodata") in
  check Alcotest.string "rodata" "tables" ro.data;
  check Alcotest.bool "missing section" true (Reader.find_section t ".bss" = None)

let test_symbols_roundtrip () =
  let t = roundtrip () in
  let syms = Reader.symbols t in
  check Alcotest.int "count" 3 (List.length syms);
  let main = List.find (fun (s : Symbol.t) -> s.name = "main") syms in
  check Alcotest.int "main value" 0x1010 main.value;
  check Alcotest.int "main size" 16 main.size;
  check Alcotest.bool "main kind" true (main.kind = Symbol.Func);
  check Alcotest.bool "main bind" true (main.bind = Symbol.Global);
  check Alcotest.bool "main section" true (main.section = Some ".text");
  let cold = List.find (fun (s : Symbol.t) -> s.name = "helper.cold") syms in
  check Alcotest.bool "cold is local" true (cold.bind = Symbol.Local)

let test_locals_before_globals () =
  (* ELF requires local symbols to precede globals in the table. *)
  let t = roundtrip () in
  let binds = List.map (fun (s : Symbol.t) -> s.bind) (Reader.symbols t) in
  let rec check_order seen_global = function
    | [] -> true
    | Symbol.Local :: _ when seen_global -> false
    | Symbol.Local :: rest -> check_order false rest
    | _ :: rest -> check_order true rest
  in
  check Alcotest.bool "locals first" true (check_order false binds)

let test_dynsyms_and_plt_relocs () =
  let t = roundtrip () in
  let dyn = Reader.dyn_symbols t in
  check Alcotest.int "dynsym count (with null)" 3 (Array.length dyn);
  check Alcotest.string "null first" "" dyn.(0).Symbol.name;
  let relocs = Reader.plt_relocs t in
  check
    Alcotest.(list (pair int string))
    "relocs" [ (0x3018, "printf"); (0x3020, "malloc") ] relocs

let test_plt_relocs_x86_rel () =
  (* x86 uses REL (8-byte entries); the reader must parse those too. *)
  let t = roundtrip ~arch:Arch.X86 () in
  check
    Alcotest.(list (pair int string))
    "relocs" [ (0x3018, "printf"); (0x3020, "malloc") ]
    (Reader.plt_relocs t)

let test_cet_note () =
  let t = roundtrip () in
  check Alcotest.bool "cet enabled" true (Reader.cet_enabled t)

let test_strip () =
  let bytes = Writer.write (sample_image ()) in
  let stripped = Cet_elf.Strip.strip bytes in
  check Alcotest.bool "smaller" true (String.length stripped < String.length bytes);
  let t = Reader.read stripped in
  check Alcotest.int "no symbols" 0 (List.length (Reader.symbols t));
  (* Everything the analyses need survives. *)
  check Alcotest.bool "text" true (Reader.find_section t ".text" <> None);
  check Alcotest.int "dynsyms survive" 3 (Array.length (Reader.dyn_symbols t));
  check Alcotest.int "relocs survive" 2 (List.length (Reader.plt_relocs t));
  check Alcotest.bool "cet note survives" true (Reader.cet_enabled t)

let test_write_strip_equals_strip () =
  let img = sample_image () in
  let a = Writer.write ~strip:true img in
  let b = Cet_elf.Strip.strip (Writer.write img) in
  check Alcotest.string "same bytes" a b

let test_to_image_roundtrip () =
  let img = sample_image () in
  let img2 = Reader.to_image (Reader.read (Writer.write img)) in
  check Alcotest.string "re-serialise stable" (Writer.write img2)
    (Writer.write (Reader.to_image (Reader.read (Writer.write img2))))

let test_malformed () =
  let raises s = try ignore (Reader.read s); false with Reader.Malformed _ -> true in
  check Alcotest.bool "empty" true (raises "");
  check Alcotest.bool "bad magic" true (raises (String.make 64 'X'));
  check Alcotest.bool "truncated" true (raises "\x7fELF");
  let good = Writer.write (sample_image ()) in
  let corrupt = String.sub good 0 (String.length good / 2) in
  check Alcotest.bool "truncated tables" true (raises corrupt)

let test_entry_alignment_of_sections () =
  (* Section data with addralign must land on aligned file offsets. *)
  let bytes = Writer.write (sample_image ()) in
  let t = Reader.read bytes in
  let text = Option.get (Reader.find_section t ".text") in
  (* Find the .text content in the file: it must appear intact. *)
  check Alcotest.bool "text content embedded" true
    (let rec search i =
       if i + text.size > String.length bytes then false
       else if String.sub bytes i text.size = text.data then i mod 16 = 0
       else search (i + 1)
     in
     search 0)

let suite =
  [
    ( "elf",
      [
        Alcotest.test_case "header roundtrip" `Quick test_header_roundtrip;
        Alcotest.test_case "x86 non-PIE header" `Quick test_header_x86_exec;
        Alcotest.test_case "sections roundtrip" `Quick test_sections_roundtrip;
        Alcotest.test_case "symbols roundtrip" `Quick test_symbols_roundtrip;
        Alcotest.test_case "locals precede globals" `Quick test_locals_before_globals;
        Alcotest.test_case "dynsyms + rela.plt" `Quick test_dynsyms_and_plt_relocs;
        Alcotest.test_case "rel.plt (x86)" `Quick test_plt_relocs_x86_rel;
        Alcotest.test_case "CET property note" `Quick test_cet_note;
        Alcotest.test_case "strip" `Quick test_strip;
        Alcotest.test_case "strip = write ~strip" `Quick test_write_strip_equals_strip;
        Alcotest.test_case "to_image stable" `Quick test_to_image_roundtrip;
        Alcotest.test_case "malformed inputs" `Quick test_malformed;
        Alcotest.test_case "section alignment" `Quick test_entry_alignment_of_sections;
      ] );
  ]
