(* Tests for cet_eh: DWARF pointer encodings, .eh_frame CIE/FDE, LSDA. *)

module W = Cet_util.Bytesio.W
module R = Cet_util.Bytesio.R
module PE = Cet_eh.Pointer_enc
module EF = Cet_eh.Eh_frame
module Lsda = Cet_eh.Lsda

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Pointer encodings                                                  *)
(* ------------------------------------------------------------------ *)

let test_pe_pcrel_roundtrip () =
  let w = W.create () in
  PE.write w ~enc:PE.pcrel_sdata4 ~field_addr:0x2000 ~value:0x1500;
  check Alcotest.int "size" 4 (W.length w);
  let r = R.of_string (W.contents w) in
  check Alcotest.int "value" 0x1500 (PE.read r ~enc:PE.pcrel_sdata4 ~field_addr:0x2000)

let test_pe_abs_roundtrip () =
  let w = W.create () in
  PE.write w ~enc:PE.udata4 ~field_addr:0 ~value:0xDEAD;
  let r = R.of_string (W.contents w) in
  check Alcotest.int "value" 0xDEAD (PE.read r ~enc:PE.udata4 ~field_addr:999)

let test_pe_negative_pcrel () =
  (* pcrel to a lower address must encode negatively and read back. *)
  let w = W.create () in
  PE.write w ~enc:PE.pcrel_sdata4 ~field_addr:0x5000 ~value:0x1000;
  let r = R.of_string (W.contents w) in
  check Alcotest.int "value" 0x1000 (PE.read r ~enc:PE.pcrel_sdata4 ~field_addr:0x5000)

let test_pe_sizes () =
  check Alcotest.(option int) "pcrel sdata4" (Some 4) (PE.size PE.pcrel_sdata4);
  check Alcotest.(option int) "uleb" None (PE.size PE.uleb)

let test_pe_omit_rejected () =
  let r = R.of_string "\x00\x00\x00\x00" in
  Alcotest.check_raises "omit" (Invalid_argument "Pointer_enc.read: omit") (fun () ->
      ignore (PE.read r ~enc:PE.omit ~field_addr:0))

(* ------------------------------------------------------------------ *)
(* .eh_frame                                                          *)
(* ------------------------------------------------------------------ *)

let frames_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : EF.frame) (y : EF.frame) ->
         x.pc_begin = y.pc_begin && x.pc_range = y.pc_range && x.lsda = y.lsda)
       a b

let test_eh_frame_plain_roundtrip () =
  let frames =
    [
      { EF.pc_begin = 0x1000; pc_range = 0x40; lsda = None };
      { EF.pc_begin = 0x1040; pc_range = 0x123; lsda = None };
    ]
  in
  let bytes = EF.encode ~vaddr:0x5000 ~personality:0 frames in
  check Alcotest.bool "roundtrip" true (frames_equal frames (EF.decode ~vaddr:0x5000 bytes))

let test_eh_frame_lsda_roundtrip () =
  let frames =
    [
      { EF.pc_begin = 0x1000; pc_range = 0x40; lsda = None };
      { EF.pc_begin = 0x1040; pc_range = 0x80; lsda = Some 0x9000 };
      { EF.pc_begin = 0x10c0; pc_range = 0x20; lsda = Some 0x9040 };
    ]
  in
  let bytes = EF.encode ~vaddr:0x5000 ~personality:0x800 frames in
  let decoded = EF.decode ~vaddr:0x5000 bytes in
  (* Plain frames come from the zR CIE, LSDA frames from the zPLR CIE; the
     decoder returns them grouped, so compare as sets. *)
  let sort = List.sort (fun (a : EF.frame) b -> compare a.pc_begin b.pc_begin) in
  check Alcotest.bool "roundtrip" true (frames_equal (sort frames) (sort decoded))

let test_eh_frame_size_vaddr_independent () =
  let frames = [ { EF.pc_begin = 0x1000; pc_range = 0x40; lsda = Some 0x9000 } ] in
  let a = EF.encode ~vaddr:0 ~personality:0x800 frames in
  let b = EF.encode ~vaddr:0x123456 ~personality:0x800 frames in
  check Alcotest.int "same size" (String.length a) (String.length b)

let test_eh_frame_empty () =
  let bytes = EF.encode ~vaddr:0 ~personality:0 [] in
  check Alcotest.int "terminator only" 4 (String.length bytes);
  check Alcotest.(list reject) "no frames" []
    (List.map (fun _ -> Alcotest.fail "frame") (EF.decode ~vaddr:0 bytes))

let test_eh_frame_records_aligned () =
  (* Each record length must keep subsequent records 4-byte aligned. *)
  let frames = [ { EF.pc_begin = 0x1111; pc_range = 7; lsda = None } ] in
  let bytes = EF.encode ~vaddr:0 ~personality:0 frames in
  check Alcotest.int "aligned size" 0 (String.length bytes mod 4)

let qcheck_eh_frame_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (map3
           (fun b r l ->
             {
               EF.pc_begin = 0x1000 + (b land 0xFFFF);
               pc_range = 1 + (r land 0xFFF);
               lsda = (if l land 1 = 0 then None else Some (0x20000 + (l land 0xFFF)));
             })
           (int_bound 0xFFFF) (int_bound 0xFFF) (int_bound 0xFFFF)))
  in
  QCheck.Test.make ~name:"eh_frame roundtrip" ~count:100 (QCheck.make gen) (fun frames ->
      let bytes = EF.encode ~vaddr:0x7000 ~personality:0x4444 frames in
      let sort = List.sort (fun (a : EF.frame) b -> compare (a.pc_begin, a.lsda) (b.pc_begin, b.lsda)) in
      frames_equal (sort frames) (sort (EF.decode ~vaddr:0x7000 bytes)))

(* ------------------------------------------------------------------ *)
(* LSDA                                                               *)
(* ------------------------------------------------------------------ *)

let sample_lsda =
  {
    Lsda.call_sites =
      [
        { Lsda.cs_start = 0x10; cs_len = 0x20; cs_landing_pad = 0x80; cs_action = 1 };
        { Lsda.cs_start = 0x40; cs_len = 0x8; cs_landing_pad = 0; cs_action = 0 };
        { Lsda.cs_start = 0x50; cs_len = 0x10; cs_landing_pad = 0x95; cs_action = 1 };
      ];
    type_count = 2;
  }

let test_lsda_roundtrip () =
  let bytes = Lsda.encode sample_lsda in
  let d = Lsda.decode bytes ~off:0 in
  check Alcotest.int "sites" 3 (List.length d.call_sites);
  check Alcotest.int "types" 2 d.type_count;
  List.iter2
    (fun (a : Lsda.call_site) (b : Lsda.call_site) ->
      check Alcotest.int "start" a.cs_start b.cs_start;
      check Alcotest.int "len" a.cs_len b.cs_len;
      check Alcotest.int "lp" a.cs_landing_pad b.cs_landing_pad)
    sample_lsda.call_sites d.call_sites

let test_lsda_no_types () =
  let l = { Lsda.call_sites = sample_lsda.call_sites; type_count = 0 } in
  let d = Lsda.decode (Lsda.encode l) ~off:0 in
  check Alcotest.int "types" 0 d.type_count;
  check Alcotest.int "sites" 3 (List.length d.call_sites)

let test_lsda_landing_pads () =
  check Alcotest.(list int) "pads" [ 0x1080; 0x1095 ]
    (Lsda.landing_pads sample_lsda ~func_start:0x1000)

let test_lsda_table_offsets () =
  let lsdas = [ sample_lsda; { sample_lsda with type_count = 0 }; sample_lsda ] in
  let table, offsets = Lsda.build_table lsdas in
  check Alcotest.int "count" 3 (List.length offsets);
  List.iter (fun off -> check Alcotest.int "aligned" 0 (off mod 4)) offsets;
  (* Each offset decodes back to its LSDA. *)
  List.iter2
    (fun l off ->
      let d = Lsda.decode table ~off in
      check Alcotest.int "site count" (List.length l.Lsda.call_sites)
        (List.length d.Lsda.call_sites))
    lsdas offsets

let qcheck_lsda_roundtrip =
  let gen =
    QCheck.Gen.(
      map2
        (fun sites types ->
          {
            Lsda.call_sites =
              List.map
                (fun (a, b, c) ->
                  {
                    Lsda.cs_start = a land 0xFFFF;
                    cs_len = 1 + (b land 0xFFF);
                    cs_landing_pad = c land 0xFFFF;
                    cs_action = (if c land 1 = 0 then 0 else 1);
                  })
                sites;
            type_count = types;
          })
        (list_size (int_range 0 12) (triple (int_bound 0xFFFF) (int_bound 0xFFF) (int_bound 0xFFFF)))
        (int_bound 4))
  in
  QCheck.Test.make ~name:"lsda roundtrip" ~count:200 (QCheck.make gen) (fun l ->
      let d = Lsda.decode (Lsda.encode l) ~off:0 in
      List.length d.call_sites = List.length l.call_sites
      && List.for_all2
           (fun (a : Lsda.call_site) (b : Lsda.call_site) ->
             a.cs_start = b.cs_start && a.cs_len = b.cs_len
             && a.cs_landing_pad = b.cs_landing_pad)
           l.call_sites d.call_sites)

(* ------------------------------------------------------------------ *)
(* .eh_frame_hdr                                                      *)
(* ------------------------------------------------------------------ *)

module EFH = Cet_eh.Eh_frame_hdr

let test_eh_frame_hdr_roundtrip () =
  let entries =
    [
      { EFH.initial_loc = 0x3000; fde_addr = 0x9040 };
      { EFH.initial_loc = 0x1000; fde_addr = 0x9000 };
      { EFH.initial_loc = 0x2000; fde_addr = 0x9020 };
    ]
  in
  let bytes = EFH.encode ~vaddr:0x8000 ~eh_frame_vaddr:0x9000 entries in
  check Alcotest.int "size formula" (EFH.size 3) (String.length bytes);
  let decoded = EFH.decode ~vaddr:0x8000 bytes in
  (* Entries come back sorted by initial location. *)
  check Alcotest.(list int) "sorted locs" [ 0x1000; 0x2000; 0x3000 ]
    (List.map (fun (e : EFH.entry) -> e.initial_loc) decoded);
  check Alcotest.(list int) "fde addrs" [ 0x9000; 0x9020; 0x9040 ]
    (List.map (fun (e : EFH.entry) -> e.fde_addr) decoded)

let test_eh_frame_hdr_matches_frames () =
  (* Integration: in a linked binary the header indexes exactly the FDEs. *)
  let prog =
    {
      Cet_compiler.Ir.prog_name = "t";
      lang = Cet_compiler.Ir.C;
      funcs =
        [
          Cet_compiler.Ir.func "main" [ Cet_compiler.Ir.Call (Cet_compiler.Ir.Local "f") ];
          Cet_compiler.Ir.func "f" [ Cet_compiler.Ir.Compute 2 ];
        ];
      extra_imports = [];
    }
  in
  let bytes = Cet_compiler.Link.compile Cet_compiler.Options.default prog in
  let reader = Cet_elf.Reader.read bytes in
  let hdr = Option.get (Cet_elf.Reader.find_section reader ".eh_frame_hdr") in
  let frame_sec = Option.get (Cet_elf.Reader.find_section reader ".eh_frame") in
  let entries = EFH.decode ~vaddr:hdr.vaddr hdr.data in
  let frames = EF.decode ~vaddr:frame_sec.vaddr frame_sec.data in
  check Alcotest.int "one entry per fde" (List.length frames) (List.length entries);
  let frame_locs =
    List.sort compare (List.map (fun (f : EF.frame) -> f.pc_begin) frames)
  in
  check Alcotest.(list int) "same locations" frame_locs
    (List.map (fun (e : EFH.entry) -> e.initial_loc) entries);
  (* Every fde_addr points at a record whose pc_begin matches. *)
  List.iter
    (fun (e : EFH.entry) ->
      let off = e.fde_addr - frame_sec.vaddr in
      check Alcotest.bool "fde in section" true (off > 0 && off < frame_sec.size))
    entries

(* ------------------------------------------------------------------ *)
(* DWARF debug info                                                   *)
(* ------------------------------------------------------------------ *)

module DI = Cet_eh.Dwarf_info

let sample_di =
  {
    DI.cu_name = "prog.c";
    producer = "gcc (synthetic)";
    subprograms =
      [
        { DI.sp_name = "main"; sp_low_pc = 0x1120; sp_high_pc = 0x11a0; sp_external = true };
        { DI.sp_name = "helper"; sp_low_pc = 0x11a0; sp_high_pc = 0x11c4; sp_external = false };
        { DI.sp_name = "helper.cold"; sp_low_pc = 0x2000; sp_high_pc = 0x2010; sp_external = false };
      ];
  }

let test_dwarf_roundtrip () =
  List.iter
    (fun ptr_size ->
      let ab, info, str = DI.encode ~ptr_size sample_di in
      let d = DI.decode ~debug_abbrev:ab ~debug_info:info ~debug_str:str in
      check Alcotest.string "cu name" sample_di.DI.cu_name d.DI.cu_name;
      check Alcotest.string "producer" sample_di.DI.producer d.DI.producer;
      check Alcotest.int "count" 3 (List.length d.DI.subprograms);
      List.iter2
        (fun (a : DI.subprogram) (b : DI.subprogram) ->
          check Alcotest.string "name" a.sp_name b.sp_name;
          check Alcotest.int "low" a.sp_low_pc b.sp_low_pc;
          check Alcotest.int "high" a.sp_high_pc b.sp_high_pc;
          check Alcotest.bool "ext" a.sp_external b.sp_external)
        sample_di.DI.subprograms d.DI.subprograms)
    [ 4; 8 ]

let qcheck_dwarf_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun names ->
          {
            DI.cu_name = "t.c";
            producer = "p";
            subprograms =
              List.mapi
                (fun i n ->
                  {
                    DI.sp_name = Printf.sprintf "f%d_%d" i (n land 0xFF);
                    sp_low_pc = 0x1000 + (i * 64);
                    sp_high_pc = 0x1000 + (i * 64) + 32 + (n land 31);
                    sp_external = n land 1 = 0;
                  })
                names;
          })
        (list_size (int_range 0 40) (int_bound 10000)))
  in
  QCheck.Test.make ~name:"dwarf_info roundtrip" ~count:100 (QCheck.make gen) (fun di ->
      let ab, info, str = DI.encode ~ptr_size:8 di in
      let d = DI.decode ~debug_abbrev:ab ~debug_info:info ~debug_str:str in
      d.DI.subprograms = di.DI.subprograms)

let suite =
  [
    ( "eh.pointer_enc",
      [
        Alcotest.test_case "pcrel roundtrip" `Quick test_pe_pcrel_roundtrip;
        Alcotest.test_case "abs roundtrip" `Quick test_pe_abs_roundtrip;
        Alcotest.test_case "negative pcrel" `Quick test_pe_negative_pcrel;
        Alcotest.test_case "sizes" `Quick test_pe_sizes;
        Alcotest.test_case "omit rejected" `Quick test_pe_omit_rejected;
      ] );
    ( "eh.eh_frame",
      [
        Alcotest.test_case "plain roundtrip" `Quick test_eh_frame_plain_roundtrip;
        Alcotest.test_case "LSDA roundtrip" `Quick test_eh_frame_lsda_roundtrip;
        Alcotest.test_case "size independent of vaddr" `Quick test_eh_frame_size_vaddr_independent;
        Alcotest.test_case "empty section" `Quick test_eh_frame_empty;
        Alcotest.test_case "record alignment" `Quick test_eh_frame_records_aligned;
        qcheck qcheck_eh_frame_roundtrip;
      ] );
    ( "eh.eh_frame_hdr",
      [
        Alcotest.test_case "roundtrip + sorting" `Quick test_eh_frame_hdr_roundtrip;
        Alcotest.test_case "indexes linked FDEs" `Quick test_eh_frame_hdr_matches_frames;
      ] );
    ( "eh.dwarf",
      [
        Alcotest.test_case "roundtrip (both classes)" `Quick test_dwarf_roundtrip;
        qcheck qcheck_dwarf_roundtrip;
      ] );
    ( "eh.lsda",
      [
        Alcotest.test_case "roundtrip" `Quick test_lsda_roundtrip;
        Alcotest.test_case "no types table" `Quick test_lsda_no_types;
        Alcotest.test_case "landing pads" `Quick test_lsda_landing_pads;
        Alcotest.test_case "table offsets" `Quick test_lsda_table_offsets;
        qcheck qcheck_lsda_roundtrip;
      ] );
  ]
