test/test_compiler.ml: Alcotest Array Cet_compiler Cet_disasm Cet_eh Cet_elf Cet_eval Cet_x86 Core List
