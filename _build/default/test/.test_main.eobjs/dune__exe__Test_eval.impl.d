test/test_eval.ml: Alcotest Cet_compiler Cet_corpus Cet_eval Core List String Sys
