test/test_elf.ml: Alcotest Array Cet_elf Cet_x86 List Option String
