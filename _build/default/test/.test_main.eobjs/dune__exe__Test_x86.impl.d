test/test_x86.ml: Alcotest Array Cet_compiler Cet_corpus Cet_elf Cet_util Cet_x86 Format List Option QCheck QCheck_alcotest String
