test/test_baselines.ml: Alcotest Cet_baselines Cet_compiler Cet_corpus Cet_disasm Cet_elf Cet_eval Cet_x86 Core List
