test/test_util.ml: Alcotest Array Buffer Cet_util Char Fun Gen List Printf QCheck QCheck_alcotest String Sys
