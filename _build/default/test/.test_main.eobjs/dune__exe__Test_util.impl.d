test/test_util.ml: Alcotest Array Buffer Cet_util Char Fun Gen List QCheck QCheck_alcotest String
