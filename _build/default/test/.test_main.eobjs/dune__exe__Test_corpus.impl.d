test/test_corpus.ml: Alcotest Cet_compiler Cet_corpus Cet_elf Cet_eval Fun List
