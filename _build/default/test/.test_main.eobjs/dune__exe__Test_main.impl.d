test/test_main.ml: Alcotest Test_arm Test_baselines Test_cfg Test_compiler Test_corpus Test_edge Test_eh Test_elf Test_eval Test_funseeker Test_util Test_x86
