test/test_funseeker.ml: Alcotest Cet_compiler Cet_elf Cet_eval Cet_x86 Core List
