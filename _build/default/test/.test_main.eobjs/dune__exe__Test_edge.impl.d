test/test_edge.ml: Alcotest Array Cet_compiler Cet_corpus Cet_disasm Cet_elf Cet_util Cet_x86 Char Consts Core Digest List Printf String
