test/test_arm.ml: Alcotest Cet_arm64 Cet_compiler Cet_corpus Cet_elf Cet_eval Core Int32 List Option QCheck QCheck_alcotest String
