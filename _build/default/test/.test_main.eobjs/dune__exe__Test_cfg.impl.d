test/test_cfg.ml: Alcotest Cet_cfg Cet_compiler Cet_corpus Cet_elf List String
