test/test_eh.ml: Alcotest Cet_compiler Cet_eh Cet_elf Cet_util List Option Printf QCheck QCheck_alcotest String
