(* Tests for cet_cfg: basic blocks, edges, call graph, DOT rendering. *)

module O = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module Link = Cet_compiler.Link
module Reader = Cet_elf.Reader
module Cfg = Cet_cfg.Cfg

let check = Alcotest.check

let base_prog ?(lang = Ir.C) funcs =
  { Ir.prog_name = "t"; lang; funcs; extra_imports = [] }

let compile ?(opts = O.default) prog =
  let res = Link.link opts prog in
  (res, Reader.read (Cet_elf.Writer.write ~strip:true res.image))

let find_func funcs res name = List.find (fun f -> f.Cfg.f_entry = List.assoc name res.Link.truth) funcs

let diamond_prog =
  base_prog
    [
      Ir.func "main"
        [ Ir.Compute 1; Ir.If_else ([ Ir.Compute 1 ], [ Ir.Compute 2 ]); Ir.Compute 1 ];
      Ir.func "callee" [ Ir.Compute 1 ];
    ]

let test_straightline_single_block () =
  let p = base_prog [ Ir.func "main" [ Ir.Compute 5 ] ] in
  let res, reader = compile p in
  let funcs = Cfg.recover reader in
  let m = find_func funcs res "main" in
  check Alcotest.int "one block" 1 (Cfg.block_count m);
  check Alcotest.int "no edges" 0 (Cfg.edge_count m);
  match m.Cfg.f_blocks with
  | [ b ] ->
    check Alcotest.bool "ret terminator" true (b.Cfg.b_term = Cfg.T_return);
    check Alcotest.int "starts at entry" m.Cfg.f_entry b.Cfg.b_start
  | _ -> Alcotest.fail "expected exactly one block"

let test_diamond_shape () =
  let res, reader = compile diamond_prog in
  let funcs = Cfg.recover reader in
  let m = find_func funcs res "main" in
  (* if/else: header, then-arm, else-arm, join (+ tail) — at least 4
     blocks with a branch and a join. *)
  check Alcotest.bool "several blocks" true (Cfg.block_count m >= 4);
  check Alcotest.bool "edges" true (Cfg.edge_count m >= 4);
  (* Exactly one conditional terminator with both its edges in-function. *)
  let conds =
    List.filter (fun b -> match b.Cfg.b_term with Cfg.T_cond _ -> true | _ -> false)
      m.Cfg.f_blocks
  in
  check Alcotest.int "one cond" 1 (List.length conds);
  (* Every edge endpoint is a block start inside the function. *)
  let starts = List.map (fun b -> b.Cfg.b_start) m.Cfg.f_blocks in
  List.iter
    (fun (a, b) ->
      check Alcotest.bool "edge src is block" true (List.mem a starts);
      check Alcotest.bool "edge dst is block" true (List.mem b starts))
    m.Cfg.f_edges

let test_blocks_partition_extent () =
  let res, reader = compile diamond_prog in
  let funcs = Cfg.recover reader in
  let m = find_func funcs res "main" in
  (* Blocks are disjoint, ordered, and within the extent. *)
  let rec walk = function
    | a :: (b : Cfg.block) :: rest ->
      check Alcotest.bool "ordered" true (a.Cfg.b_stop <= b.Cfg.b_start);
      walk (b :: rest)
    | _ -> ()
  in
  walk m.Cfg.f_blocks;
  List.iter
    (fun b ->
      check Alcotest.bool "within extent" true
        (b.Cfg.b_start >= m.Cfg.f_entry && b.Cfg.b_stop <= m.Cfg.f_stop))
    m.Cfg.f_blocks

let test_call_graph () =
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Call (Ir.Local "a"); Ir.Call (Ir.Local "b") ];
        Ir.func "a" [ Ir.Call (Ir.Local "b") ];
        Ir.func "b" [ Ir.Compute 1 ];
      ]
  in
  let res, reader = compile p in
  let funcs = Cfg.recover reader in
  let cg = Cfg.call_graph funcs in
  let at name = List.assoc name res.Link.truth in
  let callees n = List.assoc (at n) cg in
  check Alcotest.bool "main->a" true (List.mem (at "a") (callees "main"));
  check Alcotest.bool "main->b" true (List.mem (at "b") (callees "main"));
  check Alcotest.bool "a->b" true (List.mem (at "b") (callees "a"));
  check Alcotest.(list int) "b-> nothing" [] (callees "b");
  (* reachable_from main covers everything but not vice versa *)
  let reach = Cfg.reachable_from funcs (at "main") in
  List.iter (fun n -> check Alcotest.bool n true (List.mem (at n) reach)) [ "a"; "b" ];
  check Alcotest.bool "b reaches only itself" true
    (Cfg.reachable_from funcs (at "b") = [ at "b" ])

let test_tail_call_terminator () =
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Compute 1; Ir.Tail_call_site "tgt" ];
        Ir.func "tgt" [ Ir.Compute 1 ];
        Ir.func "z" [ Ir.Call (Ir.Local "tgt") ];
      ]
  in
  let opts = { O.default with opt = O.O2 } in
  let res, reader = compile ~opts p in
  let funcs = Cfg.recover reader in
  let m = find_func funcs res "main" in
  let tgt = List.assoc "tgt" res.Link.truth in
  let tails =
    List.filter (fun b -> b.Cfg.b_term = Cfg.T_tail tgt) m.Cfg.f_blocks
  in
  check Alcotest.int "one tail block" 1 (List.length tails);
  (* The tail edge leaves the function: not an intra edge. *)
  List.iter
    (fun (_, dst) -> check Alcotest.bool "no intra edge to tgt" true (dst <> tgt))
    m.Cfg.f_edges

let test_switch_indirect_terminator () =
  let p =
    base_prog
      [
        Ir.func "main"
          [ Ir.Switch [ [ Ir.Compute 1 ]; [ Ir.Compute 1 ]; [ Ir.Compute 1 ]; [ Ir.Compute 1 ] ] ];
      ]
  in
  let res, reader = compile p in
  let funcs = Cfg.recover reader in
  let m = find_func funcs res "main" in
  check Alcotest.bool "has switch dispatch" true
    (List.exists (fun b -> b.Cfg.b_term = Cfg.T_indirect) m.Cfg.f_blocks)

let test_dot_rendering () =
  let res, reader = compile diamond_prog in
  let funcs = Cfg.recover reader in
  let m = find_func funcs res "main" in
  let dot = Cfg.to_dot m in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "digraph" true (contains "digraph");
  check Alcotest.bool "has nodes" true (contains "n0x");
  check Alcotest.bool "has edges" true (contains "->")

let test_cfg_covers_all_functions () =
  let profile = { Cet_corpus.Profile.coreutils with Cet_corpus.Profile.programs = 1 } in
  let ir = Cet_corpus.Generator.program ~seed:3 ~profile ~index:0 in
  let res = Link.link O.default ir in
  let reader = Reader.read (Cet_elf.Writer.write ~strip:true res.image) in
  let funcs = Cfg.recover reader in
  (* Using FunSeeker entries by default: one CFG per identified function,
     each with at least one block, all blocks with >= 1 instruction. *)
  check Alcotest.bool "many functions" true (List.length funcs > 50);
  List.iter
    (fun f ->
      check Alcotest.bool "has blocks" true (Cfg.block_count f >= 1);
      List.iter
        (fun b -> check Alcotest.bool "non-empty block" true (b.Cfg.b_insns >= 1))
        f.Cfg.f_blocks)
    funcs

let suite =
  [
    ( "cfg",
      [
        Alcotest.test_case "straight-line = 1 block" `Quick test_straightline_single_block;
        Alcotest.test_case "diamond shape" `Quick test_diamond_shape;
        Alcotest.test_case "blocks partition extent" `Quick test_blocks_partition_extent;
        Alcotest.test_case "call graph + reachability" `Quick test_call_graph;
        Alcotest.test_case "tail-call terminator" `Quick test_tail_call_terminator;
        Alcotest.test_case "switch dispatch" `Quick test_switch_indirect_terminator;
        Alcotest.test_case "dot rendering" `Quick test_dot_rendering;
        Alcotest.test_case "covers whole binary" `Quick test_cfg_covers_all_functions;
      ] );
  ]
