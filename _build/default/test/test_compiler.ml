(* Tests for cet_compiler: IR validation and the end-branch / splitting /
   tail-call / FDE emission rules the paper's study depends on. *)

module Arch = Cet_x86.Arch
module O = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module Link = Cet_compiler.Link
module Reader = Cet_elf.Reader
module Linear = Cet_disasm.Linear
module Dec = Cet_x86.Decoder

let check = Alcotest.check

let base_prog ?(lang = Ir.C) funcs =
  { Ir.prog_name = "t"; lang; funcs; extra_imports = [] }

let compile ?(opts = O.default) prog =
  let res = Link.link opts prog in
  let bytes = Cet_elf.Writer.write res.image in
  (res, Reader.read bytes)

let endbr_set reader =
  let sweep = Linear.sweep_text reader in
  Linear.endbr_addrs sweep

let truth_addr res name = List.assoc name res.Link.truth

(* ------------------------------------------------------------------ *)
(* Options                                                            *)
(* ------------------------------------------------------------------ *)

let test_grid_size () =
  (* 24 configurations per compiler (2 arch x 2 pie x 6 levels), x2
     compilers. *)
  check Alcotest.int "48 grid points" 48 (List.length O.all_grid)

let test_option_flags () =
  check Alcotest.bool "tail at O2" true (O.tail_calls_enabled { O.default with opt = O.O2 });
  check Alcotest.bool "no tail at O0" false (O.tail_calls_enabled { O.default with opt = O.O0 });
  check Alcotest.bool "tail at Os" true (O.tail_calls_enabled { O.default with opt = O.Os });
  check Alcotest.bool "gcc splits at O3" true
    (O.cold_splitting_enabled { O.default with opt = O.O3 });
  check Alcotest.bool "clang never splits" false
    (O.cold_splitting_enabled { O.default with compiler = O.Clang; opt = O.O3 });
  check Alcotest.bool "gcc no split at O1" false
    (O.cold_splitting_enabled { O.default with opt = O.O1 });
  check Alcotest.bool "fde gcc C" true (O.emits_fdes O.default ~lang_cpp:false);
  check Alcotest.bool "fde clang x64 C" true
    (O.emits_fdes { O.default with compiler = O.Clang } ~lang_cpp:false);
  check Alcotest.bool "no fde clang x86 C" false
    (O.emits_fdes { O.default with compiler = O.Clang; arch = Arch.X86 } ~lang_cpp:false);
  check Alcotest.bool "fde clang x86 C++" true
    (O.emits_fdes { O.default with compiler = O.Clang; arch = Arch.X86 } ~lang_cpp:true)

(* ------------------------------------------------------------------ *)
(* IR validation                                                      *)
(* ------------------------------------------------------------------ *)

let test_validate_ok () =
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Call (Ir.Local "f") ];
        Ir.func ~address_taken:true "f" [ Ir.Compute 1 ];
      ]
  in
  check Alcotest.bool "valid" true (Ir.validate p = Ok ())

let expect_invalid p =
  match Ir.validate p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation error"

let test_validate_no_main () =
  expect_invalid (base_prog [ Ir.func "f" [ Ir.Compute 1 ] ])

let test_validate_unknown_callee () =
  expect_invalid (base_prog [ Ir.func "main" [ Ir.Call (Ir.Local "ghost") ] ])

let test_validate_addr_of_non_taken () =
  expect_invalid
    (base_prog [ Ir.func "main" [ Ir.Call_via_pointer "f" ]; Ir.func "f" [] ])

let test_validate_try_in_c () =
  expect_invalid
    (base_prog [ Ir.func "main" [ Ir.Try_catch ([ Ir.Compute 1 ], [ [ Ir.Compute 1 ] ]) ] ])

let test_validate_duplicate () =
  expect_invalid (base_prog [ Ir.func "main" []; Ir.func "main" [] ])

let test_validate_part_jump () =
  expect_invalid
    (base_prog [ Ir.func "main" [ Ir.Jump_to_part "f" ]; Ir.func "f" [ Ir.Compute 1 ] ])

let test_collect_imports () =
  let p =
    base_prog ~lang:Ir.Cpp
      [
        Ir.func "main"
          [
            Ir.Call (Ir.Import "printf");
            Ir.Try_catch ([ Ir.Call (Ir.Import "printf") ], [ [] ]);
            Ir.Indirect_return_call "setjmp";
          ];
      ]
  in
  let imports = Ir.collect_imports p in
  check Alcotest.bool "printf once" true
    (List.length (List.filter (( = ) "printf") imports) = 1);
  List.iter
    (fun i -> check Alcotest.bool i true (List.mem i imports))
    [ "printf"; "setjmp"; "__cxa_begin_catch"; "__cxa_end_catch"; "__gxx_personality_v0" ]

(* ------------------------------------------------------------------ *)
(* End-branch placement rules                                         *)
(* ------------------------------------------------------------------ *)

let endbr_prog =
  base_prog
    [
      Ir.func "main" [ Ir.Call (Ir.Local "stat"); Ir.Call (Ir.Local "intrin") ];
      Ir.func "exported" [ Ir.Compute 1 ];
      Ir.func ~linkage:Ir.Static "stat" [ Ir.Compute 1 ];
      Ir.func ~linkage:Ir.Static ~address_taken:true "taken" [ Ir.Compute 1 ];
      Ir.func ~no_endbr:true "intrin" [ Ir.Compute 1 ];
    ]

let test_endbr_rules () =
  let res, reader = compile endbr_prog in
  let endbrs = endbr_set reader in
  let has name = List.mem (truth_addr res name) endbrs in
  check Alcotest.bool "main has endbr" true (has "main");
  check Alcotest.bool "exported has endbr" true (has "exported");
  check Alcotest.bool "_start has endbr" true (has "_start");
  check Alcotest.bool "static lacks endbr" false (has "stat");
  check Alcotest.bool "address-taken static has endbr" true (has "taken");
  check Alcotest.bool "intrinsic lacks endbr" false (has "intrin")

let test_cf_protection_none () =
  let opts = { O.default with cf_protection = O.Cf_none } in
  let _, reader = compile ~opts endbr_prog in
  check Alcotest.int "no endbr at all" 0 (List.length (endbr_set reader));
  (* Legacy binaries carry no CET property note either. *)
  check Alcotest.bool "no cet note" false (Reader.cet_enabled reader)

let test_cf_protection_manual () =
  (* -mmanual-endbr (SSVI): only genuinely indirect-entered code keeps its
     end-branch. *)
  let opts = { O.default with cf_protection = O.Cf_manual } in
  let res, reader = compile ~opts endbr_prog in
  let endbrs = endbr_set reader in
  let has name = List.mem (truth_addr res name) endbrs in
  check Alcotest.bool "exported unmarked" false (has "exported");
  check Alcotest.bool "address-taken marked" true (has "taken");
  check Alcotest.bool "main marked" true (has "main");
  check Alcotest.bool "still a CET binary" true (Reader.cet_enabled reader);
  (* Indirect-return sites keep their end-branch: the program would crash
     otherwise. *)
  let p =
    base_prog [ Ir.func "main" [ Ir.Indirect_return_call "setjmp" ] ]
  in
  let _, reader = compile ~opts p in
  check Alcotest.bool "setjmp site still marked" true
    (List.length (endbr_set reader) >= 2)

let test_endbr32_on_x86 () =
  let opts = { O.default with arch = Arch.X86 } in
  let _, reader = compile ~opts endbr_prog in
  let sweep = Linear.sweep_text reader in
  let has64 =
    Array.exists (fun (i : Dec.ins) -> i.kind = Dec.Endbr64) sweep.insns
  in
  check Alcotest.bool "no endbr64 in x86" false has64;
  check Alcotest.bool "has endbr32" true (List.length (Linear.endbr_addrs sweep) > 0)

let test_setjmp_endbr_after_call () =
  let p =
    base_prog
      [ Ir.func "main" [ Ir.Compute 2; Ir.Indirect_return_call "setjmp"; Ir.Compute 2 ] ]
  in
  let res, reader = compile p in
  let sweep = Linear.sweep_text reader in
  (* Find the call to setjmp's PLT entry; the next instruction must be an
     end-branch (Fig. 2a). *)
  let plt = Core.Parse.plt reader in
  let site =
    List.find
      (fun (_, _, target) -> Core.Parse.plt_name plt target = Some "setjmp")
      (Linear.call_sites sweep)
  in
  let _, ret_addr, _ = site in
  check Alcotest.bool "endbr after setjmp call" true (List.mem ret_addr (endbr_set reader));
  (* And it is not a function entry. *)
  check Alcotest.bool "not an entry" false (List.mem_assoc ret_addr (List.map (fun (a, b) -> (b, a)) res.Link.truth))

let test_landing_pad_after_ret () =
  let p =
    base_prog ~lang:Ir.Cpp
      [
        Ir.func "main"
          [ Ir.Compute 2; Ir.Try_catch ([ Ir.Call (Ir.Import "printf") ], [ [ Ir.Compute 1 ] ]) ];
      ]
  in
  let res, reader = compile p in
  let lps = Core.Parse.landing_pads reader in
  check Alcotest.int "one landing pad" 1 (List.length lps);
  let lp = List.hd lps in
  (* The pad starts with an end-branch... *)
  check Alcotest.bool "endbr at pad" true (List.mem lp (endbr_set reader));
  (* ...and lives inside main's fragment, past its entry (Fig. 2b). *)
  let main_start, main_end =
    let _, s, e = List.find (fun (n, _, _) -> n = "main") res.Link.fragment_extents in
    (s, e)
  in
  check Alcotest.bool "pad inside main fragment" true (lp > main_start && lp < main_end)

let test_switch_notrack () =
  let p =
    base_prog
      [ Ir.func "main" [ Ir.Switch [ [ Ir.Compute 1 ]; [ Ir.Compute 1 ]; [ Ir.Compute 1 ]; [ Ir.Compute 1 ]; [ Ir.Compute 1 ] ] ] ]
  in
  List.iter
    (fun arch ->
      let opts = { O.default with arch } in
      let _, reader = compile ~opts p in
      let sweep = Linear.sweep_text reader in
      let notrack =
        Array.exists
          (fun (i : Dec.ins) ->
            match i.kind with Dec.Jmp_indirect { notrack = true; _ } -> true | _ -> false)
          sweep.insns
      in
      check Alcotest.bool "notrack switch jump" true notrack;
      (* Case labels must NOT carry end-branches. *)
      let endbrs = List.length (endbr_set reader) in
      check Alcotest.bool "no endbr per case" true (endbrs <= 3))
    [ Arch.X64; Arch.X86 ]

(* ------------------------------------------------------------------ *)
(* Tail calls and splitting                                           *)
(* ------------------------------------------------------------------ *)

let tail_prog =
  base_prog
    [
      Ir.func "main" [ Ir.Compute 1; Ir.Tail_call_site "tgt"; Ir.Compute 1 ];
      Ir.func "tgt" [ Ir.Compute 2 ];
    ]

let jmp_targets reader =
  Linear.jmp_targets (Linear.sweep_text reader)

let test_tail_call_by_opt_level () =
  let res2, reader2 = compile ~opts:{ O.default with opt = O.O2 } tail_prog in
  check Alcotest.bool "O2 jmp to target" true
    (List.mem (truth_addr res2 "tgt") (jmp_targets reader2));
  let res0, reader0 = compile ~opts:{ O.default with opt = O.O0 } tail_prog in
  check Alcotest.bool "O0 no tail jmp" false
    (List.mem (truth_addr res0 "tgt") (jmp_targets reader0));
  (* At O0 the degraded form is a direct call. *)
  let sweep0 = Linear.sweep_text reader0 in
  check Alcotest.bool "O0 calls target" true
    (List.mem (truth_addr res0 "tgt") (Linear.call_targets sweep0))

let split_prog =
  base_prog
    [
      Ir.func "main" [ Ir.Call (Ir.Local "f"); Ir.Call (Ir.Local "g") ];
      Ir.func ~fate:(Ir.Split_cold [ Ir.Compute 4 ]) "f" [ Ir.Compute 2 ];
      Ir.func ~fate:(Ir.Split_part { shared_jump = false; part_body = [ Ir.Compute 4 ] }) "g"
        [ Ir.Compute 2 ];
    ]

let frag_names res = List.map (fun (n, _, _) -> n) res.Link.fragment_extents

let test_split_gcc_o2 () =
  let res, reader = compile ~opts:{ O.default with opt = O.O2 } split_prog in
  check Alcotest.bool "cold fragment" true (List.mem "f.cold" (frag_names res));
  check Alcotest.bool "part fragment" true (List.mem "g.part.0" (frag_names res));
  (* Fragments carry symbols but are not ground truth. *)
  check Alcotest.bool "cold not in truth" false (List.mem_assoc "f.cold" res.Link.truth);
  let syms = Cet_eval.Ground_truth.from_symbols reader in
  check Alcotest.bool "cold symbol filtered" false (List.mem_assoc "f.cold" syms);
  let all_syms = Reader.symbols reader in
  check Alcotest.bool "cold symbol present in symtab" true
    (List.exists (fun (s : Cet_elf.Symbol.t) -> s.name = "f.cold") all_syms);
  (* The part is reached by a direct call. *)
  let part_addr =
    let _, s, _ = List.find (fun (n, _, _) -> n = "g.part.0") res.Link.fragment_extents in
    s
  in
  let sweep = Linear.sweep_text reader in
  check Alcotest.bool "part direct-called" true
    (List.mem part_addr (Linear.call_targets sweep))

let test_no_split_clang_or_low_opt () =
  let res, _ = compile ~opts:{ O.default with compiler = O.Clang; opt = O.O3 } split_prog in
  check Alcotest.bool "clang: no cold" false (List.mem "f.cold" (frag_names res));
  let res, _ = compile ~opts:{ O.default with opt = O.O1 } split_prog in
  check Alcotest.bool "O1: no part" false (List.mem "g.part.0" (frag_names res))

(* ------------------------------------------------------------------ *)
(* FDE emission and PLT                                               *)
(* ------------------------------------------------------------------ *)

let test_fde_rules () =
  let count_fdes reader =
    match Reader.find_section reader ".eh_frame" with
    | None -> 0
    | Some s -> List.length (Cet_eh.Eh_frame.decode ~vaddr:s.vaddr s.data)
  in
  (* GCC: every fragment gets an FDE, including splits. *)
  let res, reader = compile ~opts:{ O.default with opt = O.O2 } split_prog in
  check Alcotest.int "gcc fdes = fragments" (List.length res.Link.fragment_extents)
    (count_fdes reader);
  (* Clang x86 C: no FDEs. *)
  let _, reader =
    compile ~opts:{ O.default with compiler = O.Clang; arch = Arch.X86 } split_prog
  in
  check Alcotest.int "clang x86 C: none" 0 (count_fdes reader);
  (* Clang x64 C: full coverage. *)
  let res, reader = compile ~opts:{ O.default with compiler = O.Clang } split_prog in
  check Alcotest.int "clang x64 C: all" (List.length res.Link.fragment_extents)
    (count_fdes reader)

let test_plt_resolution () =
  let p =
    base_prog
      [ Ir.func "main" [ Ir.Call (Ir.Import "printf"); Ir.Call (Ir.Import "malloc") ] ]
  in
  let res, reader = compile p in
  let plt = Core.Parse.plt reader in
  List.iter
    (fun name ->
      let addr = List.assoc name res.Link.plt_entries in
      check Alcotest.(option string) ("plt " ^ name) (Some name) (Core.Parse.plt_name plt addr))
    [ "printf"; "malloc"; "__libc_start_main" ];
  check Alcotest.bool "in_plt" true (Core.Parse.in_plt plt (List.assoc "printf" res.Link.plt_entries))

let test_entry_is_start () =
  let res, reader = compile endbr_prog in
  check Alcotest.int "entry" (truth_addr res "_start") (Reader.entry reader)

let test_x86_pie_thunk () =
  let p =
    base_prog
      [ Ir.func "main" [ Ir.Store_fn_pointer "cb" ]; Ir.func ~address_taken:true "cb" [] ]
  in
  let opts = { O.default with arch = Arch.X86; pie = true } in
  let res, reader = compile ~opts p in
  (* The ax thunk exists in the ground truth but has no symbol (§V-A1). *)
  check Alcotest.bool "thunk in truth" true
    (List.mem_assoc "__x86.get_pc_thunk.ax" res.Link.truth);
  let syms = Reader.symbols reader in
  check Alcotest.bool "thunk symbol omitted" false
    (List.exists (fun (s : Cet_elf.Symbol.t) -> s.name = "__x86.get_pc_thunk.ax") syms);
  (* The bx thunk, used by regular functions, does carry a symbol. *)
  check Alcotest.bool "bx thunk symbol" true
    (List.exists (fun (s : Cet_elf.Symbol.t) -> s.name = "__x86.get_pc_thunk.bx") syms)

let test_dwarf_ground_truth () =
  (* The paper's GT pipeline: DWARF subprograms, fragments filtered, equals
     the symbol-based view and the compiler's own list. *)
  let res, reader = compile ~opts:{ O.default with opt = O.O2 } split_prog in
  let dw = Cet_eval.Ground_truth.from_dwarf reader in
  let syms = Cet_eval.Ground_truth.from_symbols reader in
  check Alcotest.(list int) "dwarf = symbols"
    (Cet_eval.Ground_truth.addresses syms)
    (Cet_eval.Ground_truth.addresses dw);
  check Alcotest.(list int) "dwarf = compiler truth"
    (Cet_eval.Ground_truth.addresses res.Link.truth)
    (Cet_eval.Ground_truth.addresses dw);
  (* .cold carries a DIE but is filtered. *)
  check Alcotest.bool "cold filtered" false (List.mem_assoc "f.cold" dw);
  (* Stripping removes the debug sections entirely. *)
  let stripped = Reader.read (Cet_elf.Writer.write ~strip:true res.Link.image) in
  check Alcotest.bool "debug_info stripped" true
    (Reader.find_section stripped ".debug_info" = None);
  check Alcotest.(list (pair string int)) "no dwarf GT after strip" []
    (Cet_eval.Ground_truth.from_dwarf stripped)

let test_truth_matches_symbols_plus_corrections () =
  (* For configurations without the omitted thunk, symtab-derived ground
     truth equals the compiler's own entry list. *)
  let res, reader = compile ~opts:{ O.default with opt = O.O2 } split_prog in
  let from_syms = Cet_eval.Ground_truth.addresses (Cet_eval.Ground_truth.from_symbols reader) in
  let from_compiler = Cet_eval.Ground_truth.addresses res.Link.truth in
  check Alcotest.(list int) "truth = filtered symbols" from_compiler from_syms

let test_text_sweep_clean () =
  (* Linear sweep over generated .text must never resynchronise: compilers
     do not embed data in .text (§IV-B). *)
  List.iter
    (fun opts ->
      let _, reader = compile ~opts split_prog in
      let sweep = Linear.sweep_text reader in
      check Alcotest.int (O.to_string opts ^ " resyncs") 0 sweep.resync_errors)
    O.all_grid

let suite =
  [
    ( "compiler.options",
      [
        Alcotest.test_case "grid size" `Quick test_grid_size;
        Alcotest.test_case "per-level flags" `Quick test_option_flags;
      ] );
    ( "compiler.ir",
      [
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "missing main" `Quick test_validate_no_main;
        Alcotest.test_case "unknown callee" `Quick test_validate_unknown_callee;
        Alcotest.test_case "address of non-taken" `Quick test_validate_addr_of_non_taken;
        Alcotest.test_case "try/catch in C" `Quick test_validate_try_in_c;
        Alcotest.test_case "duplicate names" `Quick test_validate_duplicate;
        Alcotest.test_case "jump to missing part" `Quick test_validate_part_jump;
        Alcotest.test_case "collect_imports" `Quick test_collect_imports;
      ] );
    ( "compiler.endbr",
      [
        Alcotest.test_case "entry rules" `Quick test_endbr_rules;
        Alcotest.test_case "-fcf-protection=none" `Quick test_cf_protection_none;
        Alcotest.test_case "-mmanual-endbr" `Quick test_cf_protection_manual;
        Alcotest.test_case "endbr32 on x86" `Quick test_endbr32_on_x86;
        Alcotest.test_case "endbr after setjmp call" `Quick test_setjmp_endbr_after_call;
        Alcotest.test_case "landing pad placement" `Quick test_landing_pad_after_ret;
        Alcotest.test_case "notrack switch" `Quick test_switch_notrack;
      ] );
    ( "compiler.shape",
      [
        Alcotest.test_case "tail call by opt level" `Quick test_tail_call_by_opt_level;
        Alcotest.test_case "gcc O2 splitting" `Quick test_split_gcc_o2;
        Alcotest.test_case "no splitting (clang / low opt)" `Quick test_no_split_clang_or_low_opt;
        Alcotest.test_case "fde emission rules" `Quick test_fde_rules;
        Alcotest.test_case "plt name resolution" `Quick test_plt_resolution;
        Alcotest.test_case "entry point" `Quick test_entry_is_start;
        Alcotest.test_case "x86 pie thunk corner case" `Quick test_x86_pie_thunk;
        Alcotest.test_case "dwarf ground truth" `Quick test_dwarf_ground_truth;
        Alcotest.test_case "truth = corrected symbols" `Quick test_truth_matches_symbols_plus_corrections;
        Alcotest.test_case "sweep never resyncs (24 configs)" `Quick test_text_sweep_clean;
      ] );
  ]
