(* Tests for cet_corpus: the program sampler and dataset builder. *)

module Ir = Cet_compiler.Ir
module O = Cet_compiler.Options
module Profile = Cet_corpus.Profile
module Generator = Cet_corpus.Generator
module Dataset = Cet_corpus.Dataset

let check = Alcotest.check

let small_profile =
  {
    Profile.coreutils with
    Profile.suite = "micro";
    programs = 2;
    funcs_lo = 30;
    funcs_hi = 60;
  }

let test_generator_deterministic () =
  let a = Generator.program ~seed:5 ~profile:small_profile ~index:0 in
  let b = Generator.program ~seed:5 ~profile:small_profile ~index:0 in
  check Alcotest.bool "identical" true (a = b)

let test_generator_seed_sensitivity () =
  let a = Generator.program ~seed:5 ~profile:small_profile ~index:0 in
  let b = Generator.program ~seed:6 ~profile:small_profile ~index:0 in
  check Alcotest.bool "differ" true (a <> b)

let test_generator_index_sensitivity () =
  let a = Generator.program ~seed:5 ~profile:small_profile ~index:0 in
  let b = Generator.program ~seed:5 ~profile:small_profile ~index:1 in
  check Alcotest.bool "differ" true (a <> b)

let test_generator_valid () =
  for index = 0 to 9 do
    let p = Generator.program ~seed:11 ~profile:small_profile ~index in
    match Ir.validate p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "program %d invalid: %s" index e
  done

let test_generator_size_bounds () =
  for index = 0 to 4 do
    let p = Generator.program ~seed:3 ~profile:small_profile ~index in
    let n = List.length p.Ir.funcs in
    if n < small_profile.Profile.funcs_lo || n > small_profile.Profile.funcs_hi then
      Alcotest.failf "function count %d out of bounds" n
  done

let test_generator_has_main () =
  let p = Generator.program ~seed:1 ~profile:small_profile ~index:0 in
  check Alcotest.bool "main exists" true
    (List.exists (fun f -> f.Ir.name = "main") p.Ir.funcs)

let test_lang_split () =
  let cpp_profile = { small_profile with Profile.lang_cpp_fraction = 1.0 } in
  let p = Generator.program ~seed:1 ~profile:cpp_profile ~index:0 in
  check Alcotest.bool "cpp" true (p.Ir.lang = Ir.Cpp);
  let c_profile = { small_profile with Profile.lang_cpp_fraction = 0.0 } in
  let p = Generator.program ~seed:1 ~profile:c_profile ~index:0 in
  check Alcotest.bool "c" true (p.Ir.lang = Ir.C)

let test_class_proportions () =
  (* On a large sample, the share of static functions without an
     end-branch-granting property must approximate Figure 3's ~11%. *)
  let profile = { small_profile with Profile.funcs_lo = 400; funcs_hi = 400 } in
  let total = ref 0 and endbr = ref 0 in
  for index = 0 to 9 do
    let p = Generator.program ~seed:21 ~profile ~index in
    List.iter
      (fun (f : Ir.func) ->
        incr total;
        if (f.linkage = Ir.Exported || f.address_taken) && not f.no_endbr then incr endbr)
      p.Ir.funcs
  done;
  let share = float_of_int !endbr /. float_of_int !total in
  if share < 0.85 || share > 0.93 then
    Alcotest.failf "endbr-eligible share %.3f outside [0.85, 0.93]" share

let test_dead_functions_unreferenced () =
  let p = Generator.program ~seed:9 ~profile:small_profile ~index:0 in
  let dead = List.filter (fun f -> f.Ir.dead) p.Ir.funcs in
  let refs =
    List.concat_map
      (fun (f : Ir.func) ->
        List.filter_map
          (fun s ->
            match s with
            | Ir.Call (Ir.Local n) | Ir.Tail_call_site n | Ir.Call_via_pointer n
            | Ir.Store_fn_pointer n ->
              Some n
            | _ -> None)
          (Ir.func_stmts f))
      p.Ir.funcs
  in
  List.iter
    (fun (d : Ir.func) ->
      check Alcotest.bool ("dead " ^ d.name ^ " unreferenced") false (List.mem d.name refs))
    dead

let test_dataset_count () =
  let profiles = [ small_profile ] in
  let configs = [ O.default; { O.default with opt = O.O0 } ] in
  check Alcotest.int "count" 4 (Dataset.count ~profiles ~configs ~scale:1.0 ());
  let seen = ref 0 in
  Dataset.iter ~profiles ~configs ~seed:1 ~scale:1.0 (fun _ -> incr seen);
  check Alcotest.int "iterated" 4 !seen

let test_dataset_binary_integrity () =
  let profiles = [ small_profile ] in
  let configs = [ O.default ] in
  Dataset.iter ~profiles ~configs ~seed:1 ~scale:1.0 (fun b ->
      let stripped = Cet_elf.Reader.read b.Dataset.stripped in
      let unstripped = Cet_elf.Reader.read b.Dataset.unstripped in
      check Alcotest.int "stripped has no symtab" 0
        (List.length (Cet_elf.Reader.symbols stripped));
      check Alcotest.bool "unstripped has symtab" true
        (List.length (Cet_elf.Reader.symbols unstripped) > 0);
      check Alcotest.bool "cet" true (Cet_elf.Reader.cet_enabled stripped);
      (* ground truth = corrected symbols of the unstripped twin *)
      let sym_truth =
        Cet_eval.Ground_truth.addresses (Cet_eval.Ground_truth.from_symbols unstripped)
      in
      let compiler_truth = Cet_eval.Ground_truth.addresses b.Dataset.truth in
      (* symbols may omit the pc-thunk; every symbol entry must be truth *)
      List.iter
        (fun a -> check Alcotest.bool "symbol in truth" true (List.mem a compiler_truth))
        sym_truth)

let test_plan_matches_iter () =
  (* Concatenating nth 0 .. length-1 must reproduce the iter stream
     exactly — same binaries, same order — so workers materializing plan
     items independently see the corpus the sequential driver sees. *)
  let configs = [ O.default; { O.default with O.compiler = O.Clang } ] in
  let streamed = ref [] in
  Dataset.iter ~profiles:[ small_profile ] ~configs ~seed:11 ~scale:1.0 (fun b ->
      streamed := b :: !streamed);
  let streamed = List.rev !streamed in
  let plan = Dataset.plan ~profiles:[ small_profile ] ~configs ~seed:11 ~scale:1.0 () in
  check Alcotest.int "length" small_profile.Profile.programs (Dataset.length plan);
  check Alcotest.int "binaries" (List.length streamed) (Dataset.binaries plan);
  let planned =
    List.concat_map (Dataset.nth plan) (List.init (Dataset.length plan) Fun.id)
  in
  check Alcotest.bool "identical stream" true (streamed = planned);
  (* nth is pure: re-materializing an item yields the same binaries. *)
  check Alcotest.bool "nth pure" true (Dataset.nth plan 1 = Dataset.nth plan 1)

let test_scaled () =
  let p = Profile.scaled 0.5 Profile.coreutils in
  check Alcotest.int "programs halved" 54 p.Profile.programs;
  check Alcotest.int "funcs preserved" Profile.coreutils.Profile.funcs_lo p.Profile.funcs_lo

let suite =
  [
    ( "corpus",
      [
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_sensitivity;
        Alcotest.test_case "index sensitivity" `Quick test_generator_index_sensitivity;
        Alcotest.test_case "always valid" `Quick test_generator_valid;
        Alcotest.test_case "size bounds" `Quick test_generator_size_bounds;
        Alcotest.test_case "has main" `Quick test_generator_has_main;
        Alcotest.test_case "language split" `Quick test_lang_split;
        Alcotest.test_case "class proportions" `Slow test_class_proportions;
        Alcotest.test_case "dead functions unreferenced" `Quick test_dead_functions_unreferenced;
        Alcotest.test_case "dataset count/iterate" `Quick test_dataset_count;
        Alcotest.test_case "dataset binary integrity" `Quick test_dataset_binary_integrity;
        Alcotest.test_case "plan/nth matches iter" `Quick test_plan_matches_iter;
        Alcotest.test_case "profile scaling" `Quick test_scaled;
      ] );
  ]
