(* Tests for the baseline identifier models (FETCH-, Ghidra-, IDA-like). *)

module Arch = Cet_x86.Arch
module O = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module Link = Cet_compiler.Link
module Reader = Cet_elf.Reader
module Linear = Cet_disasm.Linear

let check = Alcotest.check

let base_prog ?(lang = Ir.C) funcs =
  { Ir.prog_name = "t"; lang; funcs; extra_imports = [] }

let compile ?(opts = O.default) prog =
  let res = Link.link opts prog in
  (res, Reader.read (Cet_elf.Writer.write ~strip:true res.image))

let truth_addrs (res : Link.result) = List.sort_uniq compare (List.map snd res.truth)

let prog =
  base_prog
    [
      Ir.func "main" [ Ir.Compute 2; Ir.Call (Ir.Local "a"); Ir.Call (Ir.Local "b") ];
      Ir.func "a" [ Ir.Compute 2; Ir.Call (Ir.Local "b") ];
      Ir.func ~linkage:Ir.Static "b" [ Ir.Compute 1 ];
      (* reachable only through a function pointer *)
      Ir.func ~address_taken:true "cb" [ Ir.Compute 2 ];
      Ir.func ~linkage:Ir.Static "store" [ Ir.Store_fn_pointer "cb" ];
      Ir.func "use_store" [ Ir.Call (Ir.Local "store") ];
    ]

(* main must call use_store so the pointer store is reachable *)
let prog =
  {
    prog with
    Ir.funcs =
      List.map
        (fun (f : Ir.func) ->
          if f.name = "main" then { f with body = f.body @ [ Ir.Call (Ir.Local "use_store") ] }
          else f)
        prog.Ir.funcs;
  }

(* ------------------------------------------------------------------ *)
(* Shared passes                                                      *)
(* ------------------------------------------------------------------ *)

let test_fde_starts () =
  let res, reader = compile prog in
  let starts = Cet_baselines.Common.fde_starts reader in
  (* GCC: one FDE per fragment, so every truth entry has one. *)
  List.iter
    (fun a -> check Alcotest.bool "fde covers entry" true (List.mem a starts))
    (truth_addrs res)

let test_explore_reaches_called () =
  let res, reader = compile prog in
  let sweep = Linear.sweep_text reader in
  let entry = Reader.entry reader in
  let main = List.assoc "main" res.Link.truth in
  let ex = Cet_baselines.Common.explore sweep ~roots:[ entry; main ] in
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " reached") true
        (List.mem (List.assoc n res.Link.truth) ex.Cet_baselines.Common.e_functions))
    [ "a"; "b"; "store"; "use_store" ];
  (* The pointer-only callee is not reachable by traversal. *)
  check Alcotest.bool "cb not reached" false
    (List.mem (List.assoc "cb" res.Link.truth) ex.Cet_baselines.Common.e_functions)

let test_entry_main_root () =
  List.iter
    (fun opts ->
      let res, reader = compile ~opts prog in
      let sweep = Linear.sweep_text reader in
      let root = Cet_baselines.Common.entry_main_root sweep ~entry:(Reader.entry reader) in
      check (Alcotest.option Alcotest.int)
        ("main root " ^ O.to_string opts)
        (Some (List.assoc "main" res.Link.truth))
        root)
    [ O.default; { O.default with arch = Arch.X86; pie = false } ]

let test_stack_height_finds_tail () =
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Compute 1; Ir.Tail_call_site "tgt" ];
        Ir.func ~linkage:Ir.Static "tgt" [ Ir.Compute 1 ];
      ]
  in
  let opts = { O.default with opt = O.O2 } in
  let res, reader = compile ~opts p in
  let sweep = Linear.sweep_text reader in
  let main = List.assoc "main" res.Link.truth in
  let tgt = List.assoc "tgt" res.Link.truth in
  let targets =
    Cet_baselines.Common.stack_height_tail_targets sweep
      ~extents:[ (main, tgt) ] ~passes:2
  in
  check Alcotest.bool "tail target found" true (List.mem tgt targets)

(* ------------------------------------------------------------------ *)
(* FETCH-like                                                         *)
(* ------------------------------------------------------------------ *)

let test_fetch_gcc_full_recall () =
  let res, reader = compile prog in
  let found = Cet_baselines.Fetch.analyze ~passes:2 reader in
  List.iter
    (fun a -> check Alcotest.bool "found" true (List.mem a found))
    (truth_addrs res)

let test_fetch_clang_x86_c_collapse () =
  (* Clang emits no FDEs for x86 C code: FETCH finds nothing (§V-C). *)
  let opts = { O.default with compiler = O.Clang; arch = Arch.X86 } in
  let _, reader = compile ~opts prog in
  check Alcotest.(list int) "nothing" [] (Cet_baselines.Fetch.analyze ~passes:2 reader)

let test_fetch_fragment_fp () =
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Call (Ir.Local "g") ];
        Ir.func ~fate:(Ir.Split_part { shared_jump = false; part_body = [ Ir.Compute 3 ] }) "g"
          [ Ir.Compute 1 ];
      ]
  in
  let opts = { O.default with opt = O.O2 } in
  let res, reader = compile ~opts p in
  let part_addr =
    let _, s, _ = List.find (fun (n, _, _) -> n = "g.part.0") res.Link.fragment_extents in
    s
  in
  let found = Cet_baselines.Fetch.analyze ~passes:2 reader in
  (* GCC records FDEs for .part fragments, so FETCH reports them. *)
  check Alcotest.bool "part FP" true (List.mem part_addr found)

(* ------------------------------------------------------------------ *)
(* Ghidra-like                                                        *)
(* ------------------------------------------------------------------ *)

let test_ghidra_x64_full_recall () =
  let res, reader = compile prog in
  let found = Cet_baselines.Ghidra_like.analyze reader in
  List.iter
    (fun a -> check Alcotest.bool "found" true (List.mem a found))
    (truth_addrs res)

let test_ghidra_clang_x86_degraded () =
  let opts = { O.default with compiler = O.Clang; arch = Arch.X86; pie = false } in
  let res, reader = compile ~opts prog in
  let found = Cet_baselines.Ghidra_like.analyze reader in
  let truth = truth_addrs res in
  let m = Cet_eval.Metrics.compare_sets ~truth ~found in
  check Alcotest.bool "misses something" true (m.Cet_eval.Metrics.fn > 0)

(* ------------------------------------------------------------------ *)
(* IDA-like                                                           *)
(* ------------------------------------------------------------------ *)

let test_ida_reaches_call_graph () =
  let res, reader = compile prog in
  let found = Cet_baselines.Ida_like.analyze reader in
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " found") true
        (List.mem (List.assoc n res.Link.truth) found))
    [ "main"; "a"; "b" ]

let test_ida_misses_pointer_only_x86_pie () =
  (* On x86 PIE, address immediates are ambiguous: IDA cannot find the
     pointer-only callee (96% of its FNs per §V-C). *)
  let opts = { O.default with arch = Arch.X86; pie = true; opt = O.O2 } in
  let res, reader = compile ~opts prog in
  let found = Cet_baselines.Ida_like.analyze reader in
  let cb = List.assoc "cb" res.Link.truth in
  check Alcotest.bool "cb missed" false (List.mem cb found)

let test_ida_lea_refs_x64 () =
  (* On x86-64, RIP-relative lea references are unambiguous and recovered. *)
  let opts = { O.default with opt = O.O2 } in
  let res, reader = compile ~opts prog in
  let found = Cet_baselines.Ida_like.analyze reader in
  let cb = List.assoc "cb" res.Link.truth in
  check Alcotest.bool "cb found via lea" true (List.mem cb found)

let test_tools_vs_funseeker () =
  (* The headline comparison: on CET binaries FunSeeker dominates every
     baseline's recall. *)
  let res, reader = compile ~opts:{ O.default with opt = O.O2 } prog in
  let truth = truth_addrs res in
  let recall found =
    Cet_eval.Metrics.recall (Cet_eval.Metrics.compare_sets ~truth ~found)
  in
  let fs = recall (Core.Funseeker.analyze reader).Core.Funseeker.functions in
  check Alcotest.bool "fs >= ida" true (fs >= recall (Cet_baselines.Ida_like.analyze reader));
  check Alcotest.bool "fs >= ghidra" true
    (fs >= recall (Cet_baselines.Ghidra_like.analyze reader));
  check Alcotest.bool "fs >= fetch" true
    (fs >= recall (Cet_baselines.Fetch.analyze ~passes:2 reader))

(* ------------------------------------------------------------------ *)
(* ByteWeight-like and Nucleus-like (SSVII-B comparators)             *)
(* ------------------------------------------------------------------ *)

let corpus_build ?(opts = O.default) ~seed index =
  let profile = { Cet_corpus.Profile.coreutils with Cet_corpus.Profile.programs = 8 } in
  let ir = Cet_corpus.Generator.program ~seed ~profile ~index in
  let res = Link.link opts ir in
  ( Reader.read (Cet_elf.Writer.write ~strip:true res.image),
    List.sort_uniq compare (List.map snd res.truth) )

let test_byteweight_learns () =
  let train = List.init 4 (fun i -> corpus_build ~seed:31 i) in
  let model = Cet_baselines.Byteweight.train train in
  let reader, truth = corpus_build ~seed:31 5 in
  let found = Cet_baselines.Byteweight.classify model reader in
  let m = Cet_eval.Metrics.compare_sets ~truth ~found in
  if Cet_eval.Metrics.recall m < 70.0 then
    Alcotest.failf "recall %.1f too low for in-distribution" (Cet_eval.Metrics.recall m);
  if Cet_eval.Metrics.precision m < 60.0 then
    Alcotest.failf "precision %.1f too low" (Cet_eval.Metrics.precision m)

let test_byteweight_score_monotone () =
  (* An untrained model is uninformative. *)
  let model = Cet_baselines.Byteweight.train [] in
  check (Alcotest.float 1e-9) "prior" 0.5
    (Cet_baselines.Byteweight.score model "\xf3\x0f\x1e\xfa" ~off:0)

let test_byteweight_empty_model_finds_nothing () =
  let model = Cet_baselines.Byteweight.train [] in
  let reader, _ = corpus_build ~seed:31 0 in
  check Alcotest.(list int) "nothing above prior" []
    (Cet_baselines.Byteweight.classify model reader)

let test_nucleus_on_c () =
  let reader, truth = corpus_build ~seed:31 2 in
  let found = Cet_baselines.Nucleus_like.analyze reader in
  let m = Cet_eval.Metrics.compare_sets ~truth ~found in
  if Cet_eval.Metrics.recall m < 95.0 then
    Alcotest.failf "nucleus recall %.1f too low on C" (Cet_eval.Metrics.recall m);
  if Cet_eval.Metrics.precision m < 90.0 then
    Alcotest.failf "nucleus precision %.1f too low on C" (Cet_eval.Metrics.precision m)

let test_nucleus_landing_pad_fps () =
  (* On C++ binaries, landing pads have no intra-procedural predecessor:
     Nucleus reports them as functions (a pre-CET blind spot FunSeeker's
     FILTERENDBR closes). *)
  let p =
    base_prog ~lang:Ir.Cpp
      [
        Ir.func "main"
          [ Ir.Try_catch ([ Ir.Call (Ir.Import "printf") ], [ [ Ir.Compute 1 ] ]) ];
      ]
  in
  let res, reader = compile p in
  let truth = truth_addrs res in
  let found = Cet_baselines.Nucleus_like.analyze reader in
  let m = Cet_eval.Metrics.compare_sets ~truth ~found in
  check Alcotest.bool "landing pad FP" true (m.Cet_eval.Metrics.fp > 0);
  let lps = Core.Parse.landing_pads reader in
  List.iter
    (fun lp -> check Alcotest.bool "pad reported" true (List.mem lp found))
    lps

let test_nucleus_no_tail_merge () =
  (* A tail call target that is also direct-called elsewhere must not be
     swallowed into the caller's component. *)
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Compute 1; Ir.Tail_call_site "tgt" ];
        Ir.func "other" [ Ir.Call (Ir.Local "tgt") ];
        Ir.func ~linkage:Ir.Static "tgt" [ Ir.Compute 2 ];
        Ir.func "keep" [ Ir.Call (Ir.Local "other") ];
      ]
  in
  let opts = { O.default with opt = O.O2 } in
  let res, reader = compile ~opts p in
  let found = Cet_baselines.Nucleus_like.analyze reader in
  check Alcotest.bool "tail target found" true
    (List.mem (List.assoc "tgt" res.Link.truth) found)

let suite =
  [
    ( "baselines.common",
      [
        Alcotest.test_case "fde starts" `Quick test_fde_starts;
        Alcotest.test_case "explore reaches call graph" `Quick test_explore_reaches_called;
        Alcotest.test_case "entry main root" `Quick test_entry_main_root;
        Alcotest.test_case "stack height tail targets" `Quick test_stack_height_finds_tail;
      ] );
    ( "baselines.fetch",
      [
        Alcotest.test_case "gcc full recall" `Quick test_fetch_gcc_full_recall;
        Alcotest.test_case "clang x86 C collapse" `Quick test_fetch_clang_x86_c_collapse;
        Alcotest.test_case "fragment FPs" `Quick test_fetch_fragment_fp;
      ] );
    ( "baselines.ghidra",
      [
        Alcotest.test_case "x64 full recall" `Quick test_ghidra_x64_full_recall;
        Alcotest.test_case "clang x86 degraded" `Quick test_ghidra_clang_x86_degraded;
      ] );
    ( "baselines.related_work",
      [
        Alcotest.test_case "byteweight learns" `Quick test_byteweight_learns;
        Alcotest.test_case "byteweight prior" `Quick test_byteweight_score_monotone;
        Alcotest.test_case "byteweight empty model" `Quick test_byteweight_empty_model_finds_nothing;
        Alcotest.test_case "nucleus on C" `Quick test_nucleus_on_c;
        Alcotest.test_case "nucleus landing-pad FPs" `Quick test_nucleus_landing_pad_fps;
        Alcotest.test_case "nucleus tail-call targets" `Quick test_nucleus_no_tail_merge;
      ] );
    ( "baselines.ida",
      [
        Alcotest.test_case "reaches call graph" `Quick test_ida_reaches_call_graph;
        Alcotest.test_case "misses pointer-only (x86 pie)" `Quick test_ida_misses_pointer_only_x86_pie;
        Alcotest.test_case "lea references (x64)" `Quick test_ida_lea_refs_x64;
        Alcotest.test_case "funseeker dominates" `Quick test_tools_vs_funseeker;
      ] );
  ]
