(* Tests for the §VI ARM BTI extension: AArch64 codec, the mini backend's
   BTI placement rules, and the BTI seeker end-to-end. *)

module A64 = Cet_arm64.A64
module AC = Cet_arm64.A64_compile
module Seeker = Cet_arm64.Bti_seeker
module Ir = Cet_compiler.Ir

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t

let word t = Int32.to_int (A64.encode t) land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let test_encode_golden () =
  (* Reference words from the ARMv8-A manual / GNU as. *)
  check Alcotest.int "bti c" 0xD503245F (word (A64.Bti A64.Bti_c));
  check Alcotest.int "bti j" 0xD503249F (word (A64.Bti A64.Bti_j));
  check Alcotest.int "nop" 0xD503201F (word A64.Nop);
  check Alcotest.int "ret" 0xD65F03C0 (word A64.Ret);
  check Alcotest.int "bl +8" 0x94000002 (word (A64.Bl 8));
  check Alcotest.int "b -4" 0x17FFFFFF (word (A64.B (-4)));
  check Alcotest.int "br x16" 0xD61F0200 (word (A64.Br 16));
  check Alcotest.int "blr x16" 0xD63F0200 (word (A64.Blr 16));
  check Alcotest.int "stp x29,x30,[sp,#-16]!" 0xA9BF7BFD (word (A64.Stp_fp_lr 16));
  check Alcotest.int "ldp x29,x30,[sp],#16" 0xA8C17BFD (word (A64.Ldp_fp_lr 16));
  check Alcotest.int "sub sp,sp,#32" 0xD10083FF (word (A64.Sub_sp 32));
  check Alcotest.int "movz x0,#7" 0xD28000E0 (word (A64.Movz (0, 7)))

let test_encode_rejects () =
  let rejects t = try ignore (A64.encode t); false with Invalid_argument _ -> true in
  check Alcotest.bool "unaligned bl" true (rejects (A64.Bl 6));
  check Alcotest.bool "huge branch" true (rejects (A64.B (1 lsl 30)));
  check Alcotest.bool "bad reg" true (rejects (A64.Br 32));
  check Alcotest.bool "adrp non-page" true (rejects (A64.Adrp (0, 4097)))

let decode_one t ~base =
  A64.decode (A64.encode_bytes t) ~base ~off:0

let test_decode_classification () =
  let i = decode_one (A64.Bti A64.Bti_c) ~base:0x1000 in
  check Alcotest.bool "bti c" true (i.kind = A64.K_bti A64.Bti_c);
  let i = decode_one (A64.Bl 0x40) ~base:0x1000 in
  check Alcotest.bool "bl target" true (i.kind = A64.K_call 0x1040);
  let i = decode_one (A64.B (-8)) ~base:0x1000 in
  check Alcotest.bool "b backward" true (i.kind = A64.K_jmp 0xFF8);
  let i = decode_one (A64.Cbnz (3, 0x20)) ~base:0x1000 in
  check Alcotest.bool "cbnz" true (i.kind = A64.K_cond 0x1020);
  let i = decode_one A64.Ret ~base:0 in
  check Alcotest.bool "ret" true (i.kind = A64.K_ret);
  let i = decode_one (A64.Br 17) ~base:0 in
  check Alcotest.bool "br" true (i.kind = A64.K_indirect_jmp);
  let i = decode_one (A64.Blr 16) ~base:0 in
  check Alcotest.bool "blr" true (i.kind = A64.K_indirect_call);
  let i = decode_one (A64.Adrp (0, 0x3000)) ~base:0x1234 in
  check Alcotest.bool "adrp page" true (i.kind = A64.K_adrp 0x4000)

let test_decode_bounds () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check Alcotest.bool "unaligned" true
    (raises (fun () -> A64.decode "\x00\x00\x00\x00\x00" ~base:0 ~off:1));
  check Alcotest.bool "oob" true (raises (fun () -> A64.decode "ab" ~base:0 ~off:0))

let qcheck_branch_roundtrip =
  QCheck.Test.make ~name:"a64 branch displacement roundtrip" ~count:500
    QCheck.(map (fun x -> (x mod 0x100000) * 4) int)
    (fun disp ->
      let base = 0x400000 in
      match (decode_one (A64.Bl disp) ~base).kind with
      | A64.K_call t -> t = base + disp
      | _ -> false)

let test_sweep_walks_words () =
  let blob =
    String.concat ""
      (List.map A64.encode_bytes [ A64.Bti A64.Bti_c; A64.Nop; A64.Ret ])
  in
  let insns = A64.sweep blob ~base:0x100 in
  check Alcotest.int "count" 3 (List.length insns);
  check Alcotest.(list int) "addresses" [ 0x100; 0x104; 0x108 ]
    (List.map (fun (i : A64.ins) -> i.addr) insns)

(* ------------------------------------------------------------------ *)
(* Backend + seeker                                                   *)
(* ------------------------------------------------------------------ *)

let prog =
  {
    Ir.prog_name = "arm";
    lang = Ir.Cpp;
    funcs =
      [
        Ir.func "main"
          [
            Ir.Call (Ir.Local "a");
            Ir.Call_via_pointer "cb";
            Ir.Switch [ [ Ir.Compute 1 ]; [ Ir.Compute 1 ]; [ Ir.Compute 1 ] ];
            Ir.Try_catch ([ Ir.Call (Ir.Import "printf") ], [ [ Ir.Compute 1 ] ]);
          ];
        Ir.func "a" [ Ir.Compute 2 ];
        Ir.func ~linkage:Ir.Static "b" [ Ir.Compute 2 ];
        Ir.func ~linkage:Ir.Static ~address_taken:true "cb" [ Ir.Compute 1 ];
        Ir.func ~linkage:Ir.Static "z" [ Ir.Call (Ir.Local "b") ];
        Ir.func "zz" [ Ir.Call (Ir.Local "z") ];
      ];
    extra_imports = [];
  }

let compile ?(opts = AC.default_opts) p =
  let res = AC.compile opts p in
  (res, Cet_elf.Reader.read (Cet_elf.Writer.write ~strip:true res.image))

let bti_c_addrs reader =
  let text = Option.get (Cet_elf.Reader.find_section reader ".text") in
  List.filter_map
    (fun (i : A64.ins) -> if i.kind = A64.K_bti A64.Bti_c then Some i.addr else None)
    (A64.sweep text.data ~base:text.vaddr)

let test_machine_and_note () =
  let _, reader = compile prog in
  check Alcotest.int "EM_AARCH64" 183 (Cet_elf.Reader.machine reader);
  check Alcotest.bool "no x86 cet note" false (Cet_elf.Reader.cet_enabled reader)

let test_bti_placement () =
  let res, reader = compile prog in
  let cs = bti_c_addrs reader in
  let at name = List.assoc name res.AC.truth in
  check Alcotest.bool "main bti c" true (List.mem (at "main") cs);
  check Alcotest.bool "exported bti c" true (List.mem (at "a") cs);
  check Alcotest.bool "addr-taken bti c" true (List.mem (at "cb") cs);
  check Alcotest.bool "static no bti" false (List.mem (at "b") cs);
  (* Landing pads and switch cases use bti j, never bti c. *)
  let lps = Core.Parse.landing_pads reader in
  check Alcotest.int "one landing pad" 1 (List.length lps);
  List.iter (fun lp -> check Alcotest.bool "lp not bti c" false (List.mem lp cs)) lps

let test_seeker_exact () =
  let res, reader = compile prog in
  let truth = List.sort_uniq compare (List.map snd res.AC.truth) in
  let r = Seeker.analyze reader in
  check Alcotest.(list int) "exact identification" truth r.Seeker.functions;
  check Alcotest.bool "bti j separated" true (r.Seeker.bti_j_total >= 4)

let test_seeker_on_corpus_programs () =
  let profile = { Cet_corpus.Profile.spec with Cet_corpus.Profile.programs = 2 } in
  for index = 0 to 1 do
    let ir = Cet_corpus.Generator.program ~seed:77 ~profile ~index in
    let res, reader = compile ir in
    let truth = List.sort_uniq compare (List.map snd res.AC.truth) in
    let r = Seeker.analyze reader in
    let m = Cet_eval.Metrics.compare_sets ~truth ~found:r.Seeker.functions in
    if Cet_eval.Metrics.recall m < 99.0 then
      Alcotest.failf "program %d recall %.2f too low" index (Cet_eval.Metrics.recall m);
    if Cet_eval.Metrics.precision m < 99.0 then
      Alcotest.failf "program %d precision %.2f too low" index
        (Cet_eval.Metrics.precision m)
  done

let test_legacy_degrades () =
  (* Without BTI markers the seeker falls back to direct-call targets. *)
  let res, reader = compile ~opts:{ AC.bti = false; tail_calls = true } prog in
  let truth = List.sort_uniq compare (List.map snd res.AC.truth) in
  let r = Seeker.analyze reader in
  check Alcotest.int "no markers" 0 r.Seeker.bti_c_total;
  let m = Cet_eval.Metrics.compare_sets ~truth ~found:r.Seeker.functions in
  check Alcotest.bool "recall drops" true (Cet_eval.Metrics.recall m < 100.0)

let suite =
  [
    ( "arm.codec",
      [
        Alcotest.test_case "golden words" `Quick test_encode_golden;
        Alcotest.test_case "invalid operands" `Quick test_encode_rejects;
        Alcotest.test_case "classification" `Quick test_decode_classification;
        Alcotest.test_case "bounds" `Quick test_decode_bounds;
        Alcotest.test_case "sweep" `Quick test_sweep_walks_words;
        qcheck qcheck_branch_roundtrip;
      ] );
    ( "arm.bti",
      [
        Alcotest.test_case "machine / note" `Quick test_machine_and_note;
        Alcotest.test_case "bti placement" `Quick test_bti_placement;
        Alcotest.test_case "seeker exact" `Quick test_seeker_exact;
        Alcotest.test_case "seeker on corpus" `Quick test_seeker_on_corpus_programs;
        Alcotest.test_case "legacy degrades" `Quick test_legacy_degrades;
      ] );
  ]
