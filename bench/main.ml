(* Benchmark harness: one Bechamel test per paper table/figure, the §V-D
   speed comparison (FunSeeker vs FETCH), the DESIGN.md ablations, and
   substrate micro-benchmarks.

   Each table bench measures the per-binary unit of work that the evaluate
   driver aggregates over the whole corpus; the workload binaries are
   representative members of the three suites, compiled once up front. *)

open Bechamel
open Toolkit
module O = Cet_compiler.Options
module Reader = Cet_elf.Reader
module Linear = Cet_disasm.Linear
module FS = Core.Funseeker

(* ------------------------------------------------------------------ *)
(* Workloads                                                          *)
(* ------------------------------------------------------------------ *)

type workload = {
  w_name : string;
  w_reader : Reader.t;
  w_truth : int list;
}

let build_workload ~name ~profile ~index ~opts =
  let ir = Cet_corpus.Generator.program ~seed:2022 ~profile ~index in
  let res = Cet_compiler.Link.link opts ir in
  let bytes = Cet_elf.Writer.write ~strip:true res.image in
  {
    w_name = name;
    w_reader = Reader.read bytes;
    w_truth = List.sort_uniq Int.compare (List.map snd res.truth);
  }

let coreutils_bin =
  build_workload ~name:"coreutils-gcc-x64-O2" ~profile:Cet_corpus.Profile.coreutils
    ~index:3 ~opts:O.default

let spec_bin =
  build_workload ~name:"spec-gcc-x64-O2"
    ~profile:{ Cet_corpus.Profile.spec with Cet_corpus.Profile.lang_cpp_fraction = 1.0 }
    ~index:1 ~opts:O.default

let clang_x86_bin =
  build_workload ~name:"coreutils-clang-x86-O2" ~profile:Cet_corpus.Profile.coreutils
    ~index:3
    ~opts:{ O.default with compiler = O.Clang; arch = Cet_x86.Arch.X86; pie = false }

let micro_corpus_profile =
  {
    Cet_corpus.Profile.coreutils with
    Cet_corpus.Profile.suite = "coreutils";
    programs = 1;
    funcs_lo = 60;
    funcs_hi = 80;
  }

(* ------------------------------------------------------------------ *)
(* Benchmarks                                                         *)
(* ------------------------------------------------------------------ *)

let stage = Staged.stage

(* Table I: classify every end-branch of a SPEC C++ binary. *)
let bench_table1 =
  Test.make ~name:"table1/classify-endbrs(spec)"
    (stage (fun () -> Core.Study.classify_endbrs spec_bin.w_reader ~truth:spec_bin.w_truth))

(* Figure 3: property classes of every ground-truth function. *)
let bench_fig3 =
  Test.make ~name:"fig3/function-props(spec)"
    (stage (fun () -> Core.Study.function_props spec_bin.w_reader ~truth:spec_bin.w_truth))

(* Table II: the four ablation configurations. *)
let bench_table2 =
  List.map
    (fun (i, config) ->
      Test.make
        ~name:(Printf.sprintf "table2/config%d(spec)" i)
        (stage (fun () -> FS.analyze ~config spec_bin.w_reader)))
    [ (1, FS.config1); (2, FS.config2); (3, FS.config3); (4, FS.config4) ]

(* Table III: the four tools on the same binary — the paper's speed
   comparison (§V-D) plus the correctness pipelines. *)
let bench_table3 =
  [
    Test.make ~name:"table3/funseeker(spec)"
      (stage (fun () -> FS.analyze spec_bin.w_reader));
    Test.make ~name:"table3/ida-like(spec)"
      (stage (fun () -> Cet_baselines.Ida_like.analyze spec_bin.w_reader));
    Test.make ~name:"table3/ghidra-like(spec)"
      (stage (fun () -> Cet_baselines.Ghidra_like.analyze spec_bin.w_reader));
    Test.make ~name:"table3/fetch-like(spec)"
      (stage (fun () -> Cet_baselines.Fetch.analyze spec_bin.w_reader));
    Test.make ~name:"table3/funseeker(coreutils)"
      (stage (fun () -> FS.analyze coreutils_bin.w_reader));
    Test.make ~name:"table3/fetch-like(coreutils)"
      (stage (fun () -> Cet_baselines.Fetch.analyze coreutils_bin.w_reader));
    Test.make ~name:"table3/fetch-like(clang-x86)"
      (stage (fun () -> Cet_baselines.Fetch.analyze clang_x86_bin.w_reader));
  ]

(* Ablations called out in DESIGN.md. *)
let bench_ablations =
  [
    (* FILTERENDBR on/off: the §V-B precision lever. *)
    Test.make ~name:"ablation/filter-endbr-off"
      (stage (fun () -> FS.analyze ~config:FS.config1 spec_bin.w_reader));
    Test.make ~name:"ablation/filter-endbr-on"
      (stage (fun () -> FS.analyze ~config:FS.config2 spec_bin.w_reader));
    (* SELECTTAILCALL vs raw jump harvesting. *)
    Test.make ~name:"ablation/jmp-targets-raw"
      (stage (fun () -> FS.analyze ~config:FS.config3 spec_bin.w_reader));
    Test.make ~name:"ablation/jmp-targets-tailcall"
      (stage (fun () -> FS.analyze ~config:FS.config4 spec_bin.w_reader));
    (* FETCH's verification depth (the 5x runtime story). *)
    Test.make ~name:"ablation/fetch-passes-1"
      (stage (fun () -> Cet_baselines.Fetch.analyze ~passes:1 spec_bin.w_reader));
    Test.make ~name:"ablation/fetch-passes-22"
      (stage (fun () -> Cet_baselines.Fetch.analyze ~passes:22 spec_bin.w_reader));
  ]

(* ARM BTI extension (SSVI). *)
let bench_arm =
  let arm_bin =
    let ir =
      Cet_corpus.Generator.program ~seed:2022
        ~profile:{ Cet_corpus.Profile.spec with Cet_corpus.Profile.lang_cpp_fraction = 1.0 }
        ~index:1
    in
    let res = Cet_arm64.A64_compile.compile Cet_arm64.A64_compile.default_opts ir in
    Reader.read (Cet_elf.Writer.write ~strip:true res.Cet_arm64.A64_compile.image)
  in
  [
    Test.make ~name:"extension/bti-seeker(spec-arm64)"
      (stage (fun () -> Cet_arm64.Bti_seeker.analyze arm_bin));
  ]

(* Downstream consumers and the audit. *)
let bench_consumers =
  [
    Test.make ~name:"consumer/cfg-recover(spec)"
      (stage (fun () -> Cet_cfg.Cfg.recover spec_bin.w_reader));
    Test.make ~name:"consumer/ibt-audit(spec)"
      (stage (fun () -> Core.Audit.audit spec_bin.w_reader));
    Test.make ~name:"ablation/anchored-sweep(spec)"
      (stage (fun () -> FS.analyze ~anchored:true spec_bin.w_reader));
  ]

(* Substrates. *)
let bench_substrates =
  let stripped_bytes =
    Cet_elf.Writer.write ~strip:true
      (Cet_compiler.Link.link O.default
         (Cet_corpus.Generator.program ~seed:2022 ~profile:micro_corpus_profile ~index:0))
        .image
  in
  [
    Test.make ~name:"substrate/linear-sweep(spec)"
      (stage (fun () -> Linear.sweep_text spec_bin.w_reader));
    Test.make ~name:"substrate/elf-read"
      (stage (fun () -> Reader.read stripped_bytes));
    Test.make ~name:"substrate/eh-frame-decode(spec)"
      (stage (fun () ->
           match Reader.find_section spec_bin.w_reader ".eh_frame" with
           | Some s -> Cet_eh.Eh_frame.decode ~vaddr:s.vaddr s.data
           | None -> []));
    Test.make ~name:"substrate/compile+link"
      (stage (fun () ->
           Cet_compiler.Link.compile O.default
             (Cet_corpus.Generator.program ~seed:7 ~profile:micro_corpus_profile ~index:0)));
  ]

(* The SWAR prescan kernels themselves, with a memcpy row as the
   throughput yardstick (the human output prints GB/s over the same
   [.text]), so future sweep changes are gated on the kernel and not only
   on the end-to-end analyses that amortise it. *)
let spec_text =
  match Reader.find_section spec_bin.w_reader ".text" with
  | Some s -> s.Reader.data
  | None -> assert false

let bench_kernels =
  let arch = Cet_x86.Arch.X64 in
  [
    Test.make ~name:"kernel/prescan-classes(spec)"
      (stage (fun () -> Cet_disasm.Prescan.classes spec_text));
    Test.make ~name:"kernel/anchor-offsets-swar(spec)"
      (stage (fun () -> Cet_disasm.Prescan.anchor_offsets arch spec_text));
    Test.make ~name:"kernel/anchor-offsets-naive(spec)"
      (stage (fun () -> Linear.anchor_offsets_naive arch spec_text));
    Test.make ~name:"kernel/scan-indexes(spec)"
      (stage (fun () ->
           Cet_disasm.Substrate.indexes (Cet_disasm.Substrate.create spec_bin.w_reader)));
    Test.make ~name:"kernel/memcpy(spec)"
      (stage (fun () -> Bytes.of_string spec_text));
    (* The flight recorder's hot path: a batch of enabled records into the
       per-domain ring.  Enable/disable are single atomic stores, so toggling
       inside the staged function does not perturb the measurement.  Not a
       byte-streaming kernel — no GB/s column. *)
    Test.make ~name:"kernel/journal-record(batch=64)"
      (stage (fun () ->
           let module J = Cet_telemetry.Journal in
           J.enable ();
           for i = 0 to 63 do
             J.record ~v:i J.Diag "bench/journal"
           done;
           J.disable ()));
    (* Raw scheduler overhead: 4096 trivial items through the work-stealing
       pool (create + map + join), so admission, deques and stealing are
       gated independently of the harness rows that amortise them.  Not a
       byte-streaming kernel â no GB/s column. *)
    Test.make ~name:"kernel/work-queue(items=4096)"
      (stage (fun () ->
           let module W = Cet_util.Work_queue in
           let t = W.create (W.config ()) in
           ignore (W.map t 4096 (fun k -> k) : int array)));
  ]

(* The substrate's raison d'être: one binary through FunSeeker and the
   three Table III baselines, with each tool re-deriving every per-binary
   fact (legacy entry points, one fresh substrate per call) vs all four
   sharing one memoised substrate — the harness's per-binary unit. *)
let bench_substrate_sharing =
  let run_tools analyze_fs analyze_ida analyze_ghidra analyze_fetch x =
    ignore (analyze_fs x : FS.result);
    ignore (analyze_ida x : int list);
    ignore (analyze_ghidra x : int list);
    ignore (analyze_fetch x : int list)
  in
  [
    Test.make ~name:"substrate/per-binary-legacy(spec)"
      (stage (fun () ->
           run_tools FS.analyze Cet_baselines.Ida_like.analyze
             Cet_baselines.Ghidra_like.analyze Cet_baselines.Fetch.analyze
             spec_bin.w_reader));
    Test.make ~name:"substrate/per-binary-shared(spec)"
      (stage (fun () ->
           run_tools FS.analyze_st Cet_baselines.Ida_like.analyze_st
             Cet_baselines.Ghidra_like.analyze_st Cet_baselines.Fetch.analyze_st
             (Cet_disasm.Substrate.create spec_bin.w_reader)));
  ]

(* Corpus-level parallelism: the whole evaluation pipeline over a tiny
   corpus, sequential vs one domain per recommended core.  The ratio is
   the perf-trajectory number for the multi-core harness. *)
let bench_parallel_harness =
  let opts =
    { Cet_eval.Harness.default_options with Cet_eval.Harness.seed = 2022; scale = 1.0; timing = false }
  in
  let profiles =
    [ { micro_corpus_profile with Cet_corpus.Profile.programs = 2 } ]
  in
  let jobs = Domain.recommended_domain_count () in
  Test.make ~name:"substrate/parallel-harness(jobs=1)"
    (stage (fun () -> Cet_eval.Harness.run ~profiles ~jobs:1 opts))
  ::
  (* On a single-core host the multi-domain variant would duplicate the
     jobs=1 test name (and its JSON row) verbatim, so it is skipped. *)
  (if jobs <= 1 then []
   else
     [
       Test.make
         ~name:(Printf.sprintf "substrate/parallel-harness(jobs=%d)" jobs)
         (stage (fun () -> Cet_eval.Harness.run ~profiles ~jobs opts));
     ])

(* Telemetry overhead: the same full-FunSeeker unit of work with the span
   registry disabled (the default, the < 2% guard rail) and enabled.
   Enable/disable are single atomic stores, so toggling inside the staged
   function costs nothing against the ms-scale analysis. *)
let bench_telemetry =
  let module Reg = Cet_telemetry.Registry in
  [
    Test.make ~name:"telemetry/funseeker-spans-off(spec)"
      (stage (fun () -> FS.analyze spec_bin.w_reader));
    Test.make ~name:"telemetry/funseeker-spans-on(spec)"
      (stage (fun () ->
           Reg.enable ();
           let r = FS.analyze spec_bin.w_reader in
           Reg.disable ();
           r));
  ]

let all_tests =
  [ bench_table1; bench_fig3 ] @ bench_table2 @ bench_table3 @ bench_ablations
  @ bench_arm @ bench_consumers @ bench_substrates @ bench_kernels
  @ bench_substrate_sharing @ bench_parallel_harness @ bench_telemetry

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

type result = { r_name : string; r_ns : float; r_runs : int }

let run_benchmarks ~quota tests =
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.fold
        (fun name ols acc ->
          let ns =
            match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
          in
          let runs =
            match Hashtbl.find_opt results name with
            | Some (b : Benchmark.t) -> b.stats.samples
            | None -> 0
          in
          { r_name = name; r_ns = ns; r_runs = runs } :: acc)
        analyzed [])
    tests

let human ns =
  if ns >= 1e6 then Printf.sprintf "%9.3f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%9.3f us" (ns /. 1e3)
  else Printf.sprintf "%9.1f ns" ns

(* Machine-readable results for the perf trajectory: one BENCH_<n>.json per
   PR, an array of {name, mean_ns, runs} objects. *)
let write_json path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc "  {\"name\": \"%s\", \"mean_ns\": %.3f, \"runs\": %d}%s\n"
            r.r_name
            (if Float.is_nan r.r_ns then 0.0 else r.r_ns)
            r.r_runs
            (if i = List.length results - 1 then "" else ","))
        results;
      output_string oc "]\n")

let () =
  let json_out = ref None and quota = ref 0.5 and only = ref None in
  let speclist =
    [
      ("--json", Arg.String (fun p -> json_out := Some p), "FILE  also write results as JSON");
      ("--quota", Arg.Set_float quota, "SEC  time budget per benchmark (default 0.5)");
      ( "--only",
        Arg.String (fun s -> only := Some s),
        "SUBSTR  run only benchmarks whose name contains SUBSTR" );
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench [--json FILE] [--quota SEC] [--only SUBSTR]";
  let tests =
    match !only with
    | None -> all_tests
    | Some sub ->
      List.filter
        (fun t ->
          List.exists
            (fun n ->
              let nl = String.length n and sl = String.length sub in
              let rec go i = i + sl <= nl && (String.sub n i sl = sub || go (i + 1)) in
              go 0)
            (Test.names t))
        all_tests
  in
  Printf.printf "FunSeeker reproduction benchmarks (one per table/figure + ablations)\n";
  Printf.printf "workloads: %s (%d fns), %s (%d fns), %s (%d fns)\n\n" coreutils_bin.w_name
    (List.length coreutils_bin.w_truth) spec_bin.w_name (List.length spec_bin.w_truth)
    clang_x86_bin.w_name
    (List.length clang_x86_bin.w_truth);
  let results = run_benchmarks ~quota:!quota tests in
  (* Kernel rows tagged (spec) get a bytes/s column: they all stream the
     same spec [.text], so the throughput is directly comparable to the
     memcpy row.  (journal-record streams no bytes and is excluded.) *)
  let text_bytes = float_of_int (String.length spec_text) in
  let ends_with suffix s =
    let ls = String.length s and lf = String.length suffix in
    ls >= lf && String.sub s (ls - lf) lf = suffix
  in
  List.iter
    (fun r ->
      let throughput =
        if
          String.length r.r_name >= 7
          && String.sub r.r_name 0 7 = "kernel/"
          && ends_with "(spec)" r.r_name
          && r.r_ns > 0.0
        then Printf.sprintf "  %7.2f GB/s" (text_bytes /. r.r_ns)
        else ""
      in
      Printf.printf "  %-38s %s/run  (%d runs)%s\n" r.r_name (human r.r_ns) r.r_runs
        throughput)
    results;
  let find n = List.find_map (fun r -> if r.r_name = n then Some r.r_ns else None) results in
  (* §V-D headline: the FunSeeker / FETCH ratio on FDE-carrying binaries. *)
  (match (find "table3/funseeker(spec)", find "table3/fetch-like(spec)") with
  | Some fs, Some fe ->
    Printf.printf "\nspeedup (spec, per-binary): FunSeeker is %.1fx faster than FETCH-like\n"
      (fe /. fs)
  | _ -> ());
  (match (find "table3/funseeker(coreutils)", find "table3/fetch-like(coreutils)") with
  | Some fs, Some fe -> Printf.printf "speedup (coreutils, per-binary): %.1fx\n" (fe /. fs)
  | _ -> ());
  (* Telemetry's overhead guarantee: disabled spans must be (close to) free. *)
  (match
     ( find "telemetry/funseeker-spans-off(spec)",
       find "telemetry/funseeker-spans-on(spec)" )
   with
  | Some off, Some on_ ->
    Printf.printf "telemetry overhead: spans-on/spans-off = %.3fx\n" (on_ /. off)
  | _ -> ());
  (match !json_out with
  | None -> ()
  | Some path ->
    write_json path results;
    Printf.printf "\nJSON written to %s\n" path);
  Printf.printf "\n(use `evaluate all` to regenerate the full tables over the corpus)\n"
