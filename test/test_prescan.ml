(* Differential tests for the SWAR prescan sweep core (PR 6).

   The byte-at-a-time [Decoder.decode] and the reference sweeps are the
   oracles; the scratch-core [Decoder.scan], the SWAR [anchor_offsets],
   and the rewritten sweeps must agree with them exactly — on random
   bytes, not just well-formed code, because the linear sweep's whole job
   is resynchronising through garbage. *)

module Arch = Cet_x86.Arch
module Decoder = Cet_x86.Decoder
module Linear = Cet_disasm.Linear
module Prescan = Cet_disasm.Prescan

let check = Alcotest.check

let arches = [ ("x64", Arch.X64); ("x86", Arch.X86) ]

(* --- scan vs decode, every offset --------------------------------------- *)

let ins_equal (a : Decoder.ins) (b : Decoder.ins) =
  a.Decoder.addr = b.Decoder.addr && a.Decoder.len = b.Decoder.len
  && a.Decoder.kind = b.Decoder.kind

let scan_agrees arch code =
  let s = Decoder.scratch () in
  let n = String.length code in
  let base = 0x401000 in
  let ok = ref true in
  for off = 0 to n - 1 do
    let scanned = Decoder.scan arch s code ~limit:n ~base ~off in
    (match (scanned, Decoder.decode arch code ~base ~off) with
    | true, Ok ins -> if not (ins_equal ins (Decoder.scratch_ins s)) then ok := false
    | false, Error _ -> ()
    | true, Error _ | false, Ok _ -> ok := false);
    if not !ok then
      QCheck.Test.fail_reportf "scan/decode disagree at off %d in %S" off code
  done;
  true

let test_scan_vs_decode =
  List.map
    (fun (name, arch) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "scan = decode on random bytes (%s)" name)
        ~count:500
        QCheck.(string_of_size Gen.(int_range 0 96))
        (scan_agrees arch))
    arches

(* Directed bytes covering the fiddlier decode arms: every prefix in
   front of every interesting opcode, plus truncations. *)
let directed_bytes =
  let prefixes = [ ""; "\x66"; "\x67"; "\xf3"; "\xf2"; "\x3e"; "\x48"; "\x66\x48" ] in
  let bodies =
    [
      "\x0f\x1e\xfa"; "\x0f\x1e\xfb"; "\x0f\x1e"; "\x0f\x1e\x00";
      "\xe8\x01\x02\x03\x04"; "\xe9\x01\x02\x03\x04"; "\xeb\x7f"; "\xeb\x80";
      "\x0f\x84\x10\x20\x30\x40"; "\x70\x05"; "\xe3\xfe";
      "\xff\x15\x01\x00\x00\x00"; "\xff\x25\x01\x00\x00\x00";
      "\xff\xd0"; "\xff\xe0"; "\xff\x2d\x01\x00\x00\x00";
      "\x8d\x05\x01\x00\x00\x00"; "\x8d\x04\x25\x01\x00\x00\x00";
      "\xb8\x01\x02\x03\x04"; "\x68\x01\x02\x03\x04";
      "\xc3"; "\xc2\x08\x00"; "\xf4"; "\x0f\x05"; "\x0f\x0b";
      "\xf6\xc0\x01"; "\xf7\xc0\x01\x02\x03\x04"; "\xfe\xc0"; "\xfe\xd0";
      "\x8b\x44\x24\x08"; "\x8b\x45\xfc"; "\x8b\x04\x25\x00\x10\x40\x00";
      "\x48\x66\x90"; "\x48\xf3\x0f\x1e\xfa";
      "\x48"; "\x66"; "\x0f"; "";
    ]
  in
  List.concat_map (fun p -> List.map (fun b -> p ^ b) bodies) prefixes

let test_scan_directed () =
  List.iter
    (fun (name, arch) ->
      List.iter
        (fun code ->
          ignore (scan_agrees arch code);
          (* And once more with every byte of trailing padding trimmed, to
             hit the truncation arms. *)
          for len = 0 to String.length code - 1 do
            ignore (scan_agrees arch (String.sub code 0 len))
          done)
        directed_bytes;
      ignore name)
    arches

(* --- code generators ---------------------------------------------------- *)

let endbr arch =
  match arch with Arch.X64 -> "\xf3\x0f\x1e\xfa" | Arch.X86 -> "\xf3\x0f\x1e\xfb"

(* Random bytes with end-branch patterns planted at random positions, so
   the anchored sweep and the anchor scan have real work on every case. *)
let planted_gen arch =
  QCheck.Gen.(
    string_size ~gen:char (int_range 0 160) >>= fun raw ->
    list_size (int_range 0 6) (int_range 0 (max 0 (String.length raw - 1)))
    >|= fun spots ->
    let b = Bytes.of_string raw in
    List.iter
      (fun i ->
        let p = endbr arch in
        let len = min (String.length p) (Bytes.length b - i) in
        Bytes.blit_string p 0 b i len)
      spots;
    Bytes.to_string b)

let planted arch = QCheck.make ~print:(Printf.sprintf "%S") (planted_gen arch)

(* --- sweeps vs their references ----------------------------------------- *)

let sweep_equal name (a : Linear.t) (b : Linear.t) code =
  if a.Linear.resync_errors <> b.Linear.resync_errors then
    QCheck.Test.fail_reportf "%s: resync_errors %d <> %d on %S" name
      a.Linear.resync_errors b.Linear.resync_errors code;
  let na = Array.length a.Linear.insns and nb = Array.length b.Linear.insns in
  if na <> nb then
    QCheck.Test.fail_reportf "%s: %d insns <> %d on %S" name na nb code;
  Array.iteri
    (fun i ia ->
      if not (ins_equal ia b.Linear.insns.(i)) then
        QCheck.Test.fail_reportf "%s: insn %d differs on %S" name i code)
    a.Linear.insns;
  true

let test_sweep_vs_reference =
  List.map
    (fun (name, arch) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "sweep = reference sweep (%s)" name)
        ~count:300 (planted arch)
        (fun code ->
          sweep_equal "sweep"
            (Linear.sweep arch ~base:0x1000 code)
            (Linear.sweep_reference arch ~base:0x1000 code)
            code))
    arches

let test_anchored_vs_reference =
  List.map
    (fun (name, arch) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "anchored sweep = reference (%s)" name)
        ~count:300 (planted arch)
        (fun code ->
          sweep_equal "sweep_anchored"
            (Linear.sweep_anchored arch ~base:0x1000 code)
            (Linear.sweep_anchored_reference arch ~base:0x1000 code)
            code))
    arches

(* --- SWAR anchor scan vs the per-byte oracle ----------------------------- *)

let test_anchors_vs_naive =
  List.map
    (fun (name, arch) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "SWAR anchor_offsets = naive (%s)" name)
        ~count:500 (planted arch)
        (fun code ->
          Linear.anchor_offsets arch code = Linear.anchor_offsets_naive arch code))
    arches

(* Directed anchor placements: offset 0, every phase relative to the
   8-byte word grid (straddling included), and flush against the n-4
   tail — with sub-word and empty strings for the edges. *)
let test_anchors_directed () =
  List.iter
    (fun (aname, arch) ->
      let p = endbr arch in
      let case code =
        check
          Alcotest.(list int)
          (Printf.sprintf "%s anchors in %S" aname code)
          (Array.to_list (Linear.anchor_offsets_naive arch code))
          (Array.to_list (Linear.anchor_offsets arch code))
      in
      case "";
      case "\x90";
      case p;
      case (String.sub p 0 3);
      (* every alignment of the pattern within/between words *)
      for pad = 0 to 17 do
        case (String.make pad '\x90' ^ p);
        case (String.make pad '\x90' ^ p ^ String.make 3 '\x90');
        (* flush at the n-4 tail *)
        case (String.make pad '\x00' ^ p)
      done;
      (* back-to-back and overlapping-prefix runs *)
      case (p ^ p ^ p);
      case ("\xf3\xf3" ^ p);
      case (String.concat "" (List.init 5 (fun i -> String.make i '\xf3' ^ p)));
      (* the wrong-arch suffix must not match *)
      case (endbr Arch.X64 ^ endbr Arch.X86))
    arches

(* --- word-class bitmap vs the per-byte oracle ---------------------------- *)

let word_flagged code w =
  let lo = w * 8 and n = String.length code in
  let hi = min (lo + 7) (n - 1) in
  let rec go i = i <= hi && (Prescan.candidate_byte code.[i] || go (i + 1)) in
  go lo

let test_classes_vs_oracle =
  QCheck.Test.make ~name:"prescan classes = per-byte oracle" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun code ->
      let cls = Prescan.classes code in
      let nwords = (String.length code + 7) / 8 in
      Bytes.length cls = max nwords 1
      && List.for_all
           (fun w -> Bytes.get cls w <> '\000' = word_flagged code w)
           (List.init nwords Fun.id))

let test_window_conservative =
  QCheck.Test.make ~name:"window_has_candidate never misses" ~count:500
    QCheck.(
      pair (string_of_size Gen.(int_range 1 64)) (pair small_nat small_nat))
    (fun (code, (off, len)) ->
      let n = String.length code in
      let off = off mod n and len = 1 + (len mod 15) in
      let len = min len (n - off) in
      let cls = Prescan.classes code in
      let any_candidate =
        let rec go i = i < off + len && (Prescan.candidate_byte code.[i] || go (i + 1)) in
        go off
      in
      (* conservative: a window containing a candidate is always flagged *)
      (not any_candidate) || Prescan.window_has_candidate cls ~off ~len)

(* --- allocation budget --------------------------------------------------- *)

(* The prescan kernels must not allocate per word: [classes] one bitmap,
   [anchor_offsets] the result array (plus doubling steps).  The budget is
   bytes-proportional headroom far under one word per scanned word, so a
   boxed-Int64 regression in the loop bodies (8+ words per iteration)
   trips it immediately. *)
let test_prescan_allocation_budget () =
  let code =
    String.concat ""
      (List.init 4096 (fun i ->
           if i mod 64 = 0 then "\xf3\x0f\x1e\xfa" else "\x90\x31\xc0\x50"))
  in
  let measure f =
    ignore (f ());
    let before = Gc.minor_words () in
    ignore (f ());
    Gc.minor_words () -. before
  in
  let n_words = float_of_int (String.length code / 8) in
  let cls_words = measure (fun () -> Prescan.classes code) in
  let anchor_words = measure (fun () -> Linear.anchor_offsets Arch.X64 code) in
  (* classes: the bitmap itself is ~n/8/8 words; budget 1 word per code
     word catches any boxing in the loop. *)
  if cls_words /. n_words > 1.0 then
    Alcotest.failf "Prescan.classes allocates %.2f minor words per code word"
      (cls_words /. n_words);
  if anchor_words /. n_words > 1.0 then
    Alcotest.failf "anchor_offsets allocates %.2f minor words per code word"
      (anchor_words /. n_words)

let suite =
  [
    ( "prescan",
      List.map QCheck_alcotest.to_alcotest
        (test_scan_vs_decode @ test_sweep_vs_reference @ test_anchored_vs_reference
       @ test_anchors_vs_naive
        @ [ test_classes_vs_oracle; test_window_conservative ])
      @ [
          Alcotest.test_case "scan = decode directed" `Quick test_scan_directed;
          Alcotest.test_case "anchor offsets directed" `Quick test_anchors_directed;
          Alcotest.test_case "prescan allocation budget" `Quick
            test_prescan_allocation_budget;
        ] );
  ]
