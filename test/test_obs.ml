(* Tests for Cet_obs, the cross-run analyzer: manifest round-trip and
   strictness, writer/reader run-digest agreement (pinned, and stable
   across ~jobs), profile-JSONL re-parsing, cross-run diff semantics on
   the content-digest join, robust median/MAD anomaly detection, and
   trace parsing (both formats) feeding scheduler health. *)

module Harness = Cet_eval.Harness
module Manifest = Cet_obs.Manifest
module Profiles = Cet_obs.Profiles
module Trace = Cet_obs.Trace
module Analyze = Cet_obs.Analyze

let check = Alcotest.check

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let replace_all ~from ~into s =
  let fl = String.length from in
  let buf = Buffer.create (String.length s) in
  let rec go i =
    if i >= String.length s then Buffer.contents buf
    else if i + fl <= String.length s && String.sub s i fl = from then begin
      Buffer.add_string buf into;
      go (i + fl)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let read_back write =
  let tmp = Filename.temp_file "cet-obs" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write oc);
      let ic = open_in tmp in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Writer/reader agreement over a real (micro) harness run            *)
(* ------------------------------------------------------------------ *)

let micro_profile =
  {
    Cet_corpus.Profile.coreutils with
    Cet_corpus.Profile.suite = "coreutils";
    programs = 2;
    funcs_lo = 30;
    funcs_hi = 40;
  }

let micro_configs =
  [
    Cet_compiler.Options.default;
    {
      Cet_compiler.Options.default with
      Cet_compiler.Options.compiler = Cet_compiler.Options.Clang;
    };
  ]

let micro_opts =
  {
    Harness.default_options with
    Harness.seed = 11;
    scale = 1.0;
    timing = false;
    profile = true;
  }

let run_micro ~jobs = Harness.run ~profiles:[ micro_profile ] ~configs:micro_configs ~jobs micro_opts

let micro_meta ~jobs =
  {
    Harness.m_experiment = "micro";
    m_jobs = jobs;
    m_chaos = None;
    m_profile_art = None;
    m_quarantine_art = None;
    m_trace_art = None;
    m_metrics_art = None;
  }

let manifest_text ~jobs r =
  read_back (fun oc -> Harness.write_manifest oc ~meta:(micro_meta ~jobs) micro_opts r)

(* The micro corpus is deterministic in its seed, so its run digest is a
   constant of the codebase; pinning the hex value catches any silent
   change to the digest recipe, the corpus generator, or the stripped
   ELF bytes themselves.  Recompute deliberately if one of those is
   meant to change. *)
let pinned_micro_digest = "24ed52d35a17091e2512f4f7e57b4305"

let test_manifest_round_trip () =
  let r = run_micro ~jobs:1 in
  let text = manifest_text ~jobs:1 r in
  match Manifest.parse text with
  | Error e -> Alcotest.failf "manifest rejected: %s" e
  | Ok m ->
    check Alcotest.string "header digest = writer digest" (Harness.run_digest r)
      m.Manifest.r_digest;
    check Alcotest.int "one row per profile"
      (List.length r.Harness.profiles)
      (List.length m.Manifest.rows);
    check Alcotest.string "experiment" "micro" m.Manifest.r_experiment;
    check Alcotest.int "seed" 11 m.Manifest.r_seed;
    check Alcotest.bool "timing off" false m.Manifest.r_timing;
    check Alcotest.(option int) "no chaos" None m.Manifest.r_chaos;
    check Alcotest.(option string) "no profile artifact" None
      m.Manifest.r_artifacts.Manifest.a_profile;
    (* Reader-side recomputation agrees with the writer's recipe. *)
    check Alcotest.string "recompute agrees" m.Manifest.r_digest
      (Manifest.recompute_digest m.Manifest.rows);
    List.iter2
      (fun (p : Harness.profile) (b : Manifest.binary) ->
        check Alcotest.string "key order preserved" (Harness.profile_key p)
          (Manifest.key b);
        check Alcotest.string "content digest carried" p.Harness.p_digest
          b.Manifest.b_digest)
      r.Harness.profiles m.Manifest.rows

let test_run_digest_pinned_across_jobs () =
  let d1 = Harness.run_digest (run_micro ~jobs:1) in
  let d4 = Harness.run_digest (run_micro ~jobs:4) in
  check Alcotest.string "stable across jobs" d1 d4;
  check Alcotest.string "pinned" pinned_micro_digest d1

let test_manifest_strictness () =
  let r = run_micro ~jobs:1 in
  let text = manifest_text ~jobs:1 r in
  let lines = String.split_on_char '\n' text in
  let reject what t =
    match Manifest.parse t with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error e -> e
  in
  (* An unsupported schema is an error, not a guess. *)
  let bumped = replace_all ~from:"\"schema\":1," ~into:"\"schema\":99," text in
  check Alcotest.bool "schema error names schema" true
    (contains (reject "bumped schema" bumped) "schema");
  (* A manifest without its run header is not a manifest. *)
  let headless = String.concat "\n" (List.tl lines) in
  ignore (reject "headless manifest" headless);
  (* A tampered row digest breaks the header's verified recomputation. *)
  let tampered =
    match lines with
    | header :: (row : string) :: rest ->
      (* Swap the second line's content digest for zeros. *)
      let marker = "\"digest\":\"" in
      let rec find i =
        if i + String.length marker > String.length row then
          Alcotest.fail "binary row has no digest field"
        else if String.sub row i (String.length marker) = marker then i
        else find (i + 1)
      in
      let start = find 0 + String.length marker in
      let zeroed =
        String.sub row 0 start
        ^ String.make 32 '0'
        ^ String.sub row (start + 32) (String.length row - start - 32)
      in
      String.concat "\n" (header :: zeroed :: rest)
    | _ -> Alcotest.fail "manifest too short"
  in
  check Alcotest.bool "tamper detected" true
    (contains (reject "tampered manifest" tampered) "digest mismatch")

let test_profiles_reader_round_trip () =
  let r = run_micro ~jobs:1 in
  let text = read_back (fun oc -> Harness.write_profiles oc r) in
  match Profiles.parse text with
  | Error e -> Alcotest.failf "profile JSONL rejected: %s" e
  | Ok rows ->
    check Alcotest.int "row count" (List.length r.Harness.profiles)
      (List.length rows);
    List.iter2
      (fun (p : Harness.profile) (row : Profiles.row) ->
        check Alcotest.string "key" (Harness.profile_key p) (Profiles.key row);
        check Alcotest.string "digest" p.Harness.p_digest row.Profiles.digest;
        check Alcotest.int "phases carried"
          (List.length p.Harness.p_phases)
          (List.length row.Profiles.phases))
      r.Harness.profiles rows

(* ------------------------------------------------------------------ *)
(* Diff semantics                                                     *)
(* ------------------------------------------------------------------ *)

let bin ?(status = "ok") ~program ~digest () =
  {
    Manifest.b_suite = "s";
    b_program = program;
    b_config = "c";
    b_arch = "x64";
    b_digest = digest;
    b_status = status;
    b_attempts = 1;
    b_text_bytes = 100;
    b_insns = 10;
    b_resyncs = 0;
    b_truth = 5;
  }

let run_of rows =
  {
    Manifest.r_digest = Manifest.recompute_digest rows;
    r_experiment = "fake";
    r_seed = 1;
    r_scale = 1.0;
    r_jobs = 1;
    r_chaos = None;
    r_timing = false;
    r_binaries = List.length rows;
    r_functions = 0;
    r_quarantined = 0;
    r_artifacts =
      { Manifest.a_profile = None; a_quarantine = None; a_trace = None; a_metrics = None };
    rows;
  }

let test_diff_clean_across_jobs () =
  let ra = run_micro ~jobs:1 and rb = run_micro ~jobs:4 in
  let ma = Result.get_ok (Manifest.parse (manifest_text ~jobs:1 ra)) in
  let mb = Result.get_ok (Manifest.parse (manifest_text ~jobs:4 rb)) in
  let d = Analyze.diff ~old_run:ma ~new_run:mb () in
  check Alcotest.int "joins every binary" (List.length ma.Manifest.rows)
    d.Analyze.d_matched;
  check Alcotest.(list string) "nothing added" [] d.Analyze.d_added;
  check Alcotest.(list string) "nothing removed" [] d.Analyze.d_removed;
  check Alcotest.int "no verdict changes" 0 (List.length d.Analyze.d_changed);
  check Alcotest.bool "clean" true (Analyze.clean d);
  let rendered = Analyze.render_diff d in
  check Alcotest.bool "render names the digests" true
    (contains rendered ma.Manifest.r_digest);
  (* The render must stay byte-identical across schedulers, so it never
     mentions jobs, chaos, or input paths. *)
  check Alcotest.bool "render omits scheduler knobs" false (contains rendered "jobs")

let test_diff_detects_changes () =
  let old_run =
    run_of [ bin ~program:"a" ~digest:"d1" (); bin ~program:"b" ~digest:"d2" () ]
  in
  let new_run =
    run_of
      [ bin ~program:"a" ~digest:"d1" ~status:"shed" (); bin ~program:"c" ~digest:"d3" () ]
  in
  let d = Analyze.diff ~old_run ~new_run () in
  check Alcotest.int "one join" 1 d.Analyze.d_matched;
  check Alcotest.(list string) "b vanished" [ "s/b[c]" ] d.Analyze.d_removed;
  check Alcotest.(list string) "c appeared" [ "s/c[c]" ] d.Analyze.d_added;
  (match d.Analyze.d_changed with
  | [ c ] ->
    check Alcotest.string "field" "status" c.Analyze.vc_field;
    check Alcotest.string "old" "ok" c.Analyze.vc_old;
    check Alcotest.string "new" "shed" c.Analyze.vc_new
  | l -> Alcotest.failf "expected one verdict change, got %d" (List.length l));
  check Alcotest.bool "not clean" false (Analyze.clean d)

let prow ?(status = "ok") ?(total = 1.0) ?(phases = []) ~program ~digest () =
  {
    Profiles.suite = "s";
    program;
    config = "c";
    arch = "x64";
    digest;
    text_bytes = 100;
    insns = 10;
    resyncs = 0;
    truth = 5;
    diags = 0;
    attempts = 1;
    status;
    total_ms = total;
    phases;
  }

let test_diff_timing_axis () =
  let old_run = run_of [ bin ~program:"a" ~digest:"d1" (); bin ~program:"b" ~digest:"d2" () ]
  and new_run = run_of [ bin ~program:"a" ~digest:"d1" (); bin ~program:"b" ~digest:"d2" () ] in
  let old_profiles =
    [
      prow ~program:"a" ~digest:"d1" ~total:100.0 ~phases:[ ("funseeker", 10.0) ] ();
      prow ~program:"b" ~digest:"d2" ~total:0.0 ();
    ]
  and new_profiles =
    [
      prow ~program:"a" ~digest:"d1" ~total:150.0 ~phases:[ ("funseeker", 2.0) ] ();
      prow ~program:"b" ~digest:"d2" ~total:50.0 ();
    ]
  in
  let d = Analyze.diff ~old_run ~new_run ~old_profiles ~new_profiles () in
  (* b's old side is untimed (0.0): excluded from the timing axis rather
     than reported as an infinite regression. *)
  check Alcotest.int "only timed pairs count" 1 d.Analyze.d_timed;
  (match d.Analyze.d_regressed with
  | [ x ] ->
    check Alcotest.string "total regressed" "total" x.Analyze.pd_phase;
    check (Alcotest.float 1e-9) "+50%" 50.0 x.Analyze.pd_pct
  | l -> Alcotest.failf "expected one regression, got %d" (List.length l));
  (match d.Analyze.d_improved with
  | [ x ] ->
    check Alcotest.string "phase improved" "funseeker" x.Analyze.pd_phase;
    check (Alcotest.float 1e-9) "-80%" (-80.0) x.Analyze.pd_pct
  | l -> Alcotest.failf "expected one improvement, got %d" (List.length l));
  (* A timing regression is a finding: the diff is not clean even though
     every verdict agrees. *)
  check Alcotest.bool "regression is a finding" false (Analyze.clean d)

(* ------------------------------------------------------------------ *)
(* Anomalies                                                          *)
(* ------------------------------------------------------------------ *)

let test_robust_z () =
  let zs = Analyze.robust_z [| 10.0; 10.0; 10.0; 10.0; 10.0; 100.0 |] in
  check Alcotest.bool "outlier flagged" true (Float.abs zs.(5) > 3.5);
  Array.iteri (fun i z -> if i < 5 then check (Alcotest.float 1e-9) "inliers at 0" 0.0 z) zs;
  let flat = Analyze.robust_z (Array.make 8 42.0) in
  Array.iter (fun z -> check (Alcotest.float 1e-9) "constant population" 0.0 z) flat;
  check Alcotest.int "empty" 0 (Array.length (Analyze.robust_z [||]))

let test_anomalies_planted_outlier () =
  let phases total = [ ("funseeker", total /. 2.0); ("ida", total /. 2.0) ] in
  let rows =
    List.init 11 (fun i ->
        prow
          ~program:(Printf.sprintf "p%02d" i)
          ~digest:(Printf.sprintf "d%02d" i)
          ~total:10.0 ~phases:(phases 10.0) ())
    @ [
        prow ~program:"whale" ~digest:"dw" ~total:100.0 ~phases:(phases 100.0) ();
        (* A shed row with an absurd time must not poison the baseline —
           nor be reported as an anomaly itself. *)
        prow ~program:"sh" ~digest:"ds" ~status:"shed" ~total:0.5 ~phases:(phases 0.5) ();
      ]
  in
  let found, excluded = Analyze.anomalies rows in
  (match found with
  | [ a ] ->
    check Alcotest.string "metric" "total_ms" a.Analyze.an_metric;
    check Alcotest.string "who" "s/whale[c]" a.Analyze.an_key;
    check (Alcotest.float 1e-9) "median" 10.0 a.Analyze.an_median;
    check Alcotest.bool "z beyond cut" true (a.Analyze.an_z >= 3.5)
  | l -> Alcotest.failf "expected exactly the whale, got %d anomalies" (List.length l));
  check Alcotest.int "shed row reported separately" 1 (List.length excluded);
  check Alcotest.string "excluded is the shed row" "shed"
    (List.hd excluded).Profiles.status;
  let rendered = Analyze.render_anomalies (found, excluded) in
  check Alcotest.bool "render names the whale" true (contains rendered "whale");
  check Alcotest.bool "render counts exclusions" true (contains rendered "1 shed")

(* ------------------------------------------------------------------ *)
(* Traces and scheduler health                                        *)
(* ------------------------------------------------------------------ *)

let jsonl_trace =
  String.concat "\n"
    [
      {|{"type":"span","sheet":0,"name":"harness.binary","start_ns":0,"dur_ns":5000000}|};
      {|{"type":"span","sheet":1,"name":"harness.binary","start_ns":0,"dur_ns":3000000}|};
      {|{"type":"span","sheet":1,"name":"funseeker.analyze","start_ns":0,"dur_ns":999}|};
      {|{"type":"counter","name":"harness.binaries","value":2}|};
      {|{"type":"counter","name":"scheduler.steals","value":1}|};
      {|{"type":"gauge","name":"harness.wall_s","value":0.01}|};
      {|{"type":"gauge","name":"scheduler.max_pending","value":4}|};
    ]

let test_health_from_jsonl_trace () =
  match Trace.parse jsonl_trace with
  | Error e -> Alcotest.failf "jsonl trace rejected: %s" e
  | Ok t ->
    let h = Analyze.health_of_trace t in
    check Alcotest.int "workers" 2 h.Analyze.hw_workers;
    check (Alcotest.float 1e-9) "busy ms" 8.0 h.Analyze.hw_busy_ms;
    check (Alcotest.float 1e-9) "wall ms" 10.0 h.Analyze.hw_wall_ms;
    check (Alcotest.float 1e-9) "busy fraction" 0.4 h.Analyze.hw_busy_fraction;
    check (Alcotest.float 1e-9) "queue wait" 6.0 h.Analyze.hw_queue_wait_ms;
    check Alcotest.int "binaries" 2 h.Analyze.hw_binaries;
    check (Alcotest.float 1e-9) "steal ratio" 0.5 h.Analyze.hw_steal_ratio;
    check Alcotest.int "max pending" 4 h.Analyze.hw_max_pending;
    check Alcotest.bool "renders" true
      (contains (Analyze.render_health h) "SCHEDULER HEALTH")

let test_chrome_trace_parses () =
  let chrome =
    {|[{"ph":"X","tid":3,"pid":1,"name":"harness.binary","ts":1.5,"dur":2000.0},
       {"ph":"i","tid":0,"pid":1,"name":"quarantine","s":"t"}]|}
  in
  match Trace.parse chrome with
  | Error e -> Alcotest.failf "chrome trace rejected: %s" e
  | Ok t ->
    (match t.Trace.spans with
    | [ s ] ->
      check Alcotest.int "sheet from tid" 3 s.Trace.t_sheet;
      check Alcotest.int "us -> ns start" 1500 s.Trace.t_start_ns;
      check Alcotest.int "us -> ns dur" 2_000_000 s.Trace.t_dur_ns
    | l -> Alcotest.failf "expected one span, got %d" (List.length l));
    check Alcotest.(list (pair string int)) "instant kept" [ ("quarantine", 0) ]
      t.Trace.instants

let test_phase_stats () =
  let rows =
    [
      prow ~program:"a" ~digest:"d1" ~total:3.0
        ~phases:[ ("funseeker", 1.0); ("ida", 2.0) ] ();
      prow ~program:"b" ~digest:"d2" ~total:5.0
        ~phases:[ ("funseeker", 4.0); ("ida", 1.0) ] ();
    ]
  in
  let stats = Analyze.phase_stats rows in
  check Alcotest.(list string) "first-appearance order plus total"
    [ "funseeker"; "ida"; "total" ]
    (List.map (fun s -> s.Analyze.ps_phase) stats);
  let fs = List.hd stats in
  check Alcotest.int "count" 2 fs.Analyze.ps_count;
  check (Alcotest.float 1e-9) "total" 5.0 fs.Analyze.ps_total_ms;
  check Alcotest.bool "max within octave bound" true
    (fs.Analyze.ps_max_ms >= 4.0 && fs.Analyze.ps_max_ms <= 4.0 +. 1e-9);
  check Alcotest.bool "renders" true
    (contains (Analyze.render_phase_stats stats) "PHASE LATENCY")

let suite =
  [
    ( "obs.manifest",
      [
        Alcotest.test_case "round-trip" `Quick test_manifest_round_trip;
        Alcotest.test_case "run digest pinned across jobs" `Quick
          test_run_digest_pinned_across_jobs;
        Alcotest.test_case "strict parsing" `Quick test_manifest_strictness;
        Alcotest.test_case "profile JSONL round-trip" `Quick
          test_profiles_reader_round_trip;
      ] );
    ( "obs.diff",
      [
        Alcotest.test_case "clean across jobs" `Quick test_diff_clean_across_jobs;
        Alcotest.test_case "verdict changes and churn" `Quick
          test_diff_detects_changes;
        Alcotest.test_case "timing axis" `Quick test_diff_timing_axis;
      ] );
    ( "obs.anomalies",
      [
        Alcotest.test_case "robust z" `Quick test_robust_z;
        Alcotest.test_case "planted outlier" `Quick test_anomalies_planted_outlier;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "health from jsonl trace" `Quick
          test_health_from_jsonl_trace;
        Alcotest.test_case "chrome trace parses" `Quick test_chrome_trace_parses;
        Alcotest.test_case "phase stats" `Quick test_phase_stats;
      ] );
  ]
