(* Aggregated test runner: one Alcotest binary over all module suites. *)
let () =
  Alcotest.run "funseeker-repro"
    (Test_util.suite @ Test_x86.suite @ Test_elf.suite @ Test_eh.suite
   @ Test_compiler.suite @ Test_corpus.suite @ Test_funseeker.suite
   @ Test_baselines.suite @ Test_substrate.suite @ Test_eval.suite
   @ Test_arm.suite @ Test_edge.suite @ Test_cfg.suite @ Test_telemetry.suite
   @ Test_robust.suite @ Test_provenance.suite @ Test_prescan.suite
   @ Test_observability.suite @ Test_scheduler.suite @ Test_obs.suite)
