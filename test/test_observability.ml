(* Tests for the observability layer (flight recorder, SLO gates,
   per-binary profiles, OpenMetrics export): ring semantics, the
   zero-allocation disabled paths, the SLO grammar and its fail-safe
   unmatched-key breach, profile determinism across ~jobs, the
   quarantine black box, the exposition-format grammar, the observer
   bridges in Deadline/Diag, histogram bucket edges, and the bench
   trajectory helpers. *)

module Hist = Cet_telemetry.Hist
module Registry = Cet_telemetry.Registry
module Span = Cet_telemetry.Span
module Report = Cet_telemetry.Report
module Journal = Cet_telemetry.Journal
module Slo = Cet_telemetry.Slo
module Harness = Cet_eval.Harness
module Bench_rows = Cet_util.Bench_rows

let check = Alcotest.check

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Every test leaves every global switch off and every store empty,
   whatever happened, so observability state never leaks across the
   suite (the registry/journal/SLO stores are process-global). *)
let with_clean f =
  Registry.reset ();
  Journal.reset ();
  Slo.reset ();
  Fun.protect
    ~finally:(fun () ->
      Registry.disable ();
      Journal.disable ();
      Slo.disable ();
      Cet_util.Deadline.set_observer None;
      Cet_util.Diag.Collector.set_observer None;
      Registry.reset ();
      Journal.reset ();
      Slo.reset ())
    f

let read_back write =
  let tmp = Filename.temp_file "cet-obs" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write oc);
      let ic = open_in tmp in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Journal ring semantics                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_drop_oldest () =
  let r = Journal.ring_create ~id:7 ~capacity:4 in
  for i = 1 to 6 do
    Journal.ring_record r ~kind:Journal.Diag ~name:(Printf.sprintf "e%d" i) ~v:i
  done;
  let names = List.map (fun e -> e.Journal.j_name) (Journal.ring_events r) in
  check Alcotest.(list string) "oldest two dropped, oldest first"
    [ "e3"; "e4"; "e5"; "e6" ] names;
  check Alcotest.int "cursor counts every record" 6 r.Journal.r_next;
  List.iter
    (fun e -> check Alcotest.int "ring id stamped" 7 e.Journal.j_ring)
    (Journal.ring_events r)

let test_journal_record_recent_mark () =
  with_clean (fun () ->
      check Alcotest.(list pass) "disabled recent is empty" []
        (Journal.recent ());
      check Alcotest.int "disabled mark is 0" 0 (Journal.mark ());
      Journal.enable ();
      Journal.record Journal.Phase_begin "alpha";
      Journal.record ~v:42 Journal.Phase_end "alpha";
      let m = Journal.mark () in
      Journal.record Journal.Diag "elf/short-read";
      Journal.record Journal.Diag "eh/bad-lsda";
      Journal.record ~v:2 Journal.Retry "coreutils/x";
      let names = List.map (fun e -> e.Journal.j_name) (Journal.recent ()) in
      check Alcotest.(list string) "oldest first"
        [ "alpha"; "alpha"; "elf/short-read"; "eh/bad-lsda"; "coreutils/x" ]
        names;
      let last2 = List.map (fun e -> e.Journal.j_name) (Journal.recent ~n:2 ()) in
      check Alcotest.(list string) "recent ~n keeps the newest"
        [ "eh/bad-lsda"; "coreutils/x" ] last2;
      check Alcotest.int "diags since mark" 2
        (Journal.count_kind_since m Journal.Diag);
      check Alcotest.int "retries since mark" 1
        (Journal.count_kind_since m Journal.Retry);
      check Alcotest.int "nothing before mark counted" 0
        (Journal.count_kind_since m Journal.Phase_end);
      (* Timestamps are monotone within the ring. *)
      let ts = List.map (fun e -> e.Journal.j_ns) (Journal.recent ()) in
      check Alcotest.bool "monotone timestamps" true
        (List.sort compare ts = ts);
      let line = Journal.event_to_string (List.hd (Journal.recent ())) in
      check Alcotest.bool "rendered line names the kind" true
        (contains line (Journal.kind_label Journal.Phase_begin)))

let test_journal_capacity () =
  with_clean (fun () ->
      (try
         Journal.enable ~capacity:0 ();
         Alcotest.fail "capacity 0 accepted"
       with Invalid_argument _ -> ());
      Journal.enable ~capacity:3 ();
      for i = 1 to 5 do
        Journal.record ~v:i Journal.Diag "d"
      done;
      check Alcotest.int "ring clamps to capacity" 3
        (List.length (Journal.recent ()));
      check Alcotest.(list int) "newest three survive" [ 3; 4; 5 ]
        (List.map (fun e -> e.Journal.j_v) (Journal.recent ()));
      (* A capacity change transparently re-registers the domain's ring. *)
      Journal.enable ~capacity:8 ();
      for i = 1 to 6 do
        Journal.record ~v:i Journal.Diag "d"
      done;
      check Alcotest.int "fresh ring honors new capacity" 6
        (List.length (Journal.recent ())))

(* ------------------------------------------------------------------ *)
(* Disabled paths: zero allocation                                    *)
(* ------------------------------------------------------------------ *)

let test_disabled_paths_zero_alloc () =
  with_clean (fun () ->
      check Alcotest.bool "journal disabled" false (Journal.enabled ());
      check Alcotest.bool "slo disabled" false (Slo.enabled ());
      check Alcotest.bool "no deadline armed" false (Cet_util.Deadline.active ());
      let w0 = Gc.minor_words () in
      for i = 0 to 49_999 do
        if Journal.enabled () then Journal.record ~v:i Journal.Diag "never";
        if Slo.enabled () then Slo.observe ~tool:"never" ~config:"c" i;
        Cet_util.Deadline.check "never"
      done;
      let dw = Gc.minor_words () -. w0 in
      (* The budget absorbs the Gc.minor_words probes themselves; 50k
         guarded calls must contribute nothing. *)
      if dw > 100.0 then
        Alcotest.failf "disabled observability path allocated %.0f minor words" dw)

(* ------------------------------------------------------------------ *)
(* SLO grammar                                                        *)
(* ------------------------------------------------------------------ *)

let test_slo_parse_valid () =
  let ok spec = match Slo.parse spec with Ok o -> o | Error e -> Alcotest.failf "%s: %s" spec e in
  let o = ok "funseeker:p99<=50ms" in
  check Alcotest.string "tool" "funseeker" o.Slo.o_tool;
  check Alcotest.bool "no config" true (o.Slo.o_config = None);
  (match o.Slo.o_stat with
  | Slo.P q -> check (Alcotest.float 1e-9) "p99" 0.99 q
  | Slo.Max -> Alcotest.fail "expected quantile");
  check Alcotest.int "50ms in ns" 50_000_000 o.Slo.o_limit_ns;
  check Alcotest.string "raw spec preserved" "funseeker:p99<=50ms" o.Slo.o_raw;
  let o = ok "ida/gcc-x64-O2:max<=1s" in
  check Alcotest.(option string) "config" (Some "gcc-x64-O2") o.Slo.o_config;
  check Alcotest.bool "max stat" true (o.Slo.o_stat = Slo.Max);
  check Alcotest.int "1s in ns" 1_000_000_000 o.Slo.o_limit_ns;
  check Alcotest.int "250us in ns" 250_000 (ok "fetch:p50<=250us").Slo.o_limit_ns;
  let o = ok "binary:p99.9<=75ns" in
  check Alcotest.int "75ns" 75 o.Slo.o_limit_ns;
  (match o.Slo.o_stat with
  | Slo.P q -> check (Alcotest.float 1e-9) "p99.9" 0.999 q
  | Slo.Max -> Alcotest.fail "expected quantile")

let test_slo_parse_invalid () =
  List.iter
    (fun spec ->
      match Slo.parse spec with
      | Ok _ -> Alcotest.failf "%S parsed" spec
      | Error msg ->
        check Alcotest.bool
          (Printf.sprintf "%S error names the spec or component" spec)
          true
          (String.length msg > 0))
    [
      "funseeker";
      "";
      ":p99<=5ms";
      "t:q99<=5ms";
      "t:p0<=5ms";
      "t:p101<=5ms";
      "t:p99<=5m";
      "t:p99<=-5ms";
      "t:p99<=";
      "t:p99<=5";
      "t:max<5ms";
    ]

(* ------------------------------------------------------------------ *)
(* SLO observation and checking                                       *)
(* ------------------------------------------------------------------ *)

let obj spec = match Slo.parse spec with Ok o -> o | Error e -> Alcotest.failf "%s: %s" spec e

let test_slo_check () =
  with_clean (fun () ->
      Slo.enable ();
      List.iter (fun ns -> Slo.observe ~tool:"fs" ~config:"A" ns) [ 10; 20; 30 ];
      Slo.observe ~tool:"fs" ~config:"B" 1000;
      let keys = List.map fst (Slo.merged ()) in
      check
        Alcotest.(list (pair string string))
        "merged view sorted by (tool, config)"
        [ ("fs", "A"); ("fs", "B") ]
        keys;
      let verdicts =
        Slo.check
          [
            obj "fs:max<=1ms";
            obj "fs/A:max<=25ns";
            obj "fs:p50<=2us";
            obj "ghost:p99<=1s";
          ]
      in
      (match verdicts with
      | [ all_max; a_max; p50; ghost ] ->
        check Alcotest.bool "tool-wide max within budget" true all_max.Slo.v_ok;
        check Alcotest.int "tool-wide samples" 4 all_max.Slo.v_count;
        check Alcotest.bool "per-config max breached" false a_max.Slo.v_ok;
        check Alcotest.int "per-config actual is the max" 30 a_max.Slo.v_actual_ns;
        check Alcotest.int "per-config samples" 3 a_max.Slo.v_count;
        check Alcotest.bool "median within budget" true p50.Slo.v_ok;
        check Alcotest.bool "unmatched key is a breach" false ghost.Slo.v_ok;
        check Alcotest.int "unmatched count" 0 ghost.Slo.v_count;
        check Alcotest.int "unmatched actual sentinel" (-1) ghost.Slo.v_actual_ns
      | _ -> Alcotest.fail "verdict count");
      check Alcotest.bool "breached" true (Slo.breached verdicts);
      let table = Slo.render verdicts in
      check Alcotest.bool "render flags the breach" true (contains table "BREACH");
      check Alcotest.bool "render shows the raw spec" true
        (contains table "fs/A:max<=25ns"))

(* ------------------------------------------------------------------ *)
(* Harness integration: SLO samples, profiles, quarantine black box   *)
(* ------------------------------------------------------------------ *)

let micro_profile =
  {
    Cet_corpus.Profile.coreutils with
    Cet_corpus.Profile.suite = "coreutils";
    programs = 2;
    funcs_lo = 30;
    funcs_hi = 40;
  }

let micro_configs =
  [
    Cet_compiler.Options.default;
    {
      Cet_compiler.Options.default with
      Cet_compiler.Options.compiler = Cet_compiler.Options.Clang;
    };
  ]

let run_harness ?(profile = false) ?fault ~jobs () =
  Harness.run ~profiles:[ micro_profile ] ~configs:micro_configs ~jobs
    {
      Harness.default_options with
      Harness.seed = 11;
      scale = 1.0;
      timing = false;
      profile;
      fault;
    }

(* Before the harness observed SLO samples, even an absurdly generous
   objective breached (no samples for the key); this pins the wiring in
   both directions. *)
let test_slo_harness_end_to_end () =
  with_clean (fun () ->
      Slo.enable ();
      let _ = run_harness ~jobs:1 () in
      let generous = Slo.check [ obj "funseeker:p99<=100s" ] in
      check Alcotest.bool "generous objective holds" false (Slo.breached generous);
      check Alcotest.bool "harness observed funseeker samples" true
        ((List.hd generous).Slo.v_count > 0);
      let tight = Slo.check [ obj "funseeker:p99<=1ns"; obj "binary:max<=1ns" ] in
      check Alcotest.bool "1ns objective breaches" true (Slo.breached tight);
      List.iter
        (fun v -> check Alcotest.bool "breach carries samples" true (v.Slo.v_count > 0))
        tight)

let profiles_report ~jobs =
  let r = run_harness ~profile:true ~jobs () in
  (r, read_back (fun oc -> Harness.write_profiles oc r))

let test_profiles_deterministic_across_jobs () =
  let r1, seq = profiles_report ~jobs:1 in
  let _, par = profiles_report ~jobs:4 in
  check Alcotest.string "profile JSONL byte-identical across jobs" seq par;
  check Alcotest.int "one row per binary" r1.Harness.binaries
    (List.length r1.Harness.profiles);
  List.iter
    (fun (p : Harness.profile) ->
      check Alcotest.string "status" "ok" p.Harness.p_status;
      check (Alcotest.float 0.0) "timing off zeroes the clock" 0.0
        p.Harness.p_total_ms;
      check Alcotest.bool "decode volume present" true (p.Harness.p_insns > 0);
      check
        Alcotest.(list string)
        "fixed phase vocabulary" Harness.profile_phase_names
        (List.map fst p.Harness.p_phases))
    r1.Harness.profiles;
  List.iter
    (fun line ->
      if line <> "" then begin
        check Alcotest.bool "row is a json object" true
          (line.[0] = '{' && line.[String.length line - 1] = '}');
        check Alcotest.bool "keys in fixed order" true
          (contains line "\"suite\":" && contains line "\"phases\":{")
      end)
    (String.split_on_char '\n' seq)

let test_quarantine_black_box () =
  with_clean (fun () ->
      Journal.enable ();
      let fault (b : Cet_corpus.Dataset.binary) =
        b.Cet_corpus.Dataset.program = "coreutils_001"
      in
      let r = run_harness ~profile:true ~fault ~jobs:1 () in
      check Alcotest.int "two configs quarantined" 2 (List.length r.Harness.failures);
      List.iter
        (fun (f : Harness.failure) ->
          check Alcotest.bool "black box captured" true (f.Harness.f_journal <> []);
          let kinds = List.map (fun e -> e.Journal.j_kind) f.Harness.f_journal in
          check Alcotest.bool "records the retry" true
            (List.mem Journal.Retry kinds);
          check Alcotest.bool "records the quarantine" true
            (List.mem Journal.Quarantine kinds))
        r.Harness.failures;
      let jsonl = read_back (fun oc -> Harness.write_quarantine oc r) in
      check Alcotest.bool "quarantine rows ship the journal" true
        (contains jsonl "\"journal\":[");
      check Alcotest.bool "journal events are structured" true
        (contains jsonl "\"kind\":\"quarantine\"");
      (* Quarantined binaries still get a (zeroed) profile row. *)
      let quarantined =
        List.filter
          (fun (p : Harness.profile) -> p.Harness.p_status = "quarantined")
          r.Harness.profiles
      in
      check Alcotest.int "quarantined profile rows" 2 (List.length quarantined);
      List.iter
        (fun (p : Harness.profile) ->
          check Alcotest.int "attempts recorded" 2 p.Harness.p_attempts;
          check Alcotest.int "no decode volume claimed" 0 p.Harness.p_insns)
        quarantined;
      (* The slow table ranks by total time and renders. *)
      let top = Harness.top_slow r 3 in
      check Alcotest.bool "top-slow bounded" true (List.length top <= 3);
      let rec sorted = function
        | (a : Harness.profile) :: (b :: _ as rest) ->
          a.Harness.p_total_ms >= b.Harness.p_total_ms && sorted rest
        | _ -> true
      in
      check Alcotest.bool "top-slow sorted desc" true (sorted top);
      check Alcotest.bool "top-slow renders" true
        (contains (Harness.render_top_slow r 3) "SLOWEST BINARIES"))

let test_ewma () =
  check (Alcotest.float 1e-9) "no history passes through" 5.0
    (Harness.ewma_update ~alpha:0.3 ~prev:None 5.0);
  check (Alcotest.float 1e-9) "blend" 15.0
    (Harness.ewma_update ~alpha:0.5 ~prev:(Some 10.0) 20.0);
  let rec converge prev n =
    if n = 0 then prev
    else converge (Harness.ewma_update ~alpha:0.3 ~prev:(Some prev) 100.0) (n - 1)
  in
  check Alcotest.bool "converges to a constant input" true
    (Float.abs (converge 0.0 50 -. 100.0) < 0.01)

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition grammar                                     *)
(* ------------------------------------------------------------------ *)

(* Parse the exposition back: every sample belongs to a declared family,
   histogram buckets are cumulative-monotone with increasing [le] edges,
   +Inf equals _count, and the file is terminated.  This is the same
   check `make check` runs from the outside via the smoke rule. *)
let test_openmetrics_grammar () =
  with_clean (fun () ->
      Registry.enable ();
      Registry.count "harness.binaries";
      Registry.count "harness.binaries";
      Registry.gauge_set "corpus.scale" 1.0;
      Span.with_ ~name:"funseeker.analyze" (fun () ->
          Span.with_ ~name:"elf.read" (fun () -> ignore (Sys.opaque_identity 1)));
      Span.with_ ~name:"funseeker.analyze" (fun () -> ());
      let body = read_back Report.write_openmetrics in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' body)
      in
      check Alcotest.string "terminated" "# EOF" (List.nth lines (List.length lines - 1));
      let types = Hashtbl.create 8 in
      List.iter
        (fun l ->
          match String.split_on_char ' ' l with
          | [ "#"; "TYPE"; name; ty ] -> Hashtbl.replace types name ty
          | _ -> ())
        lines;
      check Alcotest.bool "counter family declared" true
        (Hashtbl.find_opt types "cet_harness_binaries" = Some "counter");
      check Alcotest.bool "gauge family declared" true
        (Hashtbl.find_opt types "cet_corpus_scale" = Some "gauge");
      check Alcotest.bool "histogram family declared" true
        (Hashtbl.find_opt types "cet_phase_funseeker_analyze_seconds"
        = Some "histogram");
      let valid_name n =
        n <> ""
        && String.for_all
             (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
             n
      in
      (* Every sample line resolves to a declared family. *)
      let sample_lines =
        List.filter (fun l -> String.length l > 0 && l.[0] <> '#') lines
      in
      check Alcotest.bool "samples present" true (sample_lines <> []);
      List.iter
        (fun l ->
          let name =
            match String.index_opt l '{' with
            | Some i -> String.sub l 0 i
            | None -> (
              match String.index_opt l ' ' with
              | Some i -> String.sub l 0 i
              | None -> l)
          in
          check Alcotest.bool (Printf.sprintf "valid metric name %S" name) true
            (valid_name name);
          let strip suffix n =
            let ln = String.length n and ls = String.length suffix in
            if ln >= ls && String.sub n (ln - ls) ls = suffix then
              Some (String.sub n 0 (ln - ls))
            else None
          in
          let family_declared =
            Hashtbl.mem types name
            || List.exists
                 (fun s ->
                   match strip s name with
                   | Some base -> Hashtbl.mem types base
                   | None -> false)
                 [ "_total"; "_bucket"; "_sum"; "_count" ]
          in
          check Alcotest.bool (Printf.sprintf "family declared for %S" name) true
            family_declared)
        sample_lines;
      (* Histogram internal consistency for the two-sample phase. *)
      let fam = "cet_phase_funseeker_analyze_seconds" in
      let float_after_brace l =
        match String.index_opt l '}' with
        | Some i ->
          float_of_string (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
        | None -> Alcotest.failf "malformed sample %S" l
      in
      let le_of l =
        let marker = "le=\"" in
        let rec find i =
          if i + String.length marker > String.length l then
            Alcotest.failf "no le label in %S" l
          else if String.sub l i (String.length marker) = marker then
            i + String.length marker
          else find (i + 1)
        in
        let s = find 0 in
        let e = String.index_from l s '"' in
        String.sub l s (e - s)
      in
      let buckets =
        List.filter
          (fun l -> String.length l > 0 && l.[0] <> '#' && contains l (fam ^ "_bucket{"))
          lines
      in
      check Alcotest.bool "buckets emitted" true (List.length buckets >= 2);
      let counts = List.map float_after_brace buckets in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      check Alcotest.bool "cumulative buckets monotone" true (monotone counts);
      let les = List.map le_of buckets in
      check Alcotest.string "last bucket is +Inf" "+Inf"
        (List.nth les (List.length les - 1));
      let finite =
        List.filter_map
          (fun s -> if s = "+Inf" then None else Some (float_of_string s))
          les
      in
      check Alcotest.bool "le edges strictly increasing" true
        (let rec inc = function
           | a :: (b :: _ as rest) -> a < b && inc rest
           | _ -> true
         in
         inc finite);
      let value_of suffix =
        match
          List.find_opt
            (fun l ->
              String.length l > 0 && l.[0] <> '#'
              && (match String.index_opt l ' ' with
                 | Some i -> String.sub l 0 i = fam ^ suffix
                 | None -> false))
            lines
        with
        | Some l ->
          let i = String.index l ' ' in
          float_of_string (String.trim (String.sub l i (String.length l - i)))
        | None -> Alcotest.failf "missing %s%s" fam suffix
      in
      check (Alcotest.float 1e-9) "+Inf bucket equals _count" (value_of "_count")
        (List.nth counts (List.length counts - 1));
      check (Alcotest.float 1e-9) "two samples counted" 2.0 (value_of "_count");
      check Alcotest.bool "_sum non-negative" true (value_of "_sum" >= 0.0))

let test_trace_instants () =
  with_clean (fun () ->
      Registry.enable ~trace:true ();
      Journal.enable ();
      Span.with_ ~name:"outer" (fun () ->
          Journal.record Journal.Diag "elf/short-read");
      Journal.record ~v:2 Journal.Retry "coreutils/x";
      let body = read_back Report.write_trace_chrome in
      check Alcotest.bool "instant events present" true
        (contains body "\"ph\":\"i\"");
      check Alcotest.bool "thread-scoped" true (contains body "\"s\":\"t\"");
      check Alcotest.bool "diag marker named" true
        (contains body "diag:elf/short-read");
      check Alcotest.bool "retry marker named" true
        (contains body "retry:coreutils/x");
      check Alcotest.bool "phase events are not instants" false
        (contains body "phase-begin:");
      check Alcotest.bool "array closed" true
        (String.length body >= 2 && body.[String.length body - 2] = ']'))

(* ------------------------------------------------------------------ *)
(* Histogram bucket edges                                             *)
(* ------------------------------------------------------------------ *)

let test_hist_bucket_edges () =
  (* The exported bucket geometry must be self-consistent: upper bounds
     strictly increase, and each bound is the last value of its bucket.
     With 63-bit ints the last two buckets both clamp to max_int (no
     OCaml int is large enough to reach bucket 62), so strictness holds
     only up to bucket 60. *)
  for i = 0 to Hist.nbuckets - 3 do
    let ub = Hist.bucket_upper_bound i in
    check Alcotest.bool "bounds strictly increase" true
      (ub < Hist.bucket_upper_bound (i + 1));
    check Alcotest.int (Printf.sprintf "bound %d lands in its bucket" i) i
      (Hist.bucket_of ub);
    check Alcotest.int
      (Printf.sprintf "bound %d + 1 lands in the next" i)
      (i + 1)
      (Hist.bucket_of (ub + 1))
  done;
  check Alcotest.int "top bound clamps to max_int" max_int
    (Hist.bucket_upper_bound (Hist.nbuckets - 1));
  check Alcotest.int "penultimate bound also clamps" max_int
    (Hist.bucket_upper_bound (Hist.nbuckets - 2));
  check Alcotest.int "max_int lands in the last reachable bucket"
    (Hist.nbuckets - 2)
    (Hist.bucket_of max_int);
  (* count=1 at a bucket edge: exact at every quantile (min = max clamp). *)
  let edge = Hist.bucket_upper_bound 5 in
  let h = Hist.create () in
  Hist.add h edge;
  List.iter
    (fun q ->
      check Alcotest.(option int)
        (Printf.sprintf "edge sample exact at q=%.2f" q)
        (Some edge) (Hist.quantile h q))
    [ 0.0; 0.5; 1.0 ];
  (* Top-bucket samples clamp to the observed max, not the bucket bound. *)
  let h = Hist.create () in
  Hist.add h 1;
  Hist.add h max_int;
  check Alcotest.(option int) "p100 clamps to observed max" (Some max_int)
    (Hist.quantile h 1.0);
  check Alcotest.(option int) "p0 clamps to observed min" (Some 1)
    (Hist.quantile h 0.0)

let hist_fingerprint h =
  ( Hist.count h,
    Hist.sum h,
    Hist.min_value h,
    Hist.max_value h,
    List.init Hist.nbuckets (Hist.bucket_count h) )

let hist_of samples =
  let h = Hist.create () in
  List.iter (Hist.add h) samples;
  h

let samples_gen =
  QCheck.list_of_size (QCheck.Gen.int_bound 40)
    (QCheck.int_bound 2_000_000_000)

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"hist merge commutes" ~count:200
    (QCheck.pair samples_gen samples_gen)
    (fun (sa, sb) ->
      let ab = hist_of sa in
      Hist.merge ab (hist_of sb);
      let ba = hist_of sb in
      Hist.merge ba (hist_of sa);
      hist_fingerprint ab = hist_fingerprint ba)

let qcheck_merge_associative =
  QCheck.Test.make ~name:"hist merge associates" ~count:200
    (QCheck.triple samples_gen samples_gen samples_gen)
    (fun (sa, sb, sc) ->
      let left = hist_of sa in
      Hist.merge left (hist_of sb);
      Hist.merge left (hist_of sc);
      let bc = hist_of sb in
      Hist.merge bc (hist_of sc);
      let right = hist_of sa in
      Hist.merge right bc;
      hist_fingerprint left = hist_fingerprint right)

let qcheck_bucket_contains =
  QCheck.Test.make ~name:"bucket_of respects its bounds" ~count:500
    QCheck.(map (fun i -> i land max_int) int)
    (fun v ->
      let b = Hist.bucket_of v in
      v <= Hist.bucket_upper_bound b
      && (b = 0 || v > Hist.bucket_upper_bound (b - 1)))

(* ------------------------------------------------------------------ *)
(* Observer bridges                                                   *)
(* ------------------------------------------------------------------ *)

let test_deadline_observer () =
  with_clean (fun () ->
      let seen = ref [] in
      Cet_util.Deadline.set_observer
        (Some (fun what slack_ns -> seen := (what, slack_ns) :: !seen));
      Cet_util.Deadline.with_ ~seconds:30.0 (fun () ->
          Cet_util.Deadline.check "sweep.loop");
      (match !seen with
      | [ (what, slack) ] ->
        check Alcotest.string "observer names the loop" "sweep.loop" what;
        check Alcotest.bool "slack positive and within budget" true
          (slack > 0 && slack <= 30_000_000_000)
      | l -> Alcotest.failf "expected one observation, got %d" (List.length l));
      Cet_util.Deadline.set_observer None;
      Cet_util.Deadline.with_ ~seconds:30.0 (fun () ->
          Cet_util.Deadline.check "sweep.loop");
      check Alcotest.int "removed observer sees nothing" 1 (List.length !seen))

let test_diag_observer () =
  with_clean (fun () ->
      let seen = ref [] in
      Cet_util.Diag.Collector.set_observer
        (Some (fun d -> seen := d :: !seen));
      let c = Cet_util.Diag.Collector.create () in
      Cet_util.Diag.Collector.add c
        (Cet_util.Diag.warning ~domain:"elf" ~code:"short-read" "truncated");
      (match !seen with
      | [ d ] ->
        check Alcotest.string "domain" "elf" d.Cet_util.Diag.domain;
        check Alcotest.string "code" "short-read" d.Cet_util.Diag.code
      | l -> Alcotest.failf "expected one diag, got %d" (List.length l));
      Cet_util.Diag.Collector.set_observer None;
      Cet_util.Diag.Collector.add c
        (Cet_util.Diag.warning ~domain:"elf" ~code:"short-read" "again");
      check Alcotest.int "removed observer sees nothing" 1 (List.length !seen))

(* ------------------------------------------------------------------ *)
(* Bench trajectory helpers                                           *)
(* ------------------------------------------------------------------ *)

let test_bench_expand_range () =
  check
    Alcotest.(option (triple string int string))
    "split around the last digit run"
    (Some ("BENCH_", 12, ".json"))
    (Bench_rows.split_version "BENCH_12.json");
  check
    Alcotest.(option (triple string int string))
    "no digits" None
    (Bench_rows.split_version "bench.json");
  let exists f = f <> "B_3.json" in
  check
    Alcotest.(option (list string))
    "range expands inclusively, missing files dropped"
    (Some [ "B_2.json"; "B_4.json"; "B_5.json" ])
    (Bench_rows.expand_range ~exists "B_2.json..B_5.json");
  let all _ = true in
  check Alcotest.(option (list string)) "single-step range"
    (Some [ "B_4.json" ])
    (Bench_rows.expand_range ~exists:all "B_4.json..B_4.json");
  List.iter
    (fun spec ->
      check
        Alcotest.(option (list string))
        (Printf.sprintf "%S rejected" spec)
        None
        (Bench_rows.expand_range ~exists:all spec))
    [ "B_2.json"; "B_5.json..B_2.json"; "A_2.json..B_5.json"; "B_2.txt..B_5.json"; "x..y" ]

let test_bench_history () =
  let r name mean_ns = { Bench_rows.name; mean_ns; runs = 1 } in
  let tables =
    [
      [ r "alpha" 10.0; r "beta" 5.0 ];
      [ r "beta" 6.0; r "gamma" 1.0 ];
      [ r "alpha" 12.0; r "beta" 4.0; r "gamma" 2.0 ];
    ]
  in
  let rows = Bench_rows.history tables in
  check Alcotest.(list string) "first-appearance order"
    [ "alpha"; "beta"; "gamma" ]
    (List.map (fun (h : Bench_rows.history_row) -> h.Bench_rows.h_name) rows);
  let means name =
    let h =
      List.find (fun (h : Bench_rows.history_row) -> h.Bench_rows.h_name = name) rows
    in
    Array.to_list h.Bench_rows.h_means
  in
  check
    Alcotest.(list (option (float 1e-9)))
    "holes where a file lacks the row"
    [ Some 10.0; None; Some 12.0 ]
    (means "alpha");
  check
    Alcotest.(list (option (float 1e-9)))
    "late rows pad the front"
    [ None; Some 1.0; Some 2.0 ]
    (means "gamma")

(* ------------------------------------------------------------------ *)
(* top-slow under shedding                                            *)
(* ------------------------------------------------------------------ *)

let fake_profile ?(status = "ok") ~total name =
  {
    Harness.p_suite = "s";
    p_program = name;
    p_config = "c";
    p_arch = "x64";
    p_digest = Harness.content_digest name;
    p_text_bytes = 0;
    p_insns = 0;
    p_resyncs = 0;
    p_truth = 0;
    p_diags = 0;
    p_attempts = 1;
    p_status = status;
    p_total_ms = total;
    p_phases = [];
  }

let fake_results profiles =
  {
    Harness.table1 = Cet_eval.Tables.Table1.create ();
    fig3 = Cet_eval.Tables.Fig3.create ();
    table2 = Cet_eval.Tables.Table2.create ();
    table3 = Cet_eval.Tables.Table3.create ();
    triage = Cet_eval.Tables.Triage.create ();
    binaries = List.length profiles;
    functions = 0;
    failures = [];
    profiles;
  }

(* A shed row's clock measured the cheap anchored-only analysis, not the
   real evaluation; ranking it among full evaluations used to present
   the cut corner as speed (or worse, as slowness to chase).  Shed rows
   are excluded from the ranking and counted on their own line. *)
let test_top_slow_excludes_shed () =
  let r =
    fake_results
      [
        fake_profile ~total:5.0 "tortoise";
        fake_profile ~total:1.0 "hare";
        fake_profile ~status:"shed" ~total:9.0 "cut-corner";
      ]
  in
  check Alcotest.(list string) "shed never ranked"
    [ "tortoise"; "hare" ]
    (List.map (fun p -> p.Harness.p_program) (Harness.top_slow r 3));
  let rendered = Harness.render_top_slow r 3 in
  check Alcotest.bool "ranked rows shown" true (contains rendered "tortoise");
  check Alcotest.bool "shed row not in table" false (contains rendered "cut-corner");
  check Alcotest.bool "shed rows counted distinctly" true (contains rendered "1 shed")

(* ------------------------------------------------------------------ *)
(* cet_run_info                                                       *)
(* ------------------------------------------------------------------ *)

let test_openmetrics_run_info () =
  with_clean (fun () ->
      Registry.enable ();
      check Alcotest.string "backslash, quote, newline escaped"
        "a\\\\b\\\"c\\nd"
        (Report.openmetrics_label_escape "a\\b\"c\nd");
      let body =
        read_back
          (Report.write_openmetrics
             ~info:[ ("digest", "abc123"); ("seed", "2022") ])
      in
      check Alcotest.bool "info gauge emitted" true
        (contains body "# TYPE cet_run_info gauge");
      check Alcotest.bool "labels in given order" true
        (contains body "cet_run_info{digest=\"abc123\",seed=\"2022\"} 1");
      (* Without run identity the family is omitted entirely — no empty
         label set, no unlabeled constant. *)
      let bare = read_back Report.write_openmetrics in
      check Alcotest.bool "absent without info" false (contains bare "cet_run_info"))

let suite =
  [
    ( "observability",
      [
        Alcotest.test_case "journal: ring drops oldest" `Quick test_journal_drop_oldest;
        Alcotest.test_case "journal: record/recent/mark" `Quick
          test_journal_record_recent_mark;
        Alcotest.test_case "journal: capacity" `Quick test_journal_capacity;
        Alcotest.test_case "disabled paths: zero allocation" `Quick
          test_disabled_paths_zero_alloc;
        Alcotest.test_case "slo: grammar accepts" `Quick test_slo_parse_valid;
        Alcotest.test_case "slo: grammar rejects" `Quick test_slo_parse_invalid;
        Alcotest.test_case "slo: check and render" `Quick test_slo_check;
        Alcotest.test_case "slo: harness end-to-end" `Quick
          test_slo_harness_end_to_end;
        Alcotest.test_case "profiles: deterministic across jobs" `Slow
          test_profiles_deterministic_across_jobs;
        Alcotest.test_case "quarantine: black box and zeroed profile" `Quick
          test_quarantine_black_box;
        Alcotest.test_case "progress: ewma" `Quick test_ewma;
        Alcotest.test_case "openmetrics: grammar round-trip" `Quick
          test_openmetrics_grammar;
        Alcotest.test_case "openmetrics: cet_run_info labels" `Quick
          test_openmetrics_run_info;
        Alcotest.test_case "top-slow: shed rows excluded" `Quick
          test_top_slow_excludes_shed;
        Alcotest.test_case "trace: journal instants" `Quick test_trace_instants;
        Alcotest.test_case "hist: bucket edges" `Quick test_hist_bucket_edges;
        QCheck_alcotest.to_alcotest qcheck_merge_commutative;
        QCheck_alcotest.to_alcotest qcheck_merge_associative;
        QCheck_alcotest.to_alcotest qcheck_bucket_contains;
        Alcotest.test_case "deadline: observer bridge" `Quick test_deadline_observer;
        Alcotest.test_case "diag: observer bridge" `Quick test_diag_observer;
        Alcotest.test_case "bench: range expansion" `Quick test_bench_expand_range;
        Alcotest.test_case "bench: history join" `Quick test_bench_history;
      ] );
  ]
