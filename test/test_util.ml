(* Tests for cet_util: PRNG, LEB128, byte IO, interval table, hexdump. *)

module Prng = Cet_util.Prng
module Leb = Cet_util.Leb128
module W = Cet_util.Bytesio.W
module R = Cet_util.Bytesio.R
module Itable = Cet_util.Itable

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* PRNG                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next64 a = Prng.next64 b then incr same
  done;
  check Alcotest.int "different seeds diverge" 0 !same

let test_prng_split_independent () =
  let g = Prng.create 7 in
  let s = Prng.split g in
  (* The split stream must not equal the parent's continuation. *)
  check Alcotest.bool "split differs" true (Prng.next64 s <> Prng.next64 g)

let test_prng_int_bounds () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds"
  done

let test_prng_in_range () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.in_range g 5 9 in
    if v < 5 || v > 9 then Alcotest.fail "in_range out of bounds"
  done

let test_prng_float_unit () =
  let g = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float g in
    if v < 0.0 || v >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_prng_chance_extremes () =
  let g = Prng.create 5 in
  for _ = 1 to 100 do
    if Prng.chance g 0.0 then Alcotest.fail "chance 0 fired";
    if not (Prng.chance g 1.0) then Alcotest.fail "chance 1 missed"
  done

let test_prng_chance_rate () =
  let g = Prng.create 11 in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Prng.chance g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  if abs_float (rate -. 0.3) > 0.02 then
    Alcotest.failf "chance rate %f too far from 0.3" rate

let test_prng_choose_weighted () =
  let g = Prng.create 13 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10000 do
    match Prng.choose_weighted g [ ("a", 3.0); ("b", 1.0) ] with
    | "a" -> incr a
    | _ -> incr b
  done;
  let ratio = float_of_int !a /. float_of_int !b in
  if ratio < 2.5 || ratio > 3.6 then Alcotest.failf "weighted ratio %f not ~3" ratio

let test_prng_shuffle_permutation () =
  let g = Prng.create 17 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* LEB128                                                             *)
(* ------------------------------------------------------------------ *)

let uleb_roundtrip v =
  let buf = Buffer.create 8 in
  Leb.write_u buf v;
  let r, next = Leb.read_u (Buffer.contents buf) 0 in
  r = v && next = Buffer.length buf

let sleb_roundtrip v =
  let buf = Buffer.create 8 in
  Leb.write_s buf v;
  let r, next = Leb.read_s (Buffer.contents buf) 0 in
  r = v && next = Buffer.length buf

let test_leb_golden () =
  let enc v =
    let buf = Buffer.create 8 in
    Leb.write_u buf v;
    Buffer.contents buf
  in
  check Alcotest.string "0" "\x00" (enc 0);
  check Alcotest.string "127" "\x7f" (enc 127);
  check Alcotest.string "128" "\x80\x01" (enc 128);
  check Alcotest.string "624485" "\xe5\x8e\x26" (enc 624485)

let test_sleb_golden () =
  let enc v =
    let buf = Buffer.create 8 in
    Leb.write_s buf v;
    Buffer.contents buf
  in
  check Alcotest.string "-1" "\x7f" (enc (-1));
  check Alcotest.string "-128" "\x80\x7f" (enc (-128));
  check Alcotest.string "63" "\x3f" (enc 63);
  check Alcotest.string "-64" "\x40" (enc (-64))

let test_leb_truncated () =
  Alcotest.check_raises "truncated uleb" (Invalid_argument "Leb128: truncated input")
    (fun () -> ignore (Leb.read_u "\x80" 1))

let qcheck_uleb =
  QCheck.Test.make ~name:"uleb roundtrip" ~count:500
    QCheck.(map abs small_int)
    uleb_roundtrip

let qcheck_uleb_large =
  QCheck.Test.make ~name:"uleb roundtrip (large)" ~count:500
    QCheck.(map (fun x -> abs x) int)
    uleb_roundtrip

let qcheck_sleb =
  QCheck.Test.make ~name:"sleb roundtrip" ~count:500 QCheck.int sleb_roundtrip

let test_leb_size () =
  check Alcotest.int "size 0" 1 (Leb.size_u 0);
  check Alcotest.int "size 127" 1 (Leb.size_u 127);
  check Alcotest.int "size 128" 2 (Leb.size_u 128);
  check Alcotest.int "size 1M" 3 (Leb.size_u 1_000_000)

(* ------------------------------------------------------------------ *)
(* Bytesio                                                            *)
(* ------------------------------------------------------------------ *)

let test_w_little_endian () =
  let w = W.create () in
  W.u16 w 0x1234;
  W.u32 w 0xAABBCCDD;
  check Alcotest.string "le bytes" "\x34\x12\xdd\xcc\xbb\xaa" (W.contents w)

let test_w_align_pad () =
  let w = W.create () in
  W.u8 w 1;
  W.align w 4;
  check Alcotest.int "aligned" 4 (W.length w);
  W.pad_to w 10;
  check Alcotest.int "padded" 10 (W.length w);
  W.pad_to w 5;
  check Alcotest.int "no shrink" 10 (W.length w)

let test_r_roundtrip () =
  let w = W.create () in
  W.u8 w 0xAB;
  W.u16 w 0xCDEF;
  W.u32 w 0x12345678;
  W.u64 w 0x1122334455;
  W.i32 w (-42);
  let r = R.of_string (W.contents w) in
  check Alcotest.int "u8" 0xAB (R.u8 r);
  check Alcotest.int "u16" 0xCDEF (R.u16 r);
  check Alcotest.int "u32" 0x12345678 (R.u32 r);
  check Alcotest.int "u64" 0x1122334455 (R.u64 r);
  check Alcotest.int "i32" (-42) (R.i32 r);
  check Alcotest.bool "eof" true (R.eof r)

let test_r_sub_bounds () =
  let r = R.sub "abcdef" ~pos:2 ~len:2 in
  check Alcotest.int "first" (Char.code 'c') (R.u8 r);
  check Alcotest.int "second" (Char.code 'd') (R.u8 r);
  Alcotest.check_raises "oob" (R.Out_of_bounds "u8") (fun () -> ignore (R.u8 r))

let test_r_seek () =
  let r = R.of_string "abcd" in
  R.seek r 2;
  check Alcotest.int "after seek" (Char.code 'c') (R.u8 r);
  check Alcotest.int "pos" 3 (R.pos r);
  check Alcotest.int "remaining" 1 (R.remaining r)

let qcheck_bytesio_u32 =
  QCheck.Test.make ~name:"u32 roundtrip" ~count:500
    QCheck.(map (fun x -> abs x land 0xFFFFFFFF) int)
    (fun v ->
      let w = W.create () in
      W.u32 w v;
      R.u32 (R.of_string (W.contents w)) = v)

let qcheck_bytesio_uleb =
  QCheck.Test.make ~name:"writer uleb = reader uleb" ~count:500
    QCheck.(map abs small_int)
    (fun v ->
      let w = W.create () in
      W.uleb w v;
      R.uleb (R.of_string (W.contents w)) = v)

(* ------------------------------------------------------------------ *)
(* Itable                                                             *)
(* ------------------------------------------------------------------ *)

let test_itable_find () =
  let t = Itable.of_list [ (10, 20, "a"); (30, 40, "b"); (20, 25, "c") ] in
  check Alcotest.int "cardinal" 3 (Itable.cardinal t);
  check Alcotest.(option (triple int int string)) "hit a" (Some (10, 20, "a"))
    (Itable.find t 15);
  check Alcotest.(option (triple int int string)) "hit c" (Some (20, 25, "c"))
    (Itable.find t 20);
  check Alcotest.(option (triple int int string)) "miss" None (Itable.find t 27);
  check Alcotest.bool "mem" true (Itable.mem t 39);
  check Alcotest.bool "boundary exclusive" false (Itable.mem t 40)

let test_itable_overlap_rejected () =
  Alcotest.check_raises "overlap" (Invalid_argument "Itable.of_list: overlapping intervals")
    (fun () -> ignore (Itable.of_list [ (0, 10, ()); (5, 15, ()) ]))

let test_itable_empty_dropped () =
  let t = Itable.of_list [ (5, 5, "x"); (1, 2, "y") ] in
  check Alcotest.int "empty dropped" 1 (Itable.cardinal t)

let qcheck_itable_vs_linear =
  (* Build disjoint intervals from a sorted list of cut points and compare
     binary search against a linear scan. *)
  let gen = QCheck.(list_of_size Gen.(return 8) (int_bound 1000)) in
  QCheck.Test.make ~name:"itable find = linear find" ~count:200 gen (fun cuts ->
      let cuts = List.sort_uniq compare cuts in
      let rec pair = function
        | a :: b :: rest -> (a, b, a) :: pair rest
        | _ -> []
      in
      let ivs = pair cuts in
      let t = Itable.of_list ivs in
      List.for_all
        (fun x ->
          let linear = List.find_opt (fun (lo, hi, _) -> x >= lo && x < hi) ivs in
          Itable.find t x = linear)
        (List.init 50 (fun i -> i * 20)))

(* ------------------------------------------------------------------ *)
(* Hexdump                                                            *)
(* ------------------------------------------------------------------ *)

let test_hexdump_inline () =
  check Alcotest.string "inline" "f3 0f 1e fa"
    (Cet_util.Hexdump.bytes_inline "\xf3\x0f\x1e\xfa")

let test_hexdump_lines () =
  let out = Cet_util.Hexdump.of_string ~base:0x1000 (String.make 20 'A') in
  check Alcotest.bool "has base addr" true
    (String.length out > 0 && String.sub out 0 8 = "00001000");
  check Alcotest.int "two lines" 2
    (List.length (String.split_on_char '\n' (String.trim out)))

(* ------------------------------------------------------------------ *)
(* Domain pool                                                        *)
(* ------------------------------------------------------------------ *)

let test_pool_ordering () =
  (* Results come back in index order regardless of worker count, and the
     parallel map computes exactly what the sequential one does. *)
  let expect = Array.init 100 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      check
        Alcotest.(array int)
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Cet_util.Domain_pool.map ~jobs 100 (fun i -> i * i)))
    [ 1; 2; 4; 7 ]

let test_pool_empty () =
  check Alcotest.(array int) "empty" [||] (Cet_util.Domain_pool.map ~jobs:4 0 (fun i -> i));
  check Alcotest.(array int) "jobs > n" [| 7 |]
    (Cet_util.Domain_pool.map ~jobs:8 1 (fun _ -> 7))

exception Boom of int

let test_pool_exception () =
  (* A worker exception propagates to the caller, from both the spawned
     and the sequential paths. *)
  List.iter
    (fun jobs ->
      match Cet_util.Domain_pool.map ~jobs 10 (fun i -> if i = 3 then raise (Boom i) else i) with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom 3 -> ())
    [ 1; 4 ]

let test_pool_uneven_load () =
  (* Dynamic scheduling with wildly uneven item costs still yields ordered,
     complete results. *)
  let f i =
    if i mod 7 = 0 then ignore (Sys.opaque_identity (Array.init 10000 Fun.id));
    i + 1
  in
  check
    Alcotest.(array int)
    "uneven" (Array.init 64 (fun i -> i + 1))
    (Cet_util.Domain_pool.map ~jobs:3 64 f)

let test_pool_fold () =
  let sum =
    Cet_util.Domain_pool.fold ~jobs:4 ~merge:( + ) 0 101 (fun i -> i)
  in
  check Alcotest.int "gauss" 5050 sum

(* ------------------------------------------------------------------ *)
(* Bench_rows (bin/bench_diff's parser and differ)                    *)
(* ------------------------------------------------------------------ *)

module Bench_rows = Cet_util.Bench_rows

let test_bench_rows_plain () =
  let line =
    {|  {"name": "table3/funseeker(spec)", "mean_ns": 1500000.500, "runs": 7},|}
  in
  match Bench_rows.parse_line line with
  | None -> Alcotest.fail "row expected"
  | Some r ->
    check Alcotest.string "name" "table3/funseeker(spec)" r.Bench_rows.name;
    check (Alcotest.float 1e-6) "mean" 1500000.5 r.Bench_rows.mean_ns;
    check Alcotest.int "runs" 7 r.Bench_rows.runs

let test_bench_rows_key_in_value () =
  (* Regression: the old substring scanner matched the key-shaped token
     inside the quoted VALUE first and misread this row's name. *)
  let line =
    {|  {"note": "has \"name\": inside", "name": "real", "mean_ns": 2.0, "runs": 1},|}
  in
  match Bench_rows.parse_line line with
  | None -> Alcotest.fail "row expected"
  | Some r -> check Alcotest.string "name" "real" r.Bench_rows.name

let test_bench_rows_longer_key () =
  (* A longer key containing the requested one must never satisfy it. *)
  let line = {|{"filename": "bogus", "name": "real", "mean_ns": 3.5}|} in
  check
    (Alcotest.option Alcotest.string)
    "name" (Some {|"real"|})
    (Bench_rows.field line "name");
  check
    (Alcotest.option Alcotest.string)
    "no name" None
    (Bench_rows.field {|{"filename": "x", "mean_ns": 1.0}|} "name")

let test_bench_rows_dups () =
  let rows, dups =
    Bench_rows.parse_lines
      [
        {|{"name": "a", "mean_ns": 1.0, "runs": 1},|};
        {|{"name": "a", "mean_ns": 2.0, "runs": 1},|};
        {|{"name": "b", "mean_ns": 3.0, "runs": 1},|};
      ]
  in
  check Alcotest.(list string) "dups" [ "a" ] dups;
  check
    Alcotest.(list string)
    "names" [ "a"; "b" ]
    (List.map (fun r -> r.Bench_rows.name) rows);
  check (Alcotest.float 0.0) "first wins" 1.0 (List.hd rows).Bench_rows.mean_ns

let test_bench_rows_diff_missing () =
  (* Regression: a bench renamed between OLD and NEW silently vanished from
     the gate — the report must surface it so --require-all can fail. *)
  let row name mean_ns = { Bench_rows.name; mean_ns; runs = 1 } in
  let report =
    Bench_rows.diff ~threshold:20.0
      [ row "kept" 100.0; row "renamed-away" 50.0 ]
      [ row "kept" 130.0; row "brand-new" 10.0 ]
  in
  check Alcotest.(list string) "missing" [ "renamed-away" ] report.Bench_rows.missing;
  check Alcotest.(list string) "added" [ "brand-new" ] report.Bench_rows.added;
  check Alcotest.int "regressed" 1 report.Bench_rows.regressed;
  check Alcotest.int "compared" 1 (List.length report.Bench_rows.compared)

(* ------------------------------------------------------------------ *)
(* Jsonl reader edge cases                                            *)
(* ------------------------------------------------------------------ *)

module Jz = Cet_util.Jsonl

let jz_ok s =
  match Jz.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let jz_err s =
  match Jz.parse s with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  | Error e -> e

let test_jsonl_surrogate_pair () =
  (* RFC 8259 spells astral codepoints as a UTF-16 surrogate pair of two
     \u escapes; the reader must fuse them into one 4-byte scalar. *)
  check Alcotest.string "U+1F600" "\xf0\x9f\x98\x80"
    (Option.get (Jz.str (jz_ok {|"\uD83D\uDE00"|})));
  (* A pair split by anything isn't a pair: each escape stands alone. *)
  check Alcotest.string "interrupted pair" "\xed\xa0\xbdx\xed\xb8\x80"
    (Option.get (Jz.str (jz_ok {|"\uD83Dx\uDE00"|})))

let test_jsonl_lone_surrogate_lenient () =
  (* No conforming writer emits a lone surrogate; reading one is lenient
     WTF-8 (3-byte form), not a parse error. *)
  check Alcotest.string "lone high" "\xed\xa0\xbd"
    (Option.get (Jz.str (jz_ok {|"\uD83D"|})));
  check Alcotest.string "lone low" "\xed\xb8\x80"
    (Option.get (Jz.str (jz_ok {|"\uDE00"|})))

let test_jsonl_deep_nesting () =
  let depth = 256 in
  let doc = String.make depth '[' ^ "1" ^ String.make depth ']' in
  let rec unwrap n v =
    if n = 0 then v
    else
      match Jz.list v with
      | Some [ inner ] -> unwrap (n - 1) inner
      | _ -> Alcotest.failf "level %d is not a singleton array" (depth - n)
  in
  check (Alcotest.float 0.0) "innermost" 1.0
    (Option.get (Jz.num (unwrap depth (jz_ok doc))))

let test_jsonl_rejects_nonfinite () =
  (* RFC 8259 has no NaN/Infinity tokens; accepting them would let a
     damaged report round-trip as numbers that poison every aggregate. *)
  List.iter
    (fun s -> ignore (jz_err s))
    [ "NaN"; "Infinity"; "-Infinity"; {|{"total_ms":NaN}|} ]

let test_jsonl_trailing_garbage_offset () =
  (* The error pinpoints the first offending byte so a truncated or
     concatenated line is findable in a multi-megabyte report. *)
  check Alcotest.string "offset" "byte 8: trailing input" (jz_err {|{"a":1} x|});
  match Jz.parse_lines "{\"ok\":1}\n{\"bad\"\n{\"ok\":2}" with
  | Ok _ -> Alcotest.fail "bad line accepted"
  | Error e ->
    check Alcotest.bool "line number" true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:")

(* ------------------------------------------------------------------ *)
(* Bench history geomean                                              *)
(* ------------------------------------------------------------------ *)

let test_bench_rows_geomean () =
  let row name mean_ns = { Bench_rows.name; mean_ns; runs = 1 } in
  (* 2x and 0.5x cancel in log space: geomean exactly 1. *)
  (match
     Bench_rows.geomean_ratio
       [ row "a" 100.0; row "b" 100.0; row "only-old" 1.0 ]
       [ row "a" 200.0; row "b" 50.0; row "only-new" 1.0 ]
   with
  | Some (g, n) ->
    check Alcotest.int "shared rows" 2 n;
    check (Alcotest.float 1e-9) "geomean" 1.0 g
  | None -> Alcotest.fail "expected a geomean");
  check Alcotest.bool "no shared rows" true
    (Bench_rows.geomean_ratio [ row "a" 1.0 ] [ row "b" 1.0 ] = None)

let suite =
  [
    ( "util.jsonl",
      [
        Alcotest.test_case "surrogate pairs combine" `Quick
          test_jsonl_surrogate_pair;
        Alcotest.test_case "lone surrogate lenient" `Quick
          test_jsonl_lone_surrogate_lenient;
        Alcotest.test_case "deep array nesting" `Quick test_jsonl_deep_nesting;
        Alcotest.test_case "NaN/Infinity rejected" `Quick
          test_jsonl_rejects_nonfinite;
        Alcotest.test_case "trailing garbage offset" `Quick
          test_jsonl_trailing_garbage_offset;
      ] );
    ( "util.bench_rows",
      [
        Alcotest.test_case "plain row" `Quick test_bench_rows_plain;
        Alcotest.test_case "key token inside a value" `Quick
          test_bench_rows_key_in_value;
        Alcotest.test_case "longer key rejected" `Quick test_bench_rows_longer_key;
        Alcotest.test_case "duplicates keep first" `Quick test_bench_rows_dups;
        Alcotest.test_case "diff reports missing benches" `Quick
          test_bench_rows_diff_missing;
        Alcotest.test_case "history geomean" `Quick test_bench_rows_geomean;
      ] );
    ( "util.domain_pool",
      [
        Alcotest.test_case "ordering" `Quick test_pool_ordering;
        Alcotest.test_case "empty + singleton" `Quick test_pool_empty;
        Alcotest.test_case "exception propagation" `Quick test_pool_exception;
        Alcotest.test_case "uneven load" `Quick test_pool_uneven_load;
        Alcotest.test_case "fold" `Quick test_pool_fold;
      ] );
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "in_range bounds" `Quick test_prng_in_range;
        Alcotest.test_case "float unit interval" `Quick test_prng_float_unit;
        Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
        Alcotest.test_case "chance rate" `Quick test_prng_chance_rate;
        Alcotest.test_case "choose_weighted ratio" `Quick test_prng_choose_weighted;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
      ] );
    ( "util.leb128",
      [
        Alcotest.test_case "uleb golden" `Quick test_leb_golden;
        Alcotest.test_case "sleb golden" `Quick test_sleb_golden;
        Alcotest.test_case "truncated input" `Quick test_leb_truncated;
        Alcotest.test_case "size_u" `Quick test_leb_size;
        qcheck qcheck_uleb;
        qcheck qcheck_uleb_large;
        qcheck qcheck_sleb;
      ] );
    ( "util.bytesio",
      [
        Alcotest.test_case "little endian" `Quick test_w_little_endian;
        Alcotest.test_case "align/pad" `Quick test_w_align_pad;
        Alcotest.test_case "writer/reader roundtrip" `Quick test_r_roundtrip;
        Alcotest.test_case "sub bounds" `Quick test_r_sub_bounds;
        Alcotest.test_case "seek" `Quick test_r_seek;
        qcheck qcheck_bytesio_u32;
        qcheck qcheck_bytesio_uleb;
      ] );
    ( "util.itable",
      [
        Alcotest.test_case "find/mem" `Quick test_itable_find;
        Alcotest.test_case "overlap rejected" `Quick test_itable_overlap_rejected;
        Alcotest.test_case "empty dropped" `Quick test_itable_empty_dropped;
        qcheck qcheck_itable_vs_linear;
      ] );
    ( "util.hexdump",
      [
        Alcotest.test_case "inline" `Quick test_hexdump_inline;
        Alcotest.test_case "line format" `Quick test_hexdump_lines;
      ] );
  ]
