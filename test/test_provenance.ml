(* Tests for decision provenance and the triage pipeline built on it:
   the provenance entry point must agree with the production analysis
   exactly, every verdict must be backed by evidence, the triage table
   must hold the determinism contract across ~jobs, and the plain
   (provenance-disabled) path must not pay for the feature. *)

module O = Cet_compiler.Options
module Reader = Cet_elf.Reader
module Substrate = Cet_disasm.Substrate
module FS = Core.Funseeker
module Prov = Core.Provenance
module Harness = Cet_eval.Harness
module Tables = Cet_eval.Tables

let check = Alcotest.check
let int_list = Alcotest.(list int)

let build ~profile ~index ~opts =
  let ir = Cet_corpus.Generator.program ~seed:2022 ~profile ~index in
  let res = Cet_compiler.Link.link opts ir in
  ( Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image,
    List.sort_uniq Int.compare (List.map snd res.Cet_compiler.Link.truth) )

(* Both compilers, both arches, and a C++ binary so FILTERENDBR has
   landing pads to drop (the interesting provenance records). *)
let corpus =
  lazy
    (let coreutils = Cet_corpus.Profile.scaled 0.05 Cet_corpus.Profile.coreutils in
     let spec_cpp =
       {
         (Cet_corpus.Profile.scaled 0.05 Cet_corpus.Profile.spec) with
         Cet_corpus.Profile.lang_cpp_fraction = 1.0;
       }
     in
     [
       ("gcc-x64", build ~profile:coreutils ~index:0 ~opts:O.default);
       ( "clang-x86",
         build ~profile:coreutils ~index:1
           ~opts:{ O.default with compiler = O.Clang; arch = Cet_x86.Arch.X86; pie = false }
       );
       ("gcc-x64-cpp", build ~profile:spec_cpp ~index:0 ~opts:O.default);
     ])

let configs =
  [ (1, FS.config1); (2, FS.config2); (3, FS.config3); (4, FS.config4) ]

(* analyze_prov must be observationally identical to analyze_st: same
   result record, and a kept set that IS the function list. *)
let test_prov_matches_analysis () =
  List.iter
    (fun (name, (bytes, _truth)) ->
      let st = Substrate.of_bytes bytes in
      List.iter
        (fun (i, config) ->
          let plain = FS.analyze_st ~config st in
          let r, prov = FS.analyze_prov ~config st in
          let label = Printf.sprintf "%s config%d" name i in
          check int_list (label ^ " functions") plain.FS.functions r.FS.functions;
          check Alcotest.int (label ^ " endbr_total") plain.FS.endbr_total
            r.FS.endbr_total;
          check Alcotest.int (label ^ " filtered_ir")
            plain.FS.filtered_indirect_return r.FS.filtered_indirect_return;
          check Alcotest.int (label ^ " filtered_lp")
            plain.FS.filtered_landing_pads r.FS.filtered_landing_pads;
          check Alcotest.int (label ^ " tail_calls") plain.FS.tail_calls_selected
            r.FS.tail_calls_selected;
          check int_list (label ^ " kept = functions") r.FS.functions (Prov.kept prov))
        configs;
      let plain = FS.analyze_st ~anchored:true st in
      let r, prov = FS.analyze_prov ~anchored:true st in
      check int_list (name ^ " anchored functions") plain.FS.functions r.FS.functions;
      check int_list (name ^ " anchored kept") r.FS.functions (Prov.kept prov))
    (Lazy.force corpus)

(* Every verdict must be explicable: a kept address has at least one
   recorded candidate source, and the filter counters of the result are
   exactly the filter decisions in the evidence. *)
let test_evidence_consistency () =
  List.iter
    (fun (name, (bytes, _truth)) ->
      let st = Substrate.of_bytes bytes in
      List.iter
        (fun (i, config) ->
          let r, prov = FS.analyze_prov ~config st in
          let label = Printf.sprintf "%s config%d" name i in
          List.iter
            (fun addr ->
              match Prov.find prov addr with
              | None -> Alcotest.failf "%s: kept 0x%x has no evidence" label addr
              | Some e ->
                if not e.Prov.e_kept then
                  Alcotest.failf "%s: kept 0x%x lacks kept verdict" label addr;
                if not (e.Prov.e_endbr || e.Prov.e_call_target || e.Prov.e_jmp_target)
                then
                  Alcotest.failf "%s: kept 0x%x has no candidate source" label addr)
            r.FS.functions;
          let filtered_ir, filtered_lp, kept_decisions =
            List.fold_left
              (fun (ir, lp, k) e ->
                match e.Prov.e_filter with
                | Some (Prov.Filtered_indirect_return _) -> (ir + 1, lp, k)
                | Some Prov.Filtered_landing_pad -> (ir, lp + 1, k)
                | Some Prov.Kept -> (ir, lp, k + 1)
                | None -> (ir, lp, k))
              (0, 0, 0) (Prov.list prov)
          in
          check Alcotest.int (label ^ " ir decisions = counter")
            r.FS.filtered_indirect_return filtered_ir;
          check Alcotest.int (label ^ " lp decisions = counter")
            r.FS.filtered_landing_pads filtered_lp;
          if config.FS.filter_endbr then
            check Alcotest.int (label ^ " every endbr got a decision")
              r.FS.endbr_total
              (filtered_ir + filtered_lp + kept_decisions)
          else
            check Alcotest.int (label ^ " filter off records nothing") 0
              (filtered_ir + filtered_lp + kept_decisions);
          (* Selected tail-call targets carry a winning vote. *)
          if config.FS.select_tail_calls then
            List.iter
              (fun e ->
                if e.Prov.e_selected then
                  if
                    not
                      (List.exists (fun v -> v.Prov.v_selected) e.Prov.e_votes)
                  then
                    Alcotest.failf "%s: selected 0x%x has no winning vote" label
                      e.Prov.e_addr)
              (Prov.list prov))
        configs)
    (Lazy.force corpus)

(* The rendered chain must name the verdict, and the landing-pad filter
   reason must be spelled out for a dropped catch block. *)
let test_explain_renders () =
  let bytes, _ = List.assoc "gcc-x64-cpp" (Lazy.force corpus) in
  let st = Substrate.of_bytes bytes in
  let r, prov = FS.analyze_prov st in
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  (match r.FS.functions with
  | [] -> Alcotest.fail "cpp binary identified nothing"
  | addr :: _ ->
    check Alcotest.bool "kept chain says KEPT" true
      (contains (Prov.explain prov addr) "KEPT"));
  check Alcotest.bool "unknown address is not a candidate" true
    (contains (Prov.explain prov 1) "NOT A CANDIDATE");
  if r.FS.filtered_landing_pads = 0 then
    Alcotest.fail "cpp binary filtered no landing pads (corpus too small?)";
  let pad =
    List.find
      (fun e -> e.Prov.e_filter = Some Prov.Filtered_landing_pad)
      (Prov.list prov)
  in
  let chain = Prov.explain prov pad.Prov.e_addr in
  check Alcotest.bool "pad chain names the landing pad" true
    (contains chain "landing pad");
  check Alcotest.bool "pad chain is a rejection" true (contains chain "REJECTED")

(* Triage over the harness: byte-identical across ~jobs, and its total is
   exactly the full configuration's fp + fn of Table II (same truth, same
   analysis, just bucketed). *)
let micro_profile =
  {
    Cet_corpus.Profile.coreutils with
    Cet_corpus.Profile.suite = "coreutils";
    programs = 2;
    funcs_lo = 30;
    funcs_hi = 40;
  }

let micro_configs =
  [ O.default; { O.default with O.compiler = O.Clang } ]

let triage_run ~jobs =
  Harness.run ~profiles:[ micro_profile ] ~configs:micro_configs ~jobs
    {
      Harness.default_options with
      Harness.seed = 11;
      scale = 1.0;
      timing = false;
      triage = true;
    }

let test_triage_identical_across_jobs () =
  let seq = triage_run ~jobs:1 in
  let par = triage_run ~jobs:4 in
  check Alcotest.string "triage table byte-identical"
    (Tables.Triage.render seq.Harness.triage)
    (Tables.Triage.render par.Harness.triage);
  let c4 = Tables.Table2.totals seq.Harness.table2 ~config:4 in
  check Alcotest.int "triage total = config4 fp + fn"
    (c4.Cet_eval.Metrics.fp + c4.Cet_eval.Metrics.fn)
    (Tables.Triage.total seq.Harness.triage)

let test_triage_off_is_empty () =
  let r =
    Harness.run ~profiles:[ micro_profile ] ~configs:micro_configs ~jobs:1
      { Harness.default_options with Harness.seed = 11; scale = 1.0; timing = false }
  in
  check Alcotest.int "no triage rows without --triage" 0
    (Tables.Triage.total r.Harness.triage)

(* The production path must not pay for provenance: with the substrate
   warm, analyze_st allocates exactly the same number of minor words on
   every call (the [?prov] plumbing is all [None] immediates), and the
   provenance entry point is the only one that allocates more. *)
let test_disabled_provenance_allocates_nothing_extra () =
  let bytes, _ = List.assoc "gcc-x64" (Lazy.force corpus) in
  let st = Substrate.of_bytes bytes in
  ignore (FS.analyze_st st);
  ignore (FS.analyze_prov st);
  let measure f =
    let before = Gc.minor_words () in
    ignore (Sys.opaque_identity (f ()));
    Gc.minor_words () -. before
  in
  let plain () = measure (fun () -> FS.analyze_st st) in
  let a = plain () and b = plain () and c = plain () in
  check (Alcotest.float 0.0) "plain path allocation is exactly stable" a b;
  check (Alcotest.float 0.0) "plain path allocation is exactly stable (2)" b c;
  let prov = measure (fun () -> FS.analyze_prov st) in
  if not (prov > a) then
    Alcotest.failf
      "provenance recording allocated %.0f words but the plain path %.0f — \
       recording cost is not confined to analyze_prov" prov a

let suite =
  [
    ( "provenance",
      [
        Alcotest.test_case "analyze_prov = analyze_st" `Quick
          test_prov_matches_analysis;
        Alcotest.test_case "every verdict is backed by evidence" `Quick
          test_evidence_consistency;
        Alcotest.test_case "explain renders the chain" `Quick test_explain_renders;
        Alcotest.test_case "triage byte-identical across jobs" `Quick
          test_triage_identical_across_jobs;
        Alcotest.test_case "triage off records nothing" `Quick
          test_triage_off_is_empty;
        Alcotest.test_case "disabled provenance allocates nothing extra" `Quick
          test_disabled_provenance_allocates_nothing_extra;
      ] );
  ]
