(* Scheduler-core tests: the Work_queue pool, guard, breaker, backoff
   arithmetic and the deadline fraction it sheds against — exercised in
   isolation from the harness (test_robust.ml covers the end-to-end
   story). *)

module W = Cet_util.Work_queue
module Deadline = Cet_util.Deadline
module Prng = Cet_util.Prng

let check = Alcotest.check
let qcheck t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* The pool: determinism, admission, failure draining                 *)
(* ------------------------------------------------------------------ *)

(* A mildly irregular per-item workload, so steals actually happen. *)
let busy_square k =
  let acc = ref 0 in
  for i = 0 to 50 + (k mod 7 * 40) do
    acc := !acc + ((k * 31) + i)
  done;
  (k * k) + (!acc land 0)

let qcheck_map_matches_sequential =
  QCheck.Test.make ~name:"work_queue: map = Array.init (any jobs/cap/seed)"
    ~count:60
    QCheck.(triple (int_bound 200) (int_range 1 8) (int_range 1 12))
    (fun (n, jobs, cap) ->
      let t = W.create (W.config ~jobs ~cap ~seed:(n + jobs) ()) in
      W.map t n busy_square = Array.init n busy_square)

let qcheck_map_matches_sequential_chaos =
  QCheck.Test.make
    ~name:"work_queue: chaos never changes map results" ~count:30
    QCheck.(pair (int_bound 120) (int_range 1 6))
    (fun (n, jobs) ->
      let chaos =
        {
          (W.Chaos.default ~seed:(n lxor 0x5bd1)) with
          (* Aggressive rates, tiny sleeps: scramble scheduling hard
             without slowing the property test. *)
          W.Chaos.c_stall_p = 0.3;
          c_delay_p = 0.4;
          c_fault_p = 0.3;
          c_max_delay_ns = 20_000;
        }
      in
      let t = W.create (W.config ~jobs ~chaos ()) in
      W.map t n busy_square = Array.init n busy_square)

let test_map_empty_and_single () =
  let t = W.create (W.config ~jobs:4 ()) in
  check Alcotest.(array int) "empty" [||] (W.map t 0 busy_square);
  check Alcotest.(array int) "single"
    [| busy_square 0 |]
    (W.map t 1 busy_square)

let test_map_reusable_instance () =
  let t = W.create (W.config ~jobs:3 ()) in
  let a = W.map t 40 busy_square in
  let b = W.map t 40 busy_square in
  check Alcotest.(array int) "second map on same instance" a b;
  check Alcotest.int "items accumulate" 80 (W.stats t).W.s_items

let test_admission_cap_respected () =
  (* A tight cap with slow items: the high-water mark must never pass
     the cap, and the producer must still finish the whole plan
     (backpressure turns it into a worker, not a deadlock). *)
  let cap = 3 in
  let t = W.create (W.config ~jobs:4 ~cap ()) in
  let slow k =
    let acc = ref k in
    for i = 0 to 5_000 do
      acc := !acc lxor (i * k)
    done;
    !acc
  in
  let r = W.map t 100 slow in
  check Alcotest.int "all items ran" 100 (Array.length r);
  let hw = (W.stats t).W.s_max_pending in
  if hw > cap then
    Alcotest.failf "admission high-water %d exceeds cap %d" hw cap

let test_map_negative_size_rejected () =
  let t = W.create (W.config ~jobs:2 ()) in
  (try
     ignore (W.map t (-1) busy_square);
     Alcotest.fail "negative size accepted"
   with Invalid_argument _ -> ())

let test_map_lowest_failure_wins () =
  (* Two failing indices: whichever worker notices second must lose to
     the lower index, whatever the interleaving. *)
  let t = W.create (W.config ~jobs:4 ()) in
  let f k =
    if k = 17 then failwith "item-17"
    else if k = 63 then failwith "item-63"
    else busy_square k
  in
  (try
     ignore (W.map t 80 f);
     Alcotest.fail "failure did not propagate"
   with Failure msg -> check Alcotest.string "lowest index wins" "item-17" msg)

let test_config_validation () =
  let bad f = try ignore (W.create (f ())); false with Invalid_argument _ -> true in
  check Alcotest.bool "cap >= 1" true (bad (fun () -> W.config ~cap:0 ()));
  check Alcotest.bool "attempts >= 1" true
    (bad (fun () -> W.config ~attempts:0 ()));
  check Alcotest.bool "run_seconds > 0" true
    (bad (fun () -> W.config ~run_seconds:0.0 ()));
  check Alcotest.bool "chaos probability in [0,1]" true
    (bad (fun () ->
         W.config
           ~chaos:{ (W.Chaos.default ~seed:1) with W.Chaos.c_fault_p = 1.5 }
           ()))

(* ------------------------------------------------------------------ *)
(* Backoff arithmetic                                                 *)
(* ------------------------------------------------------------------ *)

let qcheck_backoff_monotone =
  QCheck.Test.make ~name:"backoff: non-decreasing in attempt, capped"
    ~count:300
    QCheck.(triple (int_range 1 1_000_000) (int_range 1 1_000_000) (int_range 1 60))
    (fun (base_ns, extra, attempt) ->
      let max_ns = base_ns + extra in
      let d = W.backoff_ns ~base_ns ~max_ns ~attempt in
      let d' = W.backoff_ns ~base_ns ~max_ns ~attempt:(attempt + 1) in
      d >= base_ns && d <= max_ns && d' >= d)

let test_backoff_schedule () =
  let d a = W.backoff_ns ~base_ns:1_000 ~max_ns:50_000 ~attempt:a in
  check Alcotest.int "attempt 1" 1_000 (d 1);
  check Alcotest.int "attempt 2" 2_000 (d 2);
  check Alcotest.int "attempt 3" 4_000 (d 3);
  check Alcotest.int "capped" 50_000 (d 40);
  check Alcotest.int "zero base stays zero"
    0 (W.backoff_ns ~base_ns:0 ~max_ns:50_000 ~attempt:9)

let qcheck_jitter_bounds =
  QCheck.Test.make ~name:"backoff: jitter stays in [d/2, d]" ~count:300
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 40))
    (fun (base_ns, attempt) ->
      let max_ns = 64_000_000 in
      let g = Prng.create (base_ns lxor attempt) in
      let d = W.backoff_ns ~base_ns ~max_ns ~attempt in
      let j = W.jittered_backoff_ns g ~base_ns ~max_ns ~attempt in
      j >= d / 2 && j <= d)

(* ------------------------------------------------------------------ *)
(* Circuit breaker state machine                                      *)
(* ------------------------------------------------------------------ *)

let test_breaker_transitions () =
  let b = W.Breaker.create { W.Breaker.threshold = 3; cooldown = 2 } in
  check Alcotest.string "starts closed" "closed" (W.Breaker.state_name b);
  (* Two failures: still closed (threshold is 3). *)
  check Alcotest.bool "failure 1" false (W.Breaker.failure b);
  check Alcotest.bool "failure 2" false (W.Breaker.failure b);
  check Alcotest.string "still closed" "closed" (W.Breaker.state_name b);
  (* A success resets the consecutive count. *)
  ignore (W.Breaker.success b : bool);
  check Alcotest.bool "failure after reset" false (W.Breaker.failure b);
  check Alcotest.bool "failure" false (W.Breaker.failure b);
  check Alcotest.bool "third consecutive opens" true (W.Breaker.failure b);
  check Alcotest.string "open" "open" (W.Breaker.state_name b);
  (* Cooldown = 2 skipped units, then the next ask is the probe. *)
  check Alcotest.bool "skip 1"
    true (W.Breaker.ask b = W.Breaker.Skip);
  check Alcotest.bool "skip 2"
    true (W.Breaker.ask b = W.Breaker.Skip);
  check Alcotest.bool "probe after cooldown"
    true (W.Breaker.ask b = W.Breaker.Probe);
  check Alcotest.string "half-open" "half-open" (W.Breaker.state_name b);
  (* While the probe is in flight, other units are skipped. *)
  check Alcotest.bool "skip during probe"
    true (W.Breaker.ask b = W.Breaker.Skip);
  (* A successful probe closes the breaker again. *)
  check Alcotest.bool "probe success closes" true (W.Breaker.success b);
  check Alcotest.string "closed again" "closed" (W.Breaker.state_name b);
  check Alcotest.bool "allows again"
    true (W.Breaker.ask b = W.Breaker.Allow)

let test_breaker_probe_failure_reopens () =
  let b = W.Breaker.create { W.Breaker.threshold = 1; cooldown = 1 } in
  check Alcotest.bool "opens" true (W.Breaker.failure b);
  check Alcotest.bool "skip" true (W.Breaker.ask b = W.Breaker.Skip);
  check Alcotest.bool "probe" true (W.Breaker.ask b = W.Breaker.Probe);
  check Alcotest.bool "probe failure reopens" true (W.Breaker.failure b);
  check Alcotest.string "open again" "open" (W.Breaker.state_name b);
  check Alcotest.bool "skips again"
    true (W.Breaker.ask b = W.Breaker.Skip)

let test_breaker_config_validation () =
  (try
     ignore (W.Breaker.create { W.Breaker.threshold = 0; cooldown = 1 });
     Alcotest.fail "threshold 0 accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (W.Breaker.create { W.Breaker.threshold = 1; cooldown = -1 });
     Alcotest.fail "negative cooldown accepted"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Guarded units: retry, retryability veto, breaker integration       *)
(* ------------------------------------------------------------------ *)

let guard_config ?breaker ?attempts () =
  (* Microscopic backoff so retry tests run in microseconds. *)
  W.config ~jobs:1 ?attempts ?breaker ~backoff_base_ns:1_000
    ~backoff_max_ns:4_000 ()

let test_guard_first_attempt_success () =
  let t = W.create (guard_config ()) in
  match W.guard t ~key:"u" ~group:"g" (fun ~attempt ~degraded ->
      check Alcotest.int "attempt number" 1 attempt;
      check Alcotest.bool "not degraded" false degraded;
      42)
  with
  | Ok g ->
    check Alcotest.int "value" 42 g.W.g_value;
    check Alcotest.int "one attempt" 1 g.W.g_attempts;
    check Alcotest.bool "not shed" false g.W.g_degraded
  | Error _ -> Alcotest.fail "guard failed"

let test_guard_retries_then_succeeds () =
  let t = W.create (guard_config ~attempts:3 ()) in
  let calls = ref 0 in
  (match W.guard t ~key:"u" ~group:"g" (fun ~attempt ~degraded:_ ->
       incr calls;
       if attempt < 3 then failwith "flaky" else "ok")
   with
  | Ok g ->
    check Alcotest.string "value" "ok" g.W.g_value;
    check Alcotest.int "attempts recorded" 3 g.W.g_attempts
  | Error _ -> Alcotest.fail "guard failed");
  check Alcotest.int "work ran three times" 3 !calls;
  check Alcotest.int "retries counted" 2 (W.stats t).W.s_retries

let test_guard_exhausts_attempts () =
  let t = W.create (guard_config ~attempts:2 ()) in
  match W.guard t ~key:"u" ~group:"g" (fun ~attempt:_ ~degraded:_ ->
      failwith "always")
  with
  | Ok _ -> Alcotest.fail "guard succeeded"
  | Error f ->
    check Alcotest.int "both attempts ran" 2 f.W.w_attempts;
    check Alcotest.bool "not a breaker skip" false f.W.w_breaker_skip;
    check Alcotest.bool "carries the exception" true
      (match f.W.w_error with
      | Failure m -> m = "always"
      | _ -> false)

let test_guard_retryable_veto () =
  let t = W.create (guard_config ~attempts:3 ()) in
  let calls = ref 0 in
  (match W.guard t ~key:"u" ~group:"g"
      ~retryable:(function Failure m -> m <> "fatal" | _ -> true)
      (fun ~attempt:_ ~degraded:_ ->
        incr calls;
        failwith "fatal")
   with
  | Ok _ -> Alcotest.fail "guard succeeded"
  | Error f -> check Alcotest.int "single attempt" 1 f.W.w_attempts);
  check Alcotest.int "no retry of a vetoed failure" 1 !calls

let test_guard_breaker_fast_fail () =
  let breaker = { W.Breaker.threshold = 2; cooldown = 3 } in
  let t = W.create (guard_config ~breaker ~attempts:1 ()) in
  let fail () =
    W.guard t ~key:"u" ~group:"prog" (fun ~attempt:_ ~degraded:_ ->
        failwith "boom")
  in
  ignore (fail ());
  ignore (fail ());
  (* Threshold reached: the next unit in the group is fast-failed
     without the work running. *)
  let ran = ref false in
  (match W.guard t ~key:"u3" ~group:"prog" (fun ~attempt:_ ~degraded:_ ->
       ran := true)
   with
  | Ok _ -> Alcotest.fail "breaker did not trip"
  | Error f ->
    check Alcotest.bool "flagged as skip" true f.W.w_breaker_skip;
    check Alcotest.int "work never ran" 0 f.W.w_attempts;
    check Alcotest.bool "Breaker_tripped carries the group" true
      (match f.W.w_error with
      | W.Breaker_tripped g -> g = "prog"
      | _ -> false));
  check Alcotest.bool "work never ran" false !ran;
  (* A different group is unaffected. *)
  (match W.guard t ~key:"o" ~group:"other" (fun ~attempt:_ ~degraded:_ -> 7)
   with
  | Ok g -> check Alcotest.int "other group runs" 7 g.W.g_value
  | Error _ -> Alcotest.fail "other group tripped");
  check Alcotest.int "one open counted" 1 (W.stats t).W.s_breaker_opens;
  check Alcotest.int "one skip counted" 1 (W.stats t).W.s_breaker_skips

let test_guard_breaker_recovers_via_probe () =
  let breaker = { W.Breaker.threshold = 1; cooldown = 1 } in
  let t = W.create (guard_config ~breaker ~attempts:1 ()) in
  let unit ~ok key =
    W.guard t ~key ~group:"prog" (fun ~attempt:_ ~degraded:_ ->
        if not ok then failwith "down")
  in
  check Alcotest.bool "opens" true (Result.is_error (unit ~ok:false "a"));
  check Alcotest.bool "cooldown skip" true
    (match unit ~ok:true "b" with
    | Error { W.w_breaker_skip = true; _ } -> true
    | _ -> false);
  (* Cooldown spent: this unit is the half-open probe, and it runs. *)
  check Alcotest.bool "probe runs and closes" true
    (Result.is_ok (unit ~ok:true "c"));
  check Alcotest.bool "group readmitted" true
    (Result.is_ok (unit ~ok:true "d"))

(* ------------------------------------------------------------------ *)
(* Shedding and Deadline.remaining_fraction                           *)
(* ------------------------------------------------------------------ *)

let test_remaining_fraction_unarmed () =
  check Alcotest.bool "None when disarmed" true
    (Deadline.remaining_fraction () = None)

let test_remaining_fraction_armed () =
  Deadline.with_ ~seconds:3600.0 (fun () ->
      match Deadline.remaining_fraction () with
      | None -> Alcotest.fail "armed deadline reported None"
      | Some f ->
        if f < 0.9 || f > 1.0 then
          Alcotest.failf "fresh hour-long budget at fraction %g" f)

let qcheck_nested_deadline_never_extends =
  (* An inner deadline never extends the enclosing one: the ambient
     remaining *time* under the inner scope is <= the outer scope's, so
     outer_budget * outer_fraction bounds inner_budget * inner_fraction
     (small epsilon for the clock reads between the two samples). *)
  QCheck.Test.make ~name:"deadline: nesting never extends the budget"
    ~count:50
    QCheck.(pair (float_range 1.0 100.0) (float_range 1.0 500.0))
    (fun (outer_s, inner_s) ->
      Deadline.with_ ~seconds:outer_s (fun () ->
          let outer_rem =
            match Deadline.remaining_fraction () with
            | Some f -> f *. outer_s
            | None -> QCheck.Test.fail_report "outer disarmed"
          in
          Deadline.with_ ~seconds:inner_s (fun () ->
              let eff = Float.min inner_s outer_s in
              match Deadline.remaining_fraction () with
              | None -> QCheck.Test.fail_report "inner disarmed"
              | Some f -> (f *. eff) <= outer_rem +. 1e-3)))

let test_guard_sheds_under_pressure () =
  (* shed_fraction 2.0 > any real fraction: every guarded unit under an
     ambient deadline runs degraded — the deterministic recipe the
     harness shed test uses, exercised here at the scheduler layer. *)
  let t =
    W.create
      (W.config ~jobs:1 ~run_seconds:3600.0 ~shed_fraction:2.0 ())
  in
  let r =
    W.map t 3 (fun k ->
        match
          W.guard t ~key:(string_of_int k) ~group:"g"
            (fun ~attempt:_ ~degraded -> degraded)
        with
        | Ok g -> g.W.g_degraded && g.W.g_value
        | Error _ -> false)
  in
  check Alcotest.(array bool) "every unit shed" [| true; true; true |] r;
  check Alcotest.int "sheds counted" 3 (W.stats t).W.s_sheds

let test_guard_no_shed_without_deadline () =
  let t = W.create (W.config ~jobs:1 ~shed_fraction:2.0 ()) in
  match W.guard t ~key:"u" ~group:"g" (fun ~attempt:_ ~degraded -> degraded)
  with
  | Ok g ->
    check Alcotest.bool "no ambient deadline, no shed" false g.W.g_value
  | Error _ -> Alcotest.fail "guard failed"

(* ------------------------------------------------------------------ *)
(* Events                                                             *)
(* ------------------------------------------------------------------ *)

let test_observer_sees_backoff_and_breaker () =
  let events = ref [] in
  let lock = Mutex.create () in
  let observer e =
    Mutex.protect lock (fun () -> events := e :: !events)
  in
  let breaker = { W.Breaker.threshold = 1; cooldown = 1 } in
  let t =
    W.create ~observer
      (W.config ~jobs:1 ~attempts:2 ~breaker ~backoff_base_ns:1_000
         ~backoff_max_ns:2_000 ())
  in
  ignore
    (W.guard t ~key:"u" ~group:"g" (fun ~attempt:_ ~degraded:_ ->
         failwith "x"));
  ignore
    (W.guard t ~key:"v" ~group:"g" (fun ~attempt:_ ~degraded:_ -> ()));
  let has p = List.exists p !events in
  check Alcotest.bool "Backoff observed" true
    (has (function W.Backoff { key = "u"; attempt = 1; _ } -> true | _ -> false));
  check Alcotest.bool "Breaker_open observed" true
    (has (function W.Breaker_open { group = "g"; _ } -> true | _ -> false));
  check Alcotest.bool "Breaker_skip observed" true
    (has (function W.Breaker_skip { group = "g"; key = "v" } -> true | _ -> false))

let suite =
  [
    ( "scheduler",
      [
        Alcotest.test_case "map: empty and single" `Quick
          test_map_empty_and_single;
        Alcotest.test_case "map: instance reusable" `Quick
          test_map_reusable_instance;
        Alcotest.test_case "map: admission cap respected" `Quick
          test_admission_cap_respected;
        Alcotest.test_case "map: negative size rejected" `Quick
          test_map_negative_size_rejected;
        Alcotest.test_case "map: lowest failing index wins" `Quick
          test_map_lowest_failure_wins;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        qcheck qcheck_map_matches_sequential;
        qcheck qcheck_map_matches_sequential_chaos;
        Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
        qcheck qcheck_backoff_monotone;
        qcheck qcheck_jitter_bounds;
        Alcotest.test_case "breaker transitions" `Quick
          test_breaker_transitions;
        Alcotest.test_case "breaker probe failure reopens" `Quick
          test_breaker_probe_failure_reopens;
        Alcotest.test_case "breaker config validation" `Quick
          test_breaker_config_validation;
        Alcotest.test_case "guard: first attempt success" `Quick
          test_guard_first_attempt_success;
        Alcotest.test_case "guard: retries then succeeds" `Quick
          test_guard_retries_then_succeeds;
        Alcotest.test_case "guard: exhausts attempts" `Quick
          test_guard_exhausts_attempts;
        Alcotest.test_case "guard: retryable veto" `Quick
          test_guard_retryable_veto;
        Alcotest.test_case "guard: breaker fast-fail" `Quick
          test_guard_breaker_fast_fail;
        Alcotest.test_case "guard: breaker recovers via probe" `Quick
          test_guard_breaker_recovers_via_probe;
        Alcotest.test_case "deadline fraction: unarmed" `Quick
          test_remaining_fraction_unarmed;
        Alcotest.test_case "deadline fraction: armed" `Quick
          test_remaining_fraction_armed;
        qcheck qcheck_nested_deadline_never_extends;
        Alcotest.test_case "guard: sheds under pressure" `Quick
          test_guard_sheds_under_pressure;
        Alcotest.test_case "guard: no shed without deadline" `Quick
          test_guard_no_shed_without_deadline;
        Alcotest.test_case "observer: backoff and breaker events" `Quick
          test_observer_sees_backoff_and_breaker;
      ] );
  ]
