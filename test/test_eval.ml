(* Tests for cet_eval: metrics, ground truth, table accumulators, and an
   end-to-end harness shape check on a micro corpus. *)

module Metrics = Cet_eval.Metrics
module GT = Cet_eval.Ground_truth
module Tables = Cet_eval.Tables
module Harness = Cet_eval.Harness

let check = Alcotest.check
let flt = Alcotest.float 1e-6

let test_metrics_basics () =
  let c = Metrics.compare_sets ~truth:[ 1; 2; 3; 4 ] ~found:[ 2; 3; 5 ] in
  check Alcotest.int "tp" 2 c.Metrics.tp;
  check Alcotest.int "fp" 1 c.Metrics.fp;
  check Alcotest.int "fn" 2 c.Metrics.fn;
  check flt "precision" (200.0 /. 3.0) (Metrics.precision c);
  check flt "recall" 50.0 (Metrics.recall c)

let test_metrics_edge_cases () =
  let c = Metrics.compare_sets ~truth:[] ~found:[] in
  check flt "precision empty" 100.0 (Metrics.precision c);
  check flt "recall empty" 100.0 (Metrics.recall c);
  let c = Metrics.compare_sets ~truth:[ 1 ] ~found:[] in
  check flt "recall zero" 0.0 (Metrics.recall c);
  check flt "precision no-report" 100.0 (Metrics.precision c)

let test_metrics_dedup () =
  let c = Metrics.compare_sets ~truth:[ 1; 1; 2 ] ~found:[ 1; 1; 1 ] in
  check Alcotest.int "tp dedup" 1 c.Metrics.tp;
  check Alcotest.int "fn dedup" 1 c.Metrics.fn;
  check Alcotest.int "fp dedup" 0 c.Metrics.fp

let test_metrics_add () =
  let a = { Metrics.tp = 1; fp = 2; fn = 3 } in
  let b = { Metrics.tp = 10; fp = 20; fn = 30 } in
  let s = Metrics.add a b in
  check Alcotest.int "tp" 11 s.Metrics.tp;
  check Alcotest.int "fp" 22 s.Metrics.fp;
  check Alcotest.int "fn" 33 s.Metrics.fn

let test_false_entries () =
  let fps, fns = Metrics.false_entries ~truth:[ 1; 2; 3 ] ~found:[ 2; 9 ] in
  check Alcotest.(list int) "fps" [ 9 ] fps;
  check Alcotest.(list int) "fns" [ 1; 3 ] fns

let test_f1 () =
  let c = { Metrics.tp = 1; fp = 1; fn = 1 } in
  check flt "f1" 50.0 (Metrics.f1 c)

let test_fragment_names () =
  check Alcotest.bool ".cold" true (GT.is_fragment_name "sort_files.cold");
  check Alcotest.bool ".part.0" true (GT.is_fragment_name "quotearg.part.0");
  check Alcotest.bool ".part.12" true (GT.is_fragment_name "x.part.12");
  check Alcotest.bool "plain" false (GT.is_fragment_name "main");
  check Alcotest.bool "dotted but not fragment" false (GT.is_fragment_name "a.b");
  check Alcotest.bool "thunk" false (GT.is_fragment_name "__x86.get_pc_thunk.bx")

let test_table1_shares () =
  let t = Tables.Table1.create () in
  for _ = 1 to 98 do
    Tables.Table1.record t ~compiler:"gcc" ~suite:"spec" Core.Study.At_function_entry
  done;
  Tables.Table1.record t ~compiler:"gcc" ~suite:"spec" Core.Study.At_landing_pad;
  Tables.Table1.record t ~compiler:"gcc" ~suite:"spec" Core.Study.After_indirect_return_call;
  check flt "entry" 98.0
    (Tables.Table1.share t ~compiler:"gcc" ~suite:"spec" Core.Study.At_function_entry);
  check flt "lp" 1.0
    (Tables.Table1.share t ~compiler:"gcc" ~suite:"spec" Core.Study.At_landing_pad)

let test_fig3_shares () =
  let t = Tables.Fig3.create () in
  let p e j c =
    { Core.Study.endbr_at_head = e; dir_jmp_target = j; dir_call_target = c }
  in
  Tables.Fig3.record t (p true false true);
  Tables.Fig3.record t (p true false true);
  Tables.Fig3.record t (p false false false);
  Tables.Fig3.record t (p false true false);
  check Alcotest.int "total" 4 (Tables.Fig3.total t);
  check flt "endbr+call" 50.0 (Tables.Fig3.share t "endbr+call");
  check flt "none" 25.0 (Tables.Fig3.share t "none");
  check flt "jmp" 25.0 (Tables.Fig3.share t "jmp")

let test_table2_totals () =
  let t = Tables.Table2.create () in
  Tables.Table2.record t ~compiler:"gcc" ~suite:"spec" ~config:1
    { Metrics.tp = 8; fp = 2; fn = 0 };
  Tables.Table2.record t ~compiler:"clang" ~suite:"spec" ~config:1
    { Metrics.tp = 2; fp = 8; fn = 0 };
  let tot = Tables.Table2.totals t ~config:1 in
  check Alcotest.int "tp" 10 tot.Metrics.tp;
  check Alcotest.int "fp" 10 tot.Metrics.fp;
  check flt "precision" 50.0 (Metrics.precision tot)

let test_table3_time () =
  let t = Tables.Table3.create () in
  Tables.Table3.record_time t ~arch:"x64" ~suite:"spec" ~tool:"fetch" 0.4;
  Tables.Table3.record_time t ~arch:"x64" ~suite:"spec" ~tool:"fetch" 0.6;
  check flt "mean" 0.5 (Tables.Table3.mean_time t ~tool:"fetch")

let micro_profile =
  {
    Cet_corpus.Profile.coreutils with
    Cet_corpus.Profile.suite = "coreutils";
    programs = 1;
    funcs_lo = 50;
    funcs_hi = 70;
  }

let micro_spec =
  {
    Cet_corpus.Profile.spec with
    Cet_corpus.Profile.programs = 1;
    funcs_lo = 60;
    funcs_hi = 80;
    lang_cpp_fraction = 1.0;
  }

let test_harness_shapes () =
  let results =
    Harness.run
      ~profiles:[ micro_profile; micro_spec ]
      { Harness.default_options with Harness.seed = 99; scale = 1.0; timing = true }
  in
  check Alcotest.int "binaries" 96 results.Harness.binaries;
  check Alcotest.bool "functions counted" true (results.Harness.functions > 1000);
  (* Table II shape: config 3 trades precision for recall. *)
  let prec cfg = Metrics.precision (Tables.Table2.totals results.Harness.table2 ~config:cfg) in
  let rec_ cfg = Metrics.recall (Tables.Table2.totals results.Harness.table2 ~config:cfg) in
  check Alcotest.bool "c3 precision collapses" true (prec 3 < 60.0);
  check Alcotest.bool "c2 precision high" true (prec 2 > 95.0);
  check Alcotest.bool "c2 prec >= c1" true (prec 2 >= prec 1);
  check Alcotest.bool "c3 recall >= c2" true (rec_ 3 >= rec_ 2);
  check Alcotest.bool "c4 recall >= c2" true (rec_ 4 >= rec_ 2);
  (* Table III shape: FunSeeker dominates. *)
  let t3 tool = Tables.Table3.totals results.Harness.table3 ~tool in
  check Alcotest.bool "fs recall > ida" true
    (Metrics.recall (t3 "funseeker") > Metrics.recall (t3 "ida"));
  check Alcotest.bool "fs recall > fetch" true
    (Metrics.recall (t3 "funseeker") > Metrics.recall (t3 "fetch"));
  check Alcotest.bool "fs precision >= 99" true (Metrics.precision (t3 "funseeker") > 99.0);
  (* SPEC C++ landing pads appear in Table I. *)
  check Alcotest.bool "spec exception share" true
    (Tables.Table1.share results.Harness.table1 ~compiler:"gcc" ~suite:"spec"
       Core.Study.At_landing_pad
    > 5.0);
  (* Rendering produces the expected headers. *)
  let all = Harness.render_all results in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check Alcotest.bool needle true (contains all needle))
    [ "TABLE I"; "FIGURE 3"; "TABLE II"; "TABLE III" ]

(* ------------------------------------------------------------------ *)
(* Mergeable accumulators and the parallel harness                     *)
(* ------------------------------------------------------------------ *)

module Dataset = Cet_corpus.Dataset

let test_table1_merge () =
  let record t n loc =
    for _ = 1 to n do
      Tables.Table1.record t ~compiler:"gcc" ~suite:"spec" loc
    done
  in
  let whole = Tables.Table1.create () in
  record whole 98 Core.Study.At_function_entry;
  record whole 2 Core.Study.At_landing_pad;
  let part1 = Tables.Table1.create () and part2 = Tables.Table1.create () in
  record part1 40 Core.Study.At_function_entry;
  record part2 58 Core.Study.At_function_entry;
  record part1 1 Core.Study.At_landing_pad;
  record part2 1 Core.Study.At_landing_pad;
  let merged = Tables.Table1.create () in
  Tables.Table1.merge merged part1;
  Tables.Table1.merge merged part2;
  check Alcotest.string "render" (Tables.Table1.render whole) (Tables.Table1.render merged)

let test_fig3_merge () =
  let p e j c =
    { Core.Study.endbr_at_head = e; dir_jmp_target = j; dir_call_target = c }
  in
  let whole = Tables.Fig3.create () in
  let part1 = Tables.Fig3.create () and part2 = Tables.Fig3.create () in
  List.iteri
    (fun i props ->
      Tables.Fig3.record whole props;
      Tables.Fig3.record (if i mod 2 = 0 then part1 else part2) props)
    [ p true false true; p true false true; p false false false; p false true false ];
  let merged = Tables.Fig3.create () in
  Tables.Fig3.merge merged part1;
  Tables.Fig3.merge merged part2;
  check Alcotest.int "total" (Tables.Fig3.total whole) (Tables.Fig3.total merged);
  check Alcotest.string "render" (Tables.Fig3.render whole) (Tables.Fig3.render merged)

let test_table2_merge () =
  let whole = Tables.Table2.create () in
  let part1 = Tables.Table2.create () and part2 = Tables.Table2.create () in
  let feed t ~compiler c = Tables.Table2.record t ~compiler ~suite:"spec" ~config:1 c in
  let a = { Metrics.tp = 8; fp = 2; fn = 0 } and b = { Metrics.tp = 2; fp = 8; fn = 1 } in
  feed whole ~compiler:"gcc" a;
  feed whole ~compiler:"clang" b;
  feed part1 ~compiler:"gcc" a;
  feed part2 ~compiler:"clang" b;
  let merged = Tables.Table2.create () in
  Tables.Table2.merge merged part1;
  Tables.Table2.merge merged part2;
  check Alcotest.bool "totals" true
    (Tables.Table2.totals whole ~config:1 = Tables.Table2.totals merged ~config:1);
  check Alcotest.string "render" (Tables.Table2.render whole) (Tables.Table2.render merged)

let test_table3_merge () =
  let whole = Tables.Table3.create () in
  let part1 = Tables.Table3.create () and part2 = Tables.Table3.create () in
  let feed t c dt =
    Tables.Table3.record t ~arch:"x64" ~suite:"spec" ~tool:"fetch" c;
    Tables.Table3.record_time t ~arch:"x64" ~suite:"spec" ~tool:"fetch" dt
  in
  let a = { Metrics.tp = 5; fp = 1; fn = 2 } and b = { Metrics.tp = 7; fp = 0; fn = 1 } in
  feed whole a 0.4;
  feed whole b 0.6;
  feed part1 a 0.4;
  feed part2 b 0.6;
  let merged = Tables.Table3.create () in
  Tables.Table3.merge merged part1;
  Tables.Table3.merge merged part2;
  check Alcotest.bool "counts" true
    (Tables.Table3.totals whole ~tool:"fetch" = Tables.Table3.totals merged ~tool:"fetch");
  check flt "mean time" 0.5 (Tables.Table3.mean_time merged ~tool:"fetch");
  check Alcotest.string "render" (Tables.Table3.render whole) (Tables.Table3.render merged)

let test_parallel_equivalence () =
  (* The tentpole guarantee: a multi-domain run merges its per-worker
     partial tables in plan order and renders byte-identically to the
     sequential run.  [timing = false] pins the only nondeterministic
     columns (wall clock) to zero. *)
  let opts = { Harness.default_options with Harness.seed = 99; scale = 1.0; timing = false } in
  let profiles = [ micro_profile; micro_spec ] in
  let seq = Harness.run ~profiles ~jobs:1 opts in
  let par = Harness.run ~profiles ~jobs:4 opts in
  check Alcotest.int "binaries" seq.Harness.binaries par.Harness.binaries;
  check Alcotest.int "functions" seq.Harness.functions par.Harness.functions;
  check Alcotest.string "byte-identical render" (Harness.render_all seq)
    (Harness.render_all par)

let test_ablation_truth_dedup () =
  (* Regression: the SSVI ablation must measure the deduplicated entry
     set.  Pre-fix it took [List.map snd bin.truth] verbatim, so a binary
     whose truth carries aliased (duplicate) addresses inflated the
     function tally. *)
  let plan =
    Dataset.plan ~profiles:[ micro_profile ]
      ~configs:[ Cet_compiler.Options.default ]
      ~seed:3 ~scale:1.0 ()
  in
  let bin = List.hd (Dataset.nth plan 0) in
  let dup = { bin with Dataset.truth = bin.Dataset.truth @ bin.Dataset.truth } in
  let counts, functions = Harness.manual_endbr_binary dup in
  check Alcotest.int "functions = tp + fn" (counts.Metrics.tp + counts.Metrics.fn)
    functions;
  let counts0, functions0 = Harness.manual_endbr_binary bin in
  check Alcotest.bool "duplicates change nothing" true
    (counts0 = counts && functions0 = functions)

let test_render_separators_normalized () =
  (* Regression for the literal embedded newlines that used to live inside
     the render functions' [String.concat] separators: the source must
     only ever spell the separator as the "\n" escape, so the renders stay
     uniform and greppable. *)
  let path =
    List.find_opt Sys.file_exists [ "../lib/eval/harness.ml"; "lib/eval/harness.ml" ]
  in
  match path with
  | None -> Alcotest.fail "harness.ml not reachable from the test directory"
  | Some path ->
    let ic = open_in_bin path in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let bad = "String.concat \"\n" in
    let n = String.length bad and h = String.length src in
    let rec find i = i + n <= h && (String.sub src i n = bad || find (i + 1)) in
    check Alcotest.bool "no literal newline inside a concat separator" false (find 0)

let suite =
  [
    ( "eval.metrics",
      [
        Alcotest.test_case "basics" `Quick test_metrics_basics;
        Alcotest.test_case "edge cases" `Quick test_metrics_edge_cases;
        Alcotest.test_case "dedup" `Quick test_metrics_dedup;
        Alcotest.test_case "add" `Quick test_metrics_add;
        Alcotest.test_case "false entries" `Quick test_false_entries;
        Alcotest.test_case "f1" `Quick test_f1;
      ] );
    ( "eval.ground_truth",
      [ Alcotest.test_case "fragment names" `Quick test_fragment_names ] );
    ( "eval.tables",
      [
        Alcotest.test_case "table1 shares" `Quick test_table1_shares;
        Alcotest.test_case "fig3 shares" `Quick test_fig3_shares;
        Alcotest.test_case "table2 totals" `Quick test_table2_totals;
        Alcotest.test_case "table3 time" `Quick test_table3_time;
        Alcotest.test_case "table1 merge" `Quick test_table1_merge;
        Alcotest.test_case "fig3 merge" `Quick test_fig3_merge;
        Alcotest.test_case "table2 merge" `Quick test_table2_merge;
        Alcotest.test_case "table3 merge" `Quick test_table3_merge;
      ] );
    ( "eval.harness",
      [
        Alcotest.test_case "end-to-end shapes" `Slow test_harness_shapes;
        Alcotest.test_case "parallel/sequential equivalence" `Slow
          test_parallel_equivalence;
        Alcotest.test_case "ablation truth dedup" `Quick test_ablation_truth_dedup;
        Alcotest.test_case "render separators normalized" `Quick
          test_render_separators_normalized;
      ] );
  ]
