(* Additional edge-case coverage: decoder prefix handling, assembler
   corner cases, ELF writer variants, legacy binaries, determinism. *)

module Arch = Cet_x86.Arch
module Dec = Cet_x86.Decoder
module Enc = Cet_x86.Encoder
module Insn = Cet_x86.Insn
module Reg = Cet_x86.Register
module Asm = Cet_x86.Asm
module O = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module Link = Cet_compiler.Link
module Reader = Cet_elf.Reader
module Linear = Cet_disasm.Linear

let check = Alcotest.check

let decode_one arch bytes =
  match Dec.decode arch bytes ~base:0x1000 ~off:0 with
  | Ok i -> i
  | Error m -> Alcotest.failf "decode error: %s" m

(* ------------------------------------------------------------------ *)
(* Decoder prefixes and odd encodings                                 *)
(* ------------------------------------------------------------------ *)

let test_operand_size_imm () =
  (* 66 81 C0 imm16: add ax, imm16 — the immediate shrinks to 2 bytes. *)
  let i = decode_one Arch.X64 "\x66\x81\xc0\x34\x12" in
  check Alcotest.int "len" 5 i.len;
  (* without 66: imm32 *)
  let i = decode_one Arch.X64 "\x81\xc0\x34\x12\x00\x00" in
  check Alcotest.int "len32" 6 i.len

let test_segment_prefix_skipped () =
  (* 64 8B 04 25 disp32: mov eax, fs:[disp32] *)
  let i = decode_one Arch.X64 "\x64\x8b\x04\x25\x10\x00\x00\x00" in
  check Alcotest.int "len" 8 i.len

let test_f3_0f1e_non_endbr () =
  (* F3 0F 1E C0 is a reserved hint (NOP), not an end-branch. *)
  let i = decode_one Arch.X64 "\xf3\x0f\x1e\xc0" in
  check Alcotest.bool "not endbr" true (i.kind = Dec.Other);
  check Alcotest.int "len" 4 i.len

let test_plain_0f1e_modrm () =
  (* 0F 1E /r without F3 is also a NOP with a ModRM operand. *)
  let i = decode_one Arch.X64 "\x0f\x1e\x40\x07" in
  check Alcotest.int "len" 4 i.len

let test_rex_then_prefix_invalid_order () =
  (* REX must immediately precede the opcode; 48 66 89 E5 makes 66 an
     opcode position after REX — the decoder reads 0x66 as... it will treat
     0x48 as REX then 0x66 cannot restart prefixes, so it decodes 0x66 as
     an unknown opcode.  The decoder must fail cleanly, not crash. *)
  match Dec.decode Arch.X64 "\x48\x66\x89\xe5" ~base:0 ~off:0 with
  | Ok _ | Error _ -> ()

let test_prefix_overflow_rejected () =
  let bytes = String.make 20 '\x66' ^ "\x90" in
  match Dec.decode Arch.X64 bytes ~base:0 ~off:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "15+ prefixes must be rejected"

let test_mid_stream_offset () =
  let blob = Enc.encode Arch.X64 Insn.Nop ^ Enc.encode Arch.X64 Insn.Ret in
  match Dec.decode Arch.X64 blob ~base:0x2000 ~off:1 with
  | Ok i ->
    check Alcotest.int "addr" 0x2001 i.addr;
    check Alcotest.bool "ret" true (i.kind = Dec.Ret)
  | Error m -> Alcotest.failf "unexpected: %s" m

let test_every_single_byte_terminates () =
  (* Robustness: decoding any single byte either succeeds (length 1) or
     fails; never loops or crashes. *)
  for b = 0 to 255 do
    let s = String.make 1 (Char.chr b) in
    match Dec.decode Arch.X64 s ~base:0 ~off:0 with
    | Ok i -> check Alcotest.int "len 1" 1 i.len
    | Error _ -> ()
  done

let test_random_bytes_terminate () =
  (* Sweep over pseudo-random garbage always terminates and never reports
     an instruction longer than 15 bytes. *)
  let g = Cet_util.Prng.create 4242 in
  let blob = String.init 4096 (fun _ -> Char.chr (Cet_util.Prng.int g 256)) in
  List.iter
    (fun arch ->
      let sweep = Linear.sweep arch blob in
      Array.iter
        (fun (i : Dec.ins) ->
          if i.len < 1 || i.len > 15 then Alcotest.failf "bad length %d" i.len)
        sweep.insns)
    [ Arch.X64; Arch.X86 ]

(* 0x06 (push es) is undecodable in 64-bit mode — a convenient inline-data
   stand-in for resynchronisation tests. *)
let garbage n = String.make n '\x06'
let nop = "\x90"
let endbr64 = "\xf3\x0f\x1e\xfa"

let test_resync_counts_runs () =
  (* A desynchronised run is ONE event however many bytes it spans: a
     40-byte jump table must not report 40 resynchronisations. *)
  let s = Linear.sweep Arch.X64 (nop ^ garbage 40 ^ nop) in
  check Alcotest.int "one run, one event" 1 s.Linear.resync_errors;
  let s = Linear.sweep Arch.X64 (nop ^ garbage 6 ^ nop ^ garbage 3 ^ nop) in
  check Alcotest.int "two runs, two events" 2 s.Linear.resync_errors;
  let s = Linear.sweep Arch.X64 (nop ^ nop ^ nop) in
  check Alcotest.int "clean code, no events" 0 s.Linear.resync_errors

let test_resync_anchored_counts_runs () =
  (* Same rule for the anchored sweep: the whole untrusted stretch up to
     the next end-branch anchor is a single event. *)
  let s = Linear.sweep_anchored Arch.X64 (nop ^ garbage 8 ^ endbr64 ^ nop) in
  check Alcotest.int "one event to anchor" 1 s.Linear.resync_errors;
  let s =
    Linear.sweep_anchored Arch.X64
      (nop ^ garbage 8 ^ endbr64 ^ nop ^ garbage 5 ^ endbr64 ^ nop)
  in
  check Alcotest.int "two events" 2 s.Linear.resync_errors;
  let s = Linear.sweep_anchored Arch.X64 (endbr64 ^ nop ^ nop) in
  check Alcotest.int "clean code" 0 s.Linear.resync_errors

(* ------------------------------------------------------------------ *)
(* Assembler corners                                                  *)
(* ------------------------------------------------------------------ *)

let test_align_zero_fill () =
  let items =
    [ Asm.Ins Insn.Ret; Asm.Align { boundary = 8; fill = Asm.Fill_zero }; Asm.Label "x" ]
  in
  let bytes = Asm.assemble ~arch:Arch.X64 ~base:0 ~resolve:(fun _ -> 0) items in
  check Alcotest.string "zero pad" ("\xc3" ^ String.make 7 '\x00') bytes

let test_align_already_aligned () =
  let items = [ Asm.Align { boundary = 4; fill = Asm.Fill_nop }; Asm.Ins Insn.Ret ] in
  let bytes = Asm.assemble ~arch:Arch.X64 ~base:0x1000 ~resolve:(fun _ -> 0) items in
  check Alcotest.int "no padding" 1 (String.length bytes)

let test_mov_mi_lbl () =
  let items = [ Asm.Mov_mi_lbl (Insn.mem_base Reg.RSP 4, "fn") ] in
  let bytes = Asm.assemble ~arch:Arch.X86 ~base:0 ~resolve:(fun _ -> 0x8049100) items in
  (* mov dword [esp+4], 0x8049100 = C7 44 24 04 00 91 04 08 *)
  check Alcotest.string "store label" "c7 44 24 04 00 91 04 08"
    (Cet_util.Hexdump.bytes_inline bytes)

let test_undefined_label_raises () =
  let items = [ Asm.Jmp_lbl "nowhere" ] in
  match
    Asm.assemble ~arch:Arch.X64 ~base:0
      ~resolve:(fun l -> invalid_arg ("unknown " ^ l))
      items
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure"

(* ------------------------------------------------------------------ *)
(* ELF writer variants                                                *)
(* ------------------------------------------------------------------ *)

let test_image_without_dynsyms () =
  let img =
    {
      Cet_elf.Image.arch = Arch.X64;
      machine = None;
      pie = false;
      cet_note = true;
      entry = 0x401000;
      sections =
        [
          Cet_elf.Image.section ~name:".text" ~vaddr:0x401000
            ~flags:Cet_elf.(Consts.shf_alloc lor Consts.shf_execinstr)
            "\x90\xc3";
        ];
      symbols = [];
      dynsyms = [];
      plt_relocs = [];
    }
  in
  let t = Reader.read (Cet_elf.Writer.write img) in
  check Alcotest.bool "no dynsym section" true (Reader.find_section t ".dynsym" = None);
  check Alcotest.(list (pair int string)) "no relocs" [] (Reader.plt_relocs t);
  check Alcotest.bool "not pie" false (Reader.pie t)

let test_strip_idempotent () =
  let prog =
    { Ir.prog_name = "t"; lang = Ir.C; funcs = [ Ir.func "main" [ Ir.Compute 2 ] ];
      extra_imports = [] }
  in
  let bytes = Link.compile O.default prog in
  let s1 = Cet_elf.Strip.strip bytes in
  let s2 = Cet_elf.Strip.strip s1 in
  check Alcotest.string "idempotent" s1 s2

(* ------------------------------------------------------------------ *)
(* Legacy (non-CET) binaries                                          *)
(* ------------------------------------------------------------------ *)

let test_legacy_binary_analysis () =
  let prog =
    {
      Ir.prog_name = "legacy";
      lang = Ir.C;
      funcs =
        [
          Ir.func "main" [ Ir.Call (Ir.Local "a"); Ir.Call (Ir.Local "b") ];
          Ir.func "a" [ Ir.Compute 1 ];
          Ir.func ~linkage:Ir.Static "b" [ Ir.Compute 1 ];
          Ir.func ~address_taken:true "orphan" [ Ir.Compute 1 ];
        ];
      extra_imports = [];
    }
  in
  let opts = { O.default with cf_protection = O.Cf_none } in
  let res = Link.link opts prog in
  let reader = Reader.read (Cet_elf.Writer.write ~strip:true res.image) in
  check Alcotest.bool "not cet" false (Reader.cet_enabled reader);
  let r = Core.Funseeker.analyze reader in
  check Alcotest.int "no endbr" 0 r.Core.Funseeker.endbr_total;
  (* Call targets still carry FunSeeker part of the way... *)
  check Alcotest.bool "finds called" true
    (List.mem (List.assoc "a" res.Link.truth) r.Core.Funseeker.functions);
  (* ...but the address-taken orphan is invisible: the paper's point that
     FunSeeker is designed for CET binaries. *)
  check Alcotest.bool "misses orphan" false
    (List.mem (List.assoc "orphan" res.Link.truth) r.Core.Funseeker.functions)

(* ------------------------------------------------------------------ *)
(* Determinism                                                        *)
(* ------------------------------------------------------------------ *)

let test_dataset_deterministic () =
  let profile =
    { Cet_corpus.Profile.coreutils with Cet_corpus.Profile.programs = 1; funcs_lo = 40; funcs_hi = 50 }
  in
  let capture () =
    let out = ref [] in
    Cet_corpus.Dataset.iter ~profiles:[ profile ] ~configs:[ O.default ] ~seed:5 ~scale:1.0
      (fun b -> out := Digest.string b.Cet_corpus.Dataset.stripped :: !out);
    !out
  in
  check Alcotest.(list string) "same digests" (capture ()) (capture ())

let test_linear_helpers () =
  let prog =
    {
      Ir.prog_name = "t";
      lang = Ir.C;
      funcs =
        [
          Ir.func "main"
            [ Ir.Call (Ir.Local "a"); Ir.Call (Ir.Import "printf"); Ir.If_else ([ Ir.Compute 1 ], [ Ir.Compute 1 ]) ];
          Ir.func "a" [ Ir.Compute 1 ];
        ];
      extra_imports = [];
    }
  in
  let res = Link.link O.default prog in
  let reader = Reader.read (Cet_elf.Writer.write ~strip:true res.image) in
  let sweep = Linear.sweep_text reader in
  (* insn_at: exact hits only *)
  let first = sweep.insns.(0) in
  check Alcotest.bool "insn_at hit" true (Linear.insn_at sweep first.addr = Some first);
  check Alcotest.bool "insn_at miss" true (Linear.insn_at sweep (first.addr + 1) = None);
  (* call_sites include PLT-bound calls even though call_targets drop them *)
  let sites = Linear.call_sites sweep in
  let targets = Linear.call_targets sweep in
  check Alcotest.bool "plt call site exists" true
    (List.exists (fun (_, _, t) -> not (Linear.in_range sweep t)) sites);
  List.iter
    (fun t -> check Alcotest.bool "targets in range" true (Linear.in_range sweep t))
    targets;
  (* jmp_targets exclude conditional branches *)
  let jcc_targets =
    Array.to_list sweep.insns
    |> List.filter_map (fun (i : Dec.ins) ->
           match i.kind with Dec.Jcc_direct t -> Some t | _ -> None)
  in
  check Alcotest.bool "has jcc" true (jcc_targets <> []);
  let jmps = Linear.jmp_targets sweep in
  check Alcotest.bool "join target in J" true (jmps <> [])

let test_inline_tables_and_anchored_sweep () =
  let prog =
    {
      Ir.prog_name = "t";
      lang = Ir.C;
      funcs =
        [
          Ir.func "main"
            [
              Ir.Switch
                [ [ Ir.Compute 1 ]; [ Ir.Compute 1 ]; [ Ir.Compute 1 ]; [ Ir.Compute 1 ] ];
              Ir.Call (Ir.Local "after");
            ];
          Ir.func "after" [ Ir.Compute 2 ];
        ];
      extra_imports = [];
    }
  in
  let opts = { O.default with jump_tables_in_text = true } in
  let res = Link.link opts prog in
  let reader = Reader.read (Cet_elf.Writer.write ~strip:true res.image) in
  (* The jump table really is in .text: its bytes are swept as (garbage)
     instructions — the anchored sweep withholds at least as many of them
     as the linear sweep emits... *)
  let lin = Linear.sweep_text reader in
  let anc = Linear.sweep_text_anchored reader in
  check Alcotest.bool "anchored emits no more insns" true
    (Array.length anc.insns <= Array.length lin.insns);
  (* ...no .rodata table remains... *)
  check Alcotest.bool "no rodata table" true
    (match Reader.find_section reader ".rodata" with None -> true | Some s -> s.size = 0);
  (* ...and both sweeps still let FunSeeker find every function. *)
  let truth = List.sort_uniq compare (List.map snd res.Link.truth) in
  List.iter
    (fun anchored ->
      let r = Core.Funseeker.analyze ~anchored reader in
      List.iter
        (fun a ->
          check Alcotest.bool
            (Printf.sprintf "found 0x%x (anchored=%b)" a anchored)
            true
            (List.mem a r.Core.Funseeker.functions))
        truth)
    [ false; true ]

let test_anchored_equals_linear_on_clean () =
  let prog =
    {
      Ir.prog_name = "t";
      lang = Ir.C;
      funcs = [ Ir.func "main" [ Ir.Compute 4; Ir.Call (Ir.Local "f") ]; Ir.func "f" [] ];
      extra_imports = [];
    }
  in
  let res = Link.link O.default prog in
  let reader = Reader.read (Cet_elf.Writer.write ~strip:true res.image) in
  let a = Linear.sweep_text reader and b = Linear.sweep_text_anchored reader in
  check Alcotest.int "same instruction count" (Array.length a.insns) (Array.length b.insns);
  check Alcotest.bool "same stream" true
    (Array.for_all2 (fun (x : Dec.ins) (y : Dec.ins) -> x = y) a.insns b.insns)

let test_props_keys_distinct () =
  let keys = ref [] in
  List.iter
    (fun e ->
      List.iter
        (fun j ->
          List.iter
            (fun c ->
              keys :=
                Core.Study.props_key
                  { Core.Study.endbr_at_head = e; dir_jmp_target = j; dir_call_target = c }
                :: !keys)
            [ true; false ])
        [ true; false ])
    [ true; false ];
  check Alcotest.int "8 distinct keys" 8 (List.length (List.sort_uniq compare !keys))

let suite =
  [
    ( "edge.decoder",
      [
        Alcotest.test_case "operand-size immediates" `Quick test_operand_size_imm;
        Alcotest.test_case "segment prefixes" `Quick test_segment_prefix_skipped;
        Alcotest.test_case "F3 0F 1E non-endbr" `Quick test_f3_0f1e_non_endbr;
        Alcotest.test_case "0F 1E nop form" `Quick test_plain_0f1e_modrm;
        Alcotest.test_case "rex ordering" `Quick test_rex_then_prefix_invalid_order;
        Alcotest.test_case "prefix overflow" `Quick test_prefix_overflow_rejected;
        Alcotest.test_case "mid-stream offset" `Quick test_mid_stream_offset;
        Alcotest.test_case "single bytes terminate" `Quick test_every_single_byte_terminates;
        Alcotest.test_case "random bytes terminate" `Quick test_random_bytes_terminate;
        Alcotest.test_case "resync counts runs" `Quick test_resync_counts_runs;
        Alcotest.test_case "anchored resync counts runs" `Quick
          test_resync_anchored_counts_runs;
      ] );
    ( "edge.asm",
      [
        Alcotest.test_case "zero fill" `Quick test_align_zero_fill;
        Alcotest.test_case "already aligned" `Quick test_align_already_aligned;
        Alcotest.test_case "mov_mi label" `Quick test_mov_mi_lbl;
        Alcotest.test_case "undefined label" `Quick test_undefined_label_raises;
      ] );
    ( "edge.elf",
      [
        Alcotest.test_case "image without dynsyms" `Quick test_image_without_dynsyms;
        Alcotest.test_case "strip idempotent" `Quick test_strip_idempotent;
      ] );
    ( "edge.analysis",
      [
        Alcotest.test_case "legacy binaries" `Quick test_legacy_binary_analysis;
        Alcotest.test_case "dataset deterministic" `Quick test_dataset_deterministic;
        Alcotest.test_case "linear helpers" `Quick test_linear_helpers;
        Alcotest.test_case "inline tables + anchored sweep" `Quick test_inline_tables_and_anchored_sweep;
        Alcotest.test_case "anchored = linear on clean code" `Quick test_anchored_equals_linear_on_clean;
        Alcotest.test_case "props keys distinct" `Quick test_props_keys_distinct;
      ] );
  ]
