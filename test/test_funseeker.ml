(* Tests for the core FunSeeker algorithm: PARSE, FILTERENDBR,
   SELECTTAILCALL, and the four Table-II configurations. *)

module Arch = Cet_x86.Arch
module O = Cet_compiler.Options
module Ir = Cet_compiler.Ir
module Link = Cet_compiler.Link
module Reader = Cet_elf.Reader
module FS = Core.Funseeker

let check = Alcotest.check

let base_prog ?(lang = Ir.C) funcs =
  { Ir.prog_name = "t"; lang; funcs; extra_imports = [] }

let compile ?(opts = O.default) ?(strip = true) prog =
  let res = Link.link opts prog in
  (res, Reader.read (Cet_elf.Writer.write ~strip res.image))

let truth_addrs (res : Link.result) = List.sort_uniq compare (List.map snd res.truth)

(* ------------------------------------------------------------------ *)
(* SELECTTAILCALL in isolation                                        *)
(* ------------------------------------------------------------------ *)

(* Layout: f at 100..200, g at 200..300, h at 300..400 (text_end 400). *)
let candidates = [ 100; 200; 300 ]

let test_stc_both_conditions () =
  (* jmp from f (site 150) to h (300); h is also called from g (site 250). *)
  let selected =
    FS.select_tail_calls ~candidates ~jmp_refs:[ (150, 300) ]
      ~call_refs:[ (250, 300) ] ~text_end:400 ()
  in
  check Alcotest.(list int) "selected" [ 300 ] selected

let test_stc_needs_external_ref () =
  (* Only f references the target: condition (2) fails. *)
  let selected =
    FS.select_tail_calls ~candidates ~jmp_refs:[ (150, 300) ] ~call_refs:[] ~text_end:400 ()
  in
  check Alcotest.(list int) "nothing" [] selected

let test_stc_intra_function_jump () =
  (* Jump within f's own extent: condition (1) fails even with other refs. *)
  let selected =
    FS.select_tail_calls ~candidates ~jmp_refs:[ (150, 180) ]
      ~call_refs:[ (250, 180) ] ~text_end:400 ()
  in
  check Alcotest.(list int) "nothing" [] selected

let test_stc_two_jumping_functions () =
  (* f and g both tail-jump to h: each sees the other as the extra
     referencing function. *)
  let selected =
    FS.select_tail_calls ~candidates ~jmp_refs:[ (150, 300); (250, 300) ] ~call_refs:[]
      ~text_end:400 ()
  in
  check Alcotest.(list int) "selected" [ 300 ] selected

let test_stc_backward_target () =
  (* g jumps back to f (already a candidate, but selection still applies to
     the address), with h calling f too. *)
  let selected =
    FS.select_tail_calls ~candidates ~jmp_refs:[ (250, 100) ] ~call_refs:[ (350, 100) ]
      ~text_end:400 ()
  in
  check Alcotest.(list int) "selected" [ 100 ] selected

let test_stc_same_function_multiple_sites () =
  (* Two jump sites inside the same function do not satisfy condition 2. *)
  let selected =
    FS.select_tail_calls ~candidates ~jmp_refs:[ (150, 300); (160, 300) ] ~call_refs:[]
      ~text_end:400 ()
  in
  check Alcotest.(list int) "nothing" [] selected

(* ------------------------------------------------------------------ *)
(* End-to-end on synthetic binaries                                   *)
(* ------------------------------------------------------------------ *)

let simple_prog =
  base_prog
    [
      Ir.func "main" [ Ir.Compute 3; Ir.Call (Ir.Local "a"); Ir.Call (Ir.Local "b") ];
      Ir.func "a" [ Ir.Compute 2 ];
      Ir.func ~linkage:Ir.Static "b" [ Ir.Compute 2 ];
      Ir.func ~linkage:Ir.Static ~address_taken:true "c" [ Ir.Compute 1 ];
    ]

let test_perfect_on_simple_program () =
  List.iter
    (fun opts ->
      let res, reader = compile ~opts simple_prog in
      let r = FS.analyze reader in
      check Alcotest.(list int) (O.to_string opts) (truth_addrs res) r.FS.functions)
    [
      O.default;
      { O.default with arch = Arch.X86; pie = false; opt = O.O0 };
      { O.default with compiler = O.Clang; arch = Arch.X86; opt = O.Os };
    ]

let test_filter_endbr_setjmp () =
  let p =
    base_prog
      [ Ir.func "main" [ Ir.Indirect_return_call "vfork"; Ir.Compute 1 ] ]
  in
  let res, reader = compile p in
  let r1 = FS.analyze ~config:FS.config1 reader in
  let r2 = FS.analyze ~config:FS.config2 reader in
  (* Config 1 misreports the post-call end-branch as a function. *)
  check Alcotest.int "config1 has extra" (List.length (truth_addrs res) + 1)
    (List.length r1.FS.functions);
  check Alcotest.int "filtered one site" 1 r2.FS.filtered_indirect_return;
  check Alcotest.(list int) "config2 exact" (truth_addrs res) r2.FS.functions

let cxx_prog =
  base_prog ~lang:Ir.Cpp
    [
      Ir.func "main"
        [
          Ir.Try_catch ([ Ir.Call (Ir.Import "printf") ], [ [ Ir.Compute 1 ] ]);
          Ir.Try_catch ([ Ir.Compute 2 ], [ [ Ir.Compute 1 ]; [ Ir.Compute 1 ] ]);
        ];
    ]

let test_filter_endbr_landing_pads () =
  let res, reader = compile cxx_prog in
  let r1 = FS.analyze ~config:FS.config1 reader in
  let r2 = FS.analyze ~config:FS.config2 reader in
  check Alcotest.bool "config1 counts pads as functions" true
    (List.length r1.FS.functions > List.length (truth_addrs res));
  check Alcotest.int "two pads filtered" 2 r2.FS.filtered_landing_pads;
  check Alcotest.(list int) "config2 exact" (truth_addrs res) r2.FS.functions

let tail_prog =
  base_prog
    [
      Ir.func "main" [ Ir.Compute 1; Ir.Tail_call_site "tgt" ];
      Ir.func "other" [ Ir.Compute 1; Ir.Tail_call_site "tgt" ];
      (* tgt is static and never called directly: invisible to E' ∪ C. *)
      Ir.func ~linkage:Ir.Static "tgt" [ Ir.Compute 2 ];
      (* exported helper that keeps [other] alive *)
      Ir.func "z" [ Ir.Call (Ir.Local "other") ];
    ]

let test_tail_call_recovery () =
  let opts = { O.default with opt = O.O2 } in
  let res, reader = compile ~opts tail_prog in
  let tgt = List.assoc "tgt" res.Link.truth in
  let r2 = FS.analyze ~config:FS.config2 reader in
  check Alcotest.bool "config2 misses tail target" false (List.mem tgt r2.FS.functions);
  let r4 = FS.analyze ~config:FS.config4 reader in
  check Alcotest.bool "config4 finds tail target" true (List.mem tgt r4.FS.functions);
  check Alcotest.(list int) "config4 exact" (truth_addrs res) r4.FS.functions

let test_single_ref_tail_is_fn () =
  (* A tail target referenced by exactly one function stays missed —
     the 6.7% FN class of §V-C. *)
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Compute 1; Ir.Tail_call_site "tgt" ];
        Ir.func ~linkage:Ir.Static "tgt" [ Ir.Compute 2 ];
      ]
  in
  let opts = { O.default with opt = O.O2 } in
  let res, reader = compile ~opts p in
  let tgt = List.assoc "tgt" res.Link.truth in
  let r4 = FS.analyze ~config:FS.config4 reader in
  check Alcotest.bool "single-ref tail missed" false (List.mem tgt r4.FS.functions)

let test_dead_function_is_fn () =
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Compute 2 ];
        Ir.func ~linkage:Ir.Static ~dead:true "ghost" [ Ir.Compute 2 ];
      ]
  in
  let res, reader = compile p in
  let ghost = List.assoc "ghost" res.Link.truth in
  let r = FS.analyze reader in
  check Alcotest.bool "dead missed" false (List.mem ghost r.FS.functions);
  (* but dead exported functions carry an end-branch and are found *)
  let p2 =
    base_prog
      [ Ir.func "main" [ Ir.Compute 2 ]; Ir.func ~dead:true "ghost2" [ Ir.Compute 2 ] ]
  in
  let res2, reader2 = compile p2 in
  let ghost2 = List.assoc "ghost2" res2.Link.truth in
  check Alcotest.bool "dead exported found" true
    (List.mem ghost2 (FS.analyze reader2).FS.functions)

let test_part_fp () =
  (* Direct-called .part fragments are FunSeeker's residual false
     positives (§V-C). *)
  let p =
    base_prog
      [
        Ir.func "main" [ Ir.Call (Ir.Local "g") ];
        Ir.func ~fate:(Ir.Split_part { shared_jump = false; part_body = [ Ir.Compute 3 ] }) "g"
          [ Ir.Compute 1 ];
      ]
  in
  let opts = { O.default with opt = O.O2 } in
  let res, reader = compile ~opts p in
  let part_addr =
    let _, s, _ = List.find (fun (n, _, _) -> n = "g.part.0") res.Link.fragment_extents in
    s
  in
  let r = FS.analyze reader in
  check Alcotest.bool "part reported" true (List.mem part_addr r.FS.functions);
  check Alcotest.bool "part not truth" false (List.mem part_addr (truth_addrs res))

let test_config_ordering () =
  (* Recall is monotone config2 <= config4 <= config3; precision suffers
     in config3. *)
  let res, reader = compile ~opts:{ O.default with opt = O.O2 } tail_prog in
  let truth = truth_addrs res in
  let recall c =
    let r = FS.analyze ~config:c reader in
    let m = Cet_eval.Metrics.compare_sets ~truth ~found:r.FS.functions in
    Cet_eval.Metrics.recall m
  in
  check Alcotest.bool "rec c4 >= c2" true (recall FS.config4 >= recall FS.config2);
  check Alcotest.bool "rec c3 >= c4" true (recall FS.config3 >= recall FS.config4)

let test_stripped_equals_unstripped () =
  let res, stripped = compile ~strip:true cxx_prog in
  let _, unstripped = compile ~strip:false cxx_prog in
  ignore res;
  check Alcotest.(list int) "same result"
    (FS.analyze stripped).FS.functions (FS.analyze unstripped).FS.functions

let test_analyze_bytes () =
  let res = Link.link O.default simple_prog in
  let bytes = Cet_elf.Writer.write ~strip:true res.image in
  check Alcotest.(list int) "analyze_bytes" (truth_addrs res)
    (FS.analyze_bytes bytes).FS.functions

let test_counters_consistency () =
  let _, reader = compile simple_prog in
  let r = FS.analyze reader in
  check Alcotest.bool "endbr counted" true (r.FS.endbr_total > 0);
  check Alcotest.int "no resync" 0 r.FS.resync_errors;
  check Alcotest.bool "calls counted" true (r.FS.call_target_count > 0)

(* ------------------------------------------------------------------ *)
(* Study classifiers                                                  *)
(* ------------------------------------------------------------------ *)

let test_study_classification () =
  let p =
    base_prog ~lang:Ir.Cpp
      [
        Ir.func "main"
          [
            Ir.Indirect_return_call "setjmp";
            Ir.Try_catch ([ Ir.Compute 1 ], [ [ Ir.Compute 1 ] ]);
            Ir.Call (Ir.Local "a");
          ];
        Ir.func "a" [ Ir.Compute 1 ];
      ]
  in
  let res, reader = compile p in
  let truth = truth_addrs res in
  let classes = Core.Study.classify_endbrs reader ~truth in
  let count k = List.length (List.filter (fun (_, c) -> c = k) classes) in
  check Alcotest.int "entries" (List.length truth) (count Core.Study.At_function_entry);
  check Alcotest.int "setjmp site" 1 (count Core.Study.After_indirect_return_call);
  check Alcotest.int "landing pad" 1 (count Core.Study.At_landing_pad);
  check Alcotest.int "nothing else" 0 (count Core.Study.Elsewhere)

let test_study_props () =
  let res, reader = compile ~opts:{ O.default with opt = O.O2 } tail_prog in
  let truth = truth_addrs res in
  let props = Core.Study.function_props reader ~truth in
  let for_name n = List.assoc (List.assoc n res.Link.truth) props in
  let main_p = for_name "main" in
  check Alcotest.bool "main endbr" true main_p.Core.Study.endbr_at_head;
  let tgt_p = for_name "tgt" in
  check Alcotest.bool "tgt no endbr" false tgt_p.Core.Study.endbr_at_head;
  check Alcotest.bool "tgt jmp target" true tgt_p.Core.Study.dir_jmp_target;
  check Alcotest.string "props key" "jmp" (Core.Study.props_key tgt_p)

(* ------------------------------------------------------------------ *)
(* IBT audit                                                           *)
(* ------------------------------------------------------------------ *)

let audit_prog =
  base_prog ~lang:Ir.Cpp
    [
      Ir.func "main"
        [
          Ir.Call_via_pointer "cb";
          Ir.Try_catch ([ Ir.Call (Ir.Import "printf") ], [ [ Ir.Compute 1 ] ]);
        ];
      Ir.func ~linkage:Ir.Static ~address_taken:true "cb" [ Ir.Compute 1 ];
      (* exported API surface, never referenced here: marked only under the
         compiler's conservative full protection *)
      Ir.func "api" [ Ir.Compute 2 ];
    ]

let test_audit_full_protection_clean () =
  let _, reader = compile audit_prog in
  let r = Core.Audit.audit reader in
  check Alcotest.(list reject) "no violations" []
    (List.map (fun _ -> Alcotest.fail "violation") r.Core.Audit.violations);
  check Alcotest.bool "candidates checked" true (r.Core.Audit.checked > 0);
  (* Conservative marking: more end-branches than strictly required. *)
  check Alcotest.bool "superfluous over-marking" true (r.Core.Audit.superfluous > 0)

let test_audit_manual_endbr_clean () =
  (* -mmanual-endbr marks exactly the indirect targets: still audit-clean,
     with less over-marking — the SSVI correctness argument. *)
  let opts = { O.default with cf_protection = O.Cf_manual } in
  let _, full_reader = compile audit_prog in
  let _, manual_reader = compile ~opts audit_prog in
  let full = Core.Audit.audit full_reader in
  let manual = Core.Audit.audit manual_reader in
  check Alcotest.int "no violations" 0 (List.length manual.Core.Audit.violations);
  check Alcotest.bool "less over-marking" true
    (manual.Core.Audit.superfluous < full.Core.Audit.superfluous)

let test_audit_legacy_violations () =
  let opts = { O.default with cf_protection = O.Cf_none } in
  let _, reader = compile ~opts audit_prog in
  let r = Core.Audit.audit reader in
  check Alcotest.bool "violations found" true (List.length r.Core.Audit.violations > 0);
  let reasons = List.map (fun (v : Core.Audit.violation) -> v.v_reason) r.violations in
  check Alcotest.bool "address-taken flagged" true (List.mem Core.Audit.Address_taken reasons);
  check Alcotest.bool "landing pad flagged" true (List.mem Core.Audit.Landing_pad reasons);
  check Alcotest.bool "plt flagged" true (List.mem Core.Audit.Plt_entry reasons)

let suite =
  [
    ( "funseeker.selecttailcall",
      [
        Alcotest.test_case "both conditions" `Quick test_stc_both_conditions;
        Alcotest.test_case "needs external ref" `Quick test_stc_needs_external_ref;
        Alcotest.test_case "intra-function jump" `Quick test_stc_intra_function_jump;
        Alcotest.test_case "two jumping functions" `Quick test_stc_two_jumping_functions;
        Alcotest.test_case "backward target" `Quick test_stc_backward_target;
        Alcotest.test_case "same-function sites" `Quick test_stc_same_function_multiple_sites;
      ] );
    ( "funseeker.end_to_end",
      [
        Alcotest.test_case "exact on simple programs" `Quick test_perfect_on_simple_program;
        Alcotest.test_case "filters setjmp return" `Quick test_filter_endbr_setjmp;
        Alcotest.test_case "filters landing pads" `Quick test_filter_endbr_landing_pads;
        Alcotest.test_case "recovers tail targets" `Quick test_tail_call_recovery;
        Alcotest.test_case "single-ref tail stays FN" `Quick test_single_ref_tail_is_fn;
        Alcotest.test_case "dead functions stay FN" `Quick test_dead_function_is_fn;
        Alcotest.test_case "part fragments are FP" `Quick test_part_fp;
        Alcotest.test_case "config recall ordering" `Quick test_config_ordering;
        Alcotest.test_case "strip-invariant" `Quick test_stripped_equals_unstripped;
        Alcotest.test_case "analyze_bytes" `Quick test_analyze_bytes;
        Alcotest.test_case "counters" `Quick test_counters_consistency;
      ] );
    ( "funseeker.audit",
      [
        Alcotest.test_case "full protection is clean" `Quick test_audit_full_protection_clean;
        Alcotest.test_case "manual endbr is clean" `Quick test_audit_manual_endbr_clean;
        Alcotest.test_case "legacy binaries violate" `Quick test_audit_legacy_violations;
      ] );
    ( "funseeker.study",
      [
        Alcotest.test_case "endbr classification" `Quick test_study_classification;
        Alcotest.test_case "function properties" `Quick test_study_props;
      ] );
  ]
