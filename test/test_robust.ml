(* Robustness regressions: the typed-diagnostics path, overflow-safe
   parsing, the fault-isolated harness, and crash classes surfaced by the
   cetfuzz mutation engine.  Each numbered crash-class test failed (an
   uncaught exception) before the corresponding fix. *)

module Arch = Cet_x86.Arch
module Image = Cet_elf.Image
module Writer = Cet_elf.Writer
module Reader = Cet_elf.Reader
module Diag = Cet_util.Diag
module Deadline = Cet_util.Deadline
module Harness = Cet_eval.Harness

let check = Alcotest.check

let has_code code diags = List.exists (fun (d : Diag.t) -> d.Diag.code = code) diags

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---- Leb128 overflow (satellite fix) ---------------------------------- *)

let test_leb128_overlong () =
  (* Pre-fix: ten continuation bytes shifted past the 63-bit word, so the
     accumulated value wrapped silently (and far longer inputs kept
     looping); decoding now rejects any encoding that cannot fit. *)
  let overlong = String.make 10 '\xff' in
  let raises f = try ignore (f ()) ; false with Invalid_argument _ -> true in
  check Alcotest.bool "unsigned overlong rejected" true
    (raises (fun () -> Cet_util.Leb128.read_u overlong 0));
  check Alcotest.bool "signed overlong rejected" true
    (raises (fun () -> Cet_util.Leb128.read_s overlong 0));
  (* Boundary: the widest legal encodings still decode. *)
  let b = Buffer.create 10 in
  Cet_util.Leb128.write_u b max_int;
  check Alcotest.int "max_int roundtrips" max_int
    (fst (Cet_util.Leb128.read_u (Buffer.contents b) 0));
  let b = Buffer.create 10 in
  Cet_util.Leb128.write_s b min_int;
  check Alcotest.int "min_int roundtrips" min_int
    (fst (Cet_util.Leb128.read_s (Buffer.contents b) 0))

(* ---- ELF header crafting helpers -------------------------------------- *)

let sample_image ?(text = String.make 64 '\x90') () =
  {
    Image.arch = Arch.X64;
    machine = None;
    pie = true;
    cet_note = true;
    entry = 0x1010;
    sections =
      [
        Image.section ~name:".text"
          ~flags:(Cet_elf.Consts.shf_alloc lor Cet_elf.Consts.shf_execinstr)
          ~addralign:16 ~vaddr:0x1000 text;
        Image.section ~name:".rodata" ~vaddr:0x2000 "tables";
      ];
    symbols = [ Cet_elf.Symbol.func "main" 0x1010 ~size:16 ];
    dynsyms = [];
    plt_relocs = [];
  }

let u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)
let u32 s off = u16 s off lor (u16 s (off + 2) lsl 16)
let u64 s off = u32 s off lor (u32 s (off + 4) lsl 32)

let patch_u64 bytes ~off v =
  let b = Bytes.of_string bytes in
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done;
  Bytes.to_string b

(* 64-bit ELF header/shdr field offsets (the images here are ELFCLASS64). *)
let shoff bytes = u64 bytes 0x28
let shentsize bytes = u16 bytes 0x3a
let shnum bytes = u16 bytes 0x3c

(* ---- Reader bounds overflow (satellite fix) --------------------------- *)

let test_reader_offset_overflow () =
  (* sh_offset = 2^62 - 1: pre-fix the [off + size > len] bounds check
     wrapped negative and accepted the section, and the payload extraction
     blew up with an uncaught Invalid_argument.  The subtraction-form check
     must reject it as Malformed (strict) / clamp it (lenient). *)
  let good = Writer.write (sample_image ()) in
  (* Entry 1 is the first real section; sh_offset lives at +0x18. *)
  let entry1 = shoff good + shentsize good in
  let evil = patch_u64 good ~off:(entry1 + 0x18) (0x3FFFFFFFFFFFFFFF) in
  check Alcotest.bool "strict read rejects as Malformed" true
    (try ignore (Reader.read evil) ; false with Reader.Malformed _ -> true);
  match Reader.read_diag evil with
  | Error d -> Alcotest.failf "lenient read refused a clampable image: %s" (Diag.to_string d)
  | Ok (_, diags) -> check Alcotest.bool "section-clamp diag" true (has_code "section-clamp" diags)

(* ---- Crash class: truncated section-header table ---------------------- *)

let test_truncated_shdr_salvage () =
  let good = Writer.write (sample_image ()) in
  check Alcotest.bool "shdr table at end of file" true
    (shoff good + (shentsize good * shnum good) = String.length good);
  (* Keep the null entry, one complete entry, and half of the next. *)
  let cut = String.sub good 0 (shoff good + (2 * shentsize good) + (shentsize good / 2)) in
  check Alcotest.bool "strict read rejects truncation" true
    (try ignore (Reader.read cut) ; false with Reader.Malformed _ -> true);
  match Reader.read_diag cut with
  | Error d -> Alcotest.failf "no salvage: %s" (Diag.to_string d)
  | Ok (t, diags) ->
    check Alcotest.bool "shdr-truncated diag" true (has_code "shdr-truncated" diags);
    check Alcotest.bool "salvaged a prefix" true (List.length (Reader.sections t) >= 1)

(* ---- Crash class: bad LSDA call-site encoding ------------------------- *)

let cpp_binary () =
  let profile =
    {
      (Cet_corpus.Profile.scaled 0.02 Cet_corpus.Profile.spec) with
      Cet_corpus.Profile.lang_cpp_fraction = 1.0;
    }
  in
  let ir = Cet_corpus.Generator.program ~seed:31 ~profile ~index:0 in
  let res = Cet_compiler.Link.link Cet_compiler.Options.default ir in
  Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image

(* Locate a section's payload in the file by content search (the writer
   embeds it verbatim) and overwrite it. *)
let overwrite_section bytes name ~fill =
  let t = Reader.read bytes in
  let s = Option.get (Reader.find_section t name) in
  let n = String.length s.Reader.data in
  check Alcotest.bool (name ^ " non-empty") true (n > 0);
  let rec find i =
    if i + n > String.length bytes then Alcotest.failf "%s payload not found" name
    else if String.sub bytes i n = s.Reader.data then i
    else find (i + 1)
  in
  let pos = find 0 in
  let b = Bytes.of_string bytes in
  Bytes.fill b pos n fill;
  Bytes.to_string b

let test_bad_lsda_encoding_degrades () =
  (* 0xFF-filled .gcc_except_table: LPStart/TType decode as "omitted" but
     the call-site encoding byte is invalid, the exact shape of the
     fuzzer's LSDA crash class.  Pre-fix, FILTERENDBR died on an uncaught
     Invalid_argument; the robust path must degrade with diagnostics. *)
  let evil = overwrite_section (cpp_binary ()) ".gcc_except_table" ~fill:'\xff' in
  match Core.Funseeker.analyze_bytes_diag evil with
  | Error d -> Alcotest.failf "whole analysis refused: %s" (Diag.to_string d)
  | Ok (r, diags) ->
    check Alcotest.bool "functions still identified" true (r.Core.Funseeker.functions <> []);
    check Alcotest.bool "lsda degradation reported" true
      (has_code "lsda-skipped" diags || has_code "eh-frame" diags)

let test_corrupt_eh_frame_salvage () =
  (* Same contract for .eh_frame itself: the walk salvages the prefix. *)
  let evil = overwrite_section (cpp_binary ()) ".eh_frame" ~fill:'\xee' in
  match Core.Funseeker.analyze_bytes_diag evil with
  | Error d -> Alcotest.failf "whole analysis refused: %s" (Diag.to_string d)
  | Ok (r, diags) ->
    check Alcotest.bool "functions still identified" true (r.Core.Funseeker.functions <> []);
    check Alcotest.bool "eh-frame walk reported" true (has_code "eh-frame" diags)

(* ---- Crash class: truncated EH metadata on the production paths ------- *)

(* Shrink a section in place by patching its sh_size in the section-header
   table: the payload prefix stays readable, so decoders that begin a
   record in bounds run off the new end mid-record — the cetfuzz
   truncation class, aimed here at the *production* (non-diag) substrate
   paths that used to let those exceptions escape. *)
let shrink_section bytes name ~keep =
  let t = Reader.read bytes in
  let s = Option.get (Reader.find_section t name) in
  let n = String.length s.Reader.data in
  check Alcotest.bool (name ^ " big enough to cut") true (keep < n);
  let base = shoff bytes in
  let rec go i =
    if i >= shnum bytes then Alcotest.failf "shdr for %s not found" name
    else
      let off = base + (i * shentsize bytes) in
      if u64 bytes (off + 0x18) = s.Reader.file_off && u64 bytes (off + 0x20) = n
      then patch_u64 bytes ~off:(off + 0x20) keep
      else go (i + 1)
  in
  go 0

let test_truncated_lsda_landing_pads () =
  (* [.gcc_except_table] cut in half: the LSDA records straddling the cut
     have in-bounds headers but truncated bodies.  Pre-fix,
     [Substrate.landing_pads] called the raising [Lsda.decode] and the
     exception escaped the production path; now corrupt records are
     skipped and every healthy one still contributes its pads. *)
  let good = cpp_binary () in
  let t = Reader.read good in
  let get = Option.get (Reader.find_section t ".gcc_except_table") in
  let evil = shrink_section good ".gcc_except_table"
      ~keep:(String.length get.Reader.data / 2)
  in
  let st = Cet_disasm.Substrate.of_bytes evil in
  let pads = Cet_disasm.Substrate.landing_pads st in
  let intact = Cet_disasm.Substrate.landing_pads (Cet_disasm.Substrate.of_bytes good) in
  check Alcotest.bool "some pads survive" true (Array.length pads > 0);
  check Alcotest.bool "a strict subset of the intact pads" true
    (Array.length pads < Array.length intact
    && Array.for_all
         (fun p -> Array.exists (Int.equal p) intact)
         pads)

let test_truncated_eh_frame_hdr_fde_starts () =
  (* [.eh_frame_hdr] cut mid-table: the header (version, encodings, count)
     is intact, the entry pairs are not.  Pre-fix [Substrate.fde_starts]
     salvaged only [Invalid_argument] while the reader's [Out_of_bounds]
     escaped; now it falls back to walking the (intact) [.eh_frame]. *)
  let good = cpp_binary () in
  let t = Reader.read good in
  let hdr = Option.get (Reader.find_section t ".eh_frame_hdr") in
  let evil =
    shrink_section good ".eh_frame_hdr"
      ~keep:(String.length hdr.Reader.data - 4)
  in
  let starts = Cet_disasm.Substrate.fde_starts (Cet_disasm.Substrate.of_bytes evil) in
  let intact = Cet_disasm.Substrate.fde_starts (Cet_disasm.Substrate.of_bytes good) in
  check Alcotest.(list int) "fde starts salvaged via .eh_frame walk" intact starts

(* ---- Crash class: overlapping interval-table entries ------------------ *)

let test_itable_lenient_overlap () =
  (* Overlapping FDE extents from corrupt unwind info used to abort the
     Ghidra-like baseline inside Itable.of_list: the lenient constructor
     must keep the first interval of each overlapping run,
     deterministically. *)
  let module I = Cet_util.Itable in
  check Alcotest.bool "of_list still strict" true
    (try ignore (I.of_list [ (0, 10, "a"); (5, 15, "b") ]) ; false
     with Invalid_argument _ -> true);
  let value t x = Option.map (fun (_, _, v) -> v) (I.find t x) in
  let t = I.of_list_lenient [ (5, 15, "b"); (0, 10, "a"); (20, 30, "c") ] in
  check Alcotest.bool "first of run kept" true (value t 3 = Some "a");
  check Alcotest.bool "overlapping later dropped" true (value t 12 = None);
  check Alcotest.bool "disjoint kept" true (value t 25 = Some "c");
  (* Determinism: input order must not matter for which interval survives
     (stable sort on lo, first of each overlapping run wins). *)
  let t2 = I.of_list_lenient [ (0, 10, "a"); (20, 30, "c"); (5, 15, "b") ] in
  check Alcotest.bool "same survivors" true
    (value t2 3 = Some "a" && value t2 12 = None && value t2 25 = Some "c")

(* ---- Deadlines -------------------------------------------------------- *)

let test_deadline_expires_sweep () =
  let big = String.make 65536 '\x90' in
  check Alcotest.bool "sweep aborts on expiry" true
    (try
       ignore (Deadline.with_ ~seconds:1e-9 (fun () -> Cet_disasm.Linear.sweep Arch.X64 big));
       false
     with Deadline.Expired _ -> true);
  (* And the robust entry point converts the expiry into a diagnostic. *)
  let bytes = Writer.write (sample_image ~text:big ()) in
  match Core.Funseeker.analyze_bytes_diag ~max_seconds:1e-9 bytes with
  | Error d -> Alcotest.failf "refused instead of degrading: %s" (Diag.to_string d)
  | Ok (r, diags) ->
    check Alcotest.bool "empty result" true (r = Core.Funseeker.empty_result);
    check Alcotest.bool "timeout diag" true (has_code "timeout" diags)

let test_deadline_nesting () =
  check Alcotest.bool "invalid budget" true
    (try ignore (Deadline.with_ ~seconds:0.0 (fun () -> ())) ; false
     with Invalid_argument _ -> true);
  (* An inner deadline can not extend the outer one. *)
  check Alcotest.bool "inner bounded by outer" true
    (try
       Deadline.with_ ~seconds:1e-9 (fun () ->
           Deadline.with_ ~seconds:3600.0 (fun () ->
               Deadline.check "test";
               false))
     with Deadline.Expired _ -> true);
  check Alcotest.bool "inactive after exit" false (Deadline.active ())

(* ---- No .text --------------------------------------------------------- *)

let test_no_text_degrades () =
  (* No [.text] at all (symbols dropped too — the writer places them
     relative to their sections): the robust path reports an empty
     analysis instead of failing the binary. *)
  let img = sample_image () in
  let img =
    {
      img with
      Image.sections =
        List.filter (fun (s : Image.section) -> s.Image.name <> ".text") img.Image.sections;
      symbols = [];
    }
  in
  let bytes = Writer.write img in
  match Core.Funseeker.analyze_bytes_diag bytes with
  | Error d -> Alcotest.failf "refused instead of degrading: %s" (Diag.to_string d)
  | Ok (r, diags) ->
    check Alcotest.bool "empty result" true (r = Core.Funseeker.empty_result);
    check Alcotest.bool "no-text diag" true (has_code "no-text" diags)

(* ---- Fuzz engine ------------------------------------------------------ *)

let test_fuzz_smoke_deterministic () =
  let a = Cet_fuzz.Engine.run ~seed:5 ~count:40 () in
  let b = Cet_fuzz.Engine.run ~seed:5 ~count:40 () in
  check Alcotest.int "no crashes" 0 (List.length a.Cet_fuzz.Engine.crashes);
  check Alcotest.string "summary deterministic" (Cet_fuzz.Engine.render a)
    (Cet_fuzz.Engine.render b);
  check Alcotest.int "all mutants accounted" a.Cet_fuzz.Engine.total
    (a.Cet_fuzz.Engine.clean + a.Cet_fuzz.Engine.degraded + a.Cet_fuzz.Engine.rejected)

(* ---- Fault-isolated harness ------------------------------------------- *)

let micro_profile =
  {
    Cet_corpus.Profile.coreutils with
    Cet_corpus.Profile.suite = "coreutils";
    programs = 2;
    funcs_lo = 30;
    funcs_hi = 40;
  }

let fault_opts =
  {
    Harness.default_options with
    Harness.seed = 99;
    scale = 1.0;
    timing = false;
    fault =
      Some (fun (b : Cet_corpus.Dataset.binary) -> b.Cet_corpus.Dataset.program = "coreutils_001");
  }

let two_configs =
  [
    Cet_compiler.Options.default;
    { Cet_compiler.Options.default with Cet_compiler.Options.arch = Arch.X86 };
  ]

let test_harness_quarantine () =
  let r =
    Harness.run ~profiles:[ micro_profile ] ~configs:two_configs ~jobs:1
      fault_opts
  in
  (* One of the two programs fails under both configs; the survivors'
     tables are complete and the failures carry the retry count. *)
  check Alcotest.int "quarantined" 2 (List.length r.Harness.failures);
  check Alcotest.int "survivors" 2 r.Harness.binaries;
  List.iter
    (fun (f : Harness.failure) ->
      check Alcotest.string "program" "coreutils_001" f.Harness.f_program;
      check Alcotest.int "retried once" 2 f.Harness.f_attempts;
      check Alcotest.bool "injected error recorded" true
        (String.length f.Harness.f_error > 0))
    r.Harness.failures;
  (* Quarantine report: one JSON object per failure. *)
  let buf = Buffer.create 256 in
  let tmp = Filename.temp_file "quarantine" ".jsonl" in
  let oc = open_out tmp in
  Harness.write_quarantine oc r;
  close_out oc;
  let ic = open_in tmp in
  (try
     while true do
       Buffer.add_string buf (input_line ic);
       Buffer.add_char buf '\n'
     done
   with End_of_file -> close_in ic);
  Sys.remove tmp;
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  check Alcotest.int "jsonl lines" 2 (List.length lines);
  List.iter
    (fun l ->
      check Alcotest.bool "looks like json" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  check Alcotest.bool "render mentions program" true
    (contains ~needle:"coreutils_001" (Harness.render_failures r))

let test_harness_quarantine_parallel_identical () =
  (* The surviving set's merged tables must stay byte-identical across
     --jobs even when some binaries are quarantined mid-plan. *)
  let seq = Harness.run ~profiles:[ micro_profile ] ~jobs:1 fault_opts in
  let par = Harness.run ~profiles:[ micro_profile ] ~jobs:4 fault_opts in
  check Alcotest.int "same survivors" seq.Harness.binaries par.Harness.binaries;
  check Alcotest.int "same quarantine" (List.length seq.Harness.failures)
    (List.length par.Harness.failures);
  check Alcotest.string "byte-identical tables" (Harness.render_all seq)
    (Harness.render_all par);
  check Alcotest.string "same failure order" (Harness.render_failures seq)
    (Harness.render_failures par)

let test_harness_fail_fast () =
  let opts = { fault_opts with Harness.keep_going = false } in
  check Alcotest.bool "fail-fast re-raises" true
    (try
       ignore (Harness.run ~profiles:[ micro_profile ] ~jobs:1 opts);
       false
     with Failure msg -> contains ~needle:"injected fault" msg)

(* ---- Scheduler chaos: timing only, never results ----------------------- *)

let test_harness_chaos_identical () =
  (* The strongest identity: a faulting plan (quarantines, retries) with
     per-binary profiling, sequential-and-calm vs parallel-under-chaos.
     Tables, failure order, and every profile row must match byte for
     byte — chaos may only move work around in time. *)
  let opts = { fault_opts with Harness.profile = true } in
  let calm =
    Harness.run ~profiles:[ micro_profile ] ~configs:two_configs ~jobs:1 opts
  in
  let stormy =
    Harness.run ~profiles:[ micro_profile ] ~configs:two_configs ~jobs:4
      { opts with Harness.chaos = Some 7 }
  in
  check Alcotest.string "byte-identical tables under chaos"
    (Harness.render_all calm) (Harness.render_all stormy);
  check Alcotest.string "same failure report under chaos"
    (Harness.render_failures calm) (Harness.render_failures stormy);
  check Alcotest.bool "identical profile rows under chaos" true
    (calm.Harness.profiles = stormy.Harness.profiles);
  check Alcotest.int "same survivors" calm.Harness.binaries
    stormy.Harness.binaries

(* ---- Graceful degradation: shedding under deadline pressure ------------ *)

let test_harness_sheds_under_pressure () =
  (* shed_fraction 2.0 beats any real remaining fraction, so a generous
     run deadline sheds every binary deterministically: all rows run the
     anchored-only analysis and say so in their profile status. *)
  let opts =
    {
      Harness.default_options with
      Harness.seed = 99;
      scale = 1.0;
      timing = false;
      profile = true;
      run_seconds = Some 3600.0;
      shed_fraction = 2.0;
    }
  in
  let r =
    Harness.run ~profiles:[ micro_profile ] ~configs:two_configs ~jobs:2 opts
  in
  check Alcotest.int "nothing quarantined" 0 (List.length r.Harness.failures);
  check Alcotest.int "all binaries evaluated (degraded)" 4 r.Harness.binaries;
  check Alcotest.int "one profile row per binary" 4
    (List.length r.Harness.profiles);
  List.iter
    (fun (p : Harness.profile) ->
      check Alcotest.string "status records the downgrade" "shed"
        p.Harness.p_status)
    r.Harness.profiles;
  (* Shed rows are still deterministic: same run again, byte-identical. *)
  let r2 =
    Harness.run ~profiles:[ micro_profile ] ~configs:two_configs ~jobs:1 opts
  in
  check Alcotest.string "shed tables identical across jobs"
    (Harness.render_all r) (Harness.render_all r2);
  check Alcotest.bool "shed profiles identical across jobs" true
    (r.Harness.profiles = r2.Harness.profiles)

(* ---- --progress accounting under retry and quarantine ------------------ *)

(* Run [f] with stderr redirected to a temp file; return (result, text). *)
let capture_stderr f =
  let tmp = Filename.temp_file "progress" ".txt" in
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stderr;
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  let restore () =
    flush stderr;
    Unix.dup2 saved Unix.stderr;
    Unix.close saved
  in
  let r = try f () with e -> restore (); Sys.remove tmp; raise e in
  restore ();
  let ic = open_in_bin tmp in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  (r, text)

let test_progress_counts_each_binary_once () =
  (* The faulting plan retries (2 attempts) and quarantines 2 of the 4
     binaries.  The progress accounting must still count every binary
     exactly once — the summary line pins done = 4 of 4, 2 quarantined,
     2 retried, however many attempts the guard burned. *)
  let opts = { fault_opts with Harness.progress = true } in
  let r, text =
    capture_stderr (fun () ->
        Harness.run ~profiles:[ micro_profile ] ~configs:two_configs ~jobs:2
          opts)
  in
  check Alcotest.int "quarantined" 2 (List.length r.Harness.failures);
  check Alcotest.bool "summary counts each binary once" true
    (contains ~needle:"4/4 binaries" text);
  check Alcotest.bool "summary reports quarantines" true
    (contains ~needle:"2 quarantined" text);
  check Alcotest.bool "summary reports retries" true
    (contains ~needle:"2 retried" text);
  check Alcotest.bool "no overcount anywhere" false
    (contains ~needle:"5/4" text || contains ~needle:"6/4" text)

(* ---- Quarantine JSONL round-trip --------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_quarantine_roundtrip () =
  let r =
    Harness.run ~profiles:[ micro_profile ] ~configs:two_configs ~jobs:1
      fault_opts
  in
  check Alcotest.int "two failures to serialise" 2
    (List.length r.Harness.failures);
  let tmp = Filename.temp_file "quarantine" ".jsonl" in
  let oc = open_out tmp in
  Harness.write_quarantine oc r;
  close_out oc;
  let text = read_file tmp in
  Sys.remove tmp;
  check Alcotest.bool "rows carry the schema" true
    (contains
       ~needle:(Printf.sprintf "\"schema\":%d" Harness.quarantine_schema)
       text);
  (match Harness.read_quarantine text with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok failures ->
    (* The journal was disabled during the run, so the black boxes are
       empty and the records round-trip exactly. *)
    check Alcotest.bool "parsed = written" true
      (failures = r.Harness.failures));
  (* A wrong schema version is refused, not misread. *)
  let tampered =
    Printf.sprintf "{\"schema\":%d,\"suite\":\"s\",\"program\":\"p\",\
                    \"config\":\"c\",\"attempts\":1,\"error\":\"e\",\
                    \"backtrace\":\"\",\"journal\":[]}\n"
      (Harness.quarantine_schema + 1)
  in
  check Alcotest.bool "wrong schema rejected" true
    (Result.is_error (Harness.read_quarantine tampered));
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Harness.read_quarantine "{\"schema\":oops}\n"))

(* ---- Crash-report JSONL round-trip ------------------------------------- *)

let test_crash_report_roundtrip () =
  let module E = Cet_fuzz.Engine in
  let module J = Cet_telemetry.Journal in
  (* A hand-built summary with a black box: ring ids are not serialised,
     so the round-trip normalises them to -1 and everything else must
     survive exactly — including characters the JSON escaper must cover. *)
  let event kind name v =
    { J.j_kind = kind; j_name = name; j_v = v; j_ns = 123_456; j_ring = 9 }
  in
  let crash =
    {
      E.c_class = "elf-header";
      c_index = 41;
      c_error = "Failure(\"bad \\ byte\ttab\")";
      c_backtrace = "Raised at line 1\nCalled from line 2";
      c_journal =
        [ event J.Diag "elf/truncated" 3; event J.Deadline_slack "sweep" 77 ];
    }
  in
  let s =
    {
      E.total = 100;
      per_class = [ ("elf-header", 50); ("byte-flip", 50) ];
      clean = 60;
      degraded = 39;
      rejected = 0;
      timeouts = 1;
      crashes = [ crash ];
    }
  in
  let tmp = Filename.temp_file "crashes" ".jsonl" in
  let oc = open_out tmp in
  E.write_crashes oc s;
  close_out oc;
  let text = read_file tmp in
  Sys.remove tmp;
  check Alcotest.bool "rows carry the schema" true
    (contains ~needle:(Printf.sprintf "\"schema\":%d" E.crash_schema) text);
  (match E.read_crashes text with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok [ back ] ->
    check Alcotest.string "class" crash.E.c_class back.E.c_class;
    check Alcotest.int "index" crash.E.c_index back.E.c_index;
    check Alcotest.string "error survives escaping" crash.E.c_error
      back.E.c_error;
    check Alcotest.string "backtrace survives newlines" crash.E.c_backtrace
      back.E.c_backtrace;
    check Alcotest.bool "journal events round-trip (ring id reset)" true
      (back.E.c_journal
      = List.map (fun e -> { e with J.j_ring = -1 }) crash.E.c_journal)
  | Ok l -> Alcotest.failf "expected 1 crash, parsed %d" (List.length l));
  (* Version skew is refused. *)
  let tampered =
    Printf.sprintf
      "{\"schema\":%d,\"class\":\"x\",\"index\":0,\"error\":\"e\",\
       \"backtrace\":\"\",\"journal\":[]}\n"
      (E.crash_schema + 1)
  in
  check Alcotest.bool "wrong schema rejected" true
    (Result.is_error (E.read_crashes tampered))

(* ---- Fuzz engine under jobs and chaos ---------------------------------- *)

let test_fuzz_chaos_identical () =
  let base = Cet_fuzz.Engine.run ~seed:11 ~count:40 ~jobs:1 () in
  let stormy = Cet_fuzz.Engine.run ~seed:11 ~count:40 ~jobs:4 ~chaos:99 () in
  check Alcotest.string "fuzz summary identical under jobs+chaos"
    (Cet_fuzz.Engine.render base)
    (Cet_fuzz.Engine.render stormy)

let suite =
  [
    ( "robust",
      [
        Alcotest.test_case "leb128 overlong rejected" `Quick test_leb128_overlong;
        Alcotest.test_case "reader offset overflow" `Quick test_reader_offset_overflow;
        Alcotest.test_case "truncated shdr salvage" `Quick test_truncated_shdr_salvage;
        Alcotest.test_case "bad LSDA encoding degrades" `Quick test_bad_lsda_encoding_degrades;
        Alcotest.test_case "corrupt .eh_frame salvage" `Quick test_corrupt_eh_frame_salvage;
        Alcotest.test_case "truncated LSDA on production landing_pads" `Quick
          test_truncated_lsda_landing_pads;
        Alcotest.test_case "truncated .eh_frame_hdr on production fde_starts" `Quick
          test_truncated_eh_frame_hdr_fde_starts;
        Alcotest.test_case "itable lenient overlap" `Quick test_itable_lenient_overlap;
        Alcotest.test_case "deadline expires sweep" `Quick test_deadline_expires_sweep;
        Alcotest.test_case "deadline nesting" `Quick test_deadline_nesting;
        Alcotest.test_case "missing .text degrades" `Quick test_no_text_degrades;
        Alcotest.test_case "fuzz smoke deterministic" `Slow test_fuzz_smoke_deterministic;
        Alcotest.test_case "harness quarantine" `Quick test_harness_quarantine;
        Alcotest.test_case "harness quarantine parallel" `Slow
          test_harness_quarantine_parallel_identical;
        Alcotest.test_case "harness fail-fast" `Quick test_harness_fail_fast;
        Alcotest.test_case "harness chaos identical" `Slow
          test_harness_chaos_identical;
        Alcotest.test_case "harness sheds under pressure" `Quick
          test_harness_sheds_under_pressure;
        Alcotest.test_case "progress counts each binary once" `Quick
          test_progress_counts_each_binary_once;
        Alcotest.test_case "quarantine jsonl round-trip" `Quick
          test_quarantine_roundtrip;
        Alcotest.test_case "crash report jsonl round-trip" `Quick
          test_crash_report_roundtrip;
        Alcotest.test_case "fuzz chaos identical" `Slow
          test_fuzz_chaos_identical;
      ] );
  ]
