(* Tests for cet_telemetry: histogram quantile edges, merge associativity
   across simulated worker sheets, span nesting, and the determinism
   contract of the --stats report (byte-identical across ~jobs). *)

module Hist = Cet_telemetry.Hist
module Registry = Cet_telemetry.Registry
module Span = Cet_telemetry.Span
module Report = Cet_telemetry.Report
module Harness = Cet_eval.Harness

let check = Alcotest.check

(* Every test leaves the global registry disabled and empty, whatever
   happened, so telemetry state never leaks across the suite. *)
let with_clean_registry f =
  Registry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Registry.disable ();
      Registry.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Histogram                                                          *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let h = Hist.create () in
  check Alcotest.int "count" 0 (Hist.count h);
  check Alcotest.(option int) "quantile of empty" None (Hist.quantile h 0.5);
  check (Alcotest.float 1e-9) "mean of empty" 0.0 (Hist.mean h);
  check Alcotest.int "min of empty" 0 (Hist.min_value h)

let test_hist_single_sample () =
  let h = Hist.create () in
  Hist.add h 12345;
  (* A single sample is exact at every quantile: the log-bucket estimate
     must clamp to the observed min = max. *)
  List.iter
    (fun q ->
      check Alcotest.(option int)
        (Printf.sprintf "q=%.2f" q)
        (Some 12345) (Hist.quantile h q))
    [ 0.0; 0.25; 0.5; 0.99; 1.0 ];
  check Alcotest.int "min" 12345 (Hist.min_value h);
  check Alcotest.int "max" 12345 (Hist.max_value h);
  check (Alcotest.float 1e-9) "mean" 12345.0 (Hist.mean h)

let test_hist_all_equal () =
  let h = Hist.create () in
  for _ = 1 to 100 do
    Hist.add h 777
  done;
  List.iter
    (fun q ->
      check Alcotest.(option int)
        (Printf.sprintf "q=%.2f" q)
        (Some 777) (Hist.quantile h q))
    [ 0.0; 0.5; 1.0 ];
  check Alcotest.int "sum" 77700 (Hist.sum h)

let test_hist_zero_and_negative () =
  let h = Hist.create () in
  Hist.add h 0;
  Hist.add h (-5);
  (* negatives clamp to 0 *)
  check Alcotest.int "count" 2 (Hist.count h);
  check Alcotest.(option int) "quantile" (Some 0) (Hist.quantile h 0.5)

let test_hist_quantile_ordering () =
  let h = Hist.create () in
  (* Two well-separated populations: the median must land in the low one
     and the p99 in the high one, whatever the bucket estimates are. *)
  for _ = 1 to 90 do
    Hist.add h 100
  done;
  for _ = 1 to 10 do
    Hist.add h 1_000_000
  done;
  let q50 = Option.get (Hist.quantile h 0.5) in
  let q99 = Option.get (Hist.quantile h 0.99) in
  check Alcotest.bool "p50 in low population" true (q50 < 1000);
  check Alcotest.bool "p99 in high population" true (q99 > 100_000);
  check Alcotest.bool "p99 clamped to max" true (q99 <= 1_000_000)

let hist_fingerprint h =
  ( Hist.count h,
    Hist.sum h,
    Hist.min_value h,
    Hist.max_value h,
    List.map (Hist.quantile h) [ 0.25; 0.5; 0.9; 0.99 ] )

let test_hist_merge_associative () =
  let mk samples =
    let h = Hist.create () in
    List.iter (Hist.add h) samples;
    h
  in
  let sa = [ 1; 50; 2_000 ] and sb = [ 7; 7; 7; 900_000 ] and sc = [ 123_456 ] in
  (* (a + b) + c *)
  let left = mk sa in
  let ab = mk sb in
  Hist.merge left ab;
  Hist.merge left (mk sc);
  (* a + (b + c) *)
  let bc = mk sb in
  Hist.merge bc (mk sc);
  let right = mk sa in
  Hist.merge right bc;
  check Alcotest.bool "merge associativity" true
    (hist_fingerprint left = hist_fingerprint right);
  check Alcotest.int "merged count" 8 (Hist.count left);
  check Alcotest.int "merged min" 1 (Hist.min_value left);
  check Alcotest.int "merged max" 900_000 (Hist.max_value left)

(* ------------------------------------------------------------------ *)
(* Counter merge across simulated worker sheets                       *)
(* ------------------------------------------------------------------ *)

let sheet_with counters =
  let s = Registry.create () in
  List.iter
    (fun (name, n) ->
      match Hashtbl.find_opt s.Registry.counters name with
      | Some c -> c.Registry.n <- c.Registry.n + n
      | None -> Hashtbl.replace s.Registry.counters name { Registry.n })
    counters;
  s

let counters_of s =
  Hashtbl.fold (fun k (c : Registry.counter) acc -> (k, c.n) :: acc) s.Registry.counters []
  |> List.sort compare

let test_counter_merge_associative () =
  let mk () =
    ( sheet_with [ ("binaries", 3); ("endbr", 100) ],
      sheet_with [ ("binaries", 5); ("resyncs", 2) ],
      sheet_with [ ("endbr", 41); ("resyncs", 1) ] )
  in
  (* (a + b) + c — merge into a fresh target, like Report does. *)
  let a, b, c = mk () in
  let left = Registry.create () in
  Registry.merge left a;
  Registry.merge left b;
  Registry.merge left c;
  (* a + (b + c) *)
  let a, b, c = mk () in
  let bc = Registry.create () in
  Registry.merge bc b;
  Registry.merge bc c;
  let right = Registry.create () in
  Registry.merge right a;
  Registry.merge right bc;
  check
    Alcotest.(list (pair string int))
    "counter merge associativity" (counters_of left) (counters_of right);
  check
    Alcotest.(list (pair string int))
    "expected totals"
    [ ("binaries", 8); ("endbr", 141); ("resyncs", 3) ]
    (counters_of left)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let span_metric name =
  Hashtbl.find_opt (Registry.ambient ()).Registry.spans name

let test_span_nesting () =
  with_clean_registry (fun () ->
      Registry.enable ~trace:true ();
      let inner_ran = ref 0 in
      Span.with_ ~name:"outer" (fun () ->
          Span.with_ ~name:"inner" (fun () -> incr inner_ran);
          Span.with_ ~name:"inner" (fun () -> incr inner_ran));
      check Alcotest.int "inner body ran twice" 2 !inner_ran;
      let outer = Option.get (span_metric "outer") in
      let inner = Option.get (span_metric "inner") in
      check Alcotest.int "outer calls" 1 (Hist.count outer.Registry.hist);
      check Alcotest.int "inner calls" 2 (Hist.count inner.Registry.hist);
      (* Nested time is attributed to the parent's child_ns, so the
         parent's self time stays non-negative and the inner total is
         bounded by the outer total. *)
      check Alcotest.bool "inner total <= outer total" true
        (Hist.sum inner.Registry.hist <= Hist.sum outer.Registry.hist);
      check Alcotest.bool "outer child covers inner" true
        (outer.Registry.child_ns >= Hist.sum inner.Registry.hist);
      check Alcotest.int "inner leaf has no children" 0 inner.Registry.child_ns;
      (* Trace events carry the nesting depth. *)
      let events = (Registry.ambient ()).Registry.events in
      let depth name =
        List.filter_map
          (fun (e : Registry.event) ->
            if e.ev_name = name then Some e.ev_depth else None)
          events
      in
      check Alcotest.(list int) "outer depth" [ 0 ] (depth "outer");
      check Alcotest.(list int) "inner depths" [ 1; 1 ] (depth "inner");
      check Alcotest.int "stack drained" 0
        (List.length (Registry.ambient ()).Registry.stack))

let test_span_disabled_records_nothing () =
  with_clean_registry (fun () ->
      check Alcotest.bool "disabled" false (Span.enabled ());
      Span.with_ ~name:"ghost" (fun () -> ());
      Registry.count "ghost.counter";
      check Alcotest.bool "no span" true (span_metric "ghost" = None);
      check Alcotest.int "no counter" 0
        (Registry.find_counter (Registry.ambient ()) "ghost.counter"))

let test_span_exception_closes () =
  with_clean_registry (fun () ->
      Registry.enable ();
      (try Span.with_ ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
      let m = Option.get (span_metric "boom") in
      check Alcotest.int "span recorded despite raise" 1 (Hist.count m.Registry.hist);
      check Alcotest.int "stack drained" 0
        (List.length (Registry.ambient ()).Registry.stack))

(* ------------------------------------------------------------------ *)
(* Report determinism across ~jobs                                    *)
(* ------------------------------------------------------------------ *)

let micro_profile =
  {
    Cet_corpus.Profile.coreutils with
    Cet_corpus.Profile.suite = "coreutils";
    programs = 2;
    funcs_lo = 30;
    funcs_hi = 40;
  }

let micro_configs =
  [
    Cet_compiler.Options.default;
    { Cet_compiler.Options.default with Cet_compiler.Options.compiler = Cet_compiler.Options.Clang };
  ]

let stats_report ~jobs =
  Registry.reset ();
  let _ =
    Harness.run ~profiles:[ micro_profile ] ~configs:micro_configs ~jobs
      { Harness.default_options with Harness.seed = 11; scale = 1.0; timing = false }
  in
  Report.render ~timing:false ()

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_stats_identical_across_jobs () =
  with_clean_registry (fun () ->
      Registry.enable ();
      let seq = stats_report ~jobs:1 in
      let par = stats_report ~jobs:4 in
      check Alcotest.string "--stats report byte-identical (timing zeroed)" seq par;
      (* and it actually says something *)
      check Alcotest.bool "binaries counted" true (contains seq "harness.binaries");
      check Alcotest.bool "analysis spans present" true
        (contains seq "funseeker.analyze"))

(* ------------------------------------------------------------------ *)
(* Report edge cases and the chrome trace writer                      *)
(* ------------------------------------------------------------------ *)

(* A phase with zero samples (merged from a sheet that created the metric
   but never closed a span) must render [-] in the mean/quantile columns,
   not a fabricated 0.000. *)
let test_render_zero_sample_phase () =
  with_clean_registry (fun () ->
      Registry.enable ();
      Hashtbl.replace (Registry.ambient ()).Registry.spans "ghost.phase"
        { Registry.hist = Hist.create (); child_ns = 0 };
      let out = Report.render ~timing:true () in
      check Alcotest.bool "phase row present" true (contains out "ghost.phase");
      check Alcotest.bool "quantile columns render '-'" true
        (contains out "-          -          -"))

(* No spans at all: the phase table (header and self-time line) must be
   omitted entirely, not rendered bare. *)
let test_render_omits_empty_phase_table () =
  with_clean_registry (fun () ->
      Registry.enable ();
      Registry.count "lonely.counter";
      let out = Report.render ~timing:true () in
      check Alcotest.bool "no bare phase header" false
        (contains out "phase breakdown");
      check Alcotest.bool "no self-time line" false (contains out "self-time sum");
      check Alcotest.bool "counters still render" true
        (contains out "lonely.counter"))

let test_chrome_trace () =
  with_clean_registry (fun () ->
      Registry.enable ~trace:true ();
      Span.with_ ~name:"outer" (fun () -> Span.with_ ~name:"inner" (fun () -> ()));
      let path = Filename.temp_file "cet-trace" ".json" in
      Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> Report.write_trace_chrome oc);
          let ic = open_in path in
          let body =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          check Alcotest.bool "starts as a JSON array" true (String.length body > 0 && body.[0] = '[');
          check Alcotest.bool "complete events" true (contains body "\"ph\":\"X\"");
          check Alcotest.bool "microsecond timestamps" true (contains body "\"ts\":");
          check Alcotest.bool "span names survive" true (contains body "\"name\":\"inner\"");
          check Alcotest.bool "array is closed" true
            (String.length body >= 2 && body.[String.length body - 2] = ']')))

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "hist: empty" `Quick test_hist_empty;
        Alcotest.test_case "hist: single sample exact" `Quick test_hist_single_sample;
        Alcotest.test_case "hist: all-equal exact" `Quick test_hist_all_equal;
        Alcotest.test_case "hist: zero and negative" `Quick test_hist_zero_and_negative;
        Alcotest.test_case "hist: quantile ordering" `Quick test_hist_quantile_ordering;
        Alcotest.test_case "hist: merge associative" `Quick test_hist_merge_associative;
        Alcotest.test_case "counters: merge associative" `Quick
          test_counter_merge_associative;
        Alcotest.test_case "span: nesting" `Quick test_span_nesting;
        Alcotest.test_case "span: disabled is inert" `Quick
          test_span_disabled_records_nothing;
        Alcotest.test_case "span: exception closes" `Quick test_span_exception_closes;
        Alcotest.test_case "report: byte-identical across jobs" `Quick
          test_stats_identical_across_jobs;
        Alcotest.test_case "report: zero-sample phase renders '-'" `Quick
          test_render_zero_sample_phase;
        Alcotest.test_case "report: empty phase table omitted" `Quick
          test_render_omits_empty_phase_table;
        Alcotest.test_case "trace: chrome format" `Quick test_chrome_trace;
      ] );
  ]
