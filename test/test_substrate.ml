(* Tests for the shared per-binary analysis substrate: memoised analysis
   must be indistinguishable from fresh per-tool analysis, and the sweep
   core must hold its allocation budget. *)

module O = Cet_compiler.Options
module Reader = Cet_elf.Reader
module Linear = Cet_disasm.Linear
module Substrate = Cet_disasm.Substrate
module FS = Core.Funseeker

let check = Alcotest.check
let int_list = Alcotest.(list int)

let build ~profile ~index ~opts =
  let ir = Cet_corpus.Generator.program ~seed:2022 ~profile ~index in
  let res = Cet_compiler.Link.link opts ir in
  ( Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image,
    List.sort_uniq Int.compare (List.map snd res.Cet_compiler.Link.truth) )

(* A small cross-section of the corpus: both compilers, both arches, C and
   C++ (landing pads), and a jump-tables-in-text binary so the anchored
   sweep has something to disagree with the linear one about. *)
let corpus =
  lazy
    (let coreutils = Cet_corpus.Profile.scaled 0.05 Cet_corpus.Profile.coreutils in
     let spec_cpp =
       {
         (Cet_corpus.Profile.scaled 0.05 Cet_corpus.Profile.spec) with
         Cet_corpus.Profile.lang_cpp_fraction = 1.0;
       }
     in
     [
       ("gcc-x64", build ~profile:coreutils ~index:0 ~opts:O.default);
       ( "clang-x86",
         build ~profile:coreutils ~index:1
           ~opts:{ O.default with compiler = O.Clang; arch = Cet_x86.Arch.X86; pie = false }
       );
       ("gcc-x64-cpp", build ~profile:spec_cpp ~index:0 ~opts:O.default);
       ( "gcc-x64-inline-data",
         build ~profile:coreutils ~index:2
           ~opts:{ O.default with jump_tables_in_text = true } );
     ])

(* Every tool, run twice against the same substrate (second call exercises
   the memoised path), must match a fresh analysis from its legacy entry
   point exactly. *)
let test_equivalence () =
  List.iter
    (fun (name, (bytes, truth)) ->
      let reader = Reader.read bytes in
      let st = Substrate.create reader in
      let twice label fresh st_run =
        check int_list (name ^ " " ^ label ^ " (cold)") fresh (st_run ());
        check int_list (name ^ " " ^ label ^ " (memoised)") fresh (st_run ())
      in
      List.iter
        (fun (i, config) ->
          twice
            (Printf.sprintf "funseeker-config%d" i)
            (FS.analyze ~config reader).FS.functions
            (fun () -> (FS.analyze_st ~config st).FS.functions))
        [ (1, FS.config1); (2, FS.config2); (3, FS.config3); (4, FS.config4) ];
      twice "funseeker-anchored"
        (FS.analyze ~anchored:true reader).FS.functions
        (fun () -> (FS.analyze_st ~anchored:true st).FS.functions);
      twice "ida" (Cet_baselines.Ida_like.analyze reader) (fun () ->
          Cet_baselines.Ida_like.analyze_st st);
      twice "ghidra" (Cet_baselines.Ghidra_like.analyze reader) (fun () ->
          Cet_baselines.Ghidra_like.analyze_st st);
      twice "fetch" (Cet_baselines.Fetch.analyze reader) (fun () ->
          Cet_baselines.Fetch.analyze_st st);
      twice "nucleus" (Cet_baselines.Nucleus_like.analyze reader) (fun () ->
          Cet_baselines.Nucleus_like.analyze_st st);
      let model = Cet_baselines.Byteweight.train [ (reader, truth) ] in
      twice "byteweight"
        (Cet_baselines.Byteweight.classify model reader)
        (fun () -> Cet_baselines.Byteweight.classify_st model st);
      (* The audit consumes the same memoised facts. *)
      let fresh_audit = Core.Audit.audit reader in
      let st_audit = Core.Audit.audit_st st in
      check int_list (name ^ " audit violations")
        (List.map (fun v -> v.Core.Audit.v_target) fresh_audit.Core.Audit.violations)
        (List.map (fun v -> v.Core.Audit.v_target) st_audit.Core.Audit.violations);
      check Alcotest.int (name ^ " audit superfluous") fresh_audit.Core.Audit.superfluous
        st_audit.Core.Audit.superfluous)
    (Lazy.force corpus)

(* The full FunSeeker result record (counts included) must survive the
   substrate path, not just the entry list. *)
let test_result_counts () =
  List.iter
    (fun (name, (bytes, _truth)) ->
      let reader = Reader.read bytes in
      let fresh = FS.analyze reader in
      let st = FS.analyze_st (Substrate.create reader) in
      check Alcotest.int (name ^ " endbr_total") fresh.FS.endbr_total st.FS.endbr_total;
      check Alcotest.int (name ^ " filtered_ir") fresh.FS.filtered_indirect_return
        st.FS.filtered_indirect_return;
      check Alcotest.int (name ^ " filtered_lp") fresh.FS.filtered_landing_pads
        st.FS.filtered_landing_pads;
      check Alcotest.int (name ^ " call_targets") fresh.FS.call_target_count
        st.FS.call_target_count;
      check Alcotest.int (name ^ " jump_targets") fresh.FS.jump_target_count
        st.FS.jump_target_count;
      check Alcotest.int (name ^ " tail_calls") fresh.FS.tail_calls_selected
        st.FS.tail_calls_selected;
      check Alcotest.int (name ^ " resyncs") fresh.FS.resync_errors st.FS.resync_errors)
    (Lazy.force corpus)

(* The memoised index arrays must agree with the list-level extractors the
   rest of the code has always used. *)
let test_index_arrays () =
  List.iter
    (fun (name, (bytes, _truth)) ->
      let st = Substrate.of_bytes bytes in
      let sweep = Substrate.sweep st in
      let ix = Substrate.indexes st in
      check int_list (name ^ " endbrs") (Linear.endbr_addrs sweep)
        (Array.to_list ix.Substrate.endbrs);
      check int_list (name ^ " call_targets") (Linear.call_targets sweep)
        (Array.to_list ix.Substrate.call_targets);
      check int_list (name ^ " jmp_targets") (Linear.jmp_targets sweep)
        (Array.to_list ix.Substrate.jmp_targets);
      check int_list (name ^ " call_sites")
        (List.map (fun (s, _, _) -> s) (Linear.call_sites sweep))
        (Array.to_list ix.Substrate.call_sites);
      check int_list (name ^ " call_rets")
        (List.map (fun (_, r, _) -> r) (Linear.call_sites sweep))
        (Array.to_list ix.Substrate.call_rets);
      check int_list (name ^ " jmp_refs")
        (List.map fst (Linear.jmp_refs sweep))
        (Array.to_list ix.Substrate.jmp_sites))
    (Lazy.force corpus)

(* Sorted-array set algebra, checked against the list model. *)
let test_sorted_set_ops =
  QCheck.Test.make ~name:"sorted set ops match list model" ~count:200
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (a, b) ->
      let sa = Linear.sort_dedup_ints (Array.of_list a) in
      let sb = Linear.sort_dedup_ints (Array.of_list b) in
      let merged = Array.to_list (Linear.merge_sorted_dedup sa sb) in
      merged = List.sort_uniq Int.compare (a @ b)
      && List.for_all (fun v -> Linear.mem_sorted sa v) a
      && List.for_all
           (fun v -> Linear.mem_sorted sa v = List.mem v a)
           (List.init 30 Fun.id))

(* The telemetry-off sweep core must stay lean.  Decoding itself allocates
   the instruction records (and dominates), so the bound is on the sweep's
   *overhead* over a bare decode loop: the doubling buffer plus the final
   [Array.sub] cost ~2 words per instruction amortised, while the old
   List.rev + Array.of_list accumulator cost ~7.  Budget 4 with headroom. *)
let test_sweep_allocation_budget () =
  let bytes, _ = List.assoc "gcc-x64-cpp" (Lazy.force corpus) in
  let reader = Reader.read bytes in
  assert (not (Cet_telemetry.Span.enabled ()));
  let warm = Linear.sweep_text reader in
  let { Linear.arch; base; code; _ } = warm in
  let size = String.length code in
  let decode_only () =
    let off = ref 0 in
    while !off < size do
      match Cet_x86.Decoder.decode arch code ~base ~off:!off with
      | Ok ins -> off := !off + ins.Cet_x86.Decoder.len
      | Error _ -> incr off
    done
  in
  decode_only ();
  let measure f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  let decode_words = measure decode_only in
  let sweep_words = measure (fun () -> ignore (Linear.sweep_text reader)) in
  let n = float_of_int (Array.length warm.Linear.insns) in
  let overhead = (sweep_words -. decode_words) /. n in
  if overhead > 4.0 then
    Alcotest.failf
      "sweep core overhead is %.1f minor words per instruction (budget 4)" overhead

(* --- stream-free scan vs sweep-derived products ------------------------ *)

(* The SWAR-prescanned scan (what a substrate runs when no sweep is
   cached) and the sweep-derived path must be observationally identical:
   same index arrays, same facts, plain and anchored. *)
let check_scan_matches tag bytes =
  List.iter
    (fun anchored ->
      let tag = Printf.sprintf "%s anchored=%b" tag anchored in
      let scan_st = Substrate.of_bytes bytes in
      let ix_scan = Substrate.indexes ~anchored scan_st in
      let fx_scan = Substrate.facts ~anchored scan_st in
      let sweep_st = Substrate.of_bytes bytes in
      ignore
        (if anchored then Substrate.sweep_anchored sweep_st
         else Substrate.sweep sweep_st);
      let ix_sweep = Substrate.indexes ~anchored sweep_st in
      let fx_sweep = Substrate.facts ~anchored sweep_st in
      let arr field f =
        check int_list (tag ^ " " ^ field)
          (Array.to_list (f ix_sweep))
          (Array.to_list (f ix_scan))
      in
      arr "endbrs" (fun i -> i.Substrate.endbrs);
      arr "call_sites" (fun i -> i.Substrate.call_sites);
      arr "call_rets" (fun i -> i.Substrate.call_rets);
      arr "call_tgts" (fun i -> i.Substrate.call_tgts);
      arr "call_targets" (fun i -> i.Substrate.call_targets);
      arr "jmp_sites" (fun i -> i.Substrate.jmp_sites);
      arr "jmp_tgts" (fun i -> i.Substrate.jmp_tgts);
      arr "jmp_targets" (fun i -> i.Substrate.jmp_targets);
      check Alcotest.int (tag ^ " f_base") fx_sweep.Substrate.f_base
        fx_scan.Substrate.f_base;
      check Alcotest.int (tag ^ " f_size") fx_sweep.Substrate.f_size
        fx_scan.Substrate.f_size;
      check Alcotest.int (tag ^ " resyncs") fx_sweep.Substrate.f_resync_errors
        fx_scan.Substrate.f_resync_errors;
      check Alcotest.int (tag ^ " insns") fx_sweep.Substrate.f_insns
        fx_scan.Substrate.f_insns)
    [ false; true ]

let test_scan_matches_corpus () =
  List.iter (fun (name, (bytes, _)) -> check_scan_matches name bytes) (Lazy.force corpus)

let image_with_text arch text =
  Cet_elf.Writer.write
    {
      Cet_elf.Image.arch;
      machine = None;
      pie = true;
      cet_note = true;
      entry = 0x1000;
      sections =
        [
          Cet_elf.Image.section ~name:".text"
            ~flags:(Cet_elf.Consts.shf_alloc lor Cet_elf.Consts.shf_execinstr)
            ~addralign:16 ~vaddr:0x1000 text;
        ];
      symbols = [];
      dynsyms = [];
      plt_relocs = [];
    }

(* Random bytes with candidate patterns (end branches, direct calls and
   jumps) planted at random spots, so both scan loops do real work and
   the window gate has plenty of positive and negative words. *)
let planted_code_gen =
  QCheck.Gen.(
    string_size ~gen:char (int_range 1 160) >>= fun raw ->
    list_size (int_range 0 8)
      (pair (int_range 0 4) (int_range 0 (max 0 (String.length raw - 1))))
    >|= fun spots ->
    let pool =
      [|
        "\xf3\x0f\x1e\xfa"; "\xf3\x0f\x1e\xfb"; "\xe8\x10\x00\x00\x00";
        "\xe9\xf0\xff\xff\xff"; "\xeb\x04";
      |]
    in
    let b = Bytes.of_string raw in
    List.iter
      (fun (which, i) ->
        let p = pool.(which) in
        let len = min (String.length p) (Bytes.length b - i) in
        Bytes.blit_string p 0 b i len)
      spots;
    Bytes.to_string b)

let test_scan_matches_planted =
  QCheck.Test.make ~name:"scan = sweep-derived on planted code" ~count:100
    (QCheck.make ~print:(Printf.sprintf "%S") planted_code_gen)
    (fun code ->
      List.iter
        (fun arch -> check_scan_matches "planted" (image_with_text arch code))
        [ Cet_x86.Arch.X64; Cet_x86.Arch.X86 ];
      true)

(* The stream-free scan materialises no instruction records at all — only
   the class bitmap, the anchor table, and the index buffers — so its
   whole budget is a couple of minor words per instruction. *)
let test_scan_allocation_budget () =
  let bytes, _ = List.assoc "gcc-x64-cpp" (Lazy.force corpus) in
  assert (not (Cet_telemetry.Span.enabled ()));
  let reader = Reader.read bytes in
  let n =
    float_of_int (Array.length (Linear.sweep_text reader).Linear.insns)
  in
  let run anchored () =
    ignore
      (Sys.opaque_identity (Substrate.indexes ~anchored (Substrate.create reader)))
  in
  run false ();
  run true ();
  List.iter
    (fun anchored ->
      let before = Gc.minor_words () in
      run anchored ();
      let per_insn = (Gc.minor_words () -. before) /. n in
      if per_insn > 1.0 then
        Alcotest.failf "scan (anchored=%b) allocates %.2f minor words per instruction (budget 1)"
          anchored per_insn)
    [ false; true ]

(* Regression (dead-copy fix): [indexes_of_sweep] builds [jmp_targets] by
   sorting a buffer in place.  If that buffer aliased [jmp_tgts], the
   site->target pairing would be scrambled — two jumps with descending
   targets detect any aliasing the moment the sort runs. *)
let test_jmp_tgts_sweep_order () =
  let code = "\xEB\x06\xEB\x00" ^ String.make 8 '\x90' in
  let sweep = Linear.sweep Cet_x86.Arch.X64 ~base:0x1000 code in
  let ix = Substrate.indexes_of_sweep sweep in
  check int_list "sites" [ 0x1000; 0x1002 ] (Array.to_list ix.Substrate.jmp_sites);
  check int_list "tgts stay in sweep order" [ 0x1008; 0x1004 ]
    (Array.to_list ix.Substrate.jmp_tgts);
  check int_list "targets sorted" [ 0x1004; 0x1008 ]
    (Array.to_list ix.Substrate.jmp_targets)

(* Regression (same fix, the perf half): the dead [Array.copy] cost one
   extra minor word per jump on jump-heavy code.  The index build on this
   all-jump sweep is deterministic — buffers, doubling, and the final
   [Array.sub]s — so the budget can sit right above the fixed cost and
   below fixed + 1 word/insn, where the copy would land. *)
let test_indexes_allocation_budget () =
  let n = 8192 in
  let code =
    String.concat "" (List.init n (fun _ -> "\xEB\xFE") (* jmp self *))
  in
  let sweep = Linear.sweep Cet_x86.Arch.X64 ~base:0x1000 code in
  ignore (Substrate.indexes_of_sweep sweep);
  let before = Gc.minor_words () in
  ignore (Sys.opaque_identity (Substrate.indexes_of_sweep sweep));
  let words = Gc.minor_words () -. before in
  let per_insn = words /. float_of_int n in
  if per_insn > 4.7 then
    Alcotest.failf "index build allocates %.2f minor words per jump (budget 4.7)"
      per_insn

let suite =
  [
    ( "substrate",
      [
        Alcotest.test_case "memoised = fresh for every tool" `Quick test_equivalence;
        Alcotest.test_case "funseeker counts survive substrate" `Quick test_result_counts;
        Alcotest.test_case "index arrays match list extractors" `Quick test_index_arrays;
        QCheck_alcotest.to_alcotest test_sorted_set_ops;
        Alcotest.test_case "sweep allocation budget" `Quick test_sweep_allocation_budget;
        Alcotest.test_case "scan matches sweep-derived (corpus)" `Quick
          test_scan_matches_corpus;
        QCheck_alcotest.to_alcotest test_scan_matches_planted;
        Alcotest.test_case "scan allocation budget" `Quick test_scan_allocation_budget;
        Alcotest.test_case "jmp_tgts keeps sweep order" `Quick test_jmp_tgts_sweep_order;
        Alcotest.test_case "index build allocation budget" `Quick
          test_indexes_allocation_budget;
      ] );
  ]
