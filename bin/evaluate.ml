(* evaluate — regenerate every table and figure of the paper.

   Usage:
     evaluate all                 # all tables + figure
     evaluate table1|fig3|table2|table3
     evaluate --scale 0.25 --seed 2022 --jobs 4 all
     evaluate --stats --trace-out trace.jsonl all   # telemetry report + JSON-lines trace
     evaluate --trace-out t.json --trace-format chrome all   # Perfetto-openable trace
     evaluate --max-seconds 5 --quarantine-out q.jsonl all   # fault-isolated run
     evaluate --triage --triage-out triage.jsonl all         # FP/FN root-cause forensics
     evaluate --profile-out p.jsonl --top-slow 10 all        # per-binary profiles
     evaluate --slo "funseeker:p99<=50ms" all                # latency objectives
     evaluate --metrics-out m.prom all                       # OpenMetrics exposition
     evaluate --manifest-out run.jsonl all                   # content-hashed run manifest

   Exit codes: 0 on success, 1 when binaries were quarantined, 2 on usage
   errors, 3 when a --slo objective was breached. *)

open Cmdliner
module Telemetry = Cet_telemetry.Registry
module Journal = Cet_telemetry.Journal
module Slo = Cet_telemetry.Slo
module Report = Cet_telemetry.Report

let run_eval what seed scale progress jobs no_timing stats trace_out trace_format
    max_seconds quarantine_out fail_fast inject_fault triage triage_out
    profile_out top_slow slo metrics_out manifest_out chaos run_seconds =
  if jobs <= 0 then begin
    Printf.eprintf "evaluate: --jobs must be a positive worker count (got %d)\n" jobs;
    exit 2
  end;
  if scale <= 0.0 then begin
    Printf.eprintf "evaluate: --scale must be positive (got %g)\n" scale;
    exit 2
  end;
  (match max_seconds with
  | Some s when s <= 0.0 ->
    Printf.eprintf "evaluate: --max-seconds must be positive (got %g)\n" s;
    exit 2
  | _ -> ());
  (match inject_fault with
  | Some n when n <= 0 ->
    Printf.eprintf "evaluate: --inject-fault must be a positive modulus (got %d)\n" n;
    exit 2
  | _ -> ());
  (match run_seconds with
  | Some s when s <= 0.0 ->
    Printf.eprintf "evaluate: --run-seconds must be positive (got %g)\n" s;
    exit 2
  | _ -> ());
  if top_slow < 0 then begin
    Printf.eprintf "evaluate: --top-slow must be non-negative (got %d)\n" top_slow;
    exit 2
  end;
  (* A malformed objective is a usage error before the run, not a surprise
     after it. *)
  let objectives =
    List.map
      (fun spec ->
        match Slo.parse spec with
        | Ok o -> o
        | Error msg ->
          Printf.eprintf "evaluate: bad --slo objective %s\n" msg;
          exit 2)
      slo
  in
  (* Open the report files up front so an unwritable path is a usage
     error before hours of evaluation, not after. *)
  let open_report flag = function
    | None -> None
    | Some path -> (
      try Some (path, open_out path)
      with Sys_error msg ->
        Printf.eprintf "evaluate: cannot open %s file: %s\n" flag msg;
        exit 2)
  in
  let quarantine_oc = open_report "--quarantine-out" quarantine_out in
  let triage_oc = open_report "--triage-out" triage_out in
  let profile_oc = open_report "--profile-out" profile_out in
  let metrics_oc = open_report "--metrics-out" metrics_out in
  let manifest_oc = open_report "--manifest-out" manifest_out in
  (* --triage-out implies the forensics pass itself. *)
  let triage = triage || triage_out <> None in
  (* The manifest's per-binary rows and its run digest come from the
     profile rows, so --manifest-out implies profiling. *)
  let profile = profile_oc <> None || top_slow > 0 || manifest_oc <> None in
  if stats || trace_out <> None || metrics_oc <> None then
    Telemetry.enable ~trace:(trace_out <> None) ();
  (* The flight recorder feeds the quarantine black boxes and the trace's
     instant markers; bridge the lower layers' observation hooks to it. *)
  if quarantine_oc <> None || trace_out <> None then begin
    Journal.enable ();
    Cet_util.Deadline.set_observer
      (Some
         (fun what slack_ns ->
           if Journal.enabled () then
             Journal.record ~v:slack_ns Journal.Deadline_slack what));
    Cet_util.Diag.Collector.set_observer
      (Some
         (fun d ->
           if Journal.enabled () then
             Journal.record Journal.Diag
               (d.Cet_util.Diag.domain ^ "/" ^ d.Cet_util.Diag.code)))
  end;
  if objectives <> [] then Slo.enable ();
  let fault =
    match inject_fault with
    | None -> None
    | Some n ->
      Some
        (fun (b : Cet_corpus.Dataset.binary) ->
          Hashtbl.hash (b.suite, b.program, Cet_compiler.Options.to_string b.config)
          mod n
          = 0)
  in
  let opts =
    {
      Cet_eval.Harness.seed;
      scale;
      progress;
      timing = not no_timing;
      max_seconds;
      keep_going = not fail_fast;
      fault;
      triage;
      profile;
      chaos;
      run_seconds;
      shed_fraction = Cet_eval.Harness.default_options.Cet_eval.Harness.shed_fraction;
      breaker = Cet_eval.Harness.default_options.Cet_eval.Harness.breaker;
    }
  in
  let t0 = Unix.gettimeofday () in
  let status = ref 0 in
  (* Captured from the results branch for the metrics info labels below. *)
  let results_digest = ref None in
  let out =
    match what with
    | "manual-endbr" ->
      Cet_eval.Harness.render_manual_endbr
        (Cet_eval.Harness.manual_endbr_ablation ~jobs opts)
    | "extras" ->
      Cet_eval.Harness.render_related_work (Cet_eval.Harness.related_work ~jobs opts)
    | "inline-data" ->
      Cet_eval.Harness.render_inline_data (Cet_eval.Harness.inline_data ~jobs opts)
    | "arm" -> Cet_eval.Harness.render_arm (Cet_eval.Harness.arm_bti ~jobs opts)
    | "all" | "table1" | "fig3" | "table2" | "table3" ->
      let results = Cet_eval.Harness.run ~jobs opts in
      if results.Cet_eval.Harness.failures <> [] then begin
        status := 1;
        prerr_string (Cet_eval.Harness.render_failures results)
      end;
      (match quarantine_oc with
      | None -> ()
      | Some (path, oc) ->
        Cet_eval.Harness.write_quarantine oc results;
        Printf.eprintf "quarantine report written to %s (%d entries)\n" path
          (List.length results.Cet_eval.Harness.failures));
      (match triage_oc with
      | None -> ()
      | Some (path, oc) ->
        Cet_eval.Tables.Triage.write_jsonl oc results.Cet_eval.Harness.triage;
        Printf.eprintf "triage report written to %s (%d errors)\n" path
          (Cet_eval.Tables.Triage.total results.Cet_eval.Harness.triage));
      (match profile_oc with
      | None -> ()
      | Some (path, oc) ->
        Cet_eval.Harness.write_profiles oc results;
        Printf.eprintf "profile report written to %s (%d rows)\n" path
          (List.length results.Cet_eval.Harness.profiles));
      if profile then
        results_digest := Some (Cet_eval.Harness.run_digest results);
      (match manifest_oc with
      | None -> ()
      | Some (path, oc) ->
        let meta =
          {
            Cet_eval.Harness.m_experiment = what;
            m_jobs = jobs;
            m_chaos = chaos;
            m_profile_art = profile_out;
            m_quarantine_art = quarantine_out;
            m_trace_art = trace_out;
            m_metrics_art = metrics_out;
          }
        in
        Cet_eval.Harness.write_manifest oc ~meta opts results;
        Printf.eprintf "run manifest written to %s (digest %s)\n" path
          (Cet_eval.Harness.run_digest results));
      let base =
        match what with
        | "all" -> Cet_eval.Harness.render_all results
        | "table1" -> Cet_eval.Tables.Table1.render results.table1
        | "fig3" -> Cet_eval.Tables.Fig3.render results.fig3
        | "table2" -> Cet_eval.Tables.Table2.render results.table2
        | _ -> Cet_eval.Tables.Table3.render results.table3
      in
      let base =
        if triage then
          base ^ "\n" ^ Cet_eval.Tables.Triage.render results.Cet_eval.Harness.triage
        else base
      in
      if top_slow > 0 then
        base ^ "\n" ^ Cet_eval.Harness.render_top_slow results top_slow
      else base
    | other ->
      Printf.eprintf
        "evaluate: unknown experiment %S (try \
         all|table1|fig3|table2|table3|manual-endbr|extras|inline-data|arm)\n"
        other;
      exit 2
  in
  Option.iter (fun (_, oc) -> close_out oc) quarantine_oc;
  Option.iter (fun (_, oc) -> close_out oc) triage_oc;
  Option.iter (fun (_, oc) -> close_out oc) profile_oc;
  Option.iter (fun (_, oc) -> close_out oc) manifest_oc;
  let wall = Unix.gettimeofday () -. t0 in
  print_string out;
  if stats then begin
    print_newline ();
    print_string (Report.render ~timing:(not no_timing) ());
    (* Coverage of the instrumentation: with --jobs 1 the span self-time
       sum tracks wall-clock directly; with more workers it tracks the
       summed busy time instead. *)
    if not no_timing then
      Printf.printf
        "telemetry: wall-clock %.3f s (jobs=%d); spans cover %.3f s of worker busy time\n"
        wall jobs
        (float_of_int (Report.self_total_ns ()) /. 1e9)
  end;
  (match trace_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let write = match trace_format with
      | "chrome" -> Report.write_trace_chrome
      | _ -> Report.write_trace
    in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc);
    Printf.eprintf "trace written to %s (%s)\n" path trace_format);
  (match metrics_oc with
  | None -> ()
  | Some (path, oc) ->
    (* Run identity rides along as a cet_run_info gauge so a scrape can
       be joined back to its manifest by digest. *)
    let info =
      (match !results_digest with Some d -> [ ("digest", d) ] | None -> [])
      @ [ ("seed", string_of_int seed) ]
    in
    Report.write_openmetrics ~info oc;
    close_out oc;
    Printf.eprintf "metrics written to %s\n" path);
  (* Objectives are checked over everything observed this run; any breach
     (including an objective nothing matched) trumps the other statuses —
     a gated pipeline must see the gate fail. *)
  if objectives <> [] then begin
    let verdicts = Slo.check objectives in
    prerr_string (Slo.render verdicts);
    if Slo.breached verdicts then status := 3
  end;
  !status

let what =
  let doc = "Which experiment to regenerate: all, table1, fig3, table2, table3, manual-endbr, extras, inline-data, arm." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let seed =
  let doc = "Dataset seed (the paper-equivalent corpus is deterministic in it)." in
  Arg.(value & opt int 2022 & info [ "seed" ] ~doc)

let scale =
  let doc = "Corpus scale factor: 1.0 reproduces the paper's suite sizes. Must be positive." in
  Arg.(value & opt float 0.25 & info [ "scale" ] ~doc)

let progress =
  let doc = "Print a live done/total progress line (with EWMA-smoothed rate and ETA) to stderr." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let jobs =
  let doc =
    "Worker domains for the evaluation (default: the hardware's recommended \
     domain count).  Results are byte-identical to --jobs 1.  Must be positive."
  in
  Arg.(value & opt int (Domain.recommended_domain_count ()) & info [ "j"; "jobs" ] ~doc)

let no_timing =
  let doc =
    "Skip the wall-clock measurements behind Table III's Time(ms) columns \
     (they become 0.000), making the output fully deterministic in --seed. \
     Also zeroes the time fields of the --stats report and of --profile-out rows."
  in
  Arg.(value & flag & info [ "no-timing" ] ~doc)

let stats =
  let doc =
    "Enable the telemetry registry and print a phase-time breakdown (spans, \
     counters, per-worker throughput, GC) after the tables."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let trace_out =
  let doc =
    "Write a JSON-lines trace (one object per completed span, plus per-phase \
     and counter summaries) to $(docv).  Implies telemetry recording (and the \
     flight recorder, for instant failure markers in chrome format)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_format =
  let doc =
    "Trace file format for --trace-out: $(b,jsonl) (one object per span, the \
     default) or $(b,chrome) (Chrome trace-event JSON array, openable in \
     chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (enum [ ("jsonl", "jsonl"); ("chrome", "chrome") ]) "jsonl"
       & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let max_seconds =
  let doc =
    "Per-binary wall-clock budget in seconds.  A binary that exceeds it is \
     quarantined (its partial results are discarded) and the run continues. \
     Must be positive."
  in
  Arg.(value & opt (some float) None & info [ "max-seconds" ] ~docv:"SECONDS" ~doc)

let quarantine_out =
  let doc =
    "Write quarantined binaries as JSON lines (suite, program, config, \
     attempts, error, backtrace, and the worker's flight-recorder black box) \
     to $(docv).  The file is opened before the run, so an unwritable path \
     fails fast with exit code 2.  Implies the flight recorder."
  in
  Arg.(value & opt (some string) None & info [ "quarantine-out" ] ~docv:"FILE" ~doc)

let fail_fast =
  let doc =
    "Abort on the first failing binary, re-raising its exception (the default \
     --keep-going quarantines failures and continues)."
  in
  let keep_doc = "Quarantine failing binaries and continue (the default)." in
  Arg.(
    value
    & vflag false
        [ (true, info [ "fail-fast" ] ~doc); (false, info [ "keep-going" ] ~doc:keep_doc) ])

let inject_fault =
  let doc =
    "Testing hook: deterministically fail every binary whose identity hash is \
     divisible by $(docv), exercising the quarantine path.  Must be positive."
  in
  Arg.(value & opt (some int) None & info [ "inject-fault" ] ~docv:"N" ~doc)

let triage =
  let doc =
    "Error forensics: rerun the full FunSeeker configuration with decision \
     provenance and append a root-cause triage table (false positives and \
     false negatives bucketed per compilation configuration) to the output."
  in
  Arg.(value & flag & info [ "triage" ] ~doc)

let triage_out =
  let doc =
    "Write the triage buckets as JSON lines (config, bucket, count) to \
     $(docv).  Implies --triage.  The file is opened before the run, so an \
     unwritable path fails fast with exit code 2."
  in
  Arg.(value & opt (some string) None & info [ "triage-out" ] ~docv:"FILE" ~doc)

let profile_out =
  let doc =
    "Write one JSON line per evaluated binary (identity, phase time split, \
     instructions decoded, resync errors, diag count, retry/quarantine \
     status) to $(docv).  Rows are in plan order; with --no-timing the file \
     is byte-identical across --jobs.  The file is opened before the run, so \
     an unwritable path fails fast with exit code 2."
  in
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let top_slow =
  let doc =
    "Append a table of the $(docv) slowest binaries (by total evaluation \
     time) to the output.  Implies per-binary profiling.  Must be \
     non-negative; 0 (the default) disables the table."
  in
  Arg.(value & opt int 0 & info [ "top-slow" ] ~docv:"K" ~doc)

let slo =
  let doc =
    "Check a latency objective at the end of the run, e.g. \
     $(b,funseeker:p99<=50ms) or $(b,binary/gcc-x64-O2-cet:max<=1s).  The \
     statistic is $(b,pNN) or $(b,max) over per-binary tool latencies; a \
     bare tool name aggregates every configuration, $(b,tool/config) matches \
     one.  Repeatable.  Any breached (or unmatched) objective makes the run \
     exit 3."
  in
  Arg.(value & opt_all string [] & info [ "slo" ] ~docv:"OBJECTIVE" ~doc)

let metrics_out =
  let doc =
    "Write a Prometheus/OpenMetrics text exposition of every telemetry \
     counter, gauge and phase histogram to $(docv).  Implies telemetry \
     recording.  The file is opened before the run, so an unwritable path \
     fails fast with exit code 2."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let manifest_out =
  let doc =
    "Write a versioned run manifest (JSON lines: one run header with options, \
     corpus scale, scheduler knobs and a content digest of the whole run, \
     then one row per binary with the MD5 of its bytes and its analysis \
     verdict, plus pointers to the other report artifacts) to $(docv).  The \
     manifest is what $(b,cetstat) joins runs by.  Implies per-binary \
     profiling.  The file is opened before the run, so an unwritable path \
     fails fast with exit code 2."
  in
  Arg.(value & opt (some string) None & info [ "manifest-out" ] ~docv:"FILE" ~doc)

let chaos =
  let doc =
    "Chaos soak: inject seeded scheduler-level faults (worker stalls, \
     per-binary delays, transient dispatch faults retried by the scheduler). \
     Chaos changes timing and scheduling but never results \xe2\x80\x94 the tables are \
     byte-identical to a fault-free run whatever the seed."
  in
  Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"SEED" ~doc)

let run_seconds =
  let doc =
    "Run-wide wall-clock budget in seconds, armed around every worker's whole \
     loop.  As the budget runs down, binaries are shed to the cheaper \
     anchored-only analysis (profile status $(b,shed)); once it expires, \
     remaining binaries are quarantined.  Distinct from --max-seconds, which \
     bounds a single binary.  Must be positive."
  in
  Arg.(value & opt (some float) None & info [ "run-seconds" ] ~docv:"SECONDS" ~doc)

let cmd =
  let doc = "regenerate the FunSeeker paper's tables and figures" in
  Cmd.v
    (Cmd.info "evaluate" ~doc ~exits:
       [
         Cmd.Exit.info 0 ~doc:"on success.";
         Cmd.Exit.info 1 ~doc:"when binaries were quarantined.";
         Cmd.Exit.info 2 ~doc:"on usage errors (bad flags, unknown experiment).";
         Cmd.Exit.info 3 ~doc:"when an --slo objective was breached.";
       ])
    Term.(
      const run_eval $ what $ seed $ scale $ progress $ jobs $ no_timing $ stats
      $ trace_out $ trace_format $ max_seconds $ quarantine_out $ fail_fast
      $ inject_fault $ triage $ triage_out $ profile_out $ top_slow $ slo
      $ metrics_out $ manifest_out $ chaos $ run_seconds)

let () = exit (Cmd.eval' cmd)
