(* inspect — dump the analysis-relevant structure of an ELF binary:
   sections, symbols, PLT map, FDEs, LSDAs, and a .text disassembly
   summary.  With --explain ADDR, print FunSeeker's decision-provenance
   evidence chain for one address instead, cross-referenced against the
   symbol-table ground truth when the binary is unstripped. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let explain_addr reader addr =
  let st = Cet_disasm.Substrate.create reader in
  let _r, prov = Core.Funseeker.analyze_prov st in
  print_string (Core.Provenance.explain prov addr);
  (* Ground-truth cross-reference: is the address actually a function
     entry?  Only answerable on unstripped binaries. *)
  let truth = Cet_eval.Ground_truth.from_symbols reader in
  if truth = [] then
    print_endline "  ground truth               : unavailable (binary is stripped)"
  else if List.mem addr (Cet_eval.Ground_truth.addresses truth) then
    print_endline "  ground truth               : function entry (in .symtab)"
  else print_endline "  ground truth               : NOT a function entry per .symtab"

let run file disasm explain =
  let reader = Cet_elf.Reader.read (read_file file) in
  match explain with
  | Some s ->
    (match int_of_string_opt s with
    | Some addr when addr >= 0 -> explain_addr reader addr
    | _ ->
      Printf.eprintf "inspect: --explain expects an address (hex 0x... or decimal), got %S\n" s;
      exit 2)
  | None ->
  let arch = Cet_elf.Reader.arch reader in
  Printf.printf "arch: %s  type: %s  entry: 0x%x  cet: %b\n"
    (Cet_x86.Arch.to_string arch)
    (if Cet_elf.Reader.pie reader then "DYN (PIE)" else "EXEC")
    (Cet_elf.Reader.entry reader)
    (Cet_elf.Reader.cet_enabled reader);
  print_endline "sections:";
  List.iter
    (fun (s : Cet_elf.Reader.section) ->
      Printf.printf "  %-20s vaddr=0x%-8x size=%d\n" s.name s.vaddr s.size)
    (Cet_elf.Reader.sections reader);
  let syms = Cet_elf.Reader.symbols reader in
  Printf.printf "symbols: %d\n" (List.length syms);
  List.iter
    (fun (s : Cet_elf.Symbol.t) ->
      if s.kind = Cet_elf.Symbol.Func then
        Printf.printf "  0x%-8x %5d %s\n" s.value s.size s.name)
    syms;
  let relocs = Cet_elf.Reader.plt_relocs reader in
  Printf.printf "plt imports: %d\n" (List.length relocs);
  List.iter (fun (slot, name) -> Printf.printf "  got slot 0x%x -> %s\n" slot name) relocs;
  (match Cet_elf.Reader.find_section reader ".eh_frame" with
  | Some s ->
    let frames = Cet_eh.Eh_frame.decode ~vaddr:s.vaddr s.data in
    Printf.printf "fdes: %d\n" (List.length frames);
    List.iter
      (fun (f : Cet_eh.Eh_frame.frame) ->
        Printf.printf "  pc=0x%x..0x%x%s\n" f.pc_begin (f.pc_begin + f.pc_range)
          (match f.lsda with None -> "" | Some l -> Printf.sprintf " lsda=0x%x" l))
      frames
  | None -> print_endline "no .eh_frame");
  if disasm then begin
    match Cet_elf.Reader.find_section reader ".text" with
    | None -> print_endline "no .text"
    | Some s ->
      let listing = Cet_x86.Exact.disassemble_all arch s.data ~base:s.vaddr in
      Printf.printf ".text disassembly (%d instructions):\n" (List.length listing);
      List.iter (fun (addr, text) -> Printf.printf "  0x%-8x %s\n" addr text) listing
  end

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let disasm = Arg.(value & flag & info [ "disasm" ] ~doc:"Dump the instruction stream.")

let explain =
  let doc =
    "Print FunSeeker's evidence chain for $(docv) (hex 0x... or decimal) \
     with a .symtab ground-truth cross-reference, instead of the dump."
  in
  Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"ADDR" ~doc)

let cmd =
  let doc = "dump ELF / exception-handling structure" in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ file $ disasm $ explain)

let () = exit (Cmd.eval cmd)
