(* Cross-run observability analyzer over `evaluate --manifest-out` run
   manifests and the artifacts they point at.

     cetstat report MANIFEST        one run: identity, phase latency,
                                    scheduler health
     cetstat diff OLD NEW           two runs joined by content digest:
                                    verdict changes + timing deltas
     cetstat anomalies MANIFEST     robust median/MAD outliers over the
                                    run's profile rows

   All analysis lives in Cet_obs; this file is argv, artifact-path
   resolution, and printing.  `diff` output never mentions input paths or
   scheduler knobs, so two runs over the same corpus diff byte-identically
   whatever --jobs/--chaos produced them — `make check` cmp-verifies that.

   Exit status: 0 clean, 1 diff found differences, 2 usage or I/O. *)

open Cmdliner
module M = Cet_obs.Manifest
module P = Cet_obs.Profiles
module T = Cet_obs.Trace
module A = Cet_obs.Analyze

let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "cetstat: %s\n" s; exit 2) fmt

let load_manifest path =
  match M.load path with Ok m -> m | Error e -> fail "%s" e

(* Artifact pointers are recorded as the user typed them to evaluate.
   Try the pointer as-is (absolute, or relative to the cwd), then
   relative to the manifest's own directory — the usual case after the
   artifacts moved as a bundle. *)
let resolve_artifact ~manifest_path = function
  | None -> None
  | Some p ->
    if Sys.file_exists p then Some p
    else
      let rel = Filename.concat (Filename.dirname manifest_path) p in
      if Sys.file_exists rel then Some rel else None

let load_profiles_opt ~manifest_path ~override (m : M.t) =
  let path =
    match override with
    | Some _ -> override
    | None -> resolve_artifact ~manifest_path m.M.r_artifacts.M.a_profile
  in
  match path with
  | None -> None
  | Some p -> (
    match P.load p with Ok rows -> Some rows | Error e -> fail "%s" e)

let load_trace_opt ~manifest_path ~override (m : M.t) =
  let path =
    match override with
    | Some _ -> override
    | None -> resolve_artifact ~manifest_path m.M.r_artifacts.M.a_trace
  in
  match path with
  | None -> None
  | Some p -> (match T.load p with Ok t -> Some t | Error e -> fail "%s" e)

(* ---- report ------------------------------------------------------- *)

let run_report manifest_path profile_override trace_override =
  let m = load_manifest manifest_path in
  Printf.printf "RUN %s\n" m.M.r_digest;
  Printf.printf "  experiment %s  seed %d  scale %g  timing %s\n" m.M.r_experiment
    m.M.r_seed m.M.r_scale
    (if m.M.r_timing then "on" else "off");
  Printf.printf "  scheduler: %d jobs%s\n" m.M.r_jobs
    (match m.M.r_chaos with
    | Some s -> Printf.sprintf ", chaos seed %d" s
    | None -> "");
  Printf.printf "  %d binaries, %d functions, %d quarantined\n" m.M.r_binaries
    m.M.r_functions m.M.r_quarantined;
  (match load_profiles_opt ~manifest_path ~override:profile_override m with
  | Some rows ->
    print_newline ();
    print_string (A.render_phase_stats (A.phase_stats rows))
  | None -> ());
  (match load_trace_opt ~manifest_path ~override:trace_override m with
  | Some t ->
    print_newline ();
    print_string (A.render_health (A.health_of_trace t))
  | None -> ());
  0

(* ---- diff --------------------------------------------------------- *)

let run_diff old_path new_path threshold old_profile new_profile =
  let old_run = load_manifest old_path and new_run = load_manifest new_path in
  let old_profiles =
    Option.value ~default:[]
      (load_profiles_opt ~manifest_path:old_path ~override:old_profile old_run)
  and new_profiles =
    Option.value ~default:[]
      (load_profiles_opt ~manifest_path:new_path ~override:new_profile new_run)
  in
  let d = A.diff ~threshold ~old_run ~new_run ~old_profiles ~new_profiles () in
  print_string (A.render_diff d);
  if A.clean d then 0 else 1

(* ---- anomalies ---------------------------------------------------- *)

let run_anomalies manifest_path z_cut profile_override =
  let m = load_manifest manifest_path in
  match load_profiles_opt ~manifest_path ~override:profile_override m with
  | None ->
    fail "%s: no profile artifact recorded and no --profile given" manifest_path
  | Some rows ->
    print_string (A.render_anomalies (A.anomalies ~z_cut rows));
    0

(* ---- argv --------------------------------------------------------- *)

let manifest_pos ~docv n =
  Arg.(required & pos n (some string) None & info [] ~docv ~doc:"Run manifest (JSONL).")

let profile_flag =
  let doc = "Profile JSONL to analyze (overrides the manifest's artifact pointer)." in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let report_cmd =
  let trace_flag =
    let doc = "Trace file to analyze (overrides the manifest's artifact pointer)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Summarize one run: identity, phase latency, scheduler health.")
    Term.(const run_report $ manifest_pos ~docv:"MANIFEST" 0 $ profile_flag $ trace_flag)

let diff_cmd =
  let threshold =
    let doc = "Flag timing changes beyond this percentage." in
    Arg.(value & opt float 20.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let old_profile =
    Arg.(value & opt (some string) None
         & info [ "old-profile" ] ~docv:"FILE" ~doc:"Old run's profile JSONL.")
  and new_profile =
    Arg.(value & opt (some string) None
         & info [ "new-profile" ] ~docv:"FILE" ~doc:"New run's profile JSONL.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Join two runs by content digest and compare verdicts and timing."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"when the runs agree (clean).";
           Cmd.Exit.info 1 ~doc:"when verdicts changed, rows appeared/vanished, or timing regressed.";
           Cmd.Exit.info 2 ~doc:"on usage or I/O errors.";
         ])
    Term.(
      const run_diff $ manifest_pos ~docv:"OLD" 0 $ manifest_pos ~docv:"NEW" 1
      $ threshold $ old_profile $ new_profile)

let anomalies_cmd =
  let z_cut =
    let doc = "Robust z-score cut; rows at or beyond it are anomalies." in
    Arg.(value & opt float 3.5 & info [ "z" ] ~docv:"Z" ~doc)
  in
  Cmd.v
    (Cmd.info "anomalies"
       ~doc:"Median/MAD outliers over per-binary wall time and phase shares.")
    Term.(const run_anomalies $ manifest_pos ~docv:"MANIFEST" 0 $ z_cut $ profile_flag)

let cmd =
  Cmd.group
    (Cmd.info "cetstat" ~doc:"Cross-run observability for evaluate run manifests.")
    [ report_cmd; diff_cmd; anomalies_cmd ]

let () = exit (Cmd.eval' cmd)
