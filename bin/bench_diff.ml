(* Compare two BENCH_<n>.json files from the benchmark harness and flag
   regressions: any test present in both files whose mean time grew by more
   than the threshold (default 20%) fails the diff, and the exit status
   says so — `make bench-diff` is the perf gate between PRs.

   With --require-all (on in `make bench-diff`) a test present in OLD but
   missing from NEW also fails: a renamed or dropped benchmark must not
   silently vanish from the gate.

   Parsing and diffing live in Cet_util.Bench_rows so the key-matching
   rules are unit-tested; this file is argv + I/O + rendering. *)

module B = Cet_util.Bench_rows

let read_lines path =
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "bench-diff: cannot open %s: %s\n" path e;
      exit 2
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let parse_file path =
  let rows, dups = B.parse_lines (read_lines path) in
  List.iter
    (fun name -> Printf.eprintf "bench-diff: %s: duplicate test %S ignored\n" path name)
    dups;
  rows

(* A file that exists but yields no benchmark rows is malformed (or the
   wrong file entirely); treating it as an empty benchmark set would
   silently blank a column of the trajectory — or worse, pass a diff. *)
let parse_file_strict path =
  match parse_file path with
  | [] ->
    Printf.eprintf
      "bench-diff: %s: no benchmark rows (malformed or non-bench JSON)\n" path;
    exit 2
  | rows -> rows

(* --history BENCH_2.json..BENCH_6.json: the per-row trajectory across every
   recorded bench file in the range, with a last/first ratio — the long view
   the pairwise gate cannot give.  Informational: always exits 0 once the
   range parses and at least two files exist. *)
let run_history spec =
  let all_files =
    match B.expand_range ~exists:(fun _ -> true) spec with
    | Some files -> files
    | None ->
      Printf.eprintf
        "bench-diff: --history expects a range like BENCH_2.json..BENCH_6.json \
         (same name around the version number)\n";
      exit 2
  in
  (* The endpoints name the range: a missing endpoint is a typo, not a
     skippable gap like a PR that recorded no bench file. *)
  (match all_files with
  | first :: _ :: _ ->
    List.iter
      (fun endpoint ->
        if not (Sys.file_exists endpoint) then begin
          Printf.eprintf "bench-diff: --history endpoint %s does not exist\n"
            endpoint;
          exit 2
        end)
      [ first; List.nth all_files (List.length all_files - 1) ]
  | _ -> ());
  let files = List.filter Sys.file_exists all_files in
  if List.length files < 2 then begin
    Printf.eprintf
      "bench-diff: --history %s: fewer than two of the range's files exist\n"
      spec;
    exit 2
  end;
  let tables = List.map parse_file_strict files in
  let rows = B.history tables in
  let labels =
    List.map
      (fun f ->
        match B.split_version f with Some (_, v, _) -> string_of_int v | None -> f)
      files
  in
  Printf.printf "bench-history: %s (%d files)\n" spec (List.length files);
  Printf.printf "  %-42s" "test (mean ms per file)";
  List.iter (fun l -> Printf.printf " %9s" l) labels;
  Printf.printf "  %9s\n" "last/first";
  List.iter
    (fun (h : B.history_row) ->
      Printf.printf "  %-42s" h.B.h_name;
      Array.iter
        (function
          | Some ns -> Printf.printf " %9.3f" (ns /. 1e6)
          | None -> Printf.printf " %9s" "-")
        h.B.h_means;
      let present = List.filter_map Fun.id (Array.to_list h.B.h_means) in
      (match present with
      | first :: (_ :: _ as rest) when first > 0.0 ->
        let last = List.nth rest (List.length rest - 1) in
        Printf.printf "  %8.2fx" (last /. first)
      | _ -> Printf.printf "  %9s" "-");
      print_newline ())
    rows;
  (* The per-hop view: a geomean over every shared row compresses one
     version step into one number the per-row table cannot give. *)
  let rec hops = function
    | (la, ta) :: ((lb, tb) :: _ as rest) ->
      (match B.geomean_ratio ta tb with
      | Some (g, n) ->
        Printf.printf "  hop %s -> %s: geomean %.3fx over %d shared tests\n" la lb
          g n
      | None -> Printf.printf "  hop %s -> %s: no shared tests\n" la lb);
      hops rest
    | _ -> ()
  in
  hops (List.combine labels tables);
  Printf.printf "tracked %d tests across %d files\n" (List.length rows)
    (List.length files)

let () =
  let threshold = ref 20.0 in
  let require_all = ref false in
  let history = ref "" in
  let files = ref [] in
  let speclist =
    [
      ( "--threshold",
        Arg.Set_float threshold,
        "PCT  regression threshold in percent (default 20)" );
      ( "--require-all",
        Arg.Set require_all,
        " fail when a test present in OLD is missing from NEW" );
      ( "--history",
        Arg.Set_string history,
        "RANGE  render the per-row trajectory across a FIRST.json..LAST.json \
         range instead of a pairwise diff" );
    ]
  in
  Arg.parse speclist
    (fun a -> files := a :: !files)
    "bench_diff [--threshold PCT] [--require-all] OLD.json NEW.json\n\
    \       bench_diff --history FIRST.json..LAST.json";
  if !history <> "" then begin
    run_history !history;
    exit 0
  end;
  let old_path, new_path =
    match List.rev !files with
    | [ o; n ] -> (o, n)
    | _ ->
      Printf.eprintf "bench-diff: expected exactly two files (old new)\n";
      exit 2
  in
  let old_rows = parse_file old_path and new_rows = parse_file new_path in
  let report = B.diff ~threshold:!threshold old_rows new_rows in
  Printf.printf "bench-diff: %s -> %s (threshold %.0f%%)\n" old_path new_path
    !threshold;
  List.iter
    (fun (c : B.comparison) ->
      let mark =
        if c.B.c_pct > !threshold then "REGRESSION"
        else if c.B.c_pct < -.(!threshold) then "improved"
        else ""
      in
      Printf.printf "  %-42s %10.3f ms -> %10.3f ms  %+7.1f%%  %s\n" c.B.c_name
        (c.B.c_old_ns /. 1e6) (c.B.c_new_ns /. 1e6) c.B.c_pct mark)
    report.B.compared;
  List.iter
    (fun name ->
      Printf.printf "  %-42s %s\n" name
        (if !require_all then "MISSING from new file" else "(only in old file)"))
    report.B.missing;
  Printf.printf
    "compared %d tests: %d regressed beyond %.0f%%, %d improved beyond it (%d only in %s, %d only in %s)\n"
    (List.length report.B.compared)
    report.B.regressed !threshold report.B.improved
    (List.length report.B.missing)
    old_path
    (List.length report.B.added)
    new_path;
  if report.B.regressed > 0 then exit 1;
  if !require_all && report.B.missing <> [] then begin
    Printf.eprintf "bench-diff: %d test(s) missing from %s (--require-all)\n"
      (List.length report.B.missing)
      new_path;
    exit 1
  end
