(* Compare two BENCH_<n>.json files from the benchmark harness and flag
   regressions: any test present in both files whose mean time grew by more
   than the threshold (default 20%) fails the diff, and the exit status
   says so — `make bench-diff` is the perf gate between PRs.

   The parser reads exactly the format bench/main.ml's write_json emits
   (one {"name", "mean_ns", "runs"} object per line); it is deliberately
   not a JSON library.  Duplicate names (an artifact of older files where
   the parallel-harness bench could emit two jobs=1 rows) keep their first
   occurrence, with a warning. *)

type row = { name : string; mean_ns : float }

let find_sub s sub =
  let nl = String.length s and sl = String.length sub in
  let rec go i = if i + sl > nl then None else if String.sub s i sl = sub then Some i else go (i + 1) in
  go 0

(* The value of a "key": field on this line, up to the next comma/brace. *)
let field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let start = i + String.length key + 3 in
    let rec skip j = if j < String.length line && line.[j] = ' ' then skip (j + 1) else j in
    let start = skip start in
    let stop = ref start in
    while
      !stop < String.length line
      && (match line.[!stop] with ',' | '}' | '\n' -> false | _ -> true)
    do
      incr stop
    done;
    Some (String.trim (String.sub line start (!stop - start)))

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2) else s

let parse_file path =
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "bench-diff: cannot open %s: %s\n" path e;
      exit 2
  in
  let rows = ref [] in
  let seen = Hashtbl.create 64 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          match (field line "name", field line "mean_ns") with
          | Some name, Some ns -> (
            let name = unquote name in
            match float_of_string_opt ns with
            | None -> ()
            | Some mean_ns ->
              if Hashtbl.mem seen name then
                Printf.eprintf "bench-diff: %s: duplicate test %S ignored\n" path name
              else begin
                Hashtbl.replace seen name ();
                rows := { name; mean_ns } :: !rows
              end)
          | _ -> ()
        done
      with End_of_file -> ());
  List.rev !rows

let () =
  let threshold = ref 20.0 in
  let files = ref [] in
  let speclist =
    [
      ( "--threshold",
        Arg.Set_float threshold,
        "PCT  regression threshold in percent (default 20)" );
    ]
  in
  Arg.parse speclist
    (fun a -> files := a :: !files)
    "bench_diff [--threshold PCT] OLD.json NEW.json";
  let old_path, new_path =
    match List.rev !files with
    | [ o; n ] -> (o, n)
    | _ ->
      Printf.eprintf "bench-diff: expected exactly two files (old new)\n";
      exit 2
  in
  let old_rows = parse_file old_path and new_rows = parse_file new_path in
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace old_tbl r.name r.mean_ns) old_rows;
  let regressions = ref 0 and improved = ref 0 and compared = ref 0 in
  Printf.printf "bench-diff: %s -> %s (threshold %.0f%%)\n" old_path new_path !threshold;
  List.iter
    (fun r ->
      match Hashtbl.find_opt old_tbl r.name with
      | None -> ()
      | Some old_ns when old_ns > 0.0 && r.mean_ns > 0.0 ->
        incr compared;
        let pct = (r.mean_ns -. old_ns) /. old_ns *. 100.0 in
        let mark =
          if pct > !threshold then begin
            incr regressions;
            "REGRESSION"
          end
          else if pct < -.(!threshold) then begin
            incr improved;
            "improved"
          end
          else ""
        in
        Printf.printf "  %-42s %10.3f ms -> %10.3f ms  %+7.1f%%  %s\n" r.name
          (old_ns /. 1e6) (r.mean_ns /. 1e6) pct mark
      | Some _ -> ())
    new_rows;
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace new_tbl r.name ()) new_rows;
  let only rows other = List.length (List.filter (fun r -> not (Hashtbl.mem other r.name)) rows) in
  Printf.printf
    "compared %d tests: %d regressed beyond %.0f%%, %d improved beyond it (%d only in %s, %d only in %s)\n"
    !compared !regressions !threshold !improved (only old_rows new_tbl) old_path
    (only new_rows old_tbl) new_path;
  if !regressions > 0 then exit 1
