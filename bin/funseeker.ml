(* funseeker — identify function entries in a CET-enabled ELF binary.

   Usage: funseeker [--config 1|2|3|4] [--stats] [--truth] [--explain ADDR] FILE *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_addr s =
  match int_of_string_opt s with
  | Some a when a >= 0 -> a
  | _ ->
    Printf.eprintf "funseeker: --explain expects an address (hex 0x... or decimal), got %S\n" s;
    exit 2

let run file config_no anchored stats with_truth explain =
  (* --stats doubles as the telemetry switch: phase spans recorded during
     the analysis are reported to stderr at the end. *)
  if stats then Cet_telemetry.Registry.enable ();
  let bytes = read_file file in
  let reader = Cet_elf.Reader.read bytes in
  let explain = Option.map parse_addr explain in
  if Cet_elf.Reader.machine reader = Cet_elf.Consts.em_aarch64 then begin
    if explain <> None then begin
      Printf.eprintf "funseeker: --explain is x86/CET-only (decision provenance is not \
ported to the BTI seeker)\n";
      exit 2
    end;
    (* BTI-enabled AArch64 binary: route to the ported seeker (SSVI). *)
    let r = Cet_arm64.Bti_seeker.analyze reader in
    List.iter (fun addr -> Printf.printf "0x%x\n" addr) r.Cet_arm64.Bti_seeker.functions;
    if stats then begin
      Printf.eprintf "aarch64/BTI mode\n";
      Printf.eprintf "functions: %d\n" (List.length r.functions);
      Printf.eprintf "bti c markers: %d, bti j markers: %d\n" r.bti_c_total r.bti_j_total;
      Printf.eprintf "direct call targets: %d (tail calls kept: %d)\n" r.call_target_count
        r.tail_calls_selected;
      prerr_string (Cet_telemetry.Report.render ~timing:true ())
    end;
    exit 0
  end;
  if not (Cet_elf.Reader.cet_enabled reader) then
    prerr_endline "warning: binary does not advertise IBT in .note.gnu.property";
  let config =
    match config_no with
    | 1 -> Core.Funseeker.config1
    | 2 -> Core.Funseeker.config2
    | 3 -> Core.Funseeker.config3
    | _ -> Core.Funseeker.config4
  in
  match explain with
  | Some addr ->
    (* Evidence chain for one address: rerun the requested configuration
       with decision provenance and print why the address was (not)
       identified. *)
    let st = Cet_disasm.Substrate.create reader in
    let _r, prov = Core.Funseeker.analyze_prov ~config ~anchored st in
    print_string (Core.Provenance.explain prov addr)
  | None ->
  let r = Core.Funseeker.analyze ~config ~anchored reader in
  List.iter (fun addr -> Printf.printf "0x%x\n" addr) r.Core.Funseeker.functions;
  if stats then begin
    Printf.eprintf "functions: %d\n" (List.length r.functions);
    Printf.eprintf "endbr instructions: %d\n" r.endbr_total;
    Printf.eprintf "  filtered (indirect-return sites): %d\n" r.filtered_indirect_return;
    Printf.eprintf "  filtered (landing pads): %d\n" r.filtered_landing_pads;
    Printf.eprintf "direct call targets: %d\n" r.call_target_count;
    Printf.eprintf "direct jump targets: %d (tail calls kept: %d)\n" r.jump_target_count
      r.tail_calls_selected;
    Printf.eprintf "linear-sweep resyncs: %d\n" r.resync_errors;
    prerr_string (Cet_telemetry.Report.render ~timing:true ())
  end;
  if with_truth then begin
    let truth = Cet_eval.Ground_truth.from_symbols reader in
    if truth = [] then prerr_endline "no ground truth: binary is stripped"
    else begin
      let addrs = Cet_eval.Ground_truth.addresses truth in
      let c = Cet_eval.Metrics.compare_sets ~truth:addrs ~found:r.functions in
      Printf.eprintf "vs symbols: precision %.3f%%, recall %.3f%% (tp=%d fp=%d fn=%d)\n"
        (Cet_eval.Metrics.precision c) (Cet_eval.Metrics.recall c) c.tp c.fp c.fn
    end
  end

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let config_no =
  let doc = "Ablation configuration (1-4, Table II); 4 is full FunSeeker." in
  Arg.(value & opt int 4 & info [ "config" ] ~doc)

let anchored =
  let doc = "Use the end-branch-anchored sweep (robust to inline data, SSVI)." in
  Arg.(value & flag & info [ "anchored" ] ~doc)

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print analysis statistics to stderr.")

let with_truth =
  Arg.(value & flag & info [ "truth" ] ~doc:"Compare against .symtab ground truth.")

let explain =
  let doc =
    "Print the decision-provenance evidence chain for $(docv) (hex 0x... or \
     decimal) instead of the entry list: candidate sources, FILTERENDBR \
     decision with its reason, SELECTTAILCALL votes, final verdict."
  in
  Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"ADDR" ~doc)

let cmd =
  let doc = "FunSeeker: function identification for CET-enabled binaries" in
  Cmd.v (Cmd.info "funseeker" ~doc) Term.(const run $ file $ config_no $ anchored $ stats $ with_truth $ explain)

let () = exit (Cmd.eval cmd)
