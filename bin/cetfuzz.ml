(* cetfuzz — deterministic ELF mutation fuzzing of the robust analysis path.

   Usage:
     cetfuzz --seed 2022 --count 2000 --max-seconds 2
   Exit codes: 0 when every mutant was handled cleanly, 1 when any analysis
   crashed, 2 on usage errors. *)

open Cmdliner
module Journal = Cet_telemetry.Journal

let run_fuzz seed count max_seconds journal =
  if count <= 0 then begin
    Printf.eprintf "cetfuzz: --count must be positive (got %d)\n" count;
    exit 2
  end;
  if max_seconds <= 0.0 then begin
    Printf.eprintf "cetfuzz: --max-seconds must be positive (got %g)\n" max_seconds;
    exit 2
  end;
  (* The flight recorder gives each crash report a black box: per-mutant
     markers from the engine plus diag/deadline activity bridged from the
     layers below. *)
  if journal then begin
    Journal.enable ();
    Cet_util.Deadline.set_observer
      (Some
         (fun what slack_ns ->
           if Journal.enabled () then
             Journal.record ~v:slack_ns Journal.Deadline_slack what));
    Cet_util.Diag.Collector.set_observer
      (Some
         (fun d ->
           if Journal.enabled () then
             Journal.record Journal.Diag
               (d.Cet_util.Diag.domain ^ "/" ^ d.Cet_util.Diag.code)))
  end;
  let s = Cet_fuzz.Engine.run ~max_seconds ~seed ~count () in
  print_string (Cet_fuzz.Engine.render s);
  if s.Cet_fuzz.Engine.crashes <> [] then 1 else 0

let seed =
  let doc = "Fuzzing seed: the mutant stream (and the summary) is deterministic in it." in
  Arg.(value & opt int 2022 & info [ "seed" ] ~doc)

let count =
  let doc = "Number of mutants to generate and analyze.  Must be positive." in
  Arg.(value & opt int 2000 & info [ "count" ] ~doc)

let max_seconds =
  let doc = "Per-mutant analysis deadline in seconds (the no-hang bound).  Must be positive." in
  Arg.(value & opt float 2.0 & info [ "max-seconds" ] ~doc)

let journal =
  let doc =
    "Enable the telemetry flight recorder: every crash report ships the \
     worker's last journal events (per-mutant markers, diagnostics, deadline \
     slack) as its black box."
  in
  Arg.(value & flag & info [ "journal" ] ~doc)

let cmd =
  let doc = "mutation-fuzz the robust FunSeeker analysis pipeline" in
  Cmd.v
    (Cmd.info "cetfuzz" ~doc ~exits:
       [
         Cmd.Exit.info 0 ~doc:"when every mutant was handled without an escaped exception.";
         Cmd.Exit.info 1 ~doc:"when any mutant crashed the analysis.";
         Cmd.Exit.info 2 ~doc:"on usage errors.";
       ])
    Term.(const run_fuzz $ seed $ count $ max_seconds $ journal)

let () = exit (Cmd.eval' cmd)
