(* cetfuzz — deterministic ELF mutation fuzzing of the robust analysis path.

   Usage:
     cetfuzz --seed 2022 --count 2000 --max-seconds 2
     cetfuzz --jobs 4 --chaos 7 --crash-out crashes.jsonl
   Exit codes: 0 when every mutant was handled cleanly, 1 when any analysis
   crashed, 2 on usage errors. *)

open Cmdliner
module Journal = Cet_telemetry.Journal

let run_fuzz seed count max_seconds journal jobs chaos crash_out =
  if count <= 0 then begin
    Printf.eprintf "cetfuzz: --count must be positive (got %d)\n" count;
    exit 2
  end;
  if max_seconds <= 0.0 then begin
    Printf.eprintf "cetfuzz: --max-seconds must be positive (got %g)\n" max_seconds;
    exit 2
  end;
  (match jobs with
  | Some j when j <= 0 ->
    Printf.eprintf "cetfuzz: --jobs must be a positive worker count (got %d)\n" j;
    exit 2
  | _ -> ());
  (* An unwritable crash report is a usage error before the soak, not a
     surprise after it. *)
  let crash_oc =
    match crash_out with
    | None -> None
    | Some path -> (
      try Some (path, open_out path)
      with Sys_error msg ->
        Printf.eprintf "cetfuzz: cannot open --crash-out file: %s\n" msg;
        exit 2)
  in
  (* The flight recorder gives each crash report a black box: per-mutant
     markers from the engine plus diag/deadline activity bridged from the
     layers below. *)
  if journal || crash_oc <> None then begin
    Journal.enable ();
    Cet_util.Deadline.set_observer
      (Some
         (fun what slack_ns ->
           if Journal.enabled () then
             Journal.record ~v:slack_ns Journal.Deadline_slack what));
    Cet_util.Diag.Collector.set_observer
      (Some
         (fun d ->
           if Journal.enabled () then
             Journal.record Journal.Diag
               (d.Cet_util.Diag.domain ^ "/" ^ d.Cet_util.Diag.code)))
  end;
  let s = Cet_fuzz.Engine.run ~max_seconds ?jobs ?chaos ~seed ~count () in
  print_string (Cet_fuzz.Engine.render s);
  (match crash_oc with
  | None -> ()
  | Some (path, oc) ->
    Cet_fuzz.Engine.write_crashes oc s;
    close_out oc;
    Printf.eprintf "crash report written to %s (%d entries)\n" path
      (List.length s.Cet_fuzz.Engine.crashes));
  if s.Cet_fuzz.Engine.crashes <> [] then 1 else 0

let seed =
  let doc = "Fuzzing seed: the mutant stream (and the summary) is deterministic in it." in
  Arg.(value & opt int 2022 & info [ "seed" ] ~doc)

let count =
  let doc = "Number of mutants to generate and analyze.  Must be positive." in
  Arg.(value & opt int 2000 & info [ "count" ] ~doc)

let max_seconds =
  let doc = "Per-mutant analysis deadline in seconds (the no-hang bound).  Must be positive." in
  Arg.(value & opt float 2.0 & info [ "max-seconds" ] ~doc)

let journal =
  let doc =
    "Enable the telemetry flight recorder: every crash report ships the \
     worker's last journal events (per-mutant markers, diagnostics, deadline \
     slack) as its black box."
  in
  Arg.(value & flag & info [ "journal" ] ~doc)

let jobs =
  let doc =
    "Worker domains for the mutant analyses (default: the hardware's \
     recommended domain count).  The summary is byte-identical to --jobs 1. \
     Must be positive."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let chaos =
  let doc =
    "Soak the scheduler itself: inject seeded worker stalls, per-mutant \
     delays and transient dispatch faults while fuzzing.  Chaos changes \
     timing but never results \xe2\x80\x94 the summary stays byte-identical to a \
     fault-free run."
  in
  Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"SEED" ~doc)

let crash_out =
  let doc =
    "Write escaped crashes as JSON lines (schema, class, mutant index, \
     error, backtrace, flight-recorder black box) to $(docv).  Implies the \
     flight recorder.  The file is opened before the run, so an unwritable \
     path fails fast with exit code 2."
  in
  Arg.(value & opt (some string) None & info [ "crash-out" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "mutation-fuzz the robust FunSeeker analysis pipeline" in
  Cmd.v
    (Cmd.info "cetfuzz" ~doc ~exits:
       [
         Cmd.Exit.info 0 ~doc:"when every mutant was handled without an escaped exception.";
         Cmd.Exit.info 1 ~doc:"when any mutant crashed the analysis.";
         Cmd.Exit.info 2 ~doc:"on usage errors.";
       ])
    Term.(
      const run_fuzz $ seed $ count $ max_seconds $ journal $ jobs $ chaos
      $ crash_out)

let () = exit (Cmd.eval' cmd)
