let suites_order = [ "coreutils"; "binutils"; "spec" ]
let compilers_order = [ "gcc"; "clang" ]
let arch_order = [ "x86"; "x64" ]

let suite_label = function
  | "coreutils" -> "Coreutils"
  | "binutils" -> "Binutils"
  | "spec" -> "SPEC CPU 2017"
  | s -> s

(* Merge helper: visit [src] bindings in sorted key order so the keys enter
   [dst] in a deterministic order no matter how [src]'s hash buckets were
   laid out — any later fold over [dst] is then independent of how the
   corpus was partitioned across workers. *)
let sorted_bindings src =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) src []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

module Table1 = struct
  type cell = { mutable entry : int; mutable indirect : int; mutable exc : int; mutable other : int }

  type t = (string * string, cell) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let cell t key =
    match Hashtbl.find_opt t key with
    | Some c -> c
    | None ->
      let c = { entry = 0; indirect = 0; exc = 0; other = 0 } in
      Hashtbl.replace t key c;
      c

  let record t ~compiler ~suite loc =
    let c = cell t (compiler, suite) in
    match loc with
    | Core.Study.At_function_entry -> c.entry <- c.entry + 1
    | Core.Study.After_indirect_return_call -> c.indirect <- c.indirect + 1
    | Core.Study.At_landing_pad -> c.exc <- c.exc + 1
    | Core.Study.Elsewhere -> c.other <- c.other + 1

  let merge t (src : t) =
    List.iter
      (fun (key, (s : cell)) ->
        let c = cell t key in
        c.entry <- c.entry + s.entry;
        c.indirect <- c.indirect + s.indirect;
        c.exc <- c.exc + s.exc;
        c.other <- c.other + s.other)
      (sorted_bindings src)

  let shares c =
    let total = c.entry + c.indirect + c.exc + c.other in
    let pct n = if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total in
    (pct c.entry, pct c.indirect, pct c.exc, pct c.other)

  let share t ~compiler ~suite loc =
    let c = cell t (compiler, suite) in
    let e, i, x, o = shares c in
    match loc with
    | Core.Study.At_function_entry -> e
    | Core.Study.After_indirect_return_call -> i
    | Core.Study.At_landing_pad -> x
    | Core.Study.Elsewhere -> o

  let render t =
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      "TABLE I: Distribution of end-branch instruction locations.\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-8s %-14s %12s %12s %12s\n" "" "" "Func. Entry"
         "Indirect Ret." "Exception");
    List.iter
      (fun compiler ->
        List.iter
          (fun suite ->
            match Hashtbl.find_opt t (compiler, suite) with
            | None -> ()
            | Some c ->
              let e, i, x, _ = shares c in
              Buffer.add_string buf
                (Printf.sprintf "  %-8s %-14s %11.2f%% %11.2f%% %11.2f%%\n"
                   (String.capitalize_ascii compiler) (suite_label suite) e i x))
          suites_order)
      compilers_order;
    Buffer.contents buf
end

module Fig3 = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let record t props =
    let key = Core.Study.props_key props in
    match Hashtbl.find_opt t key with
    | Some r -> incr r
    | None -> Hashtbl.replace t key (ref 1)

  let merge t (src : t) =
    List.iter
      (fun (key, n) ->
        match Hashtbl.find_opt t key with
        | Some r -> r := !r + !n
        | None -> Hashtbl.replace t key (ref !n))
      (sorted_bindings src)

  let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

  let share t key =
    let tot = total t in
    if tot = 0 then 0.0
    else
      let n = match Hashtbl.find_opt t key with Some r -> !r | None -> 0 in
      100.0 *. float_of_int n /. float_of_int tot

  let render t =
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      "FIGURE 3: Relation between syntactic properties of all functions.\n";
    let order =
      [
        ("endbr+call", "EndBrAtHead & DirCallTarget");
        ("endbr", "EndBrAtHead only");
        ("endbr+jmp+call", "EndBrAtHead & DirJmpTarget & DirCallTarget");
        ("endbr+jmp", "EndBrAtHead & DirJmpTarget");
        ("call", "DirCallTarget only");
        ("jmp+call", "DirJmpTarget & DirCallTarget");
        ("jmp", "DirJmpTarget only");
        ("none", "no property (dead code)");
      ]
    in
    List.iter
      (fun (key, label) ->
        Buffer.add_string buf (Printf.sprintf "  %-44s %6.2f%%\n" label (share t key)))
      order;
    let endbr_total =
      share t "endbr" +. share t "endbr+call" +. share t "endbr+jmp"
      +. share t "endbr+jmp+call"
    in
    Buffer.add_string buf
      (Printf.sprintf "  %-44s %6.2f%%\n" "EndBrAtHead (total)" endbr_total);
    Buffer.add_string buf (Printf.sprintf "  functions observed: %d\n" (total t));
    Buffer.contents buf
end

module Table2 = struct
  type t = (string * string * int, Metrics.counts ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let record t ~compiler ~suite ~config c =
    let key = (compiler, suite, config) in
    match Hashtbl.find_opt t key with
    | Some r -> r := Metrics.add !r c
    | None -> Hashtbl.replace t key (ref c)

  let merge t (src : t) =
    List.iter
      (fun (key, c) ->
        match Hashtbl.find_opt t key with
        | Some r -> r := Metrics.add !r !c
        | None -> Hashtbl.replace t key (ref !c))
      (sorted_bindings src)

  let counts t ~compiler ~suite ~config =
    match Hashtbl.find_opt t (compiler, suite, config) with
    | Some r -> !r
    | None -> Metrics.empty

  let totals t ~config =
    Hashtbl.fold
      (fun (_, _, cfg) r acc -> if cfg = config then Metrics.add acc !r else acc)
      t Metrics.empty

  let render t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "TABLE II: Precision and recall (%) of FunSeeker configurations.\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-8s %-14s %s\n" "" ""
         "      (1) E+C        (2) E'+C       (3) E'+C+J     (4) E'+C+J'");
    Buffer.add_string buf
      (Printf.sprintf "  %-8s %-14s %s\n" "" ""
         "   Prec.    Rec.   Prec.    Rec.   Prec.    Rec.   Prec.    Rec.");
    let row label cfgs =
      Buffer.add_string buf (Printf.sprintf "  %s" label);
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf " %7.3f %7.3f" (Metrics.precision c) (Metrics.recall c)))
        cfgs;
      Buffer.add_char buf '\n'
    in
    List.iter
      (fun compiler ->
        List.iter
          (fun suite ->
            let cfgs = List.map (fun config -> counts t ~compiler ~suite ~config) [ 1; 2; 3; 4 ] in
            if List.exists (fun (c : Metrics.counts) -> c.tp + c.fn > 0) cfgs then
              row
                (Printf.sprintf "%-8s %-14s" (String.capitalize_ascii compiler)
                   (suite_label suite))
                cfgs)
          suites_order)
      compilers_order;
    row
      (Printf.sprintf "%-8s %-14s" "Total" "")
      (List.map (fun config -> totals t ~config) [ 1; 2; 3; 4 ]);
    Buffer.contents buf
end

module Triage = struct
  (* (config descriptor, bucket name) -> error count.  The config
     descriptor is Options.to_string's "gcc-x64-pie-O2" form, so the keys
     sort into compiler-major order for free. *)
  type t = (string * string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let record ?(n = 1) t ~config ~bucket =
    let key = (config, bucket) in
    match Hashtbl.find_opt t key with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t key (ref n)

  let merge t (src : t) =
    List.iter
      (fun ((config, bucket), n) -> record ~n:!n t ~config ~bucket)
      (sorted_bindings src)

  let count t ~config ~bucket =
    match Hashtbl.find_opt t (config, bucket) with Some r -> !r | None -> 0

  let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

  let bucket_totals t =
    let per_bucket = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (_, bucket) r ->
        match Hashtbl.find_opt per_bucket bucket with
        | Some b -> b := !b + !r
        | None -> Hashtbl.replace per_bucket bucket (ref !r))
      t;
    Hashtbl.fold (fun bucket r acc -> (bucket, !r) :: acc) per_bucket []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let render t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "TRIAGE: false-positive / false-negative root causes (full FunSeeker).\n";
    if Hashtbl.length t = 0 then
      Buffer.add_string buf "  no identification errors recorded\n"
    else begin
      Buffer.add_string buf
        (Printf.sprintf "  %-24s %-24s %8s %8s\n" "config" "bucket" "count" "share%");
      let rows = sorted_bindings t in
      (* Share is within the config's own error population: "what fails
         for gcc-x64-pie-O2" reads directly off the column. *)
      let config_total c =
        List.fold_left
          (fun acc ((c', _), r) -> if c' = c then acc + !r else acc)
          0 rows
      in
      List.iter
        (fun ((config, bucket), r) ->
          let tot = config_total config in
          Buffer.add_string buf
            (Printf.sprintf "  %-24s %-24s %8d %7.1f%%\n" config bucket !r
               (if tot = 0 then 0.0 else 100.0 *. float_of_int !r /. float_of_int tot)))
        rows;
      let all = total t in
      List.iter
        (fun (bucket, n) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-24s %-24s %8d %7.1f%%\n" "total" bucket n
               (if all = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int all)))
        (bucket_totals t);
      Buffer.add_string buf (Printf.sprintf "  errors triaged: %d\n" all)
    end;
    Buffer.contents buf

  (* One JSON object per (config, bucket) row, in the render's order, so
     the dump is byte-identical across --jobs like the table itself. *)
  let write_jsonl oc t =
    List.iter
      (fun ((config, bucket), r) ->
        Printf.fprintf oc "{\"config\":\"%s\",\"bucket\":\"%s\",\"count\":%d}\n" config
          bucket !r)
      (sorted_bindings t);
    List.iter
      (fun (bucket, n) ->
        Printf.fprintf oc "{\"config\":\"total\",\"bucket\":\"%s\",\"count\":%d}\n" bucket n)
      (bucket_totals t)
end

module Table3 = struct
  let tools = [ "funseeker"; "ida"; "ghidra"; "fetch" ]

  type cell = { mutable counts : Metrics.counts; mutable time : float; mutable bins : int }

  type t = (string * string * string, cell) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let cell t key =
    match Hashtbl.find_opt t key with
    | Some c -> c
    | None ->
      let c = { counts = Metrics.empty; time = 0.0; bins = 0 } in
      Hashtbl.replace t key c;
      c

  let record t ~arch ~suite ~tool c =
    let cl = cell t (arch, suite, tool) in
    cl.counts <- Metrics.add cl.counts c

  let record_time t ~arch ~suite ~tool dt =
    let cl = cell t (arch, suite, tool) in
    cl.time <- cl.time +. dt;
    cl.bins <- cl.bins + 1

  let merge t (src : t) =
    List.iter
      (fun (key, (s : cell)) ->
        let c = cell t key in
        c.counts <- Metrics.add c.counts s.counts;
        c.time <- c.time +. s.time;
        c.bins <- c.bins + s.bins)
      (sorted_bindings src)

  let counts t ~arch ~suite ~tool = (cell t (arch, suite, tool)).counts

  let totals t ~tool =
    Hashtbl.fold
      (fun (_, _, tl) c acc -> if tl = tool then Metrics.add acc c.counts else acc)
      t Metrics.empty

  let mean_time t ~tool =
    let time, bins =
      Hashtbl.fold
        (fun (_, _, tl) c (time, bins) ->
          if tl = tool then (time +. c.time, bins + c.bins) else (time, bins))
        t (0.0, 0)
    in
    if bins = 0 then 0.0 else time /. float_of_int bins

  let render t =
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      "TABLE III: Function identification vs. the state-of-the-art tools.\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-4s %-14s %34s %17s %17s %34s\n" "" "" "FunSeeker"
         "IDA-like" "Ghidra-like" "FETCH-like");
    Buffer.add_string buf
      (Printf.sprintf "  %-4s %-14s %s\n" "" ""
         "   Prec.    Rec. Time(ms)    Prec.    Rec.    Prec.    Rec.    Prec.    Rec. Time(ms)");
    let mean_for arch suite tool =
      let c = cell t (arch, suite, tool) in
      if c.bins = 0 then 0.0 else c.time /. float_of_int c.bins *. 1000.0
    in
    List.iter
      (fun arch ->
        List.iter
          (fun suite ->
            let fs = counts t ~arch ~suite ~tool:"funseeker" in
            if fs.tp + fs.fn > 0 then begin
              let ida = counts t ~arch ~suite ~tool:"ida" in
              let gh = counts t ~arch ~suite ~tool:"ghidra" in
              let fe = counts t ~arch ~suite ~tool:"fetch" in
              Buffer.add_string buf
                (Printf.sprintf
                   "  %-4s %-14s %8.3f %7.3f %8.3f %8.3f %7.3f %8.3f %7.3f %8.3f %7.3f %8.3f\n"
                   arch (suite_label suite) (Metrics.precision fs) (Metrics.recall fs)
                   (mean_for arch suite "funseeker")
                   (Metrics.precision ida) (Metrics.recall ida) (Metrics.precision gh)
                   (Metrics.recall gh) (Metrics.precision fe) (Metrics.recall fe)
                   (mean_for arch suite "fetch"))
            end)
          suites_order)
      arch_order;
    let fs = totals t ~tool:"funseeker" in
    let ida = totals t ~tool:"ida" in
    let gh = totals t ~tool:"ghidra" in
    let fe = totals t ~tool:"fetch" in
    Buffer.add_string buf
      (Printf.sprintf
         "  %-4s %-14s %8.3f %7.3f %8.3f %8.3f %7.3f %8.3f %7.3f %8.3f %7.3f %8.3f\n"
         "" "Total" (Metrics.precision fs) (Metrics.recall fs)
         (mean_time t ~tool:"funseeker" *. 1000.0)
         (Metrics.precision ida) (Metrics.recall ida) (Metrics.precision gh)
         (Metrics.recall gh) (Metrics.precision fe) (Metrics.recall fe)
         (mean_time t ~tool:"fetch" *. 1000.0));
    let tf = mean_time t ~tool:"funseeker" and te = mean_time t ~tool:"fetch" in
    if tf > 0.0 then
      Buffer.add_string buf
        (Printf.sprintf "  speedup: FunSeeker is %.1fx faster than FETCH-like\n" (te /. tf));
    Buffer.contents buf
end
