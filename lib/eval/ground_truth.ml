let has_suffix_from name suffixes =
  List.exists
    (fun suf ->
      (* exact suffix, or suffix followed by .N *)
      Filename.check_suffix name suf
      ||
      match String.index_opt name '.' with
      | None -> false
      | Some _ ->
        let rec contains_part s =
          match String.length s with
          | 0 -> false
          | _ -> (
            match String.index_opt s '.' with
            | None -> false
            | Some i ->
              let rest = String.sub s i (String.length s - i) in
              String.length rest >= String.length suf
              && String.sub rest 0 (String.length suf) = suf
              || contains_part (String.sub s (i + 1) (String.length s - i - 1)))
        in
        contains_part name)
    suffixes

let is_fragment_name name = has_suffix_from name [ ".cold"; ".part" ]

let from_symbols_impl reader =
  Cet_elf.Reader.symbols reader
  |> List.filter_map (fun (s : Cet_elf.Symbol.t) ->
         match (s.kind, s.section) with
         | Cet_elf.Symbol.Func, Some ".text" when not (is_fragment_name s.name) ->
           Some (s.name, s.value)
         | _ -> None)

let from_symbols reader =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"eval.ground_truth" (fun () ->
        from_symbols_impl reader)
  else from_symbols_impl reader

let addresses truth = List.sort_uniq compare (List.map snd truth)

let from_dwarf reader =
  match
    ( Cet_elf.Reader.find_section reader ".debug_abbrev",
      Cet_elf.Reader.find_section reader ".debug_info",
      Cet_elf.Reader.find_section reader ".debug_str" )
  with
  | Some ab, Some info, Some str ->
    let d =
      Cet_eh.Dwarf_info.decode ~debug_abbrev:ab.data ~debug_info:info.data
        ~debug_str:str.data
    in
    List.filter_map
      (fun (sp : Cet_eh.Dwarf_info.subprogram) ->
        if is_fragment_name sp.sp_name then None else Some (sp.sp_name, sp.sp_low_pc))
      d.Cet_eh.Dwarf_info.subprograms
  | _ -> []
