(** Accumulators and text renderers for the paper's tables and figure.

    Each accumulator is streamed per-binary by {!Harness} and rendered as an
    aligned text table whose rows mirror the paper's layout, so measured and
    published numbers can be compared side by side. *)

module Table1 : sig
  (** Distribution of end-branch locations per compiler × suite. *)

  type t

  val create : unit -> t
  val record : t -> compiler:string -> suite:string -> Core.Study.endbr_location -> unit
  val merge : t -> t -> unit
  (** [merge dst src] folds [src]'s cells into [dst]; merging per-worker
      partial tables in plan order reproduces the sequential run exactly. *)

  val render : t -> string
  val share : t -> compiler:string -> suite:string -> Core.Study.endbr_location -> float
  (** Percentage share of one location class (for tests/benches). *)
end

module Fig3 : sig
  (** Overlap of the EndBrAtHead / DirJmpTarget / DirCallTarget properties
      over all ground-truth functions. *)

  type t

  val create : unit -> t
  val record : t -> Core.Study.props -> unit
  val merge : t -> t -> unit
  val total : t -> int
  val share : t -> string -> float
  (** Percentage of functions in a {!Core.Study.props_key} region. *)

  val render : t -> string
end

module Table2 : sig
  (** FunSeeker ablation: precision/recall per compiler × suite × config. *)

  type t

  val create : unit -> t
  val record :
    t -> compiler:string -> suite:string -> config:int -> Metrics.counts -> unit
  val merge : t -> t -> unit
  val counts : t -> compiler:string -> suite:string -> config:int -> Metrics.counts
  val totals : t -> config:int -> Metrics.counts
  val render : t -> string
end

module Triage : sig
  (** Error forensics: root-cause bucket counts for every false positive
      and false negative, keyed by the binary's compilation configuration
      ({!Cet_compiler.Options.to_string} form — compiler, arch, PIE, opt
      level).  Bucket names come from
      {!Core.Provenance.bucket_name}. *)

  type t

  val create : unit -> t
  val record : ?n:int -> t -> config:string -> bucket:string -> unit
  val merge : t -> t -> unit
  (** Plan-order merge of per-worker partials; the rendered table and the
      JSONL dump are byte-identical across [--jobs]. *)

  val count : t -> config:string -> bucket:string -> int
  val total : t -> int
  (** All triaged errors (every FP and FN across the corpus). *)

  val render : t -> string
  (** Aligned rows sorted by (config, bucket) with per-config shares,
      followed by cross-config bucket totals. *)

  val write_jsonl : out_channel -> t -> unit
  (** One [{"config","bucket","count"}] object per row, render order,
      then the cross-config totals with config ["total"]. *)
end

module Table3 : sig
  (** Tool comparison: precision/recall per arch × suite per tool, plus
      mean per-binary analysis time for FunSeeker and FETCH. *)

  type t

  val tools : string list
  (** ["funseeker"; "ida"; "ghidra"; "fetch"]. *)

  val create : unit -> t
  val record :
    t -> arch:string -> suite:string -> tool:string -> Metrics.counts -> unit
  val record_time : t -> arch:string -> suite:string -> tool:string -> float -> unit
  val merge : t -> t -> unit
  (** Sums counts, accumulated time, and binary tallies per cell. *)

  val counts : t -> arch:string -> suite:string -> tool:string -> Metrics.counts
  val totals : t -> tool:string -> Metrics.counts
  val mean_time : t -> tool:string -> float
  (** Mean per-binary seconds across the whole dataset. *)

  val render : t -> string
end
