module Reader = Cet_elf.Reader
module Substrate = Cet_disasm.Substrate
module Options = Cet_compiler.Options
module Dataset = Cet_corpus.Dataset
module Domain_pool = Cet_util.Domain_pool
module Work_queue = Cet_util.Work_queue

type options = {
  seed : int;
  scale : float;
  progress : bool;
  timing : bool;
  max_seconds : float option;
  keep_going : bool;
  fault : (Dataset.binary -> bool) option;
  triage : bool;
  profile : bool;
  chaos : int option;
  run_seconds : float option;
  shed_fraction : float;
  breaker : Work_queue.Breaker.config option;
}

let default_options =
  {
    seed = 2022;
    scale = 0.25;
    progress = false;
    timing = true;
    max_seconds = None;
    keep_going = true;
    fault = None;
    triage = false;
    profile = false;
    chaos = None;
    run_seconds = None;
    shed_fraction = 0.1;
    (* Three consecutive failures open a program's breaker; two more of
       its binaries fast-fail before a recovery probe.  Because all of a
       program's binaries run inside one plan item, the breaker's
       decisions are identical whatever the worker count. *)
    breaker = Some { Work_queue.Breaker.threshold = 3; cooldown = 2 };
  }

type failure = {
  f_suite : string;
  f_program : string;
  f_config : string;
  f_attempts : int;
  f_error : string;
  f_backtrace : string;
  f_journal : Cet_telemetry.Journal.event list;
}

type profile = {
  p_suite : string;
  p_program : string;
  p_config : string;
  p_arch : string;
  p_digest : string;
  p_text_bytes : int;
  p_insns : int;
  p_resyncs : int;
  p_truth : int;
  p_diags : int;
  p_attempts : int;
  p_status : string;
  p_total_ms : float;
  p_phases : (string * float) list;
}

(* Fixed phase vocabulary so every profile row carries the same keys in the
   same order — the JSONL output is diffable and byte-identical across
   [~jobs] under [timing = false]. *)
let profile_phase_names =
  [ "study"; "configs"; "funseeker"; "ida"; "ghidra"; "fetch"; "triage" ]

type results = {
  table1 : Tables.Table1.t;
  fig3 : Tables.Fig3.t;
  table2 : Tables.Table2.t;
  table3 : Tables.Table3.t;
  triage : Tables.Triage.t;
  binaries : int;
  functions : int;
  failures : failure list;
  profiles : profile list;
}

let arch_name = function Cet_x86.Arch.X86 -> "x86" | Cet_x86.Arch.X64 -> "x64"

(* Content identity of one analyzed binary: an MD5 over its stripped ELF
   bytes — exactly what every tool sees.  The corpus generator is
   deterministic in the seed, so the digest is stable across runs, jobs,
   and chaos seeds; it is the join key for every cross-run comparison
   (cetstat diff) and the first half of the ROADMAP's content-addressed
   result store. *)
let content_digest bytes = Digest.to_hex (Digest.string bytes)

let timed f x =
  let t0 = Unix.gettimeofday () in
  let r = f x in
  (r, Unix.gettimeofday () -. t0)

(* Ground-truth entry addresses of one binary, deduplicated: aliased
   symbols may map distinct names to one address, and every consumer of a
   truth list measures the set of entries, not the symbol table. *)
let truth_addrs (bin : Dataset.binary) =
  List.sort_uniq Int.compare (List.map snd bin.truth)

let empty_results () =
  {
    table1 = Tables.Table1.create ();
    fig3 = Tables.Fig3.create ();
    table2 = Tables.Table2.create ();
    table3 = Tables.Table3.create ();
    triage = Tables.Triage.create ();
    binaries = 0;
    functions = 0;
    failures = [];
    profiles = [];
  }

let merge_results into src =
  Tables.Table1.merge into.table1 src.table1;
  Tables.Fig3.merge into.fig3 src.fig3;
  Tables.Table2.merge into.table2 src.table2;
  Tables.Table3.merge into.table3 src.table3;
  Tables.Triage.merge into.triage src.triage;
  {
    into with
    binaries = into.binaries + src.binaries;
    functions = into.functions + src.functions;
    failures = into.failures @ src.failures;
    profiles = into.profiles @ src.profiles;
  }

(* EWMA over the instantaneous throughput between progress milestones: the
   first observation seeds the average, later ones smooth with [alpha].
   Pure, so the smoothing itself is unit-testable. *)
let ewma_update ~alpha ~prev x =
  match prev with None -> x | Some p -> (alpha *. x) +. ((1.0 -. alpha) *. p)

let scheduler ?jobs (opts : options) =
  Work_queue.create ~observer:Cet_telemetry.Bridge.scheduler_observer
    (Work_queue.config ?jobs ~seed:opts.seed ~attempts:2 ?breaker:opts.breaker
       ?run_seconds:opts.run_seconds ~shed_fraction:opts.shed_fraction
       ?chaos:
         (Option.map (fun seed -> Work_queue.Chaos.default ~seed) opts.chaos)
       ())

let run ?profiles ?configs ?jobs (opts : options) =
  Printexc.record_backtrace true;
  let plan = Dataset.plan ?profiles ?configs ~seed:opts.seed ~scale:opts.scale () in
  let total_binaries = Dataset.binaries plan in
  let t0 = Unix.gettimeofday () in
  let progress = Atomic.make 0 in
  let retried = Atomic.make 0 in
  (* Live status line: done/total with rate and ETA, throttled so the
     stderr traffic stays negligible.  Racing workers may interleave
     updates, but each is one whole carriage-returned line.  The rate is
     EWMA-smoothed over the inter-milestone throughput — a cumulative
     average makes the early ETA wildly wrong whenever the first binaries
     are unrepresentative (cold caches, a straggler) — while the final
     summary below stays the exact cumulative figure. *)
  let prog_lock = Mutex.create () in
  let prog_last_t = ref t0 in
  let prog_last_seen = ref 0 in
  let prog_rate = ref None in
  let show_progress seen =
    if seen mod 25 = 0 || seen = total_binaries then begin
      let now = Unix.gettimeofday () in
      let rate =
        Mutex.protect prog_lock (fun () ->
            let dt = now -. !prog_last_t in
            let dn = seen - !prog_last_seen in
            (* Milestones can arrive out of order from racing workers;
               only a forward step updates the average. *)
            if dn > 0 && dt > 0.0 then begin
              prog_rate :=
                Some
                  (ewma_update ~alpha:0.3 ~prev:!prog_rate
                     (float_of_int dn /. dt));
              prog_last_t := now;
              prog_last_seen := seen
            end;
            match !prog_rate with
            | Some r -> r
            | None ->
              let elapsed = now -. t0 in
              if elapsed > 0.0 then float_of_int seen /. elapsed else 0.0)
      in
      let eta =
        if rate > 0.0 then float_of_int (total_binaries - seen) /. rate else 0.0
      in
      Printf.eprintf "\r  %d/%d binaries  %.1f bin/s  ETA %.0fs " seen total_binaries
        rate eta;
      flush stderr
    end
  in
  (* Per-binary unit of work, accumulating into the worker's private
     tables.  Nothing here touches shared state except the progress
     counter, so any domain can evaluate any plan item.  Under [degraded]
     (deadline-pressure shedding) only the cheap anchored-only FunSeeker
     passes run: the study, the baselines, and the triage pass are
     skipped, and the profile row records the downgrade. *)
  let eval_binary_impl ~degraded acc (bin : Dataset.binary) =
    let module J = Cet_telemetry.Journal in
    let jmark = if J.enabled () then J.mark () else 0 in
    let bin_t0 = Unix.gettimeofday () in
    (* One substrate per binary per worker: the ELF parse, the sweep, the
       index arrays and the exception-table decode happen once here and
       every consumer below — the study, the four ablation configs, and
       all of Table III's tools — reads the memoised copy. *)
    let st = Substrate.of_bytes bin.stripped in
    let truth = truth_addrs bin in
    let compiler = Options.compiler_name bin.config.Options.compiler in
    let suite = bin.suite in
    let arch = arch_name bin.config.Options.arch in
    let config_s = Options.to_string bin.config in
    (* Table I (end-branch location classes) and Figure 3 (per-function
       property classes). *)
    let (), study_time =
      timed
        (fun () ->
          if not degraded then begin
            List.iter
              (fun (_addr, loc) -> Tables.Table1.record acc.table1 ~compiler ~suite loc)
              (Core.Study.classify_endbrs_st st ~truth);
            List.iter
              (fun (_addr, props) -> Tables.Fig3.record acc.fig3 props)
              (Core.Study.function_props_st st ~truth)
          end)
        ()
    in
    (* Table II: the four FunSeeker configurations (anchored-only when
       shedding — the sweep fast-forwards between end branches instead of
       decoding every byte run). *)
    let (), configs_time =
      timed
        (fun () ->
          List.iteri
            (fun i config ->
              let r =
                if degraded then Core.Funseeker.analyze_st ~config ~anchored:true st
                else Core.Funseeker.analyze_st ~config st
              in
              Tables.Table2.record acc.table2 ~compiler ~suite ~config:(i + 1)
                (Metrics.compare_sets ~truth ~found:r.Core.Funseeker.functions))
            [
              Core.Funseeker.config1; Core.Funseeker.config2;
              Core.Funseeker.config3; Core.Funseeker.config4;
            ])
        ()
    in
    (* Table III: tool comparison with timing for FunSeeker and FETCH.
       Timed runs measure each tool's own analysis over the shared
       substrate — the once-per-binary parse and sweep are excluded (see
       DESIGN.md §11), which isolates exactly the algorithmic cost the
       paper's Table III discusses.  With [timing = false] the clock
       columns stay zero, which keeps the rendered output deterministic
       in the seed. *)
    let fs, fs_time =
      timed
        (fun st ->
          (if degraded then Core.Funseeker.analyze_st ~anchored:true st
           else Core.Funseeker.analyze_st st)
            .Core.Funseeker.functions)
        st
    in
    Tables.Table3.record acc.table3 ~arch ~suite ~tool:"funseeker"
      (Metrics.compare_sets ~truth ~found:fs);
    if opts.timing then
      Tables.Table3.record_time acc.table3 ~arch ~suite ~tool:"funseeker" fs_time;
    let ida_time, ghidra_time, fetch_time =
      if degraded then (0.0, 0.0, 0.0)
      else begin
        let ida, ida_time = timed Cet_baselines.Ida_like.analyze_st st in
        Tables.Table3.record acc.table3 ~arch ~suite ~tool:"ida"
          (Metrics.compare_sets ~truth ~found:ida);
        let ghidra, ghidra_time = timed Cet_baselines.Ghidra_like.analyze_st st in
        Tables.Table3.record acc.table3 ~arch ~suite ~tool:"ghidra"
          (Metrics.compare_sets ~truth ~found:ghidra);
        let fetch, fetch_time = timed Cet_baselines.Fetch.analyze_st st in
        Tables.Table3.record acc.table3 ~arch ~suite ~tool:"fetch"
          (Metrics.compare_sets ~truth ~found:fetch);
        if opts.timing then
          Tables.Table3.record_time acc.table3 ~arch ~suite ~tool:"fetch" fetch_time;
        (ida_time, ghidra_time, fetch_time)
      end
    in
    (* Error forensics (opt-in): rerun the full configuration with decision
       provenance, join the identified set against ground truth, and bucket
       every false positive / false negative by root cause, keyed by this
       binary's compilation configuration. *)
    let (), triage_time =
      timed
        (fun () ->
          if opts.triage && not degraded then begin
            let _r, prov = Core.Funseeker.analyze_prov st in
            let pads = Substrate.landing_pads st in
            List.iter
              (fun (_addr, b) ->
                Tables.Triage.record acc.triage ~config:config_s
                  ~bucket:(Core.Provenance.bucket_name b))
              (Core.Provenance.errors prov ~truth ~pads)
          end)
        ()
    in
    (* Per-(tool,config) end-to-end latency samples for SLO checking; one
       atomic load when disabled. *)
    if Cet_telemetry.Slo.enabled () then begin
      let obs tool t =
        Cet_telemetry.Slo.observe ~tool ~config:config_s
          (int_of_float (t *. 1e9))
      in
      obs "funseeker" fs_time;
      if not degraded then begin
        obs "ida" ida_time;
        obs "ghidra" ghidra_time;
        obs "fetch" fetch_time
      end;
      obs "binary" (Unix.gettimeofday () -. bin_t0)
    end;
    (* The per-binary profile record: identity, decode volume from the
       substrate facts, journal-observed diag volume, and the phase split.
       Under [timing = false] every clock figure renders as zero so the
       JSONL row set is byte-identical across [~jobs]. *)
    let acc =
      if not opts.profile then acc
      else begin
        let fx = Substrate.facts st in
        let total_time = Unix.gettimeofday () -. bin_t0 in
        let ms t = if opts.timing then t *. 1e3 else 0.0 in
        let p =
          {
            p_suite = suite;
            p_program = bin.program;
            p_config = config_s;
            p_arch = arch;
            p_digest = content_digest bin.stripped;
            p_text_bytes = fx.Substrate.f_size;
            p_insns = fx.Substrate.f_insns;
            p_resyncs = fx.Substrate.f_resync_errors;
            p_truth = List.length truth;
            p_diags = (if J.enabled () then J.count_kind_since jmark J.Diag else 0);
            p_attempts = 1;
            p_status = (if degraded then "shed" else "ok");
            p_total_ms = ms total_time;
            p_phases =
              List.combine profile_phase_names
                (List.map ms
                   [
                     study_time; configs_time; fs_time; ida_time; ghidra_time;
                     fetch_time; triage_time;
                   ]);
          }
        in
        { acc with profiles = acc.profiles @ [ p ] }
      end
    in
    { acc with binaries = acc.binaries + 1; functions = acc.functions + List.length truth }
  in
  (* Fault isolation: every binary is evaluated into a FRESH accumulator
     so a mid-flight exception cannot leave partial rows behind; only a
     completed evaluation is merged into the worker's tables.  Retry,
     backoff, circuit breaking and shedding are the scheduler's
     ({!Work_queue.guard}); a deadline expiry is not transient, so it is
     never retried. *)
  let attempt (bin : Dataset.binary) ~attempt:_ ~degraded =
    let fresh = empty_results () in
    let work () =
      (match opts.fault with
      | Some is_faulty when is_faulty bin ->
        failwith (Printf.sprintf "injected fault: %s/%s" bin.suite bin.program)
      | _ -> ());
      if Cet_telemetry.Span.enabled () then
        Cet_telemetry.Span.with_ ~name:"harness.binary" (fun () ->
            eval_binary_impl ~degraded fresh bin)
      else eval_binary_impl ~degraded fresh bin
    in
    match opts.max_seconds with
    | None -> work ()
    | Some seconds -> Cet_util.Deadline.with_ ~seconds work
  in
  let failure_of (bin : Dataset.binary) ~attempts e bt =
    {
      f_suite = bin.suite;
      f_program = bin.program;
      f_config = Options.to_string bin.config;
      f_attempts = attempts;
      f_error = Printexc.to_string e;
      f_backtrace = Printexc.raw_backtrace_to_string bt;
      (* The worker's flight recorder at the moment of quarantine: the
         black box shipped with the failure record ([] when disabled). *)
      f_journal = Cet_telemetry.Journal.recent ~n:32 ();
    }
  in
  (* A quarantined binary still gets a profile row — identity, attempts and
     status, with the analysis-derived figures zeroed (the failed attempt's
     partial work is discarded with its accumulator). *)
  let quarantined_profile (bin : Dataset.binary) ~attempts ~status =
    {
      p_suite = bin.suite;
      p_program = bin.program;
      p_config = Options.to_string bin.config;
      p_arch = arch_name bin.config.Options.arch;
      (* The bytes exist even when the analysis never ran (breaker skip,
         quarantine): content identity is a property of the input, not of
         the outcome, so cross-run joins still see the row. *)
      p_digest = content_digest bin.stripped;
      p_text_bytes = 0;
      p_insns = 0;
      p_resyncs = 0;
      p_truth = 0;
      p_diags = 0;
      p_attempts = attempts;
      p_status = status;
      p_total_ms = 0.0;
      p_phases = List.map (fun n -> (n, 0.0)) profile_phase_names;
    }
  in
  let set_attempts n fresh =
    if not opts.profile then fresh
    else
      {
        fresh with
        profiles = List.map (fun p -> { p with p_attempts = n }) fresh.profiles;
      }
  in
  let wq = scheduler ?jobs opts in
  (* The retried counter mirrors the pre-scheduler semantics: a binary
     whose first attempt failed retryably counts once, whether the retry
     then succeeded or the binary was quarantined. *)
  let note_retry ~attempts name =
    if attempts > 1 then begin
      Atomic.incr retried;
      Cet_telemetry.Registry.count "harness.retried";
      if Cet_telemetry.Journal.enabled () then
        Cet_telemetry.Journal.record ~v:attempts Cet_telemetry.Journal.Retry name
    end
  in
  let eval_binary acc (bin : Dataset.binary) =
    let name = bin.suite ^ "/" ^ bin.program in
    let key = name ^ "[" ^ Options.to_string bin.config ^ "]" in
    let retryable = function Cet_util.Deadline.Expired _ -> false | _ -> true in
    let acc =
      match Work_queue.guard wq ~key ~group:name ~retryable (attempt bin) with
      | Ok g ->
        note_retry ~attempts:g.Work_queue.g_attempts name;
        Cet_telemetry.Registry.count "harness.binaries";
        merge_results acc (set_attempts g.Work_queue.g_attempts g.Work_queue.g_value)
      | Error u ->
        note_retry ~attempts:u.Work_queue.w_attempts name;
        if not opts.keep_going then
          Printexc.raise_with_backtrace u.Work_queue.w_error u.Work_queue.w_bt;
        let attempts = u.Work_queue.w_attempts in
        Cet_telemetry.Registry.count "harness.quarantined";
        if Cet_telemetry.Journal.enabled () then
          Cet_telemetry.Journal.record ~v:attempts Cet_telemetry.Journal.Quarantine
            name;
        let status =
          if u.Work_queue.w_breaker_skip then "breaker-skip" else "quarantined"
        in
        let acc =
          if not opts.profile then acc
          else
            {
              acc with
              profiles = acc.profiles @ [ quarantined_profile bin ~attempts ~status ];
            }
        in
        {
          acc with
          failures =
            acc.failures
            @ [ failure_of bin ~attempts u.Work_queue.w_error u.Work_queue.w_bt ];
        }
    in
    let seen = Atomic.fetch_and_add progress 1 + 1 in
    if opts.progress then show_progress seen;
    acc
  in
  let eval_item k = List.fold_left eval_binary (empty_results ()) (Dataset.nth plan k) in
  let results =
    Array.fold_left merge_results (empty_results ())
      (Work_queue.map wq (Dataset.length plan) eval_item)
  in
  if Cet_telemetry.Registry.enabled () then begin
    let s = Work_queue.stats wq in
    Cet_telemetry.Registry.gauge_set "scheduler.max_pending"
      (float_of_int s.Work_queue.s_max_pending)
  end;
  (* Exact completion line, printed once and only when something ran (an
     empty plan must not leave a stray newline on stderr). *)
  let done_count = Atomic.get progress in
  if opts.progress && done_count > 0 then begin
    let elapsed = Unix.gettimeofday () -. t0 in
    Printf.eprintf
      "\r  %d/%d binaries in %.1fs (%.1f bin/s), %d quarantined, %d retried          \n"
      done_count total_binaries elapsed
      (if elapsed > 0.0 then float_of_int done_count /. elapsed else 0.0)
      (List.length results.failures) (Atomic.get retried);
    flush stderr
  end;
  if Cet_telemetry.Registry.enabled () then begin
    let elapsed = Unix.gettimeofday () -. t0 in
    Cet_telemetry.Registry.gauge_set "harness.wall_s" elapsed;
    Cet_telemetry.Registry.gauge_set "harness.binaries_per_sec"
      (if elapsed > 0.0 then float_of_int done_count /. elapsed else 0.0)
  end;
  results

type manual_endbr_report = { full : Metrics.counts; manual : Metrics.counts }

(* The per-binary unit of the SSVI ablation: FunSeeker's counts plus the
   size of the deduplicated ground-truth set (so [snd] always equals
   [tp + fn] of [fst] — duplicate truth entries must not inflate it). *)
let manual_endbr_binary (bin : Dataset.binary) =
  let truth = truth_addrs bin in
  let r = Core.Funseeker.analyze_st (Substrate.of_bytes bin.Dataset.stripped) in
  (Metrics.compare_sets ~truth ~found:r.Core.Funseeker.functions, List.length truth)

let manual_endbr_ablation ?jobs (opts : options) =
  let profile = Cet_corpus.Profile.scaled (opts.scale /. 2.0) Cet_corpus.Profile.coreutils in
  let run_with cf =
    let configs =
      List.map
        (fun (c : Options.t) -> { c with Options.cf_protection = cf })
        Options.all_grid
    in
    let plan = Dataset.plan ~profiles:[ profile ] ~configs ~seed:opts.seed ~scale:1.0 () in
    Domain_pool.fold ?jobs ~merge:Metrics.add Metrics.empty (Dataset.length plan)
      (fun k ->
        List.fold_left
          (fun acc bin -> Metrics.add acc (fst (manual_endbr_binary bin)))
          Metrics.empty (Dataset.nth plan k))
  in
  { full = run_with Options.Cf_full; manual = run_with Options.Cf_manual }

let render_manual_endbr r =
  Printf.sprintf
    "MANUAL-ENDBR ABLATION (SSVI): FunSeeker on -mmanual-endbr binaries\n\
    \  -fcf-protection=full : precision %7.3f%%  recall %7.3f%%\n\
    \  -mmanual-endbr       : precision %7.3f%%  recall %7.3f%%\n\
    \  recall impact: %.3f points (paper predicts a marginal loss, <= ~1.24%%)\n"
    (Metrics.precision r.full) (Metrics.recall r.full) (Metrics.precision r.manual)
    (Metrics.recall r.manual)
    (Metrics.recall r.full -. Metrics.recall r.manual)

type related_work_report = {
  byteweight_in : Metrics.counts;
  byteweight_ood : Metrics.counts;
  nucleus_c : Metrics.counts;
  nucleus_cpp : Metrics.counts;
  funseeker_ref : Metrics.counts;
}

let related_work ?jobs (opts : options) =
  let profile =
    Cet_corpus.Profile.scaled (opts.scale /. 2.0) Cet_corpus.Profile.coreutils
  in
  let build config index =
    let ir = Cet_corpus.Generator.program ~seed:opts.seed ~profile ~index in
    let res = Cet_compiler.Link.link config ir in
    ( Reader.read (Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image),
      List.sort_uniq Int.compare (List.map snd res.Cet_compiler.Link.truth) )
  in
  let n = max 4 profile.Cet_corpus.Profile.programs in
  let train_n = n / 2 in
  let gcc = Options.default in
  let clang_x86 =
    { Options.default with Options.compiler = Options.Clang; arch = Cet_x86.Arch.X86 }
  in
  let model =
    Cet_baselines.Byteweight.train
      (Array.to_list (Domain_pool.map ?jobs train_n (fun i -> build gcc i)))
  in
  let score tool configs =
    let work =
      Array.of_list
        (List.concat_map
           (fun c -> List.init (n - train_n) (fun i -> (c, train_n + i)))
           configs)
    in
    Domain_pool.fold ?jobs ~merge:Metrics.add Metrics.empty (Array.length work)
      (fun k ->
        let config, index = work.(k) in
        let reader, truth = build config index in
        Metrics.compare_sets ~truth ~found:(tool reader))
  in
  let byteweight reader = Cet_baselines.Byteweight.classify model reader in
  let cpp_profile =
    {
      (Cet_corpus.Profile.scaled (opts.scale /. 4.0) Cet_corpus.Profile.spec) with
      Cet_corpus.Profile.lang_cpp_fraction = 1.0;
    }
  in
  let nucleus_on profile =
    Domain_pool.fold ?jobs ~merge:Metrics.add Metrics.empty
      profile.Cet_corpus.Profile.programs (fun index ->
        let ir = Cet_corpus.Generator.program ~seed:opts.seed ~profile ~index in
        let res = Cet_compiler.Link.link gcc ir in
        let reader =
          Reader.read (Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image)
        in
        let truth = List.sort_uniq Int.compare (List.map snd res.Cet_compiler.Link.truth) in
        Metrics.compare_sets ~truth ~found:(Cet_baselines.Nucleus_like.analyze reader))
  in
  {
    byteweight_in = score byteweight [ gcc ];
    byteweight_ood = score byteweight [ clang_x86 ];
    nucleus_c = nucleus_on profile;
    nucleus_cpp = nucleus_on cpp_profile;
    funseeker_ref =
      score (fun r -> (Core.Funseeker.analyze r).Core.Funseeker.functions) [ gcc; clang_x86 ];
  }

let render_related_work r =
  let line label (c : Metrics.counts) =
    Printf.sprintf "  %-42s precision %7.3f%%  recall %7.3f%%" label
      (Metrics.precision c) (Metrics.recall c)
  in
  String.concat "\n"
    [
      "RELATED-WORK COMPARATORS (SSVII-B)";
      line "ByteWeight-like, in-distribution (gcc/x64)" r.byteweight_in;
      line "ByteWeight-like, cross-compiler (clang/x86)" r.byteweight_ood;
      line "Nucleus-like, C binaries" r.nucleus_c;
      line "Nucleus-like, C++ binaries (landing pads)" r.nucleus_cpp;
      line "FunSeeker, same test set (no training)" r.funseeker_ref;
      "";
    ]

type inline_data_report = {
  clean_linear : Metrics.counts;
  clean_anchored : Metrics.counts;
  dirty_linear : Metrics.counts;
  dirty_anchored : Metrics.counts;
  dirty_resyncs : int;
}

let inline_data ?jobs (opts : options) =
  let profile =
    {
      (Cet_corpus.Profile.scaled (opts.scale /. 2.0) Cet_corpus.Profile.binutils) with
      Cet_corpus.Profile.p_switch = 0.3;
    }
  in
  let run inline =
    let config = { Options.default with Options.jump_tables_in_text = inline } in
    Domain_pool.fold ?jobs
      ~merge:(fun (lin, anc, resyncs) (lin', anc', resyncs') ->
        (Metrics.add lin lin', Metrics.add anc anc', resyncs + resyncs'))
      (Metrics.empty, Metrics.empty, 0)
      profile.Cet_corpus.Profile.programs
      (fun index ->
        let ir = Cet_corpus.Generator.program ~seed:opts.seed ~profile ~index in
        let res = Cet_compiler.Link.link config ir in
        let st =
          Substrate.of_bytes (Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image)
        in
        let truth =
          List.sort_uniq Int.compare (List.map snd res.Cet_compiler.Link.truth)
        in
        let l = Core.Funseeker.analyze_st st in
        let a = Core.Funseeker.analyze_st ~anchored:true st in
        ( Metrics.compare_sets ~truth ~found:l.Core.Funseeker.functions,
          Metrics.compare_sets ~truth ~found:a.Core.Funseeker.functions,
          l.Core.Funseeker.resync_errors ))
  in
  let clean_linear, clean_anchored, _ = run false in
  let dirty_linear, dirty_anchored, dirty_resyncs = run true in
  { clean_linear; clean_anchored; dirty_linear; dirty_anchored; dirty_resyncs }

let render_inline_data r =
  let line label (c : Metrics.counts) =
    Printf.sprintf "  %-40s precision %7.3f%%  recall %7.3f%%" label
      (Metrics.precision c) (Metrics.recall c)
  in
  String.concat "\n"
    [
      "INLINE DATA IN .TEXT (SSVI): linear vs end-branch-anchored sweep";
      line "clean binaries, linear sweep" r.clean_linear;
      line "clean binaries, anchored sweep" r.clean_anchored;
      Printf.sprintf "  dirty binaries: %d linear-sweep resynchronisations" r.dirty_resyncs;
      line "dirty binaries, linear sweep" r.dirty_linear;
      line "dirty binaries, anchored sweep" r.dirty_anchored;
      "";
    ]

type arm_report = {
  arm_bti : Metrics.counts;
  arm_legacy : Metrics.counts;
  arm_binaries : int;
}

let arm_bti ?jobs (opts : options) =
  let items =
    Array.of_list
      (List.concat_map
         (fun profile ->
           let profile = Cet_corpus.Profile.scaled (opts.scale /. 2.0) profile in
           List.init profile.Cet_corpus.Profile.programs (fun index -> (profile, index)))
         Cet_corpus.Profile.all)
  in
  let bti, legacy, n =
    Domain_pool.fold ?jobs
      ~merge:(fun (b, l, n) (b', l', n') -> (Metrics.add b b', Metrics.add l l', n + n'))
      (Metrics.empty, Metrics.empty, 0)
      (Array.length items)
      (fun k ->
        let profile, index = items.(k) in
        let ir = Cet_corpus.Generator.program ~seed:opts.seed ~profile ~index in
        let eval bti =
          let res =
            Cet_arm64.A64_compile.compile { Cet_arm64.A64_compile.bti; tail_calls = true } ir
          in
          let reader =
            Reader.read (Cet_elf.Writer.write ~strip:true res.Cet_arm64.A64_compile.image)
          in
          let truth =
            List.sort_uniq Int.compare (List.map snd res.Cet_arm64.A64_compile.truth)
          in
          let r = Cet_arm64.Bti_seeker.analyze reader in
          Metrics.compare_sets ~truth ~found:r.Cet_arm64.Bti_seeker.functions
        in
        (eval true, eval false, 2))
  in
  { arm_bti = bti; arm_legacy = legacy; arm_binaries = n }

let render_arm r =
  String.concat "\n"
    [
      Printf.sprintf "ARM BTI EXTENSION (SSVI): %d aarch64 binaries" r.arm_binaries;
      Printf.sprintf "  -mbranch-protection=bti : precision %7.3f%%  recall %7.3f%%"
        (Metrics.precision r.arm_bti) (Metrics.recall r.arm_bti);
      Printf.sprintf "  unprotected (control)   : precision %7.3f%%  recall %7.3f%%"
        (Metrics.precision r.arm_legacy) (Metrics.recall r.arm_legacy);
      "";
    ]

let render_all r =
  String.concat "\n"
    [
      Printf.sprintf "dataset: %d binaries, %d ground-truth functions\n" r.binaries
        r.functions;
      Tables.Table1.render r.table1;
      Tables.Fig3.render r.fig3;
      Tables.Table2.render r.table2;
      Tables.Table3.render r.table3;
    ]

let render_failures r =
  match r.failures with
  | [] -> ""
  | fs ->
    let line f =
      Printf.sprintf "  %s/%s [%s]: %s (%d attempt%s)" f.f_suite f.f_program f.f_config
        f.f_error f.f_attempts
        (if f.f_attempts = 1 then "" else "s")
    in
    Printf.sprintf "QUARANTINED BINARIES (%d):\n%s\n" (List.length fs)
      (String.concat "\n" (List.map line fs))

(* Minimal JSON string escaping — the quarantine report must not drag in a
   JSON library for six fields. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let journal_event_json (e : Cet_telemetry.Journal.event) =
  Printf.sprintf "{\"kind\":\"%s\",\"name\":\"%s\",\"v\":%d,\"ns\":%d}"
    (Cet_telemetry.Journal.kind_label e.Cet_telemetry.Journal.j_kind)
    (json_escape e.Cet_telemetry.Journal.j_name)
    e.Cet_telemetry.Journal.j_v e.Cet_telemetry.Journal.j_ns

(* Version of the quarantine JSONL format.  2 = the PR 7 shape (journal
   black box) plus this field; bump on any key change so consumers can
   refuse rows they do not understand. *)
let quarantine_schema = 2

let write_quarantine oc r =
  List.iter
    (fun f ->
      Printf.fprintf oc
        "{\"schema\":%d,\"suite\":\"%s\",\"program\":\"%s\",\"config\":\"%s\",\"attempts\":%d,\"error\":\"%s\",\"backtrace\":\"%s\",\"journal\":[%s]}\n"
        quarantine_schema
        (json_escape f.f_suite) (json_escape f.f_program) (json_escape f.f_config)
        f.f_attempts (json_escape f.f_error) (json_escape f.f_backtrace)
        (String.concat "," (List.map journal_event_json f.f_journal)))
    r.failures

(* The reading side of the quarantine report: the schema field is
   checked, the journal black box is reconstructed event by event
   (ring ids are not serialised — readers get [-1]).  Used by the
   round-trip regression test and available to external tooling. *)
let read_quarantine s =
  let module Jz = Cet_util.Jsonl in
  let module J = Cet_telemetry.Journal in
  let ( let* ) = Result.bind in
  let field name conv j =
    match Option.bind (Jz.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let event_of j =
    let* kind_s = field "kind" Jz.str j in
    let* kind =
      match J.kind_of_label kind_s with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown journal kind %S" kind_s)
    in
    let* name = field "name" Jz.str j in
    let* v = field "v" Jz.int j in
    let* ns = field "ns" Jz.int j in
    Ok { J.j_kind = kind; j_name = name; j_v = v; j_ns = ns; j_ring = -1 }
  in
  let failure_of j =
    let* schema = field "schema" Jz.int j in
    if schema <> quarantine_schema then
      Error (Printf.sprintf "unsupported schema %d (want %d)" schema quarantine_schema)
    else
      let* f_suite = field "suite" Jz.str j in
      let* f_program = field "program" Jz.str j in
      let* f_config = field "config" Jz.str j in
      let* f_attempts = field "attempts" Jz.int j in
      let* f_error = field "error" Jz.str j in
      let* f_backtrace = field "backtrace" Jz.str j in
      let* journal = field "journal" Jz.list j in
      let* f_journal =
        List.fold_left
          (fun acc ev ->
            let* acc = acc in
            let* e = event_of ev in
            Ok (e :: acc))
          (Ok []) journal
      in
      Ok
        {
          f_suite;
          f_program;
          f_config;
          f_attempts;
          f_error;
          f_backtrace;
          f_journal = List.rev f_journal;
        }
  in
  let* rows = Jz.parse_lines s in
  List.fold_left
    (fun acc row ->
      let* acc = acc in
      let* f = failure_of row in
      Ok (acc @ [ f ]))
    (Ok []) rows

let write_profiles oc r =
  List.iter
    (fun p ->
      let phases =
        String.concat ","
          (List.map
             (fun (n, t) -> Printf.sprintf "\"%s\":%.3f" (json_escape n) t)
             p.p_phases)
      in
      Printf.fprintf oc
        "{\"suite\":\"%s\",\"program\":\"%s\",\"config\":\"%s\",\"arch\":\"%s\",\"digest\":\"%s\",\"text_bytes\":%d,\"insns\":%d,\"resyncs\":%d,\"truth\":%d,\"diags\":%d,\"attempts\":%d,\"status\":\"%s\",\"total_ms\":%.3f,\"phases\":{%s}}\n"
        (json_escape p.p_suite) (json_escape p.p_program) (json_escape p.p_config)
        (json_escape p.p_arch) (json_escape p.p_digest) p.p_text_bytes p.p_insns
        p.p_resyncs p.p_truth p.p_diags p.p_attempts (json_escape p.p_status)
        p.p_total_ms phases)
    r.profiles

(* ------------------------------------------------------------------ *)
(* Run manifests                                                      *)
(* ------------------------------------------------------------------ *)

(* Version of the manifest JSONL format; bump on any key change. *)
let manifest_schema = 1

let profile_key p = p.p_suite ^ "/" ^ p.p_program ^ "[" ^ p.p_config ^ "]"

(* The run digest: an MD5 over every binary's identity and content digest,
   one "key=digest" line per profile row in plan order.  Volatile fields
   (status, attempts, timings) are excluded, so the digest identifies the
   analyzed corpus content — two runs of the same corpus share it whatever
   their --jobs, --chaos seed, or shedding behaviour.  Requires profiling
   to have been on ({!options.profile}); an unprofiled run digests the
   empty row set. *)
let run_digest r =
  let buf = Buffer.create 4096 in
  List.iter
    (fun p ->
      Buffer.add_string buf (profile_key p);
      Buffer.add_char buf '=';
      Buffer.add_string buf p.p_digest;
      Buffer.add_char buf '\n')
    r.profiles;
  Digest.to_hex (Digest.string (Buffer.contents buf))

type manifest_meta = {
  m_experiment : string;
  m_jobs : int;
  m_chaos : int option;
  m_profile_art : string option;
  m_quarantine_art : string option;
  m_trace_art : string option;
  m_metrics_art : string option;
}

let write_manifest oc ~meta (opts : options) r =
  let opt_str = function
    | None -> "null"
    | Some s -> "\"" ^ json_escape s ^ "\""
  in
  let opt_int = function None -> "null" | Some n -> string_of_int n in
  Printf.fprintf oc
    "{\"schema\":%d,\"kind\":\"run\",\"digest\":\"%s\",\"experiment\":\"%s\",\"seed\":%d,\"scale\":%g,\"jobs\":%d,\"chaos\":%s,\"timing\":%b,\"binaries\":%d,\"functions\":%d,\"quarantined\":%d,\"artifacts\":{\"profile\":%s,\"quarantine\":%s,\"trace\":%s,\"metrics\":%s}}\n"
    manifest_schema (run_digest r)
    (json_escape meta.m_experiment)
    opts.seed opts.scale meta.m_jobs (opt_int meta.m_chaos) opts.timing
    r.binaries r.functions
    (List.length r.failures)
    (opt_str meta.m_profile_art)
    (opt_str meta.m_quarantine_art)
    (opt_str meta.m_trace_art) (opt_str meta.m_metrics_art);
  List.iter
    (fun p ->
      Printf.fprintf oc
        "{\"schema\":%d,\"kind\":\"binary\",\"suite\":\"%s\",\"program\":\"%s\",\"config\":\"%s\",\"arch\":\"%s\",\"digest\":\"%s\",\"status\":\"%s\",\"attempts\":%d,\"text_bytes\":%d,\"insns\":%d,\"resyncs\":%d,\"truth\":%d}\n"
        manifest_schema (json_escape p.p_suite) (json_escape p.p_program)
        (json_escape p.p_config) (json_escape p.p_arch) (json_escape p.p_digest)
        (json_escape p.p_status) p.p_attempts p.p_text_bytes p.p_insns
        p.p_resyncs p.p_truth)
    r.profiles

(* A shed row's clock measured the degraded anchored-only analysis, not
   the full pipeline: ranking it against ok rows by total_ms silently
   presents the corner that was cut as speed.  Shed rows are excluded
   from the ranking and reported separately. *)
let top_slow r k =
  if k <= 0 then []
  else
    (* Stable on ties so equal-cost rows keep plan order. *)
    let sorted =
      List.stable_sort
        (fun a b -> compare b.p_total_ms a.p_total_ms)
        (List.filter (fun p -> p.p_status <> "shed") r.profiles)
    in
    List.filteri (fun i _ -> i < k) sorted

let render_top_slow r k =
  let shed = List.filter (fun p -> p.p_status = "shed") r.profiles in
  match (top_slow r k, shed) with
  | [], [] -> ""
  | ps, shed ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "SLOWEST BINARIES (top %d of %d profiled)\n" (List.length ps)
         (List.length r.profiles));
    if ps <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "  %-34s %-22s %10s %9s %8s  %s\n" "binary" "config"
           "total(ms)" "insns" "resyncs" "status");
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "  %-34s %-22s %10.3f %9d %8d  %s\n"
               (p.p_suite ^ "/" ^ p.p_program)
               p.p_config p.p_total_ms p.p_insns p.p_resyncs p.p_status))
        ps
    end;
    if shed <> [] then
      Buffer.add_string buf
        (Printf.sprintf
           "  %d shed (degraded under deadline pressure; timings not comparable, excluded from ranking)\n"
           (List.length shed));
    Buffer.contents buf
