(** The end-to-end experiment driver: walks the dataset's work plan and
    fills every table/figure accumulator, optionally across several
    domains.

    [scale] trades corpus size for wall-clock time; 1.0 builds suites with
    the paper's program counts.  All numbers are deterministic in [seed]
    except the timing columns (which [timing = false] pins to zero).

    Every entry point takes a [?jobs] parameter (default:
    [Domain.recommended_domain_count ()]).  Parallel runs are exact: each
    worker folds a private accumulator over the plan items it claims, and
    the main domain merges the partial results in plan order, so the
    output is byte-identical to [~jobs:1] whichever way the corpus was
    partitioned. *)

type options = {
  seed : int;
  scale : float;
  progress : bool;
      (** print a live [done/total  rate  ETA] status line to stderr,
          finishing with one exact [done/total] summary line that also
          reports quarantined and retried binary counts (nothing is
          printed for an empty plan) *)
  timing : bool;
      (** measure per-binary wall-clock for Table III; [false] zeroes the
          timing columns and makes rendered output fully deterministic *)
  max_seconds : float option;
      (** per-binary wall-clock budget ({!Cet_util.Deadline}); an expired
          binary is quarantined without retry *)
  keep_going : bool;
      (** [true] (the default): a failing binary is quarantined into
          {!results.failures} and the run continues.  [false] (fail-fast):
          the first failure re-raises with its backtrace. *)
  fault : (Cet_corpus.Dataset.binary -> bool) option;
      (** test hook: binaries selected by this predicate fail with an
          injected exception, exercising the quarantine path *)
  triage : bool;
      (** error forensics: rerun the full FunSeeker configuration with
          decision provenance on every binary and bucket each false
          positive / false negative by root cause into
          {!results.triage}.  Off by default — the extra provenance pass
          costs a second full-config run per binary. *)
  profile : bool;
      (** per-binary profiling: emit one {!profile} record per evaluated
          binary into {!results.profiles} (identity, phase time split,
          decode volume, retry/quarantine status).  Off by default; the
          disabled path adds no allocation to the per-binary loop. *)
  chaos : int option;
      (** seeded scheduler-level fault injection
          ({!Cet_util.Work_queue.Chaos.default}): worker stalls, per-item
          delays, transient dispatch faults.  Chaos changes timing and
          scheduling but never results — the tables are byte-identical to
          a fault-free run whatever the seed. *)
  run_seconds : float option;
      (** run-wide wall-clock budget, armed as one
          {!Cet_util.Deadline} around every worker's whole loop; the
          shedding policy measures remaining budget against it.  Distinct
          from [max_seconds], which bounds a single binary. *)
  shed_fraction : float;
      (** degrade a binary to the anchored-only analysis when the
          run-wide deadline's remaining-budget fraction drops below this
          (0.1 by default); only meaningful when [run_seconds] is set *)
  breaker : Cet_util.Work_queue.Breaker.config option;
      (** per-program circuit breaker: after [threshold] consecutive
          failures the program's remaining binaries are fast-failed
          ([cooldown] of them, then one probe).  [None] disables it. *)
}

val default_options : options
(** [keep_going = true], no deadline, no fault injection. *)

(** One quarantined binary: identity, the error of its final attempt, and
    that attempt's backtrace. *)
type failure = {
  f_suite : string;
  f_program : string;
  f_config : string;  (** {!Cet_compiler.Options.to_string} descriptor *)
  f_attempts : int;
      (** 1 for non-retryable failures (deadline), 2 after a retry, 0 for
          a circuit-breaker fast-fail (the work never ran) *)
  f_error : string;
  f_backtrace : string;
  f_journal : Cet_telemetry.Journal.event list;
      (** the worker's last flight-recorder events at quarantine time (its
          black box); [[]] when the journal is disabled *)
}

(** One evaluated binary's profile: identity, decode volume, the phase
    time split, and how its evaluation ended.  Under [timing = false]
    every clock figure is zero, so the row is deterministic in the seed. *)
type profile = {
  p_suite : string;
  p_program : string;
  p_config : string;  (** {!Cet_compiler.Options.to_string} descriptor *)
  p_arch : string;  (** ["x86"] or ["x64"] *)
  p_digest : string;
      (** {!content_digest} of the stripped ELF bytes — the binary's
          stable content identity, present whatever [p_status] *)
  p_text_bytes : int;  (** [.text] size ({!Cet_disasm.Substrate.facts}) *)
  p_insns : int;  (** instructions decoded by the linear sweep *)
  p_resyncs : int;  (** sweep desynchronisation events *)
  p_truth : int;  (** deduplicated ground-truth entry count *)
  p_diags : int;  (** journal-observed diagnostics during this binary *)
  p_attempts : int;  (** 1, or 2 when the first attempt was retried *)
  p_status : string;
      (** ["ok"], ["shed"] (evaluated degraded under deadline pressure),
          ["quarantined"], or ["breaker-skip"] *)
  p_total_ms : float;
  p_phases : (string * float) list;
      (** fixed vocabulary in fixed order — study, configs, funseeker,
          ida, ghidra, fetch, triage — each in milliseconds *)
}

val profile_phase_names : string list

val content_digest : string -> string
(** Hex MD5 of a binary's stripped ELF bytes: its content identity.  The
    corpus is deterministic in the seed, so the digest is stable across
    runs, [--jobs], and [--chaos] — it keys every cross-run join
    ([cetstat diff]) and, later, the content-addressed result store. *)

val ewma_update : alpha:float -> prev:float option -> float -> float
(** One exponentially-weighted-moving-average step: the first observation
    seeds the average ([prev = None]), later ones blend with weight
    [alpha] on the new sample.  The [--progress] ETA uses this over
    inter-milestone throughput. *)

type results = {
  table1 : Tables.Table1.t;
  fig3 : Tables.Fig3.t;
  table2 : Tables.Table2.t;
  table3 : Tables.Table3.t;
  triage : Tables.Triage.t;
      (** root-cause buckets per configuration; empty unless
          {!options.triage} was set *)
  binaries : int;  (** successfully evaluated binaries *)
  functions : int;  (** total ground-truth functions across the dataset *)
  failures : failure list;  (** quarantined binaries, in plan order *)
  profiles : profile list;
      (** per-binary profiles in plan order (including quarantined
          binaries, with zeroed analysis figures); empty unless
          {!options.profile} was set *)
}

val run :
  ?profiles:Cet_corpus.Profile.t list ->
  ?configs:Cet_compiler.Options.t list ->
  ?jobs:int ->
  options ->
  results
(** Fault-isolated: each binary is evaluated into a fresh accumulator that
    is merged only on success, so a crashing or injected-fault binary
    contributes nothing (no partial table rows).  Since PR 8 the engine is
    {!Cet_util.Work_queue}: a work-stealing Domain pool with bounded
    admission runs the plan items, and each binary is a guarded unit —
    retried once with backoff (deadline expiries are not), circuit-broken
    per program, shed to the anchored-only analysis under [run_seconds]
    pressure — then quarantined under [keep_going], or re-raised under
    fail-fast.  Scheduler events flow into {!Cet_telemetry.Journal} and
    the metric registry.  The merged tables are byte-identical across
    [jobs] — and across any [chaos] seed — for the surviving set. *)

(** The scheduler's Journal/Registry bridge is
    {!Cet_telemetry.Bridge.scheduler_observer}, shared with the fuzz
    driver. *)

val render_all : results -> string

val render_failures : results -> string
(** Human-readable quarantine summary; [""] when nothing failed. *)

val quarantine_schema : int
(** Version stamped into every quarantine row's [schema] field. *)

val write_quarantine : out_channel -> results -> unit
(** One JSON object per failure per line ([schema]/[suite]/[program]/
    [config]/[attempts]/[error]/[backtrace]/[journal]) — the
    [--quarantine-out] report format.  [journal] is the failure's
    flight-recorder black box, one object per event. *)

val read_quarantine : string -> (failure list, string) result
(** Parse a whole quarantine JSONL document back into failure records —
    the round-trip inverse of {!write_quarantine} up to the journal
    events' ring ids (not serialised; readers see [-1]).  Rejects rows
    whose [schema] differs from {!quarantine_schema}. *)

val write_profiles : out_channel -> results -> unit
(** One JSON object per profile per line, keys in a fixed order ([suite],
    [program], [config], [arch], [digest], [text_bytes], [insns],
    [resyncs], [truth], [diags], [attempts], [status], [total_ms],
    [phases]) — the [--profile-out] report format.  Rows are in plan
    order and, under [timing = false], byte-identical across [~jobs]. *)

val manifest_schema : int
(** Version stamped into every manifest row's [schema] field. *)

val profile_key : profile -> string
(** ["suite/program[config]"] — the identity half of a manifest row. *)

val run_digest : results -> string
(** Hex MD5 over every profile row's ["key=digest"] line in plan order:
    the whole run's content identity.  Volatile fields (status, attempts,
    timings) are excluded, so two runs over the same corpus share the
    digest whatever their [--jobs], [--chaos] seed, or shedding.
    Meaningful only when {!options.profile} was on (the digest of an
    unprofiled run covers zero rows). *)

type manifest_meta = {
  m_experiment : string;  (** the positional EXPERIMENT argument *)
  m_jobs : int;
  m_chaos : int option;
  m_profile_art : string option;  (** [--profile-out] path, when given *)
  m_quarantine_art : string option;
  m_trace_art : string option;
  m_metrics_art : string option;
}

val write_manifest : out_channel -> meta:manifest_meta -> options -> results -> unit
(** The [--manifest-out] run manifest: one schema-tagged [kind:"run"]
    header (run digest, options, corpus scale/jobs/chaos seed, pointers
    to the run's other artifacts), then one [kind:"binary"] row per
    profile (identity, content digest, status/attempts, decode volume).
    Parsed back by [Cet_obs.Manifest].  Requires {!options.profile};
    under [timing = false] the binary rows are byte-identical across
    [--jobs] and [--chaos]. *)

val top_slow : results -> int -> profile list
(** The [k] profiles with the largest [p_total_ms], ties in plan order.
    Shed rows are excluded — their clock measured the degraded analysis,
    so ranking them among full evaluations would present the cut corner
    as speed. *)

val render_top_slow : results -> int -> string
(** Aligned table over {!top_slow}, plus one line counting the shed rows
    excluded from the ranking; [""] when nothing was profiled. *)

val arch_name : Cet_x86.Arch.t -> string
(** Table III row key: ["x86"] or ["x64"]. *)

type manual_endbr_report = {
  full : Metrics.counts;  (** FunSeeker under [-fcf-protection=full] *)
  manual : Metrics.counts;  (** under [-mmanual-endbr] *)
}

val manual_endbr_binary : Cet_corpus.Dataset.binary -> Metrics.counts * int
(** The ablation's per-binary unit of work: FunSeeker's counts against the
    binary's deduplicated ground truth, plus the size of that deduplicated
    entry set.  The integer always equals [tp + fn] of the counts —
    duplicate truth addresses (aliased symbols) must not inflate it. *)

val manual_endbr_ablation : ?jobs:int -> options -> manual_endbr_report
(** The §VI discussion: recompile a Coreutils-sized suite with
    [-mmanual-endbr] (end-branches only at address-taken functions) and
    measure how much FunSeeker degrades.  The paper predicts a marginal
    impact (~1.24% of functions are only reachable via tail jumps or
    unreachable). *)

val render_manual_endbr : manual_endbr_report -> string

type related_work_report = {
  byteweight_in : Metrics.counts;  (** trained and tested on GCC/x86-64 *)
  byteweight_ood : Metrics.counts;  (** same model tested on Clang/x86 *)
  nucleus_c : Metrics.counts;  (** Nucleus-like on C binaries *)
  nucleus_cpp : Metrics.counts;  (** Nucleus-like on C++ binaries *)
  funseeker_ref : Metrics.counts;  (** FunSeeker on the same test set *)
}

val related_work : ?jobs:int -> options -> related_work_report
(** The §VII-B comparators: train a ByteWeight-like prefix-tree on part of
    a suite and evaluate it in- and out-of-distribution, and run the
    Nucleus-like CFG analysis on C and C++ binaries.  FunSeeker runs on the
    same test set for reference (and needs no training). *)

val render_related_work : related_work_report -> string

type inline_data_report = {
  clean_linear : Metrics.counts;
  clean_anchored : Metrics.counts;
  dirty_linear : Metrics.counts;  (** jump tables placed inline in [.text] *)
  dirty_anchored : Metrics.counts;
  dirty_resyncs : int;
      (** linear-sweep resynchronisation events on the dirty set — one per
          desynchronised byte run, not one per undecodable byte *)
}

val inline_data : ?jobs:int -> options -> inline_data_report
(** The §VI inline-data experiment: compile a binutils-like suite twice —
    normally, and with jump tables embedded in [.text] (hand-written-
    assembly style) — and compare plain linear sweep against the
    end-branch-anchored sweep. *)

val render_inline_data : inline_data_report -> string

type arm_report = {
  arm_bti : Metrics.counts;  (** BTI seeker on -mbranch-protection=bti builds *)
  arm_legacy : Metrics.counts;  (** same seeker on unprotected builds *)
  arm_binaries : int;
}

val arm_bti : ?jobs:int -> options -> arm_report
(** The §VI ARM extension over a corpus slice: every suite's programs
    lowered by the AArch64 backend, identified by the ported seeker, with a
    legacy (no-BTI) control group. *)

val render_arm : arm_report -> string
