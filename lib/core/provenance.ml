module Linear = Cet_disasm.Linear

type filter_decision =
  | Kept
  | Filtered_indirect_return of { call_site : int }
  | Filtered_landing_pad

type vote = {
  v_site : int;
  v_lo : int;
  v_hi : int;
  v_beyond : bool;
  v_outside_ref : bool;
  v_selected : bool;
}

type evidence = {
  e_addr : int;
  mutable e_endbr : bool;
  mutable e_filter : filter_decision option;
  mutable e_call_sites : int list;
  mutable e_call_target : bool;
  mutable e_jmp_sites : int list;
  mutable e_jmp_target : bool;
  mutable e_votes : vote list;
  mutable e_selected : bool;
  mutable e_kept : bool;
}

type t = { tbl : (int, evidence) Hashtbl.t }

let create () = { tbl = Hashtbl.create 256 }
let find t addr = Hashtbl.find_opt t.tbl addr

let get t addr =
  match Hashtbl.find_opt t.tbl addr with
  | Some e -> e
  | None ->
    let e =
      {
        e_addr = addr;
        e_endbr = false;
        e_filter = None;
        e_call_sites = [];
        e_call_target = false;
        e_jmp_sites = [];
        e_jmp_target = false;
        e_votes = [];
        e_selected = false;
        e_kept = false;
      }
    in
    Hashtbl.replace t.tbl addr e;
    e

let list t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
  |> List.sort (fun a b -> Int.compare a.e_addr b.e_addr)

let kept t =
  Hashtbl.fold (fun addr e acc -> if e.e_kept then addr :: acc else acc) t.tbl []
  |> List.sort Int.compare

(* Sites arrive in address order and are consed; reverse on record close is
   avoided by appending lazily — the lists are tiny, so keep them in
   arrival order by reversing at read time in [explain]. *)
let record_endbr t addr = (get t addr).e_endbr <- true
let record_filter t addr d = (get t addr).e_filter <- Some d

let record_call t ~site ~target =
  let e = get t target in
  e.e_call_sites <- site :: e.e_call_sites

let mark_call_target t addr = (get t addr).e_call_target <- true

let record_jmp t ~site ~target =
  let e = get t target in
  e.e_jmp_sites <- site :: e.e_jmp_sites

let mark_jmp_target t addr = (get t addr).e_jmp_target <- true

let record_vote t ~target v =
  let e = get t target in
  e.e_votes <- v :: e.e_votes

let mark_selected t addr = (get t addr).e_selected <- true
let mark_kept t addr = (get t addr).e_kept <- true

(* ---- Error forensics -------------------------------------------------- *)

type bucket =
  | Fp_landing_pad
  | Fp_unfiltered_endbr
  | Fp_tail_call
  | Fp_jump_target
  | Fp_call_target
  | Fp_other
  | Fn_filtered_true_entry
  | Fn_missed_tailcall
  | Fn_no_anchor
  | Fn_other

let bucket_name = function
  | Fp_landing_pad -> "fp-landing-pad"
  | Fp_unfiltered_endbr -> "fp-unfiltered-endbr"
  | Fp_tail_call -> "fp-tail-call"
  | Fp_jump_target -> "fp-jump-target"
  | Fp_call_target -> "fp-call-target"
  | Fp_other -> "fp-other"
  | Fn_filtered_true_entry -> "fn-filtered-true-entry"
  | Fn_missed_tailcall -> "fn-missed-tailcall"
  | Fn_no_anchor -> "fn-no-anchor"
  | Fn_other -> "fn-other"

let bucket_fp t ~pads addr =
  if Linear.mem_sorted pads addr then Fp_landing_pad
  else
    match find t addr with
    | None -> Fp_other
    | Some e ->
      if e.e_endbr then Fp_unfiltered_endbr
      else if e.e_selected then Fp_tail_call
      else if e.e_call_target then Fp_call_target
      else if e.e_jmp_target then Fp_jump_target
      else Fp_other

let bucket_fn t addr =
  match find t addr with
  | None -> Fn_no_anchor
  | Some e -> (
    match e.e_filter with
    | Some (Filtered_indirect_return _ | Filtered_landing_pad) ->
      Fn_filtered_true_entry
    | Some Kept | None ->
      if e.e_jmp_target then Fn_missed_tailcall
      else if not (e.e_endbr || e.e_call_target || e.e_jmp_target) then Fn_no_anchor
      else Fn_other)

let errors t ~truth ~pads =
  let predicted = kept t in
  (* Both lists are sorted distinct; one linear walk yields FPs and FNs in
     one address-ordered stream. *)
  let rec walk acc p q =
    match (p, q) with
    | [], [] -> List.rev acc
    | f :: p', [] -> walk ((f, bucket_fp t ~pads f) :: acc) p' []
    | [], g :: q' -> walk ((g, bucket_fn t g) :: acc) [] q'
    | f :: p', g :: q' ->
      if f = g then walk acc p' q'
      else if f < g then walk ((f, bucket_fp t ~pads f) :: acc) p' q
      else walk ((g, bucket_fn t g) :: acc) p q'
  in
  walk [] predicted (List.sort_uniq Int.compare truth)

(* ---- Explanation ------------------------------------------------------ *)

let hex a = Printf.sprintf "0x%x" a

let sites_str sites =
  String.concat ", " (List.rev_map hex sites)

let explain t addr =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) fmt in
  (match find t addr with
  | None ->
    Buffer.add_string buf
      (Printf.sprintf "%s — verdict: NOT A CANDIDATE\n" (hex addr));
    line
      "no end-branch at the address, no direct-call or direct-jump reference \
       to it: invisible to every heuristic"
  | Some e ->
    Buffer.add_string buf
      (Printf.sprintf "%s — verdict: %s\n" (hex addr)
         (if e.e_kept then "KEPT (identified as a function entry)"
          else "REJECTED (candidate, not in the identified set)"));
    line "end-branch at address      : %s" (if e.e_endbr then "yes" else "no");
    if e.e_endbr then begin
      match e.e_filter with
      | None -> line "FILTERENDBR                : not run (filter disabled in this configuration)"
      | Some Kept ->
        line
          "FILTERENDBR                : kept (not an indirect-return site, not \
           a landing pad)"
      | Some (Filtered_indirect_return { call_site }) ->
        line
          "FILTERENDBR                : filtered — return target of the \
           indirect-return call at %s (setjmp-style import)"
          (hex call_site)
      | Some Filtered_landing_pad ->
        line "FILTERENDBR                : filtered — exception landing pad (catch block)"
    end;
    line "direct-call target (C)     : %s%s"
      (if e.e_call_target then "yes" else if e.e_call_sites <> [] then "out-of-range" else "no")
      (if e.e_call_sites = [] then ""
       else Printf.sprintf " — called from %s" (sites_str e.e_call_sites));
    line "direct-jump target (J)     : %s%s"
      (if e.e_jmp_target then "yes" else "no")
      (if e.e_jmp_sites = [] then ""
       else Printf.sprintf " — jumped to from %s" (sites_str e.e_jmp_sites));
    List.iter
      (fun v ->
        line
          "  SELECTTAILCALL vote from %s (extent %s..%s): beyond extent: %s, \
           outside refs: %s -> %s"
          (hex v.v_site) (hex v.v_lo) (hex v.v_hi)
          (if v.v_beyond then "yes" else "no")
          (if v.v_outside_ref then "yes" else "no")
          (if v.v_selected then "selected" else "rejected"))
      (List.rev e.e_votes);
    if e.e_jmp_target then
      line "tail-call selection (J')   : %s"
        (if e.e_selected then "selected"
         else if e.e_votes = [] then "not voted on (selection not run or site unowned)"
         else "rejected by every vote"));
  Buffer.contents buf
