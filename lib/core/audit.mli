(** IBT coverage audit: verify that a binary satisfies the structural
    contract CET enforcement relies on — every statically visible indirect
    branch target begins with an end-branch.

    This is the defensive-side complement of FunSeeker: the same syntactic
    facts the identifier exploits become properties a hardened binary must
    uphold (a `notrack`-free indirect jump to an unmarked target faults at
    run time with IBT enabled). *)

type violation = {
  v_target : int;  (** the address that should carry an end-branch *)
  v_reason : reason;
}

and reason =
  | Address_taken  (** materialised by [lea]/[mov]/[push] in code *)
  | Data_pointer  (** stored as a code pointer in [.rodata] *)
  | Landing_pad  (** C++ catch block entered by the unwinder *)
  | Plt_entry  (** PLT stubs are [jmp \[GOT\]] targets *)

type report = {
  violations : violation list;
  checked : int;  (** candidate targets examined *)
  marked : int;  (** candidates already carrying an end-branch *)
  superfluous : int;
      (** end-branches at none of: candidate target, function entry pattern,
          indirect-return site — dead markers that widen the attack surface *)
}

val audit : Cet_elf.Reader.t -> report
(** Raises [Invalid_argument] when the image has no [.text]. *)

val audit_st : Cet_disasm.Substrate.t -> report
(** {!audit} over a shared per-binary substrate (sweep, index arrays and
    landing pads reused across consumers). *)

val reason_to_string : reason -> string
