module Linear = Cet_disasm.Linear
module Substrate = Cet_disasm.Substrate

type endbr_location =
  | At_function_entry
  | After_indirect_return_call
  | At_landing_pad
  | Elsewhere

let classify_endbrs_st st ~truth =
  let ix = Substrate.indexes st in
  let truth_set = Hashtbl.create (max 16 (List.length truth)) in
  List.iter (fun a -> Hashtbl.replace truth_set a ()) truth;
  let pads = Substrate.landing_pads st in
  let reader = Substrate.reader st in
  let plt_map = Parse.plt reader in
  let ir_returns = Hashtbl.create 8 in
  Array.iteri
    (fun k target ->
      if Parse.in_plt plt_map target then
        match Parse.plt_name plt_map target with
        | Some name when List.mem name Parse.indirect_return_imports ->
          Hashtbl.replace ir_returns ix.Substrate.call_rets.(k) ()
        | _ -> ())
    ix.Substrate.call_tgts;
  List.map
    (fun e ->
      let loc =
        if Hashtbl.mem truth_set e then At_function_entry
        else if Hashtbl.mem ir_returns e then After_indirect_return_call
        else if Linear.mem_sorted pads e then At_landing_pad
        else Elsewhere
      in
      (e, loc))
    (Array.to_list ix.Substrate.endbrs)

let classify_endbrs reader ~truth = classify_endbrs_st (Substrate.create reader) ~truth

type props = {
  endbr_at_head : bool;
  dir_jmp_target : bool;
  dir_call_target : bool;
}

let function_props_st st ~truth =
  let ix = Substrate.indexes st in
  List.map
    (fun entry ->
      ( entry,
        {
          endbr_at_head = Linear.mem_sorted ix.Substrate.endbrs entry;
          dir_jmp_target = Linear.mem_sorted ix.Substrate.jmp_targets entry;
          dir_call_target = Linear.mem_sorted ix.Substrate.call_targets entry;
        } ))
    truth

let function_props reader ~truth = function_props_st (Substrate.create reader) ~truth

let props_key p =
  match (p.endbr_at_head, p.dir_jmp_target, p.dir_call_target) with
  | true, false, false -> "endbr"
  | true, false, true -> "endbr+call"
  | true, true, false -> "endbr+jmp"
  | true, true, true -> "endbr+jmp+call"
  | false, false, true -> "call"
  | false, true, true -> "jmp+call"
  | false, true, false -> "jmp"
  | false, false, false -> "none"
