(** Decision provenance: the per-address evidence behind every FunSeeker
    verdict, and the error forensics built on top of it.

    The paper's Section V insight is {e why} identification succeeds or
    fails — an end-branch filtered after an indirect-return call, a
    landing pad mistaken for an entry, a tail-call vote over a jump
    target — yet an aggregate P/R/F1 hides all of it.  A provenance
    record keeps, for every candidate address, the sources that proposed
    it (end-branch, direct-call target, direct-jump target), every filter
    decision with its reason, every tail-call vote with its inputs, and
    the final verdict, so any prediction (or miss) can be explained after
    the fact.

    Recording is opt-in: the production [Funseeker.analyze_st] path never
    touches this module; only [Funseeker.analyze_prov] builds a record,
    so the disabled path stays allocation-free (asserted by a
    [Gc.minor_words] budget test). *)

(** FILTERENDBR's decision on one end-branch candidate.  [None] in the
    evidence record means the filter never ran (configurations 1). *)
type filter_decision =
  | Kept  (** survived both filter clauses *)
  | Filtered_indirect_return of { call_site : int }
      (** dropped: the end-branch is the return target of the direct call
          at [call_site] into an indirect-return import (setjmp & co.) *)
  | Filtered_landing_pad
      (** dropped: the end-branch heads an exception landing pad *)

(** One SELECTTAILCALL vote: a jump site referencing the candidate, with
    the extent of the function owning the site and the two clause
    outcomes.  A target is selected when some vote has both clauses
    true. *)
type vote = {
  v_site : int;  (** address of the jump instruction *)
  v_lo : int;  (** extent of the function containing the site *)
  v_hi : int;
  v_beyond : bool;  (** target lands beyond [v_lo, v_hi) *)
  v_outside_ref : bool;  (** target also referenced from another function *)
  v_selected : bool;  (** [v_beyond && v_outside_ref] *)
}

(** Everything recorded about one candidate address.  Source fields are
    facts about the binary (recorded whatever the configuration); filter
    and vote fields are filled only by the phases the configuration
    runs. *)
type evidence = {
  e_addr : int;
  mutable e_endbr : bool;  (** heads an end-branch instruction (in E) *)
  mutable e_filter : filter_decision option;
  mutable e_call_sites : int list;
      (** direct-call sites targeting the address, address order *)
  mutable e_call_target : bool;  (** in-range direct-call target (in C) *)
  mutable e_jmp_sites : int list;
      (** unconditional direct-jump sites targeting the address *)
  mutable e_jmp_target : bool;  (** in-range direct-jump target (in J) *)
  mutable e_votes : vote list;  (** SELECTTAILCALL votes, site order *)
  mutable e_selected : bool;  (** selected as a tail-call target (in J') *)
  mutable e_kept : bool;  (** final verdict: in the identified set *)
}

type t

val create : unit -> t
val find : t -> int -> evidence option
val get : t -> int -> evidence
(** The evidence record for an address, created empty on first use. *)

val list : t -> evidence list
(** All evidence records in address order. *)

val kept : t -> int list
(** Addresses with a kept verdict, sorted — equals the analysis result's
    function list (asserted by the consistency tests). *)

(** {1 Recording} (used by [Funseeker.analyze_prov]) *)

val record_endbr : t -> int -> unit
val record_filter : t -> int -> filter_decision -> unit
val record_call : t -> site:int -> target:int -> unit
val mark_call_target : t -> int -> unit
val record_jmp : t -> site:int -> target:int -> unit
val mark_jmp_target : t -> int -> unit
val record_vote : t -> target:int -> vote -> unit
val mark_selected : t -> int -> unit
val mark_kept : t -> int -> unit

(** {1 Error forensics} *)

(** Root-cause bucket of one false positive or false negative.  The
    taxonomy mirrors the paper's Section V failure discussion. *)
type bucket =
  | Fp_landing_pad  (** predicted address is an exception landing pad *)
  | Fp_unfiltered_endbr
      (** end-branch-headed non-entry that FILTERENDBR kept (or the
          configuration never filtered) *)
  | Fp_tail_call  (** tail-call-selected jump target that is no entry *)
  | Fp_jump_target
      (** unselected jump target kept by a no-selection configuration *)
  | Fp_call_target  (** direct-call target that is no entry *)
  | Fp_other
  | Fn_filtered_true_entry
      (** true entry whose end-branch FILTERENDBR dropped *)
  | Fn_missed_tailcall
      (** true entry that is a jump target but lost the tail-call vote
          (or the configuration ignored jump targets) *)
  | Fn_no_anchor
      (** true entry with no end-branch, call or jump evidence at all —
          invisible to every heuristic *)
  | Fn_other

val bucket_name : bucket -> string
(** Stable kebab-case identifier, e.g. ["fn-no-anchor"] — the triage
    table / JSONL key. *)

val errors : t -> truth:int list -> pads:int array -> (int * bucket) list
(** Join the kept set against the (sorted, distinct) ground truth and
    bucket every false positive and false negative by root cause, in
    address order.  [pads] is the binary's sorted landing-pad set
    ({!Cet_disasm.Substrate.landing_pads}). *)

val explain : t -> int -> string
(** The full evidence chain for one address, human-readable: candidate
    sources with their referencing sites, the FILTERENDBR decision and
    reason, every tail-call vote with its inputs, and the final verdict.
    Addresses that never became candidates say so explicitly. *)
