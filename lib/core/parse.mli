(** PARSE: the binary-level inputs of the FunSeeker algorithm (Alg. 1,
    line 2) — the [.text] section, the PLT import map, and the C++ exception
    information (landing-pad addresses recovered from [.eh_frame] LSDA
    pointers into [.gcc_except_table]). *)

type plt_map = {
  plt_lo : int;
  plt_hi : int;  (** [.plt] extent, exclusive *)
  entries : (int * string) list;  (** entry vaddr → imported name *)
}

val plt : Cet_elf.Reader.t -> plt_map
(** Recover the PLT map: relocation order gives entry order (entry [i] of
    [.rel(a).plt] owns the PLT slot at [plt_base + 16*(i+1)]).  Returns an
    empty map when the binary has no PLT. *)

val plt_name : plt_map -> int -> string option
(** Name of the import whose PLT entry starts at the given address. *)

val in_plt : plt_map -> int -> bool

val landing_pads : Cet_elf.Reader.t -> int list
(** Sorted landing-pad (catch-block) virtual addresses, or [] for binaries
    without exception tables. *)

val landing_pads_diag : diag:Cet_util.Diag.Collector.t -> Cet_elf.Reader.t -> int list
(** Non-raising {!landing_pads} for untrusted binaries: a corrupt
    [.eh_frame] contributes only its salvageable frame prefix, corrupt or
    out-of-range LSDAs are skipped individually, and every degradation is
    reported into [diag] ([eh/eh-frame], [core/lsda-skipped]).  Never
    raises. *)

val text_section : Cet_elf.Reader.t -> Cet_elf.Reader.section option

val indirect_return_imports : string list
(** GCC's predefined indirect-return functions, the FILTERENDBR allowlist:
    [setjmp], [_setjmp], [sigsetjmp], [savectx], [vfork], [getcontext]. *)
