module Linear = Cet_disasm.Linear
module Substrate = Cet_disasm.Substrate
module Decoder = Cet_x86.Decoder

type violation = { v_target : int; v_reason : reason }

and reason = Address_taken | Data_pointer | Landing_pad | Plt_entry

type report = {
  violations : violation list;
  checked : int;
  marked : int;
  superfluous : int;
}

let reason_to_string = function
  | Address_taken -> "address taken in code"
  | Data_pointer -> "code pointer in data"
  | Landing_pad -> "exception landing pad"
  | Plt_entry -> "PLT entry"

let audit_st st =
  let reader = Substrate.reader st in
  let sweep = Substrate.sweep st in
  let ix = Substrate.indexes st in
  let insn_start a = Linear.index_of sweep a <> None in
  let endbrs = ix.Substrate.endbrs in
  (* PLT entries carry their own end-branches (checked against raw bytes:
     the PLT is outside .text). *)
  let plt = Parse.plt reader in
  let plt_section = Cet_elf.Reader.find_section reader ".plt" in
  let arch = Cet_elf.Reader.arch reader in
  let plt_entry_marked addr =
    match plt_section with
    | None -> false
    | Some s -> (
      let off = addr - s.vaddr in
      match Decoder.decode arch s.data ~base:s.vaddr ~off with
      | Ok { kind = Decoder.Endbr64; _ } -> arch = Cet_x86.Arch.X64
      | Ok { kind = Decoder.Endbr32; _ } -> arch = Cet_x86.Arch.X86
      | _ -> false)
  in
  (* Candidate indirect-branch targets. *)
  let candidates = Hashtbl.create 256 in
  let add_candidate target reason =
    if not (Hashtbl.mem candidates target) then Hashtbl.replace candidates target reason
  in
  (* 1. Addresses materialised in code that point at instruction starts:
     function pointers about to be called or escaped. *)
  Array.iter
    (fun (i : Decoder.ins) ->
      match i.kind with
      | Decoder.Addr_ref t when Linear.in_range sweep t && insn_start t ->
        add_candidate t Address_taken
      | _ -> ())
    sweep.insns;
  (* 2. Landing pads: the unwinder enters them indirectly.  (Jump tables in
     .rodata are exempt: compilers dispatch switches with NOTRACK.) *)
  Array.iter (fun lp -> add_candidate lp Landing_pad) (Substrate.landing_pads st);
  (* 3. Code pointers in writable data (callback tables). *)
  (match Cet_elf.Reader.find_section reader ".data" with
  | None -> ()
  | Some d ->
    let ptr = Cet_x86.Arch.ptr_size arch in
    for w = 0 to (String.length d.data / ptr) - 1 do
      let v = ref 0 in
      for b = ptr - 1 downto 0 do
        v := (!v lsl 8) lor Char.code d.data.[(w * ptr) + b]
      done;
      if Linear.in_range sweep !v && insn_start !v then add_candidate !v Data_pointer
    done);
  (* 4. PLT entries (targets of GOT-mediated jumps). *)
  List.iter (fun (addr, _name) -> add_candidate addr Plt_entry) plt.Parse.entries;
  (* Verdicts. *)
  let violations = ref [] in
  let marked = ref 0 in
  Hashtbl.iter
    (fun target reason ->
      let ok =
        match reason with
        | Plt_entry -> plt_entry_marked target
        | _ -> Linear.mem_sorted endbrs target
      in
      if ok then incr marked
      else violations := { v_target = target; v_reason = reason } :: !violations)
    candidates;
  (* Superfluous markers: end-branches that are neither candidate targets
     nor indirect-return continuation sites — conservative compiler
     over-marking (the paper's §III-B observation, and extra attack
     surface from the defender's perspective). *)
  let ir_returns = Hashtbl.create 8 in
  Array.iteri
    (fun k target ->
      if Parse.in_plt plt target then
        match Parse.plt_name plt target with
        | Some name when List.mem name Parse.indirect_return_imports ->
          Hashtbl.replace ir_returns ix.Substrate.call_rets.(k) ()
        | _ -> ())
    ix.Substrate.call_tgts;
  let superfluous =
    Array.fold_left
      (fun acc e ->
        if Hashtbl.mem candidates e || Hashtbl.mem ir_returns e then acc else acc + 1)
      0 endbrs
  in
  {
    violations =
      List.sort (fun a b -> Int.compare a.v_target b.v_target) !violations;
    checked = Hashtbl.length candidates;
    marked = !marked;
    superfluous;
  }

let audit reader = audit_st (Substrate.create reader)
