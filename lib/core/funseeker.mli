(** FunSeeker: function identification for CET-enabled binaries (Alg. 1).

    {[
      FunSeeker(bin):
        txt, exn ← PARSE(bin)
        E, C, J  ← DISASSEMBLE(txt)
        E'       ← FILTERENDBR(E, exn)
        J'       ← SELECTTAILCALL(J)
        return E' ∪ C ∪ J'
    ]}

    The four ablation configurations of Table II are expressed through
    {!config}: ① [E ∪ C], ② [E' ∪ C], ③ [E' ∪ C ∪ J], ④ [E' ∪ C ∪ J']. *)

type config = {
  filter_endbr : bool;  (** run FILTERENDBR (§IV-C) *)
  include_jump_targets : bool;  (** add direct-jump targets (J) *)
  select_tail_calls : bool;  (** restrict J to tail calls (§IV-D) *)
}

val config1 : config
(** E ∪ C. *)

val config2 : config
(** E' ∪ C. *)

val config3 : config
(** E' ∪ C ∪ J. *)

val config4 : config
(** E' ∪ C ∪ J' — the full FunSeeker. *)

val default_config : config
(** Same as {!config4}. *)

type result = {
  functions : int list;  (** identified entry addresses, sorted *)
  endbr_total : int;  (** |E| *)
  filtered_indirect_return : int;  (** end-branches dropped as setjmp-style return targets *)
  filtered_landing_pads : int;  (** end-branches dropped as catch blocks *)
  call_target_count : int;  (** |C| *)
  jump_target_count : int;  (** |J| *)
  tail_calls_selected : int;  (** |J'| *)
  resync_errors : int;  (** linear-sweep desynchronisation events (one per run) *)
}

val analyze : ?config:config -> ?anchored:bool -> Cet_elf.Reader.t -> result
(** Run FunSeeker on a parsed binary.  With [anchored] (default false) the
    DISASSEMBLE stage uses the end-branch-anchored sweep
    ({!Cet_disasm.Linear.sweep_anchored}), the §VI mitigation for binaries
    with inline data in [.text]. *)

val analyze_st :
  ?config:config -> ?anchored:bool -> Cet_disasm.Substrate.t -> result
(** Like {!analyze} but over a shared per-binary substrate: the sweep,
    the derived index arrays, and the landing-pad set are computed at most
    once per binary however many configurations (or other tools) consume
    them.  This is the entry point the evaluation harness uses. *)

val analyze_prov :
  ?config:config ->
  ?anchored:bool ->
  Cet_disasm.Substrate.t ->
  result * Provenance.t
(** {!analyze_st} with decision provenance: beside the usual result, a
    per-address evidence record of every candidate source, every
    FILTERENDBR decision with its reason, every SELECTTAILCALL vote with
    its inputs, and the final verdict.  The identified set is unchanged
    ([fst (analyze_prov st) = analyze_st st], test-asserted), and the
    plain {!analyze_st} path pays nothing for the feature — recording
    only happens through this entry point. *)

val analyze_sweep :
  ?config:config -> Cet_elf.Reader.t -> Cet_disasm.Linear.t -> result
(** Like {!analyze} but over a pre-computed linear sweep — lets the
    ablation harness share one DISASSEMBLE across the four configs. *)

val analyze_bytes : ?config:config -> ?anchored:bool -> string -> result
(** Convenience: parse ELF bytes then {!analyze}. *)

val empty_result : result
(** All-zero result — what the robust path returns when nothing is
    analyzable (no [.text], expired deadline). *)

val analyze_diag :
  ?config:config ->
  ?anchored:bool ->
  Cet_elf.Reader.t ->
  result * Cet_util.Diag.t list
(** Non-raising {!analyze} for untrusted binaries.  Corrupt exception
    tables degrade FILTERENDBR (skipped LSDAs, salvaged [.eh_frame]
    prefix) rather than aborting; a missing [.text] or an expired
    {!Cet_util.Deadline} yields {!empty_result} with a [core/no-text] or
    [core/timeout] error diagnostic.  Every degradation is reported in the
    returned list.  Never raises. *)

val analyze_bytes_diag :
  ?config:config ->
  ?anchored:bool ->
  ?max_seconds:float ->
  string ->
  (result * Cet_util.Diag.t list, Cet_util.Diag.t) Stdlib.result
(** End-to-end robust pipeline: {!Cet_elf.Reader.read_diag} then
    {!analyze_diag}, optionally under a [max_seconds] wall-clock budget
    ({!Cet_util.Deadline.with_}).  [Error] only when the ELF itself is
    unreadable; everything downstream degrades into diagnostics.  Never
    raises. *)

val select_tail_calls :
  ?on_vote:
    (site:int ->
    target:int ->
    lo:int ->
    hi:int ->
    beyond:bool ->
    outside_refs:bool ->
    selected:bool ->
    unit) ->
  candidates:int list ->
  jmp_refs:(int * int) list ->
  call_refs:(int * int) list ->
  text_end:int ->
  unit ->
  int list
(** SELECTTAILCALL in isolation (exposed for tests): given candidate
    function starts, jump references and call references as
    [(site, target)], keep the jump targets that (1) land beyond the extent
    of the function containing the jump, and (2) are referenced from at
    least one other function.  [on_vote] observes every vote with its
    clause outcomes — the provenance recorder's hook; omitted, the
    selection is exactly the production path. *)
