module Reader = Cet_elf.Reader

type plt_map = { plt_lo : int; plt_hi : int; entries : (int * string) list }

let plt_entry_size = 16

let plt reader =
  match Reader.find_section reader ".plt" with
  | None -> { plt_lo = 0; plt_hi = 0; entries = [] }
  | Some s ->
    let relocs = Reader.plt_relocs reader in
    let entries =
      List.mapi (fun i (_slot, name) -> (s.vaddr + ((i + 1) * plt_entry_size), name)) relocs
    in
    { plt_lo = s.vaddr; plt_hi = s.vaddr + s.size; entries }

let plt_name map addr = List.assoc_opt addr map.entries

let in_plt map addr = addr >= map.plt_lo && addr < map.plt_hi && map.plt_hi > 0

let landing_pads reader =
  match (Reader.find_section reader ".eh_frame", Reader.find_section reader ".gcc_except_table") with
  | Some eh, Some get ->
    let frames = Cet_eh.Eh_frame.decode ~vaddr:eh.vaddr eh.data in
    List.concat_map
      (fun (f : Cet_eh.Eh_frame.frame) ->
        match f.lsda with
        | None -> []
        | Some lsda_vaddr ->
          let off = lsda_vaddr - get.vaddr in
          if off < 0 || off >= String.length get.data then []
          else
            let lsda = Cet_eh.Lsda.decode get.data ~off in
            Cet_eh.Lsda.landing_pads lsda ~func_start:f.pc_begin)
      frames
    |> List.sort_uniq compare
  | _ -> []

(* Robust variant of [landing_pads] for untrusted binaries: a corrupt
   [.eh_frame] yields the salvageable frame prefix, and each corrupt LSDA is
   skipped individually (summarised in one diagnostic) instead of aborting
   the whole FILTERENDBR landing-pad set. *)
let landing_pads_diag ~diag reader =
  match (Reader.find_section reader ".eh_frame", Reader.find_section reader ".gcc_except_table") with
  | Some eh, Some get ->
    let frames, frame_diags = Cet_eh.Eh_frame.decode_result ~vaddr:eh.vaddr eh.data in
    List.iter (Cet_util.Diag.Collector.add diag) frame_diags;
    let skipped = ref 0 in
    let first_err = ref None in
    let pads =
      List.concat_map
        (fun (f : Cet_eh.Eh_frame.frame) ->
          match f.lsda with
          | None -> []
          | Some lsda_vaddr ->
            let off = lsda_vaddr - get.vaddr in
            if off < 0 || off >= String.length get.data then begin
              incr skipped;
              if !first_err = None then
                first_err :=
                  Some (Printf.sprintf "LSDA vaddr 0x%x outside .gcc_except_table" lsda_vaddr);
              []
            end
            else
              match Cet_eh.Lsda.decode_result get.data ~off with
              | Ok lsda -> Cet_eh.Lsda.landing_pads lsda ~func_start:f.pc_begin
              | Error d ->
                incr skipped;
                if !first_err = None then first_err := Some (Cet_util.Diag.to_string d);
                [])
        frames
      |> List.sort_uniq compare
    in
    if !skipped > 0 then
      Cet_util.Diag.Collector.addf diag ~domain:"core" ~code:"lsda-skipped"
        "%d of %d LSDA references unusable, first: %s" !skipped
        (List.length (List.filter (fun (f : Cet_eh.Eh_frame.frame) -> f.lsda <> None) frames))
        (Option.value !first_err ~default:"?");
    pads
  | _ -> []

let text_section reader = Reader.find_section reader ".text"

let indirect_return_imports =
  [ "setjmp"; "_setjmp"; "sigsetjmp"; "savectx"; "vfork"; "getcontext" ]
