(** The §III measurement study: where do end-branch instructions live, and
    which syntactic properties do functions satisfy?

    These analyses consume a binary plus its ground-truth entry list (the
    paper used DWARF symbols) and produce the raw counts behind Table I and
    Figure 3. *)

type endbr_location =
  | At_function_entry
  | After_indirect_return_call
  | At_landing_pad
  | Elsewhere  (** never observed for compiler-generated code *)

val classify_endbrs :
  Cet_elf.Reader.t -> truth:int list -> (int * endbr_location) list
(** Classify every end-branch found by a linear sweep of [.text]. *)

val classify_endbrs_st :
  Cet_disasm.Substrate.t -> truth:int list -> (int * endbr_location) list
(** {!classify_endbrs} over a shared per-binary substrate. *)

type props = {
  endbr_at_head : bool;  (** EndBrAtHead *)
  dir_jmp_target : bool;  (** DirJmpTarget *)
  dir_call_target : bool;  (** DirCallTarget *)
}

val function_props :
  Cet_elf.Reader.t -> truth:int list -> (int * props) list
(** For every ground-truth function entry, which of the three §III-C
    properties hold. *)

val function_props_st :
  Cet_disasm.Substrate.t -> truth:int list -> (int * props) list
(** {!function_props} over a shared per-binary substrate. *)

val props_key : props -> string
(** Canonical region name for Figure 3 aggregation, e.g. ["endbr+call"],
    ["none"]. *)
