module Linear = Cet_disasm.Linear
module Substrate = Cet_disasm.Substrate
module Span = Cet_telemetry.Span

type config = {
  filter_endbr : bool;
  include_jump_targets : bool;
  select_tail_calls : bool;
}

let config1 = { filter_endbr = false; include_jump_targets = false; select_tail_calls = false }
let config2 = { config1 with filter_endbr = true }
let config3 = { config2 with include_jump_targets = true }
let config4 = { config3 with select_tail_calls = true }
let default_config = config4

type result = {
  functions : int list;
  endbr_total : int;
  filtered_indirect_return : int;
  filtered_landing_pads : int;
  call_target_count : int;
  jump_target_count : int;
  tail_calls_selected : int;
  resync_errors : int;
}

let empty_result =
  {
    functions = [];
    endbr_total = 0;
    filtered_indirect_return = 0;
    filtered_landing_pads = 0;
    call_target_count = 0;
    jump_target_count = 0;
    tail_calls_selected = 0;
    resync_errors = 0;
  }

(* Greatest candidate start <= addr, with the extent ending at the next
   candidate (or the end of .text). *)
let owner_extent starts text_end addr =
  let n = Array.length starts in
  let rec search lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if starts.(mid) <= addr then search (mid + 1) hi else search lo mid
  in
  let idx = search 0 n in
  if idx < 0 then None
  else
    let lo = starts.(idx) in
    let hi = if idx + 1 < n then starts.(idx + 1) else text_end in
    Some (lo, hi)

let select_tail_calls ?on_vote ~candidates ~jmp_refs ~call_refs ~text_end () =
  let starts = Array.of_list candidates in
  Array.sort Int.compare starts;
  let owner addr = owner_extent starts text_end addr in
  (* target -> function starts that reference it (by call or jump) *)
  let refs : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let add_ref site target =
    match owner site with
    | None -> ()
    | Some (src, _) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt refs target) in
      if not (List.mem src cur) then Hashtbl.replace refs target (src :: cur)
  in
  List.iter (fun (site, target) -> add_ref site target) call_refs;
  List.iter (fun (site, target) -> add_ref site target) jmp_refs;
  List.filter_map
    (fun (site, target) ->
      match owner site with
      | None -> None
      | Some (lo, hi) ->
        let beyond = target < lo || target >= hi in
        let outside_refs =
          match Hashtbl.find_opt refs target with
          | None -> false
          | Some srcs -> List.exists (fun s -> s <> lo) srcs
        in
        let selected = beyond && outside_refs in
        (match on_vote with
        | None -> ()
        | Some f -> f ~site ~target ~lo ~hi ~beyond ~outside_refs ~selected);
        if selected then Some target else None)
    jmp_refs
  |> List.sort_uniq Int.compare

(* FILTERENDBR proper: drop end-branches after indirect-return call sites
   and at exception landing pads.  Split out of the analysis core so the
   phase can carry its own telemetry span (which also covers the PLT and
   LSDA parsing the filter needs, matching the paper's phase accounting).
   The landing-pad set comes from the substrate's memoised decode when one
   is available; the robust path ([diag] present) always parses fresh via
   [Parse.landing_pads_diag] so its degradation semantics are unchanged. *)
let filter_endbr ?diag ?st ?prov reader ~(ix : Substrate.indexes) ~filtered_ir ~filtered_lp =
  (* Drop end-branches that are return targets of indirect-return
     imports (setjmp & co.), identified through the PLT.  On the robust
     path ([diag] present) a corrupt relocation table degrades to "no
     indirect-return filtering" instead of aborting the analysis. *)
  let plt_map =
    match diag with
    | None -> Parse.plt reader
    | Some diag -> (
      try Parse.plt reader
      with e ->
        Cet_util.Diag.Collector.addf diag ~domain:"core" ~code:"plt"
          "PLT map unavailable, indirect-return filtering disabled: %s"
          (Printexc.to_string e);
        { Parse.plt_lo = 0; plt_hi = 0; entries = [] })
  in
  (* The value is the call-site address, so a provenance record can name
     the call responsible for a filtered end-branch. *)
  let ir_returns = Hashtbl.create 8 in
  Array.iteri
    (fun k target ->
      if Parse.in_plt plt_map target then
        match Parse.plt_name plt_map target with
        | Some name when List.mem name Parse.indirect_return_imports ->
          Hashtbl.replace ir_returns ix.Substrate.call_rets.(k) ix.Substrate.call_sites.(k)
        | _ -> ())
    ix.Substrate.call_tgts;
  (* Drop end-branches heading exception landing pads. *)
  let pads =
    match (st, diag) with
    | Some st, None -> Substrate.landing_pads st
    | _, Some diag -> Array.of_list (Parse.landing_pads_diag ~diag reader)
    | None, None -> Array.of_list (Parse.landing_pads reader)
  in
  let endbrs = ix.Substrate.endbrs in
  let keep = Array.make (Array.length endbrs) 0 in
  let n = ref 0 in
  Array.iter
    (fun e ->
      match Hashtbl.find_opt ir_returns e with
      | Some call_site ->
        incr filtered_ir;
        Option.iter
          (fun p ->
            Provenance.record_filter p e
              (Provenance.Filtered_indirect_return { call_site }))
          prov
      | None ->
        if Linear.mem_sorted pads e then begin
          incr filtered_lp;
          Option.iter
            (fun p -> Provenance.record_filter p e Provenance.Filtered_landing_pad)
            prov
        end
        else begin
          Option.iter (fun p -> Provenance.record_filter p e Provenance.Kept) prov;
          keep.(!n) <- e;
          incr n
        end)
    endbrs;
  Array.sub keep 0 !n

(* SELECTTAILCALL over the jump set, returning the selected count too. *)
let select_phase ?prov (fx : Substrate.facts) ~(ix : Substrate.indexes) ~base_candidates =
  let jmp_refs =
    List.init (Array.length ix.Substrate.jmp_sites) (fun k ->
        (ix.Substrate.jmp_sites.(k), ix.Substrate.jmp_tgts.(k)))
  in
  let call_refs = ref [] in
  for k = Array.length ix.Substrate.call_sites - 1 downto 0 do
    let target = ix.Substrate.call_tgts.(k) in
    if Substrate.in_text fx target then
      call_refs := (ix.Substrate.call_sites.(k), target) :: !call_refs
  done;
  let on_vote =
    match prov with
    | None -> None
    | Some p ->
      Some
        (fun ~site ~target ~lo ~hi ~beyond ~outside_refs ~selected ->
          Provenance.record_vote p ~target
            {
              Provenance.v_site = site;
              v_lo = lo;
              v_hi = hi;
              v_beyond = beyond;
              v_outside_ref = outside_refs;
              v_selected = selected;
            })
  in
  let selected =
    select_tail_calls ?on_vote
      ~candidates:(Array.to_list base_candidates)
      ~jmp_refs ~call_refs:!call_refs
      ~text_end:(Substrate.text_end fx) ()
  in
  (match prov with
  | None -> ()
  | Some p -> List.iter (Provenance.mark_selected p) selected);
  ( Linear.merge_sorted_dedup base_candidates (Array.of_list selected),
    List.length selected )

(* The analysis core over the sweep-level facts plus the (possibly
   memoised) index arrays.  Note what is *not* here: the instruction
   stream.  Everything is set algebra on sorted int arrays, so the
   substrate can feed this from its stream-free scan; the only per-call
   allocations are the merged candidate arrays themselves. *)
let analyze_ix_impl ?diag ?st ?prov config reader (fx : Substrate.facts) (ix : Substrate.indexes) =
  let filtered_ir = ref 0 and filtered_lp = ref 0 in
  let endbrs' =
    if not config.filter_endbr then ix.Substrate.endbrs
    else if Span.enabled () then
      Span.with_ ~name:"funseeker.filter_endbr" (fun () ->
          filter_endbr ?diag ?st ?prov reader ~ix ~filtered_ir ~filtered_lp)
    else filter_endbr ?diag ?st ?prov reader ~ix ~filtered_ir ~filtered_lp
  in
  (* [endbrs'] is in address order, hence sorted: a linear merge with the
     sorted call-target set replaces the old sort_uniq over a concat. *)
  let base_candidates = Linear.merge_sorted_dedup endbrs' ix.Substrate.call_targets in
  let tail_selected = ref 0 in
  let functions =
    if not config.include_jump_targets then base_candidates
    else if not config.select_tail_calls then
      Linear.merge_sorted_dedup base_candidates ix.Substrate.jmp_targets
    else begin
      let fns, n =
        if Span.enabled () then
          Span.with_ ~name:"funseeker.select_tailcall" (fun () ->
              select_phase ?prov fx ~ix ~base_candidates)
        else select_phase ?prov fx ~ix ~base_candidates
      in
      tail_selected := n;
      fns
    end
  in
  let r =
    {
      functions = Array.to_list functions;
      endbr_total = Array.length ix.Substrate.endbrs;
      filtered_indirect_return = !filtered_ir;
      filtered_landing_pads = !filtered_lp;
      call_target_count = Array.length ix.Substrate.call_targets;
      jump_target_count = Array.length ix.Substrate.jmp_targets;
      tail_calls_selected = !tail_selected;
      resync_errors = fx.Substrate.f_resync_errors;
    }
  in
  if Span.enabled () then begin
    let module Reg = Cet_telemetry.Registry in
    Reg.count "funseeker.analyses";
    Reg.count ~n:r.endbr_total "funseeker.endbr_total";
    Reg.count ~n:r.filtered_indirect_return "funseeker.filtered_indirect_return";
    Reg.count ~n:r.filtered_landing_pads "funseeker.filtered_landing_pads";
    Reg.count ~n:r.tail_calls_selected "funseeker.tail_calls_selected";
    Reg.count ~n:r.resync_errors "funseeker.resync_errors";
    Reg.count ~n:(List.length r.functions) "funseeker.functions"
  end;
  r

(* Candidate harvesting (the E, C, J sets) for a sweep that arrives
   without a substrate: one single-pass index build, under the same span
   the old list-based collector carried. *)
let collect_indexes sweep =
  if Span.enabled () then
    Span.with_ ~name:"funseeker.collect" (fun () -> Substrate.indexes_of_sweep sweep)
  else Substrate.indexes_of_sweep sweep

let analyze_sweep_impl ?diag config reader (sweep : Linear.t) =
  analyze_ix_impl ?diag config reader (Substrate.facts_of_sweep sweep)
    (collect_indexes sweep)

let analyze_sweep ?(config = default_config) reader (sweep : Linear.t) =
  if Span.enabled () then
    Span.with_ ~name:"funseeker.analyze" (fun () ->
        analyze_sweep_impl config reader sweep)
  else analyze_sweep_impl config reader sweep

(* The substrate path never touches the instruction stream: [facts] and
   [indexes] both come from the substrate's stream-free scan (or from an
   already-memoised sweep, identically), so FunSeeker's DISASSEMBLE phase
   allocates no per-instruction records at all. *)
let analyze_st_impl config anchored st =
  let ix =
    if Span.enabled () then
      Span.with_ ~name:"funseeker.collect" (fun () -> Substrate.indexes ~anchored st)
    else Substrate.indexes ~anchored st
  in
  let fx = Substrate.facts ~anchored st in
  analyze_ix_impl ~st config (Substrate.reader st) fx ix

let analyze_st ?(config = default_config) ?(anchored = false) st =
  if Span.enabled () then
    Span.with_ ~name:"funseeker.analyze" (fun () -> analyze_st_impl config anchored st)
  else analyze_st_impl config anchored st

let analyze ?(config = default_config) ?(anchored = false) reader =
  analyze_st ~config ~anchored (Substrate.create reader)

(* ---- Provenance-recording path ---------------------------------------- *)

(* The candidate sources (E, C, J membership plus the referencing sites)
   are facts about the binary, so they are recorded up front whatever the
   configuration; the filter decisions and tail-call votes are recorded by
   the phases the configuration actually runs. *)
let record_sources prov (fx : Substrate.facts) (ix : Substrate.indexes) =
  Array.iter (Provenance.record_endbr prov) ix.Substrate.endbrs;
  Array.iteri
    (fun k target ->
      if Substrate.in_text fx target then
        Provenance.record_call prov ~site:ix.Substrate.call_sites.(k) ~target)
    ix.Substrate.call_tgts;
  Array.iter (Provenance.mark_call_target prov) ix.Substrate.call_targets;
  Array.iteri
    (fun k target -> Provenance.record_jmp prov ~site:ix.Substrate.jmp_sites.(k) ~target)
    ix.Substrate.jmp_tgts;
  Array.iter (Provenance.mark_jmp_target prov) ix.Substrate.jmp_targets

let analyze_prov ?(config = default_config) ?(anchored = false) st =
  let prov = Provenance.create () in
  let ix = Substrate.indexes ~anchored st in
  let fx = Substrate.facts ~anchored st in
  record_sources prov fx ix;
  let r = analyze_ix_impl ~st ~prov config (Substrate.reader st) fx ix in
  List.iter (Provenance.mark_kept prov) r.functions;
  (r, prov)

let analyze_bytes ?(config = default_config) ?(anchored = false) bytes =
  analyze ~config ~anchored (Cet_elf.Reader.read bytes)

(* ---- Robust analysis path -------------------------------------------- *)

module Diag = Cet_util.Diag

let analyze_diag ?(config = default_config) ?(anchored = false) reader =
  let diag = Diag.Collector.create () in
  (* A private substrate for the scan products only: the substrate is not
     passed down, so the robust landing-pad path (degradation semantics
     via [Parse.landing_pads_diag]) is unchanged. *)
  let st = Substrate.create reader in
  let result =
    match Substrate.facts ~anchored st with
    | fx -> (
      try analyze_ix_impl ~diag config reader fx (Substrate.indexes ~anchored st)
      with Cet_util.Deadline.Expired { what; seconds } ->
        Diag.Collector.addf diag ~severity:Diag.Error ~domain:"core" ~code:"timeout"
          "analysis exceeded the %gs budget (in %s)" seconds what;
        empty_result)
    | exception Invalid_argument _ ->
      (* No .text: nothing to disassemble, but the binary parsed — report
         an empty identification instead of failing the whole pipeline. *)
      Diag.Collector.add diag
        (Diag.error ~domain:"core" ~code:"no-text" "no .text section: empty analysis");
      empty_result
    | exception Cet_util.Deadline.Expired { what; seconds } ->
      Diag.Collector.addf diag ~severity:Diag.Error ~domain:"core" ~code:"timeout"
        "analysis exceeded the %gs budget (in %s)" seconds what;
      empty_result
  in
  if Span.enabled () then
    Cet_telemetry.Registry.count ~n:(Diag.Collector.count diag) "funseeker.diagnostics";
  (result, Diag.Collector.list diag)

let analyze_bytes_diag ?(config = default_config) ?(anchored = false) ?max_seconds bytes =
  let run () =
    match Cet_elf.Reader.read_diag bytes with
    | Error d -> Error d
    | Ok (reader, parse_diags) ->
      let result, analysis_diags = analyze_diag ~config ~anchored reader in
      Ok (result, parse_diags @ analysis_diags)
  in
  match max_seconds with
  | None -> run ()
  | Some seconds -> (
    try Cet_util.Deadline.with_ ~seconds run
    with Cet_util.Deadline.Expired { what; seconds } ->
      (* Expiry inside the ELF parse itself (analyze_diag catches its own). *)
      Ok
        ( empty_result,
          [
            Diag.makef ~severity:Diag.Error ~domain:"core" ~code:"timeout"
              "analysis exceeded the %gs budget (in %s)" seconds what;
          ] ))
