module Linear = Cet_disasm.Linear
module Span = Cet_telemetry.Span

type config = {
  filter_endbr : bool;
  include_jump_targets : bool;
  select_tail_calls : bool;
}

let config1 = { filter_endbr = false; include_jump_targets = false; select_tail_calls = false }
let config2 = { config1 with filter_endbr = true }
let config3 = { config2 with include_jump_targets = true }
let config4 = { config3 with select_tail_calls = true }
let default_config = config4

type result = {
  functions : int list;
  endbr_total : int;
  filtered_indirect_return : int;
  filtered_landing_pads : int;
  call_target_count : int;
  jump_target_count : int;
  tail_calls_selected : int;
  resync_errors : int;
}

let empty_result =
  {
    functions = [];
    endbr_total = 0;
    filtered_indirect_return = 0;
    filtered_landing_pads = 0;
    call_target_count = 0;
    jump_target_count = 0;
    tail_calls_selected = 0;
    resync_errors = 0;
  }

(* Greatest candidate start <= addr, with the extent ending at the next
   candidate (or the end of .text). *)
let owner_extent starts text_end addr =
  let n = Array.length starts in
  let rec search lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if starts.(mid) <= addr then search (mid + 1) hi else search lo mid
  in
  let idx = search 0 n in
  if idx < 0 then None
  else
    let lo = starts.(idx) in
    let hi = if idx + 1 < n then starts.(idx + 1) else text_end in
    Some (lo, hi)

let select_tail_calls ~candidates ~jmp_refs ~call_refs ~text_end =
  let starts = Array.of_list candidates in
  Array.sort compare starts;
  let owner addr = owner_extent starts text_end addr in
  (* target -> function starts that reference it (by call or jump) *)
  let refs : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let add_ref site target =
    match owner site with
    | None -> ()
    | Some (src, _) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt refs target) in
      if not (List.mem src cur) then Hashtbl.replace refs target (src :: cur)
  in
  List.iter (fun (site, target) -> add_ref site target) call_refs;
  List.iter (fun (site, target) -> add_ref site target) jmp_refs;
  List.filter_map
    (fun (site, target) ->
      match owner site with
      | None -> None
      | Some (lo, hi) ->
        let beyond = target < lo || target >= hi in
        let outside_refs =
          match Hashtbl.find_opt refs target with
          | None -> false
          | Some srcs -> List.exists (fun s -> s <> lo) srcs
        in
        if beyond && outside_refs then Some target else None)
    jmp_refs
  |> List.sort_uniq compare

(* FILTERENDBR proper: drop end-branches after indirect-return call sites
   and at exception landing pads.  Split out of [analyze_sweep] so the
   phase can carry its own telemetry span (which also covers the PLT and
   LSDA parsing the filter needs, matching the paper's phase accounting). *)
let filter_endbr ?diag reader ~call_sites ~endbrs ~filtered_ir ~filtered_lp =
      (* Drop end-branches that are return targets of indirect-return
         imports (setjmp & co.), identified through the PLT.  On the robust
         path ([diag] present) a corrupt relocation table degrades to "no
         indirect-return filtering" instead of aborting the analysis. *)
      let plt_map =
        match diag with
        | None -> Parse.plt reader
        | Some diag -> (
          try Parse.plt reader
          with e ->
            Cet_util.Diag.Collector.addf diag ~domain:"core" ~code:"plt"
              "PLT map unavailable, indirect-return filtering disabled: %s"
              (Printexc.to_string e);
            { Parse.plt_lo = 0; plt_hi = 0; entries = [] })
      in
      let ir_returns = Hashtbl.create 8 in
      List.iter
        (fun (_site, ret, target) ->
          if Parse.in_plt plt_map target then
            match Parse.plt_name plt_map target with
            | Some name when List.mem name Parse.indirect_return_imports ->
              Hashtbl.replace ir_returns ret ()
            | _ -> ())
        call_sites;
      (* Drop end-branches heading exception landing pads. *)
      let lps =
        match diag with
        | None -> Parse.landing_pads reader
        | Some diag -> Parse.landing_pads_diag ~diag reader
      in
      let lp_set = Hashtbl.create 64 in
      List.iter (fun a -> Hashtbl.replace lp_set a ()) lps;
      List.filter
        (fun e ->
          if Hashtbl.mem ir_returns e then begin
            incr filtered_ir;
            false
          end
          else if Hashtbl.mem lp_set e then begin
            incr filtered_lp;
            false
          end
          else true)
        endbrs

(* Candidate harvesting: end-branch addresses, direct-call targets, and
   direct-jump targets out of the shared sweep (the E, C, J sets). *)
let collect_candidates (sweep : Linear.t) =
  let endbrs = Linear.endbr_addrs sweep in
  let call_sites = Linear.call_sites sweep in
  let calls =
    List.filter_map
      (fun (_, _, target) -> if Linear.in_range sweep target then Some target else None)
      call_sites
    |> List.sort_uniq compare
  in
  (endbrs, call_sites, calls, Linear.jmp_targets sweep)

(* SELECTTAILCALL over the jump set, returning the selected count too. *)
let select_phase (sweep : Linear.t) ~call_sites ~base_candidates =
  let jmp_refs = Linear.jmp_refs sweep in
  let call_refs =
    List.filter_map
      (fun (site, _, target) ->
        if Linear.in_range sweep target then Some (site, target) else None)
      call_sites
  in
  let selected =
    select_tail_calls ~candidates:base_candidates ~jmp_refs ~call_refs
      ~text_end:(sweep.base + sweep.size)
  in
  (List.sort_uniq compare (base_candidates @ selected), List.length selected)

let analyze_sweep_impl ?diag config reader (sweep : Linear.t) =
  let endbrs, call_sites, calls, jmps =
    if Span.enabled () then
      Span.with_ ~name:"funseeker.collect" (fun () -> collect_candidates sweep)
    else collect_candidates sweep
  in
  let filtered_ir = ref 0 and filtered_lp = ref 0 in
  let endbrs' =
    if not config.filter_endbr then endbrs
    else if Span.enabled () then
      Span.with_ ~name:"funseeker.filter_endbr" (fun () ->
          filter_endbr ?diag reader ~call_sites ~endbrs ~filtered_ir ~filtered_lp)
    else filter_endbr ?diag reader ~call_sites ~endbrs ~filtered_ir ~filtered_lp
  in
  let base_candidates = List.sort_uniq compare (endbrs' @ calls) in
  let tail_selected = ref 0 in
  let functions =
    if not config.include_jump_targets then base_candidates
    else if not config.select_tail_calls then
      List.sort_uniq compare (base_candidates @ jmps)
    else begin
      let fns, n =
        if Span.enabled () then
          Span.with_ ~name:"funseeker.select_tailcall" (fun () ->
              select_phase sweep ~call_sites ~base_candidates)
        else select_phase sweep ~call_sites ~base_candidates
      in
      tail_selected := n;
      fns
    end
  in
  let r =
    {
      functions;
      endbr_total = List.length endbrs;
      filtered_indirect_return = !filtered_ir;
      filtered_landing_pads = !filtered_lp;
      call_target_count = List.length calls;
      jump_target_count = List.length jmps;
      tail_calls_selected = !tail_selected;
      resync_errors = sweep.resync_errors;
    }
  in
  if Span.enabled () then begin
    let module Reg = Cet_telemetry.Registry in
    Reg.count "funseeker.analyses";
    Reg.count ~n:r.endbr_total "funseeker.endbr_total";
    Reg.count ~n:r.filtered_indirect_return "funseeker.filtered_indirect_return";
    Reg.count ~n:r.filtered_landing_pads "funseeker.filtered_landing_pads";
    Reg.count ~n:r.tail_calls_selected "funseeker.tail_calls_selected";
    Reg.count ~n:r.resync_errors "funseeker.resync_errors";
    Reg.count ~n:(List.length r.functions) "funseeker.functions"
  end;
  r

let analyze_sweep ?(config = default_config) reader (sweep : Linear.t) =
  if Span.enabled () then
    Span.with_ ~name:"funseeker.analyze" (fun () ->
        analyze_sweep_impl config reader sweep)
  else analyze_sweep_impl config reader sweep

let analyze_impl config anchored reader =
  let sweep =
    if anchored then Linear.sweep_text_anchored reader else Linear.sweep_text reader
  in
  analyze_sweep_impl config reader sweep

let analyze ?(config = default_config) ?(anchored = false) reader =
  if Span.enabled () then
    Span.with_ ~name:"funseeker.analyze" (fun () -> analyze_impl config anchored reader)
  else analyze_impl config anchored reader

let analyze_bytes ?(config = default_config) ?(anchored = false) bytes =
  analyze ~config ~anchored (Cet_elf.Reader.read bytes)

(* ---- Robust analysis path -------------------------------------------- *)

module Diag = Cet_util.Diag

let analyze_diag ?(config = default_config) ?(anchored = false) reader =
  let diag = Diag.Collector.create () in
  let result =
    match Cet_disasm.Linear.(if anchored then sweep_text_anchored else sweep_text) reader with
    | sweep -> (
      try analyze_sweep_impl ~diag config reader sweep
      with Cet_util.Deadline.Expired { what; seconds } ->
        Diag.Collector.addf diag ~severity:Diag.Error ~domain:"core" ~code:"timeout"
          "analysis exceeded the %gs budget (in %s)" seconds what;
        empty_result)
    | exception Invalid_argument _ ->
      (* No .text: nothing to disassemble, but the binary parsed — report
         an empty identification instead of failing the whole pipeline. *)
      Diag.Collector.add diag
        (Diag.error ~domain:"core" ~code:"no-text" "no .text section: empty analysis");
      empty_result
    | exception Cet_util.Deadline.Expired { what; seconds } ->
      Diag.Collector.addf diag ~severity:Diag.Error ~domain:"core" ~code:"timeout"
        "analysis exceeded the %gs budget (in %s)" seconds what;
      empty_result
  in
  if Span.enabled () then
    Cet_telemetry.Registry.count ~n:(Diag.Collector.count diag) "funseeker.diagnostics";
  (result, Diag.Collector.list diag)

let analyze_bytes_diag ?(config = default_config) ?(anchored = false) ?max_seconds bytes =
  let run () =
    match Cet_elf.Reader.read_diag bytes with
    | Error d -> Error d
    | Ok (reader, parse_diags) ->
      let result, analysis_diags = analyze_diag ~config ~anchored reader in
      Ok (result, parse_diags @ analysis_diags)
  in
  match max_seconds with
  | None -> run ()
  | Some seconds -> (
    try Cet_util.Deadline.with_ ~seconds run
    with Cet_util.Deadline.Expired { what; seconds } ->
      (* Expiry inside the ELF parse itself (analyze_diag catches its own). *)
      Ok
        ( empty_result,
          [
            Diag.makef ~severity:Diag.Error ~domain:"core" ~code:"timeout"
              "analysis exceeded the %gs budget (in %s)" seconds what;
          ] ))
