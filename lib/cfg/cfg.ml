module Linear = Cet_disasm.Linear
module Decoder = Cet_x86.Decoder

type terminator =
  | T_return
  | T_jump of int
  | T_tail of int
  | T_cond of int * int
  | T_indirect
  | T_halt
  | T_fall

type block = { b_start : int; b_stop : int; b_insns : int; b_term : terminator }

type func = {
  f_entry : int;
  f_stop : int;
  f_blocks : block list;
  f_edges : (int * int) list;
  f_calls : int list;
}

(* Instructions of one extent, via binary search over the sweep stream. *)
let insns_in (sweep : Linear.t) lo hi =
  let arr = sweep.insns in
  let n = Array.length arr in
  let first =
    let l = ref 0 and h = ref n in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if arr.(mid).Decoder.addr < lo then l := mid + 1 else h := mid
    done;
    !l
  in
  let rec collect i acc =
    if i >= n || arr.(i).Decoder.addr >= hi then List.rev acc
    else collect (i + 1) (arr.(i) :: acc)
  in
  collect first []

let recover_function sweep ~entry ~stop =
  let insns = insns_in sweep entry stop in
  let in_extent a = a >= entry && a < stop in
  (* Leaders: entry, intra-extent branch targets, post-terminator
     successors. *)
  let leaders = Hashtbl.create 32 in
  Hashtbl.replace leaders entry ();
  List.iter
    (fun (i : Decoder.ins) ->
      let next = i.addr + i.len in
      match i.kind with
      | Decoder.Jmp_direct t ->
        if in_extent t then Hashtbl.replace leaders t ();
        if in_extent next then Hashtbl.replace leaders next ()
      | Decoder.Jcc_direct t ->
        if in_extent t then Hashtbl.replace leaders t ();
        if in_extent next then Hashtbl.replace leaders next ()
      | Decoder.Ret | Decoder.Halt | Decoder.Jmp_indirect _ ->
        if in_extent next then Hashtbl.replace leaders next ()
      | _ -> ())
    insns;
  let starts =
    List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) leaders [])
  in
  (* Build blocks by walking instructions, closing at the next leader. *)
  let next_leader_after a =
    let rec go = function
      | [] -> stop
      | s :: rest -> if s > a then s else go rest
    in
    go starts
  in
  let blocks = ref [] in
  let edges = ref [] in
  let calls = ref [] in
  List.iter
    (fun b_start ->
      let b_stop_limit = next_leader_after b_start in
      let block_insns =
        List.filter (fun (i : Decoder.ins) -> i.addr >= b_start && i.addr < b_stop_limit) insns
      in
      match List.rev block_insns with
      | [] -> ()
      | last :: _ ->
        let b_stop = last.addr + last.len in
        let term =
          match last.kind with
          | Decoder.Ret -> T_return
          | Decoder.Halt -> T_halt
          | Decoder.Jmp_direct t ->
            if in_extent t then begin
              edges := (b_start, t) :: !edges;
              T_jump t
            end
            else T_tail t
          | Decoder.Jcc_direct t ->
            let fall = b_stop in
            if in_extent t then edges := (b_start, t) :: !edges;
            if in_extent fall then edges := (b_start, fall) :: !edges;
            T_cond (t, fall)
          | Decoder.Jmp_indirect _ -> T_indirect
          | _ ->
            if in_extent b_stop then edges := (b_start, b_stop) :: !edges;
            T_fall
        in
        List.iter
          (fun (i : Decoder.ins) ->
            match i.kind with
            | Decoder.Call_direct t when Linear.in_range sweep t -> calls := t :: !calls
            | _ -> ())
          block_insns;
        blocks :=
          { b_start; b_stop; b_insns = List.length block_insns; b_term = term } :: !blocks)
    starts;
  {
    f_entry = entry;
    f_stop = stop;
    f_blocks = List.rev !blocks;
    f_edges = List.sort_uniq compare !edges;
    f_calls = List.sort_uniq Int.compare !calls;
  }

let recover_st ?entries st =
  let sweep = Cet_disasm.Substrate.sweep st in
  let entries =
    match entries with
    | Some e -> List.sort_uniq Int.compare e
    | None -> (Core.Funseeker.analyze_st st).Core.Funseeker.functions
  in
  let text_end = sweep.base + sweep.size in
  let arr = Array.of_list entries in
  Array.to_list
    (Array.mapi
       (fun i entry ->
         let stop = if i + 1 < Array.length arr then arr.(i + 1) else text_end in
         recover_function sweep ~entry ~stop)
       arr)

let recover ?entries reader = recover_st ?entries (Cet_disasm.Substrate.create reader)

let call_graph funcs =
  let entries = Hashtbl.create (List.length funcs) in
  List.iter (fun f -> Hashtbl.replace entries f.f_entry ()) funcs;
  List.map
    (fun f -> (f.f_entry, List.filter (Hashtbl.mem entries) f.f_calls))
    funcs

let block_count f = List.length f.f_blocks
let edge_count f = List.length f.f_edges

let reachable_from funcs start =
  let graph = Hashtbl.create (List.length funcs) in
  List.iter (fun (e, cs) -> Hashtbl.replace graph e cs) (call_graph funcs);
  let seen = Hashtbl.create 64 in
  let rec go e =
    if not (Hashtbl.mem seen e) then begin
      Hashtbl.replace seen e ();
      List.iter go (Option.value ~default:[] (Hashtbl.find_opt graph e))
    end
  in
  go start;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let to_dot f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph f_0x%x {\n  node [shape=box];\n" f.f_entry);
  List.iter
    (fun b ->
      let label =
        Printf.sprintf "0x%x..0x%x\\n%d insns%s" b.b_start b.b_stop b.b_insns
          (match b.b_term with
          | T_return -> "\\nret"
          | T_tail t -> Printf.sprintf "\\ntail 0x%x" t
          | T_indirect -> "\\nswitch"
          | T_halt -> "\\nhlt"
          | _ -> "")
      in
      Buffer.add_string buf (Printf.sprintf "  n0x%x [label=\"%s\"];\n" b.b_start label))
    f.f_blocks;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  n0x%x -> n0x%x;\n" a b))
    f.f_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
