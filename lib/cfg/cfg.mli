(** Control-flow-graph recovery on top of identified function entries.

    The paper motivates function identification as the cornerstone of CFG
    recovery ("CFG recovery techniques often rely on the assumption that
    function entries are known", §VII-B): this library is that downstream
    consumer.  Given a binary and a set of entries (by default FunSeeker's
    output), it partitions each function extent into basic blocks, recovers
    intra-procedural edges, and derives the call graph. *)

type terminator =
  | T_return  (** [ret] *)
  | T_jump of int  (** unconditional, in-function target *)
  | T_tail of int  (** unconditional jump leaving the function *)
  | T_cond of int * int  (** (taken, fall-through) *)
  | T_indirect  (** [jmp r/m] — switch dispatch *)
  | T_halt
  | T_fall  (** block split by an incoming edge *)

type block = {
  b_start : int;
  b_stop : int;  (** exclusive *)
  b_insns : int;  (** instruction count *)
  b_term : terminator;
}

type func = {
  f_entry : int;
  f_stop : int;  (** extent end (next entry or end of text) *)
  f_blocks : block list;  (** in address order; the first starts at entry *)
  f_edges : (int * int) list;  (** intra-procedural, block start → block start *)
  f_calls : int list;  (** distinct outgoing direct-call targets (in text) *)
}

val recover : ?entries:int list -> Cet_elf.Reader.t -> func list
(** Recover one CFG per function.  [entries] defaults to running FunSeeker
    (configuration ④) on the binary.  Raises [Invalid_argument] when the
    image has no [.text]. *)

val recover_st : ?entries:int list -> Cet_disasm.Substrate.t -> func list
(** {!recover} over a shared per-binary substrate — the sweep (and, when
    [entries] is omitted, FunSeeker's whole analysis) is reused rather than
    recomputed. *)

val call_graph : func list -> (int * int list) list
(** [entry → distinct callees] for every recovered function, callees
    restricted to recovered entries. *)

val block_count : func -> int
val edge_count : func -> int

val reachable_from : func list -> int -> int list
(** Entries transitively reachable from the given entry through the call
    graph (including itself). *)

val to_dot : func -> string
(** Graphviz rendering of one function's CFG. *)
