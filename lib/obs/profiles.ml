module Jz = Cet_util.Jsonl

type row = {
  suite : string;
  program : string;
  config : string;
  arch : string;
  digest : string;
  text_bytes : int;
  insns : int;
  resyncs : int;
  truth : int;
  diags : int;
  attempts : int;
  status : string;
  total_ms : float;
  phases : (string * float) list;
}

let key r = r.suite ^ "/" ^ r.program ^ "[" ^ r.config ^ "]"

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Jz.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let row_of j =
  let* suite = field "suite" Jz.str j in
  let* program = field "program" Jz.str j in
  let* config = field "config" Jz.str j in
  let* arch = field "arch" Jz.str j in
  let* digest = field "digest" Jz.str j in
  let* text_bytes = field "text_bytes" Jz.int j in
  let* insns = field "insns" Jz.int j in
  let* resyncs = field "resyncs" Jz.int j in
  let* truth = field "truth" Jz.int j in
  let* diags = field "diags" Jz.int j in
  let* attempts = field "attempts" Jz.int j in
  let* status = field "status" Jz.str j in
  let* total_ms = field "total_ms" Jz.num j in
  let* phases_obj = field "phases" Option.some j in
  let* phases =
    match phases_obj with
    | Jz.Obj fields ->
      List.fold_left
        (fun acc (name, v) ->
          let* acc = acc in
          match Jz.num v with
          | Some ms -> Ok ((name, ms) :: acc)
          | None -> Error (Printf.sprintf "phase %S is not a number" name))
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "field \"phases\" is not an object"
  in
  Ok
    {
      suite; program; config; arch; digest; text_bytes; insns; resyncs; truth;
      diags; attempts; status; total_ms; phases;
    }

let parse contents =
  let* rows = Jz.parse_lines contents in
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      let* r = row_of j in
      Ok (r :: acc))
    (Ok []) rows
  |> Result.map List.rev

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (
    match parse contents with
    | Ok rows -> Ok rows
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e
