module Jz = Cet_util.Jsonl

type span = { t_sheet : int; t_name : string; t_start_ns : int; t_dur_ns : int }

type t = {
  spans : span list;
  counters : (string * int) list;
  gauges : (string * float) list;
  instants : (string * int) list;
}

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Jz.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let empty = { spans = []; counters = []; gauges = []; instants = [] }

(* The JSON-lines trace: one self-describing object per line. *)
let parse_jsonl contents =
  let* rows = Jz.parse_lines contents in
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      match Option.bind (Jz.member "type" j) Jz.str with
      | Some "span" ->
        let* t_sheet = field "sheet" Jz.int j in
        let* t_name = field "name" Jz.str j in
        let* t_start_ns = field "start_ns" Jz.int j in
        let* t_dur_ns = field "dur_ns" Jz.int j in
        Ok { acc with spans = { t_sheet; t_name; t_start_ns; t_dur_ns } :: acc.spans }
      | Some "counter" ->
        let* name = field "name" Jz.str j in
        let* value = field "value" Jz.int j in
        Ok { acc with counters = (name, value) :: acc.counters }
      | Some "gauge" ->
        let* name = field "name" Jz.str j in
        let* value = field "value" Jz.num j in
        Ok { acc with gauges = (name, value) :: acc.gauges }
      | Some _ | None -> Ok acc)
    (Ok empty) rows

(* The Chrome trace-event array: timestamps and durations are µs floats;
   they return to ns so both formats meet the analyzer in one unit. *)
let parse_chrome contents =
  let* doc = Jz.parse contents in
  let* events =
    match Jz.list doc with
    | Some l -> Ok l
    | None -> Error "chrome trace is not a JSON array"
  in
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      match Option.bind (Jz.member "ph" j) Jz.str with
      | Some "X" ->
        let* t_sheet = field "tid" Jz.int j in
        let* t_name = field "name" Jz.str j in
        let* ts = field "ts" Jz.num j in
        let* dur = field "dur" Jz.num j in
        let ns us = int_of_float (us *. 1e3) in
        Ok
          {
            acc with
            spans =
              { t_sheet; t_name; t_start_ns = ns ts; t_dur_ns = ns dur }
              :: acc.spans;
          }
      | Some "i" ->
        let* tid = field "tid" Jz.int j in
        let* name = field "name" Jz.str j in
        Ok { acc with instants = (name, tid) :: acc.instants }
      | Some _ | None -> Ok acc)
    (Ok empty) events

let parse contents =
  let n = String.length contents in
  let rec first_non_ws i =
    if i >= n then None
    else
      match contents.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_non_ws (i + 1)
      | c -> Some c
  in
  let* parsed =
    match first_non_ws 0 with
    | Some '[' -> parse_chrome contents
    | Some _ -> parse_jsonl contents
    | None -> Error "empty trace"
  in
  Ok
    {
      spans = List.rev parsed.spans;
      counters = List.rev parsed.counters;
      gauges = List.rev parsed.gauges;
      instants = List.rev parsed.instants;
    }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (
    match parse contents with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

let counter t name =
  match List.assoc_opt name t.counters with Some v -> v | None -> 0

let gauge t name =
  match List.assoc_opt name t.gauges with Some v -> v | None -> 0.0
