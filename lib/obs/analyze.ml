module Hist = Cet_telemetry.Hist

(* ------------------------------------------------------------------ *)
(* Per-phase latency aggregates                                       *)
(* ------------------------------------------------------------------ *)

type phase_stat = {
  ps_phase : string;
  ps_count : int;
  ps_total_ms : float;
  ps_mean_ms : float;
  ps_p50_ms : float;
  ps_p99_ms : float;
  ps_max_ms : float;
}

let ns_of_ms ms = int_of_float (ms *. 1e6)
let ms_of_ns ns = float_of_int ns /. 1e6

let phase_stats rows =
  (* One histogram per phase name, first-appearance order, plus a final
     "total" over the whole-binary wall time. *)
  let order = ref [] in
  let hists : (string, Hist.t * float ref) Hashtbl.t = Hashtbl.create 16 in
  let feed name ms =
    let h, total =
      match Hashtbl.find_opt hists name with
      | Some v -> v
      | None ->
        let v = (Hist.create (), ref 0.0) in
        Hashtbl.replace hists name v;
        order := name :: !order;
        v
    in
    Hist.add h (ns_of_ms ms);
    total := !total +. ms
  in
  List.iter
    (fun (r : Profiles.row) -> List.iter (fun (n, ms) -> feed n ms) r.Profiles.phases)
    rows;
  List.iter (fun (r : Profiles.row) -> feed "total" r.Profiles.total_ms) rows;
  List.rev_map
    (fun name ->
      let h, total = Hashtbl.find hists name in
      let q p = match Hist.quantile h p with Some v -> ms_of_ns v | None -> 0.0 in
      {
        ps_phase = name;
        ps_count = Hist.count h;
        ps_total_ms = !total;
        ps_mean_ms = (if Hist.count h = 0 then 0.0 else ms_of_ns (int_of_float (Hist.mean h)));
        ps_p50_ms = q 0.5;
        ps_p99_ms = q 0.99;
        ps_max_ms = ms_of_ns (Hist.max_value h);
      })
    !order

let render_phase_stats stats =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "PHASE LATENCY (per binary)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-12s %7s %12s %10s %10s %10s %10s\n" "phase" "rows"
       "total(ms)" "mean(ms)" "p50(ms)" "p99(ms)" "max(ms)");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %7d %12.3f %10.3f %10.3f %10.3f %10.3f\n"
           s.ps_phase s.ps_count s.ps_total_ms s.ps_mean_ms s.ps_p50_ms
           s.ps_p99_ms s.ps_max_ms))
    stats;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Scheduler health                                                   *)
(* ------------------------------------------------------------------ *)

type health = {
  hw_workers : int;
  hw_wall_ms : float;
  hw_busy_ms : float;
  hw_busy_fraction : float;
  hw_queue_wait_ms : float;
  hw_binaries : int;
  hw_steals : int;
  hw_steal_ratio : float;
  hw_backoffs : int;
  hw_breaker_opens : int;
  hw_breaker_skips : int;
  hw_sheds : int;
  hw_max_pending : int;
}

let health_of_trace (t : Trace.t) =
  (* Busy time: the harness.binary spans, per sheet.  Each span covers one
     binary's evaluation on its worker, so summed per-sheet durations are
     exactly the time that worker held a binary. *)
  let busy : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.t_name = "harness.binary" then begin
        let cell =
          match Hashtbl.find_opt busy s.Trace.t_sheet with
          | Some c -> c
          | None ->
            let c = ref 0 in
            Hashtbl.replace busy s.Trace.t_sheet c;
            c
        in
        cell := !cell + s.Trace.t_dur_ns
      end)
    t.Trace.spans;
  let workers = Hashtbl.length busy in
  let busy_ms =
    ms_of_ns (Hashtbl.fold (fun _ c acc -> acc + !c) busy 0)
  in
  let wall_ms = Trace.gauge t "harness.wall_s" *. 1e3 in
  let binaries = Trace.counter t "harness.binaries" in
  let steals = Trace.counter t "scheduler.steals" in
  {
    hw_workers = workers;
    hw_wall_ms = wall_ms;
    hw_busy_ms = busy_ms;
    hw_busy_fraction =
      (if wall_ms > 0.0 && workers > 0 then
         busy_ms /. (float_of_int workers *. wall_ms)
       else 0.0);
    hw_queue_wait_ms =
      (if wall_ms > 0.0 && workers > 0 then
         ((float_of_int workers *. wall_ms) -. busy_ms) /. float_of_int workers
       else 0.0);
    hw_binaries = binaries;
    hw_steals = steals;
    hw_steal_ratio =
      (if binaries > 0 then float_of_int steals /. float_of_int binaries else 0.0);
    hw_backoffs = Trace.counter t "scheduler.backoffs";
    hw_breaker_opens = Trace.counter t "scheduler.breaker_opens";
    hw_breaker_skips = Trace.counter t "scheduler.breaker_skips";
    hw_sheds = Trace.counter t "scheduler.sheds";
    hw_max_pending = int_of_float (Trace.gauge t "scheduler.max_pending");
  }

let render_health h =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "SCHEDULER HEALTH\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  workers %d  binaries %d  wall %.1f ms  busy %.1f ms (%.1f%% of capacity)\n"
       h.hw_workers h.hw_binaries h.hw_wall_ms h.hw_busy_ms
       (h.hw_busy_fraction *. 100.0));
  Buffer.add_string buf
    (Printf.sprintf "  queue-wait %.1f ms per worker (wall minus busy)\n"
       h.hw_queue_wait_ms);
  Buffer.add_string buf
    (Printf.sprintf
       "  steals %d (%.2f per binary)  backoffs %d  breaker opens %d  breaker \
        skips %d  sheds %d  max pending %d\n"
       h.hw_steals h.hw_steal_ratio h.hw_backoffs h.hw_breaker_opens
       h.hw_breaker_skips h.hw_sheds h.hw_max_pending);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Cross-run profile diff                                             *)
(* ------------------------------------------------------------------ *)

type verdict_change = {
  vc_key : string;
  vc_field : string;
  vc_old : string;
  vc_new : string;
}

type phase_delta = {
  pd_key : string;
  pd_phase : string;
  pd_old_ms : float;
  pd_new_ms : float;
  pd_pct : float;
}

type diff = {
  d_old_digest : string;
  d_new_digest : string;
  d_matched : int;
  d_added : string list;
  d_removed : string list;
  d_changed : verdict_change list;
  d_regressed : phase_delta list;
  d_improved : phase_delta list;
  d_timed : int;
}

(* Pair two row lists by content digest.  Rows sharing a digest (the same
   bytes under several names, or across renames) pair in key-sorted
   order, so duplicated content cannot cross-match arbitrarily; the
   pairing is a pure function of the two row sets.  Returns the pairs
   plus each side's unpaired keys in their original row order. *)
let join_by_digest ~digest_of ~key_of old_rows new_rows =
  let group rows =
    let tbl : (string, 'a list ref) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun r ->
        match Hashtbl.find_opt tbl (digest_of r) with
        | Some cell -> cell := r :: !cell
        | None -> Hashtbl.replace tbl (digest_of r) (ref [ r ]))
      rows;
    tbl
  in
  let old_g = group old_rows and new_g = group new_rows in
  let by_key l =
    List.sort (fun a b -> compare (key_of a) (key_of b)) (List.rev l)
  in
  let pairs = ref [] in
  let paired_old : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let paired_new : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* Iterate old rows (not the hashtable) so pair order is deterministic:
     first-appearance order of each digest in the old run. *)
  let seen_digest : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let d = digest_of r in
      if not (Hashtbl.mem seen_digest d) then begin
        Hashtbl.replace seen_digest d ();
        match Hashtbl.find_opt new_g d with
        | None -> ()
        | Some news ->
          let olds = by_key !(Hashtbl.find old_g d) in
          let news = by_key !news in
          let rec walk os ns =
            match (os, ns) with
            | o :: os', n :: ns' ->
              pairs := (o, n) :: !pairs;
              Hashtbl.replace paired_old (key_of o) ();
              Hashtbl.replace paired_new (key_of n) ();
              walk os' ns'
            | _, [] | [], _ -> ()
          in
          walk olds news
      end)
    old_rows;
  let removed =
    List.filter_map
      (fun r -> if Hashtbl.mem paired_old (key_of r) then None else Some (key_of r))
      old_rows
  and added =
    List.filter_map
      (fun r -> if Hashtbl.mem paired_new (key_of r) then None else Some (key_of r))
      new_rows
  in
  (List.rev !pairs, removed, added)

let verdict_fields (b : Manifest.binary) =
  [
    ("status", b.Manifest.b_status);
    ("arch", b.Manifest.b_arch);
    ("text_bytes", string_of_int b.Manifest.b_text_bytes);
    ("insns", string_of_int b.Manifest.b_insns);
    ("resyncs", string_of_int b.Manifest.b_resyncs);
    ("truth", string_of_int b.Manifest.b_truth);
  ]

let diff ?(threshold = 20.0) ~(old_run : Manifest.t) ~(new_run : Manifest.t)
    ?(old_profiles = []) ?(new_profiles = []) () =
  let pairs, removed, added =
    join_by_digest
      ~digest_of:(fun b -> b.Manifest.b_digest)
      ~key_of:Manifest.key old_run.Manifest.rows new_run.Manifest.rows
  in
  let changed =
    List.concat_map
      (fun ((o : Manifest.binary), (n : Manifest.binary)) ->
        List.filter_map
          (fun ((fo, vo), (fn, vn)) ->
            assert (fo = fn);
            if vo = vn then None
            else Some { vc_key = Manifest.key n; vc_field = fn; vc_old = vo; vc_new = vn })
          (List.combine (verdict_fields o) (verdict_fields n)))
      pairs
  in
  (* The timing axis, when both runs shipped profile rows: the same
     digest join, then total and per-phase deltas.  A non-positive time
     on either side (--no-timing, a zeroed quarantine row) is never
     compared — there is no ratio to take. *)
  let ppairs, _, _ =
    join_by_digest
      ~digest_of:(fun (r : Profiles.row) -> r.Profiles.digest)
      ~key_of:Profiles.key old_profiles new_profiles
  in
  let regressed = ref [] and improved = ref [] and timed = ref 0 in
  let compare_ms key phase old_ms new_ms =
    if old_ms > 0.0 && new_ms > 0.0 then begin
      let pct = (new_ms -. old_ms) /. old_ms *. 100.0 in
      let delta =
        { pd_key = key; pd_phase = phase; pd_old_ms = old_ms; pd_new_ms = new_ms; pd_pct = pct }
      in
      if pct > threshold then regressed := delta :: !regressed
      else if pct < -.threshold then improved := delta :: !improved
    end
  in
  List.iter
    (fun ((o : Profiles.row), (n : Profiles.row)) ->
      let key = Profiles.key n in
      if o.Profiles.total_ms > 0.0 && n.Profiles.total_ms > 0.0 then incr timed;
      compare_ms key "total" o.Profiles.total_ms n.Profiles.total_ms;
      List.iter
        (fun (phase, new_ms) ->
          match List.assoc_opt phase o.Profiles.phases with
          | Some old_ms -> compare_ms key phase old_ms new_ms
          | None -> ())
        n.Profiles.phases)
    ppairs;
  let by_severity sign l =
    List.sort
      (fun a b ->
        match compare (sign *. b.pd_pct) (sign *. a.pd_pct) with
        | 0 -> compare (a.pd_key, a.pd_phase) (b.pd_key, b.pd_phase)
        | c -> c)
      l
  in
  {
    d_old_digest = old_run.Manifest.r_digest;
    d_new_digest = new_run.Manifest.r_digest;
    d_matched = List.length pairs;
    d_added = added;
    d_removed = removed;
    d_changed = changed;
    d_regressed = by_severity 1.0 !regressed;
    d_improved = by_severity (-1.0) !improved;
    d_timed = !timed;
  }

let clean d =
  d.d_changed = [] && d.d_regressed = [] && d.d_added = [] && d.d_removed = []

let render_diff d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "cetstat diff: %s -> %s\n" d.d_old_digest d.d_new_digest);
  Buffer.add_string buf
    (Printf.sprintf
       "  joined %d binaries by content digest (%d added, %d removed)\n"
       d.d_matched (List.length d.d_added) (List.length d.d_removed));
  List.iter (fun k -> Buffer.add_string buf (Printf.sprintf "    added   %s\n" k)) d.d_added;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "    removed %s\n" k))
    d.d_removed;
  Buffer.add_string buf
    (Printf.sprintf "  verdicts: %d changed\n" (List.length d.d_changed));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "    %-40s %-10s %s -> %s\n" c.vc_key c.vc_field c.vc_old
           c.vc_new))
    d.d_changed;
  Buffer.add_string buf
    (Printf.sprintf "  timing: %d rows timed on both sides, %d regressed, %d improved\n"
       d.d_timed
       (List.length d.d_regressed)
       (List.length d.d_improved));
  let delta_line verb x =
    Buffer.add_string buf
      (Printf.sprintf "    %s %-40s %-10s %10.3f ms -> %10.3f ms  %+7.1f%%\n" verb
         x.pd_key x.pd_phase x.pd_old_ms x.pd_new_ms x.pd_pct)
  in
  List.iter (delta_line "slower") d.d_regressed;
  List.iter (delta_line "faster") d.d_improved;
  Buffer.add_string buf
    (if clean d then "  verdict: CLEAN\n" else "  verdict: DIFFERS\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Robust anomaly detection                                           *)
(* ------------------------------------------------------------------ *)

type anomaly = {
  an_key : string;
  an_digest : string;
  an_metric : string;
  an_value : float;
  an_median : float;
  an_z : float;
}

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0
  end

(* Median/MAD z-scores: robust against the very outliers being hunted —
   one straggler cannot drag a mean-based baseline toward itself.  0.6745
   rescales the MAD to the standard deviation of a normal population, the
   conventional units for the 3.5 cut.  A zero MAD (over half the
   population identical) degrades to the mean absolute deviation; a zero
   there too means a constant population, which has no outliers. *)
let robust_z xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let med = median xs in
    let devs = Array.map (fun x -> Float.abs (x -. med)) xs in
    let mad = median devs in
    let denom =
      if mad > 0.0 then mad
      else Array.fold_left ( +. ) 0.0 devs /. float_of_int n
    in
    if denom <= 0.0 then Array.make n 0.0
    else Array.map (fun x -> 0.6745 *. (x -. med) /. denom) xs
  end

let anomalies ?(z_cut = 3.5) rows =
  let ok, excluded =
    List.partition (fun (r : Profiles.row) -> r.Profiles.status = "ok") rows
  in
  let ok = Array.of_list ok in
  let found = ref [] in
  (* min_dev is a practical-significance floor on |value - median|.  A
     near-constant population has a near-zero MAD, so clock-resolution
     noise (a 0.01% phase share against a 0.00% median) passes any pure
     z cut with an absurd score; requiring the deviation to also be
     material keeps the report to outliers worth reading. *)
  let scan metric ~min_dev value_of =
    (* Indices of ok rows this metric is defined on. *)
    let idx =
      Array.of_list
        (List.filter_map
           (fun i -> Option.map (fun v -> (i, v)) (value_of ok.(i)))
           (List.init (Array.length ok) Fun.id))
    in
    let values = Array.map snd idx in
    let zs = robust_z values in
    let med = median values in
    let hits = ref [] in
    Array.iteri
      (fun k (i, v) ->
        if Float.abs zs.(k) >= z_cut && Float.abs (v -. med) >= min_dev med then
          hits :=
            {
              an_key = Profiles.key ok.(i);
              an_digest = ok.(i).Profiles.digest;
              an_metric = metric;
              an_value = v;
              an_median = med;
              an_z = zs.(k);
            }
            :: !hits)
      idx;
    found :=
      !found
      @ List.sort
          (fun a b ->
            match compare (Float.abs b.an_z) (Float.abs a.an_z) with
            | 0 -> compare a.an_key b.an_key
            | c -> c)
          (List.rev !hits)
  in
  scan "total_ms"
    ~min_dev:(fun med -> 0.1 *. med)
    (fun r -> if r.Profiles.total_ms > 0.0 then Some r.Profiles.total_ms else None);
  (* Phase shares: where does a binary's time go, as a fraction — scale-
     free, so a big binary is not an anomaly merely for being big. *)
  let phase_names =
    match Array.length ok with
    | 0 -> []
    | _ -> List.map fst ok.(0).Profiles.phases
  in
  List.iter
    (fun phase ->
      scan ("share:" ^ phase)
        ~min_dev:(fun _ -> 0.05)
        (fun r ->
          match List.assoc_opt phase r.Profiles.phases with
          | Some ms when r.Profiles.total_ms > 0.0 -> Some (ms /. r.Profiles.total_ms)
          | _ -> None))
    phase_names;
  (!found, excluded)

let render_anomalies (found, excluded) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "ANOMALIES (median/MAD robust z-score)\n";
  if found = [] then Buffer.add_string buf "  none\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "  %-16s %-40s %12s %12s %8s\n" "metric" "binary" "value"
         "median" "z");
    List.iter
      (fun a ->
        Buffer.add_string buf
          (Printf.sprintf "  %-16s %-40s %12.4f %12.4f %+8.2f\n" a.an_metric
             a.an_key a.an_value a.an_median a.an_z))
      found
  end;
  if excluded <> [] then begin
    let by_status : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun (r : Profiles.row) ->
        match Hashtbl.find_opt by_status r.Profiles.status with
        | Some c -> incr c
        | None -> Hashtbl.replace by_status r.Profiles.status (ref 1))
      excluded;
    let counts =
      List.sort compare
        (Hashtbl.fold (fun s c acc -> (s, !c) :: acc) by_status [])
    in
    Buffer.add_string buf
      (Printf.sprintf "  %d rows excluded from baselines (%s)\n"
         (List.length excluded)
         (String.concat ", "
            (List.map (fun (s, c) -> Printf.sprintf "%d %s" c s) counts)))
  end;
  Buffer.contents buf
