(** The cross-run analyzer behind [cetstat]: per-phase latency aggregates
    over profile rows (via {!Cet_telemetry.Hist}), scheduler health
    derived from trace spans and counters, a content-hash-joined profile
    diff between two runs, and robust median/MAD anomaly detection.

    Every renderer emits fixed-key-order tables whose bytes depend only
    on the parsed artifacts — two runs whose artifacts are byte-identical
    (the [--no-timing] determinism guarantee) render byte-identically,
    whatever [--jobs] or [--chaos] produced them. *)

(** {1 Per-phase latency aggregates} *)

type phase_stat = {
  ps_phase : string;
  ps_count : int;  (** rows with a sample for this phase *)
  ps_total_ms : float;
  ps_mean_ms : float;
  ps_p50_ms : float;
  ps_p99_ms : float;
  ps_max_ms : float;
}

val phase_stats : Profiles.row list -> phase_stat list
(** One stat per phase name in first-appearance order, plus a final
    ["total"] row over [total_ms].  Quantiles come from a
    {!Cet_telemetry.Hist} fed with the rows' times. *)

val render_phase_stats : phase_stat list -> string

(** {1 Scheduler health} *)

type health = {
  hw_workers : int;  (** sheets that ran at least one harness.binary span *)
  hw_wall_ms : float;  (** harness.wall_s gauge, when recorded *)
  hw_busy_ms : float;  (** summed harness.binary span time across workers *)
  hw_busy_fraction : float;
      (** busy / (workers * wall); 0 when wall is unknown *)
  hw_queue_wait_ms : float;
      (** per-worker average of (wall - busy): time a worker spent
          without a binary in hand — stealing, idling at the queue, or
          blocked on admission *)
  hw_binaries : int;  (** harness.binaries counter *)
  hw_steals : int;
  hw_steal_ratio : float;  (** steals per executed binary *)
  hw_backoffs : int;
  hw_breaker_opens : int;
  hw_breaker_skips : int;
  hw_sheds : int;
  hw_max_pending : int;  (** admission high-water mark *)
}

val health_of_trace : Trace.t -> health
(** Derive scheduler health from a parsed trace: busy time from
    [harness.binary] spans grouped by sheet, event volumes from the
    [scheduler.*] counters (JSONL traces; a Chrome trace contributes
    spans only). *)

val render_health : health -> string

(** {1 Cross-run profile diff} *)

type verdict_change = {
  vc_key : string;  (** the new run's row identity *)
  vc_field : string;
  vc_old : string;
  vc_new : string;
}

type phase_delta = {
  pd_key : string;
  pd_phase : string;  (** a phase name, or ["total"] *)
  pd_old_ms : float;
  pd_new_ms : float;
  pd_pct : float;  (** positive = slower in the new run *)
}

type diff = {
  d_old_digest : string;
  d_new_digest : string;
  d_matched : int;  (** binaries joined by content digest *)
  d_added : string list;  (** keys only in the new run, new order *)
  d_removed : string list;  (** keys only in the old run, old order *)
  d_changed : verdict_change list;
      (** joined rows whose analysis verdict (status, arch, decode
          volume, truth count) differs — timing never counts *)
  d_regressed : phase_delta list;  (** beyond [+threshold], sorted worst first *)
  d_improved : phase_delta list;  (** beyond [-threshold], sorted best first *)
  d_timed : int;  (** joined profile rows with positive time on both sides *)
}

val diff :
  ?threshold:float ->
  old_run:Manifest.t ->
  new_run:Manifest.t ->
  ?old_profiles:Profiles.row list ->
  ?new_profiles:Profiles.row list ->
  unit ->
  diff
(** Join two manifests by content digest (rows sharing a digest pair up
    in key order, so duplicated bytes cannot cross-match) and compare
    verdicts; when both runs' profile rows are given, additionally
    compare [total_ms] and every phase on the same join, flagging changes
    beyond [threshold] percent (default 20).  Rows with non-positive time
    on either side are never timing-compared — an untimed
    ([--no-timing]) run diffs clean against anything on the timing axis. *)

val clean : diff -> bool
(** No verdict changes, no regressions, nothing added or removed — the
    [cetstat diff] exit-0 condition. *)

val render_diff : diff -> string
(** Deterministic report: digests, join coverage, verdict changes, and
    timing deltas.  Never mentions input paths, jobs, or chaos seeds, so
    diffing runs produced under different schedulers renders
    byte-identically. *)

(** {1 Robust anomaly detection} *)

type anomaly = {
  an_key : string;
  an_digest : string;
  an_metric : string;  (** ["total_ms"] or ["share:<phase>"] *)
  an_value : float;
  an_median : float;
  an_z : float;  (** robust z-score, always >= the cut that kept it *)
}

val robust_z : float array -> float array
(** Per-element median/MAD z-scores ([0.6745 * |x - median| / MAD],
    signed).  When the MAD is zero the mean absolute deviation stands in;
    when that is zero too every score is 0 (a constant population has no
    outliers). *)

val anomalies :
  ?z_cut:float -> Profiles.row list -> anomaly list * Profiles.row list
(** Median/MAD outliers (default cut 3.5) over per-binary wall time and
    per-phase time shares.  A practical-significance floor accompanies
    the z cut — total time must deviate by at least 10% of the median,
    a share by at least 0.05 — because a near-constant population's MAD
    is so small that clock-resolution noise passes any pure z cut.
    Only ["ok"] rows form the baseline {e and} the candidate set;
    shed/quarantined/breaker-skip rows are returned separately so the
    report can show them without letting degraded timings poison the
    statistics.  Anomalies sort by metric, then descending |z|, then
    key. *)

val render_anomalies : anomaly list * Profiles.row list -> string
