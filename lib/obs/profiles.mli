(** Typed reader for [evaluate --profile-out] per-binary profile JSONL —
    the timing half of a run that the manifest's verdict rows deliberately
    leave out.  Rows mirror [Cet_eval.Harness.profile] (identity, content
    digest, decode volume, status, total wall time and the fixed-order
    phase split). *)

type row = {
  suite : string;
  program : string;
  config : string;
  arch : string;
  digest : string;
  text_bytes : int;
  insns : int;
  resyncs : int;
  truth : int;
  diags : int;
  attempts : int;
  status : string;
  total_ms : float;
  phases : (string * float) list;  (** fixed vocabulary, document order *)
}

val key : row -> string
(** ["suite/program[config]"]. *)

val parse : string -> (row list, string) result
(** Parse whole-file profile JSONL contents, rows in file order. *)

val load : string -> (row list, string) result
(** {!parse} of a file's contents; I/O errors become [Error]. *)
