module Jz = Cet_util.Jsonl

type binary = {
  b_suite : string;
  b_program : string;
  b_config : string;
  b_arch : string;
  b_digest : string;
  b_status : string;
  b_attempts : int;
  b_text_bytes : int;
  b_insns : int;
  b_resyncs : int;
  b_truth : int;
}

type artifacts = {
  a_profile : string option;
  a_quarantine : string option;
  a_trace : string option;
  a_metrics : string option;
}

type t = {
  r_digest : string;
  r_experiment : string;
  r_seed : int;
  r_scale : float;
  r_jobs : int;
  r_chaos : int option;
  r_timing : bool;
  r_binaries : int;
  r_functions : int;
  r_quarantined : int;
  r_artifacts : artifacts;
  rows : binary list;
}

let schema = 1

let key b = b.b_suite ^ "/" ^ b.b_program ^ "[" ^ b.b_config ^ "]"

(* Reader side of the run-digest recipe.  The writer
   (Cet_eval.Harness.run_digest) folds "key=digest" lines in plan order;
   agreement is pinned by a cross-library test, and [parse] enforces it
   on every manifest read. *)
let recompute_digest rows =
  let buf = Buffer.create 4096 in
  List.iter
    (fun b ->
      Buffer.add_string buf (key b);
      Buffer.add_char buf '=';
      Buffer.add_string buf b.b_digest;
      Buffer.add_char buf '\n')
    rows;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Jz.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

(* null and absent both mean "no such artifact"; a string is a pointer. *)
let opt_str_field name j =
  match Jz.member name j with
  | None | Some Jz.Null -> Ok None
  | Some v -> (
    match Jz.str v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "field %S is neither string nor null" name))

let opt_int_field name j =
  match Jz.member name j with
  | None | Some Jz.Null -> Ok None
  | Some v -> (
    match Jz.int v with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "field %S is neither integer nor null" name))

let check_schema j =
  let* s = field "schema" Jz.int j in
  if s <> schema then
    Error (Printf.sprintf "unsupported manifest schema %d (want %d)" s schema)
  else Ok ()

let binary_of j =
  let* () = check_schema j in
  let* b_suite = field "suite" Jz.str j in
  let* b_program = field "program" Jz.str j in
  let* b_config = field "config" Jz.str j in
  let* b_arch = field "arch" Jz.str j in
  let* b_digest = field "digest" Jz.str j in
  let* b_status = field "status" Jz.str j in
  let* b_attempts = field "attempts" Jz.int j in
  let* b_text_bytes = field "text_bytes" Jz.int j in
  let* b_insns = field "insns" Jz.int j in
  let* b_resyncs = field "resyncs" Jz.int j in
  let* b_truth = field "truth" Jz.int j in
  Ok
    {
      b_suite; b_program; b_config; b_arch; b_digest; b_status; b_attempts;
      b_text_bytes; b_insns; b_resyncs; b_truth;
    }

let header_of j =
  let* () = check_schema j in
  let* r_digest = field "digest" Jz.str j in
  let* r_experiment = field "experiment" Jz.str j in
  let* r_seed = field "seed" Jz.int j in
  let* r_scale = field "scale" Jz.num j in
  let* r_jobs = field "jobs" Jz.int j in
  let* r_chaos = opt_int_field "chaos" j in
  let* r_timing = field "timing" Jz.bool j in
  let* r_binaries = field "binaries" Jz.int j in
  let* r_functions = field "functions" Jz.int j in
  let* r_quarantined = field "quarantined" Jz.int j in
  let* arts = field "artifacts" Option.some j in
  let* a_profile = opt_str_field "profile" arts in
  let* a_quarantine = opt_str_field "quarantine" arts in
  let* a_trace = opt_str_field "trace" arts in
  let* a_metrics = opt_str_field "metrics" arts in
  Ok
    {
      r_digest; r_experiment; r_seed; r_scale; r_jobs; r_chaos; r_timing;
      r_binaries; r_functions; r_quarantined;
      r_artifacts = { a_profile; a_quarantine; a_trace; a_metrics };
      rows = [];
    }

let parse contents =
  let* rows = Jz.parse_lines contents in
  let kind j = Option.bind (Jz.member "kind" j) Jz.str in
  match rows with
  | [] -> Error "empty manifest"
  | header :: rest ->
    let* () =
      if kind header = Some "run" then Ok ()
      else Error "first manifest row is not a kind:\"run\" header"
    in
    let* run = header_of header in
    let* bins =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* () =
            if kind j = Some "binary" then Ok ()
            else Error "manifest row after the header is not kind:\"binary\""
          in
          let* b = binary_of j in
          Ok (b :: acc))
        (Ok []) rest
    in
    let bins = List.rev bins in
    let recomputed = recompute_digest bins in
    if recomputed <> run.r_digest then
      Error
        (Printf.sprintf
           "manifest digest mismatch: header %s, recomputed %s (truncated or \
            edited manifest?)"
           run.r_digest recomputed)
    else Ok { run with rows = bins }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (
    match parse contents with
    | Ok m -> Ok m
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e
