(** Typed reader for [evaluate --manifest-out] run manifests.

    A manifest is schema-tagged JSONL: one [kind:"run"] header (the run's
    content digest, options, corpus scale/jobs/chaos seed, pointers to
    the run's other artifacts) followed by one [kind:"binary"] row per
    evaluated binary.  The binary rows carry each binary's stable content
    digest — the join key for every cross-run comparison — plus its
    analysis verdict (status and decode volume).

    Reading is strict: a schema this reader does not understand is an
    error, and the header digest is verified against a recomputation over
    the binary rows, so a truncated or hand-edited manifest cannot pass
    as a run identity. *)

type binary = {
  b_suite : string;
  b_program : string;
  b_config : string;
  b_arch : string;
  b_digest : string;  (** hex MD5 of the stripped ELF bytes *)
  b_status : string;  (** ["ok"], ["shed"], ["quarantined"], ["breaker-skip"] *)
  b_attempts : int;
  b_text_bytes : int;
  b_insns : int;
  b_resyncs : int;
  b_truth : int;
}

type artifacts = {
  a_profile : string option;
  a_quarantine : string option;
  a_trace : string option;
  a_metrics : string option;
}

type t = {
  r_digest : string;  (** the run digest from the header, verified *)
  r_experiment : string;
  r_seed : int;
  r_scale : float;
  r_jobs : int;
  r_chaos : int option;
  r_timing : bool;
  r_binaries : int;  (** successfully evaluated binaries *)
  r_functions : int;
  r_quarantined : int;
  r_artifacts : artifacts;
  rows : binary list;  (** in plan order, as written *)
}

val schema : int
(** The manifest schema this reader understands (1). *)

val key : binary -> string
(** ["suite/program[config]"] — the identity half of a row. *)

val recompute_digest : binary list -> string
(** The run digest recipe, reader side: hex MD5 over one ["key=digest"]
    line per row in row order.  Must agree with
    [Cet_eval.Harness.run_digest] (pinned by test). *)

val parse : string -> (t, string) result
(** Parse whole-file manifest contents.  Errors on a missing or mistyped
    field, an unsupported schema, a header whose digest does not match
    {!recompute_digest} of the rows, or malformed JSON. *)

val load : string -> (t, string) result
(** {!parse} of a file's contents; I/O errors become [Error]. *)
