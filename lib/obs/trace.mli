(** Typed reader for [evaluate --trace-out] files, both formats: the
    JSON-lines trace ([type:"span"/"phase"/"counter"/"gauge"] rows) and
    the Chrome trace-event array ([ph:"X"] complete spans plus [ph:"i"]
    instant markers).  The format is sniffed from the first non-blank
    byte ([\[] opens a Chrome array; anything else is JSONL).

    Only what the analyzer consumes is retained: spans with their owning
    sheet/tid, merged counters and gauges (JSONL only — the Chrome format
    has no counter rows), and instant-marker names (Chrome only). *)

type span = {
  t_sheet : int;  (** registry sheet id = worker track (tid) *)
  t_name : string;
  t_start_ns : int;
  t_dur_ns : int;
}

type t = {
  spans : span list;  (** in file order *)
  counters : (string * int) list;  (** merged registry counters *)
  gauges : (string * float) list;
  instants : (string * int) list;  (** Chrome [ph:"i"] markers: name, tid *)
}

val parse : string -> (t, string) result

val load : string -> (t, string) result
(** {!parse} of a file's contents; I/O errors become [Error]. *)

val counter : t -> string -> int
(** A counter's value, 0 when absent. *)

val gauge : t -> string -> float
(** A gauge's value, 0.0 when absent. *)
