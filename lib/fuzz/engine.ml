module Prng = Cet_util.Prng
module Options = Cet_compiler.Options

(* ---- Seed corpus ------------------------------------------------------ *)

(* A handful of well-formed binaries spanning both architectures, C and
   C++ (for exception tables), and inline jump tables — small enough that
   thousands of mutant analyses stay fast, diverse enough that mutations
   reach every parser the robust path guards. *)
let seed_pool ~seed =
  let c_profile = Cet_corpus.Profile.scaled 0.02 Cet_corpus.Profile.coreutils in
  let cpp_profile =
    {
      (Cet_corpus.Profile.scaled 0.02 Cet_corpus.Profile.spec) with
      Cet_corpus.Profile.lang_cpp_fraction = 1.0;
    }
  in
  let build profile config index =
    let ir = Cet_corpus.Generator.program ~seed ~profile ~index in
    let res = Cet_compiler.Link.link config ir in
    Cet_elf.Writer.write ~strip:true res.Cet_compiler.Link.image
  in
  let gcc_x64 = Options.default in
  let clang_x86 =
    { Options.default with Options.compiler = Options.Clang; arch = Cet_x86.Arch.X86 }
  in
  let gcc_inline = { Options.default with Options.jump_tables_in_text = true } in
  [|
    build c_profile gcc_x64 0;
    build c_profile clang_x86 0;
    build c_profile gcc_inline 1;
    build cpp_profile gcc_x64 0;
    build cpp_profile clang_x86 1;
  |]

(* ---- Section location (for targeted mutations) ------------------------ *)

(* Little-endian field readers over the original, well-formed bytes.  Any
   structural surprise just disables the targeted mutation (caller falls
   back to blind byte flips), so plain exceptions are fine here. *)
let u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let u32 s off =
  u16 s off lor (u16 s (off + 2) lsl 16)

let u64 s off = u32 s off lor (u32 s (off + 4) lsl 32)

type region = { r_off : int; r_size : int }

(* Byte extent of the section-header table. *)
let shdr_region bytes =
  try
    let is64 = Char.code bytes.[4] = 2 in
    let shoff = if is64 then u64 bytes 0x28 else u32 bytes 0x20 in
    let shentsize = u16 bytes (if is64 then 0x3a else 0x2e) in
    let shnum = u16 bytes (if is64 then 0x3c else 0x30) in
    let size = shentsize * shnum in
    if shoff > 0 && size > 0 && shoff + size <= String.length bytes then
      Some { r_off = shoff; r_size = size }
    else None
  with _ -> None

(* File extent of a named section, resolved through [.shstrtab]. *)
let section_region bytes name =
  try
    let is64 = Char.code bytes.[4] = 2 in
    let shoff = if is64 then u64 bytes 0x28 else u32 bytes 0x20 in
    let shentsize = u16 bytes (if is64 then 0x3a else 0x2e) in
    let shnum = u16 bytes (if is64 then 0x3c else 0x30) in
    let shstrndx = u16 bytes (if is64 then 0x3e else 0x32) in
    let ent i = shoff + (i * shentsize) in
    let sh_name i = u32 bytes (ent i) in
    let sh_offset i = if is64 then u64 bytes (ent i + 0x18) else u32 bytes (ent i + 0x10) in
    let sh_size i = if is64 then u64 bytes (ent i + 0x20) else u32 bytes (ent i + 0x14) in
    let str_off = sh_offset shstrndx in
    let name_at i =
      let start = str_off + sh_name i in
      let stop = String.index_from bytes start '\000' in
      String.sub bytes start (stop - start)
    in
    let found = ref None in
    for i = 0 to shnum - 1 do
      if !found = None && name_at i = name then
        found := Some { r_off = sh_offset i; r_size = sh_size i }
    done;
    (match !found with
    | Some r when r.r_off >= 0 && r.r_size > 0 && r.r_off + r.r_size <= String.length bytes ->
      ()
    | _ -> found := None);
    !found
  with _ -> None

(* ---- Mutations -------------------------------------------------------- *)

let classes = [| "header"; "shdr"; "lsda"; "flip"; "truncate" |]

let flip_bytes g b ~off ~size ~count =
  for _ = 1 to count do
    let i = off + Prng.int g size in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Prng.int g 255)))
  done

(* Apply one mutation of [cls] to a copy of [orig]; classes whose target
   structure cannot be located degrade to blind flips so every draw still
   produces a mutant. *)
let mutate g ~cls orig =
  let len = String.length orig in
  match cls with
  | "truncate" -> String.sub orig 0 (1 + Prng.int g len)
  | _ ->
    let b = Bytes.of_string orig in
    (match cls with
    | "header" -> flip_bytes g b ~off:0 ~size:(min 64 len) ~count:(1 + Prng.int g 4)
    | "shdr" -> (
      match shdr_region orig with
      | Some r -> flip_bytes g b ~off:r.r_off ~size:r.r_size ~count:(1 + Prng.int g 8)
      | None -> flip_bytes g b ~off:0 ~size:len ~count:(1 + Prng.int g 8))
    | "lsda" -> (
      let name = if Prng.bool g then ".gcc_except_table" else ".eh_frame" in
      match section_region orig name with
      | Some r ->
        if Prng.bool g then
          (* Truncation: zero the section's tail, which cuts LSDA records
             and CIE/FDE bodies mid-field without moving any file
             offsets. *)
          let keep = Prng.int g r.r_size in
          Bytes.fill b (r.r_off + keep) (r.r_size - keep) '\000'
        else flip_bytes g b ~off:r.r_off ~size:r.r_size ~count:(1 + Prng.int g 8)
      | None -> flip_bytes g b ~off:0 ~size:len ~count:(1 + Prng.int g 8))
    | "flip" -> flip_bytes g b ~off:0 ~size:len ~count:(1 + Prng.int g 16)
    | _ -> invalid_arg "Engine.mutate: unknown class");
    Bytes.to_string b

(* ---- Running mutants -------------------------------------------------- *)

type crash = {
  c_class : string;
  c_index : int;  (** mutant number, for replay with the same seed *)
  c_error : string;
  c_backtrace : string;
  c_journal : Cet_telemetry.Journal.event list;
}

type summary = {
  total : int;
  per_class : (string * int) list;  (** mutants drawn per mutation class *)
  clean : int;
  degraded : int;
  rejected : int;
  timeouts : int;
  crashes : crash list;
}

let has_timeout diags =
  List.exists (fun (d : Cet_util.Diag.t) -> d.Cet_util.Diag.code = "timeout") diags

(* Per-mutant verdicts are computed in parallel but merged in index
   order, so the summary stays deterministic in [seed] whatever the
   worker count or chaos seed. *)
type verdict = Clean | Degraded of { timeout : bool } | Rejected | Crashed of crash

let run ?(max_seconds = 2.0) ?jobs ?chaos ~seed ~count () =
  Printexc.record_backtrace true;
  let g = Prng.create seed in
  let pool = seed_pool ~seed in
  let per_class = Array.make (Array.length classes) 0 in
  (* Mutant generation stays a single sequential pass over one PRNG
     stream — the mutant at index [i] is byte-identical to what the
     pre-scheduler loop produced, and independent of [jobs]/[chaos]. *)
  let mutants =
    Array.init count (fun index ->
        let cls_i = Prng.int g (Array.length classes) in
        let cls = classes.(cls_i) in
        per_class.(cls_i) <- per_class.(cls_i) + 1;
        let orig = pool.(Prng.int g (Array.length pool)) in
        let mutant = mutate g ~cls orig in
        let anchored = Prng.bool g in
        (index, cls, mutant, anchored))
  in
  let wq =
    Cet_util.Work_queue.create ~observer:Cet_telemetry.Bridge.scheduler_observer
      (Cet_util.Work_queue.config ?jobs ~seed
         ?chaos:
           (Option.map (fun s -> Cet_util.Work_queue.Chaos.default ~seed:s) chaos)
         ())
  in
  let analyze k =
    let index, cls, mutant, anchored = mutants.(k) in
    (* One marker per mutant so a crash's black box shows which mutants
       (and how much analysis activity) led up to it. *)
    if Cet_telemetry.Journal.enabled () then
      Cet_telemetry.Journal.record ~v:index Cet_telemetry.Journal.Phase_begin
        ("fuzz.mutant:" ^ cls);
    match Core.Funseeker.analyze_bytes_diag ~anchored ~max_seconds mutant with
    | Ok (_, []) -> Clean
    | Ok (_, diags) -> Degraded { timeout = has_timeout diags }
    | Error _ -> Rejected
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Crashed
        {
          c_class = cls;
          c_index = index;
          c_error = Printexc.to_string e;
          c_backtrace = Printexc.raw_backtrace_to_string bt;
          c_journal = Cet_telemetry.Journal.recent ~n:32 ();
        }
  in
  let verdicts = Cet_util.Work_queue.map wq count analyze in
  let clean = ref 0 and degraded = ref 0 and rejected = ref 0 and timeouts = ref 0 in
  let crashes = ref [] in
  Array.iter
    (function
      | Clean -> incr clean
      | Degraded { timeout } ->
        incr degraded;
        if timeout then incr timeouts
      | Rejected -> incr rejected
      | Crashed c -> crashes := c :: !crashes)
    verdicts;
  {
    total = count;
    per_class = Array.to_list (Array.mapi (fun i n -> (classes.(i), n)) per_class);
    clean = !clean;
    degraded = !degraded;
    rejected = !rejected;
    timeouts = !timeouts;
    crashes = List.rev !crashes;
  }

(* ---- Crash report (JSONL) --------------------------------------------- *)

(* Version of the crash JSONL format; bump on any key change so replay
   tooling can refuse rows it does not understand. *)
let crash_schema = 1

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let journal_event_json (e : Cet_telemetry.Journal.event) =
  Printf.sprintf "{\"kind\":\"%s\",\"name\":\"%s\",\"v\":%d,\"ns\":%d}"
    (Cet_telemetry.Journal.kind_label e.Cet_telemetry.Journal.j_kind)
    (json_escape e.Cet_telemetry.Journal.j_name)
    e.Cet_telemetry.Journal.j_v e.Cet_telemetry.Journal.j_ns

let write_crashes oc s =
  List.iter
    (fun c ->
      Printf.fprintf oc
        "{\"schema\":%d,\"class\":\"%s\",\"index\":%d,\"error\":\"%s\",\"backtrace\":\"%s\",\"journal\":[%s]}\n"
        crash_schema (json_escape c.c_class) c.c_index (json_escape c.c_error)
        (json_escape c.c_backtrace)
        (String.concat "," (List.map journal_event_json c.c_journal)))
    s.crashes

let read_crashes text =
  let module Jz = Cet_util.Jsonl in
  let module J = Cet_telemetry.Journal in
  let ( let* ) = Result.bind in
  let field name conv j =
    match Option.bind (Jz.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let event_of j =
    let* kind_s = field "kind" Jz.str j in
    let* kind =
      match J.kind_of_label kind_s with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown journal kind %S" kind_s)
    in
    let* name = field "name" Jz.str j in
    let* v = field "v" Jz.int j in
    let* ns = field "ns" Jz.int j in
    Ok { J.j_kind = kind; j_name = name; j_v = v; j_ns = ns; j_ring = -1 }
  in
  let crash_of j =
    let* schema = field "schema" Jz.int j in
    if schema <> crash_schema then
      Error (Printf.sprintf "unsupported schema %d (want %d)" schema crash_schema)
    else
      let* c_class = field "class" Jz.str j in
      let* c_index = field "index" Jz.int j in
      let* c_error = field "error" Jz.str j in
      let* c_backtrace = field "backtrace" Jz.str j in
      let* journal = field "journal" Jz.list j in
      let* c_journal =
        List.fold_left
          (fun acc ev ->
            let* acc = acc in
            let* e = event_of ev in
            Ok (e :: acc))
          (Ok []) journal
      in
      Ok { c_class; c_index; c_error; c_backtrace; c_journal = List.rev c_journal }
  in
  let* rows = Jz.parse_lines text in
  List.fold_left
    (fun acc row ->
      let* acc = acc in
      let* c = crash_of row in
      Ok (acc @ [ c ]))
    (Ok []) rows

let render s =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "cetfuzz: %d mutants — %d clean, %d degraded, %d rejected, %d crashes\n"
       s.total s.clean s.degraded s.rejected (List.length s.crashes));
  if s.timeouts > 0 then
    Buffer.add_string b (Printf.sprintf "  %d analyses hit the deadline\n" s.timeouts);
  List.iter
    (fun (cls, n) -> Buffer.add_string b (Printf.sprintf "  %-10s %6d mutants\n" cls n))
    s.per_class;
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "  CRASH [%s] mutant #%d: %s\n%s" c.c_class c.c_index c.c_error
           c.c_backtrace);
      if c.c_journal <> [] then begin
        Buffer.add_string b "  flight recorder (last events before the crash):\n";
        List.iter
          (fun e ->
            Buffer.add_string b
              ("    " ^ Cet_telemetry.Journal.event_to_string e ^ "\n"))
          c.c_journal
      end)
    s.crashes;
  Buffer.contents b
