(** Deterministic ELF mutation fuzzer for the robust analysis path.

    A small pool of well-formed corpus binaries (both architectures, C and
    C++, inline jump tables) is corrupted by seeded mutations — ELF header
    bytes, section-header-table bytes, [.gcc_except_table]/[.eh_frame]
    truncation and corruption, blind byte flips, file truncation — and each
    mutant is fed to {!Core.Funseeker.analyze_bytes_diag} under a deadline.
    The contract under test: the robust pipeline NEVER raises and never
    hangs, whatever the bytes; corruption surfaces only as diagnostics or a
    clean [Error].

    Everything is deterministic in [seed]: the pool, every mutation, and
    therefore the whole {!summary} (timing aside, the deadline is generous
    relative to these micro binaries). *)

type crash = {
  c_class : string;  (** mutation class that produced the mutant *)
  c_index : int;  (** mutant number, for replay with the same seed *)
  c_error : string;
  c_backtrace : string;
  c_journal : Cet_telemetry.Journal.event list;
      (** flight-recorder black box at crash time: the per-mutant markers
          and analysis events leading up to the escape ([[]] when the
          journal is disabled) *)
}

type summary = {
  total : int;
  per_class : (string * int) list;  (** mutants drawn per mutation class *)
  clean : int;  (** analyzed with no diagnostics *)
  degraded : int;  (** analyzed with diagnostics *)
  rejected : int;  (** unreadable ELF, reported as a clean [Error] *)
  timeouts : int;  (** degraded analyses that hit the deadline *)
  crashes : crash list;  (** escaped exceptions — must be empty *)
}

val classes : string array
(** The mutation-class names, in draw order. *)

val mutate : Cet_util.Prng.t -> cls:string -> string -> string
(** One seeded mutation of the given class applied to a copy of the bytes
    (exposed for regression tests).  Classes whose target structure cannot
    be located fall back to blind byte flips. *)

val run :
  ?max_seconds:float ->
  ?jobs:int ->
  ?chaos:int ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** Fuzz [count] mutants.  [max_seconds] (default 2.0) bounds each mutant's
    analysis via {!Cet_util.Deadline}.  Mutants are drawn sequentially
    from one PRNG stream, then analysed on a {!Cet_util.Work_queue} pool
    of [jobs] workers (default: the recommended domain count) and merged
    in index order — the summary is byte-identical whatever [jobs], and
    whatever scheduler-chaos [chaos] seed is injected. *)

val render : summary -> string
(** Deterministic human-readable summary, crashes (with backtraces)
    included. *)

val crash_schema : int
(** Version stamped into every crash row's [schema] field. *)

val write_crashes : out_channel -> summary -> unit
(** One JSON object per crash per line ([schema]/[class]/[index]/[error]/
    [backtrace]/[journal]) — the [--crash-out] report format, mirroring
    the harness quarantine report. *)

val read_crashes : string -> (crash list, string) result
(** Parse a whole crash JSONL document back into crash records — the
    round-trip inverse of {!write_crashes} up to the journal events' ring
    ids (not serialised; readers see [-1]).  Rejects rows whose [schema]
    differs from {!crash_schema}. *)
