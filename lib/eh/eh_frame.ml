module W = Cet_util.Bytesio.W
module R = Cet_util.Bytesio.R

type frame = { pc_begin : int; pc_range : int; lsda : int option }

let fde_enc = Pointer_enc.pcrel_sdata4
let lsda_enc = Pointer_enc.pcrel_sdata4
let pers_enc = Pointer_enc.pcrel_sdata4

(* Append a length-prefixed record whose body is produced by [emit], which
   receives the body writer and the vaddr of the body's first byte.  Bodies
   are padded to 4-byte alignment with DW_CFA_nop (0x00). *)
let record out ~vaddr emit =
  let start = W.length out in
  let body = W.create ~size:64 () in
  emit body (vaddr + start + 4);
  W.align body 4;
  W.u32 out (W.length body);
  W.bytes out (W.contents body)

let cie_plain out ~vaddr =
  let off = W.length out in
  record out ~vaddr (fun b _addr ->
      W.u32 b 0 (* CIE id *);
      W.u8 b 1 (* version *);
      W.bytes b "zR\000";
      W.uleb b 1 (* code alignment *);
      W.sleb b (-8) (* data alignment *);
      W.uleb b 16 (* return-address register *);
      W.uleb b 1 (* augmentation data length *);
      W.u8 b fde_enc;
      (* minimal initial CFI: def_cfa rsp+8 *)
      W.u8 b 0x0c;
      W.uleb b 7;
      W.uleb b 8);
  off

let cie_lsda out ~vaddr ~personality =
  let off = W.length out in
  record out ~vaddr (fun b body_addr ->
      W.u32 b 0;
      W.u8 b 1;
      W.bytes b "zPLR\000";
      W.uleb b 1;
      W.sleb b (-8);
      W.uleb b 16;
      W.uleb b 6 (* aug data: enc byte + 4-byte personality + 2 enc bytes *);
      W.u8 b pers_enc;
      Pointer_enc.write b ~enc:pers_enc ~field_addr:(body_addr + W.length b) ~value:personality;
      W.u8 b lsda_enc;
      W.u8 b fde_enc;
      W.u8 b 0x0c;
      W.uleb b 7;
      W.uleb b 8);
  off

let fde out ~vaddr ~cie_off (f : frame) =
  record out ~vaddr (fun b body_addr ->
      let here () = body_addr + W.length b in
      (* CIE pointer: distance from this field back to the CIE. *)
      W.u32 b (W.length out + 4 - cie_off);
      Pointer_enc.write b ~enc:fde_enc ~field_addr:(here ()) ~value:f.pc_begin;
      W.u32 b f.pc_range;
      (match f.lsda with
      | None -> W.uleb b 0
      | Some l ->
        W.uleb b 4;
        Pointer_enc.write b ~enc:lsda_enc ~field_addr:(here ()) ~value:l))

let encode_with_offsets ~vaddr ~personality frames =
  let out = W.create ~size:4096 () in
  let offsets = ref [] in
  let plain = List.filter (fun f -> f.lsda = None) frames in
  let with_lsda = List.filter (fun f -> f.lsda <> None) frames in
  let emit_fde cie_off f =
    offsets := (f.pc_begin, W.length out) :: !offsets;
    fde out ~vaddr ~cie_off f
  in
  if plain <> [] then begin
    let cie_off = cie_plain out ~vaddr in
    List.iter (emit_fde cie_off) plain
  end;
  if with_lsda <> [] then begin
    let cie_off = cie_lsda out ~vaddr ~personality in
    List.iter (emit_fde cie_off) with_lsda
  end;
  W.u32 out 0 (* terminator *);
  (W.contents out, List.rev !offsets)

let encode ~vaddr ~personality frames =
  fst (encode_with_offsets ~vaddr ~personality frames)

type cie_info = { c_fde_enc : int; c_lsda_enc : int option; c_aug_z : bool }

let decode_impl ~lenient ~diag ~vaddr data =
  let len = String.length data in
  let cies = Hashtbl.create 4 in
  let frames = ref [] in
  let pos = ref 0 in
  (try
     while !pos + 4 <= len do
       let r = R.sub data ~pos:!pos ~len:(len - !pos) in
       let record_len = R.u32 r in
       if record_len = 0 then raise Exit;
       if record_len = 0xffffffff then
         invalid_arg "Eh_frame.decode: 64-bit records unsupported";
       let body_start = !pos + 4 in
       let body = R.sub data ~pos:body_start ~len:record_len in
       let id_field_off = body_start in
       let id = R.u32 body in
       if id = 0 then begin
         (* CIE *)
         let version = R.u8 body in
         if version <> 1 && version <> 3 then invalid_arg "Eh_frame.decode: CIE version";
         let aug = Buffer.create 8 in
         let rec aug_loop () =
           let c = R.u8 body in
           if c <> 0 then begin
             Buffer.add_char aug (Char.chr c);
             aug_loop ()
           end
         in
         aug_loop ();
         let aug = Buffer.contents aug in
         ignore (R.uleb body) (* code align *);
         ignore (R.sleb body) (* data align *);
         ignore (R.uleb body) (* return reg *);
         let info = ref { c_fde_enc = Pointer_enc.absptr8; c_lsda_enc = None; c_aug_z = false } in
         if String.length aug > 0 && aug.[0] = 'z' then begin
           let _auglen = R.uleb body in
           info := { !info with c_aug_z = true };
           String.iter
             (fun ch ->
               match ch with
               | 'z' -> ()
               | 'R' -> info := { !info with c_fde_enc = R.u8 body }
               | 'L' -> info := { !info with c_lsda_enc = Some (R.u8 body) }
               | 'P' ->
                 let enc = R.u8 body in
                 ignore
                   (Pointer_enc.read body ~enc
                      ~field_addr:(vaddr + body_start + R.pos body))
               | 'S' -> ()
               | c -> invalid_arg (Printf.sprintf "Eh_frame.decode: augmentation %c" c))
             aug
         end;
         Hashtbl.replace cies !pos !info
       end
       else begin
         (* FDE: id is the distance from its own field back to the CIE. *)
         let cie_off = id_field_off - id in
         match Hashtbl.find_opt cies cie_off with
         | None -> invalid_arg "Eh_frame.decode: FDE references unknown CIE"
         | Some cie ->
           let pc_begin =
             Pointer_enc.read body ~enc:cie.c_fde_enc
               ~field_addr:(vaddr + body_start + R.pos body)
           in
           let pc_range =
             match Pointer_enc.size cie.c_fde_enc with
             | Some 8 -> R.u64 body
             | _ -> R.u32 body
           in
           let lsda =
             if cie.c_aug_z then begin
               let auglen = R.uleb body in
               match cie.c_lsda_enc with
               | Some enc when auglen > 0 ->
                 Some
                   (Pointer_enc.read body ~enc
                      ~field_addr:(vaddr + body_start + R.pos body))
               | _ -> None
             end
             else None
           in
           frames := { pc_begin; pc_range; lsda } :: !frames
       end;
       pos := body_start + record_len
     done
   with
  | Exit -> ()
  | (Invalid_argument _ | R.Out_of_bounds _) as e ->
    (* Lenient mode salvages every record before the corrupt one. *)
    if not lenient then raise e
    else
      Cet_util.Diag.Collector.addf diag ~domain:"eh" ~code:"eh-frame"
        ".eh_frame walk stopped at byte %d of %d: %s (%d frames salvaged)" !pos
        len (Printexc.to_string e) (List.length !frames));
  List.rev !frames

let decode ~vaddr data =
  decode_impl ~lenient:false ~diag:(Cet_util.Diag.Collector.create ()) ~vaddr data

let decode_result ~vaddr data =
  let diag = Cet_util.Diag.Collector.create () in
  let frames = decode_impl ~lenient:true ~diag ~vaddr data in
  (frames, Cet_util.Diag.Collector.list diag)
