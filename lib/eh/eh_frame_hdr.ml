module W = Cet_util.Bytesio.W
module R = Cet_util.Bytesio.R

type entry = { initial_loc : int; fde_addr : int }

(* DW_EH_PE_pcrel|sdata4 for the eh_frame pointer, udata4 for the count,
   DW_EH_PE_datarel|sdata4 (0x3b) for table entries — the GNU defaults. *)
let enc_frame_ptr = 0x1b
let enc_count = 0x03
let enc_table = 0x3b

let size n = 4 + 4 + 4 + (8 * n)

let encode ~vaddr ~eh_frame_vaddr entries =
  let entries =
    List.sort (fun a b -> compare a.initial_loc b.initial_loc) entries
  in
  let w = W.create ~size:(size (List.length entries)) () in
  W.u8 w 1 (* version *);
  W.u8 w enc_frame_ptr;
  W.u8 w enc_count;
  W.u8 w enc_table;
  W.i32 w (eh_frame_vaddr - (vaddr + 4));
  W.u32 w (List.length entries);
  List.iter
    (fun e ->
      (* datarel: relative to the section start *)
      W.i32 w (e.initial_loc - vaddr);
      W.i32 w (e.fde_addr - vaddr))
    entries;
  W.contents w

let decode ~vaddr data =
  let r = R.of_string data in
  let version = R.u8 r in
  if version <> 1 then invalid_arg "Eh_frame_hdr.decode: version";
  let e_ptr = R.u8 r in
  let e_count = R.u8 r in
  let e_table = R.u8 r in
  if e_ptr <> enc_frame_ptr || e_count <> enc_count || e_table <> enc_table then
    invalid_arg "Eh_frame_hdr.decode: unsupported encodings";
  ignore (R.i32 r) (* eh_frame pointer *);
  let n = R.u32 r in
  List.init n (fun _ ->
      let loc = R.i32 r in
      let fde = R.i32 r in
      { initial_loc = vaddr + loc; fde_addr = vaddr + fde })

let decode_result ~vaddr data =
  match decode ~vaddr data with
  | entries -> Ok entries
  | exception Invalid_argument msg ->
    Error (Cet_util.Diag.error ~domain:"eh" ~code:"eh-frame-hdr-malformed" msg)
  | exception R.Out_of_bounds what ->
    Error
      (Cet_util.Diag.makef ~severity:Cet_util.Diag.Error ~domain:"eh"
         ~code:"eh-frame-hdr-truncated" ".eh_frame_hdr truncated (%s)" what)
