module W = Cet_util.Bytesio.W
module R = Cet_util.Bytesio.R

type call_site = {
  cs_start : int;
  cs_len : int;
  cs_landing_pad : int;
  cs_action : int;
}

type t = { call_sites : call_site list; type_count : int }

let encode t =
  let w = W.create ~size:64 () in
  W.u8 w Pointer_enc.omit (* LPStart: function start *);
  (* Call-site table body, built first so its length is known. *)
  let cs = W.create ~size:64 () in
  List.iter
    (fun c ->
      W.uleb cs c.cs_start;
      W.uleb cs c.cs_len;
      W.uleb cs c.cs_landing_pad;
      W.uleb cs c.cs_action)
    t.call_sites;
  let cs_bytes = W.contents cs in
  if t.type_count = 0 then begin
    W.u8 w Pointer_enc.omit (* no types table *);
    W.u8 w Pointer_enc.uleb (* call-site encoding *);
    W.uleb w (String.length cs_bytes);
    W.bytes w cs_bytes
  end
  else begin
    W.u8 w Pointer_enc.udata4;
    (* Action table: one two-byte record per type (filter index, next=0);
       types table: [type_count] 4-byte entries (null = catch-all in real
       tables; the analyses here never dereference them). *)
    let action_len = 2 * t.type_count in
    let types_len = 4 * t.type_count in
    let cs_hdr_len = Cet_util.Leb128.size_u (String.length cs_bytes) in
    (* TTBase offset: from just after this uleb to the end of the types
       table. *)
    let after_ttbase_to_end body_len = body_len in
    let body_len = 1 + cs_hdr_len + String.length cs_bytes + action_len + types_len in
    W.uleb w (after_ttbase_to_end body_len);
    W.u8 w Pointer_enc.uleb;
    W.uleb w (String.length cs_bytes);
    W.bytes w cs_bytes;
    for i = 1 to t.type_count do
      W.uleb w i (* filter *);
      W.uleb w 0 (* next action *)
    done;
    W.zeros w types_len
  end;
  W.contents w

let build_table lsdas =
  let w = W.create ~size:1024 () in
  let offsets =
    List.map
      (fun l ->
        W.align w 4;
        let off = W.length w in
        W.bytes w (encode l);
        off)
      lsdas
  in
  (W.contents w, offsets)

let decode data ~off =
  let r = R.sub data ~pos:off ~len:(String.length data - off) in
  let lpstart_enc = R.u8 r in
  if lpstart_enc <> Pointer_enc.omit then
    invalid_arg "Lsda.decode: explicit LPStart unsupported";
  let ttype_enc = R.u8 r in
  let type_count_hint = ref 0 in
  if ttype_enc <> Pointer_enc.omit then ignore (R.uleb r (* TTBase offset *));
  let cs_enc = R.u8 r in
  if cs_enc <> Pointer_enc.uleb then invalid_arg "Lsda.decode: call-site encoding";
  let cs_len = R.uleb r in
  let cs_end = R.pos r + cs_len in
  let sites = ref [] in
  while R.pos r < cs_end do
    let cs_start = R.uleb r in
    let len = R.uleb r in
    let lp = R.uleb r in
    let action = R.uleb r in
    sites := { cs_start; cs_len = len; cs_landing_pad = lp; cs_action = action } :: !sites
  done;
  (* Recover the type count from the action table when present: records are
     (filter, 0) pairs as emitted by [encode]. *)
  if ttype_enc <> Pointer_enc.omit then begin
    let rec count n =
      match R.uleb r with
      | filter when filter > 0 ->
        let _next = R.uleb r in
        count (max n filter)
      | _ -> n
      | exception R.Out_of_bounds _ -> n
    in
    type_count_hint := count 0
  end;
  { call_sites = List.rev !sites; type_count = !type_count_hint }

(* Robust wrapper: LSDA parsing consumes attacker-controlled bytes in the
   FILTERENDBR path, so decode failures must be reportable as values. *)
let decode_result data ~off =
  match decode data ~off with
  | t -> Ok t
  | exception Invalid_argument msg ->
    Error (Cet_util.Diag.error ~domain:"eh" ~code:"lsda-malformed" msg)
  | exception R.Out_of_bounds what ->
    Error
      (Cet_util.Diag.makef ~severity:Cet_util.Diag.Error ~domain:"eh"
         ~code:"lsda-truncated" "LSDA truncated (%s)" what)

let landing_pads t ~func_start =
  List.filter_map
    (fun c -> if c.cs_landing_pad = 0 then None else Some (func_start + c.cs_landing_pad))
    t.call_sites
