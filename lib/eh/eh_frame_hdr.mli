(** [.eh_frame_hdr]: the binary-search index over FDEs that the runtime
    unwinder (and FETCH-style tooling) uses to find the frame covering a PC.

    Layout (GNU): version 1, three encoding bytes, the [.eh_frame] pointer,
    the FDE count, then a table of (initial-location, FDE-address) pairs
    sorted by location, all datarel|sdata4 relative to the section start. *)

type entry = {
  initial_loc : int;  (** function start virtual address *)
  fde_addr : int;  (** virtual address of the FDE in [.eh_frame] *)
}

val encode : vaddr:int -> eh_frame_vaddr:int -> entry list -> string
(** Build section contents for a section placed at [vaddr].  Entries are
    sorted by [initial_loc] internally.  Size depends only on the entry
    count, so layout can be computed before addresses are final. *)

val decode : vaddr:int -> string -> entry list
(** Parse section contents; entries come back in table order (sorted).
    Raises [Invalid_argument] on unsupported structure and
    [Cet_util.Bytesio.R.Out_of_bounds] on truncation. *)

val decode_result : vaddr:int -> string -> (entry list, Cet_util.Diag.t) result
(** Non-raising {!decode}: failures become [eh/eh-frame-hdr-malformed] or
    [eh/eh-frame-hdr-truncated] diagnostics, so production consumers can
    fall back to walking [.eh_frame] instead of crashing on a truncated
    search table. *)

val size : int -> int
(** Encoded size for the given number of entries. *)
