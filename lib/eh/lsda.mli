(** Language-Specific Data Area records, the per-function payload of
    [.gcc_except_table].

    Each LSDA carries the call-site table mapping try-region extents to
    landing-pad (catch-block) offsets.  Offsets are relative to the
    landing-pad base, which GCC omits (encoding 0xff) meaning "the
    function's start address" — the convention implemented here. *)

type call_site = {
  cs_start : int;  (** try-region start, function-relative *)
  cs_len : int;  (** try-region length *)
  cs_landing_pad : int;  (** landing-pad offset, function-relative; 0 = none *)
  cs_action : int;  (** 1-based action-table index; 0 = cleanup *)
}

type t = {
  call_sites : call_site list;
  type_count : int;  (** entries in the types table (caught types) *)
}

val encode : t -> string
(** Serialise one LSDA.  Uses omitted LPStart, udata4 type-table encoding
    when [type_count > 0], and uleb call-site encoding — GCC's defaults. *)

val build_table : t list -> string * int list
(** [build_table lsdas] concatenates encoded LSDAs (4-byte aligned) into
    [.gcc_except_table] contents and returns the byte offset of each — the
    offsets FDE LSDA pointers reference. *)

val decode : string -> off:int -> t
(** Parse the LSDA starting at [off] in section contents.  Raises
    [Invalid_argument] (unsupported encoding, malformed table) or
    {!Cet_util.Bytesio.R.Out_of_bounds} (truncation). *)

val decode_result : string -> off:int -> (t, Cet_util.Diag.t) result
(** Non-raising {!decode}: failures become [eh/lsda-malformed] or
    [eh/lsda-truncated] diagnostics, letting the LSDA walk skip a corrupt
    record and keep the rest. *)

val landing_pads : t -> func_start:int -> int list
(** Absolute virtual addresses of the LSDA's landing pads (non-zero ones),
    given the owning function's entry address. *)
