(** [.eh_frame] encoder/decoder: CIE and FDE records in the GNU layout.

    The encoder emits one CIE with augmentation ["zR"] for plain frames and,
    when any frame carries an LSDA, a second CIE with ["zPLR"] (personality +
    LSDA encoding + FDE encoding), mirroring how GCC separates C and C++
    translation units.  All pointers use DW_EH_PE_pcrel|sdata4.

    The decoder returns every FDE with its resolved [pc_begin], [pc_range]
    and LSDA address — exactly the inputs FETCH-style tools and the
    FunSeeker landing-pad filter consume. *)

type frame = {
  pc_begin : int;  (** function start virtual address *)
  pc_range : int;  (** function size in bytes *)
  lsda : int option;  (** LSDA virtual address in [.gcc_except_table] *)
}

val encode : vaddr:int -> personality:int -> frame list -> string
(** [encode ~vaddr ~personality frames] builds section bytes for a section
    that will live at [vaddr].  [personality] is the virtual address of the
    personality routine (only referenced when some frame has an LSDA).
    A zero terminator record ends the section.  The byte size is independent
    of [vaddr], so callers may measure with a dummy address first. *)

val encode_with_offsets :
  vaddr:int -> personality:int -> frame list -> string * (int * int) list
(** Like {!encode}, also returning [(pc_begin, fde_byte_offset)] for every
    FDE — the input [.eh_frame_hdr] needs. *)

val decode : vaddr:int -> string -> frame list
(** Parse section bytes living at [vaddr].  Unknown augmentations are
    skipped conservatively; raises [Invalid_argument] on structural
    corruption. *)

val decode_result : vaddr:int -> string -> frame list * Cet_util.Diag.t list
(** Non-raising {!decode} for untrusted sections: on structural corruption
    the walk stops and every record before the corrupt one is returned,
    with an [eh/eh-frame] diagnostic describing where it stopped.  Never
    raises. *)
