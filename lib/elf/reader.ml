module R = Cet_util.Bytesio.R
module Arch = Cet_x86.Arch

type section = {
  name : string;
  sh_type : int;
  flags : int;
  vaddr : int;
  size : int;
  entsize : int;
  addralign : int;
  data : string;
  file_off : int;
}

type t = {
  arch : Arch.t;
  machine : int;
  pie : bool;
  entry : int;
  sections : section list;
  image : string;
}

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let cstring data off =
  match String.index_from_opt data off '\000' with
  | Some stop -> String.sub data off (stop - off)
  | None -> fail "unterminated string at %d" off

(* Sections larger than this are not analysis inputs but resource attacks
   (every legitimate corpus image is a few hundred KiB); the lenient
   parser refuses their payload with a resource-limit diagnostic. *)
let section_size_cap = 1 lsl 28

(* [in_bounds len off size]: does [off, off+size) fit a [len]-byte file?
   Written without the addition so a declared 2^61-scale offset/size pair
   cannot wrap past [max_int] and slip through (the satellite overflow
   class). *)
let in_bounds len off size = off >= 0 && size >= 0 && size <= len && off <= len - size

(* One parser, two strictness modes.  [lenient = false] reproduces the
   historical contract: raise {!Malformed} on anything structurally off.
   [lenient = true] (the analysis path, via {!read_diag}) degrades
   instead wherever a partial result is still meaningful — truncated
   section header tables are salvaged up to the last full entry,
   unresolvable names become [""], out-of-range section payloads are
   clamped to the bytes present — each with a diagnostic.  Failures that
   leave nothing to analyze (bad magic, unreadable fixed header, no
   usable section headers) raise in both modes. *)
let read_impl ~lenient ~diag bytes =
  let soft ?severity ~code fmt =
    Printf.ksprintf
      (fun msg -> Cet_util.Diag.Collector.add diag
          (Cet_util.Diag.make ?severity ~domain:"elf" ~code msg))
      fmt
  in
  let len = String.length bytes in
  if len < 52 then fail "file too short";
  if String.sub bytes 0 4 <> "\x7fELF" then fail "bad magic";
  let cls = Char.code bytes.[4] in
  let arch =
    if cls = Consts.elfclass64 then Arch.X64
    else if cls = Consts.elfclass32 then Arch.X86
    else fail "bad class %d" cls
  in
  if Char.code bytes.[5] <> Consts.elfdata2lsb then fail "not little-endian";
  let is64 = arch = Arch.X64 in
  let r = R.of_string bytes in
  R.seek r 16;
  let e_type = R.u16 r in
  let machine = R.u16 r in
  if is64 && machine <> Consts.em_x86_64 && machine <> Consts.em_aarch64 then
    fail "machine/class mismatch";
  if (not is64) && machine <> Consts.em_386 then fail "machine/class mismatch";
  ignore (R.u32 r) (* version *);
  let addr () = if is64 then R.u64 r else R.u32 r in
  let entry = addr () in
  let _phoff = addr () in
  let shoff = addr () in
  ignore (R.u32 r) (* flags *);
  ignore (R.u16 r) (* ehsize *);
  ignore (R.u16 r) (* phentsize *);
  ignore (R.u16 r) (* phnum *);
  let shentsize = R.u16 r in
  let shnum = R.u16 r in
  let shstrndx = R.u16 r in
  if shnum = 0 then fail "no sections";
  let shentsize =
    let standard = if is64 then 64 else 40 in
    if shentsize >= standard && shentsize <= 4096 then shentsize
    else if not lenient then shentsize (* strict: let the walk fail as before *)
    else begin
      soft ~code:"shentsize" "implausible e_shentsize %d; assuming %d" shentsize
        standard;
      standard
    end
  in
  let read_shdr i =
    R.seek r (shoff + (i * shentsize));
    let name_off = R.u32 r in
    let sh_type = R.u32 r in
    let flags = addr () in
    let vaddr = addr () in
    let offset = addr () in
    let size = addr () in
    ignore (R.u32 r) (* link *);
    ignore (R.u32 r) (* info *);
    let addralign = addr () in
    let entsize = addr () in
    (name_off, sh_type, flags, vaddr, offset, size, entsize, addralign)
  in
  let raw =
    if not lenient then List.init shnum read_shdr
    else begin
      (* Salvage the prefix of the table that is actually present. *)
      let out = ref [] in
      (try
         for i = 0 to shnum - 1 do
           out := read_shdr i :: !out
         done
       with R.Out_of_bounds _ | Invalid_argument _ ->
         soft ~code:"shdr-truncated"
           "section header table truncated: %d of %d entries readable"
           (List.length !out) shnum);
      List.rev !out
    end
  in
  if lenient && raw = [] then fail "no readable section headers";
  let shstr =
    match List.nth_opt raw shstrndx with
    | Some (_, _, _, _, str_off, str_size, _, _)
      when in_bounds len str_off str_size ->
      String.sub bytes str_off str_size
    | _ when not lenient -> fail "bad shstrndx"
    | _ ->
      soft ~code:"shstrtab" "unusable section name table (index %d)" shstrndx;
      ""
  in
  let sections =
    List.filteri (fun i _ -> i > 0) raw
    |> List.map (fun (name_off, sh_type, flags, vaddr, offset, size, entsize, addralign) ->
           let name =
             if not lenient then cstring shstr name_off
             else if name_off >= String.length shstr then ""
             else
               match String.index_from_opt shstr name_off '\000' with
               | Some stop -> String.sub shstr name_off (stop - name_off)
               | None -> ""
           in
           (* [file_off] records where the payload lives in the raw image
              (zero-copy consumers read it there); -1 when there is no
              backing slice (SHT_NOBITS, dropped payloads). *)
           let data, size, file_off =
             if sh_type = Consts.sht_nobits then ("", size, -1)
             else if in_bounds len offset size then
               if lenient && size > section_size_cap then begin
                 soft ~severity:Cet_util.Diag.Error ~code:"resource-limit"
                   "section %S: %d bytes exceeds the %d-byte cap; payload dropped"
                   name size section_size_cap;
                 ("", 0, -1)
               end
               else (String.sub bytes offset size, size, offset)
             else if not lenient then fail "section overflow"
             else begin
               (* Clamp to the bytes that exist. *)
               let off' = min (max offset 0) len in
               let avail = len - off' in
               let kept = min (max size 0) avail in
               soft ~code:"section-clamp"
                 "section %S: declared [%d, +%d) exceeds the %d-byte file; kept %d bytes"
                 name offset size len kept;
               (String.sub bytes off' kept, kept, off')
             end
           in
           { name; sh_type; flags; vaddr; size; entsize; addralign; data; file_off })
  in
  { arch; machine; pie = e_type = Consts.et_dyn; entry; sections; image = bytes }

let read_exn bytes =
  read_impl ~lenient:false ~diag:(Cet_util.Diag.Collector.create ()) bytes

let read_guarded bytes =
  try read_exn bytes with
  | Malformed _ as e -> raise e
  | Cet_util.Bytesio.R.Out_of_bounds what -> fail "truncated structure (%s)" what
  | Invalid_argument what -> fail "malformed structure (%s)" what

(* The front half of PARSE; span-guarded so a disabled registry costs two
   branch checks and no closure allocation. *)
let read bytes =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"elf.read" (fun () -> read_guarded bytes)
  else read_guarded bytes

let read_diag_impl bytes =
  let diag = Cet_util.Diag.Collector.create () in
  match read_impl ~lenient:true ~diag bytes with
  | t -> Ok (t, Cet_util.Diag.Collector.list diag)
  | exception Malformed msg ->
    Error (Cet_util.Diag.error ~domain:"elf" ~code:"malformed" msg)
  | exception R.Out_of_bounds what ->
    Error
      (Cet_util.Diag.makef ~severity:Cet_util.Diag.Error ~domain:"elf"
         ~code:"truncated" "truncated structure (%s)" what)
  | exception Invalid_argument what ->
    Error
      (Cet_util.Diag.makef ~severity:Cet_util.Diag.Error ~domain:"elf"
         ~code:"malformed" "malformed structure (%s)" what)

let read_diag bytes =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"elf.read" (fun () -> read_diag_impl bytes)
  else read_diag_impl bytes

let arch t = t.arch
let machine t = t.machine
let pie t = t.pie
let entry t = t.entry
let sections t = t.sections
let find_section t name = List.find_opt (fun s -> s.name = name) t.sections
let image t = t.image

(* Zero-copy payload access: the (string, pos, len) triple locating the
   section's bytes without the [data] sub-string.  Falls back to [data]
   itself when the payload has no backing slice in the image. *)
let section_view t s =
  if s.file_off >= 0 then (t.image, s.file_off, String.length s.data)
  else (s.data, 0, String.length s.data)

let parse_symtab t ~symtab ~strtab =
  match (find_section t symtab, find_section t strtab) with
  | Some sym, Some str ->
    let is64 = t.arch = Arch.X64 in
    let esize = if is64 then 24 else 16 in
    if String.length sym.data mod esize <> 0 then fail "ragged symtab";
    let count = String.length sym.data / esize in
    let r = R.of_string sym.data in
    let sec_name shndx =
      if shndx = Consts.shn_undef || shndx >= 0xff00 then None
      else
        match List.nth_opt t.sections (shndx - 1) with
        | Some s -> Some s.name
        | None -> None
    in
    List.init count (fun i ->
        R.seek r (i * esize);
        let name_off = R.u32 r in
        let value, size, info, shndx =
          if is64 then begin
            let info = R.u8 r in
            ignore (R.u8 r);
            let shndx = R.u16 r in
            let value = R.u64 r in
            let size = R.u64 r in
            (value, size, info, shndx)
          end
          else begin
            let value = R.u32 r in
            let size = R.u32 r in
            let info = R.u8 r in
            ignore (R.u8 r);
            let shndx = R.u16 r in
            (value, size, info, shndx)
          end
        in
        let kind =
          match Symbol.kind_of_code (info land 0xf) with
          | Some k -> k
          | None -> Symbol.Notype
        in
        let bind =
          match Symbol.bind_of_code (info lsr 4) with
          | Some b -> b
          | None -> Symbol.Global
        in
        {
          Symbol.name = cstring str.data name_off;
          value;
          size;
          kind;
          bind;
          section = sec_name shndx;
        })
  | _ -> []

let symbols t =
  match parse_symtab t ~symtab:".symtab" ~strtab:".strtab" with
  | [] -> []
  | _null :: rest -> rest
  | exception Malformed _ -> []

let dyn_symbols t = Array.of_list (parse_symtab t ~symtab:".dynsym" ~strtab:".dynstr")

let plt_relocs t =
  let dynsyms = dyn_symbols t in
  let of_section name rela =
    match find_section t name with
    | None -> []
    | Some s ->
      let is64 = t.arch = Arch.X64 in
      let esize = if is64 then (if rela then 24 else 16) else if rela then 12 else 8 in
      let count = String.length s.data / esize in
      let r = R.of_string s.data in
      List.init count (fun i ->
          R.seek r (i * esize);
          let offset = if is64 then R.u64 r else R.u32 r in
          let info = if is64 then R.u64 r else R.u32 r in
          let sym = if is64 then info lsr 32 else info lsr 8 in
          let name =
            if sym < Array.length dynsyms then dynsyms.(sym).Symbol.name
            else fail "reloc sym out of range"
          in
          (offset, name))
  in
  match t.arch with
  | Arch.X64 -> of_section ".rela.plt" true
  | Arch.X86 -> of_section ".rel.plt" false

let cet_enabled t =
  match find_section t ".note.gnu.property" with
  | None -> false
  | Some s -> (
    try
      let r = R.of_string s.data in
      let namesz = R.u32 r in
      let _descsz = R.u32 r in
      let ntype = R.u32 r in
      let name = R.bytes r namesz in
      if ntype <> Consts.nt_gnu_property_type_0 || name <> "GNU\000" then false
      else begin
        let pr_type = R.u32 r in
        let _datasz = R.u32 r in
        let data = R.u32 r in
        pr_type = Consts.gnu_property_x86_feature_1_and
        && data land Consts.gnu_property_x86_feature_1_ibt <> 0
      end
    with R.Out_of_bounds _ -> false)

let derived_sections =
  [
    ".note.gnu.property";
    ".dynsym";
    ".dynstr";
    ".rel.plt";
    ".rela.plt";
    ".symtab";
    ".strtab";
    ".shstrtab";
  ]

let to_image t =
  let content =
    List.filter (fun s -> not (List.mem s.name derived_sections)) t.sections
  in
  {
    Image.arch = t.arch;
    machine =
      (if t.machine = Consts.em_x86_64 || t.machine = Consts.em_386 then None
       else Some t.machine);
    pie = t.pie;
    cet_note = find_section t ".note.gnu.property" <> None;
    entry = t.entry;
    sections =
      List.map
        (fun s ->
          {
            Image.name = s.name;
            sh_type = s.sh_type;
            flags = s.flags;
            vaddr = s.vaddr;
            addralign = s.addralign;
            entsize = s.entsize;
            data = s.data;
          })
        content;
    symbols = symbols t;
    dynsyms =
      (match Array.to_list (dyn_symbols t) with [] -> [] | _null :: rest -> rest);
    plt_relocs = plt_relocs t;
  }
