module R = Cet_util.Bytesio.R
module Arch = Cet_x86.Arch

type section = {
  name : string;
  sh_type : int;
  flags : int;
  vaddr : int;
  size : int;
  entsize : int;
  addralign : int;
  data : string;
}

type t = {
  arch : Arch.t;
  machine : int;
  pie : bool;
  entry : int;
  sections : section list;
}

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let cstring data off =
  match String.index_from_opt data off '\000' with
  | Some stop -> String.sub data off (stop - off)
  | None -> fail "unterminated string at %d" off

let read_exn bytes =
  if String.length bytes < 52 then fail "file too short";
  if String.sub bytes 0 4 <> "\x7fELF" then fail "bad magic";
  let cls = Char.code bytes.[4] in
  let arch =
    if cls = Consts.elfclass64 then Arch.X64
    else if cls = Consts.elfclass32 then Arch.X86
    else fail "bad class %d" cls
  in
  if Char.code bytes.[5] <> Consts.elfdata2lsb then fail "not little-endian";
  let is64 = arch = Arch.X64 in
  let r = R.of_string bytes in
  R.seek r 16;
  let e_type = R.u16 r in
  let machine = R.u16 r in
  if is64 && machine <> Consts.em_x86_64 && machine <> Consts.em_aarch64 then
    fail "machine/class mismatch";
  if (not is64) && machine <> Consts.em_386 then fail "machine/class mismatch";
  ignore (R.u32 r) (* version *);
  let addr () = if is64 then R.u64 r else R.u32 r in
  let entry = addr () in
  let _phoff = addr () in
  let shoff = addr () in
  ignore (R.u32 r) (* flags *);
  ignore (R.u16 r) (* ehsize *);
  ignore (R.u16 r) (* phentsize *);
  ignore (R.u16 r) (* phnum *);
  let shentsize = R.u16 r in
  let shnum = R.u16 r in
  let shstrndx = R.u16 r in
  if shnum = 0 then fail "no sections";
  let read_shdr i =
    R.seek r (shoff + (i * shentsize));
    let name_off = R.u32 r in
    let sh_type = R.u32 r in
    let flags = addr () in
    let vaddr = addr () in
    let offset = addr () in
    let size = addr () in
    ignore (R.u32 r) (* link *);
    ignore (R.u32 r) (* info *);
    let addralign = addr () in
    let entsize = addr () in
    (name_off, sh_type, flags, vaddr, offset, size, entsize, addralign)
  in
  let raw = List.init shnum read_shdr in
  let _, _, _, _, str_off, str_size, _, _ =
    try List.nth raw shstrndx with Failure _ -> fail "bad shstrndx"
  in
  let shstr = String.sub bytes str_off str_size in
  let sections =
    List.filteri (fun i _ -> i > 0) raw
    |> List.map (fun (name_off, sh_type, flags, vaddr, offset, size, entsize, addralign) ->
           let data =
             if sh_type = Consts.sht_nobits then ""
             else if offset + size > String.length bytes then fail "section overflow"
             else String.sub bytes offset size
           in
           {
             name = cstring shstr name_off;
             sh_type;
             flags;
             vaddr;
             size;
             entsize;
             addralign;
             data;
           })
  in
  { arch; machine; pie = e_type = Consts.et_dyn; entry; sections }

let read_guarded bytes =
  try read_exn bytes with
  | Malformed _ as e -> raise e
  | Cet_util.Bytesio.R.Out_of_bounds what -> fail "truncated structure (%s)" what
  | Invalid_argument what -> fail "malformed structure (%s)" what

(* The front half of PARSE; span-guarded so a disabled registry costs two
   branch checks and no closure allocation. *)
let read bytes =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"elf.read" (fun () -> read_guarded bytes)
  else read_guarded bytes

let arch t = t.arch
let machine t = t.machine
let pie t = t.pie
let entry t = t.entry
let sections t = t.sections
let find_section t name = List.find_opt (fun s -> s.name = name) t.sections

let parse_symtab t ~symtab ~strtab =
  match (find_section t symtab, find_section t strtab) with
  | Some sym, Some str ->
    let is64 = t.arch = Arch.X64 in
    let esize = if is64 then 24 else 16 in
    if String.length sym.data mod esize <> 0 then fail "ragged symtab";
    let count = String.length sym.data / esize in
    let r = R.of_string sym.data in
    let sec_name shndx =
      if shndx = Consts.shn_undef || shndx >= 0xff00 then None
      else
        match List.nth_opt t.sections (shndx - 1) with
        | Some s -> Some s.name
        | None -> None
    in
    List.init count (fun i ->
        R.seek r (i * esize);
        let name_off = R.u32 r in
        let value, size, info, shndx =
          if is64 then begin
            let info = R.u8 r in
            ignore (R.u8 r);
            let shndx = R.u16 r in
            let value = R.u64 r in
            let size = R.u64 r in
            (value, size, info, shndx)
          end
          else begin
            let value = R.u32 r in
            let size = R.u32 r in
            let info = R.u8 r in
            ignore (R.u8 r);
            let shndx = R.u16 r in
            (value, size, info, shndx)
          end
        in
        let kind =
          match Symbol.kind_of_code (info land 0xf) with
          | Some k -> k
          | None -> Symbol.Notype
        in
        let bind =
          match Symbol.bind_of_code (info lsr 4) with
          | Some b -> b
          | None -> Symbol.Global
        in
        {
          Symbol.name = cstring str.data name_off;
          value;
          size;
          kind;
          bind;
          section = sec_name shndx;
        })
  | _ -> []

let symbols t =
  match parse_symtab t ~symtab:".symtab" ~strtab:".strtab" with
  | [] -> []
  | _null :: rest -> rest
  | exception Malformed _ -> []

let dyn_symbols t = Array.of_list (parse_symtab t ~symtab:".dynsym" ~strtab:".dynstr")

let plt_relocs t =
  let dynsyms = dyn_symbols t in
  let of_section name rela =
    match find_section t name with
    | None -> []
    | Some s ->
      let is64 = t.arch = Arch.X64 in
      let esize = if is64 then (if rela then 24 else 16) else if rela then 12 else 8 in
      let count = String.length s.data / esize in
      let r = R.of_string s.data in
      List.init count (fun i ->
          R.seek r (i * esize);
          let offset = if is64 then R.u64 r else R.u32 r in
          let info = if is64 then R.u64 r else R.u32 r in
          let sym = if is64 then info lsr 32 else info lsr 8 in
          let name =
            if sym < Array.length dynsyms then dynsyms.(sym).Symbol.name
            else fail "reloc sym out of range"
          in
          (offset, name))
  in
  match t.arch with
  | Arch.X64 -> of_section ".rela.plt" true
  | Arch.X86 -> of_section ".rel.plt" false

let cet_enabled t =
  match find_section t ".note.gnu.property" with
  | None -> false
  | Some s -> (
    try
      let r = R.of_string s.data in
      let namesz = R.u32 r in
      let _descsz = R.u32 r in
      let ntype = R.u32 r in
      let name = R.bytes r namesz in
      if ntype <> Consts.nt_gnu_property_type_0 || name <> "GNU\000" then false
      else begin
        let pr_type = R.u32 r in
        let _datasz = R.u32 r in
        let data = R.u32 r in
        pr_type = Consts.gnu_property_x86_feature_1_and
        && data land Consts.gnu_property_x86_feature_1_ibt <> 0
      end
    with R.Out_of_bounds _ -> false)

let derived_sections =
  [
    ".note.gnu.property";
    ".dynsym";
    ".dynstr";
    ".rel.plt";
    ".rela.plt";
    ".symtab";
    ".strtab";
    ".shstrtab";
  ]

let to_image t =
  let content =
    List.filter (fun s -> not (List.mem s.name derived_sections)) t.sections
  in
  {
    Image.arch = t.arch;
    machine =
      (if t.machine = Consts.em_x86_64 || t.machine = Consts.em_386 then None
       else Some t.machine);
    pie = t.pie;
    cet_note = find_section t ".note.gnu.property" <> None;
    entry = t.entry;
    sections =
      List.map
        (fun s ->
          {
            Image.name = s.name;
            sh_type = s.sh_type;
            flags = s.flags;
            vaddr = s.vaddr;
            addralign = s.addralign;
            entsize = s.entsize;
            data = s.data;
          })
        content;
    symbols = symbols t;
    dynsyms =
      (match Array.to_list (dyn_symbols t) with [] -> [] | _null :: rest -> rest);
    plt_relocs = plt_relocs t;
  }
