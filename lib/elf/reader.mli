(** ELF executable parser: the front half of PARSE in the FunSeeker
    algorithm, also used by the baseline tools and the ground-truth
    extractor. *)

type section = {
  name : string;
  sh_type : int;
  flags : int;
  vaddr : int;
  size : int;
  entsize : int;
  addralign : int;
  data : string;
  file_off : int;
      (** byte offset of the payload in the raw image, so hot paths can
          read it in place (see {!section_view}); [-1] when the payload
          has no backing slice (SHT_NOBITS, dropped/oversized payloads) *)
}

type t

exception Malformed of string

val read : string -> t
(** Parse ELF bytes. Raises {!Malformed} on anything structurally broken. *)

val read_diag : string -> (t * Cet_util.Diag.t list, Cet_util.Diag.t) result
(** Lenient parse for untrusted inputs — the robust analysis path.  Where
    {!read} raises, [read_diag] degrades whenever a partial image is still
    meaningful, reporting every degradation as a diagnostic: a truncated
    section header table is salvaged up to the last complete entry, an
    unusable [.shstrtab] leaves sections unnamed, out-of-range section
    payloads are clamped to the bytes present ([section-clamp]), and
    payloads beyond the sanity cap are refused ([resource-limit]).
    [Error] is returned only when nothing is analyzable: bad magic,
    unreadable fixed header, or no readable section headers.  Never
    raises. *)

val arch : t -> Cet_x86.Arch.t

val machine : t -> int
(** Raw [e_machine] (EM_386, EM_X86_64, or EM_AARCH64 for the BTI
    extension). *)

val pie : t -> bool
val entry : t -> int
val sections : t -> section list
val find_section : t -> string -> section option

val image : t -> string
(** The raw file bytes the reader parsed — the backing store of every
    [file_off]. *)

val section_view : t -> section -> string * int * int
(** [section_view t s] is [(buf, pos, len)] such that the section payload
    is [buf.[pos .. pos+len-1]] — the raw image slice when one backs the
    section (no copy), [s.data] itself otherwise.  The SWAR prescan and
    the scratch-core sweep consume sections through this instead of
    [data]. *)

val symbols : t -> Symbol.t list
(** [.symtab] contents (empty for stripped binaries). *)

val dyn_symbols : t -> Symbol.t array
(** [.dynsym] contents including the null entry at index 0. *)

val plt_relocs : t -> (int * string) list
(** [(got_slot_vaddr, import_name)] pairs from [.rel(a).plt], in table
    order — the order PLT stubs are laid out in. *)

val cet_enabled : t -> bool
(** True iff [.note.gnu.property] carries the IBT feature bit. *)

val to_image : t -> Image.t
(** Reconstruct a writable image (used by {!Strip}).  Derived sections
    ([.symtab], [.dynsym], notes, string tables…) are not duplicated into
    [Image.sections]; they are regenerated on write. *)
