(** SWAR candidate prescan over code bytes (DESIGN.md §13).

    Classifies a code region 8 bytes at a time with 64-bit loads and
    branchless byte-class tests.  The candidate byte class is
    [{F3, E8, E9, EB, 0F}] — the ENDBR prefix byte, the direct
    call/jump opcodes, and the two-byte escape of [0F 8x] near-Jcc: a
    word containing none of them cannot start or end any instruction the
    derived index tables harvest, so the sweep can skip its
    classification work, and the anchored sweep can find its end-branch
    anchors without a per-byte scan.

    The prescan never influences instruction *boundaries* of the plain
    linear sweep (decode lengths chain, so every instruction is still
    decoded); it gates the side-table work and drives the anchored
    sweep's resynchronisation jumps. *)

val classes : string -> Bytes.t
(** [classes code] is a one-byte-per-8-byte-word bitmap: byte [w] is
    non-zero iff [code.[8w .. 8w+7]] (clipped to the string) contains a
    candidate byte.  Always at least one byte long. *)

val window_has_candidate : Bytes.t -> off:int -> len:int -> bool
(** Does the window [off, off+len) of the classified string touch a
    flagged word?  [false] when [len <= 0].  Conservative by word
    granularity: may answer [true] for a window whose own bytes are all
    non-candidates (sharing a word with one), never [false] for a window
    containing a candidate. *)

val candidate_byte : char -> bool
(** Membership in the candidate byte class (the per-byte oracle the SWAR
    path is differentially tested against). *)

val anchor_offsets : Cet_x86.Arch.t -> string -> int array
(** Offsets of every end-branch byte pattern ([F3 0F 1E FA] on x86-64,
    [.. FB] on x86), ascending.  SWAR scan: only words containing an
    [F3] byte are inspected per-byte; pattern reads go back to the
    string, so matches straddling word boundaries and in the final
    [n-4] tail are found like any other. *)
