(* SWAR candidate prescan: classify code 8 bytes at a time.

   The side tables FunSeeker consumes are built from a handful of byte
   patterns — the ENDBR marker [F3 0F 1E FA/FB], direct calls [E8] and
   direct jumps [E9]/[EB] (plus [0F 8x] near-Jcc, which shares the [0F]
   escape byte).  A 64-bit word of [.text] that contains none of those
   five byte values cannot start or finish any index-relevant
   instruction, so the classifier loads one word per 8 bytes
   ([String.get_int64_ne]) and computes "contains a candidate byte"
   branchlessly with the classic SWAR zero-byte test:

     zero_in(x) = (x - 0x0101..01) land (lnot x) land 0x8080..80

   applied to [x lxor broadcast(b)] for each class byte [b].  The result
   is a one-flag-per-word bitmap the sweep consults to skip whole words
   of classification work, and the same kernel drives the allocation-free
   [anchor_offsets] scan (find [F3]-carrying words, verify the 4-byte
   pattern only there).

   Everything here is straight-line [Int64] arithmetic kept inside the
   loop bodies so the compiler's local unboxing applies; the allocation
   budget is enforced by test_prescan.ml. *)

let ones = 0x0101010101010101L
let highs = 0x8080808080808080L

(* broadcast b = b * 0x0101..01, precomputed for the class bytes *)
let b_f3 = 0xF3F3F3F3F3F3F3F3L
let b_e8 = 0xE8E8E8E8E8E8E8E8L
let b_e9 = 0xE9E9E9E9E9E9E9E9L
let b_eb = 0xEBEBEBEBEBEBEBEBL
let b_0f = 0x0F0F0F0F0F0F0F0FL

(* [zero_in (x lxor broadcast b)] <> 0L iff some byte of [x] equals [b]. *)
let[@inline] zero_in x =
  Int64.logand (Int64.logand (Int64.sub x ones) (Int64.lognot x)) highs

let[@inline] has_byte w b = zero_in (Int64.logxor w b)

let candidate_byte c =
  match c with '\xF3' | '\xE8' | '\xE9' | '\xEB' | '\x0F' -> true | _ -> false

(* One class byte per 8-byte word of [code]: '\001' when the word holds at
   least one candidate byte.  The sub-word tail gets its own flag byte so
   [word_index (n-1)] is always in bounds. *)
let classes code =
  let n = String.length code in
  let nwords = n lsr 3 in
  let ncls = (n + 7) lsr 3 in
  let cls = Bytes.make (max ncls 1) '\000' in
  for w = 0 to nwords - 1 do
    let x = String.get_int64_ne code (w lsl 3) in
    let m =
      Int64.logor
        (Int64.logor
           (Int64.logor (has_byte x b_f3) (has_byte x b_e8))
           (Int64.logor (has_byte x b_e9) (has_byte x b_eb)))
        (has_byte x b_0f)
    in
    if m <> 0L then Bytes.unsafe_set cls w '\001'
  done;
  for i = nwords lsl 3 to n - 1 do
    if candidate_byte (String.unsafe_get code i) then
      Bytes.unsafe_set cls (i lsr 3) '\001'
  done;
  cls

(* Does the byte window [off, off + len) touch a flagged word?  Instruction
   windows are at most 15 bytes, so this reads at most 3 class bytes. *)
let[@inline] window_has_candidate cls ~off ~len =
  len > 0
  &&
  let w1 = (off + len - 1) lsr 3 in
  let w = ref (off lsr 3) in
  let hit = ref false in
  while (not !hit) && !w <= w1 do
    if Bytes.unsafe_get cls !w <> '\000' then hit := true else incr w
  done;
  !hit

(* ---- End-branch pattern scan ----------------------------------------- *)

(* Doubling int buffer for the anchor offsets (monomorphic, no lists). *)
type ibuf = { mutable arr : int array; mutable len : int }

let ibuf_push b v =
  if b.len = Array.length b.arr then begin
    let bigger = Array.make (2 * b.len) 0 in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- v;
  b.len <- b.len + 1

(* Check the 4-byte end-branch pattern at [i]; reads straddle word
   boundaries naturally because they go back to the string. *)
let[@inline] pattern_at code n want i =
  i + 4 <= n
  && String.unsafe_get code i = '\xF3'
  && String.unsafe_get code (i + 1) = '\x0F'
  && String.unsafe_get code (i + 2) = '\x1E'
  && String.unsafe_get code (i + 3) = want

(* Offsets of every end-branch byte pattern F3 0F 1E FA/FB, ascending.
   The word loop only descends to byte checks inside words that contain
   an [F3] at all; compiler-emitted code has few, so almost every word is
   dismissed with one load and a handful of ALU ops. *)
let anchor_offsets arch code =
  let want = match arch with Cet_x86.Arch.X64 -> '\xFA' | Cet_x86.Arch.X86 -> '\xFB' in
  let n = String.length code in
  let out = { arr = Array.make 16 0; len = 0 } in
  let nwords = n lsr 3 in
  for w = 0 to nwords - 1 do
    let x = String.get_int64_ne code (w lsl 3) in
    if has_byte x b_f3 <> 0L then begin
      let base = w lsl 3 in
      let hi = min (base + 7) (n - 4) in
      for i = base to hi do
        if pattern_at code n want i then ibuf_push out i
      done
    end
  done;
  (* Patterns starting in the sub-word tail (the word loop already covers
     starts below [8 * nwords], including ones whose suffix straddles into
     the tail). *)
  for i = nwords lsl 3 to n - 4 do
    if pattern_at code n want i then ibuf_push out i
  done;
  Array.sub out.arr 0 out.len
