module Arch = Cet_x86.Arch
module Decoder = Cet_x86.Decoder
module Reader = Cet_elf.Reader

type indexes = {
  endbrs : int array;
  call_sites : int array;
  call_rets : int array;
  call_tgts : int array;
  call_targets : int array;
  jmp_sites : int array;
  jmp_tgts : int array;
  jmp_targets : int array;
}

type t = {
  t_reader : Reader.t;
  mutable t_text : Reader.section option;
  mutable t_text_known : bool;
  mutable t_sweep : Linear.t option;
  mutable t_anchored : Linear.t option;
  mutable t_idx : indexes option;
  mutable t_anchored_idx : indexes option;
  mutable t_pads : int array option;
  mutable t_frames : Cet_eh.Eh_frame.frame list option;
  mutable t_fde_starts : int list option;
  mutable t_fde_extents : (int * int) list option;
}

let create reader =
  if Cet_telemetry.Registry.enabled () then Cet_telemetry.Registry.count "substrate.created";
  {
    t_reader = reader;
    t_text = None;
    t_text_known = false;
    t_sweep = None;
    t_anchored = None;
    t_idx = None;
    t_anchored_idx = None;
    t_pads = None;
    t_frames = None;
    t_fde_starts = None;
    t_fde_extents = None;
  }

let of_bytes bytes = create (Reader.read bytes)
let reader t = t.t_reader

let text t =
  if not t.t_text_known then begin
    t.t_text <- Reader.find_section t.t_reader ".text";
    t.t_text_known <- true
  end;
  t.t_text

let sweep t =
  match t.t_sweep with
  | Some s -> s
  | None ->
    let s = Linear.sweep_text t.t_reader in
    t.t_sweep <- Some s;
    s

let sweep_anchored t =
  match t.t_anchored with
  | Some s -> s
  | None ->
    let s = Linear.sweep_text_anchored t.t_reader in
    t.t_anchored <- Some s;
    s

(* ---- Derived index arrays ------------------------------------------- *)

(* Doubling int buffer shared by the single-pass index build. *)
type ibuf = { mutable arr : int array; mutable len : int }

let ibuf_create () = { arr = Array.make 64 0; len = 0 }

let ibuf_push b v =
  if b.len = Array.length b.arr then begin
    let bigger = Array.make (2 * b.len) 0 in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- v;
  b.len <- b.len + 1

let ibuf_contents b = Array.sub b.arr 0 b.len

(* One pass over the instruction stream harvests every index FunSeeker and
   the baselines consume: E (end-branches), the call sites/returns/targets
   triple, and the in-range unconditional-jump refs. *)
let indexes_of_sweep (sw : Linear.t) =
  if Cet_telemetry.Registry.enabled () then
    Cet_telemetry.Registry.count "substrate.index_builds";
  let want_endbr =
    match sw.Linear.arch with Arch.X64 -> Decoder.Endbr64 | Arch.X86 -> Decoder.Endbr32
  in
  let eb = ibuf_create () in
  let cs = ibuf_create () and cr = ibuf_create () and ct = ibuf_create () in
  let js = ibuf_create () and jt = ibuf_create () in
  Array.iter
    (fun (i : Decoder.ins) ->
      match i.kind with
      | Decoder.Call_direct target ->
        ibuf_push cs i.addr;
        ibuf_push cr (i.addr + i.len);
        ibuf_push ct target
      | Decoder.Jmp_direct target when Linear.in_range sw target ->
        ibuf_push js i.addr;
        ibuf_push jt target
      | k -> if k = want_endbr then ibuf_push eb i.addr)
    sw.Linear.insns;
  let call_tgts = ibuf_contents ct in
  let in_range_tgts = ibuf_create () in
  Array.iter (fun a -> if Linear.in_range sw a then ibuf_push in_range_tgts a) call_tgts;
  {
    endbrs = ibuf_contents eb;
    call_sites = ibuf_contents cs;
    call_rets = ibuf_contents cr;
    call_tgts;
    call_targets = Linear.sort_dedup_ints (ibuf_contents in_range_tgts);
    jmp_sites = ibuf_contents js;
    jmp_tgts = ibuf_contents jt;
    jmp_targets = Linear.sort_dedup_ints (Array.copy (ibuf_contents jt));
  }

let indexes ?(anchored = false) t =
  if anchored then (
    match t.t_anchored_idx with
    | Some ix -> ix
    | None ->
      let ix = indexes_of_sweep (sweep_anchored t) in
      t.t_anchored_idx <- Some ix;
      ix)
  else
    match t.t_idx with
    | Some ix -> ix
    | None ->
      let ix = indexes_of_sweep (sweep t) in
      t.t_idx <- Some ix;
      ix

(* ---- Exception-table facts ------------------------------------------ *)

let fde_frames t =
  match t.t_frames with
  | Some fs -> fs
  | None ->
    let fs =
      match Reader.find_section t.t_reader ".eh_frame" with
      | None -> []
      | Some s -> Cet_eh.Eh_frame.decode ~vaddr:s.vaddr s.data
    in
    t.t_frames <- Some fs;
    fs

let fde_starts t =
  match t.t_fde_starts with
  | Some ss -> ss
  | None ->
    (* The sorted [.eh_frame_hdr] search table is the cheap source real
       tools consult first; fall back to walking [.eh_frame] records. *)
    let from_frames () =
      List.map (fun (f : Cet_eh.Eh_frame.frame) -> f.pc_begin) (fde_frames t)
      |> List.sort_uniq Int.compare
    in
    let ss =
      match Reader.find_section t.t_reader ".eh_frame_hdr" with
      | Some s -> (
        match Cet_eh.Eh_frame_hdr.decode ~vaddr:s.vaddr s.data with
        | entries ->
          List.map (fun (e : Cet_eh.Eh_frame_hdr.entry) -> e.initial_loc) entries
          |> List.sort_uniq Int.compare
        | exception Invalid_argument _ -> from_frames ())
      | None -> from_frames ()
    in
    t.t_fde_starts <- Some ss;
    ss

let compare_extent (a_lo, a_hi) (b_lo, b_hi) =
  if a_lo <> b_lo then Int.compare a_lo b_lo else Int.compare a_hi b_hi

let fde_extents t =
  match t.t_fde_extents with
  | Some es -> es
  | None ->
    let es =
      List.map
        (fun (f : Cet_eh.Eh_frame.frame) -> (f.pc_begin, f.pc_begin + f.pc_range))
        (fde_frames t)
      |> List.sort_uniq compare_extent
    in
    t.t_fde_extents <- Some es;
    es

let landing_pads t =
  match t.t_pads with
  | Some ps -> ps
  | None ->
    let ps =
      match Reader.find_section t.t_reader ".gcc_except_table" with
      | None -> [||]
      | Some get ->
        let pads = ibuf_create () in
        List.iter
          (fun (f : Cet_eh.Eh_frame.frame) ->
            match f.lsda with
            | None -> ()
            | Some lsda_vaddr ->
              let off = lsda_vaddr - get.vaddr in
              if off >= 0 && off < String.length get.data then
                let lsda = Cet_eh.Lsda.decode get.data ~off in
                List.iter (ibuf_push pads)
                  (Cet_eh.Lsda.landing_pads lsda ~func_start:f.pc_begin))
          (fde_frames t);
        Linear.sort_dedup_ints (ibuf_contents pads)
    in
    t.t_pads <- Some ps;
    ps
