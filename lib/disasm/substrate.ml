module Arch = Cet_x86.Arch
module Decoder = Cet_x86.Decoder
module Reader = Cet_elf.Reader

type indexes = {
  endbrs : int array;
  call_sites : int array;
  call_rets : int array;
  call_tgts : int array;
  call_targets : int array;
  jmp_sites : int array;
  jmp_tgts : int array;
  jmp_targets : int array;
}

type facts = {
  f_base : int;
  f_size : int;
  f_resync_errors : int;
  f_insns : int;
}

type t = {
  t_reader : Reader.t;
  mutable t_text : Reader.section option;
  mutable t_text_known : bool;
  mutable t_sweep : Linear.t option;
  mutable t_anchored : Linear.t option;
  mutable t_idx : indexes option;
  mutable t_anchored_idx : indexes option;
  mutable t_facts : facts option;
  mutable t_anchored_facts : facts option;
  mutable t_pads : int array option;
  mutable t_frames : Cet_eh.Eh_frame.frame list option;
  mutable t_fde_starts : int list option;
  mutable t_fde_extents : (int * int) list option;
}

let create reader =
  if Cet_telemetry.Registry.enabled () then Cet_telemetry.Registry.count "substrate.created";
  {
    t_reader = reader;
    t_text = None;
    t_text_known = false;
    t_sweep = None;
    t_anchored = None;
    t_idx = None;
    t_anchored_idx = None;
    t_facts = None;
    t_anchored_facts = None;
    t_pads = None;
    t_frames = None;
    t_fde_starts = None;
    t_fde_extents = None;
  }

let of_bytes bytes = create (Reader.read bytes)
let reader t = t.t_reader

let text t =
  if not t.t_text_known then begin
    t.t_text <- Reader.find_section t.t_reader ".text";
    t.t_text_known <- true
  end;
  t.t_text

let sweep t =
  match t.t_sweep with
  | Some s -> s
  | None ->
    let s = Linear.sweep_text t.t_reader in
    t.t_sweep <- Some s;
    s

let sweep_anchored t =
  match t.t_anchored with
  | Some s -> s
  | None ->
    let s = Linear.sweep_text_anchored t.t_reader in
    t.t_anchored <- Some s;
    s

let facts_of_sweep (sw : Linear.t) =
  {
    f_base = sw.Linear.base;
    f_size = sw.Linear.size;
    f_resync_errors = sw.Linear.resync_errors;
    f_insns = Array.length sw.Linear.insns;
  }

let in_text fx addr = addr >= fx.f_base && addr < fx.f_base + fx.f_size
let text_end fx = fx.f_base + fx.f_size

(* ---- Derived index arrays ------------------------------------------- *)

(* Doubling int buffer shared by the single-pass index build. *)
type ibuf = { mutable arr : int array; mutable len : int }

let ibuf_create () = { arr = Array.make 64 0; len = 0 }

let ibuf_push b v =
  if b.len = Array.length b.arr then begin
    let bigger = Array.make (2 * b.len) 0 in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- v;
  b.len <- b.len + 1

let ibuf_contents b = Array.sub b.arr 0 b.len

(* The two distinct-target arrays are sorted in place, so they must not
   alias the sweep-ordered [call_tgts]/[jmp_tgts] — each gets its own
   [ibuf_contents] copy ([Array.sub] always allocates a fresh array). *)
let finish_indexes ~in_text ~eb ~cs ~cr ~ct ~js ~jt =
  let call_tgts = ibuf_contents ct in
  let in_range_tgts = ibuf_create () in
  Array.iter (fun a -> if in_text a then ibuf_push in_range_tgts a) call_tgts;
  {
    endbrs = ibuf_contents eb;
    call_sites = ibuf_contents cs;
    call_rets = ibuf_contents cr;
    call_tgts;
    call_targets = Linear.sort_dedup_ints (ibuf_contents in_range_tgts);
    jmp_sites = ibuf_contents js;
    jmp_tgts = ibuf_contents jt;
    jmp_targets = Linear.sort_dedup_ints (ibuf_contents jt);
  }

(* One pass over the instruction stream harvests every index FunSeeker and
   the baselines consume: E (end-branches), the call sites/returns/targets
   triple, and the in-range unconditional-jump refs. *)
let indexes_of_sweep (sw : Linear.t) =
  if Cet_telemetry.Registry.enabled () then
    Cet_telemetry.Registry.count "substrate.index_builds";
  let want_endbr =
    match sw.Linear.arch with Arch.X64 -> Decoder.Endbr64 | Arch.X86 -> Decoder.Endbr32
  in
  let eb = ibuf_create () in
  let cs = ibuf_create () and cr = ibuf_create () and ct = ibuf_create () in
  let js = ibuf_create () and jt = ibuf_create () in
  Array.iter
    (fun (i : Decoder.ins) ->
      match i.kind with
      | Decoder.Call_direct target ->
        ibuf_push cs i.addr;
        ibuf_push cr (i.addr + i.len);
        ibuf_push ct target
      | Decoder.Jmp_direct target when Linear.in_range sw target ->
        ibuf_push js i.addr;
        ibuf_push jt target
      | k -> if k = want_endbr then ibuf_push eb i.addr)
    sw.Linear.insns;
  finish_indexes ~in_text:(Linear.in_range sw) ~eb ~cs ~cr ~ct ~js ~jt

(* ---- Stream-free scan ------------------------------------------------ *)

(* The scratch-core scan: the same instruction walk as the sweeps, but
   classification lands directly in the index buffers — no [Decoder.ins]
   records, no instruction array.  FunSeeker's analysis consumes only the
   indexes plus {!facts}, so its DISASSEMBLE phase runs through here and
   never materialises the stream the baselines need.

   The SWAR prescan ({!Prescan}) gates the side-table work: decode still
   visits every instruction (boundaries chain, and [resync_errors] must
   match the sweep exactly), but words without a candidate byte skip the
   classification entirely, and the anchored walk takes its
   resynchronisation jumps from the prescanned anchor array.  Differential
   tests pin [scan_section] to [indexes_of_sweep]-over-the-sweep equality
   on the corpus and on random bytes. *)

let scan_deadline_mask = 4095

let scan_section arch ~anchored rd (sec : Reader.section) =
  if Cet_telemetry.Registry.enabled () then
    Cet_telemetry.Registry.count "substrate.index_builds";
  let buf, pos, len = Reader.section_view rd sec in
  let vaddr = sec.Reader.vaddr in
  let limit = pos + len in
  let base = vaddr - pos in
  let in_range target = target >= vaddr && target < vaddr + len in
  let want_endbr =
    match arch with Arch.X64 -> Decoder.tag_endbr64 | Arch.X86 -> Decoder.tag_endbr32
  in
  (* Prescan bitmaps are built over the payload string; window queries
     below translate image offsets back to payload-relative ones. *)
  let cls = Prescan.classes sec.Reader.data in
  let eb = ibuf_create () in
  let cs = ibuf_create () and cr = ibuf_create () and ct = ibuf_create () in
  let js = ibuf_create () and jt = ibuf_create () in
  let s = Decoder.scratch () in
  let errors = ref 0 in
  let insns = ref 0 in
  let off = ref pos in
  let tick = ref 0 in
  let harvest () =
    let tag = Decoder.scratch_tag s in
    if tag = Decoder.tag_call_direct then begin
      let addr = Decoder.scratch_addr s in
      ibuf_push cs addr;
      ibuf_push cr (addr + Decoder.scratch_len s);
      ibuf_push ct (Decoder.scratch_target s)
    end
    else if tag = Decoder.tag_jmp_direct then begin
      let target = Decoder.scratch_target s in
      if in_range target then begin
        ibuf_push js (Decoder.scratch_addr s);
        ibuf_push jt target
      end
    end
    else if tag = want_endbr then ibuf_push eb (Decoder.scratch_addr s)
  in
  if not anchored then begin
    let desynced = ref false in
    while !off < limit do
      incr tick;
      if !tick land scan_deadline_mask = 0 then Cet_util.Deadline.check "disasm.scan";
      if Decoder.scan arch s buf ~limit ~base ~off:!off then begin
        desynced := false;
        incr insns;
        let ilen = Decoder.scratch_len s in
        if Prescan.window_has_candidate cls ~off:(!off - pos) ~len:ilen then harvest ();
        off := !off + ilen
      end
      else begin
        if not !desynced then incr errors;
        desynced := true;
        incr off
      end
    done
  end
  else begin
    (* Mirror of [Linear.sweep_anchored_impl]: untrusted runs jump straight
       to the next end-branch anchor (payload-relative offsets from the
       SWAR scan), harvesting nothing from them. *)
    let anchors = Prescan.anchor_offsets arch sec.Reader.data in
    let nanchors = Array.length anchors in
    let anchor_lower_bound rel =
      let lo = ref 0 and hi = ref nanchors in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if anchors.(mid) < rel then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let next_anchor_or_end rel =
      let i = anchor_lower_bound (rel + 1) in
      if i < nanchors then anchors.(i) else len
    in
    while !off < limit do
      incr tick;
      if !tick land scan_deadline_mask = 0 then
        Cet_util.Deadline.check "disasm.scan_anchored";
      if Decoder.scan arch s buf ~limit ~base ~off:!off then begin
        let stop = !off + Decoder.scratch_len s in
        let a = pos + next_anchor_or_end (!off - pos) in
        if a < stop then begin
          incr errors;
          off := a
        end
        else begin
          incr insns;
          if Prescan.window_has_candidate cls ~off:(!off - pos) ~len:(Decoder.scratch_len s)
          then harvest ();
          off := stop
        end
      end
      else begin
        incr errors;
        off := pos + next_anchor_or_end (!off - pos)
      end
    done
  end;
  ( finish_indexes ~in_text:in_range ~eb ~cs ~cr ~ct ~js ~jt,
    { f_base = vaddr; f_size = len; f_resync_errors = !errors; f_insns = !insns } )

let scan_section arch ~anchored rd sec =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_
      ~name:(if anchored then "disasm.scan_anchored" else "disasm.scan")
      (fun () -> scan_section arch ~anchored rd sec)
  else scan_section arch ~anchored rd sec

(* Run the scan for [t], caching both products.  When the full sweep is
   already memoised the index pass over its stream is cheaper than a
   re-decode, so prefer it. *)
let scan ~anchored t =
  match text t with
  | None -> invalid_arg "Substrate.scan: no .text section"
  | Some sec ->
    let ix, fx = scan_section (Reader.arch t.t_reader) ~anchored t.t_reader sec in
    if anchored then begin
      t.t_anchored_idx <- Some ix;
      t.t_anchored_facts <- Some fx
    end
    else begin
      t.t_idx <- Some ix;
      t.t_facts <- Some fx
    end;
    (ix, fx)

let indexes ?(anchored = false) t =
  match if anchored then t.t_anchored_idx else t.t_idx with
  | Some ix -> ix
  | None -> (
    match if anchored then t.t_anchored else t.t_sweep with
    | Some sw ->
      let ix = indexes_of_sweep sw in
      if anchored then t.t_anchored_idx <- Some ix else t.t_idx <- Some ix;
      ix
    | None -> fst (scan ~anchored t))

let facts ?(anchored = false) t =
  match if anchored then t.t_anchored_facts else t.t_facts with
  | Some fx -> fx
  | None -> (
    match if anchored then t.t_anchored else t.t_sweep with
    | Some sw ->
      let fx = facts_of_sweep sw in
      if anchored then t.t_anchored_facts <- Some fx else t.t_facts <- Some fx;
      fx
    | None -> snd (scan ~anchored t))

(* ---- Exception-table facts ------------------------------------------ *)

(* Every decoder below runs through its [_result] form: this is a
   production path (no diag collector in sight), so corrupt entries are
   skipped, not raised through the analysis. *)

let fde_frames t =
  match t.t_frames with
  | Some fs -> fs
  | None ->
    let fs =
      match Reader.find_section t.t_reader ".eh_frame" with
      | None -> []
      | Some s -> fst (Cet_eh.Eh_frame.decode_result ~vaddr:s.vaddr s.data)
    in
    t.t_frames <- Some fs;
    fs

let fde_starts t =
  match t.t_fde_starts with
  | Some ss -> ss
  | None ->
    (* The sorted [.eh_frame_hdr] search table is the cheap source real
       tools consult first; fall back to walking [.eh_frame] records when
       it is missing or corrupt (truncated tables included — the header
       can be intact while the entries are cut short). *)
    let from_frames () =
      List.map (fun (f : Cet_eh.Eh_frame.frame) -> f.pc_begin) (fde_frames t)
      |> List.sort_uniq Int.compare
    in
    let ss =
      match Reader.find_section t.t_reader ".eh_frame_hdr" with
      | Some s -> (
        match Cet_eh.Eh_frame_hdr.decode_result ~vaddr:s.vaddr s.data with
        | Ok entries ->
          List.map (fun (e : Cet_eh.Eh_frame_hdr.entry) -> e.initial_loc) entries
          |> List.sort_uniq Int.compare
        | Error _ -> from_frames ())
      | None -> from_frames ()
    in
    t.t_fde_starts <- Some ss;
    ss

let compare_extent (a_lo, a_hi) (b_lo, b_hi) =
  if a_lo <> b_lo then Int.compare a_lo b_lo else Int.compare a_hi b_hi

let fde_extents t =
  match t.t_fde_extents with
  | Some es -> es
  | None ->
    let es =
      List.map
        (fun (f : Cet_eh.Eh_frame.frame) -> (f.pc_begin, f.pc_begin + f.pc_range))
        (fde_frames t)
      |> List.sort_uniq compare_extent
    in
    t.t_fde_extents <- Some es;
    es

let landing_pads t =
  match t.t_pads with
  | Some ps -> ps
  | None ->
    let ps =
      match Reader.find_section t.t_reader ".gcc_except_table" with
      | None -> [||]
      | Some get ->
        let pads = ibuf_create () in
        List.iter
          (fun (f : Cet_eh.Eh_frame.frame) ->
            match f.lsda with
            | None -> ()
            | Some lsda_vaddr -> (
              let off = lsda_vaddr - get.vaddr in
              if off >= 0 && off < String.length get.data then
                (* A truncated LSDA whose header starts in bounds must not
                   crash the analysis: skip the corrupt record, keep the
                   pads of every healthy one. *)
                match Cet_eh.Lsda.decode_result get.data ~off with
                | Ok lsda ->
                  List.iter (ibuf_push pads)
                    (Cet_eh.Lsda.landing_pads lsda ~func_start:f.pc_begin)
                | Error _ -> ()))
          (fde_frames t);
        Linear.sort_dedup_ints (ibuf_contents pads)
    in
    t.t_pads <- Some ps;
    ps
