(** Per-binary analysis substrate.

    Every identifier in this codebase — FunSeeker and the five baseline
    models — consumes the same raw facts about a binary: the parsed ELF,
    the linear sweep of [.text] (plus the end-branch-anchored variant on
    demand), the [.eh_frame]/LSDA-derived landing pads and FDE tables, and
    a handful of derived index arrays (end-branch addresses, direct-call
    sites and targets, direct-jump refs and targets).  Before the
    substrate, the evaluation harness paid the DISASSEMBLE pass once per
    tool — six sweeps of the same [.text] per binary.

    A substrate computes each fact lazily, exactly once, and memoises it
    for the lifetime of the binary.  Memoisation never invalidates: a
    substrate wraps one immutable parsed image, so every cached fact stays
    true forever.  Substrates are not thread-safe; the intended ownership
    is one substrate per binary per evaluation worker (domain).

    The derived indexes are sorted monomorphic [int array]s built in a
    single pass over the instruction stream — no intermediate lists, no
    polymorphic compares. *)

type indexes = {
  endbrs : int array;
      (** end-branch addresses matching the architecture, address order
          (therefore sorted) *)
  call_sites : int array;  (** direct-call site addresses, address order *)
  call_rets : int array;  (** parallel to [call_sites]: return addresses *)
  call_tgts : int array;
      (** parallel to [call_sites]: targets, including ones outside the
          swept region (PLT calls — FILTERENDBR inspects those) *)
  call_targets : int array;  (** distinct in-range call targets, sorted *)
  jmp_sites : int array;
      (** sites of unconditional direct jumps with in-range targets,
          address order *)
  jmp_tgts : int array;  (** parallel to [jmp_sites]: targets *)
  jmp_targets : int array;  (** distinct in-range jump targets, sorted *)
}

type facts = {
  f_base : int;  (** virtual address of the first [.text] byte *)
  f_size : int;  (** [.text] size in bytes *)
  f_resync_errors : int;
      (** desynchronisation events, exactly {!Linear.t.resync_errors} of
          the corresponding sweep *)
  f_insns : int;
      (** instructions decoded and kept, exactly the length of the
          corresponding sweep's stream (anchored: untrusted runs excluded)
          — per-binary profiles report this as decode volume *)
}
(** The sweep-level facts FunSeeker's analysis needs — deliberately not
    the instruction stream.  Computed either from a memoised sweep or by
    the stream-free scratch-core scan (which never materialises
    instruction records at all); the two agree exactly. *)

type t

val create : Cet_elf.Reader.t -> t
(** Wrap a parsed binary.  Nothing is computed until first use. *)

val of_bytes : string -> t
(** Parse ELF bytes ({!Cet_elf.Reader.read}) and wrap the result. *)

val reader : t -> Cet_elf.Reader.t
val text : t -> Cet_elf.Reader.section option

val sweep : t -> Linear.t
(** The linear sweep of [.text], computed on first call.
    Raises [Invalid_argument] when the image has no [.text]. *)

val sweep_anchored : t -> Linear.t
(** The end-branch-anchored sweep, memoised independently of {!sweep}. *)

val indexes : ?anchored:bool -> t -> indexes
(** The derived index arrays of the (plain or anchored) sweep.  When the
    corresponding sweep is already memoised they are built in one pass
    over its instruction stream; otherwise the SWAR-prescanned
    scratch-core scan produces them directly from the code bytes, never
    materialising the stream — the results are identical either way. *)

val indexes_of_sweep : Linear.t -> indexes
(** Build the index arrays for a sweep outside any substrate — the legacy
    [analyze_sweep] entry points use this. *)

val facts : ?anchored:bool -> t -> facts
(** The sweep-level facts, memoised like {!indexes} and produced by the
    same scan when no sweep is cached.  Raises [Invalid_argument] when
    the image has no [.text] (like {!sweep}). *)

val facts_of_sweep : Linear.t -> facts
(** Project the facts out of an existing sweep. *)

val in_text : facts -> int -> bool
(** Is the address inside the swept region?  ({!Linear.in_range} at the
    facts level.) *)

val text_end : facts -> int
(** [f_base + f_size]. *)

val landing_pads : t -> int array
(** Exception-handler landing pads from [.eh_frame] + [.gcc_except_table],
    sorted distinct; empty when either section is missing.  Decoded once. *)

val fde_frames : t -> Cet_eh.Eh_frame.frame list
(** Decoded [.eh_frame] FDEs (empty without the section), memoised. *)

val fde_starts : t -> int list
(** Sorted distinct [pc_begin] of every FDE, preferring the cheap
    [.eh_frame_hdr] search table like real tools do. *)

val fde_extents : t -> (int * int) list
(** Sorted distinct [(pc_begin, pc_begin + pc_range)] per FDE. *)
