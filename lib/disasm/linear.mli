(** Linear-sweep disassembly (§IV-B of the paper).

    The sweep decodes from the start of a code region to its end; on a
    decode failure it advances one byte and resumes, exactly as FunSeeker's
    DISASSEMBLE does.  The result keeps the full instruction stream (used by
    the baselines' analyses) plus the index structures FunSeeker needs. *)

type t = {
  arch : Cet_x86.Arch.t;
  base : int;  (** virtual address of the first byte *)
  size : int;
  code : string;  (** the swept bytes (byte signatures need them) *)
  insns : Cet_x86.Decoder.ins array;  (** in address order *)
  resync_errors : int;
      (** desynchronisation events: maximal runs of undecodable (or, for
          the anchored sweep, untrusted) bytes the sweep recovered from —
          one per run, however many bytes it spanned *)
}

val sweep : Cet_x86.Arch.t -> ?base:int -> string -> t
(** Disassemble a whole code blob (default [base] 0). *)

val sweep_text : Cet_elf.Reader.t -> t
(** Sweep the [.text] section of an ELF image.
    Raises [Invalid_argument] when the image has no [.text]. *)

val sweep_anchored : Cet_x86.Arch.t -> ?base:int -> string -> t
(** CET-aware sweep (the §VI superset-disassembly direction): end-branch
    byte patterns are unambiguous 4-byte markers, so every occurrence is
    forced to be an instruction boundary.  When a decoded instruction
    would straddle an anchor — which happens when inline data (e.g. a
    jump table in [.text]) desynchronised the sweep — the sweep discards
    it and restarts at the anchor.  On binaries without inline data the
    result equals {!sweep}. *)

val sweep_text_anchored : Cet_elf.Reader.t -> t

(** {2 Differential-testing oracles}

    The production sweeps run on the allocation-free scratch decoder
    ({!Cet_x86.Decoder.scan}) with SWAR-prescanned anchors; these are the
    original byte-at-a-time implementations, kept verbatim so property
    tests can pin the rewrite to exact result equality.  Not memoised,
    not telemetry-instrumented — do not use outside tests. *)

val sweep_reference : Cet_x86.Arch.t -> ?base:int -> string -> t
(** {!sweep} over [Decoder.decode], one instruction record at a time. *)

val sweep_anchored_reference : Cet_x86.Arch.t -> ?base:int -> string -> t
(** {!sweep_anchored} with the original trust-tracking loop that decodes
    every byte position of untrusted runs instead of jumping to the next
    anchor. *)

val anchor_offsets : Cet_x86.Arch.t -> string -> int array
(** Offsets of every end-branch byte pattern (F3 0F 1E FA/FB), ascending —
    the SWAR scan ({!Prescan.anchor_offsets}). *)

val anchor_offsets_naive : Cet_x86.Arch.t -> string -> int array
(** The per-byte oracle for {!anchor_offsets}. *)

val in_range : t -> int -> bool
(** Is the address inside the swept region? *)

val endbr_addrs : t -> int list
(** Addresses of end-branch markers matching the architecture
    ([endbr64] on x86-64, [endbr32] on x86), in address order. *)

val call_targets : t -> int list
(** Distinct direct-call targets that land inside the swept region,
    sorted. *)

val jmp_targets : t -> int list
(** Distinct targets of unconditional direct jumps landing inside the
    region, sorted.  Conditional branches are excluded: only unconditional
    jumps can be tail calls. *)

val call_sites : t -> (int * int * int) list
(** Direct call sites as [(site_addr, return_addr, target)] — including
    calls leaving the region (PLT calls), which FILTERENDBR inspects. *)

val jmp_refs : t -> (int * int) list
(** Unconditional direct jumps as [(site_addr, target)], targets inside the
    region only. *)

val insn_at : t -> int -> Cet_x86.Decoder.ins option
(** The instruction starting exactly at the given address, if any. *)

(** {2 Array-level accessors}

    The zero-copy versions of the index extractors above: one pass over the
    instruction stream into a monomorphic [int array], no intermediate
    lists.  {!Substrate} memoises these per binary. *)

val endbr_array : t -> int array
(** {!endbr_addrs} as an array (address order). *)

val call_target_array : t -> int array
(** {!call_targets} as a sorted distinct array. *)

val jmp_target_array : t -> int array
(** {!jmp_targets} as a sorted distinct array. *)

val sort_dedup_ints : int array -> int array
(** Sort ([Int.compare]) and deduplicate in place; returns the (possibly
    shorter) array. *)

val mem_sorted : int array -> int -> bool
(** Binary-search membership in a sorted address array. *)

val merge_sorted_dedup : int array -> int array -> int array
(** Union of two sorted distinct address arrays, sorted distinct.  Linear
    time; returns one of the inputs when the other is empty. *)

val first_index_at : t -> int -> int
(** Index into [insns] of the first instruction at or after the address
    ([Array.length insns] when none). *)

val index_of : t -> int -> int option
(** Index of the instruction starting exactly at the address, if any. *)

val sorted_distinct : int list -> int list
(** [List.sort_uniq Int.compare]. *)
