module Arch = Cet_x86.Arch
module Decoder = Cet_x86.Decoder

type t = {
  arch : Arch.t;
  base : int;
  size : int;
  code : string;
  insns : Decoder.ins array;
  resync_errors : int;
}

(* Deadline polling cadence: one wall-clock read per 4096 sweep steps keeps
   the overhead unmeasurable while bounding overshoot to a few microseconds
   of decoding. *)
let deadline_mask = 4095

let sweep_impl arch base code =
  let size = String.length code in
  let insns = ref [] in
  let errors = ref 0 in
  let off = ref 0 in
  let tick = ref 0 in
  (* [resync_errors] counts desynchronisation events, not undecodable
     bytes: a 40-byte inline-data run the sweep has to skip through is one
     resynchronisation, so the counter tracks how often the sweep lost the
     instruction stream. *)
  let desynced = ref false in
  while !off < size do
    incr tick;
    if !tick land deadline_mask = 0 then Cet_util.Deadline.check "disasm.sweep";
    match Decoder.decode arch code ~base ~off:!off with
    | Ok ins ->
      desynced := false;
      insns := ins :: !insns;
      off := !off + ins.Decoder.len
    | Error _ ->
      if not !desynced then incr errors;
      desynced := true;
      incr off
  done;
  {
    arch;
    base;
    size;
    code;
    insns = Array.of_list (List.rev !insns);
    resync_errors = !errors;
  }

(* DISASSEMBLE is the hot phase; the disabled-telemetry path must stay
   allocation-free, hence the guard instead of a bare [Span.with_]. *)
let sweep arch ?(base = 0) code =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"disasm.sweep" (fun () -> sweep_impl arch base code)
  else sweep_impl arch base code

let sweep_text reader =
  match Cet_elf.Reader.find_section reader ".text" with
  | None -> invalid_arg "Linear.sweep_text: no .text section"
  | Some s -> sweep (Cet_elf.Reader.arch reader) ~base:s.vaddr s.data

(* Offsets of every end-branch byte pattern: F3 0F 1E FA/FB.  The pattern
   cannot appear inside another instruction's opcode bytes the compilers
   emit, and a false hit inside immediate data merely adds a resync point. *)
let anchor_offsets arch code =
  let want = match arch with Arch.X64 -> '\xfa' | Arch.X86 -> '\xfb' in
  let out = ref [] in
  let n = String.length code in
  for i = n - 4 downto 0 do
    if
      code.[i] = '\xf3' && code.[i + 1] = '\x0f' && code.[i + 2] = '\x1e'
      && code.[i + 3] = want
    then out := i :: !out
  done;
  !out

let sweep_anchored_impl arch base code =
  let size = String.length code in
  let anchors = Array.of_list (anchor_offsets arch code) in
  let next_anchor_after off =
    (* Smallest anchor > off. *)
    let lo = ref 0 and hi = ref (Array.length anchors) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if anchors.(mid) <= off then lo := mid + 1 else hi := mid
    done;
    if !lo < Array.length anchors then Some anchors.(!lo) else None
  in
  let insns = ref [] in
  let errors = ref 0 in
  let off = ref 0 in
  let tick = ref 0 in
  (* Trust tracking (probabilistic-disassembly-lite): once a decode fails,
     everything up to the next end-branch anchor is suspected inline data
     and its (garbage) instructions are withheld from the stream, so no
     bogus branch targets are harvested from it. *)
  let trusted = ref true in
  let anchor_set = Hashtbl.create (Array.length anchors) in
  Array.iter (fun a -> Hashtbl.replace anchor_set a ()) anchors;
  while !off < size do
    incr tick;
    if !tick land deadline_mask = 0 then Cet_util.Deadline.check "disasm.sweep_anchored";
    if Hashtbl.mem anchor_set !off then trusted := true;
    match Decoder.decode arch code ~base ~off:!off with
    | Ok ins -> (
      let stop = !off + ins.Decoder.len in
      match next_anchor_after !off with
      | Some a when a < stop ->
        (* The instruction would swallow an end-branch marker: the sweep
           is desynchronised (inline data) — resynchronise at the anchor.
           Only a trusted->untrusted transition counts as a new event;
           stumbling again inside an already-suspect run does not. *)
        if !trusted then incr errors;
        off := a;
        trusted := true
      | _ ->
        if !trusted then insns := ins :: !insns;
        off := stop)
    | Error _ ->
      if !trusted then incr errors;
      trusted := false;
      incr off
  done;
  {
    arch;
    base;
    size;
    code;
    insns = Array.of_list (List.rev !insns);
    resync_errors = !errors;
  }

let sweep_anchored arch ?(base = 0) code =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"disasm.sweep_anchored" (fun () ->
        sweep_anchored_impl arch base code)
  else sweep_anchored_impl arch base code

let sweep_text_anchored reader =
  match Cet_elf.Reader.find_section reader ".text" with
  | None -> invalid_arg "Linear.sweep_text_anchored: no .text section"
  | Some s -> sweep_anchored (Cet_elf.Reader.arch reader) ~base:s.vaddr s.data

let in_range t addr = addr >= t.base && addr < t.base + t.size

let sorted_distinct addrs =
  List.sort_uniq compare addrs

let endbr_addrs t =
  let want = match t.arch with Arch.X64 -> Decoder.Endbr64 | Arch.X86 -> Decoder.Endbr32 in
  Array.to_list t.insns
  |> List.filter_map (fun (i : Decoder.ins) ->
         if i.kind = want then Some i.addr else None)

let call_targets t =
  Array.to_list t.insns
  |> List.filter_map (fun (i : Decoder.ins) ->
         match i.kind with
         | Decoder.Call_direct target when in_range t target -> Some target
         | _ -> None)
  |> sorted_distinct

let jmp_targets t =
  Array.to_list t.insns
  |> List.filter_map (fun (i : Decoder.ins) ->
         match i.kind with
         | Decoder.Jmp_direct target when in_range t target -> Some target
         | _ -> None)
  |> sorted_distinct

let call_sites t =
  Array.to_list t.insns
  |> List.filter_map (fun (i : Decoder.ins) ->
         match i.kind with
         | Decoder.Call_direct target -> Some (i.addr, i.addr + i.len, target)
         | _ -> None)

let jmp_refs t =
  Array.to_list t.insns
  |> List.filter_map (fun (i : Decoder.ins) ->
         match i.kind with
         | Decoder.Jmp_direct target when in_range t target -> Some (i.addr, target)
         | _ -> None)

let insn_at t addr =
  (* Instructions are in address order: binary search. *)
  let lo = ref 0 and hi = ref (Array.length t.insns) in
  let found = ref None in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let i = t.insns.(mid) in
    if i.Decoder.addr = addr then begin
      found := Some i;
      lo := !hi
    end
    else if i.Decoder.addr < addr then lo := mid + 1
    else hi := mid
  done;
  !found
