module Arch = Cet_x86.Arch
module Decoder = Cet_x86.Decoder

type t = {
  arch : Arch.t;
  base : int;
  size : int;
  code : string;
  insns : Decoder.ins array;
  resync_errors : int;
}

(* Deadline polling cadence: one wall-clock read per 4096 sweep steps keeps
   the overhead unmeasurable while bounding overshoot to a few microseconds
   of decoding. *)
let deadline_mask = 4095

(* Growable instruction buffer: the sweep appends into a doubling array and
   the result is one exact-size copy — no per-instruction cons cells, no
   List.rev, no Array.of_list.  [dummy_ins] only pads the unused tail. *)
let dummy_ins : Decoder.ins = { addr = 0; len = 0; kind = Decoder.Other }

type buf = { mutable arr : Decoder.ins array; mutable len : int }

let buf_create hint = { arr = Array.make (max 16 hint) dummy_ins; len = 0 }

let buf_push b ins =
  if b.len = Array.length b.arr then begin
    let bigger = Array.make (2 * b.len) dummy_ins in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- ins;
  b.len <- b.len + 1

let buf_contents b = Array.sub b.arr 0 b.len

(* Average x86 instruction length is ~4 bytes; starting the buffer near
   size/4 makes a doubling copy rare without over-reserving tiny regions. *)
let buf_hint size = (size / 4) + 16

(* The byte-at-a-time sweep over [Decoder.decode]: the differential-testing
   oracle for the scratch-core rewrite below.  Kept verbatim. *)
let sweep_reference_impl arch base code =
  let size = String.length code in
  let insns = buf_create (buf_hint size) in
  let errors = ref 0 in
  let off = ref 0 in
  let tick = ref 0 in
  let desynced = ref false in
  while !off < size do
    incr tick;
    if !tick land deadline_mask = 0 then Cet_util.Deadline.check "disasm.sweep";
    match Decoder.decode arch code ~base ~off:!off with
    | Ok ins ->
      desynced := false;
      buf_push insns ins;
      off := !off + ins.Decoder.len
    | Error _ ->
      if not !desynced then incr errors;
      desynced := true;
      incr off
  done;
  { arch; base; size; code; insns = buf_contents insns; resync_errors = !errors }

let sweep_reference arch ?(base = 0) code = sweep_reference_impl arch base code

let sweep_impl arch base code =
  let size = String.length code in
  let insns = buf_create (buf_hint size) in
  let errors = ref 0 in
  let off = ref 0 in
  let tick = ref 0 in
  (* [resync_errors] counts desynchronisation events, not undecodable
     bytes: a 40-byte inline-data run the sweep has to skip through is one
     resynchronisation, so the counter tracks how often the sweep lost the
     instruction stream. *)
  let desynced = ref false in
  let s = Decoder.scratch () in
  while !off < size do
    incr tick;
    if !tick land deadline_mask = 0 then Cet_util.Deadline.check "disasm.sweep";
    if Decoder.scan arch s code ~limit:size ~base ~off:!off then begin
      desynced := false;
      buf_push insns (Decoder.scratch_ins s);
      off := !off + Decoder.scratch_len s
    end
    else begin
      if not !desynced then incr errors;
      desynced := true;
      incr off
    end
  done;
  { arch; base; size; code; insns = buf_contents insns; resync_errors = !errors }

(* DISASSEMBLE is the hot phase; the disabled-telemetry path must stay
   allocation-free, hence the guard instead of a bare [Span.with_]. *)
let sweep arch ?(base = 0) code =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"disasm.sweep" (fun () -> sweep_impl arch base code)
  else sweep_impl arch base code

let sweep_text reader =
  match Cet_elf.Reader.find_section reader ".text" with
  | None -> invalid_arg "Linear.sweep_text: no .text section"
  | Some s -> sweep (Cet_elf.Reader.arch reader) ~base:s.vaddr s.data

(* Offsets of every end-branch byte pattern: F3 0F 1E FA/FB.  The pattern
   cannot appear inside another instruction's opcode bytes the compilers
   emit, and a false hit inside immediate data merely adds a resync point.

   [anchor_offsets_naive] is the per-byte oracle; production callers use
   the SWAR scan in {!Prescan}. *)
let anchor_offsets_naive arch code =
  let want = match arch with Arch.X64 -> '\xfa' | Arch.X86 -> '\xfb' in
  let out = ref [] in
  let n = String.length code in
  for i = n - 4 downto 0 do
    if
      code.[i] = '\xf3' && code.[i + 1] = '\x0f' && code.[i + 2] = '\x1e'
      && code.[i + 3] = want
    then out := i :: !out
  done;
  Array.of_list !out

let anchor_offsets = Prescan.anchor_offsets

(* Anchored-sweep oracle: the original trust-tracking loop, decoding every
   byte position even inside untrusted runs. *)
let sweep_anchored_reference_impl arch base code =
  let size = String.length code in
  let anchors = anchor_offsets_naive arch code in
  let nanchors = Array.length anchors in
  (* First anchor index >= off; [anchors] is sorted ascending, so the same
     binary search answers both "next anchor after" and membership. *)
  let anchor_lower_bound off =
    let lo = ref 0 and hi = ref nanchors in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if anchors.(mid) < off then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let next_anchor_after off =
    let i = anchor_lower_bound (off + 1) in
    if i < nanchors then Some anchors.(i) else None
  in
  let at_anchor off =
    let i = anchor_lower_bound off in
    i < nanchors && anchors.(i) = off
  in
  let insns = buf_create (buf_hint size) in
  let errors = ref 0 in
  let off = ref 0 in
  let tick = ref 0 in
  (* Trust tracking (probabilistic-disassembly-lite): once a decode fails,
     everything up to the next end-branch anchor is suspected inline data
     and its (garbage) instructions are withheld from the stream, so no
     bogus branch targets are harvested from it. *)
  let trusted = ref true in
  while !off < size do
    incr tick;
    if !tick land deadline_mask = 0 then Cet_util.Deadline.check "disasm.sweep_anchored";
    if at_anchor !off then trusted := true;
    match Decoder.decode arch code ~base ~off:!off with
    | Ok ins -> (
      let stop = !off + ins.Decoder.len in
      match next_anchor_after !off with
      | Some a when a < stop ->
        (* The instruction would swallow an end-branch marker: the sweep
           is desynchronised (inline data) — resynchronise at the anchor.
           Only a trusted->untrusted transition counts as a new event;
           stumbling again inside an already-suspect run does not. *)
        if !trusted then incr errors;
        off := a;
        trusted := true
      | _ ->
        if !trusted then buf_push insns ins;
        off := stop)
    | Error _ ->
      if !trusted then incr errors;
      trusted := false;
      incr off
  done;
  { arch; base; size; code; insns = buf_contents insns; resync_errors = !errors }

let sweep_anchored_reference arch ?(base = 0) code =
  sweep_anchored_reference_impl arch base code

(* Production anchored sweep: scratch-core decode plus prescan-driven
   resynchronisation.  The reference loop's untrusted runs decode every
   byte position while withholding the (garbage) instructions and counting
   no further errors — observationally they only move [off] to the next
   anchor.  An untrusted decode can never skip past an anchor (an Ok that
   would straddle one jumps *to* it, an error advances one byte), so the
   rewrite jumps straight there: inline-data runs cost a binary search
   instead of a decode per byte.  A consequence worth stating: [trusted]
   is always true at the top of this loop, which is why the flag itself
   has disappeared. *)
let sweep_anchored_impl arch base code =
  let size = String.length code in
  let anchors = Prescan.anchor_offsets arch code in
  let nanchors = Array.length anchors in
  let anchor_lower_bound off =
    let lo = ref 0 and hi = ref nanchors in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if anchors.(mid) < off then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (* First anchor strictly after [off], or [size] when none. *)
  let next_anchor_or_end off =
    let i = anchor_lower_bound (off + 1) in
    if i < nanchors then anchors.(i) else size
  in
  let insns = buf_create (buf_hint size) in
  let errors = ref 0 in
  let off = ref 0 in
  let tick = ref 0 in
  let s = Decoder.scratch () in
  while !off < size do
    incr tick;
    if !tick land deadline_mask = 0 then Cet_util.Deadline.check "disasm.sweep_anchored";
    if Decoder.scan arch s code ~limit:size ~base ~off:!off then begin
      let stop = !off + Decoder.scratch_len s in
      let a = next_anchor_or_end !off in
      if a < stop then begin
        (* Straddles an end-branch marker: desynchronised (inline data) —
           one resync event, restart at the anchor. *)
        incr errors;
        off := a
      end
      else begin
        buf_push insns (Decoder.scratch_ins s);
        off := stop
      end
    end
    else begin
      incr errors;
      off := next_anchor_or_end !off
    end
  done;
  { arch; base; size; code; insns = buf_contents insns; resync_errors = !errors }

let sweep_anchored arch ?(base = 0) code =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"disasm.sweep_anchored" (fun () ->
        sweep_anchored_impl arch base code)
  else sweep_anchored_impl arch base code

let sweep_text_anchored reader =
  match Cet_elf.Reader.find_section reader ".text" with
  | None -> invalid_arg "Linear.sweep_text_anchored: no .text section"
  | Some s -> sweep_anchored (Cet_elf.Reader.arch reader) ~base:s.vaddr s.data

let in_range t addr = addr >= t.base && addr < t.base + t.size

let sorted_distinct addrs = List.sort_uniq Int.compare addrs

(* ---- Array-based index extraction ----------------------------------- *)

(* One pass over the instruction stream into a doubling int buffer — the
   allocation shape every derived index shares.  [f] returns -1 to skip
   (virtual addresses are non-negative: base + offset into a section). *)
let extract_ints (t : t) (f : Decoder.ins -> int) =
  let arr = ref (Array.make 64 0) in
  let len = ref 0 in
  let push v =
    if !len = Array.length !arr then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !arr 0 bigger 0 !len;
      arr := bigger
    end;
    !arr.(!len) <- v;
    incr len
  in
  Array.iter
    (fun ins ->
      let v = f ins in
      if v >= 0 then push v)
    t.insns;
  Array.sub !arr 0 !len

(* In-place sort + dedup of an address array (monomorphic Int.compare). *)
let sort_dedup_ints a =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    Array.sort Int.compare a;
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

(* Union of two sorted distinct address arrays, sorted distinct. *)
let merge_sorted_dedup (a : int array) (b : int array) =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    let push v =
      if !w = 0 || out.(!w - 1) <> v then begin
        out.(!w) <- v;
        incr w
      end
    in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x <= y then begin
        push x;
        incr i;
        if x = y then incr j
      end
      else begin
        push y;
        incr j
      end
    done;
    while !i < na do
      push a.(!i);
      incr i
    done;
    while !j < nb do
      push b.(!j);
      incr j
    done;
    if !w = na + nb then out else Array.sub out 0 !w
  end

(* Membership in a sorted address array. *)
let mem_sorted (a : int array) v =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = v

let endbr_array t =
  let want = match t.arch with Arch.X64 -> Decoder.Endbr64 | Arch.X86 -> Decoder.Endbr32 in
  extract_ints t (fun i -> if i.kind = want then i.addr else -1)

let call_target_array t =
  sort_dedup_ints
    (extract_ints t (fun i ->
         match i.kind with
         | Decoder.Call_direct target when in_range t target -> target
         | _ -> -1))

let jmp_target_array t =
  sort_dedup_ints
    (extract_ints t (fun i ->
         match i.kind with
         | Decoder.Jmp_direct target when in_range t target -> target
         | _ -> -1))

let endbr_addrs t = Array.to_list (endbr_array t)
let call_targets t = Array.to_list (call_target_array t)
let jmp_targets t = Array.to_list (jmp_target_array t)

let call_sites t =
  List.rev
    (Array.fold_left
       (fun acc (i : Decoder.ins) ->
         match i.kind with
         | Decoder.Call_direct target -> (i.addr, i.addr + i.len, target) :: acc
         | _ -> acc)
       [] t.insns)

let jmp_refs t =
  List.rev
    (Array.fold_left
       (fun acc (i : Decoder.ins) ->
         match i.kind with
         | Decoder.Jmp_direct target when in_range t target -> (i.addr, target) :: acc
         | _ -> acc)
       [] t.insns)

(* Index of the first instruction at or after [addr]. *)
let first_index_at t addr =
  let insns = t.insns in
  let lo = ref 0 and hi = ref (Array.length insns) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if insns.(mid).Decoder.addr < addr then lo := mid + 1 else hi := mid
  done;
  !lo

let index_of t addr =
  let i = first_index_at t addr in
  if i < Array.length t.insns && t.insns.(i).Decoder.addr = addr then Some i else None

let insn_at t addr =
  match index_of t addr with Some i -> Some t.insns.(i) | None -> None
