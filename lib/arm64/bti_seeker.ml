type result = {
  functions : int list;
  bti_c_total : int;
  bti_j_total : int;
  call_target_count : int;
  tail_calls_selected : int;
}

let analyze reader =
  match Cet_elf.Reader.find_section reader ".text" with
  | None -> invalid_arg "Bti_seeker.analyze: no .text section"
  | Some text ->
    let base = text.vaddr in
    let limit = base + text.size in
    let in_text a = a >= base && a < limit in
    let insns = A64.sweep text.data ~base in
    let bti_c = ref [] and bti_j = ref 0 in
    let calls = ref [] and jmp_refs = ref [] and call_refs = ref [] in
    List.iter
      (fun (i : A64.ins) ->
        match i.kind with
        | A64.K_bti A64.Bti_c -> bti_c := i.addr :: !bti_c
        | A64.K_bti (A64.Bti_j | A64.Bti_jc) -> incr bti_j
        | A64.K_call t when in_text t ->
          calls := t :: !calls;
          call_refs := (i.addr, t) :: !call_refs
        | A64.K_jmp t when in_text t -> jmp_refs := (i.addr, t) :: !jmp_refs
        | _ -> ())
      insns;
    let calls = List.sort_uniq Int.compare !calls in
    let candidates = List.sort_uniq Int.compare (!bti_c @ calls) in
    let selected =
      Core.Funseeker.select_tail_calls ~candidates ~jmp_refs:!jmp_refs
        ~call_refs:!call_refs ~text_end:limit ()
    in
    {
      functions = List.sort_uniq Int.compare (candidates @ selected);
      bti_c_total = List.length !bti_c;
      bti_j_total = !bti_j;
      call_target_count = List.length calls;
      tail_calls_selected = List.length selected;
    }

let analyze_bytes bytes = analyze (Cet_elf.Reader.read bytes)
