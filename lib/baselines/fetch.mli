(** FETCH-like identifier (Pang et al., DSN 2021): function detection from
    exception-handling information.

    Harvests FDE [pc_begin] values from [.eh_frame] as function entries and
    refines them with a stack-height analysis that verifies tail-call
    targets — the "examining stack frame heights and calling conventions"
    step the paper credits for FETCH's cost (§V-D).  Binaries without FDEs
    (Clang x86 C code) yield almost nothing, reproducing FETCH's recall
    collapse in Table III. *)

val analyze : ?passes:int -> Cet_elf.Reader.t -> int list
(** Identified function entries, sorted.  [passes] (default 22) controls the
    refinement iterations. *)

val analyze_st : ?passes:int -> Cet_disasm.Substrate.t -> int list
(** {!analyze} over a shared per-binary substrate (sweep and FDE starts
    reused across tools; the refinement passes walk the cached instruction
    stream instead of re-disassembling each extent). *)
