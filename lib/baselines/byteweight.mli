(** ByteWeight-like identifier (Bao et al., USENIX Security 2014): a
    weighted prefix tree over function-start byte sequences, trained on
    binaries with ground truth and applied to stripped ones.

    Included as the representative learning-based approach of §VII-B.  The
    paper (citing Koo et al.) notes such models are "prone to errors when
    handling unseen binary patterns"; training on one compiler and testing
    on the other reproduces that brittleness, while FunSeeker needs no
    training at all. *)

type model

val max_depth : int
(** Prefix length learned (bytes). *)

val train : (Cet_elf.Reader.t * int list) list -> model
(** [train corpus] builds the weighted prefix tree from [(binary,
    entry addresses)] pairs.  Negative examples are the other instruction
    boundaries of the same binaries. *)

val classify : ?threshold:float -> model -> Cet_elf.Reader.t -> int list
(** Score every instruction boundary of [.text]; keep addresses whose
    matched prefix is function-start-weighted above [threshold]
    (default 0.5). *)

val classify_st : ?threshold:float -> model -> Cet_disasm.Substrate.t -> int list
(** {!classify} over a shared per-binary substrate. *)

val score : model -> string -> off:int -> float
(** Posterior that the byte sequence starting at [off] begins a function
    (0.5 when the tree has no evidence). *)
