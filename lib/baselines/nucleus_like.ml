module Linear = Cet_disasm.Linear
module Substrate = Cet_disasm.Substrate
module Decoder = Cet_x86.Decoder

(* Union-find over block indices. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let analyze_st_impl st =
  match Substrate.text st with
  | None -> []
  | Some text ->
    let reader = Substrate.reader st in
    let arch = Cet_elf.Reader.arch reader in
    let sweep = Substrate.sweep st in
    let text_end = text.vaddr + text.size in
    let in_text a = a >= text.vaddr && a < text_end in
    (* Leaders: text start, branch/call targets, and successors of
       terminators. *)
    let leaders = Hashtbl.create 1024 in
    Hashtbl.replace leaders text.vaddr ();
    let call_targets = Hashtbl.create 256 in
    Array.iter
      (fun (i : Decoder.ins) ->
        let next = i.addr + i.len in
        match i.kind with
        | Decoder.Call_direct t ->
          if in_text t then begin
            Hashtbl.replace leaders t ();
            Hashtbl.replace call_targets t ()
          end
        | Decoder.Jmp_direct t ->
          if in_text t then Hashtbl.replace leaders t ();
          if in_text next then Hashtbl.replace leaders next ()
        | Decoder.Jcc_direct t ->
          (* Conditional branches terminate their block: both the target
             and the fall-through start new blocks. *)
          if in_text t then Hashtbl.replace leaders t ();
          if in_text next then Hashtbl.replace leaders next ()
        | Decoder.Ret | Decoder.Halt | Decoder.Jmp_indirect _ ->
          if in_text next then Hashtbl.replace leaders next ()
        | _ -> ())
      sweep.insns;
    let block_starts =
      List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) leaders [])
    in
    let starts = Array.of_list block_starts in
    let nblocks = Array.length starts in
    let block_of addr =
      (* Greatest start <= addr. *)
      let lo = ref 0 and hi = ref nblocks in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if starts.(mid) <= addr then lo := mid + 1 else hi := mid
      done;
      !lo - 1
    in
    (* Padding blocks (inter-function NOP/INT3 fill) are discarded so their
       fall-through does not glue adjacent functions together. *)
    let is_padding b =
      let stop = if b + 1 < nblocks then starts.(b + 1) else text_end in
      let rec walk addr =
        if addr >= stop then true
        else
          match Cet_x86.Exact.decode arch text.data ~off:(addr - text.vaddr) with
          | Some (Cet_x86.Insn.Nop, len)
          | Some (Cet_x86.Insn.Nopl _, len)
          | Some (Cet_x86.Insn.Int3, len) ->
            walk (addr + len)
          | _ -> false
      in
      walk starts.(b)
    in
    let padding = Array.init nblocks is_padding in
    let parent = Array.init nblocks Fun.id in
    let indeg = Array.make nblocks 0 in
    let edge src dst =
      if (not padding.(src)) && not padding.(dst) then begin
        union parent src dst;
        indeg.(dst) <- indeg.(dst) + 1
      end
    in
    (* Walk each block's instructions; the last one decides its edges. *)
    Array.iter
      (fun (i : Decoder.ins) ->
        let next = i.addr + i.len in
        let src = block_of i.addr in
        let last_of_block = next >= text_end || Hashtbl.mem leaders next in
        if last_of_block && src >= 0 then begin
          match i.kind with
          | Decoder.Jcc_direct t ->
            if in_text t then edge src (block_of t);
            if in_text next then edge src (block_of next)
          | Decoder.Jmp_direct t ->
            (* Unconditional jumps are intra-procedural unless the target
               is also a call target (then it's a tail call). *)
            if in_text t && not (Hashtbl.mem call_targets t) then edge src (block_of t)
          | Decoder.Ret | Decoder.Halt | Decoder.Jmp_indirect _ -> ()
          | Decoder.Call_direct _ | Decoder.Call_indirect _ ->
            if in_text next then edge src (block_of next)
          | _ -> if in_text next then edge src (block_of next)
        end)
      sweep.insns;
    (* Jump-table discovery: addresses stored as code pointers in .rodata
       are switch-case targets, i.e. intra-procedural — Nucleus resolves
       those tables rather than promoting each case block to a function. *)
    let table_targets = Hashtbl.create 64 in
    (match Cet_elf.Reader.find_section reader ".rodata" with
    | None -> ()
    | Some ro ->
      let ptr = Cet_x86.Arch.ptr_size arch in
      let words = String.length ro.data / ptr in
      for w = 0 to words - 1 do
        let v = ref 0 in
        for b = ptr - 1 downto 0 do
          v := (!v lsl 8) lor Char.code ro.data.[(w * ptr) + b]
        done;
        if in_text !v then Hashtbl.replace table_targets !v ()
      done);
    (* Entry blocks: no intra-procedural predecessor, not padding, not a
       jump-table target.  Leading alignment filler is stripped — when the
       previous function's padding was not split into its own block, the
       function proper starts after the NOP run. *)
    let strip_leading_padding addr =
      let rec go a =
        if a >= text_end then a
        else
          match Cet_x86.Exact.decode arch text.data ~off:(a - text.vaddr) with
          | Some (Cet_x86.Insn.Nop, len)
          | Some (Cet_x86.Insn.Nopl _, len)
          | Some (Cet_x86.Insn.Int3, len) ->
            go (a + len)
          | _ -> a
      in
      go addr
    in
    let entries = ref [] in
    for b = 0 to nblocks - 1 do
      if
        (not padding.(b)) && indeg.(b) = 0
        && not (Hashtbl.mem table_targets starts.(b))
      then begin
        let a = strip_leading_padding starts.(b) in
        if a < text_end then entries := a :: !entries
      end
    done;
    List.sort_uniq Int.compare !entries

let analyze_st st =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"baseline.nucleus" (fun () -> analyze_st_impl st)
  else analyze_st_impl st

let analyze reader = analyze_st (Substrate.create reader)
