module Linear = Cet_disasm.Linear
module Substrate = Cet_disasm.Substrate
module Decoder = Cet_x86.Decoder

let analyze_st_impl st =
  match Substrate.text st with
  | None -> []
  | Some text ->
    let reader = Substrate.reader st in
    let sweep = Substrate.sweep st in
    let ix = Substrate.indexes st in
    let text_end = text.vaddr + text.size in
    let entry = Cet_elf.Reader.entry reader in
    (* IDA's ELF loader recognises the __libc_start_main idiom and roots
       the call graph at main. *)
    let roots =
      entry :: (match Common.entry_main_root sweep ~entry with Some m -> [ m ] | None -> [])
    in
    let ex = Common.explore sweep ~roots in
    let starts0 = ex.Common.e_functions in
    (* Tail-jump heuristic: an unconditional jump to an address before the
       current function starts a new one.  [starts0] is sorted, so the
       owning function is a binary search rather than a list walk. *)
    let starts_arr = Array.of_list starts0 in
    let nstarts = Array.length starts_arr in
    let owner_start a =
      (* Greatest start <= a. *)
      let lo = ref 0 and hi = ref nstarts in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if starts_arr.(mid) <= a then lo := mid + 1 else hi := mid
      done;
      if !lo = 0 then None else Some starts_arr.(!lo - 1)
    in
    let tail_jumps = ref [] in
    for k = Array.length ix.Substrate.jmp_sites - 1 downto 0 do
      let site = ix.Substrate.jmp_sites.(k) and target = ix.Substrate.jmp_tgts.(k) in
      match owner_start site with
      | Some f when target < f && not (Linear.mem_sorted starts_arr target) ->
        tail_jumps := target :: !tail_jumps
      | _ -> ()
    done;
    (* Data-reference pass: code addresses materialised by lea (x86-64,
       unambiguous) or by absolute immediates on non-PIE x86 (the image
       base makes text addresses distinctive).  PIE x86 immediates are
       indistinguishable from small constants, so IDA skips them — part of
       why its recall is worse on 32-bit PIEs. *)
    let addr_refs =
      let unambiguous =
        match Cet_elf.Reader.arch reader with
        | Cet_x86.Arch.X64 -> true
        | Cet_x86.Arch.X86 -> not (Cet_elf.Reader.pie reader)
      in
      if not unambiguous then []
      else
        List.rev
          (Array.fold_left
             (fun acc (i : Decoder.ins) ->
               match i.kind with
               | Decoder.Addr_ref t when t >= text.vaddr && t < text_end && t land 3 = 0
                 ->
                 t :: acc
               | _ -> acc)
             [] sweep.insns)
    in
    let known = List.sort_uniq Int.compare (starts0 @ !tail_jumps @ addr_refs) in
    (* FLIRT-style signature pass over code the traversal never reached.
       Signatures predate CET, so a leading end-branch reads as padding and
       hits land four bytes past the true entry. *)
    let pattern_hits =
      Common.prologue_scan sweep ~known ~aggressive:false ~visited:ex.Common.e_visited ()
    in
    let ex2 = Common.explore sweep ~roots:(pattern_hits @ known) in
    List.sort_uniq Int.compare (known @ pattern_hits @ ex2.Common.e_functions)
    |> List.filter (fun a -> a >= text.vaddr && a < text_end)

let analyze_st st =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"baseline.ida" (fun () -> analyze_st_impl st)
  else analyze_st_impl st

let analyze reader = analyze_st (Substrate.create reader)
