module Linear = Cet_disasm.Linear
module Decoder = Cet_x86.Decoder

let analyze_impl reader =
  match Cet_elf.Reader.find_section reader ".text" with
  | None -> []
  | Some text ->
    let sweep = Linear.sweep_text reader in
    let text_end = text.vaddr + text.size in
    let entry = Cet_elf.Reader.entry reader in
    (* IDA's ELF loader recognises the __libc_start_main idiom and roots
       the call graph at main. *)
    let roots =
      entry :: (match Common.entry_main_root sweep ~entry with Some m -> [ m ] | None -> [])
    in
    let ex = Common.explore sweep ~roots in
    let starts0 = ex.Common.e_functions in
    (* Tail-jump heuristic: an unconditional jump to an address before the
       current function starts a new one. *)
    let owner_start a =
      let rec last best = function
        | [] -> best
        | s :: rest -> if s <= a then last (Some s) rest else best
      in
      last None starts0
    in
    let tail_jumps =
      List.filter_map
        (fun (site, target) ->
          match owner_start site with
          | Some f when target < f && not (List.mem target starts0) -> Some target
          | _ -> None)
        (Linear.jmp_refs sweep)
    in
    (* Data-reference pass: code addresses materialised by lea (x86-64,
       unambiguous) or by absolute immediates on non-PIE x86 (the image
       base makes text addresses distinctive).  PIE x86 immediates are
       indistinguishable from small constants, so IDA skips them — part of
       why its recall is worse on 32-bit PIEs. *)
    let addr_refs =
      let unambiguous =
        match Cet_elf.Reader.arch reader with
        | Cet_x86.Arch.X64 -> true
        | Cet_x86.Arch.X86 -> not (Cet_elf.Reader.pie reader)
      in
      if not unambiguous then []
      else
        Array.to_list sweep.insns
        |> List.filter_map (fun (i : Decoder.ins) ->
               match i.kind with
               | Decoder.Addr_ref t
                 when t >= text.vaddr && t < text_end && t land 3 = 0 ->
                 Some t
               | _ -> None)
    in
    let known = List.sort_uniq compare (starts0 @ tail_jumps @ addr_refs) in
    (* FLIRT-style signature pass over code the traversal never reached.
       Signatures predate CET, so a leading end-branch reads as padding and
       hits land four bytes past the true entry. *)
    let pattern_hits =
      Common.prologue_scan sweep ~known ~aggressive:false ~visited:ex.Common.e_visited ()
    in
    let ex2 = Common.explore sweep ~roots:(pattern_hits @ known) in
    List.sort_uniq compare (known @ pattern_hits @ ex2.Common.e_functions)
    |> List.filter (fun a -> a >= text.vaddr && a < text_end)

let analyze reader =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"baseline.ida" (fun () -> analyze_impl reader)
  else analyze_impl reader
