(** Ghidra-like identifier: aggressive [.eh_frame] harvesting plus
    recursive traversal and prologue pattern matching.

    The model reproduces the mechanisms the paper attributes to Ghidra
    10.0.4 (§V-C): it leans on FDE records (hence near-perfect recall on
    x86-64 and on GCC binaries, and a collapse on Clang x86 C binaries that
    carry none), complements them with call-graph traversal from the entry
    point, and runs a looser prologue scanner on x86 — the source of its
    extra false positives there. *)

val analyze : Cet_elf.Reader.t -> int list
(** Identified function entries, sorted. *)

val analyze_st : Cet_disasm.Substrate.t -> int list
(** {!analyze} over a shared per-binary substrate (sweep, FDE extents and
    index arrays reused across tools). *)
