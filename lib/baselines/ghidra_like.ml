module Substrate = Cet_disasm.Substrate
module Arch = Cet_x86.Arch

let analyze_st_impl st =
  match Substrate.text st with
  | None -> []
  | Some text ->
    let reader = Substrate.reader st in
    let sweep = Substrate.sweep st in
    let text_end = text.vaddr + text.size in
    let in_text a = a >= text.vaddr && a < text_end in
    let fde_extents =
      List.filter (fun (lo, _) -> in_text lo) (Substrate.fde_extents st)
    in
    let fdes = List.map fst fde_extents in
    let entry = Cet_elf.Reader.entry reader in
    let roots =
      (entry :: (match Common.entry_main_root sweep ~entry with Some m -> [ m ] | None -> []))
      @ fdes
    in
    let ex = Common.explore sweep ~roots in
    let known = List.sort_uniq Int.compare (roots @ ex.Common.e_functions) in
    (* Ghidra's x86 pattern library is broader and fires more readily — the
       paper measures the resulting precision loss on x86.  Hits inside an
       FDE-delimited function body are suppressed (Ghidra trusts recorded
       extents), which is why the scanner only misfires where FDEs are
       missing.  Like IDA's, the signatures treat a leading end-branch as a
       legacy NOP and so land past the true entry. *)
    let aggressive = Cet_elf.Reader.arch reader = Arch.X86 in
    let pattern_hits =
      Common.prologue_scan sweep ~known ~aggressive ~visited:ex.Common.e_visited
        ~suppress:fde_extents ()
    in
    let ex2 = Common.explore sweep ~roots:(pattern_hits @ known) in
    List.sort_uniq Int.compare (known @ pattern_hits @ ex2.Common.e_functions)
    |> List.filter in_text

let analyze_st st =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"baseline.ghidra" (fun () -> analyze_st_impl st)
  else analyze_st_impl st

let analyze reader = analyze_st (Substrate.create reader)
