(** Analysis passes shared by the baseline identifiers (the IDA-, Ghidra-
    and FETCH-like models of §V-A2).

    Each pass is a genuine binary analysis over the linear-sweep stream —
    the models reproduce the *mechanisms* the paper attributes to each tool
    (frame-description harvesting, recursive traversal, prologue signature
    scanning, stack-height verification), not their outputs.

    A detail that matters throughout: ENDBR64/ENDBR32 decode as multi-byte
    NOPs on pre-CET processors, so legacy signature scanners treat a
    function's leading end-branch as padding and anchor their prologue
    match four bytes past the real entry.  That misplacement is the
    mechanism behind the pre-CET tools' degraded precision *and* recall on
    CET-enabled binaries — precisely the gap FunSeeker exploits. *)

val fde_starts : Cet_elf.Reader.t -> int list
(** [pc_begin] of every FDE in [.eh_frame], sorted (empty without FDEs). *)

val fde_extents : Cet_elf.Reader.t -> (int * int) list
(** [(pc_begin, pc_begin + pc_range)] of every FDE. *)

type explored = {
  e_functions : int list;  (** roots plus direct-call targets, sorted *)
  e_visited : Bytes.t;
      (** one byte per sweep instruction (by index into [insns]): ['\001']
          when the traversal walked it *)
}

val explore : Cet_disasm.Linear.t -> roots:int list -> explored
(** Recursive-descent traversal: explore from [roots], following fall-
    through, conditional and unconditional branches, and collecting direct
    call targets as function entries (transitively explored).  Indirect
    branches are dead ends — the limitation behind IDA's recall. *)

val reachable_call_targets : Cet_disasm.Linear.t -> roots:int list -> int list
(** [explore] keeping only the function list. *)

val entry_main_root : Cet_disasm.Linear.t -> entry:int -> int option
(** The [__libc_start_main] idiom: scan the first instructions at the entry
    point for a code-address materialisation ([lea rdi, \[rip+d\]] on
    x86-64, [push imm32] on x86) and return the address — how real tools
    locate [main] in stripped binaries. *)

val prologue_scan :
  Cet_disasm.Linear.t ->
  known:int list ->
  aggressive:bool ->
  ?visited:Bytes.t ->
  ?suppress:(int * int) list ->
  unit ->
  int list
(** Signature-based gap scanning.  A hit is an instruction matching a
    prologue byte signature ([push rbp; mov rbp, rsp]; with [aggressive]
    also bare [push rbx/rbp] and [sub rsp, imm8]) placed right after
    padding, a return, or a legacy-NOP end-branch (see above — such hits
    land 4 bytes past the true entry).  [known] addresses, addresses inside
    [suppress] extents, and [visited] instruction addresses are skipped. *)

val stack_height_tail_targets :
  Cet_disasm.Linear.t -> extents:(int * int) list -> passes:int -> int list
(** FETCH's expensive refinement: for each function extent, run [passes]
    rounds of abstract stack-height tracking and report targets of
    stack-balanced unconditional jumps leaving the extent (tail-call
    targets). *)

val calling_convention_scan :
  Cet_disasm.Linear.t -> extents:(int * int) list -> passes:int -> int
(** The second half of FETCH's verification: per-function register def/use
    profiling used to sanity-check calling conventions.  Returns the number
    of extents whose profile looks like a well-formed function (all of
    them, for compiler-generated code) — the value matters less than the
    work. *)
