(** Nucleus-like identifier (Andriesse et al., EuroS&P 2017):
    compiler-agnostic function detection through intra-procedural
    control-flow analysis.

    The §VII-B static-analysis representative: build basic blocks over the
    whole text, connect them with intra-procedural edges (fall-through and
    conditional branches; unconditional jumps when they look intra-
    procedural), group blocks into weakly-connected components, and report
    each component's entry block — the block no intra-procedural edge
    enters — as a function. *)

val analyze : Cet_elf.Reader.t -> int list
(** Identified function entries, sorted. *)

val analyze_st : Cet_disasm.Substrate.t -> int list
(** {!analyze} over a shared per-binary substrate. *)
