module Linear = Cet_disasm.Linear

let max_depth = 8

(* A node holds, for the byte path leading to it, how many times it was
   seen at a function start (pos) vs elsewhere (neg). *)
type node = {
  mutable pos : int;
  mutable neg : int;
  children : (int, node) Hashtbl.t;
}

type model = node

let new_node () = { pos = 0; neg = 0; children = Hashtbl.create 4 }

let add_sequence root code off ~positive =
  let node = ref root in
  (try
     for d = 0 to max_depth - 1 do
       if off + d >= String.length code then raise Exit;
       let b = Char.code code.[off + d] in
       let child =
         match Hashtbl.find_opt !node.children b with
         | Some c -> c
         | None ->
           let c = new_node () in
           Hashtbl.replace !node.children b c;
           c
       in
       if positive then child.pos <- child.pos + 1 else child.neg <- child.neg + 1;
       node := child
     done
   with Exit -> ());
  ()

let train corpus =
  let root = new_node () in
  List.iter
    (fun (reader, entries) ->
      match Cet_elf.Reader.find_section reader ".text" with
      | None -> ()
      | Some text ->
        let entry_set = Hashtbl.create (List.length entries) in
        List.iter (fun a -> Hashtbl.replace entry_set a ()) entries;
        let sweep = Linear.sweep_text reader in
        Array.iteri
          (fun idx (i : Cet_x86.Decoder.ins) ->
            let off = i.addr - text.vaddr in
            if Hashtbl.mem entry_set i.addr then add_sequence root text.data off ~positive:true
            else if idx land 3 = 0 then
              (* Sample a quarter of the non-entry boundaries as negatives:
                 keeps class balance workable, like the original's
                 ~10:1 corpus sampling. *)
              add_sequence root text.data off ~positive:false)
          sweep.insns)
    corpus;
  root

let score root code ~off =
  (* Walk as deep as the tree has evidence; score at the deepest node with
     any counts. *)
  let node = ref root in
  let best = ref 0.5 in
  (try
     for d = 0 to max_depth - 1 do
       if off + d >= String.length code then raise Exit;
       let b = Char.code code.[off + d] in
       match Hashtbl.find_opt !node.children b with
       | None -> raise Exit
       | Some child ->
         if child.pos + child.neg > 0 then
           best := float_of_int child.pos /. float_of_int (child.pos + child.neg);
         node := child
     done
   with Exit -> ());
  !best

let classify_st_impl threshold root st =
  match Cet_disasm.Substrate.text st with
  | None -> []
  | Some text ->
    let sweep = Cet_disasm.Substrate.sweep st in
    List.rev
      (Array.fold_left
         (fun acc (i : Cet_x86.Decoder.ins) ->
           if score root text.data ~off:(i.addr - text.vaddr) > threshold then
             i.addr :: acc
           else acc)
         [] sweep.insns)

let classify_st ?(threshold = 0.5) root st =
  if Cet_telemetry.Span.enabled () then
    Cet_telemetry.Span.with_ ~name:"baseline.byteweight" (fun () ->
        classify_st_impl threshold root st)
  else classify_st_impl threshold root st

let classify ?(threshold = 0.5) root reader =
  classify_st ~threshold root (Cet_disasm.Substrate.create reader)
