module Linear = Cet_disasm.Linear
module Decoder = Cet_x86.Decoder
module Arch = Cet_x86.Arch

let fde_frames reader =
  match Cet_elf.Reader.find_section reader ".eh_frame" with
  | None -> []
  | Some s -> Cet_eh.Eh_frame.decode ~vaddr:s.vaddr s.data

let fde_starts reader =
  (* The sorted [.eh_frame_hdr] search table is the cheap source real tools
     consult first; fall back to walking [.eh_frame] records. *)
  match Cet_elf.Reader.find_section reader ".eh_frame_hdr" with
  | Some s -> (
    match Cet_eh.Eh_frame_hdr.decode ~vaddr:s.vaddr s.data with
    | entries ->
      List.map (fun (e : Cet_eh.Eh_frame_hdr.entry) -> e.initial_loc) entries
      |> List.sort_uniq Int.compare
    | exception Invalid_argument _ ->
      fde_frames reader
      |> List.map (fun (f : Cet_eh.Eh_frame.frame) -> f.pc_begin)
      |> List.sort_uniq Int.compare)
  | None ->
    fde_frames reader
    |> List.map (fun (f : Cet_eh.Eh_frame.frame) -> f.pc_begin)
    |> List.sort_uniq Int.compare

let compare_extent (a_lo, a_hi) (b_lo, b_hi) =
  if a_lo <> b_lo then Int.compare a_lo b_lo else Int.compare a_hi b_hi

let fde_extents reader =
  fde_frames reader
  |> List.map (fun (f : Cet_eh.Eh_frame.frame) -> (f.pc_begin, f.pc_begin + f.pc_range))
  |> List.sort_uniq compare_extent

type explored = { e_functions : int list; e_visited : Bytes.t }

(* Recursive descent over the sweep's instruction stream.  Instruction
   lookup is a binary search into the sorted [insns] array and the visited
   set is one byte per instruction — the traversal allocates nothing per
   step, where it used to build an address→instruction hashtable as large
   as the stream on every call. *)
let explore (sweep : Linear.t) ~roots =
  let insns = sweep.insns in
  let visited = Bytes.make (Array.length insns) '\000' in
  let functions = Hashtbl.create 256 in
  let wl = Queue.create () in
  List.iter
    (fun r ->
      if Linear.in_range sweep r then begin
        Hashtbl.replace functions r ();
        Queue.add r wl
      end)
    roots;
  while not (Queue.is_empty wl) do
    let a = Queue.pop wl in
    match Linear.index_of sweep a with
    | None -> ()
    | Some k ->
      if Bytes.get visited k = '\000' then begin
        Bytes.set visited k '\001';
        let ins = insns.(k) in
        let fall () = Queue.add (a + ins.Decoder.len) wl in
        match ins.kind with
        | Decoder.Ret | Decoder.Halt -> ()
        | Decoder.Jmp_direct t -> if Linear.in_range sweep t then Queue.add t wl
        | Decoder.Jcc_direct t ->
          if Linear.in_range sweep t then Queue.add t wl;
          fall ()
        | Decoder.Call_direct t ->
          if Linear.in_range sweep t && not (Hashtbl.mem functions t) then begin
            Hashtbl.replace functions t ();
            Queue.add t wl
          end;
          fall ()
        | Decoder.Jmp_indirect _ -> ()
        | Decoder.Call_indirect _ | Decoder.Endbr64 | Decoder.Endbr32 | Decoder.Addr_ref _
        | Decoder.Other ->
          fall ()
      end
  done;
  {
    e_functions =
      Hashtbl.fold (fun k () acc -> k :: acc) functions [] |> List.sort Int.compare;
    e_visited = visited;
  }

let reachable_call_targets sweep ~roots = (explore sweep ~roots).e_functions

let byte (sweep : Linear.t) off =
  if off < 0 || off >= sweep.size then -1 else Char.code sweep.code.[off]

let entry_main_root (sweep : Linear.t) ~entry =
  let rec scan addr budget =
    if budget = 0 then None
    else
      match Linear.insn_at sweep addr with
      | None -> None
      | Some ins -> (
        match ins.Decoder.kind with
        | Decoder.Addr_ref t when Linear.in_range sweep t -> Some t
        | Decoder.Ret | Decoder.Halt | Decoder.Jmp_direct _ | Decoder.Jmp_indirect _ ->
          None
        | _ -> scan (addr + ins.Decoder.len) (budget - 1))
  in
  scan entry 12

(* Does the byte sequence at [off] look like a prologue? *)
let prologue_at (sweep : Linear.t) off ~aggressive =
  let b0 = byte sweep off and b1 = byte sweep (off + 1) and b2 = byte sweep (off + 2) in
  let x64 = sweep.arch = Arch.X64 in
  let push_rbp_mov =
    b0 = 0x55
    &&
    if x64 then b1 = 0x48 && b2 = 0x89 && byte sweep (off + 3) = 0xE5
    else b1 = 0x89 && b2 = 0xE5
  in
  if push_rbp_mov then true
  else if not aggressive then false
  else
    b0 = 0x53 || b0 = 0x55
    || (x64 && b0 = 0x48 && b1 = 0x83 && b2 = 0xEC)
    || ((not x64) && b0 = 0x83 && b1 = 0xEC)

(* Padding / terminator bytes that typically precede a fresh function. *)
let boundary_byte b = b = 0xC3 || b = 0xC2 || b = 0xCC || b = 0x90 || b = 0x00 || b = 0xF4

(* An end-branch right before [off]?  Legacy scanners read it as a NOP. *)
let endbr_before (sweep : Linear.t) off =
  off >= 4
  && byte sweep (off - 4) = 0xF3
  && byte sweep (off - 3) = 0x0F
  && byte sweep (off - 2) = 0x1E
  && (byte sweep (off - 1) = 0xFA || byte sweep (off - 1) = 0xFB)

let prologue_scan (sweep : Linear.t) ~known ~aggressive ?visited ?(suppress = []) () =
  let known_set = Hashtbl.create (max 16 (List.length known)) in
  List.iter (fun a -> Hashtbl.replace known_set a ()) known;
  (* Lenient: extents recovered from a corrupt .eh_frame can overlap, and
     a suppression table that is merely smaller must not abort the scan. *)
  let suppress =
    Cet_util.Itable.of_list_lenient (List.map (fun (lo, hi) -> (lo, hi, ())) suppress)
  in
  let hits = ref [] in
  Array.iteri
    (fun idx (i : Decoder.ins) ->
      let a = i.Decoder.addr in
      let off = a - sweep.base in
      if
        (not (Hashtbl.mem known_set a))
        && (not (Cet_util.Itable.mem suppress a))
        && (match visited with Some v -> Bytes.get v idx = '\000' | None -> true)
        && prologue_at sweep off ~aggressive
      then begin
        let after_endbr = endbr_before sweep off in
        let after_boundary = off = 0 || boundary_byte (byte sweep (off - 1)) in
        let aligned = a land 15 = 0 in
        (* Conservative scanners demand an aligned start (or the legacy-NOP
           end-branch anchor); aggressive ones take any post-boundary
           position. *)
        if
          (after_boundary || after_endbr)
          && (aggressive || aligned || after_endbr)
        then hits := a :: !hits
      end)
    sweep.insns;
  List.sort_uniq Int.compare !hits

(* Byte-level stack-delta of the instruction at [off]; [None] resets the
   height (frame release via leave). *)
let stack_delta (sweep : Linear.t) off =
  let ptr = Arch.ptr_size sweep.arch in
  let b0 = byte sweep off in
  let b0, off =
    if b0 >= 0x40 && b0 <= 0x4F && sweep.arch = Arch.X64 then (byte sweep (off + 1), off + 1)
    else (b0, off)
  in
  if b0 >= 0x50 && b0 <= 0x57 then Some ptr
  else if b0 >= 0x58 && b0 <= 0x5F then Some (-ptr)
  else if b0 = 0x83 && byte sweep (off + 1) = 0xEC then Some (byte sweep (off + 2))
  else if b0 = 0x83 && byte sweep (off + 1) = 0xC4 then Some (-byte sweep (off + 2))
  else if b0 = 0xC9 then None (* leave *)
  else Some 0

let stack_height_tail_targets (sweep : Linear.t) ~extents ~passes =
  let insns = sweep.insns in
  let n = Array.length insns in
  let targets = ref [] in
  List.iter
    (fun (lo, hi) ->
      (* The repeated passes mirror FETCH's fixed-point refinement: each
         pass rebuilds the function's stack-height profile, which is where
         the tool's runtime goes (§V-D).  The instruction stream itself
         comes from the shared sweep — one decode however many passes —
         so a pass is pure table-walking over the cached array. *)
      let start = Linear.first_index_at sweep lo in
      for pass = 1 to passes do
        let height = ref 0 in
        let k = ref start in
        while !k < n && insns.(!k).Decoder.addr < hi do
          let i = insns.(!k) in
          (match stack_delta sweep (i.Decoder.addr - sweep.base) with
          | None -> height := 0
          | Some d -> height := !height + d);
          (match i.Decoder.kind with
          | Decoder.Jmp_direct t
            when (t < lo || t >= hi) && Linear.in_range sweep t && !height <= 0 ->
            if pass = passes then targets := t :: !targets
          | _ -> ());
          incr k
        done
      done)
    extents;
  List.sort_uniq Int.compare !targets

let calling_convention_scan (sweep : Linear.t) ~extents ~passes =
  (* Per-extent register def/use histogram, recomputed [passes] times the
     way FETCH revisits candidates per calling-convention hypothesis. *)
  let well_formed = ref 0 in
  List.iter
    (fun (lo, hi) ->
      let ok = ref false in
      let start = Linear.first_index_at sweep lo in
      for _pass = 1 to passes do
        let defs = Array.make 16 0 in
        let k = ref start in
        let n = Array.length sweep.insns in
        while !k < n && sweep.insns.(!k).Decoder.addr < hi do
          let i = sweep.insns.(!k) in
          let off = i.addr - sweep.base in
          let b0 = byte sweep off in
          let b0, off' =
            if b0 >= 0x40 && b0 <= 0x4F && sweep.arch = Arch.X64 then
              (byte sweep (off + 1), off + 1)
            else (b0, off)
          in
          (* mov r/m,r | mov r,r/m | mov r,imm | xor r,r *)
          (if b0 = 0x89 || b0 = 0x8B || b0 = 0x31 then begin
             let modrm = byte sweep (off' + 1) in
             let reg = (modrm lsr 3) land 7 in
             defs.(reg) <- defs.(reg) + 1
           end
           else if b0 >= 0xB8 && b0 <= 0xBF then defs.(b0 land 7) <- defs.(b0 land 7) + 1);
          incr k
        done;
        ok := Array.exists (fun d -> d > 0) defs
      done;
      if !ok then incr well_formed)
    extents;
  !well_formed
